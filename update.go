package tuffy

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tuffy/internal/grounding"
	"tuffy/internal/mln"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
	"tuffy/internal/search"
)

// UpdateResult reports what one UpdateEvidence did: how much of the
// grounding was re-run, how the grounded MRF changed, and how much of the
// derived state was repaired rather than recomputed.
type UpdateResult struct {
	// Epoch is the generation now being served (unchanged when Identical).
	Epoch uint64
	// Identical means the delta did not change the grounded network: the
	// current epoch was kept and every cache remains valid.
	Identical bool

	// ClausesRerun / ClausesTotal count the grounding queries re-executed vs
	// the program's first-order clauses.
	ClausesRerun int
	ClausesTotal int
	// RawsAdded / RawsRemoved is the raw-grounding diff between the epochs.
	RawsAdded   int
	RawsRemoved int
	// TouchedAtoms counts new-epoch atoms incident to any changed grounding.
	TouchedAtoms int

	// ClausesAdded / ClausesRemoved / ClausesReweighted describe the ground-
	// clause patch between the epochs' MRFs.
	ClausesAdded      int
	ClausesRemoved    int
	ClausesReweighted int

	// ComponentsReused / PartsReused count derived structures carried over
	// from the previous epoch (0 when that epoch had not materialized them).
	ComponentsReused int
	PartsReused      int

	// Inverse is the evidence delta that undoes this update; applying it via
	// a later UpdateEvidence restores the previous logical state (and, by
	// canonicalization, a bit-identical grounded network).
	Inverse mln.Delta

	// UpdateTime is the wall-clock cost of the whole update.
	UpdateTime time.Duration
}

// rebind translates a delta's predicates onto this engine's program by name,
// so deltas built against another instance of the same program (another
// backend, a client-side copy) apply directly.
func (e *Engine) rebind(delta mln.Delta) (mln.Delta, error) {
	out := mln.Delta{Ops: make([]mln.DeltaOp, len(delta.Ops))}
	for i, op := range delta.Ops {
		if op.Pred == nil {
			return out, fmt.Errorf("tuffy: delta op %d has no predicate", i)
		}
		pred, ok := e.prog.Predicate(op.Pred.Name)
		if !ok {
			return out, fmt.Errorf("tuffy: delta predicate %q not in program", op.Pred.Name)
		}
		if pred.Arity() != len(op.Args) {
			return out, fmt.Errorf("tuffy: delta op %d: %s expects %d args, got %d",
				i, pred.Name, pred.Arity(), len(op.Args))
		}
		out.Ops[i] = mln.DeltaOp{Pred: pred, Args: op.Args, Truth: op.Truth}
	}
	return out, nil
}

// UpdateEvidence applies an evidence delta to the live engine and publishes
// the re-grounded network as the next epoch. Only the clause grounding
// queries whose provenance intersects the delta's predicates are re-run;
// the partitioning and component list are repaired for the touched
// connected components and reused everywhere else. Queries already in
// flight finish bit-identically on the epoch they started on; queries
// admitted after UpdateEvidence returns see the new epoch. The published
// network is bit-identical to a full Ground of a fresh engine over the
// merged evidence.
//
// Worked example:
//
//	eng, _ := tuffy.Open(prog, ev, tuffy.EngineConfig{})
//	_ = eng.Ground(ctx)                    // epoch 0
//	var d mln.Delta
//	d.Upsert(smokes, []int32{anna}, mln.True)
//	d.Remove(friend, []int32{anna, bob})
//	ur, err := eng.UpdateEvidence(ctx, d)  // epoch 1 (or same epoch if no-op)
//	// ur.ClausesRerun of ur.ClausesTotal queries re-ran; to undo:
//	_, _ = eng.UpdateEvidence(ctx, ur.Inverse)
//
// Failure semantics: on any error — validation, cancellation, storage —
// the evidence and predicate tables are rolled back and the engine keeps
// serving the previous epoch, so the same delta can simply be retried. A
// canceled update returns an error matching ErrCanceled. Updates are
// serialized with each other and with Ground; queries are never blocked.
//
// Durability: with EngineConfig.DataDir set, the delta is appended to the
// write-ahead log and fsynced before the new epoch is published — once
// UpdateEvidence returns success, the update survives a crash and is
// replayed on the next Open. The durable commit happens before the
// re-ground, so an update that fails after it (e.g. canceled mid-re-ground)
// is rolled back in memory and scrubbed from the WAL by a checkpoint of the
// restored state; crash recovery therefore always lands on exactly the pre-
// or post-update epoch, never in between.
//
// UpdateEvidence requires the BottomUp grounder (the incremental path
// needs per-clause SQL provenance; the top-down baseline has none).
func (e *Engine) UpdateEvidence(ctx context.Context, delta mln.Delta) (*UpdateResult, error) {
	e.groundMu.Lock()
	defer e.groundMu.Unlock()
	return e.applyUpdate(ctx, delta, true)
}

// applyUpdate is UpdateEvidence with groundMu held. Recovery replay calls
// it with durable=false: the deltas being re-applied already sit in the
// WAL, so logging them again would double them.
func (e *Engine) applyUpdate(ctx context.Context, delta mln.Delta, durable bool) (*UpdateResult, error) {
	if e.broken != nil {
		return nil, fmt.Errorf("tuffy: engine is broken for updates: %w", e.broken)
	}
	old := e.cur.Load()
	if old == nil {
		return nil, fmt.Errorf("tuffy: UpdateEvidence before Ground")
	}
	if e.inc == nil && e.dur != nil && e.dur.pending != nil {
		// Fast-path warm start: the serving epoch was published straight
		// from the snapshot; the first update pays for the table and
		// grounder rebuild here. Failure installs nothing — the update
		// errors cleanly and a retry materializes again.
		if err := e.materializePending(); err != nil {
			return nil, err
		}
	}
	if e.inc == nil {
		return nil, fmt.Errorf("tuffy: UpdateEvidence requires the BottomUp grounder")
	}
	d, err := e.rebind(delta)
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, search.Canceled(ctx)
	}

	e.updating.Store(true)
	defer e.updating.Store(false)
	start := time.Now()

	undo, err := e.tables.ApplyDelta(d)
	if err != nil {
		return nil, err
	}
	logged := false
	if durable && e.dur != nil {
		// The durable commit point: once the delta frame is fsynced, a
		// crash anywhere later replays it on the next Open. A failed
		// append/sync rolls the tables back and, if the frame may have been
		// buffered, scrubs it with a checkpoint of the restored state.
		if cerr := e.dur.commitDelta(d); cerr != nil {
			if rbErr := undo.Rollback(); rbErr != nil {
				e.broken = fmt.Errorf("rolling back failed update: %v (update error: %w)", rbErr, cerr)
				return nil, e.broken
			}
			if scrubErr := e.scrubWAL(); scrubErr != nil {
				e.broken = fmt.Errorf("scrubbing WAL after failed commit: %v (update error: %w)", scrubErr, cerr)
				return nil, e.broken
			}
			return nil, fmt.Errorf("tuffy: evidence delta could not be made durable: %w", cerr)
		}
		logged = true
	}
	res, touchedNew, info, err := e.inc.Reground(ctx, d.Preds())
	if err != nil {
		if rbErr := undo.Rollback(); rbErr != nil {
			// The tables are now inconsistent with the last published epoch.
			// Queries on existing epochs stay correct (they never read the
			// predicate tables), but further updates must not build on this
			// state.
			e.broken = fmt.Errorf("rolling back failed update: %v (update error: %w)", rbErr, err)
			return nil, e.broken
		}
		if logged {
			// The rolled-back delta is committed in the WAL; a crash now
			// would resurrect it. Checkpointing the restored state truncates
			// the orphaned frame, re-aligning disk with memory.
			if scrubErr := e.scrubWAL(); scrubErr != nil {
				e.broken = fmt.Errorf("scrubbing WAL after failed update: %v (update error: %w)", scrubErr, err)
				return nil, e.broken
			}
		}
		if ctx.Err() != nil && errors.Is(err, context.Cause(ctx)) {
			return nil, search.Canceled(ctx)
		}
		return nil, err
	}

	ur := &UpdateResult{
		Epoch:        old.gen,
		ClausesRerun: info.ClausesRerun,
		ClausesTotal: info.ClausesTotal,
		RawsAdded:    info.RawsAdded,
		RawsRemoved:  info.RawsRemoved,
		TouchedAtoms: info.TouchedAtoms,
		Inverse:      undo.Inverse(),
	}
	if info.RawsAdded == 0 && info.RawsRemoved == 0 {
		// The delta did not change any clause's groundings (e.g. flipping
		// evidence no clause reads, or an insert immediately retracted within
		// the batch): the grounded network is bit-identical, so the current
		// epoch — and every cache keyed to it — stays live.
		ur.Identical = true
		ur.UpdateTime = time.Since(start)
		e.updatesApplied.Add(1)
		if logged {
			e.noteCommitted()
		}
		return ur, nil
	}

	oldToNew, newToOld := grounding.AtomMaps(old.res, res)
	patch := mrf.ComputePatchTouched(old.res.MRF, res.MRF, oldToNew, newToOld, touchedNew)
	ur.ClausesAdded = len(patch.Added)
	ur.ClausesRemoved = len(patch.RemovedOld)
	ur.ClausesReweighted = len(patch.Reweighted)

	ne := &epoch{gen: old.gen + 1, res: res, db: e.db}
	ne.refs.Store(1)
	// Repair (not recompute) whatever derived state the old epoch had
	// already paid for: untouched components keep their exact local MRFs
	// (shared pointers — which is also what keeps their memo fingerprints
	// cached), untouched parts keep their exact tilings.
	oldPart, oldComps := old.builtDerived()
	if oldComps != nil {
		ne.comps, ur.ComponentsReused = mrf.RepairComponents(oldComps, res.MRF, newToOld, touchedNew, true)
	}
	if oldPart != nil {
		ne.part, ur.PartsReused = partition.Repair(oldPart, res.MRF, newToOld, touchedNew, e.partitionBeta())
	}

	e.cur.Store(ne)
	ur.Epoch = ne.gen
	ur.UpdateTime = time.Since(start)
	e.updatesApplied.Add(1)
	old.release()
	if logged {
		e.noteCommitted()
	}
	return ur, nil
}
