package tuffy

// This file is the Engine's durability layer, active when
// EngineConfig.DataDir is set. It composes the two durable tiers:
//
//   - Physical: the embedded database runs over a page-aligned FileDisk
//     wrapped in a wal.LoggedDisk, so every buffer-pool write-back logs the
//     page image before the data write (WAL-before-data). That tier's crash
//     story — redo of torn data pages — is internal/wal's.
//
//   - Logical: after the first Ground, and at every checkpoint, the engine
//     persists a snapshot of the grounded state (merged evidence, the atom
//     registry in aid order, the per-clause raw groundings and stats) plus
//     fingerprints of the program and the base evidence it was built from.
//     Every committed UpdateEvidence appends a TypeDelta WAL record and
//     fsyncs it before the new epoch is published, so reopening the DataDir
//     restores the snapshot and replays the deltas committed after it —
//     landing, bit-identically, on the exact epoch a never-crashed engine
//     would serve.
//
// Engine recovery rebuilds the predicate tables logically from the snapshot
// registry (RestoreTables re-stages atoms in aid order, reproducing the
// identical aid space), so it resets the page store rather than redoing page
// images; the page WAL tier still runs underneath for write-back durability
// within a process lifetime and is exercised end-to-end by the storage
// crash matrix.
//
// Commit ordering for one UpdateEvidence: apply the delta to the evidence
// and predicate tables, append + fsync the TypeDelta record (the commit
// point), then re-ground and publish. A failure before the fsync rolls the
// tables back and returns a clean, retryable error; a failure after it
// (canceled re-ground) rolls back and scrubs the WAL with a checkpoint of
// the restored state, so disk and memory agree again. A crash anywhere
// leaves the DataDir at exactly the pre- or post-operation epoch.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/grounding"
	"tuffy/internal/mln"
	"tuffy/internal/mrf"
	"tuffy/internal/wal"
)

const (
	snapshotMagic   = "TFYSNAP1"
	snapshotVersion = 2
	snapshotFile    = "snapshot.tfy"
	walFile         = "wal.log"
	pagesDir        = "pages"
)

// errFrozen is returned by every durable operation after an injected fault
// fired: the test hook simulates a crash, so nothing may touch the disk
// afterwards (the "dead" process can only be examined by reopening the
// DataDir).
var errFrozen = errors.New("tuffy: durable state frozen by injected fault")

// durability is the engine's durable-storage state (nil without a DataDir).
// All mutable fields are guarded by Engine.groundMu except the atomics,
// which DurabilityStats reads concurrently.
type durability struct {
	dir   string
	fdisk *storage.FileDisk
	log   *wal.Log

	progFP   uint64
	baseEvFP uint64
	predIdx  map[*mln.Predicate]int32

	every int  // checkpoint cadence in committed updates (<0: explicit only)
	since int  // committed updates since the last checkpoint
	dirty bool // committed state the snapshot does not cover yet

	// pending holds the snapshot's table/grounder material when Open took
	// the fast path (publishing the serialized network without rebuilding
	// the predicate tables). The first UpdateEvidence materializes it; until
	// then the engine serves queries from the published epoch alone.
	pending *pendingRestore

	// fault is the crash-injection seam for the engine crash-matrix tests:
	// non-nil, it is consulted at every named commit/checkpoint step, and a
	// returned error freezes the layer (see errFrozen).
	fault func(point string) error
	dead  bool

	warm         bool
	recoveryTime time.Duration
	replayed     int

	checkpoints   atomic.Int64
	ckptFailures  atomic.Int64
	snapshotBytes atomic.Int64
	lastCkptErr   error
}

// pendingRestore is the deferred half of a fast-path warm start: everything
// RestoreTables/RestoreIncremental need to rebuild the predicate tables and
// the incremental grounder, kept decoded but unmaterialized until the first
// update asks for them.
type pendingRestore struct {
	atoms    []grounding.SnapAtom
	raws     [][]grounding.SnapRaw
	perStats []grounding.Stats
}

// at runs the named fault point. Once any point fired, every later durable
// operation fails, freezing the on-disk state exactly as a crash would.
func (d *durability) at(point string) error {
	if d.dead {
		return errFrozen
	}
	if d.fault != nil {
		if err := d.fault(point); err != nil {
			d.dead = true
			return err
		}
	}
	return nil
}

// commitDelta makes one evidence delta durable: append the TypeDelta frame
// and fsync it (group commit). This is the update's commit point — it runs
// after the delta is applied to the tables but before any re-grounding, so
// a crash on either side leaves a state recovery reproduces exactly.
func (d *durability) commitDelta(delta mln.Delta) error {
	if err := d.at("delta.append"); err != nil {
		return err
	}
	lsn, err := d.log.Append(wal.TypeDelta, encodeDelta(d.predIdx, delta))
	if err != nil {
		return err
	}
	if err := d.at("delta.sync"); err != nil {
		return err
	}
	return d.log.SyncTo(lsn)
}

// DurabilityStats reports the durable-storage layer's counters; Enabled is
// false (and everything else zero) for an engine without a DataDir.
type DurabilityStats struct {
	Enabled bool
	// WarmStart is true when Open restored a snapshot instead of requiring
	// a fresh Ground; RecoveryTime is the wall clock Open spent on
	// restore + delta replay (or just opening the files when cold).
	WarmStart    bool
	RecoveryTime time.Duration
	// ReplayedDeltas counts evidence deltas re-applied from the WAL.
	ReplayedDeltas int

	Checkpoints        int64
	CheckpointFailures int64
	SnapshotBytes      int64 // size of the last snapshot written or restored

	WALSizeBytes     int64 // current log size incl. buffered frames
	WALAppendedBytes int64 // lifetime appended bytes (monotone across resets)
	WALSyncs         int64 // fsync batches (group commits)
}

// DurabilityStats snapshots the durability layer's counters.
func (e *Engine) DurabilityStats() DurabilityStats {
	d := e.dur
	if d == nil {
		return DurabilityStats{}
	}
	return DurabilityStats{
		Enabled:            true,
		WarmStart:          d.warm,
		RecoveryTime:       d.recoveryTime,
		ReplayedDeltas:     d.replayed,
		Checkpoints:        d.checkpoints.Load(),
		CheckpointFailures: d.ckptFailures.Load(),
		SnapshotBytes:      d.snapshotBytes.Load(),
		WALSizeBytes:       d.log.Size(),
		WALAppendedBytes:   d.log.AppendedBytes(),
		WALSyncs:           d.log.Syncs(),
	}
}

// openDurable wires the durable tiers under a fresh Engine and, when the
// DataDir holds a matching snapshot, restores it and replays the WAL so the
// Engine comes up serving-ready at the exact pre-crash epoch.
func (e *Engine) openDurable() error {
	start := time.Now()
	dir := e.cfg.DataDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fdisk, err := storage.OpenFileDisk(filepath.Join(dir, pagesDir))
	if err != nil {
		return err
	}
	log, recs, err := wal.Open(filepath.Join(dir, walFile))
	if err != nil {
		fdisk.Close()
		return err
	}
	fail := func(err error) error {
		log.Close()
		fdisk.Close()
		e.dur = nil
		return err
	}
	// Table contents are rebuilt logically below (snapshot registry) or by
	// the next Ground; either way the page store restarts blank, and the
	// page-image records in the log are superseded.
	if err := fdisk.Reset(); err != nil {
		return fail(err)
	}

	d := &durability{
		dir:      dir,
		fdisk:    fdisk,
		log:      log,
		every:    e.cfg.CheckpointEveryUpdates,
		progFP:   fingerprintProgram(e.prog, e.cfg),
		baseEvFP: fingerprintEvidence(e.prog, e.ev),
		predIdx:  mln.PredIndex(e.prog),
	}
	dcfg := e.cfg.DB
	if dcfg.Disk == nil {
		dcfg.Disk = wal.WrapDisk(fdisk, log)
	}
	e.db = db.Open(dcfg)
	e.dur = d

	snap, err := readSnapshot(filepath.Join(dir, snapshotFile), e.prog)
	if err != nil {
		return fail(fmt.Errorf("tuffy: reading snapshot in %s: %w", dir, err))
	}
	if snap == nil {
		// Cold: Ground will write the first snapshot.
		d.recoveryTime = time.Since(start)
		return nil
	}
	if snap.progFP != d.progFP {
		return fail(fmt.Errorf("tuffy: DataDir %s holds state for a different program or engine config; use a fresh directory", dir))
	}
	if snap.baseEvFP != d.baseEvFP {
		return fail(fmt.Errorf("tuffy: DataDir %s holds state for different base evidence; use a fresh directory", dir))
	}

	// Merged evidence: the base evidence plus every committed delta up to
	// the checkpoint. The caller's prog already carries the typed domains
	// (its own evidence parse populated them — verified by the fingerprint).
	ev := mln.NewEvidence(e.prog)
	for pi, rows := range snap.evidence {
		pred := e.prog.Preds[pi]
		for _, row := range rows {
			ev.Upsert(pred, row.args, row.truth)
		}
	}
	e.ev = ev

	// Deltas committed after the snapshot pick the recovery path: decode
	// them up front so a damaged WAL record fails the open before anything
	// is published. A crash between the snapshot rename and the WAL reset
	// leaves older frames behind; the stored walLSN filters them out.
	var replays []mln.Delta
	for _, r := range recs {
		if r.Type != wal.TypeDelta || r.LSN <= snap.walLSN {
			continue
		}
		delta, err := decodeDelta(e.prog, r.Payload)
		if err != nil {
			return fail(fmt.Errorf("tuffy: decoding WAL delta at LSN %d: %w", r.LSN, err))
		}
		replays = append(replays, delta)
	}

	if len(replays) == 0 {
		// Fast path: the snapshot is exactly the committed state, so the
		// serialized network it carries can be published as-is — no table
		// rebuild, no grounder re-assembly. Those stay pending until the
		// first update needs them; queries run on the epoch alone.
		res, err := snap.buildResult(e.prog)
		if err != nil {
			return fail(fmt.Errorf("tuffy: restoring snapshot network: %w", err))
		}
		d.pending = &pendingRestore{atoms: snap.atoms, raws: snap.raws, perStats: snap.perStats}
		e.publishRecovered(snap, res)
		d.recoveryTime = time.Since(start)
		return nil
	}

	// Replay path: rebuild the predicate tables and the incremental
	// grounder, re-apply the committed deltas in order, and collapse the
	// result into a fresh checkpoint. Replay repeats the exact committed
	// sequence, so epochs and answers land where the crashed process left
	// them.
	ts, err := grounding.RestoreTables(e.db, e.prog, ev, snap.atoms)
	if err != nil {
		return fail(fmt.Errorf("tuffy: restoring predicate tables: %w", err))
	}
	opts := grounding.Options{UseClosure: e.cfg.UseClosure, Workers: e.cfg.GroundWorkers}
	inc, res, err := grounding.RestoreIncremental(ts, opts, snap.raws, snap.perStats)
	if err != nil {
		ts.Drop()
		return fail(fmt.Errorf("tuffy: restoring grounded network: %w", err))
	}
	if err := checkRebuiltResult(snap, res); err != nil {
		ts.Drop()
		return fail(err)
	}
	e.tables, e.inc = ts, inc
	e.publishRecovered(snap, res)

	for i, delta := range replays {
		if _, err := e.applyUpdate(noCancel{}, delta, false); err != nil {
			return fail(fmt.Errorf("tuffy: replaying WAL delta %d of %d: %w", i+1, len(replays), err))
		}
		d.replayed++
	}
	// Collapse the replay into a fresh checkpoint so the next open
	// restores directly instead of replaying again.
	if err := e.checkpointLocked(); err != nil {
		return fail(fmt.Errorf("tuffy: checkpoint after replay: %w", err))
	}
	d.recoveryTime = time.Since(start)
	return nil
}

// publishRecovered installs the recovered epoch and the engine state a
// never-crashed instance would carry alongside it.
func (e *Engine) publishRecovered(snap *engineSnap, res *grounding.Result) {
	ep := &epoch{gen: snap.gen, res: res, db: e.db}
	ep.refs.Store(1)
	// Re-derive what the snapshotted epoch had materialized; both are
	// deterministic pure functions of the MRF, so the warm epoch serves
	// them bit-identically without first-query latency.
	if snap.hadPart {
		ep.partitioning(e.partitionBeta())
	}
	if snap.hadComps {
		ep.components()
	}
	e.cur.Store(ep)
	e.groundTime = snap.groundTime
	e.updatesApplied.Store(snap.updates)
	e.dur.warm = true
	e.dur.snapshotBytes.Store(snap.size)
}

// checkRebuiltResult cross-checks a logically rebuilt network against the
// snapshot's serialized one. Both are produced by the same deterministic
// assembler, so any disagreement means the snapshot (or the restore) is
// wrong — refusing the open beats serving answers that a later
// materialization would silently contradict.
func checkRebuiltResult(snap *engineSnap, res *grounding.Result) error {
	if res.MRF.NumAtoms != snap.numAtoms ||
		len(res.MRF.Clauses) != len(snap.clauses) ||
		math.Float64bits(res.MRF.FixedCost) != math.Float64bits(snap.fixedCost) {
		return fmt.Errorf("tuffy: rebuilt network disagrees with snapshot (%d atoms / %d clauses / cost %g, snapshot %d / %d / %g)",
			res.MRF.NumAtoms, len(res.MRF.Clauses), res.MRF.FixedCost,
			snap.numAtoms, len(snap.clauses), snap.fixedCost)
	}
	return nil
}

// materializePending rebuilds the predicate tables and the incremental
// grounder from a fast-path warm start's pending snapshot material. Called
// under groundMu by the first update; on error nothing is installed and the
// pending state is kept, so the update fails cleanly and a retry can try
// again.
func (e *Engine) materializePending() error {
	d := e.dur
	p := d.pending
	ts, err := grounding.RestoreTables(e.db, e.prog, e.ev, p.atoms)
	if err != nil {
		return fmt.Errorf("tuffy: restoring predicate tables: %w", err)
	}
	opts := grounding.Options{UseClosure: e.cfg.UseClosure, Workers: e.cfg.GroundWorkers}
	inc, res, err := grounding.RestoreIncremental(ts, opts, p.raws, p.perStats)
	if err != nil {
		ts.Drop()
		return fmt.Errorf("tuffy: restoring grounded network: %w", err)
	}
	// The serving epoch was published from the snapshot's serialized
	// network; the rebuild must agree with it before updates build on top.
	ep := e.cur.Load()
	if ep == nil ||
		res.MRF.NumAtoms != ep.res.MRF.NumAtoms ||
		len(res.MRF.Clauses) != len(ep.res.MRF.Clauses) ||
		math.Float64bits(res.MRF.FixedCost) != math.Float64bits(ep.res.MRF.FixedCost) {
		ts.Drop()
		return fmt.Errorf("tuffy: materialized network disagrees with the serving snapshot")
	}
	e.tables, e.inc = ts, inc
	d.pending = nil
	return nil
}

// noCancel is the context for recovery replay: the deltas being re-applied
// were already committed, so replay must not be interruptible.
type noCancel struct{}

func (noCancel) Deadline() (time.Time, bool) { return time.Time{}, false }
func (noCancel) Done() <-chan struct{}       { return nil }
func (noCancel) Err() error                  { return nil }
func (noCancel) Value(any) any               { return nil }

// Checkpoint forces a durable checkpoint: flush the buffer pool, sync the
// page store, write a fresh snapshot of the grounded state and truncate the
// WAL. It returns an error for an engine without a DataDir. Checkpoints
// also run automatically after Ground, every CheckpointEveryUpdates
// committed updates, and on Close.
func (e *Engine) Checkpoint() error {
	e.groundMu.Lock()
	defer e.groundMu.Unlock()
	if e.dur == nil {
		return fmt.Errorf("tuffy: Checkpoint requires EngineConfig.DataDir")
	}
	if e.broken != nil {
		return fmt.Errorf("tuffy: engine is broken for updates: %w", e.broken)
	}
	return e.checkpointLocked()
}

// checkpointLocked persists the grounded state (groundMu held). A failure
// part-way through never loses committed state: the previous snapshot plus
// the un-truncated WAL still reproduce the current epoch.
func (e *Engine) checkpointLocked() error {
	gen := uint64(0)
	var hadPart, hadComps bool
	var res *grounding.Result
	if ep := e.cur.Load(); ep != nil {
		gen, res = ep.gen, ep.res
		p, c := ep.builtDerived()
		hadPart, hadComps = p != nil, c != nil
	}
	return e.checkpointWith(gen, hadPart, hadComps, res)
}

// checkpointWith is checkpointLocked with the network to persist supplied
// by the caller — Ground checkpoints before publishing its epoch, so the
// result cannot come from e.cur there.
func (e *Engine) checkpointWith(gen uint64, hadPart, hadComps bool, res *grounding.Result) error {
	d := e.dur
	if e.inc == nil || e.tables == nil || res == nil {
		// Nothing restorable to persist: not grounded yet, the top-down
		// grounder (no incremental cache to snapshot), or a fast-path warm
		// start that never materialized — its on-disk snapshot already is
		// the current state.
		return nil
	}
	if err := d.at("ckpt.flush"); err != nil {
		return err
	}
	// Page images reach the log before the data pages (WAL-before-data in
	// LoggedDisk), the log is synced before the data files, and only then
	// is the snapshot atomically swapped in and the log truncated. A crash
	// between any two steps recovers from the previous snapshot.
	if err := e.db.Pool().FlushAll(); err != nil {
		return err
	}
	if err := d.log.Sync(); err != nil {
		return err
	}
	if err := d.fdisk.Sync(); err != nil {
		return err
	}
	if err := d.at("ckpt.snapshot"); err != nil {
		return err
	}
	if err := e.writeSnapshot(gen, hadPart, hadComps, res); err != nil {
		return err
	}
	if err := d.at("ckpt.reset"); err != nil {
		return err
	}
	if err := d.log.Reset(); err != nil {
		return err
	}
	d.checkpoints.Add(1)
	d.since = 0
	d.dirty = false
	return nil
}

// scrubWAL reconciles disk with memory after an update failed past its WAL
// append (sync error, canceled re-ground): the tables were rolled back, so
// a checkpoint of the restored state truncates the orphaned delta frame
// away. If the scrub itself fails, restart-state and live-state could
// disagree, so the caller latches the engine broken.
func (e *Engine) scrubWAL() error {
	return e.checkpointLocked()
}

// noteCommitted records one committed update and runs the cadence
// checkpoint. Cadence failures are recorded, not returned: the update is
// already durable in the WAL, so a failed checkpoint only defers
// compaction — recovery replays the longer log to the same state.
func (e *Engine) noteCommitted() {
	d := e.dur
	d.dirty = true
	d.since++
	if d.every > 0 && d.since >= d.every {
		if err := e.checkpointLocked(); err != nil {
			d.ckptFailures.Add(1)
			d.lastCkptErr = err
		}
	}
}

// Close checkpoints any state the snapshot does not cover yet and releases
// the durable files. It is a no-op for an engine without a DataDir. The
// engine must be quiescent (no in-flight queries or updates).
func (e *Engine) Close() error {
	e.groundMu.Lock()
	defer e.groundMu.Unlock()
	d := e.dur
	if d == nil {
		return nil
	}
	var first error
	if d.dirty && e.broken == nil && !d.dead {
		if err := e.checkpointLocked(); err != nil {
			first = err
		}
	}
	if err := d.log.Close(); err != nil && first == nil {
		first = err
	}
	if err := d.fdisk.Close(); err != nil && first == nil {
		first = err
	}
	e.dur = nil
	return first
}

// ---- snapshot encoding ----

// engineSnap is a decoded snapshot file.
type engineSnap struct {
	progFP, baseEvFP     uint64
	gen, updates, walLSN uint64
	groundTime           time.Duration
	hadPart, hadComps    bool
	evidence             [][]evRow
	atoms                []grounding.SnapAtom
	raws                 [][]grounding.SnapRaw
	perStats             []grounding.Stats

	// The assembled network, serialized so a clean reopen can publish a
	// serving-ready epoch without rebuilding tables or re-assembling raws.
	numAtoms  int
	tableAid  []int64 // MRF atom id -> registry aid (index 0 unused)
	fixedCost float64
	clauses   []mrf.Clause
	resStats  grounding.Stats
	size      int64
}

// buildResult reconstitutes the snapshot's serialized network as a
// grounding.Result. Atom descriptors come from the registry via tableAid,
// and the aid->id map is tableAid's inverse, so the result composes with
// later incremental updates exactly like the assembler's own output.
func (s *engineSnap) buildResult(prog *mln.Program) (*grounding.Result, error) {
	m := mrf.New(s.numAtoms)
	m.Clauses = s.clauses
	m.FixedCost = s.fixedCost
	m.Atoms = make([]mln.GroundAtom, s.numAtoms+1)
	atomID := make(map[int64]mrf.AtomID, s.numAtoms)
	for id := 1; id <= s.numAtoms; id++ {
		aid := s.tableAid[id]
		if aid < 1 || aid > int64(len(s.atoms)) {
			return nil, fmt.Errorf("network atom %d references registry aid %d of %d", id, aid, len(s.atoms))
		}
		sa := s.atoms[aid-1]
		m.Atoms[id] = mln.GroundAtom{Pred: prog.Preds[sa.Pred], Args: sa.Args}
		atomID[aid] = mrf.AtomID(id)
	}
	return &grounding.Result{MRF: m, TableAid: s.tableAid, AtomID: atomID, Stats: s.resStats}, nil
}

type evRow struct {
	args  []int32
	truth mln.Truth
}

// writeSnapshot serializes the grounded state and swaps it in atomically
// (tmp + fsync + rename + dir fsync), so a crash mid-write leaves the
// previous snapshot intact.
func (e *Engine) writeSnapshot(gen uint64, hadPart, hadComps bool, res *grounding.Result) error {
	d := e.dur
	atoms, err := e.tables.ExportAtoms()
	if err != nil {
		return err
	}
	raws, perStats := e.inc.ExportRaws()

	var w enc
	w.b = append(w.b, snapshotMagic...)
	w.u32(snapshotVersion)
	w.u64(d.progFP)
	w.u64(d.baseEvFP)
	w.u64(gen)
	w.u64(e.updatesApplied.Load())
	// Everything with an LSN at or below this is inside the snapshot;
	// replay after a crash skips those frames.
	w.u64(d.log.NextLSN() - 1)
	w.u64(uint64(e.groundTime))
	var flags byte
	if hadPart {
		flags |= 1
	}
	if hadComps {
		flags |= 2
	}
	w.u8(flags)

	w.u32(uint32(len(e.prog.Preds)))
	for _, pred := range e.prog.Preds {
		w.u32(uint32(e.ev.Count(pred)))
		e.ev.ForEach(pred, func(args []int32, t mln.Truth) {
			for _, a := range args {
				w.u32(uint32(a))
			}
			w.u8(byte(t))
		})
	}

	w.u32(uint32(len(atoms)))
	for _, a := range atoms {
		w.u32(uint32(a.Pred))
		for _, arg := range a.Args {
			w.u32(uint32(arg))
		}
		w.u8(byte(a.Truth))
	}

	w.u32(uint32(len(raws)))
	for _, rs := range raws {
		w.u32(uint32(len(rs)))
		for _, r := range rs {
			w.f64(r.Weight)
			w.u32(uint32(len(r.Lits)))
			for _, l := range r.Lits {
				w.u64(l)
			}
		}
	}
	for _, st := range perStats {
		writeStats(&w, st)
	}

	// The assembled network. Weights and the fixed cost are stored as exact
	// float bits, so the published warm epoch is the bit-identical network
	// the assembler produced — not a recomputation of it.
	w.u32(uint32(res.MRF.NumAtoms))
	for id := 1; id <= res.MRF.NumAtoms; id++ {
		w.u64(uint64(res.TableAid[id]))
	}
	w.f64(res.MRF.FixedCost)
	w.u32(uint32(len(res.MRF.Clauses)))
	for _, c := range res.MRF.Clauses {
		w.f64(c.Weight)
		w.u32(uint32(len(c.Lits)))
		for _, l := range c.Lits {
			w.u32(uint32(l))
		}
	}
	writeStats(&w, res.Stats)
	w.u32(crc32.Checksum(w.b, snapCRCTable))

	path := filepath.Join(d.dir, snapshotFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, w.b, 0o644); err != nil {
		return err
	}
	if err := fsyncFile(tmp); err != nil {
		return err
	}
	if err := d.at("ckpt.rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := syncDir(d.dir); err != nil {
		return err
	}
	d.snapshotBytes.Store(int64(len(w.b)))
	return nil
}

// readSnapshot loads and validates the snapshot (nil, nil when none
// exists). Any framing, CRC or bounds violation is an error: a snapshot is
// swapped in atomically, so damage means something outside the engine
// touched it, and silently cold-starting would drop acknowledged updates.
func readSnapshot(path string, prog *mln.Program) (*engineSnap, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapshotMagic)+8 || string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("not a snapshot file")
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, snapCRCTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("snapshot checksum mismatch")
	}
	r := dec{b: body, off: len(snapshotMagic)}
	if v := r.u32(); r.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("snapshot version %d, want %d", v, snapshotVersion)
	}
	s := &engineSnap{size: int64(len(raw))}
	s.progFP = r.u64()
	s.baseEvFP = r.u64()
	s.gen = r.u64()
	s.updates = r.u64()
	s.walLSN = r.u64()
	s.groundTime = time.Duration(r.u64())
	flags := r.u8()
	s.hadPart = flags&1 != 0
	s.hadComps = flags&2 != 0

	if n := int(r.u32()); r.err == nil && n != len(prog.Preds) {
		return nil, fmt.Errorf("snapshot has %d predicates, program has %d", n, len(prog.Preds))
	}
	s.evidence = make([][]evRow, len(prog.Preds))
	for pi, pred := range prog.Preds {
		rows := make([]evRow, r.u32())
		for i := range rows {
			args := make([]int32, pred.Arity())
			for j := range args {
				args[j] = int32(r.u32())
			}
			rows[i] = evRow{args: args, truth: mln.Truth(r.u8())}
		}
		s.evidence[pi] = rows
	}

	s.atoms = make([]grounding.SnapAtom, r.u32())
	for i := range s.atoms {
		pi := int32(r.u32())
		if r.err == nil && (pi < 0 || int(pi) >= len(prog.Preds)) {
			return nil, fmt.Errorf("snapshot atom %d references predicate %d of %d", i, pi, len(prog.Preds))
		}
		if r.err != nil {
			break
		}
		args := make([]int32, prog.Preds[pi].Arity())
		for j := range args {
			args[j] = int32(r.u32())
		}
		s.atoms[i] = grounding.SnapAtom{Pred: pi, Args: args, Truth: int64(r.u8())}
	}

	if n := int(r.u32()); r.err == nil && n != len(prog.Clauses) {
		return nil, fmt.Errorf("snapshot has %d clause raw sets, program has %d clauses", n, len(prog.Clauses))
	}
	s.raws = make([][]grounding.SnapRaw, len(prog.Clauses))
	for i := range s.raws {
		rs := make([]grounding.SnapRaw, r.u32())
		for j := range rs {
			weight := r.f64()
			lits := make([]uint64, r.u32())
			for k := range lits {
				lits[k] = r.u64()
			}
			rs[j] = grounding.SnapRaw{Weight: weight, Lits: lits}
			if r.err != nil {
				break
			}
		}
		s.raws[i] = rs
		if r.err != nil {
			break
		}
	}
	s.perStats = make([]grounding.Stats, len(prog.Clauses))
	for i := range s.perStats {
		s.perStats[i] = readStats(&r)
	}

	s.numAtoms = int(r.u32())
	if r.err == nil && (s.numAtoms < 0 || s.numAtoms > len(s.atoms)) {
		return nil, fmt.Errorf("snapshot network has %d atoms, registry has %d", s.numAtoms, len(s.atoms))
	}
	if r.err == nil {
		s.tableAid = make([]int64, s.numAtoms+1)
		for id := 1; id <= s.numAtoms; id++ {
			s.tableAid[id] = int64(r.u64())
		}
	}
	s.fixedCost = r.f64()
	nc := int(r.u32())
	// Each clause takes at least 12 bytes (weight + literal count).
	if r.err == nil && (nc < 0 || nc*12 > len(body)-r.off) {
		return nil, fmt.Errorf("snapshot network claims %d clauses", nc)
	}
	if r.err == nil {
		s.clauses = make([]mrf.Clause, nc)
		for i := range s.clauses {
			weight := r.f64()
			lits := make([]mrf.Lit, r.u32())
			for k := range lits {
				l := mrf.Lit(r.u32())
				if r.err == nil && (l == 0 || l > mrf.Lit(s.numAtoms) || -l > mrf.Lit(s.numAtoms)) {
					return nil, fmt.Errorf("snapshot clause %d references atom %d of %d", i, l, s.numAtoms)
				}
				lits[k] = l
			}
			s.clauses[i] = mrf.Clause{Weight: weight, Lits: lits}
			if r.err != nil {
				break
			}
		}
	}
	s.resStats = readStats(&r)
	if r.err != nil {
		return nil, fmt.Errorf("snapshot truncated: %w", r.err)
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("snapshot has %d trailing bytes", len(body)-r.off)
	}
	return s, nil
}

func writeStats(w *enc, st grounding.Stats) {
	w.u64(uint64(st.NumAtoms))
	w.u64(uint64(st.NumUsedAtoms))
	w.u64(uint64(st.NumGroundedRaw))
	w.u64(uint64(st.NumClauses))
	w.u64(uint64(st.FixedCostCount))
	w.u64(uint64(st.JoinRowsVisited))
	w.u64(uint64(st.PeakBytes))
}

func readStats(r *dec) grounding.Stats {
	return grounding.Stats{
		NumAtoms:        int(r.u64()),
		NumUsedAtoms:    int(r.u64()),
		NumGroundedRaw:  int(r.u64()),
		NumClauses:      int(r.u64()),
		FixedCostCount:  int(r.u64()),
		JoinRowsVisited: int64(r.u64()),
		PeakBytes:       int64(r.u64()),
	}
}

// ---- delta record encoding ----

// encodeDelta frames one evidence delta as a TypeDelta payload. The format
// (mln.EncodeDelta) is shared with the distributed tier's update fan-out.
func encodeDelta(predIdx map[*mln.Predicate]int32, d mln.Delta) []byte {
	return mln.EncodeDelta(predIdx, d)
}

// decodeDelta is encodeDelta's inverse against the serving program.
func decodeDelta(prog *mln.Program, payload []byte) (mln.Delta, error) {
	return mln.DecodeDelta(prog, payload)
}

// ---- fingerprints ----

// fingerprintProgram hashes the parts of the program (and the engine
// configuration knobs) that determine the grounded state, so a DataDir is
// only ever restored under the semantics it was written under. Predicate
// and clause text pin the interned-symbol meaning of the stored int32s.
func fingerprintProgram(prog *mln.Program, cfg EngineConfig) uint64 {
	h := fnv.New64a()
	ws := func(s string) {
		io.WriteString(h, s)
		h.Write([]byte{0})
	}
	wu := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	wu(uint64(cfg.Grounder))
	if cfg.UseClosure {
		wu(1)
	} else {
		wu(0)
	}
	wu(uint64(len(prog.Preds)))
	for _, p := range prog.Preds {
		ws(p.Name)
		for _, a := range p.Args {
			ws(a)
		}
		if p.Closed {
			wu(1)
		} else {
			wu(0)
		}
	}
	wu(uint64(len(prog.Clauses)))
	for _, c := range prog.Clauses {
		wu(math.Float64bits(c.Weight))
		ws(c.Source)
		wu(uint64(len(c.Lits)))
		for _, l := range c.Lits {
			if l.Pred != nil {
				ws(l.Pred.Name)
			} else {
				ws("=")
			}
			if l.Negated {
				wu(1)
			} else {
				wu(0)
			}
			wu(uint64(len(l.Args)))
			for _, t := range l.Args {
				if t.IsVar {
					ws("v" + t.Var)
				} else {
					wu(uint64(uint32(t.Const)))
				}
			}
		}
		for _, v := range c.Exist {
			ws(v)
		}
	}
	return h.Sum64()
}

// fingerprintEvidence hashes the base evidence and the typed domains it
// populated — including the constants' names, which pins the symbol-table
// interning the stored int32 ids depend on.
func fingerprintEvidence(prog *mln.Program, ev *mln.Evidence) uint64 {
	h := fnv.New64a()
	wu := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for i, pred := range prog.Preds {
		wu(uint64(i))
		wu(uint64(ev.Count(pred)))
		ev.ForEach(pred, func(args []int32, t mln.Truth) {
			for _, a := range args {
				wu(uint64(uint32(a)))
			}
			h.Write([]byte{byte(t)})
		})
	}
	for _, pred := range prog.Preds {
		for _, typ := range pred.Args {
			dom := prog.Domains[typ]
			if dom == nil {
				wu(0)
				continue
			}
			wu(uint64(len(dom.Consts)))
			for _, c := range dom.Consts {
				io.WriteString(h, prog.Syms.Name(c))
				h.Write([]byte{0})
			}
		}
	}
	return h.Sum64()
}

// ---- binary helpers ----

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

type enc struct{ b []byte }

func (e *enc) u8(v byte)     { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string)  { e.u32(uint32(len(s))); e.b = append(e.b, s...) }

func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

type dec struct {
	b   []byte
	off int
	err error
}

var errShortBuffer = errors.New("short buffer")

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b)-d.off < n {
		d.err = errShortBuffer
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *dec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil || n > len(d.b)-d.off {
		if d.err == nil {
			d.err = errShortBuffer
		}
		return ""
	}
	return string(d.take(n))
}

func (d *dec) bool() bool { return d.u8() != 0 }

func fsyncFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
