package tuffy_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark delegates to the internal/bench driver that cmd/tuffybench
// also uses, so `go test -bench=.` regenerates every experiment. Drivers
// print their table once (on the first iteration) so bench output doubles
// as the experiment report.
//
// This file is an external test package: internal/bench imports the root
// package for the serve experiment, so importing bench from inside
// package tuffy's own tests would cycle.

import (
	"context"
	"os"
	"sync"
	"testing"

	"tuffy"
	"tuffy/internal/bench"
	"tuffy/internal/datagen"
	"tuffy/internal/search"
)

var benchScale = bench.DefaultScale()

// runDriver runs an experiment driver b.N times, rendering the table once.
func runDriver(b *testing.B, name string, once *sync.Once, fn func(context.Context, bench.Scale) (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := fn(context.Background(), benchScale)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		once.Do(func() { t.Render(os.Stdout) })
	}
}

var (
	onceT1, onceT2, onceT3, onceT4, onceT5, onceT6, onceT7              sync.Once
	onceF3, onceF4, onceF5, onceF6, onceF8, onceThm, onceAblat, onceERp sync.Once
	onceGPar, oncePPar, onceFBatch, onceServe                           sync.Once
)

func BenchmarkTable1_DatasetStats(b *testing.B) {
	runDriver(b, "table1", &onceT1, bench.Table1)
}

func BenchmarkTable2_GroundingTime(b *testing.B) {
	runDriver(b, "table2", &onceT2, bench.Table2)
}

func BenchmarkTable3_FlippingRates(b *testing.B) {
	runDriver(b, "table3", &onceT3, bench.Table3)
}

func BenchmarkTable4_SpaceEfficiency(b *testing.B) {
	runDriver(b, "table4", &onceT4, bench.Table4)
}

func BenchmarkTable5_PartitioningQuality(b *testing.B) {
	runDriver(b, "table5", &onceT5, bench.Table5)
}

func BenchmarkTable6_LesionStudy(b *testing.B) {
	runDriver(b, "table6", &onceT6, bench.Table6)
}

func BenchmarkTable7_LoadingParallelism(b *testing.B) {
	runDriver(b, "table7", &onceT7, bench.Table7)
}

func BenchmarkFigure3_TimeCost(b *testing.B) {
	runDriver(b, "figure3", &onceF3, bench.Figure3)
}

func BenchmarkFigure4_HybridVsRDBMS(b *testing.B) {
	runDriver(b, "figure4", &onceF4, bench.Figure4)
}

func BenchmarkFigure5_ComponentAware(b *testing.B) {
	runDriver(b, "figure5", &onceF5, bench.Figure5)
}

func BenchmarkFigure6_MemoryBudgets(b *testing.B) {
	runDriver(b, "figure6", &onceF6, bench.Figure6)
}

func BenchmarkFigure8_Example1(b *testing.B) {
	runDriver(b, "figure8", &onceF8, bench.Figure8)
}

func BenchmarkTheorem31_HittingTime(b *testing.B) {
	runDriver(b, "theorem31", &onceThm, bench.Theorem31)
}

func BenchmarkSection43_ERPlusScalability(b *testing.B) {
	runDriver(b, "erplus", &onceERp, bench.ERPlus)
}

func BenchmarkAblation_ActiveClosure(b *testing.B) {
	runDriver(b, "closure", &onceAblat, bench.ClosureAblation)
}

func BenchmarkGroundingParallelism(b *testing.B) {
	runDriver(b, "groundpar", &onceGPar, bench.GroundParallel)
}

func BenchmarkPartitionParallelism(b *testing.B) {
	runDriver(b, "partpar", &oncePPar, bench.PartParallel)
}

func BenchmarkFlipBatch_SideTableSearch(b *testing.B) {
	runDriver(b, "flipbatch", &onceFBatch, bench.FlipBatch)
}

func BenchmarkServe_AdmissionScheduler(b *testing.B) {
	runDriver(b, "serve", &onceServe, bench.Serve)
}

// Micro-benchmarks of the core hot paths, for profiling regressions.

func BenchmarkWalkSATFlips(b *testing.B) {
	m := datagen.Example1(500)
	b.ResetTimer()
	search.WalkSAT(context.Background(), m, search.Options{MaxFlips: int64(b.N), Seed: 1})
}

func BenchmarkComponentDetection(b *testing.B) {
	m := datagen.Example1(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(m.Components(false)); got != 2000 {
			b.Fatalf("components = %d", got)
		}
	}
}

func BenchmarkGroundingRC(b *testing.B) {
	ds := datagen.RC(datagen.RCConfig{Papers: 200, Authors: 80, Clusters: 40, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := tuffy.New(ds.Prog, ds.Ev, tuffy.Config{})
		if err := sys.Ground(); err != nil {
			b.Fatal(err)
		}
	}
}
