package tuffy

// Engine-level durability tests: warm-start bit-identity, the crash matrix
// over every injected fault point in the commit/checkpoint path, torn-WAL-
// tail recovery, and result-cache persistence through the serving layer.
//
// The invariant under test everywhere: reopening a DataDir after a crash
// (simulated by abandoning an engine without Close, optionally with a
// fault frozen mid-operation) recovers to exactly the pre- or post-
// operation epoch — never a state in between — and the recovered engine's
// answers are bit-identical to a never-crashed one's.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tuffy/internal/datagen"
	"tuffy/internal/mln"
)

// openDurableIE opens (cold or warm) a durable engine over the small IE
// dataset. The base evidence is cloned per open, as a fresh process would
// re-parse it.
func openDurableIE(t *testing.T, ds *datagen.Dataset, dir string, cfg EngineConfig) *Engine {
	t.Helper()
	cfg.DataDir = dir
	eng, err := Open(ds.Prog, ds.Ev.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func mustMAP(t *testing.T, eng *Engine, seed int64) *MAPResult {
	t.Helper()
	res, err := eng.InferMAP(context.Background(), InferOptions{MaxFlips: 20_000, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustUpdate(t *testing.T, eng *Engine, d mln.Delta) *UpdateResult {
	t.Helper()
	ur, err := eng.UpdateEvidence(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	return ur
}

// A closed engine's DataDir must warm-start: grounded state, epoch, update
// count, and both MAP and marginal answers bit-identical to the live
// engine before Close — without Ground ever running.
func TestWarmStartBitIdentical(t *testing.T) {
	ctx := context.Background()
	ds := ieSmall()
	dir := t.TempDir()

	eng := openDurableIE(t, ds, dir, EngineConfig{})
	if ds := eng.DurabilityStats(); !ds.Enabled || ds.WarmStart {
		t.Fatalf("fresh durable engine: stats %+v, want enabled cold start", ds)
	}
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, eng, datagen.RandomDelta(ds, "hint", 8, 42))
	wantMAP := mustMAP(t, eng, 7)
	wantMarg, err := eng.InferMarginal(ctx, InferOptions{Samples: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wantGen, wantUpdates := eng.Generation(), eng.UpdatesApplied()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	warm := openDurableIE(t, ds, dir, EngineConfig{})
	defer warm.Close()
	st := warm.DurabilityStats()
	if !st.WarmStart {
		t.Fatal("reopen did not warm-start")
	}
	if st.ReplayedDeltas != 0 {
		t.Fatalf("clean reopen replayed %d deltas, want the fast path (0)", st.ReplayedDeltas)
	}
	if warm.Grounded() == nil {
		t.Fatal("warm engine is not serving-ready")
	}
	if warm.Generation() != wantGen || warm.UpdatesApplied() != wantUpdates {
		t.Fatalf("warm state: gen %d updates %d, want %d/%d",
			warm.Generation(), warm.UpdatesApplied(), wantGen, wantUpdates)
	}
	// Ground on a warm engine is a no-op (already grounded).
	if err := warm.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	requireSameMAP(t, "warm MAP", mustMAP(t, warm, 7), wantMAP)
	gotMarg, err := warm.InferMarginal(ctx, InferOptions{Samples: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMarginal(t, "warm marginal", gotMarg, wantMarg)

	// The clean reopen deferred the table and grounder rebuild; the first
	// update pays for it. The materialized state must compose exactly: the
	// warm engine's post-update answers match a never-crashed engine that
	// applied the same two deltas.
	u2 := datagen.RandomDelta(ds, "hint", 8, 43)
	warmUR := mustUpdate(t, warm, u2)
	ref := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	mustUpdate(t, ref, datagen.RandomDelta(ds, "hint", 8, 42))
	refUR := mustUpdate(t, ref, u2)
	if warmUR.Epoch != refUR.Epoch {
		t.Fatalf("post-materialization epoch %d, want %d", warmUR.Epoch, refUR.Epoch)
	}
	requireSameMAP(t, "post-materialization MAP", mustMAP(t, warm, 7), mustMAP(t, ref, 7))
}

// The engine crash matrix: freeze the durable layer at every fault point
// in the update commit path and the checkpoint path, abandon the engine as
// a crash would, and verify recovery lands on exactly the pre- or post-
// update epoch.
//
// For the delta.* points the update's commit never completes, so the
// update errors and recovery must produce the pre-update answers. For the
// ckpt.* points (cadence 1, so U2's own checkpoint trips the fault) the
// update is already committed in the WAL when the checkpoint dies, so it
// must report success and recovery must produce the post-update answers.
func TestEngineCrashMatrix(t *testing.T) {
	ds := ieSmall()
	points := []struct {
		point     string
		committed bool // does U2 survive the crash?
	}{
		{"delta.append", false},
		{"delta.sync", false},
		{"ckpt.flush", true},
		{"ckpt.snapshot", true},
		{"ckpt.rename", true},
		{"ckpt.reset", true},
	}
	for _, tc := range points {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			eng := openDurableIE(t, ds, dir, EngineConfig{CheckpointEveryUpdates: 1})
			if err := eng.Ground(context.Background()); err != nil {
				t.Fatal(err)
			}
			u1 := datagen.RandomDelta(ds, "hint", 6, 21)
			u2 := datagen.RandomDelta(ds, "hint", 6, 22)
			mustUpdate(t, eng, u1)
			preMAP := mustMAP(t, eng, 7)
			preGen := eng.Generation()

			eng.dur.fault = func(p string) error {
				if p == tc.point {
					return fmt.Errorf("injected fault at %s", p)
				}
				return nil
			}
			ur, err := eng.UpdateEvidence(context.Background(), u2)
			var wantMAP *MAPResult
			var wantGen uint64
			if tc.committed {
				// The cadence checkpoint died after the commit point: the
				// update itself must succeed and count the failure.
				if err != nil {
					t.Fatalf("update after commit point failed: %v", err)
				}
				if eng.DurabilityStats().CheckpointFailures == 0 {
					t.Fatal("checkpoint failure not recorded")
				}
				wantMAP, wantGen = mustMAP(t, eng, 7), ur.Epoch
			} else {
				if err == nil {
					t.Fatal("update with a dead commit path reported success")
				}
				wantMAP, wantGen = preMAP, preGen
			}
			// Abandon eng without Close: the frozen files are the crash image.
			warm := openDurableIE(t, ds, dir, EngineConfig{})
			defer warm.Close()
			if !warm.DurabilityStats().WarmStart {
				t.Fatal("recovery did not warm-start")
			}
			if warm.Generation() != wantGen {
				t.Fatalf("recovered generation %d, want %d", warm.Generation(), wantGen)
			}
			requireSameMAP(t, "recovered MAP", mustMAP(t, warm, 7), wantMAP)
		})
	}
}

// A torn WAL tail — the frame a crash cut short — must be truncated away,
// recovering the state just before the torn update. After the abandoned
// U2, the last synced frame in the log is deterministically U2's delta
// record (the commit precedes the re-ground, whose page images stay
// buffered), so corrupting the file's last byte tears exactly U2.
func TestTornWALTailRecoversPreUpdate(t *testing.T) {
	ds := ieSmall()
	dir := t.TempDir()
	eng := openDurableIE(t, ds, dir, EngineConfig{})
	if err := eng.Ground(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, eng, datagen.RandomDelta(ds, "hint", 6, 21))
	preMAP := mustMAP(t, eng, 7)
	preGen := eng.Generation()
	mustUpdate(t, eng, datagen.RandomDelta(ds, "hint", 6, 22))
	// Abandon the engine; then tear the last byte of the log.
	walPath := filepath.Join(dir, "wal.log")
	buf, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(walPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	warm := openDurableIE(t, ds, dir, EngineConfig{})
	defer warm.Close()
	st := warm.DurabilityStats()
	if !st.WarmStart {
		t.Fatal("recovery did not warm-start")
	}
	if st.ReplayedDeltas != 1 {
		t.Fatalf("replayed %d deltas, want 1 (U1 only; torn U2 truncated)", st.ReplayedDeltas)
	}
	if warm.Generation() != preGen {
		t.Fatalf("recovered generation %d, want %d", warm.Generation(), preGen)
	}
	requireSameMAP(t, "post-torn-tail MAP", mustMAP(t, warm, 7), preMAP)
}

// A DataDir belongs to one program + base evidence: reopening it with a
// different program must fail loudly rather than silently cold-start over
// the old files.
func TestDataDirMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	ie := ieSmall()
	eng := openDurableIE(t, ie, dir, EngineConfig{})
	if err := eng.Ground(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rc := rcSmall()
	if _, err := Open(rc.Prog, rc.Ev.Clone(), EngineConfig{DataDir: dir}); err == nil {
		t.Fatal("reopening a DataDir with a different program must fail")
	}
}

// UpdateEvidence failures before the commit point stay cleanly retryable
// on a durable engine: a canceled update rolls back, scrubs the WAL, and
// the same delta then applies — with recovery landing post-update.
func TestDurableUpdateCancelRetry(t *testing.T) {
	ds := ieSmall()
	dir := t.TempDir()
	eng := openDurableIE(t, ds, dir, EngineConfig{})
	if err := eng.Ground(context.Background()); err != nil {
		t.Fatal(err)
	}
	d := datagen.RandomDelta(ds, "hint", 6, 21)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.UpdateEvidence(canceled, d); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled update: err = %v, want ErrCanceled", err)
	}
	ur := mustUpdate(t, eng, d)
	wantMAP := mustMAP(t, eng, 7)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	warm := openDurableIE(t, ds, dir, EngineConfig{})
	defer warm.Close()
	if warm.Generation() != ur.Epoch {
		t.Fatalf("recovered generation %d, want %d", warm.Generation(), ur.Epoch)
	}
	requireSameMAP(t, "retry-then-recover MAP", mustMAP(t, warm, 7), wantMAP)
}

// The serving layer's result cache survives a restart: entries persisted
// at Close are reloaded by the next Serve over the warm-started engine,
// and an identical query is answered from cache, bit-identically.
func TestServerCacheSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	ds := ieSmall()
	dir := t.TempDir()

	eng := openDurableIE(t, ds, dir, EngineConfig{DataDir: filepath.Join(dir, "replica0")})
	if err := eng.Ground(ctx); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ServerConfig{DataDir: dir}, eng)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Options: InferOptions{MaxFlips: 20_000, Seed: 7}}
	margReq := Request{Options: InferOptions{Samples: 60, Seed: 5}}
	want, err := srv.InferMAP(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wantMarg, err := srv.InferMarginal(ctx, margReq)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	warm := openDurableIE(t, ds, dir, EngineConfig{DataDir: filepath.Join(dir, "replica0")})
	defer warm.Close()
	srv2, err := Serve(ServerConfig{DataDir: dir}, warm)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	got, err := srv2.InferMAP(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	gotMarg, err := srv2.InferMarginal(ctx, margReq)
	if err != nil {
		t.Fatal(err)
	}
	m := srv2.Metrics()
	if m.CacheHits != 2 || m.CacheMisses != 0 {
		t.Fatalf("restarted server: %d hits / %d misses, want both queries served from the reloaded cache", m.CacheHits, m.CacheMisses)
	}
	requireSameMAP(t, "cached MAP after restart", got, want)
	requireSameMarginal(t, "cached marginal after restart", gotMarg, wantMarg)
}

// A corrupt cache file must never poison a server: Serve starts with an
// empty cache and recomputes.
func TestCorruptCacheFileIgnored(t *testing.T) {
	ctx := context.Background()
	ds := ieSmall()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "cache.tfy"), []byte("TFYCACH1 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	srv, err := Serve(ServerConfig{DataDir: dir}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.InferMAP(ctx, Request{Options: InferOptions{MaxFlips: 5_000, Seed: 1}}); err != nil {
		t.Fatal(err)
	}
	if m := srv.Metrics(); m.CacheHits != 0 || m.CacheMisses != 1 {
		t.Fatalf("corrupt cache file: %d hits / %d misses, want a plain miss", m.CacheHits, m.CacheMisses)
	}
}
