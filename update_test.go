package tuffy

// Tests of the epoch-based live-evidence path: UpdateEvidence must publish
// networks bit-identical to a fresh Ground over the merged evidence, keep
// in-flight and subsequent queries consistent, and leave the previous
// epoch serving (with nothing leaked) when an update fails mid-way.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/mln"
)

func rcSmall() *datagen.Dataset {
	return datagen.RC(datagen.RCConfig{Papers: 60, Authors: 30, Categories: 4, Clusters: 12, Seed: 11})
}

func ieSmall() *datagen.Dataset {
	return datagen.IE(datagen.IEConfig{Chains: 30, Seed: 13})
}

// mergedEvidence clones base and applies delta — the "from scratch" side
// of every bit-identity check.
func mergedEvidence(t *testing.T, base *mln.Evidence, delta mln.Delta) *mln.Evidence {
	t.Helper()
	ev := base.Clone()
	if _, err := ev.Apply(delta); err != nil {
		t.Fatal(err)
	}
	return ev
}

func groundedEngine(t *testing.T, prog *mln.Program, ev *mln.Evidence, cfg EngineConfig) *Engine {
	t.Helper()
	eng := mustOpen(t, prog, ev, cfg)
	if err := eng.Ground(context.Background()); err != nil {
		t.Fatal(err)
	}
	return eng
}

func requireSameMAP(t *testing.T, tag string, got, want *MAPResult) {
	t.Helper()
	if got.Cost != want.Cost {
		t.Fatalf("%s: cost %v != %v", tag, got.Cost, want.Cost)
	}
	if got.Flips != want.Flips {
		t.Fatalf("%s: flips %d != %d", tag, got.Flips, want.Flips)
	}
	if !sameStates(got.State, want.State) {
		t.Fatalf("%s: best states differ", tag)
	}
}

func requireSameMarginal(t *testing.T, tag string, got, want *MarginalResult) {
	t.Helper()
	if len(got.Probs) != len(want.Probs) {
		t.Fatalf("%s: prob lengths %d != %d", tag, len(got.Probs), len(want.Probs))
	}
	for i := range want.Probs {
		if fmt.Sprint(got.Probs[i].Atom) != fmt.Sprint(want.Probs[i].Atom) || got.Probs[i].P != want.Probs[i].P {
			t.Fatalf("%s: prob %d differs: %v=%v vs %v=%v", tag, i,
				got.Probs[i].Atom, got.Probs[i].P, want.Probs[i].Atom, want.Probs[i].P)
		}
	}
}

// Randomized insert+retract deltas over the IE and RC datasets: after
// UpdateEvidence, MAP and marginal answers must be bit-identical to a
// fresh engine grounded from scratch on the merged evidence — across a
// chain of updates, and again after applying an update's Inverse.
func TestUpdateEvidenceMatchesFreshGround(t *testing.T) {
	cases := []struct {
		name string
		ds   *datagen.Dataset
		pred string
		n    int
	}{
		{"RC/refers", rcSmall(), "refers", 8},
		{"RC/cat", rcSmall(), "cat", 6},
		{"IE/hint", ieSmall(), "hint", 10},
	}
	mapQ := InferOptions{MaxFlips: 20_000, Seed: 7}
	margQ := InferOptions{Samples: 60, Seed: 9}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			eng := groundedEngine(t, tc.ds.Prog, tc.ds.Ev.Clone(), EngineConfig{})
			// Materialize the derived structures so the updates exercise the
			// repair paths (not just lazy recompute on the new epoch).
			if _, err := eng.InferMAP(ctx, mapQ); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.InferMarginal(ctx, margQ); err != nil {
				t.Fatal(err)
			}

			merged := tc.ds.Ev.Clone()
			var lastInverse mln.Delta
			for round := 0; round < 3; round++ {
				delta := datagen.RandomDelta(tc.ds, tc.pred, tc.n, int64(100*round+99))
				// RandomDelta derives ops from the original dataset; rounds
				// after the first may retract tuples round 0 already removed.
				// Filter to ops valid against the current merged evidence.
				delta = filterValid(merged, delta)
				if delta.Len() == 0 {
					continue
				}
				ur, err := eng.UpdateEvidence(ctx, delta)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				lastInverse = ur.Inverse
				if _, err := merged.Apply(delta); err != nil {
					t.Fatal(err)
				}
				if !ur.Identical && ur.ClausesRerun == ur.ClausesTotal {
					t.Fatalf("round %d: no clause grounding was reused (%d/%d rerun)", round, ur.ClausesRerun, ur.ClausesTotal)
				}

				fresh := groundedEngine(t, tc.ds.Prog, merged.Clone(), EngineConfig{})
				gotM, err := eng.InferMAP(ctx, mapQ)
				if err != nil {
					t.Fatal(err)
				}
				wantM, err := fresh.InferMAP(ctx, mapQ)
				if err != nil {
					t.Fatal(err)
				}
				requireSameMAP(t, fmt.Sprintf("round %d MAP", round), gotM, wantM)
				gotP, err := eng.InferMarginal(ctx, margQ)
				if err != nil {
					t.Fatal(err)
				}
				wantP, err := fresh.InferMarginal(ctx, margQ)
				if err != nil {
					t.Fatal(err)
				}
				requireSameMarginal(t, fmt.Sprintf("round %d marginal", round), gotP, wantP)
			}

			// Undo the last update with its Inverse: answers must return to
			// the pre-update state bit-identically.
			if lastInverse.Len() > 0 {
				if _, err := merged.Apply(lastInverse); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.UpdateEvidence(ctx, lastInverse); err != nil {
					t.Fatal(err)
				}
				fresh := groundedEngine(t, tc.ds.Prog, merged.Clone(), EngineConfig{})
				gotM, err := eng.InferMAP(ctx, mapQ)
				if err != nil {
					t.Fatal(err)
				}
				wantM, err := fresh.InferMAP(ctx, mapQ)
				if err != nil {
					t.Fatal(err)
				}
				requireSameMAP(t, "inverse MAP", gotM, wantM)
			}
		})
	}
}

// filterValid drops retractions of tuples absent from ev (RandomDelta
// builds against the original dataset; chained rounds drift from it).
func filterValid(ev *mln.Evidence, d mln.Delta) mln.Delta {
	var out mln.Delta
	for _, op := range d.Ops {
		if op.Truth == mln.Unknown {
			if _, ok := ev.Get(op.Pred, op.Args); !ok {
				continue
			}
		}
		out.Ops = append(out.Ops, op)
	}
	return out
}

// A delta that re-asserts existing evidence is a logical no-op: the
// grounded network is bit-identical, so the engine keeps the current epoch
// (and everything keyed to it) instead of publishing a new one.
func TestUpdateEvidenceIdenticalKeepsEpoch(t *testing.T) {
	ctx := context.Background()
	ds := rcSmall()
	eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	refers, _ := ds.Prog.Predicate("refers")
	var d mln.Delta
	found := false
	ds.Ev.ForEach(refers, func(args []int32, truth mln.Truth) {
		if !found {
			d.Upsert(refers, args, truth)
			found = true
		}
	})
	if !found {
		t.Fatal("no refers evidence to re-assert")
	}
	before := eng.Generation()
	ur, err := eng.UpdateEvidence(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if !ur.Identical {
		t.Fatalf("re-asserting existing evidence: Identical=false (%+v)", ur)
	}
	if eng.Generation() != before {
		t.Fatalf("generation moved %d -> %d on an identical update", before, eng.Generation())
	}
	if eng.UpdatesApplied() != 1 {
		t.Fatalf("UpdatesApplied = %d, want 1", eng.UpdatesApplied())
	}
}

// The component memo must survive an evidence update: components the
// update did not touch keep their content fingerprints (shared local-MRF
// pointers), so re-running the same query on the new epoch serves them as
// bit-identical hits instead of re-searching.
func TestMemoSurvivesUpdateForUntouchedComponents(t *testing.T) {
	ctx := context.Background()
	ds := rcSmall()
	eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	q := InferOptions{MaxFlips: 20_000, Seed: 7}
	if _, err := eng.InferMAP(ctx, q); err != nil {
		t.Fatal(err)
	}
	delta := datagen.RandomDelta(ds, "refers", 4, 99)
	ur, err := eng.UpdateEvidence(ctx, delta)
	if err != nil {
		t.Fatal(err)
	}
	if ur.Identical {
		t.Skip("delta happened to be a logical no-op")
	}
	// The MAP query materialized the partitioning, so the update repaired
	// it; untouched parts share their local-MRF pointers with the old
	// epoch, which is what keeps their memo fingerprints warm.
	if ur.PartsReused == 0 {
		t.Fatalf("no parts reused: %+v", ur)
	}
	h0 := eng.MemoStats().Hits
	if _, err := eng.InferMAP(ctx, q); err != nil {
		t.Fatal(err)
	}
	h1 := eng.MemoStats().Hits
	if h1 <= h0 {
		t.Fatalf("memo hits did not grow across the update: %d -> %d", h0, h1)
	}
}

// Errors before any mutation: updates require a grounded bottom-up engine
// and a rejected delta (constant outside its domain) changes nothing.
func TestUpdateEvidenceRejections(t *testing.T) {
	ctx := context.Background()
	ds := rcSmall()

	cold := mustOpen(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	if _, err := cold.UpdateEvidence(ctx, mln.Delta{}); err == nil {
		t.Fatal("UpdateEvidence before Ground must fail")
	}

	td := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{Grounder: TopDown})
	if _, err := td.UpdateEvidence(ctx, mln.Delta{}); err == nil {
		t.Fatal("UpdateEvidence on a top-down engine must fail")
	}

	eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	refers, _ := ds.Prog.Predicate("refers")
	var bad mln.Delta
	bad.Upsert(refers, []int32{9999, 9999}, mln.True)
	gen := eng.Generation()
	if _, err := eng.UpdateEvidence(ctx, bad); err == nil {
		t.Fatal("out-of-domain constant must be rejected")
	}
	if eng.Generation() != gen || eng.UpdatesApplied() != 0 {
		t.Fatal("rejected delta must leave the engine untouched")
	}
	q := InferOptions{MaxFlips: 10_000, Seed: 3}
	if _, err := eng.InferMAP(ctx, q); err != nil {
		t.Fatalf("engine must keep serving after a rejected delta: %v", err)
	}
}

// faultDisk fails exactly one read after a countdown — deterministic
// mid-update failure injection (the incremental re-ground reads the
// predicate tables through the buffer pool). Single-shot, so the rollback
// that follows the failure runs on a healthy disk.
type faultDisk struct {
	storage.Disk
	reads     atomic.Int64
	failAfter atomic.Int64 // negative = never fail
}

func (d *faultDisk) ReadPage(id storage.PageID, buf []byte) error {
	n := d.reads.Add(1)
	if fa := d.failAfter.Load(); fa >= 0 && n > fa && d.failAfter.CompareAndSwap(fa, -1) {
		return fmt.Errorf("injected read fault (read %d)", n)
	}
	return d.Disk.ReadPage(id, buf)
}

// A mid-update storage failure must roll the tables back, keep the
// previous epoch serving bit-identically, leak no tables, and leave the
// delta retryable — the retry publishing the same network a fresh Ground
// over the merged evidence builds.
func TestUpdateEvidenceFaultKeepsPreviousEpochAndRetries(t *testing.T) {
	ctx := context.Background()
	ds := ieSmall()
	delta := datagen.RandomDelta(ds, "hint", 8, 42)
	q := InferOptions{MaxFlips: 10_000, Seed: 5}
	// A tiny buffer pool forces real disk reads during the update (with the
	// default pool the whole dataset stays cached and no read would fail).
	mkCfg := func(d storage.Disk) EngineConfig {
		return EngineConfig{DB: db.Config{Disk: d, BufferPoolPages: 2}}
	}

	// Calibration run on a healthy disk: learn how many reads grounding
	// takes (A) and how many the whole update takes (B). Reads are
	// deterministic (single-threaded, same seeds), so a fault injected
	// between A and B lands mid-update in the real run.
	calDisk := &faultDisk{Disk: storage.NewMemDisk()}
	calDisk.failAfter.Store(-1)
	cal := groundedEngine(t, ds.Prog, ds.Ev.Clone(), mkCfg(calDisk))
	if _, err := cal.InferMAP(ctx, q); err != nil {
		t.Fatal(err)
	}
	a := calDisk.reads.Load()
	if _, err := cal.UpdateEvidence(ctx, delta); err != nil {
		t.Fatal(err)
	}
	b := calDisk.reads.Load()
	if b <= a {
		t.Fatalf("update performed no reads (a=%d b=%d); fault injection impossible", a, b)
	}

	disk := &faultDisk{Disk: storage.NewMemDisk()}
	disk.failAfter.Store(-1)
	eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), mkCfg(disk))
	want, err := eng.InferMAP(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	tablesBefore := append([]string(nil), eng.DB().TableNames()...)
	sort.Strings(tablesBefore)

	disk.failAfter.Store(disk.reads.Load() + (b-a)/2)
	if _, err := eng.UpdateEvidence(ctx, delta); err == nil {
		t.Fatal("expected the injected fault to fail the update")
	}
	if eng.Generation() != 0 {
		t.Fatalf("failed update advanced the epoch to %d", eng.Generation())
	}
	tablesAfter := append([]string(nil), eng.DB().TableNames()...)
	sort.Strings(tablesAfter)
	if fmt.Sprint(tablesBefore) != fmt.Sprint(tablesAfter) {
		t.Fatalf("failed update leaked tables:\nbefore %v\nafter  %v", tablesBefore, tablesAfter)
	}
	got, err := eng.InferMAP(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	requireSameMAP(t, "after failed update", got, want)

	// Heal the disk and retry the identical delta: it must now commit and
	// match a fresh Ground over the merged evidence bit-identically.
	disk.failAfter.Store(-1)
	if _, err := eng.UpdateEvidence(ctx, delta); err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	fresh := groundedEngine(t, ds.Prog, mergedEvidence(t, ds.Ev, delta), EngineConfig{})
	gotM, err := eng.InferMAP(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := fresh.InferMAP(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	requireSameMAP(t, "retried update", gotM, wantM)
}

// A context that is already dead stops the update before it mutates
// anything; the previous epoch keeps serving and the delta is retryable.
func TestUpdateEvidenceCanceledLeavesEngineServing(t *testing.T) {
	ds := rcSmall()
	eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	delta := datagen.RandomDelta(ds, "refers", 4, 7)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.UpdateEvidence(canceled, delta); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if eng.Generation() != 0 || eng.UpdatesApplied() != 0 {
		t.Fatal("canceled update must not commit")
	}
	if _, err := eng.UpdateEvidence(context.Background(), delta); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
}

// Queries racing an update stream must each be bit-identical to the answer
// for the epoch they ran on: epochs alternate between the base evidence
// (even) and base+delta (odd), so every concurrent result is checked
// against the matching reference engine. Runs under -race in CI.
func TestConcurrentQueriesDuringUpdatesBitIdentical(t *testing.T) {
	ctx := context.Background()
	ds := rcSmall()
	eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	delta := datagen.RandomDelta(ds, "refers", 6, 99)

	q := InferOptions{MaxFlips: 8_000, Seed: 4}
	refEven := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	wantEven, err := refEven.InferMAP(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	refOdd := groundedEngine(t, ds.Prog, mergedEvidence(t, ds.Ev, delta), EngineConfig{})
	wantOdd, err := refOdd.InferMAP(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := eng.InferMAP(ctx, q)
				if err != nil {
					errCh <- err
					return
				}
				want := wantEven
				if r.Epoch%2 == 1 {
					want = wantOdd
				}
				if r.Cost != want.Cost || r.Flips != want.Flips || !sameStates(r.State, want.State) {
					errCh <- fmt.Errorf("epoch %d answer diverges from its reference", r.Epoch)
					return
				}
			}
		}()
	}

	next := delta
	for i := 0; i < 6; i++ {
		ur, err := eng.UpdateEvidence(ctx, next)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		next = ur.Inverse
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if eng.Generation() != 6 {
		t.Fatalf("generation = %d, want 6", eng.Generation())
	}
	// After three delta+inverse round trips the engine is back on the base
	// evidence: answers must match the even reference bit-identically.
	final, err := eng.InferMAP(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	requireSameMAP(t, "final", final, wantEven)
}

// TestServerUpdateEvidenceSweepsAndRetainsCache drives the serving layer
// through an identical (no-op) update — every cache entry must survive and
// be served as a verified hit — and then a real update, which must sweep
// the superseded epoch's entries and recompute on the new one.
func TestServerUpdateEvidenceSweepsAndRetainsCache(t *testing.T) {
	ctx := context.Background()
	ds := ieSmall()
	eng := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	srv, err := Serve(ServerConfig{}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mapReq := Request{Options: InferOptions{MaxFlips: 10_000, Seed: 5}}
	margReq := Request{Options: InferOptions{Samples: 40, Seed: 9}}
	wantMAP, err := srv.InferMAP(ctx, mapReq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.InferMarginal(ctx, margReq); err != nil {
		t.Fatal(err)
	}

	// Re-asserting existing evidence at its current truth is a logical
	// no-op: the grounded network is unchanged, so the epoch — and both
	// cache entries — stay live.
	hint, _ := ds.Prog.Predicate("hint")
	var noop mln.Delta
	ds.Ev.ForEach(hint, func(args []int32, truth mln.Truth) {
		if noop.Len() == 0 {
			noop.Upsert(hint, append([]int32(nil), args...), truth)
		}
	})
	if noop.Len() == 0 {
		t.Fatal("no hint evidence to re-assert")
	}
	ur, err := srv.UpdateEvidence(ctx, noop)
	if err != nil {
		t.Fatal(err)
	}
	if !ur.Identical {
		t.Fatalf("insert+retract batch not detected as identical: %+v", ur)
	}
	m := srv.Metrics()
	if m.Epoch != 0 || m.UpdatesApplied != 1 {
		t.Fatalf("after no-op update: epoch %d updates %d", m.Epoch, m.UpdatesApplied)
	}
	if m.CacheInvalidated != 0 || m.CacheRetained != 2 {
		t.Fatalf("no-op update swept the cache: invalidated %d retained %d",
			m.CacheInvalidated, m.CacheRetained)
	}
	hitsBefore := m.CacheHits
	again, err := srv.InferMAP(ctx, mapReq)
	if err != nil {
		t.Fatal(err)
	}
	requireSameMAP(t, "cache hit after no-op update", again, wantMAP)
	if got := srv.Metrics().CacheHits; got != hitsBefore+1 {
		t.Fatalf("surviving entry not served as a hit: hits %d -> %d", hitsBefore, got)
	}

	// A real delta publishes a new epoch: the old entries are swept and the
	// same query recomputes, matching a fresh Ground over merged evidence.
	delta := datagen.RandomDelta(ds, "hint", 6, 21)
	ur, err = srv.UpdateEvidence(ctx, delta)
	if err != nil {
		t.Fatal(err)
	}
	if ur.Identical {
		t.Skip("random delta happened to be a logical no-op")
	}
	m = srv.Metrics()
	if m.Epoch != 1 || m.UpdatesApplied != 2 {
		t.Fatalf("after real update: epoch %d updates %d", m.Epoch, m.UpdatesApplied)
	}
	if m.CacheInvalidated != 2 || m.CacheRetained != 2 {
		t.Fatalf("real update sweep wrong: invalidated %d retained %d",
			m.CacheInvalidated, m.CacheRetained)
	}
	missesBefore := m.CacheMisses
	got, err := srv.InferMAP(ctx, mapReq)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Metrics().CacheMisses != missesBefore+1 {
		t.Fatal("post-update query served from a stale cache entry")
	}
	merged := mergedEvidence(t, ds.Ev, noop) // no-op left evidence unchanged
	merged2 := mergedEvidence(t, merged, delta)
	fresh := groundedEngine(t, ds.Prog, merged2, EngineConfig{})
	want, err := fresh.InferMAP(ctx, mapReq.Options)
	if err != nil {
		t.Fatal(err)
	}
	requireSameMAP(t, "post-update recompute", got, want)
}

// TestServerUpdateCompensatesOnBackendFailure: with a BottomUp and a
// TopDown replica, an update commits on backend 0 and then fails on
// backend 1 (the top-down grounder has no incremental path). The server
// must roll backend 0 back with the inverse delta and keep serving
// pre-update answers.
func TestServerUpdateCompensatesOnBackendFailure(t *testing.T) {
	ctx := context.Background()
	ds := ieSmall()
	b0 := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{})
	b1 := groundedEngine(t, ds.Prog, ds.Ev.Clone(), EngineConfig{Grounder: TopDown})
	srv, err := Serve(ServerConfig{}, b0, b1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	opts := InferOptions{MaxFlips: 10_000, Seed: 5}
	want, err := b0.InferMAP(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}

	delta := datagen.RandomDelta(ds, "hint", 6, 33)
	if _, err := srv.UpdateEvidence(ctx, delta); err == nil {
		t.Fatal("expected the top-down backend to fail the update")
	} else if !strings.Contains(err.Error(), "all backends restored") {
		t.Fatalf("compensation not reported: %v", err)
	}
	if g := b1.Generation(); g != 0 {
		t.Fatalf("failed backend advanced to epoch %d", g)
	}
	// Backend 0 moved forward and was compensated back: two epochs, same
	// logical evidence, bit-identical network by canonicalization.
	if g := b0.Generation(); g != 2 {
		t.Fatalf("compensated backend at epoch %d, want 2", g)
	}
	got, err := b0.InferMAP(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameMAP(t, "compensated backend", got, want)
	if _, err := srv.InferMAP(ctx, Request{Options: opts}); err != nil {
		t.Fatalf("server stopped serving after failed update: %v", err)
	}
}
