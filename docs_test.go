package tuffy

// Documentation link check: every relative markdown link in README.md and
// docs/ must resolve to a file in the repository. CI runs this as a
// dedicated docs-link step, so a doc reorganization that leaves dangling
// references fails the build instead of rotting silently.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style and
// autolinks are out of scope; the repository's docs use inline links only.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// docFiles returns the markdown files whose links are checked: the
// top-level *.md files plus everything under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, sub...)
}

// TestDocRelativeLinks fails on any relative link whose target does not
// exist on disk. External links (scheme-prefixed) and pure in-page anchors
// are skipped; a fragment on a relative link is stripped before the check.
func TestDocRelativeLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if strings.HasPrefix(target, "#") {
				continue // in-page anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dead relative link %q (resolved %s)", file, m[1], resolved)
			}
		}
	}
}
