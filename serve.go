package tuffy

// This file is the serving layer on top of the Engine: tuffy.Serve wraps
// one or more grounded Engines in an admission-controlled scheduler
// (internal/server) with per-priority FIFO lanes, a bounded queue, per-
// query budget enforcement, an epoch-keyed result cache over canonicalized
// InferOptions, and metrics. Server.UpdateEvidence propagates live
// evidence deltas to every backend and sweeps the cache entries the new
// epoch superseded. It is the heavy-traffic front door: cmd/tuffyd exposes
// it over HTTP (including POST /evidence), and `tuffybench -exp serve`
// measures it under concurrent clients.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tuffy/internal/mln"
	"tuffy/internal/remote"
	"tuffy/internal/search"
	"tuffy/internal/server"
)

// ServerMetrics is a snapshot of the serving layer's counters.
type ServerMetrics = server.Metrics

// Typed admission outcomes, re-exported so callers match them with
// errors.Is without importing internal packages.
var (
	// ErrQueueFull rejects a query when the admission queue is at capacity.
	ErrQueueFull = server.ErrQueueFull
	// ErrServerClosed rejects queries after Close.
	ErrServerClosed = server.ErrServerClosed
	// ErrBudgetExceeded rejects a query whose explicit budgets exceed the
	// server's per-query caps; the concrete error carries the resource,
	// the request and the limit.
	ErrBudgetExceeded = server.ErrBudgetExceeded
	// ErrExpiredInQueue reports a query whose context ended while it was
	// still waiting for an execution slot — it never ran.
	ErrExpiredInQueue = server.ErrExpiredInQueue
)

// ServerConfig tunes the admission-controlled serving layer. The zero
// value serves with 4 execution slots, a 64-query admission queue, 3
// priority lanes, no budget caps, no per-query deadline and a 4096-entry
// result cache.
type ServerConfig struct {
	// MaxInFlight caps concurrently executing queries (default 4).
	MaxInFlight int
	// MaxQueue bounds admitted-but-waiting queries across all lanes;
	// queries beyond it are rejected with ErrQueueFull (default 64).
	MaxQueue int
	// Priorities is the number of lanes; Request.Priority 0 is served
	// first, Priorities-1 last (default 3).
	Priorities int

	// MaxFlipsPerQuery caps one query's WalkSAT flip budget (0 = no cap).
	// A query that explicitly asks for more is rejected with a
	// *server.BudgetError; a query that left MaxFlips at zero has its
	// default budget clamped down to the cap instead.
	MaxFlipsPerQuery int64
	// MaxSamplesPerQuery caps one marginal query's MC-SAT samples, with
	// the same explicit-reject / default-clamp split.
	MaxSamplesPerQuery int
	// MaxBytesPerQuery rejects queries whose estimated search memory (from
	// the grounded network's atom/clause counts, per mode) exceeds the cap
	// (0 = no cap).
	MaxBytesPerQuery int64
	// MaxQueryTime is a per-query wall-clock deadline applied at
	// admission; it covers queue wait plus execution, through the same
	// context plumbing every search loop already honors. 0 = none.
	MaxQueryTime time.Duration

	// DisableBatching turns off batch absorption of compatible queued
	// queries. By default, when a query finishes and queued queries would
	// produce the bit-identical answer — same canonical options, admitted
	// on the same epoch, and carrying no Tracker — those queued queries are
	// completed with a copy of the finished run's result instead of each
	// consuming an execution slot (they count in Metrics.Batched). A query
	// with a Tracker always gets its own run, and an evidence update
	// between a follower's admission and the leader's finish disqualifies
	// absorption, so batching never changes an answer — only the number of
	// search passes behind a burst of identical queries.
	DisableBatching bool

	// CacheEntries bounds the result cache (0 = default 4096, negative =
	// caching disabled). Keys carry the epoch that produced the answer, so
	// a hit is bit-identical to a fresh run on the current epoch; an
	// evidence update retires the previous epoch's keys (UpdateEvidence
	// sweeps them) and later identical queries recompute on the new epoch.
	CacheEntries int

	// DataDir, when set, persists the result cache across restarts: Close
	// (and CheckpointCache) writes the cached answers to DataDir/cache.tfy,
	// and Serve reloads them, so a warm-started server answers its working
	// set from cache immediately. Entries are epoch-keyed, and the cache is
	// only persisted after the engines' own updates are durable, so a
	// reloaded entry either matches the recovered epoch (served, bit-
	// identical) or is tagged with a superseded epoch (unreachable, swept
	// later). A missing or corrupt cache file starts the cache empty — it
	// is a cache, never a source of truth. Typically set to the same
	// directory as EngineConfig.DataDir.
	DataDir string

	// Workers lists remote worker addresses (host:port, each a
	// `tuffyd -worker` process grounded from the same program and evidence).
	// When set, queries that decompose into independent components are
	// sharded across the workers and the local engines and merged
	// bit-identically to a single-engine run; queries that do not decompose,
	// and all queries when no worker is live, run locally as usual. Empty =
	// single-process serving, completely unchanged.
	Workers []string
	// WorkerProbeEvery is the worker health-probe cadence (default 250ms).
	WorkerProbeEvery time.Duration
	// WorkerCallTimeout caps one remote shard or update call (default 30s).
	WorkerCallTimeout time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.Priorities <= 0 {
		c.Priorities = 3
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	return c
}

// Request is one query submitted to a Server.
type Request struct {
	// Options are the per-query knobs, exactly as for Engine.InferMAP /
	// InferMarginal.
	Options InferOptions
	// Priority selects the admission lane: 0 is most urgent; values are
	// clamped to the configured range.
	Priority int
}

// backend is one engine replica plus its live query count for least-loaded
// dispatch.
type backend struct {
	eng  *Engine
	load atomic.Int64
	// memBytes estimates one query's search memory per mode, derived from
	// the grounded network's clause counts at Serve time.
	memInMemory int64
	memInDB     int64
}

// Server fronts one or more grounded Engines with admission control,
// priority scheduling, per-query budgets, result caching and metrics. All
// methods are safe for concurrent use. Queries on one Server return
// results bit-identical to calling the Engine directly with the same
// options — whether they were scheduled, queued, or served from cache.
type Server struct {
	cfg      ServerConfig
	backends []*backend
	sched    *server.Scheduler
	cache    *server.Cache
	counters *server.Counters

	// pool manages the remote workers of the distributed tier (nil when
	// ServerConfig.Workers is empty); predIdx is the delta wire encoding's
	// predicate numbering, fixed at Serve time.
	pool    *remote.Pool
	predIdx map[*mln.Predicate]int32

	// updateMu serializes UpdateEvidence across backends so replicas move
	// through the same epoch sequence in lockstep.
	updateMu sync.Mutex
}

// Serve wraps the given grounded Engines in a serving layer. Multiple
// engines act as replicas: each admitted query runs on the least-loaded
// one, so the caller must ensure they were grounded from the same program
// and evidence if answers are to be interchangeable. Every engine must
// already be grounded — Serve performs no grounding, keeping admission
// deterministic and cheap.
func Serve(cfg ServerConfig, engines ...*Engine) (*Server, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("tuffy: Serve needs at least one engine")
	}
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, counters: &server.Counters{}}
	for i, eng := range engines {
		g := eng.Grounded()
		if g == nil {
			return nil, fmt.Errorf("tuffy: Serve engine %d is not grounded", i)
		}
		st := g.MRF.ComputeStats()
		s.backends = append(s.backends, &backend{
			eng:         eng,
			memInMemory: st.SearchBytes,
			// The in-DB variant keeps only the atom state arrays and the
			// clause point index in memory; clause data stays on disk.
			memInDB: int64(g.MRF.NumAtoms)*2 + int64(st.NumClauses)*24,
		})
	}
	s.sched = server.NewScheduler(server.SchedulerConfig{
		Workers:  cfg.MaxInFlight,
		MaxQueue: cfg.MaxQueue,
		Lanes:    cfg.Priorities,
	}, s.counters)
	s.cache = server.NewCache(cfg.CacheEntries, s.counters)
	s.counters.Epoch.Store(s.generation())
	if cfg.DataDir != "" && s.cache.Enabled() {
		s.loadCache()
	}
	if len(cfg.Workers) > 0 {
		// The first backend's identity is representative: Serve already
		// requires all backends to share program and evidence, and they move
		// through epochs in lockstep.
		s.predIdx = mln.PredIndex(engines[0].prog)
		s.pool = remote.NewPool(remote.PoolConfig{
			Addrs:       cfg.Workers,
			Identity:    engines[0].Identity,
			CallTimeout: cfg.WorkerCallTimeout,
			ProbeEvery:  cfg.WorkerProbeEvery,
		})
		// One synchronous probe round so workers that are already up are in
		// membership before the first query; ones that are not stay out until
		// the probe loop sees them.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		s.pool.ProbeNow(ctx)
		cancel()
	}
	return s, nil
}

// WorkerStatus is one remote worker's health row, re-exported for
// /healthz and /metrics.
type WorkerStatus = remote.WorkerStatus

// Workers snapshots the remote worker pool's per-worker rows (nil when no
// workers are configured).
func (s *Server) Workers() []WorkerStatus {
	if s.pool == nil {
		return nil
	}
	return s.pool.Status()
}

// generation is the epoch the server currently serves. Backends move
// through epochs in lockstep (UpdateEvidence applies each delta to all of
// them under one lock), so the first backend is representative.
func (s *Server) generation() uint64 { return s.backends[0].eng.Generation() }

// Updating reports whether an evidence update is re-grounding any backend
// right now. Queries remain fully served while it is true.
func (s *Server) Updating() bool {
	for _, b := range s.backends {
		if b.eng.Updating() {
			return true
		}
	}
	return false
}

// Metrics snapshots the server's counters.
func (s *Server) Metrics() ServerMetrics { return s.counters.Snapshot() }

// Close stops admission (subsequent queries return ErrServerClosed),
// waits for queued and in-flight queries to finish, and — when
// ServerConfig.DataDir is set — persists the result cache for the next
// start. The returned error reports only the persistence step; shutdown
// itself cannot fail.
func (s *Server) Close() error {
	s.sched.Close()
	if s.pool != nil {
		s.pool.Close()
	}
	if s.cfg.DataDir == "" || !s.cache.Enabled() {
		return nil
	}
	return s.CheckpointCache()
}

// pick returns the least-loaded backend (lowest index on ties).
func (s *Server) pick() *backend {
	best := s.backends[0]
	bestLoad := best.load.Load()
	for _, b := range s.backends[1:] {
		if l := b.load.Load(); l < bestLoad {
			best, bestLoad = b, l
		}
	}
	return best
}

// admit canonicalizes the query options and enforces the per-query budget
// caps: explicit over-asks are rejected with a typed *server.BudgetError,
// defaulted budgets are clamped down to the caps (the same clamp-to-budget
// discipline internal/search applies to the hybrid fallback's flip
// budget).
func (s *Server) admit(req Request, marginal bool) (InferOptions, error) {
	explicit := req.Options
	o := explicit.withDefaults()
	// The flip cap concerns MAP only: marginal inference never consumes a
	// flip budget (MC-SAT uses Samples), so a stray MaxFlips on a marginal
	// request must not reject it.
	if cap := s.cfg.MaxFlipsPerQuery; !marginal && cap > 0 && o.MaxFlips > cap {
		if explicit.MaxFlips != 0 {
			s.counters.RejectedBudget.Add(1)
			return o, &server.BudgetError{Resource: "flips", Requested: o.MaxFlips, Limit: cap}
		}
		o.MaxFlips = search.ClampFlips(o.MaxFlips, cap)
	}
	if cap := s.cfg.MaxSamplesPerQuery; marginal && cap > 0 && o.Samples > cap {
		if explicit.Samples != 0 {
			s.counters.RejectedBudget.Add(1)
			return o, &server.BudgetError{Resource: "samples", Requested: int64(o.Samples), Limit: int64(cap)}
		}
		o.Samples = cap
	}
	if cap := s.cfg.MaxBytesPerQuery; cap > 0 {
		// Estimate against the largest replica, so admission does not
		// depend on which backend the query later lands on.
		var est int64
		for _, b := range s.backends {
			m := b.memInMemory
			if !marginal && o.Mode == InDatabase {
				m = b.memInDB
			}
			if m > est {
				est = m
			}
		}
		if est > cap {
			s.counters.RejectedBudget.Add(1)
			return o, &server.BudgetError{Resource: "memory", Requested: est, Limit: cap}
		}
	}
	return o, nil
}

// cacheKey canonicalizes the options that determine a query's answer.
// Parallelism is deliberately excluded: results are bit-identical for
// every worker count, so queries differing only in Parallelism share one
// entry. Trackers are per-call observers and never part of the key.
func cacheKey(marginal bool, o InferOptions) string {
	if marginal {
		return fmt.Sprintf("marg|%d|%d|%d", o.Mode, o.Seed, o.Samples)
	}
	return fmt.Sprintf("map|%d|%d|%d|%d|%d", o.Mode, o.Seed, o.MaxFlips, o.MaxTries, o.GaussSeidelRounds)
}

// epochKey tags a canonical cache key with the epoch that answers it.
// Lookups use the current epoch's tag; fills use the epoch the run actually
// executed on (an in-flight query can straddle an update). Epochs are
// monotone and never reused, so an entry tagged with a superseded epoch can
// never be served again — it just waits for the next sweep or FIFO
// eviction.
func epochKey(gen uint64, base string) string {
	return fmt.Sprintf("e%d|%s", gen, base)
}

// runShared executes one admitted query through the scheduler on the
// least-loaded backend, applying the per-query wall-clock deadline. key
// identifies the answer the query will produce (canonical options +
// admission epoch), exec returns the result and whether it may be shared
// with queued same-key queries, and absorb receives another query's shared
// result if one lands first. An empty key degrades to plain scheduling.
func (s *Server) runShared(ctx context.Context, req Request, key string, exec func(context.Context, *Engine) (any, bool), absorb func(any)) error {
	if s.cfg.MaxQueryTime > 0 {
		// The deadline covers queue wait too: a query that waited its
		// whole budget expires in the queue instead of starting late.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.MaxQueryTime)
		defer cancel()
	}
	return s.sched.SubmitShared(ctx, req.Priority, key, func() (any, bool) {
		b := s.pick()
		b.load.Add(1)
		defer b.load.Add(-1)
		return exec(ctx, b.eng)
	}, absorb)
}

// InferMAP answers one MAP query through the admission layer: budget
// checks, cache lookup, scheduling, execution, cache fill. The result is
// bit-identical to Engine.InferMAP with the same options. Rejections
// return typed errors (ErrQueueFull, ErrBudgetExceeded, ErrExpiredInQueue,
// ErrServerClosed); a query canceled mid-run returns its best-so-far
// result with ErrCanceled, exactly like the Engine, and is not cached.
func (s *Server) InferMAP(ctx context.Context, req Request) (*MAPResult, error) {
	opts, err := s.admit(req, false)
	if err != nil {
		return nil, err
	}
	base := cacheKey(false, opts)
	gen := s.generation()
	// A query carrying a Tracker needs a real run for the tracker to
	// observe; it skips the lookup but still fills the cache.
	if opts.Tracker == nil {
		if v, ok := s.cache.Get(epochKey(gen, base)); ok {
			return copyMAPResult(v.(*MAPResult)), nil
		}
	} else {
		s.counters.CacheMisses.Add(1)
	}
	// Tracker-free queries are batchable: the key ties the canonical
	// options to the admission epoch, so only queries whose answers are
	// interchangeable ever share one run.
	var key string
	if opts.Tracker == nil && !s.cfg.DisableBatching {
		key = epochKey(gen, base)
	}
	var res *MAPResult
	var runErr error
	var absorbed bool
	if err := s.runShared(ctx, req, key, func(ctx context.Context, eng *Engine) (any, bool) {
		res, runErr = s.inferMAPOn(ctx, eng, opts)
		// Publish for queued same-key queries only a complete answer that
		// is still current — an evidence update mid-run means followers
		// must recompute on the new epoch.
		return res, runErr == nil && res != nil && res.Epoch == gen && s.generation() == gen
	}, func(v any) {
		res, runErr, absorbed = copyMAPResult(v.(*MAPResult)), nil, true
	}); err != nil {
		return nil, err
	}
	// Only a complete (non-canceled) answer is cached, under the epoch it
	// was computed on; with the cache disabled the caller keeps the sole
	// reference, so no defensive copy. An absorbed answer is already a
	// private copy of a result the leader cached.
	if !absorbed && runErr == nil && res != nil && s.cache.Enabled() {
		s.cache.Put(epochKey(res.Epoch, base), res)
		res = copyMAPResult(res)
	}
	return res, runErr
}

// InferMarginal is the marginal-inference counterpart of InferMAP, with
// the same admission, caching and rejection semantics.
func (s *Server) InferMarginal(ctx context.Context, req Request) (*MarginalResult, error) {
	opts, err := s.admit(req, true)
	if err != nil {
		return nil, err
	}
	base := cacheKey(true, opts)
	gen := s.generation()
	if opts.Tracker == nil {
		if v, ok := s.cache.Get(epochKey(gen, base)); ok {
			return copyMarginalResult(v.(*MarginalResult)), nil
		}
	} else {
		s.counters.CacheMisses.Add(1)
	}
	var key string
	if opts.Tracker == nil && !s.cfg.DisableBatching {
		key = epochKey(gen, base)
	}
	var res *MarginalResult
	var runErr error
	var absorbed bool
	if err := s.runShared(ctx, req, key, func(ctx context.Context, eng *Engine) (any, bool) {
		res, runErr = s.inferMarginalOn(ctx, eng, opts)
		return res, runErr == nil && res != nil && res.Epoch == gen && s.generation() == gen
	}, func(v any) {
		res, runErr, absorbed = copyMarginalResult(v.(*MarginalResult)), nil, true
	}); err != nil {
		return nil, err
	}
	if !absorbed && runErr == nil && res != nil && s.cache.Enabled() {
		s.cache.Put(epochKey(res.Epoch, base), res)
		res = copyMarginalResult(res)
	}
	return res, runErr
}

// UpdateEvidence applies one evidence delta to every backend and sweeps
// the result-cache entries the new epoch superseded. Backends are updated
// sequentially under one lock, so replicas move through the same epoch
// sequence; queries keep flowing the whole time (in-flight ones finish on
// the epoch they started on).
//
// If a backend fails mid-sequence, the already-updated backends are rolled
// back by applying the inverse delta, restoring a consistent fleet on the
// previous epoch, and the original error is returned — the caller can
// simply retry the same delta. Only if that compensation itself fails does
// the fleet stay split; the returned error then reports both failures.
func (s *Server) UpdateEvidence(ctx context.Context, delta mln.Delta) (*UpdateResult, error) {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	var first *UpdateResult
	for i, b := range s.backends {
		ur, err := b.eng.UpdateEvidence(ctx, delta)
		if err != nil {
			// Compensate the backends already on the new epoch. The inverse
			// runs under a background context: backing out must not be
			// stopped by the cancellation that stopped the update.
			for j := i - 1; j >= 0; j-- {
				if _, cerr := s.backends[j].eng.UpdateEvidence(context.Background(), first.Inverse); cerr != nil {
					return nil, fmt.Errorf("tuffy: update failed on backend %d: %w (rolling back backend %d also failed: %v; replicas diverge)", i, err, j, cerr)
				}
			}
			return nil, fmt.Errorf("tuffy: update failed on backend %d (all backends restored): %w", i, err)
		}
		if first == nil {
			first = ur
		}
	}
	// Fan the delta out to the remote workers (still under updateMu, so the
	// pool's catch-up journal records deltas in application order). Worker
	// failures never fail the update — the local backends have committed;
	// a worker that missed the delta is demoted and caught up by the pool's
	// probe loop, and queries just stop sharding to it meanwhile.
	if s.pool != nil && !first.Identical {
		s.pool.Update(ctx, mln.EncodeDelta(s.predIdx, delta))
	}
	// Drop the entries whose epoch tag is no longer served. An identical
	// (no-op) update keeps the epoch, so everything current is retained.
	prefix := epochKey(s.generation(), "")
	inv, ret := s.cache.Sweep(func(k string) bool { return strings.HasPrefix(k, prefix) })
	s.counters.Epoch.Store(s.generation())
	s.counters.UpdatesApplied.Add(1)
	s.counters.CacheInvalidated.Add(int64(inv))
	s.counters.CacheRetained.Add(int64(ret))
	return first, nil
}

// copyMAPResult copies a cached result so callers may mutate their answer
// without corrupting the cache. The copy is bit-identical; the per-atom
// descriptors stay shared (they are read-only engine state).
func copyMAPResult(r *MAPResult) *MAPResult {
	cp := *r
	cp.TrueAtoms = append([]mln.GroundAtom(nil), r.TrueAtoms...)
	cp.State = append([]bool(nil), r.State...)
	return &cp
}

// copyMarginalResult is copyMAPResult for marginal answers.
func copyMarginalResult(r *MarginalResult) *MarginalResult {
	cp := *r
	cp.Probs = append([]AtomProb(nil), r.Probs...)
	return &cp
}
