package mrf

import (
	"fmt"
	"math"
	"sync/atomic"

	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
)

// tableSeq backs QueryTableName: a process-wide counter so every caller
// gets a catalog name no concurrent (or earlier) query can collide with.
var tableSeq atomic.Int64

// QueryTableName returns a collision-free table name with the given prefix.
// Concurrent inference queries over one engine use it to keep their
// per-query clause and helper tables disjoint in the catalog; pairing each
// name with a DropTable when the query ends returns the pages to the
// engine's free list, so repeated queries hold storage at its high-water
// mark.
func QueryTableName(prefix string) string {
	return fmt.Sprintf("%s_q%d", prefix, tableSeq.Add(1))
}

// This file moves MRFs between memory and the RDBMS clause table — the
// boundary of the paper's hybrid architecture (Section 3.2): grounding
// leaves its result in the database table C(cid, lits, weight); in-memory
// search loads it; the in-database search variant (Tuffy-mm) operates on it
// directly.

// ClauseTableSchema is the layout of the ground-clause table. Weights are
// stored as IEEE-754 bit patterns in a BIGINT since the engine has no float
// column type; lits is the signed atom-id array, exactly as the paper
// describes.
func ClauseTableSchema() tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("cid", tuple.TInt),
		tuple.Col("weight", tuple.TInt),
		tuple.Col("lits", tuple.TIntList),
	)
}

// AtomTableSchema is the layout of the search-state atom table used by the
// in-database search: current truth value and the best value found.
func AtomTableSchema() tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("aid", tuple.TInt),
		tuple.Col("truth", tuple.TInt),
		tuple.Col("best", tuple.TInt),
	)
}

// ViolTableSchema is the layout of the violated-clause side table maintained
// by the set-oriented in-database search: one row per currently-violated
// clause. All columns are fixed-width BIGINTs so a transition can reuse a
// to-be-deleted slot in place with an UpdateAt instead of growing the heap
// with a tombstone + append.
func ViolTableSchema() tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("cid", tuple.TInt),
		tuple.Col("weight", tuple.TInt),
		tuple.Col("is_hard", tuple.TInt),
	)
}

// ViolRow converts a violated clause to its side-table row.
func ViolRow(cid int64, c Clause) tuple.Row {
	hard := int64(0)
	if c.IsHard() {
		hard = 1
	}
	return tuple.Row{
		tuple.I64(cid),
		tuple.I64(int64(math.Float64bits(c.Weight))),
		tuple.I64(hard),
	}
}

// RowViol decodes a side-table row back to (cid, weight, isHard).
func RowViol(row tuple.Row) (cid int64, weight float64, isHard bool, err error) {
	if len(row) != 3 || row[0].Kind != tuple.TInt || row[1].Kind != tuple.TInt || row[2].Kind != tuple.TInt {
		return 0, 0, false, fmt.Errorf("mrf: malformed violated-clause row %v", row)
	}
	return row[0].I, math.Float64frombits(uint64(row[1].I)), row[2].I != 0, nil
}

// AtomIndexSchema is the layout of the atom→clause inverted-index table the
// in-database search builds once at search start: rows (aid, cids) carrying
// the ids of clauses that mention the atom, in ascending-cid order. High-
// degree atoms span several chunk rows (inserted in order, so concatenating
// a scan's chunks preserves the order).
func AtomIndexSchema() tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("aid", tuple.TInt),
		tuple.Col("cids", tuple.TIntList),
	)
}

// AtomIndexRow converts one atom's clause-id chunk to its table row.
func AtomIndexRow(aid int64, cids []int64) tuple.Row {
	return tuple.Row{tuple.I64(aid), tuple.IntList(cids)}
}

// RowAtomIndex decodes an inverted-index row back to (aid, cids).
func RowAtomIndex(row tuple.Row) (aid int64, cids []int64, err error) {
	if len(row) != 2 || row[0].Kind != tuple.TInt || row[1].Kind != tuple.TIntList {
		return 0, nil, fmt.Errorf("mrf: malformed atom-index row %v", row)
	}
	return row[0].I, row[1].List, nil
}

// ClauseRow converts a ground clause to its table row.
func ClauseRow(cid int64, c Clause) tuple.Row {
	lits := make([]int64, len(c.Lits))
	for j, l := range c.Lits {
		lits[j] = int64(l)
	}
	return tuple.Row{
		tuple.I64(cid),
		tuple.I64(int64(math.Float64bits(c.Weight))),
		tuple.IntList(lits),
	}
}

// RowClause converts a clause-table row back to a ground clause.
func RowClause(row tuple.Row) (Clause, error) {
	if len(row) != 3 || row[1].Kind != tuple.TInt || row[2].Kind != tuple.TIntList {
		return Clause{}, fmt.Errorf("mrf: malformed clause row %v", row)
	}
	lits := make([]Lit, len(row[2].List))
	for i, l := range row[2].List {
		lits[i] = Lit(l)
	}
	return Clause{Weight: math.Float64frombits(uint64(row[1].I)), Lits: lits}, nil
}

// Store writes the MRF's clauses into tableName (created if absent),
// replacing previous contents.
func Store(m *MRF, d *db.DB, tableName string) error {
	t, ok := d.Table(tableName)
	if !ok {
		var err error
		t, err = d.CreateTable(tableName, ClauseTableSchema())
		if err != nil {
			return err
		}
	} else if _, err := d.Exec("DELETE FROM " + tableName); err != nil {
		return err
	}
	for i, c := range m.Clauses {
		if err := t.Insert(ClauseRow(int64(i), c)); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a clause table back into an in-memory MRF. numAtoms may be 0,
// in which case it is inferred from the largest atom id seen.
func Load(d *db.DB, tableName string, numAtoms int) (*MRF, error) {
	t, ok := d.Table(tableName)
	if !ok {
		return nil, fmt.Errorf("mrf: no clause table %q", tableName)
	}
	var clauses []Clause
	maxAtom := int32(numAtoms)
	err := t.ScanRows(func(_ storage.RecordID, row tuple.Row) error {
		c, err := RowClause(row)
		if err != nil {
			return err
		}
		for _, l := range c.Lits {
			if a := Atom(l); a > maxAtom {
				maxAtom = a
			}
		}
		clauses = append(clauses, c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	m := New(int(maxAtom))
	m.Clauses = clauses
	return m, nil
}
