package mrf

import (
	"sort"
	"strings"

	"tuffy/internal/mln"
)

// Epoch patching: the grounded MRF is immutable while an epoch serves
// queries, so "patching the MRF in place" is copy-on-write — a Patch holds
// the add / remove / reweight of ground clauses plus the atom renumbering
// between two grounds, and applying it to the old network reproduces the new
// one without re-folding the raw groundings. The repair layer uses the same
// atom translations to rebuild only the connected components an update
// actually touched.

// Patch is the clause-level difference between two grounded MRFs, expressed
// in the NEW MRF's atom ids. OldToNew/NewToOld translate atom ids between
// the epochs (0 = no counterpart).
type Patch struct {
	OldToNew []AtomID
	NewToOld []AtomID

	// NumAtoms, Atoms and FixedCost describe the new MRF's atom table.
	NumAtoms  int
	Atoms     []mln.GroundAtom
	FixedCost float64

	// NumClauses is the new MRF's clause count; Added maps new clause index
	// -> clause content (new ids) for clauses with no old counterpart;
	// RemovedOld lists old clause indices with no new counterpart;
	// Reweighted maps new clause index -> new weight for clauses whose
	// literal set survived with a different weight.
	NumClauses int
	Added      map[int]Clause
	RemovedOld []int
	Reweighted map[int]float64

	// FixedCostChanged records a change in evidence-decided cost, which can
	// move without any clause diff (empty groundings never reach the clause
	// list).
	FixedCostChanged bool
}

// Identical reports whether the patch is empty: same atoms under the
// identity mapping, same clauses, same weights, same fixed cost.
func (p *Patch) Identical() bool {
	if len(p.Added) != 0 || len(p.RemovedOld) != 0 || len(p.Reweighted) != 0 || p.FixedCostChanged {
		return false
	}
	if p.NumAtoms != len(p.OldToNew)-1 {
		return false
	}
	for i, id := range p.OldToNew {
		if id != AtomID(i) {
			return false
		}
	}
	return true
}

func litSetKey(lits []Lit, remap []AtomID) (string, bool) {
	parts := make([]string, len(lits))
	var b strings.Builder
	for i, l := range lits {
		a := Atom(l)
		if remap != nil {
			a = remap[a]
			if a == 0 {
				return "", false
			}
		}
		b.Reset()
		v := uint32(a)
		b.WriteByte(byte(v >> 24))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v))
		if Pos(l) {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
		parts[i] = b.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, ""), true
}

// ComputePatch diffs two grounded MRFs given the atom-id translations
// (as built by grounding.AtomMaps). Clauses are matched by literal set in
// new-id space; the grounder's accumulator guarantees literal sets are
// unique within one MRF.
func ComputePatch(old, cur *MRF, oldToNew, newToOld []AtomID) *Patch {
	return computePatch(old, cur, oldToNew, newToOld, nil)
}

// ComputePatchTouched is ComputePatch restricted to clauses incident to a
// touched atom (new ids; an old atom with no new counterpart counts as
// touched). A ground clause's weight can only change through a changed raw
// grounding, and a changed raw's atom set equals its clause's atom set and
// is entirely flagged in touchedNew — so clauses with no touched literal
// provably survive with identical weight and need no key comparison. The
// resulting Patch is identical to ComputePatch's; only the work is smaller.
func ComputePatchTouched(old, cur *MRF, oldToNew, newToOld []AtomID, touchedNew []bool) *Patch {
	return computePatch(old, cur, oldToNew, newToOld, touchedNew)
}

func computePatch(old, cur *MRF, oldToNew, newToOld []AtomID, touchedNew []bool) *Patch {
	p := &Patch{
		OldToNew:   oldToNew,
		NewToOld:   newToOld,
		NumAtoms:   cur.NumAtoms,
		Atoms:      cur.Atoms,
		FixedCost:  cur.FixedCost,
		NumClauses: len(cur.Clauses),
		Added:      make(map[int]Clause),
		Reweighted: make(map[int]float64),

		FixedCostChanged: old.FixedCost != cur.FixedCost,
	}
	curTouched := func(c *Clause) bool {
		if touchedNew == nil {
			return true
		}
		for _, l := range c.Lits {
			if touchedNew[Atom(l)] {
				return true
			}
		}
		return false
	}
	oldTouched := func(c *Clause) bool {
		if touchedNew == nil {
			return true
		}
		for _, l := range c.Lits {
			n := oldToNew[Atom(l)]
			if n == 0 || touchedNew[n] {
				return true
			}
		}
		return false
	}
	newByKey := make(map[string]int)
	var newSel []int
	for i := range cur.Clauses {
		if !curTouched(&cur.Clauses[i]) {
			continue
		}
		k, _ := litSetKey(cur.Clauses[i].Lits, nil)
		newByKey[k] = i
		newSel = append(newSel, i)
	}
	matched := make(map[int]bool, len(newByKey))
	for i := range old.Clauses {
		if !oldTouched(&old.Clauses[i]) {
			continue
		}
		k, ok := litSetKey(old.Clauses[i].Lits, oldToNew)
		if ok {
			if ni, hit := newByKey[k]; hit && !matched[ni] {
				matched[ni] = true
				if old.Clauses[i].Weight != cur.Clauses[ni].Weight {
					p.Reweighted[ni] = cur.Clauses[ni].Weight
				}
				continue
			}
		}
		p.RemovedOld = append(p.RemovedOld, i)
	}
	for _, i := range newSel {
		if !matched[i] {
			p.Added[i] = cur.Clauses[i]
		}
	}
	return p
}

// Apply reconstructs the new epoch's MRF from the old one: drop removed
// clauses, renumber atoms, reweight survivors, splice added clauses at
// their recorded positions. The output is structurally identical to the new
// ground the patch was computed from — the epoch Engine's identity tests
// rely on that equivalence.
func (p *Patch) Apply(old *MRF) *MRF {
	out := New(p.NumAtoms)
	out.FixedCost = p.FixedCost
	out.Atoms = p.Atoms
	removed := make(map[int]bool, len(p.RemovedOld))
	for _, i := range p.RemovedOld {
		removed[i] = true
	}
	out.Clauses = make([]Clause, p.NumClauses)
	oi := 0
	for ni := range out.Clauses {
		if c, hit := p.Added[ni]; hit {
			out.Clauses[ni] = c
			continue
		}
		for removed[oi] {
			oi++
		}
		c := old.Clauses[oi]
		oi++
		w := c.Weight
		if nw, hit := p.Reweighted[ni]; hit {
			w = nw
		}
		lits := make([]Lit, len(c.Lits))
		for j, l := range c.Lits {
			a := p.OldToNew[Atom(l)]
			if Pos(l) {
				lits[j] = a
			} else {
				lits[j] = -a
			}
		}
		sortPatchLits(lits)
		out.Clauses[ni] = Clause{Weight: w, Lits: lits}
	}
	return out
}

// sortPatchLits restores the grounder's literal order (ascending atom id,
// then signed value), which atom renumbering can perturb.
func sortPatchLits(lits []Lit) {
	for i := 1; i < len(lits); i++ {
		for j := i; j > 0; j-- {
			a, b := lits[j], lits[j-1]
			aa, ab := Atom(a), Atom(b)
			if aa > ab || (aa == ab && a >= b) {
				break
			}
			lits[j], lits[j-1] = lits[j-1], lits[j]
		}
	}
}

// Liveness reports which atoms occur in at least one ground clause. Atoms
// can hold an id without being live: the accumulator assigns ids while
// folding raw groundings that later turn out to be tautologies or to cancel
// to weight zero.
func Liveness(m *MRF) []bool {
	live := make([]bool, m.NumAtoms+1)
	for _, c := range m.Clauses {
		for _, l := range c.Lits {
			live[Atom(l)] = true
		}
	}
	return live
}

// RepairComponents rebuilds the connected-component list of cur after an
// incremental re-ground, reusing the local sub-MRF of every component the
// update did not touch. touchedNew flags new atom ids in any changed raw
// grounding (grounding.Reground computes it); a component with no touched
// atom whose atom set maps monotonically onto exactly one old component's
// atom set is provably bit-identical to what Components would build, so its
// (immutable) local MRF is shared and only the GlobalAtom translation is
// reallocated. Everything else is rebuilt from cur. The returned list is in
// Components' canonical order; reused counts the shared components.
func RepairComponents(oldComps []*Component, cur *MRF, newToOld []AtomID, touchedNew []bool, includeIsolated bool) (comps []*Component, reused int) {
	// Old atom id -> index of its old component.
	oldCompOf := make(map[AtomID]int)
	for ci, c := range oldComps {
		for i := 1; i <= c.MRF.NumAtoms; i++ {
			oldCompOf[c.GlobalAtom[i]] = ci
		}
	}

	uf := NewUnionFind(cur.NumAtoms)
	inClause := make([]bool, cur.NumAtoms+1)
	for _, c := range cur.Clauses {
		first := Atom(c.Lits[0])
		inClause[first] = true
		for _, l := range c.Lits[1:] {
			uf.Union(first, Atom(l))
			inClause[Atom(l)] = true
		}
	}
	groups := make(map[int32][]AtomID)
	for a := AtomID(1); a <= AtomID(cur.NumAtoms); a++ {
		if !inClause[a] && !includeIsolated {
			continue
		}
		root := uf.Find(a)
		groups[root] = append(groups[root], a)
	}

	rebuildRoots := make(map[int32]bool)
	for root, atoms := range groups {
		comp, ok := reuseComponent(oldComps, oldCompOf, atoms, newToOld, touchedNew)
		if !ok {
			rebuildRoots[root] = true
			continue
		}
		reused++
		comps = append(comps, comp)
	}
	if len(rebuildRoots) > 0 {
		comps = append(comps, buildComponents(cur, uf, groups, rebuildRoots)...)
	}
	sortComponents(comps)
	return comps, reused
}

// reuseComponent checks whether the new component over atoms (ascending) is
// an untouched, order-preserving image of exactly one old component and, if
// so, returns it with the local MRF shared and GlobalAtom remapped.
func reuseComponent(oldComps []*Component, oldCompOf map[AtomID]int, atoms []AtomID, newToOld []AtomID, touchedNew []bool) (*Component, bool) {
	first := newToOld[atoms[0]]
	if touchedNew[atoms[0]] || first == 0 {
		return nil, false
	}
	oci, ok := oldCompOf[first]
	if !ok {
		return nil, false
	}
	old := oldComps[oci]
	if old.MRF.NumAtoms != len(atoms) {
		return nil, false
	}
	prev := AtomID(0)
	for _, a := range atoms {
		o := newToOld[a]
		if touchedNew[a] || o == 0 || o <= prev || oldCompOf[o] != oci {
			return nil, false
		}
		prev = o
	}
	// Monotone bijection onto the old component's atom set: local ids are
	// ranks by ascending global id on both sides, so the local MRF (clauses,
	// weights, atom descriptors) is unchanged and can be shared.
	ga := make([]AtomID, len(atoms)+1)
	copy(ga[1:], atoms)
	return &Component{MRF: old.MRF, GlobalAtom: ga}, true
}

// buildComponents constructs fresh components for the selected union-find
// roots, exactly as Components does.
func buildComponents(m *MRF, uf *UnionFind, groups map[int32][]AtomID, roots map[int32]bool) []*Component {
	compOf := make(map[int32]*Component, len(roots))
	localID := make([]AtomID, m.NumAtoms+1)
	var comps []*Component
	for root := range roots {
		atoms := groups[root]
		comp := &Component{MRF: New(len(atoms)), GlobalAtom: make([]AtomID, len(atoms)+1)}
		if m.Atoms != nil {
			comp.MRF.Atoms = make([]mln.GroundAtom, len(atoms)+1)
		}
		for i, a := range atoms {
			localID[a] = AtomID(i + 1)
			comp.GlobalAtom[i+1] = a
			if m.Atoms != nil {
				comp.MRF.Atoms[i+1] = m.Atoms[a]
			}
		}
		compOf[root] = comp
		comps = append(comps, comp)
	}
	for _, c := range m.Clauses {
		root := uf.Find(Atom(c.Lits[0]))
		comp, ok := compOf[root]
		if !ok {
			continue
		}
		lits := make([]Lit, len(c.Lits))
		for i, l := range c.Lits {
			ll := localID[Atom(l)]
			if !Pos(l) {
				ll = -ll
			}
			lits[i] = ll
		}
		comp.MRF.Clauses = append(comp.MRF.Clauses, Clause{Weight: c.Weight, Lits: lits})
	}
	return comps
}
