// Package mrf holds the grounded Markov Random Field produced by the
// grounding phase: ground atoms (Boolean variables), weighted ground clauses
// over them, the world-cost function (Eq. 1 of the Tuffy paper), and
// connected-component detection (Section 3.3).
package mrf

import (
	"fmt"
	"math"

	"tuffy/internal/mln"
)

// AtomID numbers ground atoms 1..N. Literals are signed atom ids: +a for a
// positive occurrence, -a for a negated one (the lits array layout Tuffy
// stores in its RDBMS clause table).
type AtomID = int32

// Lit is a signed atom id.
type Lit = int32

// Atom converts a literal to its atom id.
func Atom(l Lit) AtomID {
	if l < 0 {
		return -l
	}
	return l
}

// Pos reports whether the literal is positive.
func Pos(l Lit) bool { return l > 0 }

// Clause is one weighted ground clause. A clause with positive weight is
// violated when false; one with negative weight is violated when true
// (Section 2.2). Hard clauses carry +Inf weight.
type Clause struct {
	Weight float64
	Lits   []Lit
}

// IsHard reports whether the clause is a hard constraint.
func (c Clause) IsHard() bool { return math.IsInf(c.Weight, 0) }

// SatisfiedBy evaluates the clause under a truth assignment (1-based; state
// index 0 is unused).
func (c Clause) SatisfiedBy(state []bool) bool {
	for _, l := range c.Lits {
		if state[Atom(l)] == Pos(l) {
			return true
		}
	}
	return false
}

// ViolatedBy reports whether the clause is violated in the state per the
// signed-weight semantics.
func (c Clause) ViolatedBy(state []bool) bool {
	sat := c.SatisfiedBy(state)
	if c.Weight >= 0 {
		return !sat
	}
	return sat
}

// MRF is a grounded network: atoms 1..NumAtoms and weighted clauses.
type MRF struct {
	NumAtoms int
	Clauses  []Clause
	// FixedCost accumulates |w| of ground clauses that evidence already
	// decided to be violated (no search can fix them). It is added to every
	// world's cost.
	FixedCost float64
	// Atoms maps atom id -> ground atom descriptor (index 0 unused). May be
	// nil for synthetic MRFs.
	Atoms []mln.GroundAtom
}

// New returns an empty MRF over n atoms.
func New(n int) *MRF {
	return &MRF{NumAtoms: n}
}

// AddClause appends a ground clause; it validates atom ids.
func (m *MRF) AddClause(w float64, lits ...Lit) error {
	if len(lits) == 0 {
		return fmt.Errorf("mrf: empty clause")
	}
	for _, l := range lits {
		a := Atom(l)
		if a < 1 || int(a) > m.NumAtoms {
			return fmt.Errorf("mrf: literal %d out of range (atoms 1..%d)", l, m.NumAtoms)
		}
	}
	m.Clauses = append(m.Clauses, Clause{Weight: w, Lits: lits})
	return nil
}

// NewState returns an all-false truth assignment (1-based).
func (m *MRF) NewState() []bool { return make([]bool, m.NumAtoms+1) }

// Cost computes the total cost of a state: FixedCost plus the sum of |w|
// over violated soft clauses; +Inf if any hard clause is violated.
func (m *MRF) Cost(state []bool) float64 {
	cost := m.FixedCost
	for _, c := range m.Clauses {
		if c.ViolatedBy(state) {
			if c.IsHard() {
				return math.Inf(1)
			}
			cost += math.Abs(c.Weight)
		}
	}
	return cost
}

// NumViolated counts violated clauses in the state.
func (m *MRF) NumViolated(state []bool) int {
	n := 0
	for _, c := range m.Clauses {
		if c.ViolatedBy(state) {
			n++
		}
	}
	return n
}

// Stats summarizes the memory the MRF's search representation needs — the
// byte accounting used for the paper's Table 4/5 RAM comparisons.
type Stats struct {
	NumAtoms     int
	NumClauses   int
	NumLiterals  int
	ClauseBytes  int64 // clause table representation
	SearchBytes  int64 // in-memory search structures (adjacency + state)
	NumHard      int
	NumNegWeight int
}

// ComputeStats sizes the MRF.
func (m *MRF) ComputeStats() Stats {
	s := Stats{NumAtoms: m.NumAtoms, NumClauses: len(m.Clauses)}
	for _, c := range m.Clauses {
		s.NumLiterals += len(c.Lits)
		if c.IsHard() {
			s.NumHard++
		}
		if c.Weight < 0 {
			s.NumNegWeight++
		}
	}
	// Clause table: per clause 8 (weight) + 8 (cid) + 4 bytes/lit.
	s.ClauseBytes = int64(len(m.Clauses))*16 + int64(s.NumLiterals)*4
	// Search structures: per clause header + lits, per atom state +
	// adjacency postings (one per literal) + best-state copy.
	s.SearchBytes = int64(len(m.Clauses))*24 + int64(s.NumLiterals)*8 + int64(m.NumAtoms)*10
	return s
}

// UnionFind is a standard disjoint-set structure over atom ids; exported
// because the partitioning layer reuses it.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// NewUnionFind creates n+1 singleton sets (index 0 unused).
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n+1), rank: make([]int8, n+1), count: n}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the set representative with path compression.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b; it reports whether a merge happened.
func (u *UnionFind) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Count returns the number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// Component is one connected component of an MRF, with the atom-id mapping
// back to the parent network.
type Component struct {
	MRF *MRF
	// GlobalAtom maps local atom id (1-based) to the parent MRF's atom id.
	GlobalAtom []AtomID
}

// Size returns the number of atoms in the component.
func (c *Component) Size() int { return c.MRF.NumAtoms }

// Components splits the MRF into its connected components using a union-find
// pass over the clause table, exactly as Section 3.3 describes. Isolated
// atoms (no clauses) become singleton components only if includeIsolated.
func (m *MRF) Components(includeIsolated bool) []*Component {
	uf := NewUnionFind(m.NumAtoms)
	touched := make([]bool, m.NumAtoms+1)
	for _, c := range m.Clauses {
		first := Atom(c.Lits[0])
		touched[first] = true
		for _, l := range c.Lits[1:] {
			uf.Union(first, Atom(l))
			touched[Atom(l)] = true
		}
	}
	// Group atoms by root.
	groups := make(map[int32][]AtomID)
	for a := int32(1); a <= int32(m.NumAtoms); a++ {
		if !touched[a] && !includeIsolated {
			continue
		}
		root := uf.Find(a)
		groups[root] = append(groups[root], a)
	}
	// Build components with local atom numbering.
	compOf := make(map[int32]*Component, len(groups))
	localID := make([]AtomID, m.NumAtoms+1)
	var comps []*Component
	for root, atoms := range groups {
		comp := &Component{MRF: New(len(atoms)), GlobalAtom: make([]AtomID, len(atoms)+1)}
		for i, a := range atoms {
			localID[a] = AtomID(i + 1)
			comp.GlobalAtom[i+1] = a
			if m.Atoms != nil {
				if comp.MRF.Atoms == nil {
					comp.MRF.Atoms = make([]mln.GroundAtom, len(atoms)+1)
				}
				comp.MRF.Atoms[i+1] = m.Atoms[a]
			}
		}
		compOf[root] = comp
		comps = append(comps, comp)
	}
	for _, c := range m.Clauses {
		root := uf.Find(Atom(c.Lits[0]))
		comp := compOf[root]
		lits := make([]Lit, len(c.Lits))
		for i, l := range c.Lits {
			ll := localID[Atom(l)]
			if !Pos(l) {
				ll = -ll
			}
			lits[i] = ll
		}
		comp.MRF.Clauses = append(comp.MRF.Clauses, Clause{Weight: c.Weight, Lits: lits})
	}
	// Deterministic order: by smallest global atom id.
	sortComponents(comps)
	return comps
}

func sortComponents(comps []*Component) {
	// insertion sort by first global atom (components are usually few).
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j-1].GlobalAtom[1] > comps[j].GlobalAtom[1]; j-- {
			comps[j-1], comps[j] = comps[j], comps[j-1]
		}
	}
}

// ProjectState copies the component's local state into the global state.
func (c *Component) ProjectState(local, global []bool) {
	for i := 1; i <= c.MRF.NumAtoms; i++ {
		global[c.GlobalAtom[i]] = local[i]
	}
}

// ExtractState copies the global state into a local component state.
func (c *Component) ExtractState(global []bool) []bool {
	local := c.MRF.NewState()
	for i := 1; i <= c.MRF.NumAtoms; i++ {
		local[i] = global[c.GlobalAtom[i]]
	}
	return local
}
