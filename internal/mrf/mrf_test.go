package mrf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tuffy/internal/db"
	"tuffy/internal/db/tuple"
)

// buildExample1 constructs the paper's Example 1: N components, each with
// atoms {X_i, Y_i} and clauses {(X_i,1), (Y_i,1), (X_i v Y_i, -1)}.
func buildExample1(t *testing.T, n int) *MRF {
	t.Helper()
	m := New(2 * n)
	for i := 0; i < n; i++ {
		x := AtomID(2*i + 1)
		y := AtomID(2*i + 2)
		if err := m.AddClause(1, x); err != nil {
			t.Fatal(err)
		}
		if err := m.AddClause(1, y); err != nil {
			t.Fatal(err)
		}
		if err := m.AddClause(-1, x, y); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestLitHelpers(t *testing.T) {
	if Atom(-5) != 5 || Atom(5) != 5 {
		t.Fatal("Atom broken")
	}
	if Pos(-5) || !Pos(5) {
		t.Fatal("Pos broken")
	}
}

func TestClauseSemantics(t *testing.T) {
	m := New(2)
	if err := m.AddClause(2, 1, -2); err != nil { // x1 v !x2, weight 2
		t.Fatal(err)
	}
	s := m.NewState()
	// x1=F, x2=F: !x2 true => satisfied
	if m.Clauses[0].ViolatedBy(s) {
		t.Fatal("should be satisfied")
	}
	s[2] = true // x1=F, x2=T: violated
	if !m.Clauses[0].ViolatedBy(s) {
		t.Fatal("should be violated")
	}
	if got := m.Cost(s); got != 2 {
		t.Fatalf("cost = %v", got)
	}
}

func TestNegativeWeightViolatedWhenSatisfied(t *testing.T) {
	m := New(1)
	if err := m.AddClause(-3, 1); err != nil {
		t.Fatal(err)
	}
	s := m.NewState()
	if m.Clauses[0].ViolatedBy(s) {
		t.Fatal("false atom: negative clause not satisfied, so not violated")
	}
	s[1] = true
	if !m.Clauses[0].ViolatedBy(s) {
		t.Fatal("true atom satisfies clause; negative weight means violated")
	}
	if got := m.Cost(s); got != 3 {
		t.Fatalf("cost uses |w|: got %v", got)
	}
}

func TestHardClauseInfiniteCost(t *testing.T) {
	m := New(1)
	if err := m.AddClause(math.Inf(1), 1); err != nil {
		t.Fatal(err)
	}
	s := m.NewState()
	if !math.IsInf(m.Cost(s), 1) {
		t.Fatal("violated hard clause should cost +Inf")
	}
	s[1] = true
	if m.Cost(s) != 0 {
		t.Fatalf("cost = %v", m.Cost(s))
	}
}

func TestAddClauseValidation(t *testing.T) {
	m := New(2)
	if err := m.AddClause(1); err == nil {
		t.Fatal("empty clause accepted")
	}
	if err := m.AddClause(1, 3); err == nil {
		t.Fatal("out-of-range atom accepted")
	}
	if err := m.AddClause(1, 0); err == nil {
		t.Fatal("atom 0 accepted")
	}
}

func TestExample1CostLandscape(t *testing.T) {
	m := buildExample1(t, 1)
	s := m.NewState()
	// both false: X violated (1) + Y violated (1) = 2
	if got := m.Cost(s); got != 2 {
		t.Fatalf("FF cost = %v", got)
	}
	s[1] = true // X=T,Y=F: Y violated (1) + neg clause satisfied (1) = 2
	if got := m.Cost(s); got != 2 {
		t.Fatalf("TF cost = %v", got)
	}
	s[2] = true // both true: neg clause violated = 1 (the optimum)
	if got := m.Cost(s); got != 1 {
		t.Fatalf("TT cost = %v", got)
	}
}

func TestFixedCostAdded(t *testing.T) {
	m := New(1)
	m.FixedCost = 7.5
	if err := m.AddClause(1, 1); err != nil {
		t.Fatal(err)
	}
	s := m.NewState()
	if got := m.Cost(s); got != 8.5 {
		t.Fatalf("cost = %v", got)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(10)
	if uf.Count() != 10 {
		t.Fatalf("count = %d", uf.Count())
	}
	if !uf.Union(1, 2) || !uf.Union(2, 3) {
		t.Fatal("unions failed")
	}
	if uf.Union(1, 3) {
		t.Fatal("redundant union reported as merge")
	}
	if uf.Find(1) != uf.Find(3) {
		t.Fatal("1 and 3 should share a root")
	}
	if uf.Find(4) == uf.Find(1) {
		t.Fatal("4 wrongly merged")
	}
	if uf.Count() != 8 {
		t.Fatalf("count = %d", uf.Count())
	}
}

func TestUnionFindProperty(t *testing.T) {
	f := func(pairs []uint8) bool {
		uf := NewUnionFind(50)
		ref := make(map[int32]int32) // naive: map to min element via rebuild
		groups := make([][]int32, 51)
		for i := int32(1); i <= 50; i++ {
			groups[i] = []int32{i}
			ref[i] = i
		}
		merge := func(a, b int32) {
			ra, rb := ref[a], ref[b]
			if ra == rb {
				return
			}
			for _, x := range groups[rb] {
				ref[x] = ra
			}
			groups[ra] = append(groups[ra], groups[rb]...)
			groups[rb] = nil
		}
		for i := 0; i+1 < len(pairs); i += 2 {
			a := int32(pairs[i]%50) + 1
			b := int32(pairs[i+1]%50) + 1
			uf.Union(a, b)
			merge(a, b)
		}
		for a := int32(1); a <= 50; a++ {
			for b := a + 1; b <= 50; b++ {
				if (uf.Find(a) == uf.Find(b)) != (ref[a] == ref[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsExample1(t *testing.T) {
	const n = 25
	m := buildExample1(t, n)
	comps := m.Components(false)
	if len(comps) != n {
		t.Fatalf("components = %d, want %d", len(comps), n)
	}
	for _, c := range comps {
		if c.Size() != 2 {
			t.Fatalf("component size = %d", c.Size())
		}
		if len(c.MRF.Clauses) != 3 {
			t.Fatalf("component clauses = %d", len(c.MRF.Clauses))
		}
	}
}

func TestComponentsSingleConnected(t *testing.T) {
	m := New(4)
	_ = m.AddClause(1, 1, 2)
	_ = m.AddClause(1, 2, 3)
	_ = m.AddClause(1, 3, 4)
	comps := m.Components(false)
	if len(comps) != 1 || comps[0].Size() != 4 {
		t.Fatalf("components = %d", len(comps))
	}
}

func TestComponentsIsolatedAtoms(t *testing.T) {
	m := New(5)
	_ = m.AddClause(1, 1, 2)
	// atoms 3,4,5 appear in no clause
	if got := len(m.Components(false)); got != 1 {
		t.Fatalf("without isolated: %d", got)
	}
	if got := len(m.Components(true)); got != 4 {
		t.Fatalf("with isolated: %d", got)
	}
}

// Cost additivity across components (the identity in Section 3.3):
// costG(I) = sum_i costGi(Ii).
func TestComponentCostAdditivityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		nAtoms := 3 + r.Intn(20)
		m := New(nAtoms)
		nClauses := 1 + r.Intn(30)
		for i := 0; i < nClauses; i++ {
			width := 1 + r.Intn(3)
			lits := make([]Lit, 0, width)
			seen := map[AtomID]bool{}
			for len(lits) < width {
				a := AtomID(1 + r.Intn(nAtoms))
				if seen[a] {
					continue
				}
				seen[a] = true
				l := a
				if r.Intn(2) == 0 {
					l = -a
				}
				lits = append(lits, l)
			}
			w := float64(1+r.Intn(5)) * float64(1-2*r.Intn(2)) // ±1..5
			if err := m.AddClause(w, lits...); err != nil {
				t.Fatal(err)
			}
		}
		state := m.NewState()
		for a := 1; a <= nAtoms; a++ {
			state[a] = r.Intn(2) == 0
		}
		total := m.Cost(state)
		sum := 0.0
		for _, c := range m.Components(false) {
			sum += c.MRF.Cost(c.ExtractState(state))
		}
		if math.Abs(total-sum) > 1e-9 {
			t.Fatalf("trial %d: cost %v != component sum %v", trial, total, sum)
		}
	}
}

func TestProjectExtractRoundTrip(t *testing.T) {
	m := buildExample1(t, 3)
	comps := m.Components(false)
	global := m.NewState()
	global[3] = true
	global[4] = true
	for _, c := range comps {
		local := c.ExtractState(global)
		fresh := make([]bool, m.NumAtoms+1)
		c.ProjectState(local, fresh)
		for i := 1; i <= c.MRF.NumAtoms; i++ {
			g := c.GlobalAtom[i]
			if fresh[g] != global[g] {
				t.Fatalf("round trip mismatch at atom %d", g)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	m := buildExample1(t, 10)
	s := m.ComputeStats()
	if s.NumAtoms != 20 || s.NumClauses != 30 {
		t.Fatalf("stats = %+v", s)
	}
	if s.NumLiterals != 40 {
		t.Fatalf("literals = %d", s.NumLiterals)
	}
	if s.NumNegWeight != 10 {
		t.Fatalf("neg clauses = %d", s.NumNegWeight)
	}
	if s.ClauseBytes <= 0 || s.SearchBytes <= 0 {
		t.Fatalf("byte accounting missing: %+v", s)
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	m := buildExample1(t, 5)
	m.Clauses[0].Weight = 2.5 // exercise non-integer weights
	d := db.Open(db.Config{})
	if err := Store(m, d, "clauses"); err != nil {
		t.Fatal(err)
	}
	got, err := Load(d, "clauses", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumAtoms != m.NumAtoms {
		t.Fatalf("atoms = %d, want %d", got.NumAtoms, m.NumAtoms)
	}
	if len(got.Clauses) != len(m.Clauses) {
		t.Fatalf("clauses = %d, want %d", len(got.Clauses), len(m.Clauses))
	}
	for i := range m.Clauses {
		if got.Clauses[i].Weight != m.Clauses[i].Weight {
			t.Fatalf("clause %d weight %v != %v", i, got.Clauses[i].Weight, m.Clauses[i].Weight)
		}
		if len(got.Clauses[i].Lits) != len(m.Clauses[i].Lits) {
			t.Fatalf("clause %d lits differ", i)
		}
		for j := range m.Clauses[i].Lits {
			if got.Clauses[i].Lits[j] != m.Clauses[i].Lits[j] {
				t.Fatalf("clause %d lit %d: %d != %d", i, j, got.Clauses[i].Lits[j], m.Clauses[i].Lits[j])
			}
		}
	}
	// Store over an existing table replaces contents.
	if err := Store(m, d, "clauses"); err != nil {
		t.Fatal(err)
	}
	got2, err := Load(d, "clauses", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Clauses) != len(m.Clauses) {
		t.Fatalf("after re-store: %d clauses", len(got2.Clauses))
	}
}

func TestStoreHardClauseWeights(t *testing.T) {
	m := New(1)
	_ = m.AddClause(math.Inf(1), 1)
	d := db.Open(db.Config{})
	if err := Store(m, d, "c"); err != nil {
		t.Fatal(err)
	}
	got, err := Load(d, "c", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Clauses[0].IsHard() {
		t.Fatalf("hard weight lost: %v", got.Clauses[0].Weight)
	}
}

// Round-trips for the set-oriented search's helper-table codecs: the
// violated-clause side table and the atom→clause inverted-index table.
func TestViolRowRoundTrip(t *testing.T) {
	cases := []Clause{
		{Weight: 2.5, Lits: []Lit{1, -2}},
		{Weight: -0.7, Lits: []Lit{3}},
		{Weight: math.Inf(1), Lits: []Lit{-4, 5}},
	}
	for cid, c := range cases {
		row := ViolRow(int64(cid), c)
		gotCid, w, hard, err := RowViol(row)
		if err != nil {
			t.Fatal(err)
		}
		if gotCid != int64(cid) {
			t.Fatalf("cid = %d, want %d", gotCid, cid)
		}
		if hard != c.IsHard() {
			t.Fatalf("hard = %v for weight %v", hard, c.Weight)
		}
		if !hard && w != c.Weight {
			t.Fatalf("weight = %v, want %v (must round-trip bit-exactly)", w, c.Weight)
		}
	}
	if _, _, _, err := RowViol(ClauseRow(0, cases[0])); err == nil {
		t.Fatal("clause row accepted as violated-clause row")
	}
}

func TestAtomIndexRowRoundTrip(t *testing.T) {
	row := AtomIndexRow(7, []int64{0, 3, 9, 12})
	aid, cids, err := RowAtomIndex(row)
	if err != nil {
		t.Fatal(err)
	}
	if aid != 7 || len(cids) != 4 || cids[0] != 0 || cids[3] != 12 {
		t.Fatalf("round trip = %d %v", aid, cids)
	}
	if _, _, err := RowAtomIndex(ViolRow(1, Clause{Weight: 1, Lits: []Lit{1}})); err == nil {
		t.Fatal("violated-clause row accepted as atom-index row")
	}
}

// Side-table rows must be fixed-width so slot reuse via in-place update
// works for any weight/hardness combination.
func TestViolRowFixedWidth(t *testing.T) {
	sch := ViolTableSchema()
	want := -1
	for _, c := range []Clause{
		{Weight: 1, Lits: []Lit{1}},
		{Weight: math.Inf(1), Lits: []Lit{1, 2, 3}},
		{Weight: -123.456, Lits: []Lit{-9}},
	} {
		// Encode through the storage codec used by the heap.
		rec, err := tuple.Encode(sch, ViolRow(42, c))
		if err != nil {
			t.Fatal(err)
		}
		if want < 0 {
			want = len(rec)
		} else if len(rec) != want {
			t.Fatalf("side row width %d != %d", len(rec), want)
		}
	}
}
