// Package plan turns parsed SQL statements into executable operator trees.
// It implements the relational-optimizer features the Tuffy paper credits
// for its grounding speed-up (Section 4.2 and Appendix C.2): predicate
// pushdown, cost-based join ordering, join-algorithm selection between
// hash, sort-merge and nested-loop joins, and index-versus-scan access-path
// choice. Decisions are made by comparing Plan cost nodes — the classic
// BlocksAccessed/RecordsOutput/DistinctValues interface — fed by the
// catalog's per-table row and distinct statistics; EstimateSelect exposes
// the resulting Explain (join order, access paths, root estimates) without
// executing anything. A SelectStmt may also carry HashRange restrictions
// that partition one query into disjoint hash ranges of a column, which is
// how the grounder fans a single clause's join out across workers. The
// paper's lesion study (Table 6) is reproduced through the Options knobs:
// ForceJoinOrder pins the FROM order, NestedLoopOnly disables hash/merge
// joins.
package plan

import (
	"fmt"

	"tuffy/internal/db/exec"
	"tuffy/internal/db/tuple"
)

// Operand is one side of a condition: a column reference or a literal.
type Operand struct {
	IsCol bool
	Table string // alias (may be empty if unambiguous)
	Col   string
	Val   tuple.Value
}

// ColOp makes a column operand.
func ColOp(table, col string) Operand { return Operand{IsCol: true, Table: table, Col: col} }

// ValOp makes a literal operand.
func ValOp(v tuple.Value) Operand { return Operand{Val: v} }

func (o Operand) String() string {
	if o.IsCol {
		if o.Table != "" {
			return o.Table + "." + o.Col
		}
		return o.Col
	}
	return o.Val.String()
}

// Cond is a binary comparison in a WHERE conjunction.
type Cond struct {
	Op   exec.CmpOp
	L, R Operand
}

func (c Cond) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// ProjKind enumerates projection item kinds.
type ProjKind int

const (
	ProjCol ProjKind = iota
	ProjConst
	ProjAgg
	ProjStar
)

// ProjItem is one item of a SELECT list.
type ProjItem struct {
	Kind  ProjKind
	Col   Operand      // for ProjCol
	Val   tuple.Value  // for ProjConst
	Agg   exec.AggFunc // for ProjAgg
	Arg   *Operand     // aggregate argument; nil for COUNT(*)
	Alias string
}

// FromItem names a base table with an optional alias.
type FromItem struct {
	Table string
	Alias string
}

// Name returns the effective range-variable name.
func (f FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Table
}

// SelectStmt is the supported SELECT shape: conjunctive filters over a join
// of base tables with optional grouping, ordering and limit.
type SelectStmt struct {
	Distinct bool
	Proj     []ProjItem
	From     []FromItem
	Where    []Cond
	GroupBy  []Operand
	OrderBy  []Operand
	Limit    int64 // -1 = no limit
	// Ranges restricts FROM items to hash ranges of a column. There is no
	// SQL syntax for it; callers partitioning a query (db.QueryRanged)
	// attach restrictions out of band.
	Ranges []HashRange
}

// InsertStmt inserts literal rows or a SELECT result.
type InsertStmt struct {
	Table  string
	Rows   []tuple.Row // literal form
	Select *SelectStmt // SELECT form (exactly one of Rows/Select set)
}

// UpdateStmt sets one column to a constant on rows matching conjunctive
// conditions (enough for in-database search state updates).
type UpdateStmt struct {
	Table string
	Col   string
	Val   tuple.Value
	Where []Cond
}

// DeleteStmt removes rows matching conjunctive conditions.
type DeleteStmt struct {
	Table string
	Where []Cond
}

// CreateTableStmt declares a new table.
type CreateTableStmt struct {
	Table string
	Sch   tuple.Schema
}

// Statement is a parsed SQL statement (one of the concrete types above).
type Statement interface{ stmt() }

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
