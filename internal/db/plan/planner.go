package plan

import (
	"fmt"
	"math"
	"strings"

	"tuffy/internal/db/exec"
	"tuffy/internal/db/tuple"
)

// Catalog resolves table names for the planner.
type Catalog interface {
	TableMeta(name string) (TableMeta, bool)
}

// TableMeta is what the planner needs to know about a base table: its
// schema, statistics for cardinality estimation, and a way to scan it.
type TableMeta interface {
	Schema() tuple.Schema
	RowCount() int64
	// DistinctCount estimates the number of distinct values in a column.
	DistinctCount(col int) int64
	// NewScan returns a fresh full-table scan iterator.
	NewScan() exec.Iterator
}

// JoinAlgorithm selects the physical join operator.
type JoinAlgorithm int

const (
	JoinAuto JoinAlgorithm = iota // hash for equi-joins, NLJ otherwise
	JoinHashOnly
	JoinMergeOnly
	JoinNestedLoopOnly
)

// Options are the optimizer knobs. The zero value is the full optimizer.
// The Table 6 lesion study sets ForceJoinOrder and JoinNestedLoopOnly.
type Options struct {
	// ForceJoinOrder pins the join order to the FROM-clause order
	// (left-deep), disabling cost-based reordering.
	ForceJoinOrder bool
	// Algorithm restricts physical join selection.
	Algorithm JoinAlgorithm
	// DisablePushdown keeps single-table predicates above joins. (Not used
	// by the paper's lesion study but exposed for ablations.)
	DisablePushdown bool
}

// Planner compiles SelectStmts to executable iterators.
type Planner struct {
	Cat  Catalog
	Opts Options
}

// NewPlanner returns a planner over cat with opts.
func NewPlanner(cat Catalog, opts Options) *Planner {
	return &Planner{Cat: cat, Opts: opts}
}

// relation is one input of the join search.
type relation struct {
	item    FromItem
	meta    TableMeta
	sch     tuple.Schema // alias-qualified column names
	filters []Cond
	card    float64 // estimated cardinality after filters
}

// Plan compiles a SELECT into an iterator tree. The result's schema has the
// projection aliases as column names.
func (p *Planner) Plan(stmt *SelectStmt) (exec.Iterator, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("plan: SELECT requires FROM")
	}
	rels := make([]*relation, len(stmt.From))
	seen := map[string]bool{}
	for i, f := range stmt.From {
		meta, ok := p.Cat.TableMeta(f.Table)
		if !ok {
			return nil, fmt.Errorf("plan: unknown table %q", f.Table)
		}
		name := f.Name()
		if seen[strings.ToLower(name)] {
			return nil, fmt.Errorf("plan: duplicate range variable %q", name)
		}
		seen[strings.ToLower(name)] = true
		base := meta.Schema()
		cols := make([]tuple.Column, len(base.Cols))
		for j, c := range base.Cols {
			cols[j] = tuple.Column{Name: name + "." + c.Name, Type: c.Type}
		}
		rels[i] = &relation{item: f, meta: meta, sch: tuple.Schema{Cols: cols}}
	}

	// Split WHERE into single-relation filters and join conditions.
	var joinConds []Cond
	for _, c := range stmt.Where {
		lRel, err := p.condRelation(rels, c.L)
		if err != nil {
			return nil, err
		}
		rRel, err := p.condRelation(rels, c.R)
		if err != nil {
			return nil, err
		}
		switch {
		case lRel == nil && rRel == nil:
			// constant condition: keep as global filter on first relation
			rels[0].filters = append(rels[0].filters, c)
		case lRel != nil && (rRel == nil || rRel == lRel):
			lRel.filters = append(lRel.filters, c)
		case lRel == nil && rRel != nil:
			rRel.filters = append(rRel.filters, c)
		default:
			joinConds = append(joinConds, c)
		}
	}

	for _, r := range rels {
		r.card = p.estimateFiltered(r)
	}

	order, err := p.joinOrder(rels, joinConds)
	if err != nil {
		return nil, err
	}

	// With pushdown disabled, single-relation filters are held back and
	// applied above the join instead (same semantics, worse plan — the
	// ablation knob must not change results).
	var heldBack []Cond
	if p.Opts.DisablePushdown {
		for _, r := range rels {
			for _, c := range r.filters {
				// Qualify column operands so they stay unambiguous when
				// resolved against the joined schema.
				if c.L.IsCol && c.L.Table == "" {
					c.L.Table = r.item.Name()
				}
				if c.R.IsCol && c.R.Table == "" {
					c.R.Table = r.item.Name()
				}
				heldBack = append(heldBack, c)
			}
		}
	}

	// Build the left-deep tree following order.
	cur, err := p.scanWithFilters(order[0])
	if err != nil {
		return nil, err
	}
	curSch := cur.Schema()
	remaining := append([]Cond(nil), joinConds...)
	for _, r := range order[1:] {
		right, err := p.scanWithFilters(r)
		if err != nil {
			return nil, err
		}
		nextSch := curSch.Concat(right.Schema())
		// Find applicable join conditions: both sides resolvable, one in
		// cur, one in right.
		var eqL, eqR []int
		var residual []exec.Expr
		var rest []Cond
		for _, c := range remaining {
			le, lok := resolveOperand(c.L, nextSch)
			re, rok := resolveOperand(c.R, nextSch)
			if !lok || !rok {
				rest = append(rest, c)
				continue
			}
			lIdx, lIsCol := colIndex(le)
			rIdx, rIsCol := colIndex(re)
			if c.Op == exec.CmpEq && lIsCol && rIsCol {
				switch {
				case lIdx < curSch.Arity() && rIdx >= curSch.Arity():
					eqL = append(eqL, lIdx)
					eqR = append(eqR, rIdx-curSch.Arity())
					continue
				case rIdx < curSch.Arity() && lIdx >= curSch.Arity():
					eqL = append(eqL, rIdx)
					eqR = append(eqR, lIdx-curSch.Arity())
					continue
				}
			}
			residual = append(residual, exec.Cmp{Op: c.Op, L: le, R: re})
		}
		remaining = rest
		var res exec.Expr
		if len(residual) == 1 {
			res = residual[0]
		} else if len(residual) > 1 {
			res = exec.And{Kids: residual}
		}
		cur = p.physicalJoin(cur, right, eqL, eqR, res)
		curSch = cur.Schema()
	}
	if len(remaining) > 0 {
		// Conditions referencing unknown columns.
		return nil, fmt.Errorf("plan: unresolved condition %v", remaining[0])
	}
	if len(heldBack) > 0 {
		var preds []exec.Expr
		for _, c := range heldBack {
			le, lok := resolveOperand(c.L, curSch)
			re, rok := resolveOperand(c.R, curSch)
			if !lok || !rok {
				return nil, fmt.Errorf("plan: cannot resolve held-back filter %v", c)
			}
			preds = append(preds, exec.Cmp{Op: c.Op, L: le, R: re})
		}
		var pred exec.Expr
		if len(preds) == 1 {
			pred = preds[0]
		} else {
			pred = exec.And{Kids: preds}
		}
		cur = exec.NewFilter(cur, pred)
	}

	// Grouping / aggregation.
	hasAgg := false
	for _, it := range stmt.Proj {
		if it.Kind == ProjAgg {
			hasAgg = true
		}
	}
	if hasAgg || len(stmt.GroupBy) > 0 {
		it, sch, err := p.buildAggregate(cur, curSch, stmt)
		if err != nil {
			return nil, err
		}
		cur, curSch = it, sch
	} else {
		it, sch, err := p.buildProject(cur, curSch, stmt.Proj)
		if err != nil {
			return nil, err
		}
		cur, curSch = it, sch
	}

	if stmt.Distinct {
		cur = exec.NewDistinct(cur)
	}
	if len(stmt.OrderBy) > 0 {
		var cols []int
		for _, o := range stmt.OrderBy {
			idx := curSch.ColIndex(qualName(o))
			if idx < 0 {
				idx = curSch.ColIndex(o.Col)
			}
			if idx < 0 {
				return nil, fmt.Errorf("plan: ORDER BY column %s not in output", o)
			}
			cols = append(cols, idx)
		}
		cur = exec.NewSort(cur, cols)
	}
	if stmt.Limit >= 0 {
		cur = exec.NewLimit(cur, stmt.Limit)
	}
	return cur, nil
}

func qualName(o Operand) string {
	if o.Table != "" {
		return o.Table + "." + o.Col
	}
	return o.Col
}

// condRelation finds which relation an operand's column belongs to (nil for
// literals). Ambiguous unqualified names are an error.
func (p *Planner) condRelation(rels []*relation, o Operand) (*relation, error) {
	if !o.IsCol {
		return nil, nil
	}
	var found *relation
	for _, r := range rels {
		if o.Table != "" && !strings.EqualFold(o.Table, r.item.Name()) {
			continue
		}
		if r.sch.ColIndex(r.item.Name()+"."+o.Col) >= 0 {
			if found != nil {
				return nil, fmt.Errorf("plan: ambiguous column %q", o.Col)
			}
			found = r
		}
	}
	if found == nil {
		return nil, fmt.Errorf("plan: unknown column %s", o)
	}
	return found, nil
}

// resolveOperand turns an operand into an expression over sch.
func resolveOperand(o Operand, sch tuple.Schema) (exec.Expr, bool) {
	if !o.IsCol {
		return exec.Const{Val: o.Val}, true
	}
	if o.Table != "" {
		idx := sch.ColIndex(o.Table + "." + o.Col)
		if idx < 0 {
			return nil, false
		}
		return exec.ColRef{Idx: idx, Name: o.Table + "." + o.Col}, true
	}
	// Unqualified: match by suffix.
	idx := -1
	for i, c := range sch.Cols {
		if strings.EqualFold(c.Name, o.Col) || strings.HasSuffix(strings.ToLower(c.Name), "."+strings.ToLower(o.Col)) {
			if idx >= 0 {
				return nil, false // ambiguous
			}
			idx = i
		}
	}
	if idx < 0 {
		return nil, false
	}
	return exec.ColRef{Idx: idx, Name: sch.Cols[idx].Name}, true
}

func colIndex(e exec.Expr) (int, bool) {
	if c, ok := e.(exec.ColRef); ok {
		return c.Idx, true
	}
	return 0, false
}

// scanWithFilters builds the scan for one relation, renaming columns to
// alias-qualified form and applying pushed-down filters.
func (p *Planner) scanWithFilters(r *relation) (exec.Iterator, error) {
	var it exec.Iterator = &renameIter{Iterator: r.meta.NewScan(), sch: r.sch}
	if p.Opts.DisablePushdown || len(r.filters) == 0 {
		return it, nil
	}
	var preds []exec.Expr
	for _, c := range r.filters {
		le, lok := resolveOperand(c.L, r.sch)
		re, rok := resolveOperand(c.R, r.sch)
		if !lok || !rok {
			return nil, fmt.Errorf("plan: cannot resolve filter %v on %s", c, r.item.Name())
		}
		preds = append(preds, exec.Cmp{Op: c.Op, L: le, R: re})
	}
	var pred exec.Expr
	if len(preds) == 1 {
		pred = preds[0]
	} else {
		pred = exec.And{Kids: preds}
	}
	return exec.NewFilter(it, pred), nil
}

// renameIter overrides the child's schema with alias-qualified names.
type renameIter struct {
	exec.Iterator
	sch tuple.Schema
}

func (r *renameIter) Schema() tuple.Schema { return r.sch }

// estimateFiltered estimates a relation's cardinality after its pushed-down
// filters, using 1/distinct selectivity for equality with a constant and 1/3
// for other comparisons.
func (p *Planner) estimateFiltered(r *relation) float64 {
	card := float64(r.meta.RowCount())
	base := r.meta.Schema()
	for _, c := range r.filters {
		sel := 1.0 / 3.0
		if c.Op == exec.CmpEq {
			var colOp *Operand
			switch {
			case c.L.IsCol && !c.R.IsCol:
				colOp = &c.L
			case c.R.IsCol && !c.L.IsCol:
				colOp = &c.R
			}
			if colOp != nil {
				if idx := base.ColIndex(colOp.Col); idx >= 0 {
					if d := r.meta.DistinctCount(idx); d > 0 {
						sel = 1.0 / float64(d)
					}
				}
			}
		} else if c.Op == exec.CmpNe {
			sel = 0.9
		}
		card *= sel
	}
	if card < 1 {
		card = 1
	}
	return card
}

// joinOrder picks the join order. ForceJoinOrder keeps FROM order; otherwise
// a greedy heuristic starts from the smallest filtered relation and extends
// with the relation that minimizes the estimated intermediate size,
// preferring relations connected by an equi-join edge (avoiding cartesian
// products until forced).
func (p *Planner) joinOrder(rels []*relation, joinConds []Cond) ([]*relation, error) {
	if p.Opts.ForceJoinOrder || len(rels) <= 1 {
		return rels, nil
	}
	// Build the join graph: edges between relations constrained by a
	// condition, with the distinct counts of the join columns.
	type edge struct{ a, b int }
	connected := map[edge][]Cond{}
	relIdx := func(r *relation) int {
		for i := range rels {
			if rels[i] == r {
				return i
			}
		}
		return -1
	}
	for _, c := range joinConds {
		lr, err := p.condRelation(rels, c.L)
		if err != nil {
			return nil, err
		}
		rr, err := p.condRelation(rels, c.R)
		if err != nil {
			return nil, err
		}
		if lr == nil || rr == nil || lr == rr {
			continue
		}
		a, b := relIdx(lr), relIdx(rr)
		if a > b {
			a, b = b, a
		}
		connected[edge{a, b}] = append(connected[edge{a, b}], c)
	}

	used := make([]bool, len(rels))
	// Start from the smallest relation.
	start := 0
	for i, r := range rels {
		if r.card < rels[start].card {
			start = i
		}
	}
	order := []*relation{rels[start]}
	used[start] = true
	curCard := rels[start].card
	inSet := map[int]bool{start: true}

	for len(order) < len(rels) {
		bestIdx, bestCard := -1, math.Inf(1)
		bestConnected := false
		for i, r := range rels {
			if used[i] {
				continue
			}
			// Estimate join size with the current set.
			conn := false
			est := curCard * r.card
			for e, conds := range connected {
				var other int
				switch {
				case e.a == i && inSet[e.b]:
					other = e.b
				case e.b == i && inSet[e.a]:
					other = e.a
				default:
					continue
				}
				_ = other
				conn = true
				for _, c := range conds {
					if c.Op != exec.CmpEq {
						est /= 3
						continue
					}
					d := p.joinColDistinct(rels, c)
					if d > 1 {
						est /= float64(d)
					}
				}
			}
			// Prefer connected joins; among candidates minimize est size.
			if conn && !bestConnected {
				bestIdx, bestCard, bestConnected = i, est, true
				continue
			}
			if conn == bestConnected && est < bestCard {
				bestIdx, bestCard = i, est
			}
		}
		order = append(order, rels[bestIdx])
		used[bestIdx] = true
		inSet[bestIdx] = true
		curCard = math.Max(bestCard, 1)
	}
	return order, nil
}

// joinColDistinct returns max distinct count across the two join columns of
// an equality condition.
func (p *Planner) joinColDistinct(rels []*relation, c Cond) int64 {
	var d int64 = 1
	for _, op := range []Operand{c.L, c.R} {
		if !op.IsCol {
			continue
		}
		r, err := p.condRelation(rels, op)
		if err != nil || r == nil {
			continue
		}
		if idx := r.meta.Schema().ColIndex(op.Col); idx >= 0 {
			if dd := r.meta.DistinctCount(idx); dd > d {
				d = dd
			}
		}
	}
	return d
}

// physicalJoin picks the join operator per Options.
func (p *Planner) physicalJoin(left, right exec.Iterator, eqL, eqR []int, residual exec.Expr) exec.Iterator {
	alg := p.Opts.Algorithm
	if len(eqL) == 0 || alg == JoinNestedLoopOnly {
		// Fold equi keys back into the residual for NLJ correctness.
		var preds []exec.Expr
		for i := range eqL {
			preds = append(preds, exec.Cmp{Op: exec.CmpEq,
				L: exec.ColRef{Idx: eqL[i]},
				R: exec.ColRef{Idx: left.Schema().Arity() + eqR[i]}})
		}
		if residual != nil {
			preds = append(preds, residual)
		}
		var on exec.Expr
		if len(preds) == 1 {
			on = preds[0]
		} else if len(preds) > 1 {
			on = exec.And{Kids: preds}
		}
		return exec.NewNestedLoopJoin(left, right, on)
	}
	if alg == JoinMergeOnly {
		return exec.NewMergeJoin(exec.NewSort(left, eqL), exec.NewSort(right, eqR), eqL, eqR, residual)
	}
	return exec.NewHashJoin(left, right, eqL, eqR, residual)
}

// buildProject compiles the SELECT list (no aggregates).
func (p *Planner) buildProject(cur exec.Iterator, sch tuple.Schema, items []ProjItem) (exec.Iterator, tuple.Schema, error) {
	var exprs []exec.Expr
	var names []string
	for _, it := range items {
		switch it.Kind {
		case ProjStar:
			for i, c := range sch.Cols {
				exprs = append(exprs, exec.ColRef{Idx: i, Name: c.Name})
				names = append(names, c.Name)
			}
		case ProjCol:
			e, ok := resolveOperand(it.Col, sch)
			if !ok {
				return nil, tuple.Schema{}, fmt.Errorf("plan: unknown column %s", it.Col)
			}
			name := it.Alias
			if name == "" {
				name = it.Col.Col
			}
			exprs = append(exprs, e)
			names = append(names, name)
		case ProjConst:
			name := it.Alias
			if name == "" {
				name = it.Val.String()
			}
			exprs = append(exprs, exec.Const{Val: it.Val})
			names = append(names, name)
		default:
			return nil, tuple.Schema{}, fmt.Errorf("plan: aggregate outside GROUP BY path")
		}
	}
	proj, err := exec.NewProject(cur, exprs, names)
	if err != nil {
		return nil, tuple.Schema{}, err
	}
	return proj, proj.Schema(), nil
}

// buildAggregate compiles GROUP BY + aggregate SELECT lists.
func (p *Planner) buildAggregate(cur exec.Iterator, sch tuple.Schema, stmt *SelectStmt) (exec.Iterator, tuple.Schema, error) {
	var groupCols []int
	for _, g := range stmt.GroupBy {
		e, ok := resolveOperand(g, sch)
		if !ok {
			return nil, tuple.Schema{}, fmt.Errorf("plan: unknown GROUP BY column %s", g)
		}
		idx, isCol := colIndex(e)
		if !isCol {
			return nil, tuple.Schema{}, fmt.Errorf("plan: GROUP BY must reference columns")
		}
		groupCols = append(groupCols, idx)
	}
	var aggs []exec.AggSpec
	// Map projection items to the aggregate output layout.
	type outItem struct {
		fromGroup int // >=0: group column position
		fromAgg   int // >=0: aggregate position
		name      string
	}
	var layout []outItem
	for _, it := range stmt.Proj {
		switch it.Kind {
		case ProjCol:
			e, ok := resolveOperand(it.Col, sch)
			if !ok {
				return nil, tuple.Schema{}, fmt.Errorf("plan: unknown column %s", it.Col)
			}
			idx, _ := colIndex(e)
			pos := -1
			for gi, g := range groupCols {
				if g == idx {
					pos = gi
				}
			}
			if pos < 0 {
				return nil, tuple.Schema{}, fmt.Errorf("plan: column %s not in GROUP BY", it.Col)
			}
			name := it.Alias
			if name == "" {
				name = it.Col.Col
			}
			layout = append(layout, outItem{fromGroup: pos, fromAgg: -1, name: name})
		case ProjAgg:
			var arg exec.Expr
			if it.Arg != nil {
				e, ok := resolveOperand(*it.Arg, sch)
				if !ok {
					return nil, tuple.Schema{}, fmt.Errorf("plan: unknown column %s", *it.Arg)
				}
				arg = e
			}
			name := it.Alias
			if name == "" {
				name = it.Agg.String()
			}
			aggs = append(aggs, exec.AggSpec{Func: it.Agg, Arg: arg, Name: name})
			layout = append(layout, outItem{fromGroup: -1, fromAgg: len(aggs) - 1, name: name})
		case ProjConst:
			return nil, tuple.Schema{}, fmt.Errorf("plan: constants in aggregate SELECT unsupported")
		case ProjStar:
			return nil, tuple.Schema{}, fmt.Errorf("plan: SELECT * with GROUP BY unsupported")
		}
	}
	agg := exec.NewHashAggregate(cur, groupCols, aggs)
	aggSch := agg.Schema()
	// Reorder aggregate output to the projection order.
	var exprs []exec.Expr
	var names []string
	for _, li := range layout {
		var idx int
		if li.fromGroup >= 0 {
			idx = li.fromGroup
		} else {
			idx = len(groupCols) + li.fromAgg
		}
		exprs = append(exprs, exec.ColRef{Idx: idx, Name: aggSch.Cols[idx].Name})
		names = append(names, li.name)
	}
	proj, err := exec.NewProject(agg, exprs, names)
	if err != nil {
		return nil, tuple.Schema{}, err
	}
	return proj, proj.Schema(), nil
}
