package plan

import (
	"fmt"
	"math"
	"strings"

	"tuffy/internal/db/exec"
	"tuffy/internal/db/tuple"
)

// Catalog resolves table names for the planner.
type Catalog interface {
	TableMeta(name string) (TableMeta, bool)
}

// TableMeta is what the planner needs to know about a base table: its
// schema, statistics for cardinality estimation, and a way to scan it.
type TableMeta interface {
	Schema() tuple.Schema
	RowCount() int64
	// DistinctCount estimates the number of distinct values in a column.
	DistinctCount(col int) int64
	// NewScan returns a fresh full-table scan iterator.
	NewScan() exec.Iterator
}

// JoinAlgorithm selects the physical join operator.
type JoinAlgorithm int

const (
	JoinAuto JoinAlgorithm = iota // hash for equi-joins, NLJ otherwise
	JoinHashOnly
	JoinMergeOnly
	JoinNestedLoopOnly
)

// Options are the optimizer knobs. The zero value is the full optimizer.
// The Table 6 lesion study sets ForceJoinOrder and JoinNestedLoopOnly.
type Options struct {
	// ForceJoinOrder pins the join order to the FROM-clause order
	// (left-deep), disabling cost-based reordering.
	ForceJoinOrder bool
	// Algorithm restricts physical join selection.
	Algorithm JoinAlgorithm
	// DisablePushdown keeps single-table predicates above joins. (Not used
	// by the paper's lesion study but exposed for ablations.)
	DisablePushdown bool
}

// Planner compiles SelectStmts to executable iterators.
type Planner struct {
	Cat  Catalog
	Opts Options
}

// NewPlanner returns a planner over cat with opts.
func NewPlanner(cat Catalog, opts Options) *Planner {
	return &Planner{Cat: cat, Opts: opts}
}

// relation is one input of the join search.
type relation struct {
	item    FromItem
	meta    TableMeta
	sch     tuple.Schema // alias-qualified column names
	filters []Cond
	ranges  []HashRange
	access  *accessPlan // chosen access path (cost node)
	eqVal   tuple.Value // index lookup constant when access.eqCol >= 0
	card    float64     // estimated cardinality after filters and ranges
}

// Plan compiles a SELECT into an iterator tree. The result's schema has the
// projection aliases as column names.
func (p *Planner) Plan(stmt *SelectStmt) (exec.Iterator, error) {
	it, _, err := p.PlanExplain(stmt)
	return it, err
}

// EstimateSelect runs the optimizer without executing anything and returns
// its Explain: the chosen join order, access path per range variable, and
// the root Plan node's cost estimates. The grounding scheduler uses it to
// find a query's dominant cost; tests use it to pin optimizer choices.
func (p *Planner) EstimateSelect(stmt *SelectStmt) (*Explain, error) {
	_, ex, err := p.PlanExplain(stmt)
	return ex, err
}

// PlanExplain compiles a SELECT into an iterator tree and also reports the
// optimizer's choices.
func (p *Planner) PlanExplain(stmt *SelectStmt) (exec.Iterator, *Explain, error) {
	if len(stmt.From) == 0 {
		return nil, nil, fmt.Errorf("plan: SELECT requires FROM")
	}
	rels := make([]*relation, len(stmt.From))
	seen := map[string]bool{}
	for i, f := range stmt.From {
		meta, ok := p.Cat.TableMeta(f.Table)
		if !ok {
			return nil, nil, fmt.Errorf("plan: unknown table %q", f.Table)
		}
		name := f.Name()
		if seen[strings.ToLower(name)] {
			return nil, nil, fmt.Errorf("plan: duplicate range variable %q", name)
		}
		seen[strings.ToLower(name)] = true
		base := meta.Schema()
		cols := make([]tuple.Column, len(base.Cols))
		for j, c := range base.Cols {
			cols[j] = tuple.Column{Name: name + "." + c.Name, Type: c.Type}
		}
		rels[i] = &relation{item: f, meta: meta, sch: tuple.Schema{Cols: cols}}
	}

	// Attach hash-range restrictions to their range variables.
	for _, hr := range stmt.Ranges {
		attached := false
		for _, r := range rels {
			if strings.EqualFold(hr.Table, r.item.Name()) {
				if r.meta.Schema().ColIndex(hr.Col) < 0 {
					return nil, nil, fmt.Errorf("plan: hash range on unknown column %s.%s", hr.Table, hr.Col)
				}
				if hr.Mod == 0 || hr.Rem >= hr.Mod {
					return nil, nil, fmt.Errorf("plan: hash range %d mod %d invalid", hr.Rem, hr.Mod)
				}
				r.ranges = append(r.ranges, hr)
				attached = true
				break
			}
		}
		if !attached {
			return nil, nil, fmt.Errorf("plan: hash range on unknown range variable %q", hr.Table)
		}
	}

	// Split WHERE into single-relation filters and join conditions.
	var joinConds []Cond
	for _, c := range stmt.Where {
		lRel, err := p.condRelation(rels, c.L)
		if err != nil {
			return nil, nil, err
		}
		rRel, err := p.condRelation(rels, c.R)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case lRel == nil && rRel == nil:
			// constant condition: keep as global filter on first relation
			rels[0].filters = append(rels[0].filters, c)
		case lRel != nil && (rRel == nil || rRel == lRel):
			lRel.filters = append(lRel.filters, c)
		case lRel == nil && rRel != nil:
			rRel.filters = append(rRel.filters, c)
		default:
			joinConds = append(joinConds, c)
		}
	}

	for _, r := range rels {
		p.chooseAccess(r)
	}

	order, rootCost, err := p.joinOrder(rels, joinConds)
	if err != nil {
		return nil, nil, err
	}
	ex := &Explain{Access: make(map[string]string, len(order))}
	for _, r := range order {
		ex.JoinOrder = append(ex.JoinOrder, r.item.Name())
		ex.Access[r.item.Name()] = r.access.describe()
	}
	ex.EstRows = rootCost.RecordsOutput()
	ex.EstBlocks = rootCost.BlocksAccessed()

	// With pushdown disabled, single-relation filters are held back and
	// applied above the join instead (same semantics, worse plan — the
	// ablation knob must not change results).
	var heldBack []Cond
	if p.Opts.DisablePushdown {
		for _, r := range rels {
			for _, c := range r.filters {
				// Qualify column operands so they stay unambiguous when
				// resolved against the joined schema.
				if c.L.IsCol && c.L.Table == "" {
					c.L.Table = r.item.Name()
				}
				if c.R.IsCol && c.R.Table == "" {
					c.R.Table = r.item.Name()
				}
				heldBack = append(heldBack, c)
			}
		}
	}

	// Build the left-deep tree following order.
	cur, err := p.scanWithFilters(order[0])
	if err != nil {
		return nil, nil, err
	}
	curSch := cur.Schema()
	remaining := append([]Cond(nil), joinConds...)
	for _, r := range order[1:] {
		right, err := p.scanWithFilters(r)
		if err != nil {
			return nil, nil, err
		}
		nextSch := curSch.Concat(right.Schema())
		// Find applicable join conditions: both sides resolvable, one in
		// cur, one in right.
		var eqL, eqR []int
		var residual []exec.Expr
		var rest []Cond
		for _, c := range remaining {
			le, lok := resolveOperand(c.L, nextSch)
			re, rok := resolveOperand(c.R, nextSch)
			if !lok || !rok {
				rest = append(rest, c)
				continue
			}
			lIdx, lIsCol := colIndex(le)
			rIdx, rIsCol := colIndex(re)
			if c.Op == exec.CmpEq && lIsCol && rIsCol {
				switch {
				case lIdx < curSch.Arity() && rIdx >= curSch.Arity():
					eqL = append(eqL, lIdx)
					eqR = append(eqR, rIdx-curSch.Arity())
					continue
				case rIdx < curSch.Arity() && lIdx >= curSch.Arity():
					eqL = append(eqL, rIdx)
					eqR = append(eqR, lIdx-curSch.Arity())
					continue
				}
			}
			residual = append(residual, exec.Cmp{Op: c.Op, L: le, R: re})
		}
		remaining = rest
		var res exec.Expr
		if len(residual) == 1 {
			res = residual[0]
		} else if len(residual) > 1 {
			res = exec.And{Kids: residual}
		}
		cur = p.physicalJoin(cur, right, eqL, eqR, res)
		curSch = cur.Schema()
	}
	if len(remaining) > 0 {
		// Conditions referencing unknown columns.
		return nil, nil, fmt.Errorf("plan: unresolved condition %v", remaining[0])
	}
	if len(heldBack) > 0 {
		var preds []exec.Expr
		for _, c := range heldBack {
			le, lok := resolveOperand(c.L, curSch)
			re, rok := resolveOperand(c.R, curSch)
			if !lok || !rok {
				return nil, nil, fmt.Errorf("plan: cannot resolve held-back filter %v", c)
			}
			preds = append(preds, exec.Cmp{Op: c.Op, L: le, R: re})
		}
		var pred exec.Expr
		if len(preds) == 1 {
			pred = preds[0]
		} else {
			pred = exec.And{Kids: preds}
		}
		cur = exec.NewFilter(cur, pred)
	}

	// Grouping / aggregation.
	hasAgg := false
	for _, it := range stmt.Proj {
		if it.Kind == ProjAgg {
			hasAgg = true
		}
	}
	if hasAgg || len(stmt.GroupBy) > 0 {
		it, sch, err := p.buildAggregate(cur, curSch, stmt)
		if err != nil {
			return nil, nil, err
		}
		cur, curSch = it, sch
	} else {
		it, sch, err := p.buildProject(cur, curSch, stmt.Proj)
		if err != nil {
			return nil, nil, err
		}
		cur, curSch = it, sch
	}

	if stmt.Distinct {
		cur = exec.NewDistinct(cur)
	}
	if len(stmt.OrderBy) > 0 {
		var cols []int
		for _, o := range stmt.OrderBy {
			idx := curSch.ColIndex(qualName(o))
			if idx < 0 {
				idx = curSch.ColIndex(o.Col)
			}
			if idx < 0 {
				return nil, nil, fmt.Errorf("plan: ORDER BY column %s not in output", o)
			}
			cols = append(cols, idx)
		}
		cur = exec.NewSort(cur, cols)
	}
	if stmt.Limit >= 0 {
		cur = exec.NewLimit(cur, stmt.Limit)
	}
	return cur, ex, nil
}

func qualName(o Operand) string {
	if o.Table != "" {
		return o.Table + "." + o.Col
	}
	return o.Col
}

// condRelation finds which relation an operand's column belongs to (nil for
// literals). Ambiguous unqualified names are an error.
func (p *Planner) condRelation(rels []*relation, o Operand) (*relation, error) {
	if !o.IsCol {
		return nil, nil
	}
	var found *relation
	for _, r := range rels {
		if o.Table != "" && !strings.EqualFold(o.Table, r.item.Name()) {
			continue
		}
		if r.sch.ColIndex(r.item.Name()+"."+o.Col) >= 0 {
			if found != nil {
				return nil, fmt.Errorf("plan: ambiguous column %q", o.Col)
			}
			found = r
		}
	}
	if found == nil {
		return nil, fmt.Errorf("plan: unknown column %s", o)
	}
	return found, nil
}

// resolveOperand turns an operand into an expression over sch.
func resolveOperand(o Operand, sch tuple.Schema) (exec.Expr, bool) {
	if !o.IsCol {
		return exec.Const{Val: o.Val}, true
	}
	if o.Table != "" {
		idx := sch.ColIndex(o.Table + "." + o.Col)
		if idx < 0 {
			return nil, false
		}
		return exec.ColRef{Idx: idx, Name: o.Table + "." + o.Col}, true
	}
	// Unqualified: match by suffix.
	idx := -1
	for i, c := range sch.Cols {
		if strings.EqualFold(c.Name, o.Col) || strings.HasSuffix(strings.ToLower(c.Name), "."+strings.ToLower(o.Col)) {
			if idx >= 0 {
				return nil, false // ambiguous
			}
			idx = i
		}
	}
	if idx < 0 {
		return nil, false
	}
	return exec.ColRef{Idx: idx, Name: sch.Cols[idx].Name}, true
}

func colIndex(e exec.Expr) (int, bool) {
	if c, ok := e.(exec.ColRef); ok {
		return c.Idx, true
	}
	return 0, false
}

// chooseAccess picks the relation's access path by comparing Plan-node
// costs: an index point-lookup reads about 1 + R(t)/V(t,c) pages, a
// sequential scan reads B(t); the index wins exactly when the former is
// smaller. A hash-range restriction divides the output cardinality by Mod
// (the scan still touches every page). DisablePushdown forfeits both the
// filter pushdown and the index path (an unpushed filter cannot drive a
// lookup), which is what makes the lesion a pure full-scan baseline.
func (p *Planner) chooseAccess(r *relation) {
	rangeDiv := int64(1)
	for _, hr := range r.ranges {
		rangeDiv *= int64(hr.Mod)
	}
	rows := int64(p.estimateFiltered(r)) / rangeDiv
	if rows < 1 {
		rows = 1
	}
	ap := &accessPlan{
		alias:    r.item.Name(),
		meta:     r.meta,
		rows:     rows,
		blocks:   tableBlocks(r.meta),
		eqCol:    -1,
		rangeDiv: rangeDiv,
	}
	if im, ok := r.meta.(IndexMeta); ok && !p.Opts.DisablePushdown {
		base := r.meta.Schema()
		for _, c := range r.filters {
			col, val, isEq := eqConstFilter(c)
			if !isEq {
				continue
			}
			idx := base.ColIndex(col)
			if idx < 0 || !im.HasEqIndex(idx) {
				continue
			}
			v := r.meta.DistinctCount(idx)
			if v < 1 {
				v = 1
			}
			matched := r.meta.RowCount() / v
			if matched < 1 {
				matched = 1
			}
			if idxBlocks := 1 + matched; idxBlocks < ap.blocks {
				ap.blocks = idxBlocks
				ap.eqCol = idx
				r.eqVal = val
			}
		}
	}
	r.access = ap
	r.card = float64(ap.rows)
}

// eqConstFilter matches a column-equals-constant condition.
func eqConstFilter(c Cond) (col string, val tuple.Value, ok bool) {
	if c.Op != exec.CmpEq {
		return "", tuple.Value{}, false
	}
	switch {
	case c.L.IsCol && !c.R.IsCol:
		return c.L.Col, c.R.Val, true
	case c.R.IsCol && !c.L.IsCol:
		return c.R.Col, c.L.Val, true
	}
	return "", tuple.Value{}, false
}

// scanWithFilters builds the executable access path chosen by chooseAccess:
// index lookup, hash-range scan or sequential scan, renamed to
// alias-qualified columns, with pushed-down filters (and any hash-range
// restriction the scan itself could not absorb) applied on top.
func (p *Planner) scanWithFilters(r *relation) (exec.Iterator, error) {
	base := r.meta.Schema()
	var inner exec.Iterator
	rangePushed := false
	switch {
	case r.access != nil && r.access.eqCol >= 0:
		inner = r.meta.(IndexMeta).NewIndexScan(r.access.eqCol, r.eqVal)
	case len(r.ranges) == 1:
		if rm, ok := r.meta.(RangeMeta); ok {
			hr := r.ranges[0]
			inner = rm.NewRangeScan(base.ColIndex(hr.Col), hr.Mod, hr.Rem)
			rangePushed = true
		}
	}
	if inner == nil {
		inner = r.meta.NewScan()
	}
	var it exec.Iterator = &renameIter{Iterator: inner, sch: r.sch}

	var preds []exec.Expr
	// Hash-range restrictions are part of the statement's contract (they
	// define the partition), so unlike filters they apply even with
	// DisablePushdown set.
	for i, hr := range r.ranges {
		if i == 0 && rangePushed {
			continue
		}
		idx := base.ColIndex(hr.Col)
		if idx < 0 {
			return nil, fmt.Errorf("plan: hash range on unknown column %s.%s", hr.Table, hr.Col)
		}
		preds = append(preds, exec.HashInRange{Idx: idx, Mod: hr.Mod, Rem: hr.Rem})
	}
	if !p.Opts.DisablePushdown {
		for _, c := range r.filters {
			le, lok := resolveOperand(c.L, r.sch)
			re, rok := resolveOperand(c.R, r.sch)
			if !lok || !rok {
				return nil, fmt.Errorf("plan: cannot resolve filter %v on %s", c, r.item.Name())
			}
			preds = append(preds, exec.Cmp{Op: c.Op, L: le, R: re})
		}
	}
	if len(preds) == 0 {
		return it, nil
	}
	var pred exec.Expr
	if len(preds) == 1 {
		pred = preds[0]
	} else {
		pred = exec.And{Kids: preds}
	}
	return exec.NewFilter(it, pred), nil
}

// renameIter overrides the child's schema with alias-qualified names.
type renameIter struct {
	exec.Iterator
	sch tuple.Schema
}

func (r *renameIter) Schema() tuple.Schema { return r.sch }

// estimateFiltered estimates a relation's cardinality after its pushed-down
// filters, using 1/distinct selectivity for equality with a constant and 1/3
// for other comparisons.
func (p *Planner) estimateFiltered(r *relation) float64 {
	card := float64(r.meta.RowCount())
	base := r.meta.Schema()
	for _, c := range r.filters {
		sel := 1.0 / 3.0
		if c.Op == exec.CmpEq {
			var colOp *Operand
			switch {
			case c.L.IsCol && !c.R.IsCol:
				colOp = &c.L
			case c.R.IsCol && !c.L.IsCol:
				colOp = &c.R
			}
			if colOp != nil {
				if idx := base.ColIndex(colOp.Col); idx >= 0 {
					if d := r.meta.DistinctCount(idx); d > 0 {
						sel = 1.0 / float64(d)
					}
				}
			}
		} else if c.Op == exec.CmpNe {
			sel = 0.9
		}
		card *= sel
	}
	if card < 1 {
		card = 1
	}
	return card
}

// joinEdge is one WHERE condition connecting two distinct relations,
// resolved to alias-qualified column names for Plan-node cost lookups.
type joinEdge struct {
	a, b   int // relation indexes, a < b
	isEq   bool
	lq, rq string // qualified columns of an equality edge
}

// joinEdges resolves the join conditions to relation-index edges.
func (p *Planner) joinEdges(rels []*relation, joinConds []Cond) ([]joinEdge, error) {
	relIdx := func(r *relation) int {
		for i := range rels {
			if rels[i] == r {
				return i
			}
		}
		return -1
	}
	var edges []joinEdge
	for _, c := range joinConds {
		lr, err := p.condRelation(rels, c.L)
		if err != nil {
			return nil, err
		}
		rr, err := p.condRelation(rels, c.R)
		if err != nil {
			return nil, err
		}
		if lr == nil || rr == nil || lr == rr {
			continue
		}
		e := joinEdge{a: relIdx(lr), b: relIdx(rr)}
		if c.Op == exec.CmpEq && c.L.IsCol && c.R.IsCol {
			e.isEq = true
			e.lq = lr.item.Name() + "." + c.L.Col
			e.rq = rr.item.Name() + "." + c.R.Col
		}
		if e.a > e.b {
			e.a, e.b = e.b, e.a
		}
		edges = append(edges, e)
	}
	return edges, nil
}

// stepCost costs joining candidate i onto the current Plan node using the
// edges that connect it to the joined set, and reports whether any did.
func stepCost(cur Plan, cand *relation, i int, inSet map[int]bool, edges []joinEdge) (Plan, bool) {
	var eqPairs [][2]string
	nonEq := 0
	conn := false
	for _, e := range edges {
		var other int
		switch {
		case e.a == i && inSet[e.b]:
			other = e.b
		case e.b == i && inSet[e.a]:
			other = e.a
		default:
			continue
		}
		_ = other
		conn = true
		if e.isEq {
			eqPairs = append(eqPairs, [2]string{e.lq, e.rq})
		} else {
			nonEq++
		}
	}
	return newJoinCostPlan(cur, cand.access, eqPairs, nonEq), conn
}

// joinOrder picks the join order by comparing Plan-node costs.
// ForceJoinOrder keeps FROM order (the Table 6 lesion) but still costs it
// for Explain; otherwise a greedy search starts from the access path with
// the fewest estimated records and extends with the relation whose join
// step has the smallest RecordsOutput, preferring relations connected by a
// join edge (avoiding cartesian products until forced). It returns the
// order and the root cost node of the resulting left-deep tree.
func (p *Planner) joinOrder(rels []*relation, joinConds []Cond) ([]*relation, Plan, error) {
	edges, err := p.joinEdges(rels, joinConds)
	if err != nil {
		return nil, nil, err
	}
	if p.Opts.ForceJoinOrder || len(rels) <= 1 {
		var cur Plan = rels[0].access
		inSet := map[int]bool{0: true}
		for i := 1; i < len(rels); i++ {
			cur, _ = stepCost(cur, rels[i], i, inSet, edges)
			inSet[i] = true
		}
		return rels, cur, nil
	}

	used := make([]bool, len(rels))
	// Start from the cheapest access path.
	start := 0
	for i, r := range rels {
		if r.access.RecordsOutput() < rels[start].access.RecordsOutput() {
			start = i
		}
	}
	order := []*relation{rels[start]}
	used[start] = true
	var cur Plan = rels[start].access
	inSet := map[int]bool{start: true}

	for len(order) < len(rels) {
		bestIdx := -1
		bestCard := int64(math.MaxInt64)
		var bestPlan Plan
		bestConnected := false
		for i, r := range rels {
			if used[i] {
				continue
			}
			cand, conn := stepCost(cur, r, i, inSet, edges)
			est := cand.RecordsOutput()
			// Prefer connected joins; among candidates minimize est size.
			if conn && !bestConnected {
				bestIdx, bestCard, bestPlan, bestConnected = i, est, cand, true
				continue
			}
			if conn == bestConnected && est < bestCard {
				bestIdx, bestCard, bestPlan = i, est, cand
			}
		}
		order = append(order, rels[bestIdx])
		used[bestIdx] = true
		inSet[bestIdx] = true
		cur = bestPlan
	}
	return order, cur, nil
}

// physicalJoin picks the join operator per Options.
func (p *Planner) physicalJoin(left, right exec.Iterator, eqL, eqR []int, residual exec.Expr) exec.Iterator {
	alg := p.Opts.Algorithm
	if len(eqL) == 0 || alg == JoinNestedLoopOnly {
		// Fold equi keys back into the residual for NLJ correctness.
		var preds []exec.Expr
		for i := range eqL {
			preds = append(preds, exec.Cmp{Op: exec.CmpEq,
				L: exec.ColRef{Idx: eqL[i]},
				R: exec.ColRef{Idx: left.Schema().Arity() + eqR[i]}})
		}
		if residual != nil {
			preds = append(preds, residual)
		}
		var on exec.Expr
		if len(preds) == 1 {
			on = preds[0]
		} else if len(preds) > 1 {
			on = exec.And{Kids: preds}
		}
		return exec.NewNestedLoopJoin(left, right, on)
	}
	if alg == JoinMergeOnly {
		return exec.NewMergeJoin(exec.NewSort(left, eqL), exec.NewSort(right, eqR), eqL, eqR, residual)
	}
	return exec.NewHashJoin(left, right, eqL, eqR, residual)
}

// buildProject compiles the SELECT list (no aggregates).
func (p *Planner) buildProject(cur exec.Iterator, sch tuple.Schema, items []ProjItem) (exec.Iterator, tuple.Schema, error) {
	var exprs []exec.Expr
	var names []string
	for _, it := range items {
		switch it.Kind {
		case ProjStar:
			for i, c := range sch.Cols {
				exprs = append(exprs, exec.ColRef{Idx: i, Name: c.Name})
				names = append(names, c.Name)
			}
		case ProjCol:
			e, ok := resolveOperand(it.Col, sch)
			if !ok {
				return nil, tuple.Schema{}, fmt.Errorf("plan: unknown column %s", it.Col)
			}
			name := it.Alias
			if name == "" {
				name = it.Col.Col
			}
			exprs = append(exprs, e)
			names = append(names, name)
		case ProjConst:
			name := it.Alias
			if name == "" {
				name = it.Val.String()
			}
			exprs = append(exprs, exec.Const{Val: it.Val})
			names = append(names, name)
		default:
			return nil, tuple.Schema{}, fmt.Errorf("plan: aggregate outside GROUP BY path")
		}
	}
	proj, err := exec.NewProject(cur, exprs, names)
	if err != nil {
		return nil, tuple.Schema{}, err
	}
	return proj, proj.Schema(), nil
}

// buildAggregate compiles GROUP BY + aggregate SELECT lists.
func (p *Planner) buildAggregate(cur exec.Iterator, sch tuple.Schema, stmt *SelectStmt) (exec.Iterator, tuple.Schema, error) {
	var groupCols []int
	for _, g := range stmt.GroupBy {
		e, ok := resolveOperand(g, sch)
		if !ok {
			return nil, tuple.Schema{}, fmt.Errorf("plan: unknown GROUP BY column %s", g)
		}
		idx, isCol := colIndex(e)
		if !isCol {
			return nil, tuple.Schema{}, fmt.Errorf("plan: GROUP BY must reference columns")
		}
		groupCols = append(groupCols, idx)
	}
	var aggs []exec.AggSpec
	// Map projection items to the aggregate output layout.
	type outItem struct {
		fromGroup int // >=0: group column position
		fromAgg   int // >=0: aggregate position
		name      string
	}
	var layout []outItem
	for _, it := range stmt.Proj {
		switch it.Kind {
		case ProjCol:
			e, ok := resolveOperand(it.Col, sch)
			if !ok {
				return nil, tuple.Schema{}, fmt.Errorf("plan: unknown column %s", it.Col)
			}
			idx, _ := colIndex(e)
			pos := -1
			for gi, g := range groupCols {
				if g == idx {
					pos = gi
				}
			}
			if pos < 0 {
				return nil, tuple.Schema{}, fmt.Errorf("plan: column %s not in GROUP BY", it.Col)
			}
			name := it.Alias
			if name == "" {
				name = it.Col.Col
			}
			layout = append(layout, outItem{fromGroup: pos, fromAgg: -1, name: name})
		case ProjAgg:
			var arg exec.Expr
			if it.Arg != nil {
				e, ok := resolveOperand(*it.Arg, sch)
				if !ok {
					return nil, tuple.Schema{}, fmt.Errorf("plan: unknown column %s", *it.Arg)
				}
				arg = e
			}
			name := it.Alias
			if name == "" {
				name = it.Agg.String()
			}
			aggs = append(aggs, exec.AggSpec{Func: it.Agg, Arg: arg, Name: name})
			layout = append(layout, outItem{fromGroup: -1, fromAgg: len(aggs) - 1, name: name})
		case ProjConst:
			return nil, tuple.Schema{}, fmt.Errorf("plan: constants in aggregate SELECT unsupported")
		case ProjStar:
			return nil, tuple.Schema{}, fmt.Errorf("plan: SELECT * with GROUP BY unsupported")
		}
	}
	agg := exec.NewHashAggregate(cur, groupCols, aggs)
	aggSch := agg.Schema()
	// Reorder aggregate output to the projection order.
	var exprs []exec.Expr
	var names []string
	for _, li := range layout {
		var idx int
		if li.fromGroup >= 0 {
			idx = li.fromGroup
		} else {
			idx = len(groupCols) + li.fromAgg
		}
		exprs = append(exprs, exec.ColRef{Idx: idx, Name: aggSch.Cols[idx].Name})
		names = append(names, li.name)
	}
	proj, err := exec.NewProject(agg, exprs, names)
	if err != nil {
		return nil, tuple.Schema{}, err
	}
	return proj, proj.Schema(), nil
}
