package plan

import (
	"fmt"
	"testing"

	"tuffy/internal/db/exec"
	"tuffy/internal/db/tuple"
)

// memTable is an in-memory TableMeta for planner tests.
type memTable struct {
	sch      tuple.Schema
	rows     []tuple.Row
	distinct []int64
}

func (m *memTable) Schema() tuple.Schema { return m.sch }
func (m *memTable) RowCount() int64      { return int64(len(m.rows)) }
func (m *memTable) DistinctCount(col int) int64 {
	if col < len(m.distinct) {
		return m.distinct[col]
	}
	return int64(len(m.rows))
}
func (m *memTable) NewScan() exec.Iterator { return exec.NewValues(m.sch, m.rows) }

type memCatalog map[string]*memTable

func (c memCatalog) TableMeta(name string) (TableMeta, bool) {
	t, ok := c[name]
	return t, ok
}

func intRows(vals ...[]int64) []tuple.Row {
	rows := make([]tuple.Row, len(vals))
	for i, v := range vals {
		r := make(tuple.Row, len(v))
		for j, x := range v {
			r[j] = tuple.I64(x)
		}
		rows[i] = r
	}
	return rows
}

func testCatalog() memCatalog {
	return memCatalog{
		"small": &memTable{
			sch:      tuple.NewSchema(tuple.Col("k", tuple.TInt), tuple.Col("v", tuple.TInt)),
			rows:     intRows([]int64{1, 10}, []int64{2, 20}),
			distinct: []int64{2, 2},
		},
		"big": &memTable{
			sch: tuple.NewSchema(tuple.Col("k", tuple.TInt), tuple.Col("w", tuple.TInt)),
			rows: intRows([]int64{1, 100}, []int64{1, 101}, []int64{2, 102},
				[]int64{3, 103}, []int64{4, 104}, []int64{5, 105}),
			distinct: []int64{5, 6},
		},
	}
}

func runStmt(t *testing.T, opts Options, stmt *SelectStmt) []tuple.Row {
	t.Helper()
	p := NewPlanner(testCatalog(), opts)
	it, err := p.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func selectJoin() *SelectStmt {
	return &SelectStmt{
		Proj: []ProjItem{
			{Kind: ProjCol, Col: ColOp("small", "v")},
			{Kind: ProjCol, Col: ColOp("big", "w")},
		},
		From: []FromItem{{Table: "big"}, {Table: "small"}},
		Where: []Cond{
			{Op: exec.CmpEq, L: ColOp("small", "k"), R: ColOp("big", "k")},
		},
		OrderBy: []Operand{ColOp("", "w")},
		Limit:   -1,
	}
}

func TestPlanJoinAllAlgorithmsAgree(t *testing.T) {
	var want string
	for _, alg := range []JoinAlgorithm{JoinAuto, JoinHashOnly, JoinMergeOnly, JoinNestedLoopOnly} {
		rows := runStmt(t, Options{Algorithm: alg}, selectJoin())
		got := fmt.Sprint(rows)
		if want == "" {
			want = got
			// k=1 matches twice, k=2 once.
			if len(rows) != 3 {
				t.Fatalf("rows = %v", rows)
			}
			continue
		}
		if got != want {
			t.Fatalf("alg %v: %s != %s", alg, got, want)
		}
	}
}

func TestPlanForceJoinOrderAgrees(t *testing.T) {
	a := runStmt(t, Options{}, selectJoin())
	b := runStmt(t, Options{ForceJoinOrder: true}, selectJoin())
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("force order changed results: %v vs %v", a, b)
	}
}

func TestPlanJoinOrderPicksSmallFirst(t *testing.T) {
	// The greedy order starts from the smallest filtered relation. We
	// can't observe the order directly through results, but DisablePushdown
	// + ForceJoinOrder must still be correct, and the cost-based path must
	// produce identical output.
	a := runStmt(t, Options{DisablePushdown: true}, selectJoin())
	if len(a) != 3 {
		t.Fatalf("rows = %v", a)
	}
}

func TestPlanPushdownFilter(t *testing.T) {
	stmt := &SelectStmt{
		Proj:  []ProjItem{{Kind: ProjCol, Col: ColOp("", "w")}},
		From:  []FromItem{{Table: "big"}},
		Where: []Cond{{Op: exec.CmpGt, L: ColOp("", "w"), R: ValOp(tuple.I64(103))}},
		Limit: -1,
	}
	rows := runStmt(t, Options{}, stmt)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlanUnknownTableAndColumn(t *testing.T) {
	p := NewPlanner(testCatalog(), Options{})
	_, err := p.Plan(&SelectStmt{
		Proj:  []ProjItem{{Kind: ProjStar}},
		From:  []FromItem{{Table: "absent"}},
		Limit: -1,
	})
	if err == nil {
		t.Fatal("unknown table accepted")
	}
	_, err = p.Plan(&SelectStmt{
		Proj:  []ProjItem{{Kind: ProjCol, Col: ColOp("", "nocol")}},
		From:  []FromItem{{Table: "small"}},
		Limit: -1,
	})
	if err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestPlanAmbiguousColumn(t *testing.T) {
	p := NewPlanner(testCatalog(), Options{})
	// "k" exists in both tables: unqualified use in WHERE must error.
	_, err := p.Plan(&SelectStmt{
		Proj: []ProjItem{{Kind: ProjStar}},
		From: []FromItem{{Table: "small"}, {Table: "big"}},
		Where: []Cond{
			{Op: exec.CmpEq, L: ColOp("", "k"), R: ValOp(tuple.I64(1))},
		},
		Limit: -1,
	})
	if err == nil {
		t.Fatal("ambiguous column accepted")
	}
}

func TestPlanDuplicateAlias(t *testing.T) {
	p := NewPlanner(testCatalog(), Options{})
	_, err := p.Plan(&SelectStmt{
		Proj:  []ProjItem{{Kind: ProjStar}},
		From:  []FromItem{{Table: "small"}, {Table: "small"}},
		Limit: -1,
	})
	if err == nil {
		t.Fatal("duplicate range variable accepted")
	}
}

func TestPlanCrossProductWhenNoCondition(t *testing.T) {
	stmt := &SelectStmt{
		Proj:  []ProjItem{{Kind: ProjStar}},
		From:  []FromItem{{Table: "small"}, {Table: "big"}},
		Limit: -1,
	}
	rows := runStmt(t, Options{}, stmt)
	if len(rows) != 12 {
		t.Fatalf("cross product = %d rows, want 12", len(rows))
	}
}

func TestPlanGroupByAggregate(t *testing.T) {
	stmt := &SelectStmt{
		Proj: []ProjItem{
			{Kind: ProjCol, Col: ColOp("", "k")},
			{Kind: ProjAgg, Agg: exec.AggCount, Alias: "n"},
			{Kind: ProjAgg, Agg: exec.AggMax, Arg: &Operand{IsCol: true, Col: "w"}, Alias: "hi"},
		},
		From:    []FromItem{{Table: "big"}},
		GroupBy: []Operand{ColOp("", "k")},
		OrderBy: []Operand{ColOp("", "k")},
		Limit:   -1,
	}
	rows := runStmt(t, Options{}, stmt)
	if len(rows) != 5 {
		t.Fatalf("groups = %v", rows)
	}
	if rows[0][1].I != 2 || rows[0][2].I != 101 {
		t.Fatalf("k=1 group = %v", rows[0])
	}
}

func TestPlanAggregateRequiresGrouping(t *testing.T) {
	p := NewPlanner(testCatalog(), Options{})
	// Selecting a non-grouped column alongside an aggregate must error.
	_, err := p.Plan(&SelectStmt{
		Proj: []ProjItem{
			{Kind: ProjCol, Col: ColOp("", "w")},
			{Kind: ProjAgg, Agg: exec.AggCount},
		},
		From:    []FromItem{{Table: "big"}},
		GroupBy: []Operand{ColOp("", "k")},
		Limit:   -1,
	})
	if err == nil {
		t.Fatal("non-grouped column accepted")
	}
}

func TestPlanSelfJoinQualifiedColumns(t *testing.T) {
	cat := testCatalog()
	p := NewPlanner(cat, Options{})
	it, err := p.Plan(&SelectStmt{
		Proj: []ProjItem{
			{Kind: ProjCol, Col: ColOp("a", "k")},
			{Kind: ProjCol, Col: ColOp("b", "w")},
		},
		From: []FromItem{{Table: "big", Alias: "a"}, {Table: "big", Alias: "b"}},
		Where: []Cond{
			{Op: exec.CmpEq, L: ColOp("a", "k"), R: ColOp("b", "k")},
			{Op: exec.CmpLt, L: ColOp("a", "w"), R: ColOp("b", "w")},
		},
		Limit: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	// k=1 pair (100,101) with w strictly increasing -> exactly 1 row.
	if len(rows) != 1 || rows[0][1].I != 101 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlanConstantCondition(t *testing.T) {
	stmt := &SelectStmt{
		Proj:  []ProjItem{{Kind: ProjStar}},
		From:  []FromItem{{Table: "small"}},
		Where: []Cond{{Op: exec.CmpEq, L: ValOp(tuple.I64(1)), R: ValOp(tuple.I64(2))}},
		Limit: -1,
	}
	rows := runStmt(t, Options{}, stmt)
	if len(rows) != 0 {
		t.Fatalf("1=2 should filter everything: %v", rows)
	}
}

func TestPlanProjConstant(t *testing.T) {
	stmt := &SelectStmt{
		Proj: []ProjItem{
			{Kind: ProjConst, Val: tuple.I64(7), Alias: "seven"},
			{Kind: ProjCol, Col: ColOp("", "k")},
		},
		From:  []FromItem{{Table: "small"}},
		Limit: -1,
	}
	rows := runStmt(t, Options{}, stmt)
	if len(rows) != 2 || rows[0][0].I != 7 {
		t.Fatalf("rows = %v", rows)
	}
}
