package plan

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"tuffy/internal/db/exec"
	"tuffy/internal/db/tuple"
)

// idxTable extends memTable with a physical block count and equality
// indexes, so tests can place a table exactly on either side of the
// optimizer's index-versus-scan cost threshold.
type idxTable struct {
	memTable
	blocks   int64
	eqCols   map[int]bool
	rowCount int64 // stat override; the backing rows stay small
}

func (t *idxTable) Blocks() int64 { return t.blocks }
func (t *idxTable) RowCount() int64 {
	if t.rowCount > 0 {
		return t.rowCount
	}
	return t.memTable.RowCount()
}
func (t *idxTable) HasEqIndex(col int) bool { return t.eqCols[col] }
func (t *idxTable) NewIndexScan(col int, val tuple.Value) exec.Iterator {
	var matched []tuple.Row
	for _, r := range t.rows {
		if r[col].Equal(val) {
			matched = append(matched, r)
		}
	}
	return exec.NewValues(t.sch, matched)
}
func (t *idxTable) NewRangeScan(col int, mod, rem uint32) exec.Iterator {
	var matched []tuple.Row
	for _, r := range t.rows {
		if uint32(exec.HashValue(r[col])%uint64(mod)) == rem {
			matched = append(matched, r)
		}
	}
	return exec.NewValues(t.sch, matched)
}

// eqStmt is SELECT * FROM t WHERE k = 5.
func eqStmt() *SelectStmt {
	return &SelectStmt{
		Proj:  []ProjItem{{Kind: ProjStar}},
		From:  []FromItem{{Table: "t"}},
		Where: []Cond{{Op: exec.CmpEq, L: ColOp("", "k"), R: ValOp(tuple.I64(5))}},
		Limit: -1,
	}
}

// TestAccessPathFlipsAtCostThreshold pins the index-versus-scan decision to
// the documented cost comparison: a point lookup reads ~1 + R(t)/V(t,k)
// pages, a scan reads B(t); the index must win exactly when the former is
// smaller. With R=1000 and V=100 the lookup costs 11 pages, so B=20 takes
// the index and B=10 takes the scan.
func TestAccessPathFlipsAtCostThreshold(t *testing.T) {
	for _, tc := range []struct {
		blocks int64
		want   string
	}{
		{blocks: 20, want: "indexscan(k)"},
		{blocks: 10, want: "seqscan"},
	} {
		tab := &idxTable{
			memTable: memTable{
				sch:      tuple.NewSchema(tuple.Col("k", tuple.TInt), tuple.Col("v", tuple.TInt)),
				rows:     intRows([]int64{5, 50}, []int64{6, 60}),
				distinct: []int64{100, 1000},
			},
			blocks:   tc.blocks,
			eqCols:   map[int]bool{0: true},
			rowCount: 1000,
		}
		cat := catalogOf{"t": tab}
		ex, err := NewPlanner(cat, Options{}).EstimateSelect(eqStmt())
		if err != nil {
			t.Fatal(err)
		}
		if got := ex.Access["t"]; got != tc.want {
			t.Fatalf("B=%d: access = %q, want %q", tc.blocks, got, tc.want)
		}
		// Whatever the cost model picks, the rows must be the same.
		it, err := NewPlanner(cat, Options{}).Plan(eqStmt())
		if err != nil {
			t.Fatal(err)
		}
		rows, err := exec.Collect(it)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0][1].I != 50 {
			t.Fatalf("B=%d: rows = %v", tc.blocks, rows)
		}
	}
}

// TestIndexPathDisabledByPushdownLesion: with DisablePushdown the equality
// filter stays above the join, so it cannot drive an index lookup — the
// lesion must fall back to a full scan even when the index would win.
func TestIndexPathDisabledByPushdownLesion(t *testing.T) {
	tab := &idxTable{
		memTable: memTable{
			sch:      tuple.NewSchema(tuple.Col("k", tuple.TInt), tuple.Col("v", tuple.TInt)),
			rows:     intRows([]int64{5, 50}, []int64{6, 60}),
			distinct: []int64{100, 1000},
		},
		blocks:   1000,
		eqCols:   map[int]bool{0: true},
		rowCount: 1000,
	}
	cat := catalogOf{"t": tab}
	ex, err := NewPlanner(cat, Options{DisablePushdown: true}).EstimateSelect(eqStmt())
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Access["t"]; got != "seqscan" {
		t.Fatalf("lesioned access = %q, want seqscan", got)
	}
}

// catalogOf resolves arbitrary TableMeta implementations by name.
type catalogOf map[string]TableMeta

func (c catalogOf) TableMeta(name string) (TableMeta, bool) {
	t, ok := c[name]
	return t, ok
}

// threeWayStmt joins a to b on k and a to c on j, projecting a.k.
func threeWayStmt() *SelectStmt {
	return &SelectStmt{
		Proj: []ProjItem{{Kind: ProjCol, Col: ColOp("a", "k")}},
		From: []FromItem{{Table: "a"}, {Table: "b"}, {Table: "c"}},
		Where: []Cond{
			{Op: exec.CmpEq, L: ColOp("a", "k"), R: ColOp("b", "k")},
			{Op: exec.CmpEq, L: ColOp("a", "j"), R: ColOp("c", "j")},
		},
		Limit: -1,
	}
}

// TestJoinOrderFlipsWithDistinctStats pins the greedy join order to the
// distinct-value statistics: the estimated output of a ⋈ b is
// R(a)·R(b)/max(V(a.k), V(b.k)), so raising V(b.k) shrinks that step and
// must pull b forward, while lowering it must push b behind c.
func TestJoinOrderFlipsWithDistinctStats(t *testing.T) {
	mk := func(bDistinctK int64) catalogOf {
		sch2 := func(c1, c2 string) tuple.Schema {
			return tuple.NewSchema(tuple.Col(c1, tuple.TInt), tuple.Col(c2, tuple.TInt))
		}
		return catalogOf{
			// a: 10 rows, V(k)=10, V(j)=10 — the cheapest start.
			"a": &idxTable{memTable: memTable{sch: sch2("k", "j"), distinct: []int64{10, 10}}, rowCount: 10, blocks: 1},
			// b: 100 rows joined on k; V(b.k) is the experiment's variable.
			"b": &idxTable{memTable: memTable{sch: sch2("k", "x"), distinct: []int64{bDistinctK, 100}}, rowCount: 100, blocks: 2},
			// c: 100 rows joined on j with V(c.j)=20: step output 10·100/20=50.
			"c": &idxTable{memTable: memTable{sch: sch2("j", "y"), distinct: []int64{20, 100}}, rowCount: 100, blocks: 2},
		}
	}
	for _, tc := range []struct {
		bDistinctK int64
		want       []string
	}{
		// V(b.k)=100: a⋈b estimates 10·100/100=10 rows < 50 — b joins first.
		{bDistinctK: 100, want: []string{"a", "b", "c"}},
		// V(b.k)=2: a⋈b estimates 10·100/10=100 rows > 50 — c joins first.
		{bDistinctK: 2, want: []string{"a", "c", "b"}},
	} {
		ex, err := NewPlanner(mk(tc.bDistinctK), Options{}).EstimateSelect(threeWayStmt())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ex.JoinOrder, tc.want) {
			t.Fatalf("V(b.k)=%d: join order = %v, want %v", tc.bDistinctK, ex.JoinOrder, tc.want)
		}
	}
	// The lesion keeps FROM order regardless of the stats.
	ex, err := NewPlanner(mk(100), Options{ForceJoinOrder: true}).EstimateSelect(threeWayStmt())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ex.JoinOrder, []string{"a", "b", "c"}) {
		t.Fatalf("forced join order = %v", ex.JoinOrder)
	}
}

// TestHashRangePartitionIsDisjointUnion checks the HashRange contract the
// parallel grounder depends on: the Mod parts of a query are pairwise
// disjoint and their union (merged in range order) is a permutation-free
// reordering of the unrestricted result — here compared as sorted multisets.
func TestHashRangePartitionIsDisjointUnion(t *testing.T) {
	var rows [][]int64
	for i := int64(0); i < 50; i++ {
		rows = append(rows, []int64{i % 17, i})
	}
	tab := &idxTable{
		memTable: memTable{
			sch:      tuple.NewSchema(tuple.Col("k", tuple.TInt), tuple.Col("v", tuple.TInt)),
			rows:     intRows(rows...),
			distinct: []int64{17, 50},
		},
		blocks: 1,
	}
	cat := catalogOf{"t": tab}
	base := &SelectStmt{
		Proj:  []ProjItem{{Kind: ProjStar}},
		From:  []FromItem{{Table: "t"}},
		Limit: -1,
	}
	full := collectSorted(t, cat, base)
	const mod = 4
	var merged []string
	seen := map[string]int{}
	for rem := uint32(0); rem < mod; rem++ {
		stmt := *base
		stmt.Ranges = []HashRange{{Table: "t", Col: "k", Mod: mod, Rem: rem}}
		ex, err := NewPlanner(cat, Options{}).EstimateSelect(&stmt)
		if err != nil {
			t.Fatal(err)
		}
		if got := ex.Access["t"]; got != "seqscan+range" {
			t.Fatalf("rem %d: access = %q, want seqscan+range", rem, got)
		}
		part := collectSorted(t, cat, &stmt)
		for _, r := range part {
			seen[r]++
			merged = append(merged, r)
		}
	}
	sort.Strings(merged)
	if !reflect.DeepEqual(merged, full) {
		t.Fatalf("union of ranges != full result:\n union %v\n full  %v", merged, full)
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("row %s appeared in %d ranges", r, n)
		}
	}
}

// TestHashRangeValidation rejects malformed range restrictions.
func TestHashRangeValidation(t *testing.T) {
	cat := testCatalog()
	for _, ranges := range [][]HashRange{
		{{Table: "small", Col: "nope", Mod: 2, Rem: 0}},
		{{Table: "absent", Col: "k", Mod: 2, Rem: 0}},
		{{Table: "small", Col: "k", Mod: 0, Rem: 0}},
		{{Table: "small", Col: "k", Mod: 2, Rem: 2}},
	} {
		stmt := &SelectStmt{
			Proj:   []ProjItem{{Kind: ProjStar}},
			From:   []FromItem{{Table: "small"}},
			Limit:  -1,
			Ranges: ranges,
		}
		if _, err := NewPlanner(cat, Options{}).Plan(stmt); err == nil {
			t.Fatalf("ranges %v accepted", ranges)
		}
	}
}

func collectSorted(t *testing.T, cat Catalog, stmt *SelectStmt) []string {
	t.Helper()
	it, err := NewPlanner(cat, Options{}).Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}
