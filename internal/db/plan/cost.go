package plan

import (
	"fmt"
	"strings"

	"tuffy/internal/db/exec"
	"tuffy/internal/db/tuple"
)

// Plan is the cost-model node the optimizer reasons over (the classic
// B(s)/R(s)/V(s,F) interface). Every access path and join operator the
// planner can choose is mirrored by a Plan node; the planner compares
// candidate nodes' costs and only then builds the executable iterator for
// the winner.
type Plan interface {
	// BlocksAccessed estimates the number of page reads the node performs.
	BlocksAccessed() int64
	// RecordsOutput estimates the node's output cardinality.
	RecordsOutput() int64
	// DistinctValues estimates the number of distinct values of an
	// alias-qualified column ("t0.a1") in the node's output; 0 when the
	// column does not belong to the node.
	DistinctValues(col string) int64
}

// BlockMeta is an optional TableMeta extension reporting the table's
// physical page count. Tables that do not implement it are costed at
// defaultRowsPerBlock rows per page.
type BlockMeta interface {
	Blocks() int64
}

// IndexMeta is an optional TableMeta extension providing equality-index
// access paths. HasEqIndex reports whether a point-lookup index exists on
// the column position; NewIndexScan returns an iterator over the rows whose
// column equals val, in heap order (so downstream operators see the same
// relative row order a filtered sequential scan would produce).
type IndexMeta interface {
	HasEqIndex(col int) bool
	NewIndexScan(col int, val tuple.Value) exec.Iterator
}

// RangeMeta is an optional TableMeta extension that pushes a hash-range
// restriction into the storage scan itself (rows whose column hashes into
// residue rem modulo mod), so partitioned scans never materialize the rows
// they discard.
type RangeMeta interface {
	NewRangeScan(col int, mod, rem uint32) exec.Iterator
}

// HashRange restricts one FROM item to the rows whose column hashes into
// residue Rem modulo Mod (see exec.HashValue). Attached to a SelectStmt it
// lets a caller partition one query's work into Mod disjoint parts whose
// union is exactly the unrestricted result — the intra-clause parallel
// grounder's mechanism.
type HashRange struct {
	Table string // range-variable (alias) name the restriction applies to
	Col   string // column name within that table
	Mod   uint32
	Rem   uint32
}

// Explain records the optimizer's choices for one SELECT: the join order,
// the access path per range variable, and the root cost estimates. It is
// the surface the planner tests assert against and the grounding scheduler
// uses to find a query's dominant cost.
type Explain struct {
	// JoinOrder lists range-variable names in the order they are joined
	// (left-deep).
	JoinOrder []string
	// Access maps each range-variable name to its chosen access path:
	// "seqscan", "indexscan(col)" or the same suffixed with "+range" when a
	// hash-range restriction is pushed into the scan.
	Access map[string]string
	// EstRows and EstBlocks are the root Plan node's estimates.
	EstRows   int64
	EstBlocks int64
}

// defaultRowsPerBlock is the page-capacity guess used for TableMeta
// implementations without physical block counts.
const defaultRowsPerBlock = 64

// tableBlocks returns the page count of a base table, preferring the
// storage layer's real number.
func tableBlocks(meta TableMeta) int64 {
	if bm, ok := meta.(BlockMeta); ok {
		if b := bm.Blocks(); b > 0 {
			return b
		}
	}
	b := meta.RowCount() / defaultRowsPerBlock
	if b < 1 {
		b = 1
	}
	return b
}

// accessPlan is the Plan node for one base-relation access path (sequential
// scan or index point-lookup, optionally hash-range restricted).
type accessPlan struct {
	alias  string
	meta   TableMeta
	rows   int64
	blocks int64
	// eqCol is the schema position served by an index lookup; -1 for a
	// sequential scan.
	eqCol int
	// rangeDiv is the Mod of an attached hash-range restriction (1 = none).
	rangeDiv int64
}

func (a *accessPlan) BlocksAccessed() int64 { return a.blocks }
func (a *accessPlan) RecordsOutput() int64  { return a.rows }

func (a *accessPlan) DistinctValues(col string) int64 {
	alias, bare, ok := splitQualified(col)
	if !ok || !strings.EqualFold(alias, a.alias) {
		return 0
	}
	idx := a.meta.Schema().ColIndex(bare)
	if idx < 0 {
		return 0
	}
	if idx == a.eqCol {
		return 1 // pinned by the index's equality constant
	}
	v := a.meta.DistinctCount(idx)
	if v <= 0 {
		v = a.meta.RowCount()
	}
	if v > a.rows {
		v = a.rows
	}
	if v < 1 {
		v = 1
	}
	return v
}

func (a *accessPlan) describe() string {
	s := "seqscan"
	if a.eqCol >= 0 {
		s = fmt.Sprintf("indexscan(%s)", a.meta.Schema().Cols[a.eqCol].Name)
	}
	if a.rangeDiv > 1 {
		s += "+range"
	}
	return s
}

// joinCostPlan is the Plan node for one (left-deep) join step. Costs model
// the hash join the planner prefers: both inputs are read once, and the
// output cardinality divides the cross product by the largest distinct
// count of each equi-join column pair (the textbook V(s,F) estimate).
type joinCostPlan struct {
	left, right Plan
	rows        int64
	blocks      int64
}

// newJoinCostPlan costs joining right onto left under the given equi-join
// column pairs (alias-qualified names; empty means cross product) and
// non-equi condition count.
func newJoinCostPlan(left, right Plan, eqPairs [][2]string, nonEq int) *joinCostPlan {
	rows := float64(left.RecordsOutput()) * float64(right.RecordsOutput())
	for _, pr := range eqPairs {
		d := left.DistinctValues(pr[0])
		if d == 0 {
			d = right.DistinctValues(pr[0])
		}
		d2 := right.DistinctValues(pr[1])
		if d2 == 0 {
			d2 = left.DistinctValues(pr[1])
		}
		if d2 > d {
			d = d2
		}
		if d > 1 {
			rows /= float64(d)
		}
	}
	for i := 0; i < nonEq; i++ {
		rows /= 3
	}
	if rows < 1 {
		rows = 1
	}
	return &joinCostPlan{
		left:   left,
		right:  right,
		rows:   int64(rows),
		blocks: left.BlocksAccessed() + right.BlocksAccessed(),
	}
}

func (j *joinCostPlan) BlocksAccessed() int64 { return j.blocks }
func (j *joinCostPlan) RecordsOutput() int64  { return j.rows }

func (j *joinCostPlan) DistinctValues(col string) int64 {
	v := j.left.DistinctValues(col)
	if v == 0 {
		v = j.right.DistinctValues(col)
	}
	if v > j.rows {
		v = j.rows
	}
	return v
}

// splitQualified splits "alias.col" into its parts.
func splitQualified(col string) (alias, bare string, ok bool) {
	i := strings.LastIndexByte(col, '.')
	if i <= 0 || i == len(col)-1 {
		return "", "", false
	}
	return col[:i], col[i+1:], true
}
