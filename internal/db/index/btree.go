package index

import (
	"sort"

	"tuffy/internal/db/storage"
)

// BTree is an in-memory B-tree keyed by order-preserving byte strings
// (tuple.EncodeKey). It supports point lookups, ordered iteration, and
// range scans — what the engine needs for index-nested-loop joins and
// sort-avoidance in merge joins.
type BTree struct {
	root    *btNode
	degree  int // max children per interior node
	entries int
}

type btItem struct {
	key  string
	rids []storage.RecordID
}

type btNode struct {
	items    []btItem
	children []*btNode // nil for leaves
}

func (n *btNode) leaf() bool { return n.children == nil }

// NewBTree returns an empty B-tree with a branching factor suited to
// in-memory use.
func NewBTree() *BTree {
	return &BTree{degree: 64, root: &btNode{}}
}

// Len returns the number of (key, rid) entries.
func (t *BTree) Len() int { return t.entries }

// Insert adds a key -> rid mapping. Duplicate keys accumulate rids on one
// item.
func (t *BTree) Insert(key string, rid storage.RecordID) {
	t.entries++
	if len(t.root.items) >= 2*t.degree-1 {
		old := t.root
		t.root = &btNode{children: []*btNode{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, key, rid)
}

func (t *BTree) insertNonFull(n *btNode, key string, rid storage.RecordID) {
	i := sort.Search(len(n.items), func(j int) bool { return n.items[j].key >= key })
	if i < len(n.items) && n.items[i].key == key {
		n.items[i].rids = append(n.items[i].rids, rid)
		return
	}
	if n.leaf() {
		n.items = append(n.items, btItem{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = btItem{key: key, rids: []storage.RecordID{rid}}
		return
	}
	if len(n.children[i].items) >= 2*t.degree-1 {
		t.splitChild(n, i)
		if key > n.items[i].key {
			i++
		} else if key == n.items[i].key {
			n.items[i].rids = append(n.items[i].rids, rid)
			return
		}
	}
	t.insertNonFull(n.children[i], key, rid)
}

func (t *BTree) splitChild(parent *btNode, i int) {
	child := parent.children[i]
	mid := t.degree - 1
	midItem := child.items[mid]

	right := &btNode{}
	right.items = append(right.items, child.items[mid+1:]...)
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	parent.items = append(parent.items, btItem{})
	copy(parent.items[i+1:], parent.items[i:])
	parent.items[i] = midItem

	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

// Remove deletes one (key, rid) mapping by dropping the rid from the key's
// item — lazy deletion: the tree keeps its shape and an emptied item simply
// matches nothing. It is a no-op if the pair is absent. DistinctKeys stays
// an upper-bound estimate after removals.
func (t *BTree) Remove(key string, rid storage.RecordID) {
	n := t.root
	for {
		i := sort.Search(len(n.items), func(j int) bool { return n.items[j].key >= key })
		if i < len(n.items) && n.items[i].key == key {
			rids := n.items[i].rids
			for k, id := range rids {
				if id == rid {
					rids[k] = rids[len(rids)-1]
					n.items[i].rids = rids[:len(rids)-1]
					t.entries--
					return
				}
			}
			return
		}
		if n.leaf() {
			return
		}
		n = n.children[i]
	}
}

// Lookup returns all rids stored under key.
func (t *BTree) Lookup(key string) []storage.RecordID {
	n := t.root
	for {
		i := sort.Search(len(n.items), func(j int) bool { return n.items[j].key >= key })
		if i < len(n.items) && n.items[i].key == key {
			return n.items[i].rids
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// Ascend calls fn for every (key, rids) pair in ascending key order until fn
// returns false.
func (t *BTree) Ascend(fn func(key string, rids []storage.RecordID) bool) {
	t.ascend(t.root, fn)
}

func (t *BTree) ascend(n *btNode, fn func(string, []storage.RecordID) bool) bool {
	for i, it := range n.items {
		if !n.leaf() {
			if !t.ascend(n.children[i], fn) {
				return false
			}
		}
		if !fn(it.key, it.rids) {
			return false
		}
	}
	if !n.leaf() {
		return t.ascend(n.children[len(n.items)], fn)
	}
	return true
}

// AscendRange calls fn for keys in [lo, hi) in ascending order until fn
// returns false. An empty hi means "no upper bound".
func (t *BTree) AscendRange(lo, hi string, fn func(key string, rids []storage.RecordID) bool) {
	t.Ascend(func(key string, rids []storage.RecordID) bool {
		if key < lo {
			return true
		}
		if hi != "" && key >= hi {
			return false
		}
		return fn(key, rids)
	})
}

// DistinctKeys returns the number of distinct keys.
func (t *BTree) DistinctKeys() int {
	n := 0
	t.Ascend(func(string, []storage.RecordID) bool { n++; return true })
	return n
}

// Height returns the tree height (1 for a lone leaf); used in tests.
func (t *BTree) Height() int {
	h := 1
	n := t.root
	for !n.leaf() {
		h++
		n = n.children[0]
	}
	return h
}
