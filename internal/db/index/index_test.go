package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tuffy/internal/db/storage"
)

func rid(n int) storage.RecordID {
	return storage.RecordID{Page: storage.PageID{File: 1, Num: int32(n / 100)}, Slot: n % 100}
}

func TestHashIndexBasic(t *testing.T) {
	h := NewHashIndex()
	h.Insert("a", rid(1))
	h.Insert("a", rid(2))
	h.Insert("b", rid(3))
	if got := h.Lookup("a"); len(got) != 2 {
		t.Fatalf("Lookup(a) = %v", got)
	}
	if got := h.Lookup("zzz"); got != nil {
		t.Fatalf("Lookup(zzz) = %v", got)
	}
	if h.Len() != 3 || h.DistinctKeys() != 2 {
		t.Fatalf("Len=%d Distinct=%d", h.Len(), h.DistinctKeys())
	}
	h.Delete("a", rid(1))
	if got := h.Lookup("a"); len(got) != 1 || got[0] != rid(2) {
		t.Fatalf("after delete Lookup(a) = %v", got)
	}
	h.Delete("a", rid(2))
	if h.DistinctKeys() != 1 {
		t.Fatalf("empty bucket not removed")
	}
	h.Delete("never", rid(9)) // no-op
}

func TestBTreeInsertLookup(t *testing.T) {
	bt := NewBTree()
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		bt.Insert(fmt.Sprintf("key%06d", i), rid(i))
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d", bt.Len())
	}
	for i := 0; i < n; i += 97 {
		got := bt.Lookup(fmt.Sprintf("key%06d", i))
		if len(got) != 1 || got[0] != rid(i) {
			t.Fatalf("Lookup(%d) = %v", i, got)
		}
	}
	if bt.Lookup("missing") != nil {
		t.Fatal("lookup of missing key returned ids")
	}
	if bt.Height() < 2 {
		t.Fatalf("10k keys should split the root; height = %d", bt.Height())
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 10; i++ {
		bt.Insert("same", rid(i))
	}
	got := bt.Lookup("same")
	if len(got) != 10 {
		t.Fatalf("Lookup(same) returned %d rids", len(got))
	}
	if bt.DistinctKeys() != 1 {
		t.Fatalf("DistinctKeys = %d", bt.DistinctKeys())
	}
}

func TestBTreeAscendSorted(t *testing.T) {
	bt := NewBTree()
	r := rand.New(rand.NewSource(2))
	keys := make([]string, 0, 2000)
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("%08x", r.Uint32())
		keys = append(keys, k)
		bt.Insert(k, rid(i))
	}
	sort.Strings(keys)
	// dedupe
	uniq := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			uniq = append(uniq, k)
		}
	}
	var got []string
	bt.Ascend(func(key string, _ []storage.RecordID) bool {
		got = append(got, key)
		return true
	})
	if len(got) != len(uniq) {
		t.Fatalf("Ascend visited %d keys, want %d", len(got), len(uniq))
	}
	for i := range got {
		if got[i] != uniq[i] {
			t.Fatalf("Ascend out of order at %d: %q vs %q", i, got[i], uniq[i])
		}
	}
}

func TestBTreeAscendRange(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 100; i++ {
		bt.Insert(fmt.Sprintf("k%03d", i), rid(i))
	}
	var got []string
	bt.AscendRange("k010", "k020", func(key string, _ []storage.RecordID) bool {
		got = append(got, key)
		return true
	})
	if len(got) != 10 || got[0] != "k010" || got[9] != "k019" {
		t.Fatalf("range = %v", got)
	}
	// Open-ended range.
	n := 0
	bt.AscendRange("k090", "", func(string, []storage.RecordID) bool { n++; return true })
	if n != 10 {
		t.Fatalf("open range visited %d", n)
	}
}

func TestBTreeAscendEarlyStop(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 500; i++ {
		bt.Insert(fmt.Sprintf("k%04d", i), rid(i))
	}
	n := 0
	bt.Ascend(func(string, []storage.RecordID) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("visited %d, want 7", n)
	}
}

func TestBTreeMatchesMapProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		bt := NewBTree()
		want := map[string]int{}
		for i, k := range keys {
			key := fmt.Sprintf("%05d", k)
			bt.Insert(key, rid(i))
			want[key]++
		}
		for key, count := range want {
			if len(bt.Lookup(key)) != count {
				return false
			}
		}
		distinct := 0
		bt.Ascend(func(string, []storage.RecordID) bool { distinct++; return true })
		return distinct == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
