// Package index provides the two secondary-index structures the optimizer
// can choose between: an equality hash index and an ordered B-tree index.
// Both map encoded key bytes (tuple.EncodeKey) to heap-file record ids.
package index

import (
	"tuffy/internal/db/storage"
)

// HashIndex is an in-memory equality index: key bytes -> record ids.
type HashIndex struct {
	buckets map[string][]storage.RecordID
	entries int
}

// NewHashIndex returns an empty hash index.
func NewHashIndex() *HashIndex {
	return &HashIndex{buckets: make(map[string][]storage.RecordID)}
}

// Insert adds one key -> rid mapping. Duplicate keys accumulate.
func (h *HashIndex) Insert(key string, rid storage.RecordID) {
	h.buckets[key] = append(h.buckets[key], rid)
	h.entries++
}

// Lookup returns all record ids with the key.
func (h *HashIndex) Lookup(key string) []storage.RecordID {
	return h.buckets[key]
}

// Delete removes one mapping (key, rid); it is a no-op if absent.
func (h *HashIndex) Delete(key string, rid storage.RecordID) {
	ids := h.buckets[key]
	for i, id := range ids {
		if id == rid {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			h.entries--
			if len(ids) == 0 {
				delete(h.buckets, key)
			} else {
				h.buckets[key] = ids
			}
			return
		}
	}
}

// Len returns the number of (key, rid) entries.
func (h *HashIndex) Len() int { return h.entries }

// DistinctKeys returns the number of distinct keys (used by the optimizer's
// cardinality estimates).
func (h *HashIndex) DistinctKeys() int { return len(h.buckets) }
