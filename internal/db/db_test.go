package db

import (
	"fmt"
	"testing"

	"tuffy/internal/db/plan"
	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
)

func mustExec(t *testing.T, d *DB, sql string) int64 {
	t.Helper()
	n, err := d.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, d *DB, sql string) *Rows {
	t.Helper()
	rows, err := d.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rows
}

func TestCreateInsertSelect(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE users (id BIGINT, name TEXT)")
	mustExec(t, d, "INSERT INTO users VALUES (1, 'ann'), (2, 'bob'), (3, 'cho')")
	rows := mustQuery(t, d, "SELECT id, name FROM users WHERE id >= 2 ORDER BY id")
	if len(rows.Data) != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
	if rows.Data[0][1].S != "bob" || rows.Data[1][1].S != "cho" {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestCreateDuplicateTable(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (a BIGINT)")
	if _, err := d.Exec("CREATE TABLE t (a BIGINT)"); err == nil {
		t.Fatal("duplicate CREATE TABLE accepted")
	}
}

func TestInsertTypeMismatch(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (a BIGINT)")
	if _, err := d.Exec("INSERT INTO t VALUES ('nope')"); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestJoinQuery(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE wrote (author BIGINT, paper BIGINT)")
	mustExec(t, d, "CREATE TABLE cat (paper BIGINT, category BIGINT)")
	mustExec(t, d, "INSERT INTO wrote VALUES (1, 10), (1, 11), (2, 12)")
	mustExec(t, d, "INSERT INTO cat VALUES (10, 100), (11, 101), (12, 100)")
	rows := mustQuery(t, d, `
		SELECT w.author, c.category
		FROM wrote w, cat c
		WHERE w.paper = c.paper AND c.category = 100
		ORDER BY author`)
	if len(rows.Data) != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
	if rows.Data[0][0].I != 1 || rows.Data[1][0].I != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestThreeWayJoinAllAlgorithms(t *testing.T) {
	for _, alg := range []plan.JoinAlgorithm{plan.JoinAuto, plan.JoinHashOnly, plan.JoinMergeOnly, plan.JoinNestedLoopOnly} {
		d := Open(Config{Plan: plan.Options{Algorithm: alg}})
		mustExec(t, d, "CREATE TABLE a (x BIGINT, y BIGINT)")
		mustExec(t, d, "CREATE TABLE b (y BIGINT, z BIGINT)")
		mustExec(t, d, "CREATE TABLE c (z BIGINT, w BIGINT)")
		mustExec(t, d, "INSERT INTO a VALUES (1, 2), (1, 3)")
		mustExec(t, d, "INSERT INTO b VALUES (2, 4), (3, 5)")
		mustExec(t, d, "INSERT INTO c VALUES (4, 6), (5, 7), (5, 8)")
		rows := mustQuery(t, d, `
			SELECT a.x, c.w FROM a, b, c
			WHERE a.y = b.y AND b.z = c.z ORDER BY w`)
		if len(rows.Data) != 3 {
			t.Fatalf("alg %v: rows = %v", alg, rows.Data)
		}
		if rows.Data[0][1].I != 6 || rows.Data[2][1].I != 8 {
			t.Fatalf("alg %v: rows = %v", alg, rows.Data)
		}
	}
}

func TestForceJoinOrderStillCorrect(t *testing.T) {
	d := Open(Config{Plan: plan.Options{ForceJoinOrder: true}})
	mustExec(t, d, "CREATE TABLE big (k BIGINT)")
	mustExec(t, d, "CREATE TABLE small (k BIGINT)")
	for i := 0; i < 200; i++ {
		mustExec(t, d, fmt.Sprintf("INSERT INTO big VALUES (%d)", i))
	}
	mustExec(t, d, "INSERT INTO small VALUES (7), (8)")
	rows := mustQuery(t, d, "SELECT big.k FROM big, small WHERE big.k = small.k ORDER BY k")
	if len(rows.Data) != 2 || rows.Data[0][0].I != 7 {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestGroupByAggregates(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE sales (region BIGINT, amount BIGINT)")
	mustExec(t, d, "INSERT INTO sales VALUES (1, 10), (1, 20), (2, 5), (2, 6), (2, 7)")
	rows := mustQuery(t, d, `
		SELECT region, COUNT(*) AS n, SUM(amount) AS total, MIN(amount) AS lo, MAX(amount) AS hi
		FROM sales GROUP BY region ORDER BY region`)
	if len(rows.Data) != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
	r1 := rows.Data[0]
	if r1[0].I != 1 || r1[1].I != 2 || r1[2].I != 30 || r1[3].I != 10 || r1[4].I != 20 {
		t.Fatalf("region 1 = %v", r1)
	}
	r2 := rows.Data[1]
	if r2[0].I != 2 || r2[1].I != 3 || r2[2].I != 18 {
		t.Fatalf("region 2 = %v", r2)
	}
}

func TestArrayAgg(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (g BIGINT, v BIGINT)")
	mustExec(t, d, "INSERT INTO t VALUES (1, 30), (1, 10), (2, 99), (1, 20)")
	rows := mustQuery(t, d, "SELECT g, ARRAY_AGG(v) AS vs FROM t GROUP BY g ORDER BY g")
	if len(rows.Data) != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
	if fmt.Sprint(rows.Data[0][1].List) != "[10 20 30]" {
		t.Fatalf("array_agg = %v", rows.Data[0][1])
	}
}

func TestDistinctAndLimit(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (v BIGINT)")
	mustExec(t, d, "INSERT INTO t VALUES (1), (2), (1), (3), (2), (1)")
	rows := mustQuery(t, d, "SELECT DISTINCT v FROM t ORDER BY v")
	if len(rows.Data) != 3 {
		t.Fatalf("distinct = %v", rows.Data)
	}
	rows = mustQuery(t, d, "SELECT v FROM t LIMIT 2")
	if len(rows.Data) != 2 {
		t.Fatalf("limit = %v", rows.Data)
	}
}

func TestInsertSelect(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE src (a BIGINT, b BIGINT)")
	mustExec(t, d, "CREATE TABLE dst (a BIGINT, b BIGINT)")
	mustExec(t, d, "INSERT INTO src VALUES (1, 2), (3, 4), (5, 6)")
	n := mustExec(t, d, "INSERT INTO dst SELECT a, b FROM src WHERE a > 1")
	if n != 2 {
		t.Fatalf("inserted %d", n)
	}
	rows := mustQuery(t, d, "SELECT a FROM dst ORDER BY a")
	if len(rows.Data) != 2 || rows.Data[0][0].I != 3 {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestUpdate(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (id BIGINT, truth BIGINT)")
	mustExec(t, d, "INSERT INTO t VALUES (1, 0), (2, 0), (3, 1)")
	n := mustExec(t, d, "UPDATE t SET truth = 1 WHERE id = 2")
	if n != 1 {
		t.Fatalf("updated %d", n)
	}
	rows := mustQuery(t, d, "SELECT id FROM t WHERE truth = 1 ORDER BY id")
	if len(rows.Data) != 2 || rows.Data[0][0].I != 2 || rows.Data[1][0].I != 3 {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestDelete(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (id BIGINT)")
	mustExec(t, d, "INSERT INTO t VALUES (1), (2), (3)")
	n := mustExec(t, d, "DELETE FROM t WHERE id <> 2")
	if n != 2 {
		t.Fatalf("deleted %d", n)
	}
	rows := mustQuery(t, d, "SELECT id FROM t")
	if len(rows.Data) != 1 || rows.Data[0][0].I != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE refers (p1 BIGINT, p2 BIGINT)")
	mustExec(t, d, "INSERT INTO refers VALUES (1, 2), (2, 3)")
	rows := mustQuery(t, d, `
		SELECT r1.p1, r2.p2 FROM refers r1, refers r2
		WHERE r1.p2 = r2.p1`)
	if len(rows.Data) != 1 || rows.Data[0][0].I != 1 || rows.Data[0][1].I != 3 {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestSelfJoinWithoutAliasRejected(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (a BIGINT)")
	if _, err := d.Query("SELECT t.a FROM t, t"); err == nil {
		t.Fatal("duplicate range variable accepted")
	}
}

func TestStringEquality(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (name TEXT, v BIGINT)")
	mustExec(t, d, "INSERT INTO t VALUES ('alpha', 1), ('beta', 2), ('it''s', 3)")
	rows := mustQuery(t, d, "SELECT v FROM t WHERE name = 'beta'")
	if len(rows.Data) != 1 || rows.Data[0][0].I != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
	rows = mustQuery(t, d, "SELECT v FROM t WHERE name = 'it''s'")
	if len(rows.Data) != 1 || rows.Data[0][0].I != 3 {
		t.Fatalf("escaped quote rows = %v", rows.Data)
	}
}

func TestSelectStar(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (a BIGINT, b TEXT)")
	mustExec(t, d, "INSERT INTO t VALUES (1, 'x')")
	rows := mustQuery(t, d, "SELECT * FROM t")
	if len(rows.Data) != 1 || rows.Data[0][0].I != 1 || rows.Data[0][1].S != "x" {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestCountStar(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (a BIGINT)")
	mustExec(t, d, "INSERT INTO t VALUES (1), (2), (3)")
	rows := mustQuery(t, d, "SELECT COUNT(*) AS n FROM t")
	if len(rows.Data) != 1 || rows.Data[0][0].I != 3 {
		t.Fatalf("count = %v", rows.Data)
	}
}

func TestQueryErrors(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (a BIGINT)")
	for _, sql := range []string{
		"SELECT a FROM missing",
		"SELECT nocol FROM t",
		"SELECT a FROM t WHERE nocol = 1",
		"SELEC a FROM t",
		"SELECT a FROM t WHERE a ~ 1",
		"INSERT INTO missing VALUES (1)",
		"UPDATE t SET nocol = 1",
		"DELETE FROM missing",
	} {
		if _, err := d.Exec(sql); err == nil {
			t.Errorf("no error for %q", sql)
		}
	}
}

func TestTableStatsTracking(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (a BIGINT, b BIGINT)")
	for i := 0; i < 100; i++ {
		mustExec(t, d, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i%10))
	}
	tab, _ := d.Table("t")
	if tab.RowCount() != 100 {
		t.Fatalf("RowCount = %d", tab.RowCount())
	}
	if tab.DistinctCount(0) != 100 || tab.DistinctCount(1) != 10 {
		t.Fatalf("distinct = %d, %d", tab.DistinctCount(0), tab.DistinctCount(1))
	}
}

func TestBulkLoadDirectAPI(t *testing.T) {
	d := Open(Config{})
	tab, err := d.CreateTable("bulk", tuple.NewSchema(
		tuple.Col("id", tuple.TInt), tuple.Col("v", tuple.TInt)))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]tuple.Row, 10000)
	for i := range rows {
		rows[i] = tuple.Row{tuple.I64(int64(i)), tuple.I64(int64(i * 2))}
	}
	if err := tab.InsertMany(rows); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, d, "SELECT COUNT(*) AS n FROM bulk")
	if res.Data[0][0].I != 10000 {
		t.Fatalf("count = %v", res.Data)
	}
}

func TestHashIndexMaintenance(t *testing.T) {
	d := Open(Config{})
	tab, _ := d.CreateTable("t", tuple.NewSchema(tuple.Col("k", tuple.TInt)))
	if _, err := tab.BuildHashIndex([]int{0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tab.Insert(tuple.Row{tuple.I64(int64(i % 5))}); err != nil {
			t.Fatal(err)
		}
	}
	idx, ok := tab.HashIndexOn([]int{0})
	if !ok {
		t.Fatal("index lost")
	}
	key := tuple.EncodeKey(tuple.Row{tuple.I64(3)}, []int{0})
	if got := len(idx.Lookup(key)); got != 10 {
		t.Fatalf("index lookup = %d rids", got)
	}
}

func TestUpdateAtAndGet(t *testing.T) {
	d := Open(Config{})
	tab, _ := d.CreateTable("t", tuple.NewSchema(tuple.Col("a", tuple.TInt), tuple.Col("b", tuple.TInt)))
	if err := tab.Insert(tuple.Row{tuple.I64(1), tuple.I64(2)}); err != nil {
		t.Fatal(err)
	}
	var rid storage.RecordID
	if err := tab.ScanRows(func(r storage.RecordID, row tuple.Row) error {
		rid = r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tab.UpdateAt(rid, tuple.Row{tuple.I64(9), tuple.I64(8)}); err != nil {
		t.Fatal(err)
	}
	row, err := tab.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].I != 9 || row[1].I != 8 {
		t.Fatalf("row = %v", row)
	}
}

// UpdateMany / DeleteMany must keep secondary indexes consistent: old keys
// stop matching, new keys match, and SQL UPDATE/DELETE (which route through
// the same paths) no longer leave stale rids behind.
func TestBatchedWritesMaintainHashIndex(t *testing.T) {
	d := Open(Config{})
	tab, _ := d.CreateTable("t", tuple.NewSchema(tuple.Col("k", tuple.TInt), tuple.Col("v", tuple.TInt)))
	for i := 0; i < 8; i++ {
		if err := tab.Insert(tuple.Row{tuple.I64(int64(i)), tuple.I64(int64(100 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := tab.BuildHashIndex([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	key := func(k int64) string { return tuple.EncodeKey(tuple.Row{tuple.I64(k)}, []int{0}) }

	var rids []storage.RecordID
	if err := tab.ScanRows(func(rid storage.RecordID, _ tuple.Row) error {
		rids = append(rids, rid)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Re-key rows 0 and 1 to 50 and 51 in one batch.
	if err := tab.UpdateMany(rids[:2], []tuple.Row{
		{tuple.I64(50), tuple.I64(100)},
		{tuple.I64(51), tuple.I64(101)},
	}); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{0, 1} {
		if got := idx.Lookup(key(k)); len(got) != 0 {
			t.Fatalf("stale index entries for re-keyed %d: %v", k, got)
		}
	}
	for _, k := range []int64{50, 51} {
		if got := idx.Lookup(key(k)); len(got) != 1 {
			t.Fatalf("index missing re-keyed %d: %v", k, got)
		}
	}

	// Batched delete drops entries.
	if err := tab.DeleteMany(rids[2:4]); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{2, 3} {
		if got := idx.Lookup(key(k)); len(got) != 0 {
			t.Fatalf("stale index entries for deleted %d: %v", k, got)
		}
	}
	if tab.RowCount() != 6 {
		t.Fatalf("row count = %d", tab.RowCount())
	}

	// SQL paths ride the same maintenance.
	if _, err := d.Exec("DELETE FROM t WHERE k = 4"); err != nil {
		t.Fatal(err)
	}
	if got := idx.Lookup(key(4)); len(got) != 0 {
		t.Fatalf("SQL DELETE left stale index entries: %v", got)
	}
	if _, err := d.Exec("UPDATE t SET k = 77 WHERE k = 5"); err != nil {
		t.Fatal(err)
	}
	if got := idx.Lookup(key(5)); len(got) != 0 {
		t.Fatalf("SQL UPDATE left stale index entries: %v", got)
	}
	if got := idx.Lookup(key(77)); len(got) != 1 {
		t.Fatalf("SQL UPDATE did not index the new key: %v", got)
	}
}

func TestDeleteAtAndBTreeRemoval(t *testing.T) {
	d := Open(Config{})
	tab, _ := d.CreateTable("t", tuple.NewSchema(tuple.Col("k", tuple.TInt)))
	for i := 0; i < 5; i++ {
		if err := tab.Insert(tuple.Row{tuple.I64(int64(i % 2))}); err != nil {
			t.Fatal(err)
		}
	}
	bt, err := tab.BuildBTreeIndex([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	key := tuple.EncodeKey(tuple.Row{tuple.I64(0)}, []int{0})
	if got := len(bt.Lookup(key)); got != 3 {
		t.Fatalf("btree rids for 0 = %d", got)
	}
	var zeroRID storage.RecordID
	found := false
	if err := tab.ScanRows(func(rid storage.RecordID, row tuple.Row) error {
		if !found && row[0].I == 0 {
			zeroRID, found = rid, true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tab.DeleteAt(zeroRID); err != nil {
		t.Fatal(err)
	}
	if got := len(bt.Lookup(key)); got != 2 {
		t.Fatalf("btree rids for 0 after DeleteAt = %d", got)
	}
	if err := tab.DeleteAt(zeroRID); err == nil {
		t.Fatal("double DeleteAt accepted")
	}
}

func TestUpdateManyRejectsMisalignedArgs(t *testing.T) {
	d := Open(Config{})
	tab, _ := d.CreateTable("t", tuple.NewSchema(tuple.Col("k", tuple.TInt)))
	if err := tab.UpdateMany(make([]storage.RecordID, 2), []tuple.Row{{tuple.I64(1)}}); err == nil {
		t.Fatal("misaligned UpdateMany accepted")
	}
	if err := tab.UpdateMany(nil, nil); err != nil {
		t.Fatalf("empty UpdateMany: %v", err)
	}
	if err := tab.DeleteMany(nil); err != nil {
		t.Fatalf("empty DeleteMany: %v", err)
	}
}

func TestDropHashIndexDeregisters(t *testing.T) {
	d := Open(Config{})
	tab, _ := d.CreateTable("t", tuple.NewSchema(tuple.Col("k", tuple.TInt)))
	if err := tab.Insert(tuple.Row{tuple.I64(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.BuildHashIndex([]int{0}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.HashIndexOn([]int{0}); !ok {
		t.Fatal("index not registered")
	}
	tab.DropHashIndex([]int{0})
	if _, ok := tab.HashIndexOn([]int{0}); ok {
		t.Fatal("index still registered after drop")
	}
	tab.DropHashIndex([]int{0}) // idempotent
}

// Distinct statistics must pick up updated values whether or not the table
// has secondary indexes — planner estimates cannot depend on index
// presence.
func TestUpdateManyMaintainsDistinctStatsWithoutIndex(t *testing.T) {
	d := Open(Config{})
	tab, _ := d.CreateTable("t", tuple.NewSchema(tuple.Col("k", tuple.TInt)))
	if err := tab.Insert(tuple.Row{tuple.I64(1)}); err != nil {
		t.Fatal(err)
	}
	var rid storage.RecordID
	if err := tab.ScanRows(func(r storage.RecordID, _ tuple.Row) error { rid = r; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := tab.UpdateAt(rid, tuple.Row{tuple.I64(99)}); err != nil {
		t.Fatal(err)
	}
	if got := tab.DistinctCount(0); got != 2 {
		t.Fatalf("DistinctCount = %d, want 2 (1 and 99 both seen)", got)
	}
}

// QueryRanged must split a query into disjoint parts whose union equals the
// unrestricted result (the intra-clause parallel grounder's contract), on
// real heap storage — including the index-equipped path.
func TestQueryRangedPartition(t *testing.T) {
	d := Open(Config{})
	tab, err := d.CreateTable("t", tuple.NewSchema(tuple.Col("k", tuple.TInt), tuple.Col("v", tuple.TInt)))
	if err != nil {
		t.Fatal(err)
	}
	var rows []tuple.Row
	for i := int64(0); i < 200; i++ {
		rows = append(rows, tuple.Row{tuple.I64(i % 31), tuple.I64(i)})
	}
	if err := tab.InsertMany(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.BuildHashIndex([]int{0}); err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT k, v FROM t ORDER BY v"
	full := mustQuery(t, d, sql)
	const mod = 4
	seen := make(map[int64]int)
	total := 0
	for rem := uint32(0); rem < mod; rem++ {
		part, err := d.QueryRanged(sql, []plan.HashRange{{Table: "t", Col: "k", Mod: mod, Rem: rem}})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range part.Data {
			seen[r[1].I]++
			total++
		}
	}
	if total != len(full.Data) {
		t.Fatalf("ranges produced %d rows, full query %d", total, len(full.Data))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("v=%d appeared in %d ranges", v, n)
		}
	}
}

// EstimateQuery returns the optimizer's Explain without executing; the
// grounding scheduler keys its split decisions on EstRows+EstBlocks.
func TestEstimateQuery(t *testing.T) {
	d := Open(Config{})
	mustExec(t, d, "CREATE TABLE t (k BIGINT, v BIGINT)")
	mustExec(t, d, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
	ex, err := d.EstimateQuery("SELECT k FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if ex.EstRows < 1 || ex.EstBlocks < 1 {
		t.Fatalf("estimates = %+v", ex)
	}
	if len(ex.JoinOrder) != 1 || ex.Access["t"] == "" {
		t.Fatalf("explain = %+v", ex)
	}
}
