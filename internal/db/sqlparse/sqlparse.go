// Package sqlparse parses the SQL subset the engine speaks — the dialect
// Tuffy's grounding compiler emits (Appendix B.1 of the paper): CREATE
// TABLE, INSERT (VALUES and SELECT forms), UPDATE, DELETE, and conjunctive
// SELECT-FROM-WHERE with GROUP BY / ARRAY_AGG, ORDER BY and LIMIT.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"tuffy/internal/db/exec"
	"tuffy/internal/db/plan"
	"tuffy/internal/db/tuple"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tPunct // single punctuation, text holds it (incl. multi-char ops)
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isLetter(c):
			start := i
			for i < len(src) && (isLetter(src[i]) || isDigit(src[i]) || src[i] == '_') {
				i++
			}
			toks = append(toks, token{tIdent, src[start:i], start})
		case isDigit(c) || (c == '-' && i+1 < len(src) && isDigit(src[i+1])):
			start := i
			if c == '-' {
				i++
			}
			for i < len(src) && (isDigit(src[i]) || src[i] == '.') {
				i++
			}
			toks = append(toks, token{tNumber, src[start:i], start})
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("sql: unterminated string at %d", start)
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{tString, b.String(), start})
		case c == '<':
			if i+1 < len(src) && (src[i+1] == '>' || src[i+1] == '=') {
				toks = append(toks, token{tPunct, src[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tPunct, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tPunct, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tPunct, ">", i})
				i++
			}
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tPunct, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: stray '!' at %d", i)
			}
		case strings.ContainsRune("(),.*=;", rune(c)):
			toks = append(toks, token{tPunct, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tEOF, pos: len(src)})
	return toks, nil
}

func isLetter(c byte) bool {
	return unicode.IsLetter(rune(c)) || c == '_'
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (plan.Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tPunct && p.cur().text == ";" {
		p.next()
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("sql: trailing tokens at %d: %q", p.cur().pos, p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) isKeyword(kw string) bool {
	return p.cur().kind == tIdent && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s at %d, got %q", kw, p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	if p.cur().kind == tPunct && p.cur().text == s {
		p.next()
		return nil
	}
	return fmt.Errorf("sql: expected %q at %d, got %q", s, p.cur().pos, p.cur().text)
}

func (p *parser) acceptPunct(s string) bool {
	if p.cur().kind == tPunct && p.cur().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectIdent(what string) (string, error) {
	if p.cur().kind != tIdent {
		return "", fmt.Errorf("sql: expected %s at %d, got %q", what, p.cur().pos, p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) parseStatement() (plan.Statement, error) {
	switch {
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("CREATE"):
		return p.parseCreateTable()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("UPDATE"):
		return p.parseUpdate()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	default:
		return nil, fmt.Errorf("sql: expected statement, got %q", p.cur().text)
	}
}

func (p *parser) parseCreateTable() (plan.Statement, error) {
	p.next() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []tuple.Column
	for {
		cn, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		tn, err := p.expectIdent("column type")
		if err != nil {
			return nil, err
		}
		var t tuple.Type
		switch strings.ToUpper(tn) {
		case "BIGINT", "INT", "INTEGER":
			t = tuple.TInt
		case "TEXT", "VARCHAR":
			t = tuple.TString
		default:
			return nil, fmt.Errorf("sql: unsupported type %q", tn)
		}
		cols = append(cols, tuple.Column{Name: cn, Type: t})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &plan.CreateTableStmt{Table: name, Sch: tuple.Schema{Cols: cols}}, nil
}

func (p *parser) parseInsert() (plan.Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if p.isKeyword("VALUES") {
		p.next()
		var rows []tuple.Row
		for {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var row tuple.Row
			for {
				v, err := p.parseLiteral()
				if err != nil {
					return nil, err
				}
				row = append(row, v)
				if p.acceptPunct(",") {
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			rows = append(rows, row)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		return &plan.InsertStmt{Table: name, Rows: rows}, nil
	}
	if p.isKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &plan.InsertStmt{Table: name, Select: sel.(*plan.SelectStmt)}, nil
	}
	return nil, fmt.Errorf("sql: INSERT expects VALUES or SELECT at %d", p.cur().pos)
}

func (p *parser) parseUpdate() (plan.Statement, error) {
	p.next() // UPDATE
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	col, err := p.expectIdent("column name")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	val, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	where, err := p.parseOptionalWhere()
	if err != nil {
		return nil, err
	}
	return &plan.UpdateStmt{Table: name, Col: col, Val: val, Where: where}, nil
}

func (p *parser) parseDelete() (plan.Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	where, err := p.parseOptionalWhere()
	if err != nil {
		return nil, err
	}
	return &plan.DeleteStmt{Table: name, Where: where}, nil
}

func (p *parser) parseSelect() (plan.Statement, error) {
	p.next() // SELECT
	stmt := &plan.SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseProjItem()
		if err != nil {
			return nil, err
		}
		stmt.Proj = append(stmt.Proj, item)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		tn, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		fi := plan.FromItem{Table: tn}
		if p.cur().kind == tIdent && !p.anyKeyword("WHERE", "GROUP", "ORDER", "LIMIT", "AS") {
			fi.Alias = p.next().text
		} else if p.acceptKeyword("AS") {
			a, err := p.expectIdent("alias")
			if err != nil {
				return nil, err
			}
			fi.Alias = a
		}
		stmt.From = append(stmt.From, fi)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	where, err := p.parseOptionalWhere()
	if err != nil {
		return nil, err
	}
	stmt.Where = where
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			op, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, op)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			op, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.OrderBy = append(stmt.OrderBy, op)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.cur().kind != tNumber {
			return nil, fmt.Errorf("sql: LIMIT expects a number at %d", p.cur().pos)
		}
		n, err := strconv.ParseInt(p.next().text, 10, 64)
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) anyKeyword(kws ...string) bool {
	for _, kw := range kws {
		if p.isKeyword(kw) {
			return true
		}
	}
	return false
}

var aggFuncs = map[string]exec.AggFunc{
	"COUNT":     exec.AggCount,
	"SUM":       exec.AggSum,
	"MIN":       exec.AggMin,
	"MAX":       exec.AggMax,
	"ARRAY_AGG": exec.AggArray,
}

func (p *parser) parseProjItem() (plan.ProjItem, error) {
	var item plan.ProjItem
	switch {
	case p.cur().kind == tPunct && p.cur().text == "*":
		p.next()
		item.Kind = plan.ProjStar
		return item, nil
	case p.cur().kind == tNumber || p.cur().kind == tString:
		v, err := p.parseLiteral()
		if err != nil {
			return item, err
		}
		item.Kind = plan.ProjConst
		item.Val = v
	case p.cur().kind == tIdent:
		name := p.cur().text
		if fn, ok := aggFuncs[strings.ToUpper(name)]; ok && p.toks[p.i+1].kind == tPunct && p.toks[p.i+1].text == "(" {
			p.next() // fn
			p.next() // (
			item.Kind = plan.ProjAgg
			item.Agg = fn
			if p.acceptPunct("*") {
				if fn != exec.AggCount {
					return item, fmt.Errorf("sql: %s(*) unsupported", name)
				}
			} else {
				op, err := p.parseColumnRef()
				if err != nil {
					return item, err
				}
				item.Arg = &op
			}
			if err := p.expectPunct(")"); err != nil {
				return item, err
			}
		} else {
			op, err := p.parseColumnRef()
			if err != nil {
				return item, err
			}
			item.Kind = plan.ProjCol
			item.Col = op
		}
	default:
		return item, fmt.Errorf("sql: bad SELECT item at %d: %q", p.cur().pos, p.cur().text)
	}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent("alias")
		if err != nil {
			return item, err
		}
		item.Alias = a
	} else if p.cur().kind == tIdent && !p.anyKeyword("FROM", "WHERE", "GROUP", "ORDER", "LIMIT") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseColumnRef() (plan.Operand, error) {
	name, err := p.expectIdent("column")
	if err != nil {
		return plan.Operand{}, err
	}
	if p.acceptPunct(".") {
		col, err := p.expectIdent("column")
		if err != nil {
			return plan.Operand{}, err
		}
		return plan.ColOp(name, col), nil
	}
	return plan.ColOp("", name), nil
}

func (p *parser) parseOperand() (plan.Operand, error) {
	switch p.cur().kind {
	case tNumber, tString:
		v, err := p.parseLiteral()
		if err != nil {
			return plan.Operand{}, err
		}
		return plan.ValOp(v), nil
	case tIdent:
		return p.parseColumnRef()
	default:
		return plan.Operand{}, fmt.Errorf("sql: bad operand at %d: %q", p.cur().pos, p.cur().text)
	}
}

func (p *parser) parseLiteral() (tuple.Value, error) {
	t := p.next()
	switch t.kind {
	case tNumber:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return tuple.Value{}, fmt.Errorf("sql: bad number %q", t.text)
		}
		return tuple.I64(n), nil
	case tString:
		return tuple.Str(t.text), nil
	default:
		return tuple.Value{}, fmt.Errorf("sql: expected literal at %d, got %q", t.pos, t.text)
	}
}

var cmpOps = map[string]exec.CmpOp{
	"=": exec.CmpEq, "<>": exec.CmpNe, "!=": exec.CmpNe,
	"<": exec.CmpLt, "<=": exec.CmpLe, ">": exec.CmpGt, ">=": exec.CmpGe,
}

func (p *parser) parseOptionalWhere() ([]plan.Cond, error) {
	if !p.acceptKeyword("WHERE") {
		return nil, nil
	}
	var conds []plan.Cond
	for {
		l, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tPunct {
			return nil, fmt.Errorf("sql: expected comparison at %d, got %q", p.cur().pos, p.cur().text)
		}
		op, ok := cmpOps[p.cur().text]
		if !ok {
			return nil, fmt.Errorf("sql: unsupported operator %q", p.cur().text)
		}
		p.next()
		r, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		conds = append(conds, plan.Cond{Op: op, L: l, R: r})
		if p.acceptKeyword("AND") {
			continue
		}
		break
	}
	return conds, nil
}
