package sqlparse

import (
	"testing"

	"tuffy/internal/db/exec"
	"tuffy/internal/db/plan"
	"tuffy/internal/db/tuple"
)

func parseSelect(t *testing.T, sql string) *plan.SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	sel, ok := stmt.(*plan.SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want SelectStmt", sql, stmt)
	}
	return sel
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse("CREATE TABLE r_cat (aid BIGINT, a0 BIGINT, truth BIGINT)")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*plan.CreateTableStmt)
	if ct.Table != "r_cat" || ct.Sch.Arity() != 3 {
		t.Fatalf("%+v", ct)
	}
	if ct.Sch.Cols[0].Type != tuple.TInt {
		t.Fatal("column type wrong")
	}
}

func TestParseCreateTableTypes(t *testing.T) {
	stmt, err := Parse("CREATE TABLE t (a INTEGER, b TEXT, c VARCHAR)")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*plan.CreateTableStmt)
	if ct.Sch.Cols[1].Type != tuple.TString || ct.Sch.Cols[2].Type != tuple.TString {
		t.Fatal("string types wrong")
	}
	if _, err := Parse("CREATE TABLE t (a BLOB)"); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestParseInsertValues(t *testing.T) {
	stmt, err := Parse("INSERT INTO t VALUES (1, 'x'), (2, 'it''s')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*plan.InsertStmt)
	if len(ins.Rows) != 2 {
		t.Fatalf("rows = %d", len(ins.Rows))
	}
	if ins.Rows[1][1].S != "it's" {
		t.Fatalf("escaped quote = %q", ins.Rows[1][1].S)
	}
	if ins.Rows[0][0].I != 1 {
		t.Fatalf("int literal = %v", ins.Rows[0][0])
	}
}

func TestParseInsertSelect(t *testing.T) {
	stmt, err := Parse("INSERT INTO dst SELECT a, b FROM src WHERE a > 0")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*plan.InsertStmt)
	if ins.Select == nil || len(ins.Select.Proj) != 2 {
		t.Fatalf("%+v", ins)
	}
}

func TestParseSelectFull(t *testing.T) {
	sel := parseSelect(t, `
		SELECT DISTINCT t1.aid AS a, t2.truth
		FROM r_cat t1, r_refers AS t2
		WHERE t1.a0 = t2.a0 AND t1.truth <> 1 AND t2.aid >= 10
		ORDER BY a LIMIT 5`)
	if !sel.Distinct {
		t.Fatal("DISTINCT lost")
	}
	if len(sel.Proj) != 2 || sel.Proj[0].Alias != "a" {
		t.Fatalf("proj = %+v", sel.Proj)
	}
	if len(sel.From) != 2 || sel.From[0].Alias != "t1" || sel.From[1].Alias != "t2" {
		t.Fatalf("from = %+v", sel.From)
	}
	if len(sel.Where) != 3 {
		t.Fatalf("where = %+v", sel.Where)
	}
	if sel.Where[0].Op != exec.CmpEq || sel.Where[1].Op != exec.CmpNe || sel.Where[2].Op != exec.CmpGe {
		t.Fatalf("ops = %+v", sel.Where)
	}
	if sel.Limit != 5 {
		t.Fatalf("limit = %d", sel.Limit)
	}
	if len(sel.OrderBy) != 1 || sel.OrderBy[0].Col != "a" {
		t.Fatalf("order = %+v", sel.OrderBy)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t")
	if len(sel.Proj) != 1 || sel.Proj[0].Kind != plan.ProjStar {
		t.Fatalf("proj = %+v", sel.Proj)
	}
}

func TestParseAggregates(t *testing.T) {
	sel := parseSelect(t, `
		SELECT g, COUNT(*) AS n, SUM(v), MIN(v), MAX(v), ARRAY_AGG(v) vs
		FROM t GROUP BY g`)
	if len(sel.GroupBy) != 1 {
		t.Fatalf("group by = %+v", sel.GroupBy)
	}
	wantAgg := []exec.AggFunc{exec.AggCount, exec.AggSum, exec.AggMin, exec.AggMax, exec.AggArray}
	ai := 0
	for _, p := range sel.Proj {
		if p.Kind != plan.ProjAgg {
			continue
		}
		if p.Agg != wantAgg[ai] {
			t.Fatalf("agg %d = %v, want %v", ai, p.Agg, wantAgg[ai])
		}
		ai++
	}
	if ai != 5 {
		t.Fatalf("found %d aggregates", ai)
	}
	if sel.Proj[5].Alias != "vs" {
		t.Fatal("bare alias lost")
	}
	if _, err := Parse("SELECT SUM(*) FROM t"); err == nil {
		t.Fatal("SUM(*) accepted")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	stmt, err := Parse("UPDATE atoms SET truth = 1 WHERE aid = 7")
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(*plan.UpdateStmt)
	if up.Table != "atoms" || up.Col != "truth" || up.Val.I != 1 || len(up.Where) != 1 {
		t.Fatalf("%+v", up)
	}
	stmt, err = Parse("DELETE FROM atoms WHERE aid <> 3")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*plan.DeleteStmt)
	if del.Table != "atoms" || len(del.Where) != 1 {
		t.Fatalf("%+v", del)
	}
	// WHERE-less forms.
	if _, err := Parse("DELETE FROM atoms"); err != nil {
		t.Fatal(err)
	}
}

func TestParseNegativeNumbersAndComments(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE a = -5 -- trailing comment")
	if sel.Where[0].R.Val.I != -5 {
		t.Fatalf("negative literal = %+v", sel.Where[0].R)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT a FROM t;"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a ~ 1",
		"SELECT a FROM t WHERE a = ",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t GROUP BY",
		"INSERT INTO t",
		"INSERT INTO t VALUES 1",
		"INSERT INTO t VALUES (1",
		"UPDATE t SET",
		"UPDATE t SET a",
		"UPDATE t SET a = ",
		"DELETE t",
		"CREATE TABLE t",
		"CREATE TABLE t (",
		"SELECT a FROM t extra garbage ~",
		"SELECT 'unterminated FROM t",
		"SELECT a! FROM t",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("no error for %q", sql)
		}
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	sel := parseSelect(t, "select a from t where a = 1 order by a limit 1")
	if len(sel.Where) != 1 || sel.Limit != 1 {
		t.Fatalf("%+v", sel)
	}
}

func TestParseQualifiedStarNotSupported(t *testing.T) {
	// t.* is not in the grammar; document via error.
	if _, err := Parse("SELECT t.* FROM t"); err == nil {
		t.Fatal("qualified star accepted")
	}
}
