package storage

import (
	"bytes"
	"errors"
	"testing"
)

// The FaultDisk fake itself: hooks fire before countdowns on every
// operation, torn writes leave the front half of the new page over the old
// image, and pass-through methods reach the inner disk.
func TestFaultDiskHooksAndTornWrites(t *testing.T) {
	mem := NewMemDisk()
	fd := NewFaultDisk(mem)

	id, err := fd.AllocatePage(1)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{0xAA}, PageSize)
	if err := fd.WritePage(id, old); err != nil {
		t.Fatal(err)
	}

	// A torn write failure persists exactly the first half of the new page.
	fd.SetTornWrite(true)
	fd.FailWritesAfter(0)
	torn := bytes.Repeat([]byte{0xBB}, PageSize)
	if err := fd.WritePage(id, torn); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: err = %v, want ErrInjected", err)
	}
	fd.FailWritesAfter(-1)
	got := make([]byte, PageSize)
	if err := fd.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:PageSize/2], torn[:PageSize/2]) || !bytes.Equal(got[PageSize/2:], old[PageSize/2:]) {
		t.Fatal("torn write did not leave front-half-new, back-half-old page")
	}

	// Hooks fire before countdowns and can target any operation; a hook
	// error on truncate skips the truncate entirely.
	hookErr := errors.New("scripted")
	var ops []FaultOp
	fd.SetHook(func(op FaultOp, _ PageID) error {
		ops = append(ops, op)
		if op == OpTruncate || op == OpAllocate {
			return hookErr
		}
		return nil
	})
	if _, err := fd.AllocatePage(1); !errors.Is(err, hookErr) {
		t.Fatalf("allocate hook: err = %v, want scripted error", err)
	}
	fd.TruncateFile(1)
	if n := fd.NumPages(1); n != 1 {
		t.Fatalf("hook-blocked truncate: file has %d pages, want 1", n)
	}
	fd.SetHook(nil)
	fd.TruncateFile(1)
	if n := fd.NumPages(1); n != 0 {
		t.Fatalf("truncate: file has %d pages, want 0", n)
	}
	if len(ops) != 2 || ops[0] != OpAllocate || ops[1] != OpTruncate {
		t.Fatalf("hook saw %v, want [allocate truncate]", ops)
	}

	if fd.Stats() != mem.Stats() {
		t.Fatal("Stats must pass through to the inner disk")
	}
}
