// Package storage implements the bottom of the relational engine: fixed-size
// slotted pages, a disk abstraction with I/O accounting and optional latency
// injection (used to reproduce the paper's in-RDBMS search measurements), a
// pinning LRU buffer pool, and heap files.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the fixed page size in bytes (PostgreSQL's default, 8 KB).
const PageSize = 8192

// PageID identifies a page as (file, page-number). Each table and index gets
// its own file id.
type PageID struct {
	File int32
	Num  int32
}

func (p PageID) String() string { return fmt.Sprintf("%d:%d", p.File, p.Num) }

// Disk is the persistence interface. Implementations must be safe for
// concurrent use.
type Disk interface {
	// ReadPage copies the page into buf (len PageSize).
	ReadPage(id PageID, buf []byte) error
	// WritePage stores the page from buf (len PageSize).
	WritePage(id PageID, buf []byte) error
	// AllocatePage appends a zeroed page to the file and returns its id.
	AllocatePage(file int32) (PageID, error)
	// NumPages reports the number of pages in the file.
	NumPages(file int32) int32
	// TruncateFile releases every page of the file, returning its storage
	// to a free list: subsequent AllocatePage calls on the same file id
	// reuse the freed capacity before claiming new storage. Callers must
	// ensure no page of the file is still cached or in use.
	TruncateFile(file int32)
	// Stats returns cumulative I/O counters.
	Stats() DiskStats
}

// DiskStats counts physical page I/O.
type DiskStats struct {
	Reads  int64
	Writes int64
}

// MemDisk is an in-memory Disk. A per-access latency can be injected to
// model the cost of real disk I/O (the paper's Tuffy-mm experiments hinge on
// per-access RDBMS overhead; see Appendix C.1).
type MemDisk struct {
	mu      sync.RWMutex
	files   map[int32][][]byte
	reads   atomic.Int64
	writes  atomic.Int64
	latency time.Duration
}

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk {
	return &MemDisk{files: make(map[int32][][]byte)}
}

// SetLatency injects a synthetic delay charged on every page read and write.
func (d *MemDisk) SetLatency(l time.Duration) { d.latency = l }

// Latency returns the injected per-access delay.
func (d *MemDisk) Latency() time.Duration { return d.latency }

func (d *MemDisk) charge() {
	if d.latency > 0 {
		time.Sleep(d.latency)
	}
}

// ReadPage implements Disk.
func (d *MemDisk) ReadPage(id PageID, buf []byte) error {
	d.charge()
	d.reads.Add(1)
	d.mu.RLock()
	defer d.mu.RUnlock()
	pages, ok := d.files[id.File]
	if !ok || int(id.Num) >= len(pages) {
		return fmt.Errorf("storage: read of unallocated page %s", id)
	}
	copy(buf, pages[id.Num])
	return nil
}

// WritePage implements Disk.
func (d *MemDisk) WritePage(id PageID, buf []byte) error {
	d.charge()
	d.writes.Add(1)
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[id.File]
	if !ok || int(id.Num) >= len(pages) {
		return fmt.Errorf("storage: write of unallocated page %s", id)
	}
	copy(pages[id.Num], buf)
	return nil
}

// AllocatePage implements Disk. Capacity freed by TruncateFile is reused
// (the page buffer is re-zeroed) before new storage is claimed, so a
// truncate/allocate cycle holds the file at its high-water mark instead of
// growing it.
func (d *MemDisk) AllocatePage(file int32) (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages := d.files[file]
	id := PageID{File: file, Num: int32(len(pages))}
	if cap(pages) > len(pages) {
		pages = pages[:len(pages)+1]
		if pages[id.Num] == nil {
			pages[id.Num] = make([]byte, PageSize)
		} else {
			clear(pages[id.Num])
		}
	} else {
		pages = append(pages, make([]byte, PageSize))
	}
	d.files[file] = pages
	return id, nil
}

// NumPages implements Disk.
func (d *MemDisk) NumPages(file int32) int32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int32(len(d.files[file]))
}

// TruncateFile implements Disk: the file's page slice is cut to zero length
// but its buffers are kept as free capacity for reuse by AllocatePage.
func (d *MemDisk) TruncateFile(file int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if pages, ok := d.files[file]; ok {
		d.files[file] = pages[:0]
	}
}

// PageFootprint returns the total number of page buffers the disk holds,
// including truncated files' free-listed capacity — the quantity that must
// stay flat when repeated queries create and drop helper tables.
func (d *MemDisk) PageFootprint() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var total int64
	for _, pages := range d.files {
		total += int64(cap(pages))
	}
	return total
}

// Stats implements Disk.
func (d *MemDisk) Stats() DiskStats {
	return DiskStats{Reads: d.reads.Load(), Writes: d.writes.Load()}
}

// ResetStats zeroes the I/O counters (between experiment phases).
func (d *MemDisk) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
}
