package storage

import (
	"errors"
	"fmt"
	"testing"
)

func TestBufferPoolSurfacesReadErrors(t *testing.T) {
	mem := NewMemDisk()
	id, _ := mem.AllocatePage(1)
	fd := NewFaultDisk(mem)
	fd.FailReadsAfter(0)
	bp := NewBufferPool(fd, 4)
	if _, err := bp.Fetch(id); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	// The failed frame must not be left behind poisoning the pool.
	fd.FailReadsAfter(-1)
	if _, err := bp.Fetch(id); err != nil {
		t.Fatalf("recovery fetch failed: %v", err)
	}
	bp.Unpin(id, false)
}

func TestBufferPoolSurfacesWritebackErrors(t *testing.T) {
	mem := NewMemDisk()
	fd := NewFaultDisk(mem)
	fd.FailWritesAfter(0)
	bp := NewBufferPool(fd, 1)
	id1, pg, err := bp.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Insert([]byte("dirty")); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id1, true)
	// Allocating a second page forces eviction of the dirty page, whose
	// write-back fails.
	if _, _, err := bp.Allocate(1); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

func TestFlushAllSurfacesErrors(t *testing.T) {
	mem := NewMemDisk()
	fd := NewFaultDisk(mem)
	fd.FailWritesAfter(0)
	bp := NewBufferPool(fd, 4)
	id, pg, err := bp.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Insert([]byte("x")); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, true)
	if err := bp.FlushAll(); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

func TestHeapScanSurfacesMidScanErrors(t *testing.T) {
	mem := NewMemDisk()
	bp := NewBufferPool(mem, 2) // tiny pool: pages re-read during scan
	h := NewHeapFile(bp, 1)
	rec := make([]byte, 3000)
	for i := 0; i < 10; i++ { // ~2 records per page -> 5 pages
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// New pool over a disk that fails after 2 reads.
	fd := NewFaultDisk(mem)
	fd.FailReadsAfter(2)
	bp2 := NewBufferPool(fd, 2)
	h2 := NewHeapFile(bp2, 1)
	_ = h2 // NewHeapFile recounts via scan, consuming the read budget
	fd.FailReadsAfter(2)
	err := h2.Scan(func(RecordID, []byte) error { return nil })
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

func TestHeapInsertTooLarge(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 4)
	h := NewHeapFile(bp, 1)
	if _, err := h.Insert(make([]byte, PageSize)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestScanCallbackErrorPropagates(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 4)
	h := NewHeapFile(bp, 1)
	for i := 0; i < 5; i++ {
		if _, err := h.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	boom := fmt.Errorf("callback boom")
	if err := h.Scan(func(RecordID, []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateDeletedRecordFails(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 4)
	h := NewHeapFile(bp, 1)
	rid, err := h.Insert([]byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if err := h.Update(rid, []byte("xyz")); err == nil {
		t.Fatal("update of tombstone accepted")
	}
}

func TestDeleteBatchSurfacesReadFaults(t *testing.T) {
	mem := NewMemDisk()
	bp := NewBufferPool(mem, 2)
	h := NewHeapFile(bp, 2)
	var rids []RecordID
	for i := 0; i < 6; i++ {
		rid, err := h.Insert(make([]byte, 3000)) // ~2 per page -> 3 pages
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Fresh pool over a disk that fails after one read: the batch must
	// surface the fault and report only the prefix it deleted.
	fd := NewFaultDisk(mem)
	fd.FailReadsAfter(1)
	bp2 := NewBufferPool(fd, 2)
	h2 := NewHeapFile(bp2, 2)
	fd.FailReadsAfter(1)
	old, err := h2.DeleteBatch(rids)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if len(old) == 0 || len(old) >= len(rids) {
		t.Fatalf("deleted prefix = %d records, want a strict partial prefix", len(old))
	}
}

func TestUpdateBatchSurfacesReadFaults(t *testing.T) {
	mem := NewMemDisk()
	bp := NewBufferPool(mem, 2)
	h := NewHeapFile(bp, 3)
	var rids []RecordID
	for i := 0; i < 4; i++ {
		rid, err := h.Insert(make([]byte, 3000))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	fd := NewFaultDisk(mem)
	fd.FailReadsAfter(0)
	bp2 := NewBufferPool(fd, 2)
	h2 := NewHeapFile(bp2, 3)
	if _, err := h2.UpdateBatch(rids, [][]byte{make([]byte, 3000), make([]byte, 3000), make([]byte, 3000), make([]byte, 3000)}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}
