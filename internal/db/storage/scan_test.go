package storage

import (
	"sync"
	"testing"
	"time"
)

// fillHeap builds a heap file with enough ~700B records to span pages pages.
func fillHeap(t *testing.T, pool *BufferPool, file int32, pages int) *HeapFile {
	t.Helper()
	h := NewHeapFile(pool, file)
	rec := make([]byte, 700)
	for h.NumPages() < int32(pages) {
		rec[0] = byte(h.NumPages())
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestScanResistanceKeepsPointWorkingSet is the policy's core property: a
// sequential scan much larger than the pool must not evict a point reader's
// working set. The same workload through undeclared scans (the plain-LRU
// lesion baseline) must evict it — proving the improvement is the policy,
// not the workload.
func TestScanResistanceKeepsPointWorkingSet(t *testing.T) {
	run := func(declared bool) (pointMisses int64) {
		disk := NewMemDisk()
		pool := NewBufferPool(disk, 8)
		big := fillHeap(t, pool, 1, 32) // scanned: 4x the pool
		hot := fillHeap(t, pool, 2, 4)  // point working set: half the pool
		var rids []RecordID
		_ = hot.Scan(func(rid RecordID, _ []byte) error {
			rids = append(rids, rid)
			return nil
		})
		// Warm the point working set, then interleave point reads with scan
		// passes and count only the point misses after warmup.
		for _, rid := range rids {
			if _, err := hot.Get(rid); err != nil {
				t.Fatal(err)
			}
		}
		pool.ResetStats()
		for pass := 0; pass < 3; pass++ {
			var err error
			if declared {
				err = big.Scan(func(RecordID, []byte) error { return nil })
			} else {
				err = big.ScanWith(nil, func(RecordID, []byte) error { return nil })
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, rid := range rids {
				if _, err := hot.Get(rid); err != nil {
					t.Fatal(err)
				}
			}
		}
		st := pool.Stats()
		if declared {
			// Scan fetches must all be accounted to the scan counters.
			if st.ScanHits+st.ScanMisses != 3*int64(big.NumPages()) {
				t.Fatalf("scan counters %d+%d, want %d fetches",
					st.ScanHits, st.ScanMisses, 3*big.NumPages())
			}
		}
		return st.PointMisses()
	}

	resistant := run(true)
	baseline := run(false)
	if resistant != 0 {
		t.Fatalf("declared scans evicted the point working set: %d point misses", resistant)
	}
	if baseline == 0 {
		t.Fatalf("plain-LRU baseline kept the working set; the lesion proves nothing")
	}
}

// TestInterleavedScansAccounting is the regression test for page-fetch
// accounting under scan-induced eviction: two interleaved scans on a
// 4-frame pool force every page of each pass to reload, and each fetch must
// be counted exactly once — per cursor, per scan counter, and in the pool
// totals (no double count of reloads of pages the other scan evicted).
func TestInterleavedScansAccounting(t *testing.T) {
	disk := NewMemDisk()
	pool := NewBufferPool(disk, 4)
	h := fillHeap(t, pool, 1, 12)
	pages := int64(h.NumPages())
	pool.ResetStats()

	scans := h.NumScans()
	var wg sync.WaitGroup
	cursors := make([]*ScanCursor, 2)
	for i := range cursors {
		sc := pool.BeginScan()
		cursors[i] = sc
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pool.EndScan(sc)
			if err := h.ScanWith(sc, func(RecordID, []byte) error {
				time.Sleep(50 * time.Microsecond) // interleave the two passes
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	for i, sc := range cursors {
		if sc.Pages() != pages {
			t.Fatalf("cursor %d fetched %d pages, want %d", i, sc.Pages(), pages)
		}
		if sc.Hits()+sc.Misses() != pages {
			t.Fatalf("cursor %d hits %d + misses %d != pages %d", i, sc.Hits(), sc.Misses(), pages)
		}
	}
	st := pool.Stats()
	if got, want := st.Hits+st.Misses, 2*pages; got != want {
		t.Fatalf("pool counted %d fetches, want %d (one per page per pass)", got, want)
	}
	if got, want := st.ScanHits+st.ScanMisses, 2*pages; got != want {
		t.Fatalf("scan counters %d, want %d", got, want)
	}
	if st.PointHits() != 0 || st.PointMisses() != 0 {
		t.Fatalf("scan-only workload leaked into point counters: %d hits, %d misses",
			st.PointHits(), st.PointMisses())
	}
	if got := h.NumScans() - scans; got != 2 {
		t.Fatalf("NumScans advanced by %d, want 2", got)
	}
}

// TestConcurrentScansAndPointReads hammers the scan-resistant pool with
// concurrent declared scans and point readers on a pool far smaller than
// the union of their page sets (run with -race): no fetch may fail with a
// transient exhaustion error, pin accounting must end balanced (DiscardFile
// errors on any leaked pin), and the point readers must beat the plain-LRU
// baseline's hit rate.
func TestConcurrentScansAndPointReads(t *testing.T) {
	run := func(declared bool) (hitRate float64) {
		disk := NewMemDisk()
		disk.SetLatency(20 * time.Microsecond)
		pool := NewBufferPool(disk, 6)
		big := fillHeap(t, pool, 1, 24)
		hot := fillHeap(t, pool, 2, 3)
		var rids []RecordID
		_ = hot.Scan(func(rid RecordID, _ []byte) error {
			rids = append(rids, rid)
			return nil
		})
		pool.ResetStats()

		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for s := 0; s < 2; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for pass := 0; pass < 4; pass++ {
					var err error
					if declared {
						err = big.Scan(func(RecordID, []byte) error { return nil })
					} else {
						err = big.ScanWith(nil, func(RecordID, []byte) error { return nil })
					}
					if err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for i := 0; i < 400; i++ {
					rid := rids[(seed+i)%len(rids)]
					if _, err := hot.Get(rid); err != nil {
						errs <- err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err) // includes any transient "buffer pool exhausted"
		}
		// Every pin must be released: DiscardFile fails on a pinned frame.
		if err := pool.DiscardFile(1); err != nil {
			t.Fatal(err)
		}
		if err := pool.DiscardFile(2); err != nil {
			t.Fatal(err)
		}
		st := pool.Stats()
		point := st.PointHits() + st.PointMisses()
		if point == 0 {
			t.Fatal("no point fetches recorded")
		}
		return float64(st.PointHits()) / float64(point)
	}

	resistant := run(true)
	baseline := run(false)
	if resistant <= baseline {
		t.Fatalf("point-read hit rate %.2f not above plain-LRU baseline %.2f", resistant, baseline)
	}
	if resistant < 0.9 {
		t.Fatalf("point-read hit rate %.2f; want >=0.9 with a resident working set", resistant)
	}
}
