package storage

import (
	"fmt"
	"sync/atomic"
)

// RecordID locates a record: page and slot.
type RecordID struct {
	Page PageID
	Slot int
}

func (r RecordID) String() string { return fmt.Sprintf("%s/%d", r.Page, r.Slot) }

// HeapFile is an unordered collection of records in slotted pages, the
// storage for one table. Inserts append to the last page, allocating as
// needed; scans walk pages in order through the buffer pool.
//
// Concurrent scans are safe. Mutations (Insert/InsertBatch/Update/Delete)
// require a single writer; the record counter is atomic so readers may
// observe counts while a writer runs.
type HeapFile struct {
	pool    *BufferPool
	file    int32
	lastPg  int32 // page currently receiving inserts, -1 if none
	records atomic.Int64
	scans   atomic.Int64
}

// NewHeapFile creates (or reopens) the heap file with the given file id.
func NewHeapFile(pool *BufferPool, file int32) *HeapFile {
	h := &HeapFile{pool: pool, file: file, lastPg: -1}
	if n := pool.disk.NumPages(file); n > 0 {
		h.lastPg = n - 1
		// Recount records for reopened files.
		_ = h.Scan(func(RecordID, []byte) error {
			h.records.Add(1)
			return nil
		})
	}
	return h
}

// FileID returns the underlying file id.
func (h *HeapFile) FileID() int32 { return h.file }

// NumRecords returns the live record count.
func (h *HeapFile) NumRecords() int64 { return h.records.Load() }

// NumScans returns how many full Scan passes have started on this file —
// the counter tests use to prove a search loop never rescans a table.
func (h *HeapFile) NumScans() int64 { return h.scans.Load() }

// NumPages returns the number of allocated pages.
func (h *HeapFile) NumPages() int32 { return h.pool.disk.NumPages(h.file) }

// Insert appends a record and returns its id.
func (h *HeapFile) Insert(rec []byte) (RecordID, error) {
	rids, err := h.InsertBatch([][]byte{rec})
	if err != nil {
		return RecordID{}, err
	}
	return rids[0], nil
}

// InsertBatch appends records in order and returns their ids. Unlike a loop
// over Insert, the receiving page is pinned once and filled until full
// (the paper's Section 3.2 batch-loading path), so bulk loads do one
// Fetch/Unpin round-trip per PAGE instead of per record.
func (h *HeapFile) InsertBatch(recs [][]byte) ([]RecordID, error) {
	rids := make([]RecordID, 0, len(recs))
	var (
		cur    Page
		curID  PageID
		pinned bool
		dirty  bool
	)
	unpin := func() {
		if pinned {
			h.pool.Unpin(curID, dirty)
			pinned, dirty = false, false
		}
	}
	for _, rec := range recs {
		if len(rec) > MaxRecordSize {
			unpin()
			return rids, fmt.Errorf("storage: record of %d bytes exceeds page size", len(rec))
		}
		if !pinned && h.lastPg >= 0 {
			curID = PageID{File: h.file, Num: h.lastPg}
			pg, err := h.pool.Fetch(curID)
			if err != nil {
				return rids, err
			}
			cur, pinned = pg, true
		}
		var slot int
		var err error
		if pinned {
			slot, err = cur.Insert(rec)
		}
		if !pinned || err != nil {
			// No page yet, or the current one is full: move to a fresh page.
			unpin()
			id, pg, aerr := h.pool.Allocate(h.file)
			if aerr != nil {
				return rids, aerr
			}
			curID, cur, pinned, dirty = id, pg, true, true
			h.lastPg = id.Num
			slot, err = cur.Insert(rec)
			if err != nil {
				unpin()
				return rids, err
			}
		}
		dirty = true
		h.records.Add(1)
		rids = append(rids, RecordID{Page: curID, Slot: slot})
	}
	unpin()
	return rids, nil
}

// Get copies the record bytes at rid.
func (h *HeapFile) Get(rid RecordID) ([]byte, error) {
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(rid.Page, false)
	rec, err := pg.Get(rid.Slot)
	if err != nil {
		return nil, err
	}
	if rec == nil {
		return nil, nil
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// Update overwrites a record in place (same length).
func (h *HeapFile) Update(rid RecordID, rec []byte) error {
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	err = pg.Update(rid.Slot, rec)
	h.pool.Unpin(rid.Page, err == nil)
	return err
}

// Delete tombstones a record.
func (h *HeapFile) Delete(rid RecordID) error {
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	err = pg.Delete(rid.Slot)
	h.pool.Unpin(rid.Page, err == nil)
	if err == nil {
		h.records.Add(-1)
	}
	return err
}

// batchOp runs one page-level mutation per rid, pinning each page once per
// run of consecutive rids on the same page instead of once per record. It
// returns a copy of each record's prior bytes in rid order — the table layer
// needs the old image to keep secondary indexes consistent. On error the
// returned prefix covers the records already mutated.
func (h *HeapFile) batchOp(rids []RecordID, op func(pg Page, slot, i int) error) ([][]byte, error) {
	old := make([][]byte, 0, len(rids))
	var (
		cur    Page
		curID  PageID
		pinned bool
		dirty  bool
	)
	unpin := func() {
		if pinned {
			h.pool.Unpin(curID, dirty)
			pinned, dirty = false, false
		}
	}
	for i, rid := range rids {
		if !pinned || curID != rid.Page {
			unpin()
			pg, err := h.pool.Fetch(rid.Page)
			if err != nil {
				return old, err
			}
			cur, curID, pinned = pg, rid.Page, true
		}
		rec, err := cur.Get(rid.Slot)
		if err != nil {
			unpin()
			return old, err
		}
		if rec == nil {
			unpin()
			return old, fmt.Errorf("storage: batch op on tombstone %s", rid)
		}
		cp := make([]byte, len(rec))
		copy(cp, rec)
		if err := op(cur, rid.Slot, i); err != nil {
			unpin()
			return old, err
		}
		dirty = true
		old = append(old, cp)
	}
	unpin()
	return old, nil
}

// DeleteBatch tombstones records, pinning each page once per run of
// consecutive same-page rids (the set-oriented maintenance path of the
// in-database search's violated-clause side table). It returns the deleted
// records' prior bytes in rid order.
func (h *HeapFile) DeleteBatch(rids []RecordID) ([][]byte, error) {
	old, err := h.batchOp(rids, func(pg Page, slot, _ int) error {
		return pg.Delete(slot)
	})
	h.records.Add(-int64(len(old)))
	return old, err
}

// ReviveBatch rewrites tombstoned slots with new records (rids and recs
// aligned), pinning each page once per run of consecutive same-page rids.
// It is the insert-surplus path of a free-slot list: space freed by
// earlier deletes is reused instead of appending, so a churning file stays
// bounded at its high-water record count. It returns how many records were
// stored — on error, the prefix before the failing rid.
func (h *HeapFile) ReviveBatch(rids []RecordID, recs [][]byte) (int, error) {
	if len(rids) != len(recs) {
		return 0, fmt.Errorf("storage: ReviveBatch rids %d != recs %d", len(rids), len(recs))
	}
	var (
		cur    Page
		curID  PageID
		pinned bool
		dirty  bool
		n      int
	)
	// The revived prefix counts on every path, including errors: the table
	// layer registers that same prefix in statistics and indexes, and the
	// record counter must agree with the live rows whatever happens.
	defer func() { h.records.Add(int64(n)) }()
	unpin := func() {
		if pinned {
			h.pool.Unpin(curID, dirty)
			pinned, dirty = false, false
		}
	}
	for i, rid := range rids {
		if !pinned || curID != rid.Page {
			unpin()
			pg, err := h.pool.Fetch(rid.Page)
			if err != nil {
				return n, err
			}
			cur, curID, pinned = pg, rid.Page, true
		}
		if err := cur.Revive(rid.Slot, recs[i]); err != nil {
			unpin()
			return n, err
		}
		dirty = true
		n++
	}
	unpin()
	return n, nil
}

// UpdateBatch overwrites records in place (same length per record), pinning
// each page once per run of consecutive same-page rids. recs must be aligned
// with rids. It returns the records' prior bytes in rid order.
func (h *HeapFile) UpdateBatch(rids []RecordID, recs [][]byte) ([][]byte, error) {
	if len(rids) != len(recs) {
		return nil, fmt.Errorf("storage: UpdateBatch rids %d != recs %d", len(rids), len(recs))
	}
	return h.batchOp(rids, func(pg Page, slot, i int) error {
		return pg.Update(slot, recs[i])
	})
}

// Scan calls fn for every live record in file order. The byte slice passed
// to fn aliases the page buffer and is only valid during the call. Returning
// a non-nil error stops the scan (ErrStopScan stops without error).
//
// A Scan of a file larger than a quarter of the buffer pool declares
// itself as a sequential scan: pages it fetches land on the pool's scan
// list and are recycled before any point-read frame, so concurrent big
// scans cannot evict each other's (or a point reader's) working set. Scans
// of smaller files keep plain recency placement — a repeatedly re-scanned
// small table (the violated-clause side table, a partition's clause table)
// is a hot working set, not a stream, and must stay cacheable.
func (h *HeapFile) Scan(fn func(rid RecordID, rec []byte) error) error {
	if int(h.NumPages()) > h.pool.Capacity()/4 {
		sc := h.pool.BeginScan()
		defer h.pool.EndScan(sc)
		return h.ScanWith(sc, fn)
	}
	return h.ScanWith(nil, fn)
}

// ScanWith is Scan through a caller-owned cursor, so one pass's page fetch
// accounting is observable (and a cursor can be reused across passes to
// accumulate). A nil cursor runs the scan with plain point fetches — the
// pre-scan-resistant LRU behaviour, kept as the lesion baseline the
// searchthru benchmark measures against.
func (h *HeapFile) ScanWith(sc *ScanCursor, fn func(rid RecordID, rec []byte) error) error {
	h.scans.Add(1)
	n := h.pool.disk.NumPages(h.file)
	for num := int32(0); num < n; num++ {
		id := PageID{File: h.file, Num: num}
		pg, err := h.pool.FetchScan(id, sc)
		if err != nil {
			return err
		}
		slots := pg.NumRecords()
		for s := 0; s < slots; s++ {
			rec, err := pg.Get(s)
			if err != nil {
				h.pool.Unpin(id, false)
				return err
			}
			if rec == nil {
				continue // tombstone
			}
			if err := fn(RecordID{Page: id, Slot: s}, rec); err != nil {
				h.pool.Unpin(id, false)
				if err == ErrStopScan {
					return nil
				}
				return err
			}
		}
		h.pool.Unpin(id, false)
	}
	return nil
}

// ErrStopScan halts Scan early without reporting an error.
var ErrStopScan = fmt.Errorf("storage: stop scan")
