package storage

import (
	"fmt"
)

// RecordID locates a record: page and slot.
type RecordID struct {
	Page PageID
	Slot int
}

func (r RecordID) String() string { return fmt.Sprintf("%s/%d", r.Page, r.Slot) }

// HeapFile is an unordered collection of records in slotted pages, the
// storage for one table. Inserts append to the last page, allocating as
// needed; scans walk pages in order through the buffer pool.
type HeapFile struct {
	pool    *BufferPool
	file    int32
	lastPg  int32 // page currently receiving inserts, -1 if none
	records int64
}

// NewHeapFile creates (or reopens) the heap file with the given file id.
func NewHeapFile(pool *BufferPool, file int32) *HeapFile {
	h := &HeapFile{pool: pool, file: file, lastPg: -1}
	if n := pool.disk.NumPages(file); n > 0 {
		h.lastPg = n - 1
		// Recount records for reopened files.
		_ = h.Scan(func(RecordID, []byte) error {
			h.records++
			return nil
		})
	}
	return h
}

// FileID returns the underlying file id.
func (h *HeapFile) FileID() int32 { return h.file }

// NumRecords returns the live record count.
func (h *HeapFile) NumRecords() int64 { return h.records }

// NumPages returns the number of allocated pages.
func (h *HeapFile) NumPages() int32 { return h.pool.disk.NumPages(h.file) }

// Insert appends a record and returns its id.
func (h *HeapFile) Insert(rec []byte) (RecordID, error) {
	if len(rec) > MaxRecordSize {
		return RecordID{}, fmt.Errorf("storage: record of %d bytes exceeds page size", len(rec))
	}
	if h.lastPg >= 0 {
		id := PageID{File: h.file, Num: h.lastPg}
		pg, err := h.pool.Fetch(id)
		if err != nil {
			return RecordID{}, err
		}
		if slot, err := pg.Insert(rec); err == nil {
			h.pool.Unpin(id, true)
			h.records++
			return RecordID{Page: id, Slot: slot}, nil
		}
		h.pool.Unpin(id, false)
	}
	id, pg, err := h.pool.Allocate(h.file)
	if err != nil {
		return RecordID{}, err
	}
	slot, err := pg.Insert(rec)
	h.pool.Unpin(id, true)
	if err != nil {
		return RecordID{}, err
	}
	h.lastPg = id.Num
	h.records++
	return RecordID{Page: id, Slot: slot}, nil
}

// Get copies the record bytes at rid.
func (h *HeapFile) Get(rid RecordID) ([]byte, error) {
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(rid.Page, false)
	rec, err := pg.Get(rid.Slot)
	if err != nil {
		return nil, err
	}
	if rec == nil {
		return nil, nil
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// Update overwrites a record in place (same length).
func (h *HeapFile) Update(rid RecordID, rec []byte) error {
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	err = pg.Update(rid.Slot, rec)
	h.pool.Unpin(rid.Page, err == nil)
	return err
}

// Delete tombstones a record.
func (h *HeapFile) Delete(rid RecordID) error {
	pg, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	err = pg.Delete(rid.Slot)
	h.pool.Unpin(rid.Page, err == nil)
	if err == nil {
		h.records--
	}
	return err
}

// Scan calls fn for every live record in file order. The byte slice passed
// to fn aliases the page buffer and is only valid during the call. Returning
// a non-nil error stops the scan (ErrStopScan stops without error).
func (h *HeapFile) Scan(fn func(rid RecordID, rec []byte) error) error {
	n := h.pool.disk.NumPages(h.file)
	for num := int32(0); num < n; num++ {
		id := PageID{File: h.file, Num: num}
		pg, err := h.pool.Fetch(id)
		if err != nil {
			return err
		}
		slots := pg.NumRecords()
		for s := 0; s < slots; s++ {
			rec, err := pg.Get(s)
			if err != nil {
				h.pool.Unpin(id, false)
				return err
			}
			if rec == nil {
				continue // tombstone
			}
			if err := fn(RecordID{Page: id, Slot: s}, rec); err != nil {
				h.pool.Unpin(id, false)
				if err == ErrStopScan {
					return nil
				}
				return err
			}
		}
		h.pool.Unpin(id, false)
	}
	return nil
}

// ErrStopScan halts Scan early without reporting an error.
var ErrStopScan = fmt.Errorf("storage: stop scan")
