package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// BufferPool caches pages in memory with an LRU eviction policy and pin
// counts. All heap-file access goes through the pool, so the pool's hit/miss
// counters measure the "physical" I/O an operation causes — the quantity the
// paper's hybrid-architecture argument (Section 3.2) is about.
type BufferPool struct {
	mu       sync.Mutex
	disk     Disk
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // *frame, front = most recent

	hits   int64
	misses int64
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element
}

// NewBufferPool creates a pool holding up to capacity pages.
func NewBufferPool(disk Disk, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
	}
}

// PoolStats reports cache behaviour.
type PoolStats struct {
	Hits   int64
	Misses int64
}

// Stats returns cumulative hit/miss counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return PoolStats{Hits: bp.hits, Misses: bp.misses}
}

// ResetStats zeroes the counters.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.hits, bp.misses = 0, 0
}

// Fetch pins the page and returns its in-memory bytes. Callers must Unpin
// (with dirty=true if they wrote to the bytes).
func (bp *BufferPool) Fetch(id PageID) (Page, error) {
	bp.mu.Lock()
	if f, ok := bp.frames[id]; ok {
		f.pins++
		bp.hits++
		bp.lru.MoveToFront(f.elem)
		bp.mu.Unlock()
		return Page{Data: f.data}, nil
	}
	bp.misses++
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		bp.mu.Unlock()
		return Page{}, err
	}
	// Read outside the lock would race with eviction; the read is cheap for
	// MemDisk and correctness matters more here than concurrency.
	if err := bp.disk.ReadPage(id, f.data); err != nil {
		bp.evictFrameLocked(f)
		bp.mu.Unlock()
		return Page{}, err
	}
	f.pins = 1
	bp.mu.Unlock()
	return Page{Data: f.data}, nil
}

// Allocate creates a fresh page in the file, pinned and initialized as an
// empty slotted page.
func (bp *BufferPool) Allocate(file int32) (PageID, Page, error) {
	id, err := bp.disk.AllocatePage(file)
	if err != nil {
		return PageID{}, Page{}, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return PageID{}, Page{}, err
	}
	f.pins = 1
	f.dirty = true
	p := InitPage(f.data)
	return id, p, nil
}

// Unpin releases a pin. dirty marks the page as modified so eviction writes
// it back.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return
	}
	if dirty {
		f.dirty = true
	}
	if f.pins > 0 {
		f.pins--
	}
}

// FlushAll writes every dirty page back to disk (keeps them cached).
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if f.dirty {
			if err := bp.disk.WritePage(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// allocFrameLocked finds a free frame, evicting the LRU unpinned page if the
// pool is full.
func (bp *BufferPool) allocFrameLocked(id PageID) (*frame, error) {
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictLRULocked(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, data: make([]byte, PageSize)}
	f.elem = bp.lru.PushFront(f)
	bp.frames[id] = f
	return f, nil
}

func (bp *BufferPool) evictLRULocked() error {
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := bp.disk.WritePage(f.id, f.data); err != nil {
				return err
			}
		}
		bp.evictFrameLocked(f)
		return nil
	}
	return fmt.Errorf("storage: buffer pool exhausted (%d pages, all pinned)", bp.capacity)
}

func (bp *BufferPool) evictFrameLocked(f *frame) {
	bp.lru.Remove(f.elem)
	delete(bp.frames, f.id)
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// CachedPages returns the number of resident pages.
func (bp *BufferPool) CachedPages() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
