package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// BufferPool caches pages in memory with a scan-resistant replacement
// policy and pin counts. All heap-file access goes through the pool, so the
// pool's hit/miss counters measure the "physical" I/O an operation causes —
// the quantity the paper's hybrid-architecture argument (Section 3.2) is
// about.
//
// Replacement is scan-resistant: frames are kept on two recency lists. Point
// reads (Fetch) live on the main list and are evicted least-recently-used
// last; pages fetched through a declared scan cursor (BeginScan +
// FetchScan) live on a separate scan list that is always preferred for
// eviction. A sequential scan therefore recycles its own frames instead of
// flooding the pool, and concurrent scans cannot evict a point reader's
// working set — the classic LRU failure mode under mixed workloads. A point
// read that hits a scan-fetched page promotes it to the main list (it has
// proven itself part of the working set); a scan that hits a point page
// leaves its position untouched. Within each list, recency order is exactly
// the old LRU order, so pure-scan and pure-point workloads behave as
// before.
//
// The pool is safe for concurrent use. Metadata (frame map, recency lists,
// pin counts) is guarded by mu; disk reads happen OUTSIDE the lock on
// frames that are already pinned, so a slow read (e.g. a latency-injected
// disk) never serializes unrelated fetches. Dirty-page write-back during
// eviction also happens outside the lock, on a pin-protected victim: the
// guard pin keeps the frame resident during the write, and the victim is
// only dropped if it is still unpinned and clean afterwards (a page
// re-dirtied mid-write stays cached and is written again later). Eviction
// skips pinned frames, which is what makes both unlocked transfers safe.
// Page DATA is protected by the pin protocol, not the pool lock: concurrent
// readers of a pinned page are safe; mutating page bytes while another
// goroutine reads the same page requires external coordination (the
// engine's DML paths are single-writer per table).
type BufferPool struct {
	mu       sync.RWMutex
	disk     Disk
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // *frame point-read frames, front = most recent
	scanLRU  *list.List // *frame scan-fetched frames, evicted before lru

	hits       atomic.Int64
	misses     atomic.Int64
	scanHits   atomic.Int64 // subset of hits through a scan cursor
	scanMisses atomic.Int64 // subset of misses through a scan cursor
	scansOpen  atomic.Int64 // gauge: BeginScan minus EndScan
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element
	// onScan reports which recency list elem belongs to: the scan list
	// (preferred eviction victims) or the main point-read list.
	onScan bool
	// ready is closed once data holds the page contents (or loadErr is set).
	// Fetches that find the frame already mapped wait on it without holding
	// the pool lock, so one slow disk read never blocks the whole pool.
	ready   chan struct{}
	loadErr error
	// wb is non-nil while an evictor writes this frame back outside the
	// lock (closed when the write completes). Evictors that find every
	// frame pinned wait on an in-flight write-back instead of reporting
	// pool exhaustion: the guard pin is transient by construction.
	wb chan struct{}
}

// readyClosed is the pre-closed channel used for frames born ready
// (Allocate) so every frame has a non-nil ready channel.
var readyClosed = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// NewBufferPool creates a pool holding up to capacity pages.
func NewBufferPool(disk Disk, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
		scanLRU:  list.New(),
	}
}

// ScanCursor declares one sequential scan to the pool: pages fetched
// through it land on the scan recency list (recycled before any point-read
// frame) and are accounted separately, so scan-induced churn never skews a
// point workload's counters. A cursor's own counters record each page the
// scan fetched exactly once per fetch — a page a concurrent scan evicted
// and this scan reloaded is one fetch, one miss, never double-counted. A
// cursor may be reused across passes; its counters then accumulate. The
// counter accessors are safe for concurrent use, but one cursor must not
// serve two concurrent scans (each scan gets its own).
type ScanCursor struct {
	pages atomic.Int64
	hits  atomic.Int64
}

// Pages returns how many page fetches went through the cursor.
func (sc *ScanCursor) Pages() int64 { return sc.pages.Load() }

// Hits returns how many of the cursor's fetches were already resident.
func (sc *ScanCursor) Hits() int64 { return sc.hits.Load() }

// Misses returns how many of the cursor's fetches read from disk.
func (sc *ScanCursor) Misses() int64 { return sc.pages.Load() - sc.hits.Load() }

// BeginScan declares a sequential scan. Pass the cursor to FetchScan for
// every page of the scan and call EndScan when the pass is done.
func (bp *BufferPool) BeginScan() *ScanCursor {
	bp.scansOpen.Add(1)
	return &ScanCursor{}
}

// EndScan closes a scan cursor. Frames the scan fetched stay cached (on the
// scan list, first in line for eviction) so a following scan of the same
// pages can still hit them.
func (bp *BufferPool) EndScan(sc *ScanCursor) {
	if sc != nil {
		bp.scansOpen.Add(-1)
	}
}

// PoolStats reports cache behaviour. Hits/Misses count every fetch exactly
// once; ScanHits/ScanMisses are the subset that went through a declared
// scan cursor, so point-read behaviour is Hits-ScanHits / Misses-ScanMisses
// without any double counting of pages a scan evicted and a point read (or
// another scan) later reloaded.
type PoolStats struct {
	Hits       int64
	Misses     int64
	ScanHits   int64
	ScanMisses int64
}

// PointHits returns the hits not attributable to a declared scan.
func (s PoolStats) PointHits() int64 { return s.Hits - s.ScanHits }

// PointMisses returns the misses not attributable to a declared scan.
func (s PoolStats) PointMisses() int64 { return s.Misses - s.ScanMisses }

// Stats returns cumulative hit/miss counters.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits:       bp.hits.Load(),
		Misses:     bp.misses.Load(),
		ScanHits:   bp.scanHits.Load(),
		ScanMisses: bp.scanMisses.Load(),
	}
}

// ResetStats zeroes the counters.
func (bp *BufferPool) ResetStats() {
	bp.hits.Store(0)
	bp.misses.Store(0)
	bp.scanHits.Store(0)
	bp.scanMisses.Store(0)
}

// Fetch pins the page and returns its in-memory bytes. Callers must Unpin
// (with dirty=true if they wrote to the bytes).
func (bp *BufferPool) Fetch(id PageID) (Page, error) {
	return bp.fetch(id, nil)
}

// FetchScan is Fetch through a scan cursor: the page is pinned exactly as
// by Fetch, but a newly loaded frame joins the scan recency list (first in
// line for eviction) and the fetch is accounted to the cursor. A nil cursor
// degrades to a plain Fetch — the pre-scan-resistant behaviour, kept as the
// lesion baseline for benchmarks.
func (bp *BufferPool) FetchScan(id PageID, sc *ScanCursor) (Page, error) {
	return bp.fetch(id, sc)
}

func (bp *BufferPool) fetch(id PageID, sc *ScanCursor) (Page, error) {
	scan := sc != nil
	bp.mu.Lock()
	var f *frame
	for {
		if hit, ok := bp.frames[id]; ok {
			hit.pins++
			if hit.onScan {
				// Any re-reference while resident — point read or a later
				// scan pass — proves the page belongs to a recurring working
				// set, not a stream (a streaming scan never revisits a page
				// it loaded): graduate it off the scan list so scans cannot
				// recycle it.
				bp.scanLRU.Remove(hit.elem)
				hit.elem = bp.lru.PushFront(hit)
				hit.onScan = false
			} else {
				bp.lru.MoveToFront(hit.elem)
			}
			bp.mu.Unlock()
			bp.hits.Add(1)
			if scan {
				sc.pages.Add(1)
				sc.hits.Add(1)
				bp.scanHits.Add(1)
			}
			// Another fetcher may still be reading the page in; wait for it
			// without holding the pool lock. The pin taken above keeps the
			// frame resident in the meantime.
			<-hit.ready
			if hit.loadErr != nil {
				err := hit.loadErr
				bp.releaseFailed(hit)
				return Page{}, err
			}
			return Page{Data: hit.data}, nil
		}
		if len(bp.frames) < bp.capacity {
			f = bp.installFrameLocked(id, scan)
			break
		}
		// Evicting a dirty victim releases the pool lock during the disk
		// write, so after eviction the map must be re-checked: a concurrent
		// Fetch may have installed this id (or consumed the freed slot).
		if err := bp.evictOneLocked(); err != nil {
			bp.mu.Unlock()
			return Page{}, err
		}
	}
	f.pins = 1
	f.ready = make(chan struct{})
	bp.mu.Unlock()
	bp.misses.Add(1)
	if scan {
		sc.pages.Add(1)
		bp.scanMisses.Add(1)
	}
	// The frame is pinned, so eviction cannot reclaim it (and its data
	// cannot be reused) while the read is in flight — the pool lock is not
	// needed here, and concurrent fetches of other pages proceed.
	f.loadErr = bp.disk.ReadPage(id, f.data)
	close(f.ready)
	if f.loadErr != nil {
		err := f.loadErr
		bp.releaseFailed(f)
		return Page{}, err
	}
	return Page{Data: f.data}, nil
}

// releaseFailed unpins a frame whose load failed and evicts it once the last
// pinner lets go, so a transient read error is not cached forever.
func (bp *BufferPool) releaseFailed(f *frame) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f.pins > 0 {
		f.pins--
	}
	if f.pins == 0 {
		if cur, ok := bp.frames[f.id]; ok && cur == f {
			bp.evictFrameLocked(f)
		}
	}
}

// Allocate creates a fresh page in the file, pinned and initialized as an
// empty slotted page.
func (bp *BufferPool) Allocate(file int32) (PageID, Page, error) {
	id, err := bp.disk.AllocatePage(file)
	if err != nil {
		return PageID{}, Page{}, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return PageID{}, Page{}, err
	}
	f.pins = 1
	f.dirty = true
	f.ready = readyClosed
	p := InitPage(f.data)
	return id, p, nil
}

// Unpin releases a pin. dirty marks the page as modified so eviction writes
// it back.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return
	}
	if dirty {
		f.dirty = true
	}
	if f.pins > 0 {
		f.pins--
	}
}

// FlushAll writes every dirty page back to disk (keeps them cached). A
// frame with an in-flight eviction write-back is waited on first: the
// evictor writes a pre-mutation snapshot outside the lock, and letting it
// land before flushing the newer bytes keeps the two writes from reaching
// the disk in the wrong order (stale bytes persisting under a frame marked
// clean).
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for {
		var wb chan struct{}
		for _, f := range bp.frames {
			if f.wb != nil {
				wb = f.wb
				break
			}
			if f.dirty {
				if err := bp.disk.WritePage(f.id, f.data); err != nil {
					return err
				}
				f.dirty = false
			}
		}
		if wb == nil {
			return nil
		}
		// Wait without the lock, then restart: the frame map may have
		// changed (and pages flushed before the wait stay clean, so the
		// rescan only revisits what still needs work).
		bp.mu.Unlock()
		<-wb
		bp.mu.Lock()
	}
}

// DiscardFile drops every cached frame of the file without writing dirty
// pages back — the pool-side half of dropping a table and reclaiming its
// storage. In-flight eviction write-backs on the file are waited out first
// so no stale write can land after the caller truncates the file. The
// caller must guarantee the file is quiescent; a frame still pinned by a
// concurrent user is an error and leaves that frame (and the file's
// storage) untouched.
func (bp *BufferPool) DiscardFile(file int32) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for {
		var wb chan struct{}
		for _, f := range bp.frames {
			if f.id.File == file && f.wb != nil {
				wb = f.wb
				break
			}
		}
		if wb == nil {
			break
		}
		bp.mu.Unlock()
		<-wb
		bp.mu.Lock()
	}
	var victims []*frame
	for _, f := range bp.frames {
		if f.id.File != file {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("storage: discard of file %d: page %s still pinned", file, f.id)
		}
		victims = append(victims, f)
	}
	for _, f := range victims {
		bp.evictFrameLocked(f)
	}
	return nil
}

// allocFrameLocked finds a free frame, evicting unpinned pages until a slot
// is free. The capacity check loops because a dirty eviction releases the
// pool lock during its disk write, and concurrent fetchers may refill the
// pool in that window. Safe only for ids no concurrent fetcher can install
// (Allocate's fresh page ids); Fetch re-checks its id itself.
func (bp *BufferPool) allocFrameLocked(id PageID) (*frame, error) {
	for len(bp.frames) >= bp.capacity {
		if err := bp.evictOneLocked(); err != nil {
			return nil, err
		}
	}
	return bp.installFrameLocked(id, false), nil
}

// installFrameLocked adds a fresh frame for id at the most-recent end of
// the point-read list, or of the scan list for scan-cursor fetches.
func (bp *BufferPool) installFrameLocked(id PageID, scan bool) *frame {
	f := &frame{id: id, data: make([]byte, PageSize), onScan: scan}
	if scan {
		f.elem = bp.scanLRU.PushFront(f)
	} else {
		f.elem = bp.lru.PushFront(f)
	}
	bp.frames[id] = f
	return f
}

// victimLocked returns the least-recently-used unpinned frame of l, nil if
// every frame is pinned.
func victimLocked(l *list.List) *frame {
	for e := l.Back(); e != nil; e = e.Prev() {
		if f := e.Value.(*frame); f.pins == 0 {
			return f
		}
	}
	return nil
}

// evictOneLocked frees one frame. Scan-fetched frames are preferred victims
// (oldest first), so streaming scans recycle their own frames and the
// point-read working set survives them; only when no scan frame is
// evictable does the point list give up its least-recently-used page. Clean
// victims are dropped under the lock; a dirty victim is written back
// OUTSIDE the pool lock on a pin-protected frame, mirroring the read path:
// the guard pin keeps the frame (and its data buffer) alive and
// un-evictable during the write, so one slow write-back never serializes
// unrelated fetches. Called and returns with bp.mu held, but may release it
// during disk writes.
func (bp *BufferPool) evictOneLocked() error {
	for {
		victim := victimLocked(bp.scanLRU)
		if victim == nil {
			victim = victimLocked(bp.lru)
		}
		if victim == nil {
			// Every frame is pinned. If one of those pins is a write-back
			// guard, the frame frees up as soon as the write finishes —
			// wait for it and rescan rather than failing a transient.
			var wb chan struct{}
			for _, f := range bp.frames {
				if f.wb != nil {
					wb = f.wb
					break
				}
			}
			if wb == nil {
				return fmt.Errorf("storage: buffer pool exhausted (%d pages, all pinned)", bp.capacity)
			}
			bp.mu.Unlock()
			<-wb
			bp.mu.Lock()
			continue
		}
		if !victim.dirty {
			bp.evictFrameLocked(victim)
			return nil
		}
		victim.pins++ // guard pin: blocks eviction and data reuse
		victim.dirty = false
		victim.wb = make(chan struct{})
		// Snapshot the bytes under the lock: pins were 0 when the victim was
		// chosen, so no mutator is active and the image is consistent. The
		// slow disk write then works from the snapshot, because a client may
		// re-pin the frame and mutate its live bytes mid-write (that client
		// re-dirties the frame, so the newer bytes are written later).
		snap := make([]byte, len(victim.data))
		copy(snap, victim.data)
		bp.mu.Unlock()
		werr := bp.disk.WritePage(victim.id, snap)
		bp.mu.Lock()
		close(victim.wb)
		victim.wb = nil
		victim.pins--
		if werr != nil {
			victim.dirty = true
			return werr
		}
		// The victim may have been re-pinned or re-dirtied while the lock
		// was released; evict only if it is still idle, clean and resident.
		if victim.pins == 0 && !victim.dirty {
			if cur, ok := bp.frames[victim.id]; ok && cur == victim {
				bp.evictFrameLocked(victim)
				return nil
			}
		}
		// Otherwise its pages are durably written anyway; pick another
		// victim (the recency lists may have changed while unlocked).
	}
}

func (bp *BufferPool) evictFrameLocked(f *frame) {
	if f.onScan {
		bp.scanLRU.Remove(f.elem)
	} else {
		bp.lru.Remove(f.elem)
	}
	delete(bp.frames, f.id)
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// CachedPages returns the number of resident pages.
func (bp *BufferPool) CachedPages() int {
	bp.mu.RLock()
	defer bp.mu.RUnlock()
	return len(bp.frames)
}
