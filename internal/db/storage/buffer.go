package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// BufferPool caches pages in memory with an LRU eviction policy and pin
// counts. All heap-file access goes through the pool, so the pool's hit/miss
// counters measure the "physical" I/O an operation causes — the quantity the
// paper's hybrid-architecture argument (Section 3.2) is about.
//
// The pool is safe for concurrent use. Metadata (frame map, LRU list, pin
// counts) is guarded by mu; disk reads happen OUTSIDE the lock on frames that
// are already pinned, so a slow read (e.g. a latency-injected disk) never
// serializes unrelated fetches. Dirty-page write-back during eviction also
// happens outside the lock, on a pin-protected victim: the guard pin keeps
// the frame resident during the write, and the victim is only dropped if it
// is still unpinned and clean afterwards (a page re-dirtied mid-write stays
// cached and is written again later). Eviction skips pinned frames, which is
// what makes both unlocked transfers safe. Page DATA is protected by the pin
// protocol, not the pool lock: concurrent readers of a pinned page are safe;
// mutating page bytes while another goroutine reads the same page requires
// external coordination (the engine's DML paths are single-writer per table).
type BufferPool struct {
	mu       sync.RWMutex
	disk     Disk
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // *frame, front = most recent

	hits   atomic.Int64
	misses atomic.Int64
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element
	// ready is closed once data holds the page contents (or loadErr is set).
	// Fetches that find the frame already mapped wait on it without holding
	// the pool lock, so one slow disk read never blocks the whole pool.
	ready   chan struct{}
	loadErr error
	// wb is non-nil while an evictor writes this frame back outside the
	// lock (closed when the write completes). Evictors that find every
	// frame pinned wait on an in-flight write-back instead of reporting
	// pool exhaustion: the guard pin is transient by construction.
	wb chan struct{}
}

// readyClosed is the pre-closed channel used for frames born ready
// (Allocate) so every frame has a non-nil ready channel.
var readyClosed = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// NewBufferPool creates a pool holding up to capacity pages.
func NewBufferPool(disk Disk, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
	}
}

// PoolStats reports cache behaviour.
type PoolStats struct {
	Hits   int64
	Misses int64
}

// Stats returns cumulative hit/miss counters.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{Hits: bp.hits.Load(), Misses: bp.misses.Load()}
}

// ResetStats zeroes the counters.
func (bp *BufferPool) ResetStats() {
	bp.hits.Store(0)
	bp.misses.Store(0)
}

// Fetch pins the page and returns its in-memory bytes. Callers must Unpin
// (with dirty=true if they wrote to the bytes).
func (bp *BufferPool) Fetch(id PageID) (Page, error) {
	bp.mu.Lock()
	var f *frame
	for {
		if hit, ok := bp.frames[id]; ok {
			hit.pins++
			bp.lru.MoveToFront(hit.elem)
			bp.mu.Unlock()
			bp.hits.Add(1)
			// Another fetcher may still be reading the page in; wait for it
			// without holding the pool lock. The pin taken above keeps the
			// frame resident in the meantime.
			<-hit.ready
			if hit.loadErr != nil {
				err := hit.loadErr
				bp.releaseFailed(hit)
				return Page{}, err
			}
			return Page{Data: hit.data}, nil
		}
		if len(bp.frames) < bp.capacity {
			f = bp.installFrameLocked(id)
			break
		}
		// Evicting a dirty victim releases the pool lock during the disk
		// write, so after eviction the map must be re-checked: a concurrent
		// Fetch may have installed this id (or consumed the freed slot).
		if err := bp.evictOneLocked(); err != nil {
			bp.mu.Unlock()
			return Page{}, err
		}
	}
	f.pins = 1
	f.ready = make(chan struct{})
	bp.mu.Unlock()
	bp.misses.Add(1)
	// The frame is pinned, so eviction cannot reclaim it (and its data
	// cannot be reused) while the read is in flight — the pool lock is not
	// needed here, and concurrent fetches of other pages proceed.
	f.loadErr = bp.disk.ReadPage(id, f.data)
	close(f.ready)
	if f.loadErr != nil {
		err := f.loadErr
		bp.releaseFailed(f)
		return Page{}, err
	}
	return Page{Data: f.data}, nil
}

// releaseFailed unpins a frame whose load failed and evicts it once the last
// pinner lets go, so a transient read error is not cached forever.
func (bp *BufferPool) releaseFailed(f *frame) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f.pins > 0 {
		f.pins--
	}
	if f.pins == 0 {
		if cur, ok := bp.frames[f.id]; ok && cur == f {
			bp.evictFrameLocked(f)
		}
	}
}

// Allocate creates a fresh page in the file, pinned and initialized as an
// empty slotted page.
func (bp *BufferPool) Allocate(file int32) (PageID, Page, error) {
	id, err := bp.disk.AllocatePage(file)
	if err != nil {
		return PageID{}, Page{}, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return PageID{}, Page{}, err
	}
	f.pins = 1
	f.dirty = true
	f.ready = readyClosed
	p := InitPage(f.data)
	return id, p, nil
}

// Unpin releases a pin. dirty marks the page as modified so eviction writes
// it back.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return
	}
	if dirty {
		f.dirty = true
	}
	if f.pins > 0 {
		f.pins--
	}
}

// FlushAll writes every dirty page back to disk (keeps them cached). A
// frame with an in-flight eviction write-back is waited on first: the
// evictor writes a pre-mutation snapshot outside the lock, and letting it
// land before flushing the newer bytes keeps the two writes from reaching
// the disk in the wrong order (stale bytes persisting under a frame marked
// clean).
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for {
		var wb chan struct{}
		for _, f := range bp.frames {
			if f.wb != nil {
				wb = f.wb
				break
			}
			if f.dirty {
				if err := bp.disk.WritePage(f.id, f.data); err != nil {
					return err
				}
				f.dirty = false
			}
		}
		if wb == nil {
			return nil
		}
		// Wait without the lock, then restart: the frame map may have
		// changed (and pages flushed before the wait stay clean, so the
		// rescan only revisits what still needs work).
		bp.mu.Unlock()
		<-wb
		bp.mu.Lock()
	}
}

// DiscardFile drops every cached frame of the file without writing dirty
// pages back — the pool-side half of dropping a table and reclaiming its
// storage. In-flight eviction write-backs on the file are waited out first
// so no stale write can land after the caller truncates the file. The
// caller must guarantee the file is quiescent; a frame still pinned by a
// concurrent user is an error and leaves that frame (and the file's
// storage) untouched.
func (bp *BufferPool) DiscardFile(file int32) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for {
		var wb chan struct{}
		for _, f := range bp.frames {
			if f.id.File == file && f.wb != nil {
				wb = f.wb
				break
			}
		}
		if wb == nil {
			break
		}
		bp.mu.Unlock()
		<-wb
		bp.mu.Lock()
	}
	var victims []*frame
	for _, f := range bp.frames {
		if f.id.File != file {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("storage: discard of file %d: page %s still pinned", file, f.id)
		}
		victims = append(victims, f)
	}
	for _, f := range victims {
		bp.evictFrameLocked(f)
	}
	return nil
}

// allocFrameLocked finds a free frame, evicting unpinned pages until a slot
// is free. The capacity check loops because a dirty eviction releases the
// pool lock during its disk write, and concurrent fetchers may refill the
// pool in that window. Safe only for ids no concurrent fetcher can install
// (Allocate's fresh page ids); Fetch re-checks its id itself.
func (bp *BufferPool) allocFrameLocked(id PageID) (*frame, error) {
	for len(bp.frames) >= bp.capacity {
		if err := bp.evictOneLocked(); err != nil {
			return nil, err
		}
	}
	return bp.installFrameLocked(id), nil
}

// installFrameLocked adds a fresh frame for id at the front of the LRU.
func (bp *BufferPool) installFrameLocked(id PageID) *frame {
	f := &frame{id: id, data: make([]byte, PageSize)}
	f.elem = bp.lru.PushFront(f)
	bp.frames[id] = f
	return f
}

// evictOneLocked frees one frame. Clean victims are dropped under the lock;
// a dirty victim is written back OUTSIDE the pool lock on a pin-protected
// frame, mirroring the read path: the guard pin keeps the frame (and its
// data buffer) alive and un-evictable during the write, so one slow
// write-back never serializes unrelated fetches. Called and returns with
// bp.mu held, but may release it during disk writes.
func (bp *BufferPool) evictOneLocked() error {
	for {
		var victim *frame
		for e := bp.lru.Back(); e != nil; e = e.Prev() {
			f := e.Value.(*frame)
			if f.pins == 0 {
				victim = f
				break
			}
		}
		if victim == nil {
			// Every frame is pinned. If one of those pins is a write-back
			// guard, the frame frees up as soon as the write finishes —
			// wait for it and rescan rather than failing a transient.
			var wb chan struct{}
			for _, f := range bp.frames {
				if f.wb != nil {
					wb = f.wb
					break
				}
			}
			if wb == nil {
				return fmt.Errorf("storage: buffer pool exhausted (%d pages, all pinned)", bp.capacity)
			}
			bp.mu.Unlock()
			<-wb
			bp.mu.Lock()
			continue
		}
		if !victim.dirty {
			bp.evictFrameLocked(victim)
			return nil
		}
		victim.pins++ // guard pin: blocks eviction and data reuse
		victim.dirty = false
		victim.wb = make(chan struct{})
		// Snapshot the bytes under the lock: pins were 0 when the victim was
		// chosen, so no mutator is active and the image is consistent. The
		// slow disk write then works from the snapshot, because a client may
		// re-pin the frame and mutate its live bytes mid-write (that client
		// re-dirties the frame, so the newer bytes are written later).
		snap := make([]byte, len(victim.data))
		copy(snap, victim.data)
		bp.mu.Unlock()
		werr := bp.disk.WritePage(victim.id, snap)
		bp.mu.Lock()
		close(victim.wb)
		victim.wb = nil
		victim.pins--
		if werr != nil {
			victim.dirty = true
			return werr
		}
		// The victim may have been re-pinned or re-dirtied while the lock
		// was released; evict only if it is still idle, clean and resident.
		if victim.pins == 0 && !victim.dirty {
			if cur, ok := bp.frames[victim.id]; ok && cur == victim {
				bp.evictFrameLocked(victim)
				return nil
			}
		}
		// Otherwise its pages are durably written anyway; pick another
		// victim (the LRU list may have changed while unlocked).
	}
}

func (bp *BufferPool) evictFrameLocked(f *frame) {
	bp.lru.Remove(f.elem)
	delete(bp.frames, f.id)
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// CachedPages returns the number of resident pages.
func (bp *BufferPool) CachedPages() int {
	bp.mu.RLock()
	defer bp.mu.RUnlock()
	return len(bp.frames)
}
