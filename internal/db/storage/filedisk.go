package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// FileDisk is a file-backed Disk: each file id maps to one segment file
// (seg_<id>) of page-aligned 8 KB pages, read and written in place. Like
// MemDisk, TruncateFile keeps the segment's storage as free capacity — the
// live-page count drops to zero while the file keeps its high-water-mark
// size — and AllocatePage reuses that capacity before growing the file.
// The free list (the live count per segment, everything beyond it being
// free) is persisted in a small CRC-guarded meta file on Sync and on every
// TruncateFile, so a reopened disk resumes with the same allocation state.
//
// Durability contract: WritePage reaches the OS immediately but is only
// made durable by Sync, which fsyncs every dirty segment plus the meta
// file. Callers who need write-ahead guarantees layer wal.LoggedDisk on
// top, which logs full page images before they are written here.
type FileDisk struct {
	dir string

	mu    sync.Mutex
	segs  map[int32]*segment
	dirty map[int32]bool // segments written since the last Sync

	reads  atomic.Int64
	writes atomic.Int64
	syncs  atomic.Int64
}

type segment struct {
	f    *os.File
	live int32 // pages visible to callers
	cap  int32 // pages physically present (>= live; the tail is the free list)
}

const (
	fdiskMetaMagic = "TFYDISK1"
	segPrefix      = "seg_"
)

// OpenFileDisk opens (creating if needed) a page store rooted at dir. Any
// existing segment files are attached; their live-page counts come from the
// meta file when present and intact, otherwise from the segment size.
func OpenFileDisk(dir string) (*FileDisk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &FileDisk{dir: dir, segs: make(map[int32]*segment), dirty: make(map[int32]bool)}
	live, _ := readDiskMeta(filepath.Join(dir, "meta")) // corrupt/missing meta: sizes rule
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, segPrefix) {
			continue
		}
		id64, err := strconv.ParseInt(strings.TrimPrefix(name, segPrefix), 10, 32)
		if err != nil {
			continue
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR, 0o644)
		if err != nil {
			d.closeLocked()
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			d.closeLocked()
			return nil, err
		}
		seg := &segment{f: f, cap: int32(st.Size() / PageSize)}
		seg.live = seg.cap
		if n, ok := live[int32(id64)]; ok && n <= seg.cap {
			seg.live = n
		}
		d.segs[int32(id64)] = seg
	}
	return d, nil
}

// readDiskMeta parses the free-list meta file: magic, count, (file, live)
// pairs, crc32c trailer. A missing or corrupt file yields an empty map.
func readDiskMeta(path string) (map[int32]int32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(fdiskMetaMagic)+8 || string(raw[:len(fdiskMetaMagic)]) != fdiskMetaMagic {
		return nil, fmt.Errorf("storage: bad meta header")
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("storage: meta crc mismatch")
	}
	body = body[len(fdiskMetaMagic):]
	n := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if len(body) != int(n)*8 {
		return nil, fmt.Errorf("storage: meta length mismatch")
	}
	out := make(map[int32]int32, n)
	for i := 0; i < int(n); i++ {
		file := int32(binary.LittleEndian.Uint32(body[i*8:]))
		out[file] = int32(binary.LittleEndian.Uint32(body[i*8+4:]))
	}
	return out, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// writeMetaLocked persists the live-page counts atomically (tmp + rename).
func (d *FileDisk) writeMetaLocked() error {
	ids := make([]int32, 0, len(d.segs))
	for id := range d.segs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, len(fdiskMetaMagic)+4+len(ids)*8+4)
	buf = append(buf, fdiskMetaMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.segs[id].live))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	tmp := filepath.Join(d.dir, "meta.tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, "meta")); err != nil {
		return err
	}
	return syncDir(d.dir)
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func (d *FileDisk) seg(file int32) *segment {
	s, ok := d.segs[file]
	if !ok {
		s = &segment{}
		d.segs[file] = s
	}
	return s
}

// ReadPage implements Disk.
func (d *FileDisk) ReadPage(id PageID, buf []byte) error {
	d.reads.Add(1)
	d.mu.Lock()
	s, ok := d.segs[id.File]
	if !ok || id.Num >= s.live {
		d.mu.Unlock()
		return fmt.Errorf("storage: read of unallocated page %s", id)
	}
	f := s.f
	d.mu.Unlock()
	_, err := f.ReadAt(buf[:PageSize], int64(id.Num)*PageSize)
	return err
}

// WritePage implements Disk.
func (d *FileDisk) WritePage(id PageID, buf []byte) error {
	d.writes.Add(1)
	d.mu.Lock()
	s, ok := d.segs[id.File]
	if !ok || id.Num >= s.live {
		d.mu.Unlock()
		return fmt.Errorf("storage: write of unallocated page %s", id)
	}
	f := s.f
	d.dirty[id.File] = true
	d.mu.Unlock()
	_, err := f.WriteAt(buf[:PageSize], int64(id.Num)*PageSize)
	return err
}

// openSegLocked makes sure the segment has a backing file.
func (d *FileDisk) openSegLocked(file int32, s *segment) error {
	if s.f != nil {
		return nil
	}
	f, err := os.OpenFile(filepath.Join(d.dir, segPrefix+strconv.Itoa(int(file))), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	s.f = f
	return nil
}

// AllocatePage implements Disk: freed capacity (pages between live and cap)
// is re-zeroed and reused before the segment file grows.
func (d *FileDisk) AllocatePage(file int32) (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.seg(file)
	if err := d.openSegLocked(file, s); err != nil {
		return PageID{}, err
	}
	id := PageID{File: file, Num: s.live}
	if s.live < s.cap {
		// Reused capacity may hold stale bytes; hand out a zeroed page.
		if _, err := s.f.WriteAt(zeroPage[:], int64(id.Num)*PageSize); err != nil {
			return PageID{}, err
		}
	} else {
		if err := s.f.Truncate(int64(s.cap+1) * PageSize); err != nil {
			return PageID{}, err
		}
		s.cap++
	}
	s.live++
	d.dirty[file] = true
	return id, nil
}

var zeroPage [PageSize]byte

// Ensure grows the file to hold at least n live pages (zero-filled), used
// by WAL redo to re-extend segments before replaying page images.
func (d *FileDisk) Ensure(file, n int32) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.seg(file)
	if err := d.openSegLocked(file, s); err != nil {
		return err
	}
	if n > s.cap {
		if err := s.f.Truncate(int64(n) * PageSize); err != nil {
			return err
		}
		s.cap = n
	}
	if n > s.live {
		s.live = n
		d.dirty[file] = true
	}
	return nil
}

// NumPages implements Disk.
func (d *FileDisk) NumPages(file int32) int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.segs[file]; ok {
		return s.live
	}
	return 0
}

// TruncateFile implements Disk. The new (empty) live count is persisted
// immediately so a reopened disk does not resurrect the truncated pages.
func (d *FileDisk) TruncateFile(file int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.segs[file]
	if !ok || s.live == 0 {
		return
	}
	s.live = 0
	_ = d.writeMetaLocked()
}

// Sync makes every write so far durable: dirty segments are fsynced and the
// live-page meta is rewritten and fsynced.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncs.Add(1)
	for id := range d.dirty {
		if s, ok := d.segs[id]; ok && s.f != nil {
			if err := s.f.Sync(); err != nil {
				return err
			}
		}
		delete(d.dirty, id)
	}
	return d.writeMetaLocked()
}

// Reset drops every page of every segment (sizes back to zero, free lists
// cleared) while keeping the directory: the warm-start path rebuilds table
// content logically and wants a blank page store without re-creating files.
func (d *FileDisk) Reset() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.segs {
		if s.f != nil {
			if err := s.f.Truncate(0); err != nil {
				return err
			}
		}
		s.live, s.cap = 0, 0
	}
	return d.writeMetaLocked()
}

// Syncs reports how many Sync calls have run (checkpoint accounting).
func (d *FileDisk) Syncs() int64 { return d.syncs.Load() }

// Stats implements Disk.
func (d *FileDisk) Stats() DiskStats {
	return DiskStats{Reads: d.reads.Load(), Writes: d.writes.Load()}
}

func (d *FileDisk) closeLocked() {
	for _, s := range d.segs {
		if s.f != nil {
			s.f.Close()
			s.f = nil
		}
	}
}

// Close releases the segment file handles (without syncing).
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closeLocked()
	return nil
}
