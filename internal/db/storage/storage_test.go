package storage

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestPageInsertGet(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	recs := [][]byte{[]byte("alpha"), []byte("b"), []byte("gamma-gamma")}
	var slots []int
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Get(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("slot %d = %q, want %q", s, got, recs[i])
		}
	}
	if p.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d", p.NumRecords())
	}
}

func TestPageFull(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	rec := make([]byte, 1000)
	inserted := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			break
		}
		inserted++
	}
	// 8192 - 4 header; each record costs 1000 + 4 slot = 1004.
	if inserted != 8 {
		t.Fatalf("inserted %d 1000-byte records, want 8", inserted)
	}
	if _, err := p.Insert([]byte("x")); err == nil {
		// Tiny records may still fit; just ensure FreeSpace is consistent.
		if p.FreeSpace() < 1 {
			t.Fatal("insert succeeded with no free space")
		}
	}
}

func TestPageUpdateInPlace(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	s, _ := p.Insert([]byte("hello"))
	if err := p.Update(s, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(s)
	if string(got) != "world" {
		t.Fatalf("got %q", got)
	}
	if err := p.Update(s, []byte("too long!")); err == nil {
		t.Fatal("size-changing update not rejected")
	}
}

func TestPageDeleteTombstone(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	s1, _ := p.Insert([]byte("a"))
	s2, _ := p.Insert([]byte("b"))
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(s1)
	if err != nil || got != nil {
		t.Fatalf("deleted slot Get = %q, %v", got, err)
	}
	got, _ = p.Get(s2)
	if string(got) != "b" {
		t.Fatalf("neighbor slot damaged: %q", got)
	}
	if err := p.Update(s1, []byte("a")); err == nil {
		t.Fatal("update of tombstone not rejected")
	}
}

func TestMemDiskReadWrite(t *testing.T) {
	d := NewMemDisk()
	id, err := d.AllocatePage(7)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	copy(buf, "data!")
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := d.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], []byte("data!")) {
		t.Fatalf("read back %q", got[:5])
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := d.ReadPage(PageID{File: 7, Num: 99}, got); err == nil {
		t.Fatal("read of unallocated page not rejected")
	}
}

func TestMemDiskLatency(t *testing.T) {
	d := NewMemDisk()
	id, _ := d.AllocatePage(1)
	d.SetLatency(2 * time.Millisecond)
	buf := make([]byte, PageSize)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := d.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("5 reads with 2ms latency took %v", elapsed)
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 4)
	id, pg, err := bp.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Insert([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, true)

	if _, err := bp.Fetch(id); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, false)
	st := bp.Stats()
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, pg, err := bp.Allocate(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pg.Insert([]byte(fmt.Sprintf("page%d", i))); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(id, true)
		ids = append(ids, id)
	}
	// Page 0 must have been evicted and written back; fetch re-reads it.
	pg, err := bp.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	rec, err := pg.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec) != "page0" {
		t.Fatalf("after eviction got %q", rec)
	}
	bp.Unpin(ids[0], false)
}

func TestBufferPoolAllPinnedFails(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 2)
	for i := 0; i < 2; i++ {
		if _, _, err := bp.Allocate(1); err != nil {
			t.Fatal(err)
		}
		// intentionally not unpinned
	}
	if _, _, err := bp.Allocate(1); err == nil {
		t.Fatal("expected pool exhaustion error")
	}
}

func TestHeapFileInsertScan(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 8)
	h := NewHeapFile(bp, 3)
	want := map[string]bool{}
	for i := 0; i < 5000; i++ {
		rec := []byte(fmt.Sprintf("record-%05d", i))
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
		want[string(rec)] = true
	}
	if h.NumRecords() != 5000 {
		t.Fatalf("NumRecords = %d", h.NumRecords())
	}
	if h.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.NumPages())
	}
	got := 0
	err := h.Scan(func(rid RecordID, rec []byte) error {
		if !want[string(rec)] {
			return fmt.Errorf("unexpected record %q", rec)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5000 {
		t.Fatalf("scanned %d records", got)
	}
}

func TestHeapFileGetUpdateDelete(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 8)
	h := NewHeapFile(bp, 3)
	rid, err := h.Insert([]byte("aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Update(rid, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	rec, err := h.Get(rid)
	if err != nil || string(rec) != "bbbb" {
		t.Fatalf("Get = %q, %v", rec, err)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	rec, err = h.Get(rid)
	if err != nil || rec != nil {
		t.Fatalf("deleted Get = %q, %v", rec, err)
	}
	if h.NumRecords() != 0 {
		t.Fatalf("NumRecords = %d", h.NumRecords())
	}
}

func TestHeapFileScanEarlyStop(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 8)
	h := NewHeapFile(bp, 1)
	for i := 0; i < 100; i++ {
		if _, err := h.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := h.Scan(func(RecordID, []byte) error {
		n++
		if n == 10 {
			return ErrStopScan
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("scanned %d, want 10", n)
	}
}

func TestHeapFileReopenRecount(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 8)
	h := NewHeapFile(bp, 5)
	for i := 0; i < 42; i++ {
		if _, err := h.Insert([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	h2 := NewHeapFile(NewBufferPool(d, 8), 5)
	if h2.NumRecords() != 42 {
		t.Fatalf("reopened NumRecords = %d", h2.NumRecords())
	}
}

func TestPageRoundTripProperty(t *testing.T) {
	f := func(recs [][]byte) bool {
		p := InitPage(make([]byte, PageSize))
		var stored [][]byte
		var slots []int
		for _, r := range recs {
			if len(r) > 512 {
				r = r[:512]
			}
			s, err := p.Insert(r)
			if err != nil {
				break // page full: fine
			}
			stored = append(stored, append([]byte(nil), r...))
			slots = append(slots, s)
		}
		for i, s := range slots {
			got, err := p.Get(s)
			if err != nil || !bytes.Equal(got, stored[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapFileDeleteBatch(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 8)
	h := NewHeapFile(bp, 4)
	var rids []RecordID
	for i := 0; i < 12; i++ {
		rec := make([]byte, 1500) // ~5 records per page
		rec[0] = byte(i)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	old, err := h.DeleteBatch([]RecordID{rids[1], rids[3], rids[8]})
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 3 || old[0][0] != 1 || old[1][0] != 3 || old[2][0] != 8 {
		t.Fatalf("old images = %v", old)
	}
	if h.NumRecords() != 9 {
		t.Fatalf("NumRecords = %d", h.NumRecords())
	}
	for _, rid := range []RecordID{rids[1], rids[3], rids[8]} {
		if rec, err := h.Get(rid); err != nil || rec != nil {
			t.Fatalf("tombstone Get = %q, %v", rec, err)
		}
	}
	// Survivors intact.
	if rec, err := h.Get(rids[2]); err != nil || rec[0] != 2 {
		t.Fatalf("survivor Get = %q, %v", rec, err)
	}
	// Double delete fails and reports the prefix.
	if _, err := h.DeleteBatch([]RecordID{rids[0], rids[1]}); err == nil {
		t.Fatal("batch delete of tombstone accepted")
	}
	if h.NumRecords() != 8 {
		t.Fatalf("NumRecords after partial batch = %d", h.NumRecords())
	}
}

func TestHeapFileUpdateBatch(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 8)
	h := NewHeapFile(bp, 5)
	var rids []RecordID
	for i := 0; i < 6; i++ {
		rid, err := h.Insert([]byte{byte(i), 0, 0})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	old, err := h.UpdateBatch([]RecordID{rids[0], rids[4]}, [][]byte{{9, 9, 9}, {7, 7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 2 || old[0][0] != 0 || old[1][0] != 4 {
		t.Fatalf("old images = %v", old)
	}
	for i, want := range map[int]byte{0: 9, 4: 7, 2: 2} {
		rec, err := h.Get(rids[i])
		if err != nil || rec[0] != want {
			t.Fatalf("rid %d = %v, %v", i, rec, err)
		}
	}
	// Length mismatch and misaligned args are rejected.
	if _, err := h.UpdateBatch([]RecordID{rids[1]}, [][]byte{{1, 2}}); err == nil {
		t.Fatal("size-changing batch update accepted")
	}
	if _, err := h.UpdateBatch(rids[:2], [][]byte{{1, 2, 3}}); err == nil {
		t.Fatal("misaligned batch update accepted")
	}
	// Updating a tombstone fails.
	if err := h.Delete(rids[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := h.UpdateBatch([]RecordID{rids[3]}, [][]byte{{1, 2, 3}}); err == nil {
		t.Fatal("batch update of tombstone accepted")
	}
}

func TestHeapFileBatchOpsPinPagesOnce(t *testing.T) {
	mem := NewMemDisk()
	bp := NewBufferPool(mem, 2)
	h := NewHeapFile(bp, 6)
	var rids []RecordID
	for i := 0; i < 10; i++ {
		rid, err := h.Insert(make([]byte, 3000)) // ~2 records per page
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mem.ResetStats()
	// Page-ordered rids through a 2-frame pool: one fetch per page run, so
	// physical reads stay at the page count even though the pool is tiny.
	if _, err := h.UpdateBatch(rids, recsOf(len(rids), 3000)); err != nil {
		t.Fatal(err)
	}
	pages := int64(h.NumPages())
	if reads := mem.Stats().Reads; reads > pages {
		t.Fatalf("batch update read %d pages for a %d-page file", reads, pages)
	}
}

func recsOf(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
	}
	return out
}

func TestHeapFileNumScansCounter(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 4)
	h := NewHeapFile(bp, 7)
	if _, err := h.Insert([]byte("x")); err != nil {
		t.Fatal(err)
	}
	before := h.NumScans()
	for i := 0; i < 3; i++ {
		if err := h.Scan(func(RecordID, []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.NumScans() - before; got != 3 {
		t.Fatalf("NumScans delta = %d, want 3", got)
	}
	if _, err := h.Get(RecordID{Page: PageID{File: 7, Num: 0}, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	if got := h.NumScans() - before; got != 3 {
		t.Fatalf("point Get bumped the scan counter to %d", got)
	}
}

// Revive must reuse a tombstoned slot's space: same rid, new bytes, record
// count restored; live slots and oversized records are rejected.
func TestPageReviveReusesTombstonedSlots(t *testing.T) {
	h := NewHeapFile(NewBufferPool(NewMemDisk(), 4), 1)
	rec := func(b byte) []byte { return []byte{b, b, b, b} }
	var rids []RecordID
	for i := byte(0); i < 8; i++ {
		rid, err := h.Insert(rec(i))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pagesBefore := h.NumPages()
	if _, err := h.DeleteBatch([]RecordID{rids[2], rids[5]}); err != nil {
		t.Fatal(err)
	}
	if n, err := h.ReviveBatch([]RecordID{rids[5], rids[2]}, [][]byte{rec(0xB5), rec(0xB2)}); err != nil || n != 2 {
		t.Fatalf("ReviveBatch = %d, %v", n, err)
	}
	if got := h.NumRecords(); got != 8 {
		t.Fatalf("records = %d, want 8", got)
	}
	if got := h.NumPages(); got != pagesBefore {
		t.Fatalf("revive allocated pages: %d -> %d", pagesBefore, got)
	}
	for _, c := range []struct {
		rid  RecordID
		want byte
	}{{rids[2], 0xB2}, {rids[5], 0xB5}} {
		b, err := h.Get(c.rid)
		if err != nil || b == nil {
			t.Fatalf("Get(%v) = %v, %v", c.rid, b, err)
		}
		if b[0] != c.want {
			t.Fatalf("revived slot %v holds %#x, want %#x", c.rid, b[0], c.want)
		}
	}
	// A live slot must refuse revival.
	if _, err := h.ReviveBatch([]RecordID{rids[0]}, [][]byte{rec(1)}); err == nil {
		t.Fatal("revive of live slot accepted")
	}
	// An oversized record must refuse the slot.
	if _, err := h.DeleteBatch([]RecordID{rids[3]}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReviveBatch([]RecordID{rids[3]}, [][]byte{make([]byte, 64)}); err == nil {
		t.Fatal("oversized revive accepted")
	}
	// Same-size revival after the failed attempt still works.
	if n, err := h.ReviveBatch([]RecordID{rids[3]}, [][]byte{rec(0xB3)}); err != nil || n != 1 {
		t.Fatalf("ReviveBatch after failed attempt = %d, %v", n, err)
	}
}
