package storage

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestPageInsertGet(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	recs := [][]byte{[]byte("alpha"), []byte("b"), []byte("gamma-gamma")}
	var slots []int
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Get(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("slot %d = %q, want %q", s, got, recs[i])
		}
	}
	if p.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d", p.NumRecords())
	}
}

func TestPageFull(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	rec := make([]byte, 1000)
	inserted := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			break
		}
		inserted++
	}
	// 8192 - 4 header; each record costs 1000 + 4 slot = 1004.
	if inserted != 8 {
		t.Fatalf("inserted %d 1000-byte records, want 8", inserted)
	}
	if _, err := p.Insert([]byte("x")); err == nil {
		// Tiny records may still fit; just ensure FreeSpace is consistent.
		if p.FreeSpace() < 1 {
			t.Fatal("insert succeeded with no free space")
		}
	}
}

func TestPageUpdateInPlace(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	s, _ := p.Insert([]byte("hello"))
	if err := p.Update(s, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(s)
	if string(got) != "world" {
		t.Fatalf("got %q", got)
	}
	if err := p.Update(s, []byte("too long!")); err == nil {
		t.Fatal("size-changing update not rejected")
	}
}

func TestPageDeleteTombstone(t *testing.T) {
	p := InitPage(make([]byte, PageSize))
	s1, _ := p.Insert([]byte("a"))
	s2, _ := p.Insert([]byte("b"))
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(s1)
	if err != nil || got != nil {
		t.Fatalf("deleted slot Get = %q, %v", got, err)
	}
	got, _ = p.Get(s2)
	if string(got) != "b" {
		t.Fatalf("neighbor slot damaged: %q", got)
	}
	if err := p.Update(s1, []byte("a")); err == nil {
		t.Fatal("update of tombstone not rejected")
	}
}

func TestMemDiskReadWrite(t *testing.T) {
	d := NewMemDisk()
	id, err := d.AllocatePage(7)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	copy(buf, "data!")
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := d.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], []byte("data!")) {
		t.Fatalf("read back %q", got[:5])
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := d.ReadPage(PageID{File: 7, Num: 99}, got); err == nil {
		t.Fatal("read of unallocated page not rejected")
	}
}

func TestMemDiskLatency(t *testing.T) {
	d := NewMemDisk()
	id, _ := d.AllocatePage(1)
	d.SetLatency(2 * time.Millisecond)
	buf := make([]byte, PageSize)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := d.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("5 reads with 2ms latency took %v", elapsed)
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 4)
	id, pg, err := bp.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Insert([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, true)

	if _, err := bp.Fetch(id); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, false)
	st := bp.Stats()
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, pg, err := bp.Allocate(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pg.Insert([]byte(fmt.Sprintf("page%d", i))); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(id, true)
		ids = append(ids, id)
	}
	// Page 0 must have been evicted and written back; fetch re-reads it.
	pg, err := bp.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	rec, err := pg.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec) != "page0" {
		t.Fatalf("after eviction got %q", rec)
	}
	bp.Unpin(ids[0], false)
}

func TestBufferPoolAllPinnedFails(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 2)
	for i := 0; i < 2; i++ {
		if _, _, err := bp.Allocate(1); err != nil {
			t.Fatal(err)
		}
		// intentionally not unpinned
	}
	if _, _, err := bp.Allocate(1); err == nil {
		t.Fatal("expected pool exhaustion error")
	}
}

func TestHeapFileInsertScan(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 8)
	h := NewHeapFile(bp, 3)
	want := map[string]bool{}
	for i := 0; i < 5000; i++ {
		rec := []byte(fmt.Sprintf("record-%05d", i))
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
		want[string(rec)] = true
	}
	if h.NumRecords() != 5000 {
		t.Fatalf("NumRecords = %d", h.NumRecords())
	}
	if h.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.NumPages())
	}
	got := 0
	err := h.Scan(func(rid RecordID, rec []byte) error {
		if !want[string(rec)] {
			return fmt.Errorf("unexpected record %q", rec)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5000 {
		t.Fatalf("scanned %d records", got)
	}
}

func TestHeapFileGetUpdateDelete(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 8)
	h := NewHeapFile(bp, 3)
	rid, err := h.Insert([]byte("aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Update(rid, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	rec, err := h.Get(rid)
	if err != nil || string(rec) != "bbbb" {
		t.Fatalf("Get = %q, %v", rec, err)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	rec, err = h.Get(rid)
	if err != nil || rec != nil {
		t.Fatalf("deleted Get = %q, %v", rec, err)
	}
	if h.NumRecords() != 0 {
		t.Fatalf("NumRecords = %d", h.NumRecords())
	}
}

func TestHeapFileScanEarlyStop(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 8)
	h := NewHeapFile(bp, 1)
	for i := 0; i < 100; i++ {
		if _, err := h.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := h.Scan(func(RecordID, []byte) error {
		n++
		if n == 10 {
			return ErrStopScan
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("scanned %d, want 10", n)
	}
}

func TestHeapFileReopenRecount(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 8)
	h := NewHeapFile(bp, 5)
	for i := 0; i < 42; i++ {
		if _, err := h.Insert([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	h2 := NewHeapFile(NewBufferPool(d, 8), 5)
	if h2.NumRecords() != 42 {
		t.Fatalf("reopened NumRecords = %d", h2.NumRecords())
	}
}

func TestPageRoundTripProperty(t *testing.T) {
	f := func(recs [][]byte) bool {
		p := InitPage(make([]byte, PageSize))
		var stored [][]byte
		var slots []int
		for _, r := range recs {
			if len(r) > 512 {
				r = r[:512]
			}
			s, err := p.Insert(r)
			if err != nil {
				break // page full: fine
			}
			stored = append(stored, append([]byte(nil), r...))
			slots = append(slots, s)
		}
		for i, s := range slots {
			got, err := p.Get(s)
			if err != nil || !bytes.Equal(got, stored[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
