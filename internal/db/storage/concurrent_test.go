package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBufferPoolConcurrentFetch hammers a small pool from many goroutines
// (run with -race): concurrent hits, misses, waits on in-flight loads and
// evictions must neither race nor corrupt page contents.
func TestBufferPoolConcurrentFetch(t *testing.T) {
	disk := NewMemDisk()
	const pages = 24
	var ids []PageID
	for i := 0; i < pages; i++ {
		id, err := disk.AllocatePage(1)
		if err != nil {
			t.Fatal(err)
		}
		// Stamp each page with a recognizable byte so readers can verify
		// they see the right page.
		buf := make([]byte, PageSize)
		for j := range buf {
			buf[j] = byte(i)
		}
		if err := disk.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	pool := NewBufferPool(disk, 8) // smaller than the page set: evictions happen

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				i := (seed*31 + iter*17) % pages
				pg, err := pool.Fetch(ids[i])
				if err != nil {
					errs <- err
					return
				}
				if pg.Data[PageSize-1] != byte(i) {
					errs <- fmt.Errorf("page %d: read stamp %d", i, pg.Data[PageSize-1])
					pool.Unpin(ids[i], false)
					return
				}
				pool.Unpin(ids[i], false)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}

// TestBufferPoolConcurrentFetchWithLatency checks that slow disk reads do
// not serialize the pool: 4 goroutines each reading distinct cold pages
// through a latency-injected disk should overlap their sleeps.
func TestBufferPoolConcurrentFetchWithLatency(t *testing.T) {
	disk := NewMemDisk()
	const lat = 2 * time.Millisecond
	const perWorker = 8
	var ids []PageID
	for i := 0; i < 4*perWorker; i++ {
		id, err := disk.AllocatePage(1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	disk.SetLatency(lat)
	pool := NewBufferPool(disk, len(ids))

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := ids[w*perWorker+i]
				if _, err := pool.Fetch(id); err != nil {
					t.Error(err)
					return
				}
				pool.Unpin(id, false)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Serialized, 32 cold reads cost 64ms. Overlapped across 4 workers they
	// cost ~16ms. Allow generous scheduling slack: anything under 3/4 of the
	// serial time proves reads are not serialized under the pool lock.
	if serial := time.Duration(4*perWorker) * lat; elapsed > serial*3/4 {
		t.Fatalf("cold fetches appear serialized: %v elapsed vs %v serial", elapsed, serial)
	}
}

// TestHeapInsertBatch checks the batched insert path against the one-by-one
// path: same records, same ids, same scan output, spilling across pages.
func TestHeapInsertBatch(t *testing.T) {
	mkRec := func(i int) []byte {
		rec := make([]byte, 100)
		rec[0] = byte(i)
		rec[1] = byte(i >> 8)
		return rec
	}
	const n = 500 // ~100B each: spills across several 8KB pages

	single := NewHeapFile(NewBufferPool(NewMemDisk(), 4), 1)
	var wantIDs []RecordID
	for i := 0; i < n; i++ {
		rid, err := single.Insert(mkRec(i))
		if err != nil {
			t.Fatal(err)
		}
		wantIDs = append(wantIDs, rid)
	}

	batched := NewHeapFile(NewBufferPool(NewMemDisk(), 4), 1)
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = mkRec(i)
	}
	gotIDs, err := batched.InsertBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
		t.Fatalf("record ids differ between Insert loop and InsertBatch")
	}
	if batched.NumRecords() != n {
		t.Fatalf("NumRecords = %d, want %d", batched.NumRecords(), n)
	}
	i := 0
	err = batched.Scan(func(rid RecordID, rec []byte) error {
		if got := int(rec[0]) | int(rec[1])<<8; got != i {
			return fmt.Errorf("record %d reads back as %d", i, got)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scanned %d records, want %d", i, n)
	}
}

// TestHeapInsertBatchThenInsert checks the two insert paths compose: a batch
// load followed by single inserts continues on the same tail page.
func TestHeapInsertBatchThenInsert(t *testing.T) {
	h := NewHeapFile(NewBufferPool(NewMemDisk(), 4), 1)
	if _, err := h.InsertBatch([][]byte{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert([]byte{4}); err != nil {
		t.Fatal(err)
	}
	if got := h.NumRecords(); got != 4 {
		t.Fatalf("NumRecords = %d", got)
	}
	if got := h.NumPages(); got != 1 {
		t.Fatalf("NumPages = %d, want 1 (tail page reuse)", got)
	}
}

// TestBufferPoolConcurrentWriteBack drives a mixed read/write workload on a
// pool small enough that dirty victims are evicted constantly (run with
// -race): write-back now happens outside the pool lock on a pin-protected
// victim, so concurrent fetches during a slow write must neither race nor
// lose updates — including pages re-dirtied mid-write-back. Each goroutine
// owns a disjoint page set (the engine's single-writer-per-table contract),
// stamping pages with its latest value; the final contents seen through a
// fresh pool must be each page's last stamp.
func TestBufferPoolConcurrentWriteBack(t *testing.T) {
	disk := NewMemDisk()
	disk.SetLatency(20 * time.Microsecond) // widen the write-back window
	// workers == pool capacity: each goroutine holds at most one caller pin
	// at a time, so the only way all frames can be pinned at once is a
	// write-back guard pin — exactly the transient the evictor must absorb.
	const workers = 4
	const perWorker = 6
	ids := make([][]PageID, workers)
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			id, err := disk.AllocatePage(1)
			if err != nil {
				t.Fatal(err)
			}
			ids[w] = append(ids[w], id)
		}
	}
	pool := NewBufferPool(disk, 4) // far smaller than the 24-page hot set

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 120; iter++ {
				i := iter % perWorker
				pg, err := pool.Fetch(ids[w][i])
				if err != nil {
					errs <- err
					return
				}
				pg.Data[0] = byte(w)
				pg.Data[1] = byte(iter)
				pg.Data[PageSize-1] = byte(iter)
				pool.Unpin(ids[w][i], true)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	check := NewBufferPool(disk, 4)
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			pg, err := check.Fetch(ids[w][i])
			if err != nil {
				t.Fatal(err)
			}
			wantIter := byte(120 - perWorker + i)
			if pg.Data[0] != byte(w) || pg.Data[1] != wantIter || pg.Data[PageSize-1] != wantIter {
				t.Fatalf("page %d/%d: got stamp (%d,%d,%d), want (%d,%d,%d)", w, i,
					pg.Data[0], pg.Data[1], pg.Data[PageSize-1], w, wantIter, wantIter)
			}
			check.Unpin(ids[w][i], false)
		}
	}
}

// FlushAll must order itself against in-flight eviction write-backs: an
// evictor's pre-mutation snapshot landing after FlushAll's newer bytes
// would durably persist stale data under a clean frame. Hammer a single
// writer (pool churn forces dirty evictions) against concurrent FlushAll
// calls, then verify the final image from a fresh pool.
func TestFlushAllOrdersAgainstEvictionWriteback(t *testing.T) {
	disk := NewMemDisk()
	bp := NewBufferPool(disk, 2) // tiny pool: constant dirty evictions
	h := NewHeapFile(bp, 1)
	const records = 20
	rids := make([]RecordID, records)
	for i := range rids {
		rid, err := h.Insert(make([]byte, 700))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	stop := make(chan struct{})
	var flushErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := bp.FlushAll(); err != nil && flushErr == nil {
				flushErr = err
			}
		}
	}()
	// Single writer (the heap contract) rewriting every record with its
	// round number; the 2-frame pool evicts dirty pages continuously.
	rec := make([]byte, 700)
	const rounds = 50
	for round := 0; round < rounds; round++ {
		for i, rid := range rids {
			rec[0], rec[1] = byte(round), byte(i)
			if err := h.Update(rid, rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if flushErr != nil {
		t.Fatal(flushErr)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// A fresh pool sees only the disk: every record must carry the final
	// round number, i.e. no stale snapshot overwrote a newer flush.
	bp2 := NewBufferPool(disk, 4)
	h2 := NewHeapFile(bp2, 1)
	for i, rid := range rids {
		got, err := h2.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(rounds-1) || got[1] != byte(i) {
			t.Fatalf("record %d: stale bytes round=%d idx=%d on disk", i, got[0], got[1])
		}
	}
}
