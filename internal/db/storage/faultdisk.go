package storage

import (
	"errors"
	"sync"
)

// ErrInjected is the error every scripted FaultDisk failure returns (and
// wraps); tests match it with errors.Is.
var ErrInjected = errors.New("storage: injected disk fault")

// FaultOp names a Disk operation for FaultDisk hooks.
type FaultOp string

// Fault points scriptable via FaultDisk.SetHook.
const (
	OpRead     FaultOp = "read"
	OpWrite    FaultOp = "write"
	OpAllocate FaultOp = "allocate"
	OpTruncate FaultOp = "truncate"
)

// FaultDisk wraps a Disk and injects scripted failures: fail-after-N
// countdowns on reads and writes, torn writes (the first half of the page
// reaches the inner disk before the error — a mid-write crash), and
// arbitrary per-operation hooks. It is the one fault-injection fake shared
// by the storage, search, and crash-matrix tests. The zero countdowns mean
// "never fail"; arm them with FailReadsAfter / FailWritesAfter.
type FaultDisk struct {
	inner Disk

	mu         sync.Mutex
	readsLeft  int // -1 = unlimited
	writesLeft int
	tornWrites bool
	hook       func(op FaultOp, id PageID) error
}

// NewFaultDisk wraps inner with no faults armed.
func NewFaultDisk(inner Disk) *FaultDisk {
	return &FaultDisk{inner: inner, readsLeft: -1, writesLeft: -1}
}

// FailReadsAfter arms the read countdown: the next n reads succeed, every
// later one fails with ErrInjected. n < 0 disarms.
func (d *FaultDisk) FailReadsAfter(n int) {
	d.mu.Lock()
	d.readsLeft = n
	d.mu.Unlock()
}

// FailWritesAfter arms the write countdown: the next n writes succeed,
// every later one fails with ErrInjected. n < 0 disarms.
func (d *FaultDisk) FailWritesAfter(n int) {
	d.mu.Lock()
	d.writesLeft = n
	d.mu.Unlock()
}

// SetTornWrite makes every injected write failure first write the front
// half of the page to the inner disk, modelling a crash mid-write.
func (d *FaultDisk) SetTornWrite(on bool) {
	d.mu.Lock()
	d.tornWrites = on
	d.mu.Unlock()
}

// SetHook installs fn to run before every operation; a non-nil return is
// injected as that operation's error. Hooks fire before countdowns.
func (d *FaultDisk) SetHook(fn func(op FaultOp, id PageID) error) {
	d.mu.Lock()
	d.hook = fn
	d.mu.Unlock()
}

// fire runs the hook and ticks the countdown (a pointer to readsLeft or
// writesLeft) under the lock, reporting the injected error if any.
func (d *FaultDisk) fire(op FaultOp, id PageID, counter *int) (torn bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hook != nil {
		if err := d.hook(op, id); err != nil {
			return false, err
		}
	}
	if counter == nil {
		return false, nil
	}
	if *counter == 0 {
		return d.tornWrites && op == OpWrite, ErrInjected
	}
	if *counter > 0 {
		*counter--
	}
	return false, nil
}

// ReadPage implements Disk.
func (d *FaultDisk) ReadPage(id PageID, buf []byte) error {
	if _, err := d.fire(OpRead, id, &d.readsLeft); err != nil {
		return err
	}
	return d.inner.ReadPage(id, buf)
}

// WritePage implements Disk. In torn-write mode an injected failure still
// writes the first half of the page through, over whatever the inner disk
// held.
func (d *FaultDisk) WritePage(id PageID, buf []byte) error {
	torn, err := d.fire(OpWrite, id, &d.writesLeft)
	if err != nil {
		if torn {
			prev := make([]byte, PageSize)
			if rerr := d.inner.ReadPage(id, prev); rerr == nil {
				copy(prev, buf[:PageSize/2])
				_ = d.inner.WritePage(id, prev)
			}
		}
		return err
	}
	return d.inner.WritePage(id, buf)
}

// AllocatePage implements Disk.
func (d *FaultDisk) AllocatePage(file int32) (PageID, error) {
	if _, err := d.fire(OpAllocate, PageID{File: file}, nil); err != nil {
		return PageID{}, err
	}
	return d.inner.AllocatePage(file)
}

// NumPages implements Disk.
func (d *FaultDisk) NumPages(file int32) int32 { return d.inner.NumPages(file) }

// TruncateFile implements Disk. Hook errors are swallowed (the interface
// has no error return) but still skip the truncate, modelling a crash
// before it happened.
func (d *FaultDisk) TruncateFile(file int32) {
	if _, err := d.fire(OpTruncate, PageID{File: file}, nil); err != nil {
		return
	}
	d.inner.TruncateFile(file)
}

// Stats implements Disk.
func (d *FaultDisk) Stats() DiskStats { return d.inner.Stats() }
