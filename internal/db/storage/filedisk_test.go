package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func page(b byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestFileDiskRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, err := d.AllocatePage(7)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.WritePage(id, page(byte('a'+i))); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.NumPages(7); got != 3 {
		t.Fatalf("NumPages after reopen = %d, want 3", got)
	}
	buf := make([]byte, PageSize)
	for i, id := range ids {
		if err := d2.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, page(byte('a'+i))) {
			t.Fatalf("page %v corrupt after reopen", id)
		}
	}
	if err := d2.ReadPage(PageID{File: 7, Num: 3}, buf); err == nil {
		t.Fatal("read past live pages succeeded")
	}
}

func TestFileDiskTruncatePersistsFreeList(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		id, _ := d.AllocatePage(1)
		if err := d.WritePage(id, page(0xff)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	sizeAt := func() int64 {
		st, err := os.Stat(filepath.Join(dir, "seg_1"))
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	high := sizeAt()
	d.TruncateFile(1) // persists live=0 immediately
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the truncated file must come back empty (free list honored),
	// not resurrected at its physical size.
	d2, err := OpenFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.NumPages(1); got != 0 {
		t.Fatalf("NumPages after truncate+reopen = %d, want 0", got)
	}
	// Allocation reuses the freed capacity (file stays at high-water mark)
	// and hands out zeroed pages despite the stale 0xff bytes.
	id, err := d2.AllocatePage(1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d2.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, PageSize)) {
		t.Fatal("reused page not zeroed")
	}
	if got := sizeAt(); got != high {
		t.Fatalf("segment grew to %d on reuse, want high-water %d", got, high)
	}
}

func TestFileDiskEnsureAndReset(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Ensure(3, 5); err != nil {
		t.Fatal(err)
	}
	if got := d.NumPages(3); got != 5 {
		t.Fatalf("NumPages after Ensure = %d, want 5", got)
	}
	id := PageID{File: 3, Num: 4}
	if err := d.WritePage(id, page(9)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Fatal("ensured page did not round-trip")
	}
	if err := d.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := d.NumPages(3); got != 0 {
		t.Fatalf("NumPages after Reset = %d, want 0", got)
	}
	if err := d.ReadPage(id, buf); err == nil {
		t.Fatal("read after Reset succeeded")
	}
}

// A buffer pool + heap file running over FileDisk must behave exactly like
// the MemDisk stack.
func TestFileDiskUnderBufferPool(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(d, 2) // tiny pool forces eviction write-backs
	h := NewHeapFile(bp, 1)
	var rids []RecordID
	for i := 0; i < 20; i++ {
		rid, err := h.Insert(bytes.Repeat([]byte{byte(i)}, 1000))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	bp2 := NewBufferPool(d2, 8)
	h2 := NewHeapFile(bp2, 1)
	got := 0
	if err := h2.Scan(func(rid RecordID, rec []byte) error {
		if len(rec) != 1000 || rec[0] != byte(got) {
			t.Fatalf("record %d corrupt after reopen", got)
		}
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != len(rids) {
		t.Fatalf("scanned %d records after reopen, want %d", got, len(rids))
	}
}
