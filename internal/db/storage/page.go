package storage

import (
	"encoding/binary"
	"fmt"
)

// A slotted page lays out variable-length records with a slot directory:
//
//	+-----------------------------------------------------------+
//	| nSlots | freeStart |  records... ->       <- ...slot dir   |
//	+-----------------------------------------------------------+
//
// Record bytes grow from the front; 4-byte slot entries (offset, length)
// grow from the back. A slot with length 0xFFFF is a tombstone.
const (
	pageHeaderSize = 4
	slotSize       = 4
	tombstoneLen   = 0xFFFF
	// MaxRecordSize is the largest record a page can hold.
	MaxRecordSize = PageSize - pageHeaderSize - slotSize
)

// Page wraps the raw bytes of one slotted page.
type Page struct {
	Data []byte
}

// InitPage formats raw bytes as an empty slotted page.
func InitPage(data []byte) Page {
	p := Page{Data: data}
	p.setNumSlots(0)
	p.setFreeStart(pageHeaderSize)
	return p
}

func (p Page) numSlots() int     { return int(binary.LittleEndian.Uint16(p.Data[0:])) }
func (p Page) setNumSlots(n int) { binary.LittleEndian.PutUint16(p.Data[0:], uint16(n)) }

func (p Page) freeStart() int     { return int(binary.LittleEndian.Uint16(p.Data[2:])) }
func (p Page) setFreeStart(n int) { binary.LittleEndian.PutUint16(p.Data[2:], uint16(n)) }

func (p Page) slotOffset(i int) int {
	base := PageSize - (i+1)*slotSize
	return base
}

func (p Page) slot(i int) (off, length int) {
	b := p.slotOffset(i)
	return int(binary.LittleEndian.Uint16(p.Data[b:])), int(binary.LittleEndian.Uint16(p.Data[b+2:]))
}

func (p Page) setSlot(i, off, length int) {
	b := p.slotOffset(i)
	binary.LittleEndian.PutUint16(p.Data[b:], uint16(off))
	binary.LittleEndian.PutUint16(p.Data[b+2:], uint16(length))
}

// NumRecords returns the number of slots (including tombstones).
func (p Page) NumRecords() int { return p.numSlots() }

// FreeSpace returns the bytes available for one more record (including its
// slot entry).
func (p Page) FreeSpace() int {
	free := PageSize - p.numSlots()*slotSize - p.freeStart() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores rec and returns its slot number. It fails when the page
// lacks space.
func (p Page) Insert(rec []byte) (int, error) {
	if len(rec) > tombstoneLen-1 {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds slot limit", len(rec))
	}
	if len(rec) > p.FreeSpace() {
		return 0, fmt.Errorf("storage: page full (%d bytes free, need %d)", p.FreeSpace(), len(rec))
	}
	slot := p.numSlots()
	off := p.freeStart()
	copy(p.Data[off:], rec)
	p.setSlot(slot, off, len(rec))
	p.setNumSlots(slot + 1)
	p.setFreeStart(off + len(rec))
	return slot, nil
}

// Get returns the record bytes in the given slot. The slice aliases the page
// buffer; callers must copy if they retain it.
func (p Page) Get(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.numSlots() {
		return nil, fmt.Errorf("storage: slot %d out of range [0,%d)", slot, p.numSlots())
	}
	off, length := p.slot(slot)
	if length == tombstoneLen {
		return nil, nil
	}
	return p.Data[off : off+length], nil
}

// Update overwrites the record in place. The new record must be the same
// length as the old one (fixed-length updates are all the engine needs: the
// truth column of atom tables).
func (p Page) Update(slot int, rec []byte) error {
	if slot < 0 || slot >= p.numSlots() {
		return fmt.Errorf("storage: slot %d out of range", slot)
	}
	off, length := p.slot(slot)
	if length == tombstoneLen {
		return fmt.Errorf("storage: update of deleted slot %d", slot)
	}
	if len(rec) != length {
		return fmt.Errorf("storage: in-place update size %d != %d", len(rec), length)
	}
	copy(p.Data[off:], rec)
	return nil
}

// Delete tombstones a slot. The space is not reclaimed (no compaction),
// but Revive can rewrite the slot with a new record of up to the same
// size.
func (p Page) Delete(slot int) error {
	if slot < 0 || slot >= p.numSlots() {
		return fmt.Errorf("storage: slot %d out of range", slot)
	}
	off, _ := p.slot(slot)
	p.setSlot(slot, off, tombstoneLen)
	return nil
}

// slotCapacity is the record space a slot owns: from its offset to the
// next slot's offset (or the free-space watermark for the last slot).
// Offsets are assigned monotonically by Insert and survive Delete, so the
// bound is exact even for tombstones.
func (p Page) slotCapacity(slot, off int) int {
	end := p.freeStart()
	if slot+1 < p.numSlots() {
		end, _ = p.slot(slot + 1)
	}
	return end - off
}

// Revive rewrites a tombstoned slot with a new record, reusing the space
// the deleted record occupied (equal-size for the fixed-width rows all
// engine-internal tables use). This is what lets a churning table reuse
// freed slots instead of appending, bounding the file at its high-water
// mark.
func (p Page) Revive(slot int, rec []byte) error {
	if slot < 0 || slot >= p.numSlots() {
		return fmt.Errorf("storage: slot %d out of range", slot)
	}
	off, length := p.slot(slot)
	if length != tombstoneLen {
		return fmt.Errorf("storage: revive of live slot %d", slot)
	}
	if c := p.slotCapacity(slot, off); len(rec) > c {
		return fmt.Errorf("storage: revive record of %d bytes exceeds slot capacity %d", len(rec), c)
	}
	copy(p.Data[off:], rec)
	p.setSlot(slot, off, len(rec))
	return nil
}
