package tuple

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return NewSchema(
		Col("id", TInt),
		Col("name", TString),
		Col("tags", TIntList),
	)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sch := testSchema()
	row := Row{I64(42), Str("hello, world"), IntList([]int64{1, -5, 9})}
	buf, err := Encode(sch, row)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != RowSize(sch, row) {
		t.Fatalf("RowSize = %d, encoded = %d", RowSize(sch, row), len(buf))
	}
	got, err := Decode(sch, buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !row[i].Equal(got[i]) {
			t.Fatalf("col %d: %v != %v", i, got[i], row[i])
		}
	}
}

func TestEncodeRejectsMismatches(t *testing.T) {
	sch := NewSchema(Col("a", TInt))
	if _, err := Encode(sch, Row{Str("x")}); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if _, err := Encode(sch, Row{I64(1), I64(2)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestDecodeRejectsCorruptBuffers(t *testing.T) {
	sch := testSchema()
	row := Row{I64(1), Str("abc"), IntList([]int64{7})}
	buf, _ := Encode(sch, row)
	for _, cut := range []int{1, 8, 11, len(buf) - 1} {
		if _, err := Decode(sch, buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(sch, append(buf, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	sch := NewSchema(Col("i", TInt), Col("s", TString))
	f := func(i int64, s string) bool {
		row := Row{I64(i), Str(s)}
		buf, err := Encode(sch, row)
		if err != nil {
			return false
		}
		got, err := Decode(sch, buf)
		if err != nil {
			return false
		}
		return got[0].I == i && got[1].S == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{I64(1), I64(2), -1},
		{I64(2), I64(2), 0},
		{I64(3), I64(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{IntList([]int64{1, 2}), IntList([]int64{1, 3}), -1},
		{IntList([]int64{1}), IntList([]int64{1, 0}), -1},
		{IntList([]int64{2}), IntList([]int64{1, 9}), 1},
	}
	for i, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Fatalf("case %d: Compare(%v,%v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
	}
}

func TestValueEqualAcrossKinds(t *testing.T) {
	if I64(1).Equal(Str("1")) {
		t.Fatal("int equals string")
	}
	if !IntList([]int64{1, 2}).Equal(IntList([]int64{1, 2})) {
		t.Fatal("equal lists unequal")
	}
	if IntList([]int64{1}).Equal(IntList([]int64{1, 2})) {
		t.Fatal("prefix equals longer list")
	}
}

// EncodeKey must be order-preserving for int64 (including negatives).
func TestEncodeKeyOrderPreservingProperty(t *testing.T) {
	f := func(a, b int64) bool {
		ka := EncodeKey(Row{I64(a)}, []int{0})
		kb := EncodeKey(Row{I64(b)}, []int{0})
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// Explicit boundary cases quick may miss.
	vals := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64}
	keys := make([]string, len(vals))
	for i, v := range vals {
		keys[i] = EncodeKey(Row{I64(v)}, []int{0})
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("boundary keys unordered: %q", keys)
	}
}

func TestEncodeKeyStringEscaping(t *testing.T) {
	// A string containing 0x00 must not collide with or misorder against
	// its prefix.
	a := EncodeKey(Row{Str("ab")}, []int{0})
	b := EncodeKey(Row{Str("ab\x00c")}, []int{0})
	c := EncodeKey(Row{Str("abc")}, []int{0})
	if a == b || b == c {
		t.Fatal("escape collision")
	}
	if !(a < b && b < c) {
		t.Fatalf("ordering broken: %q %q %q", a, b, c)
	}
}

func TestEncodeKeyMultiColumn(t *testing.T) {
	r1 := Row{I64(1), Str("b")}
	r2 := Row{I64(1), Str("a")}
	k1 := EncodeKey(r1, []int{0, 1})
	k2 := EncodeKey(r2, []int{0, 1})
	if k1 <= k2 {
		t.Fatal("second column ignored")
	}
	// Key on subset of columns.
	if EncodeKey(r1, []int{0}) != EncodeKey(r2, []int{0}) {
		t.Fatal("first-column keys should match")
	}
}

func TestSchemaHelpers(t *testing.T) {
	sch := testSchema()
	if sch.Arity() != 3 {
		t.Fatalf("arity = %d", sch.Arity())
	}
	if sch.ColIndex("NAME") != 1 {
		t.Fatal("ColIndex should be case-insensitive")
	}
	if sch.ColIndex("missing") != -1 {
		t.Fatal("missing column found")
	}
	cat := sch.Concat(NewSchema(Col("x", TInt)))
	if cat.Arity() != 4 || cat.Cols[3].Name != "x" {
		t.Fatalf("Concat = %v", cat)
	}
	if sch.String() == "" || TInt.String() != "BIGINT" {
		t.Fatal("String methods broken")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{I64(1), IntList([]int64{1, 2})}
	c := r.Clone()
	c[1].List[0] = 99
	if r[1].List[0] == 99 {
		t.Fatal("Clone shares list storage")
	}
}
