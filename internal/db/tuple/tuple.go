// Package tuple defines the typed rows stored by the relational engine:
// schemas, values, byte-level encoding for page storage, and order-preserving
// key encoding used by indexes and sort-merge joins.
package tuple

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Type enumerates column types. The engine stores 64-bit integers and
// strings; integer lists exist only in flight (ARRAY_AGG results) and are
// encoded like strings when materialized.
type Type int8

const (
	TInt Type = iota
	TString
	TIntList
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "BIGINT"
	case TString:
		return "TEXT"
	case TIntList:
		return "BIGINT[]"
	default:
		return fmt.Sprintf("TYPE(%d)", int(t))
	}
}

// Column is one attribute of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from name/type pairs.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols} }

// Col is shorthand for constructing a Column.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Concat returns the schema of a join result: the columns of s followed by
// the columns of o.
func (s Schema) Concat(o Schema) Schema {
	cols := make([]Column, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, o.Cols...)
	return Schema{Cols: cols}
}

func (s Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Value is a single typed datum.
type Value struct {
	Kind Type
	I    int64
	S    string
	List []int64
}

// I64 makes an integer value.
func I64(v int64) Value { return Value{Kind: TInt, I: v} }

// Str makes a string value.
func Str(s string) Value { return Value{Kind: TString, S: s} }

// IntList makes an integer-list value.
func IntList(v []int64) Value { return Value{Kind: TIntList, List: v} }

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case TInt:
		return v.I == o.I
	case TString:
		return v.S == o.S
	case TIntList:
		if len(v.List) != len(o.List) {
			return false
		}
		for i := range v.List {
			if v.List[i] != o.List[i] {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders two values of the same kind: -1, 0, +1.
func (v Value) Compare(o Value) int {
	switch v.Kind {
	case TInt:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case TString:
		return strings.Compare(v.S, o.S)
	case TIntList:
		n := len(v.List)
		if len(o.List) < n {
			n = len(o.List)
		}
		for i := 0; i < n; i++ {
			if v.List[i] != o.List[i] {
				if v.List[i] < o.List[i] {
					return -1
				}
				return 1
			}
		}
		switch {
		case len(v.List) < len(o.List):
			return -1
		case len(v.List) > len(o.List):
			return 1
		}
		return 0
	}
	return 0
}

func (v Value) String() string {
	switch v.Kind {
	case TInt:
		return fmt.Sprintf("%d", v.I)
	case TString:
		return v.S
	case TIntList:
		parts := make([]string, len(v.List))
		for i, x := range v.List {
			parts[i] = fmt.Sprintf("%d", x)
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	return "?"
}

// Row is one tuple.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	for i := range out {
		if out[i].Kind == TIntList {
			l := make([]int64, len(out[i].List))
			copy(l, out[i].List)
			out[i].List = l
		}
	}
	return out
}

// Encode serializes the row (which must match sch) into a byte slice
// suitable for page storage.
func Encode(sch Schema, r Row) ([]byte, error) {
	if len(r) != sch.Arity() {
		return nil, fmt.Errorf("tuple: row arity %d != schema arity %d", len(r), sch.Arity())
	}
	size := 0
	for i, c := range sch.Cols {
		if r[i].Kind != c.Type {
			return nil, fmt.Errorf("tuple: column %s kind mismatch: row %v, schema %v", c.Name, r[i].Kind, c.Type)
		}
		switch c.Type {
		case TInt:
			size += 8
		case TString:
			size += 4 + len(r[i].S)
		case TIntList:
			size += 4 + 8*len(r[i].List)
		}
	}
	buf := make([]byte, size)
	off := 0
	for i, c := range sch.Cols {
		switch c.Type {
		case TInt:
			binary.LittleEndian.PutUint64(buf[off:], uint64(r[i].I))
			off += 8
		case TString:
			binary.LittleEndian.PutUint32(buf[off:], uint32(len(r[i].S)))
			off += 4
			copy(buf[off:], r[i].S)
			off += len(r[i].S)
		case TIntList:
			binary.LittleEndian.PutUint32(buf[off:], uint32(len(r[i].List)))
			off += 4
			for _, x := range r[i].List {
				binary.LittleEndian.PutUint64(buf[off:], uint64(x))
				off += 8
			}
		}
	}
	return buf, nil
}

// Decode deserializes a row previously produced by Encode.
func Decode(sch Schema, buf []byte) (Row, error) {
	r := make(Row, sch.Arity())
	off := 0
	for i, c := range sch.Cols {
		switch c.Type {
		case TInt:
			if off+8 > len(buf) {
				return nil, fmt.Errorf("tuple: truncated int at col %d", i)
			}
			r[i] = I64(int64(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		case TString:
			if off+4 > len(buf) {
				return nil, fmt.Errorf("tuple: truncated string len at col %d", i)
			}
			n := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if off+n > len(buf) {
				return nil, fmt.Errorf("tuple: truncated string at col %d", i)
			}
			r[i] = Str(string(buf[off : off+n]))
			off += n
		case TIntList:
			if off+4 > len(buf) {
				return nil, fmt.Errorf("tuple: truncated list len at col %d", i)
			}
			n := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if off+8*n > len(buf) {
				return nil, fmt.Errorf("tuple: truncated list at col %d", i)
			}
			list := make([]int64, n)
			for j := 0; j < n; j++ {
				list[j] = int64(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			r[i] = IntList(list)
		}
	}
	if off != len(buf) {
		return nil, fmt.Errorf("tuple: %d trailing bytes", len(buf)-off)
	}
	return r, nil
}

// EncodeKey builds an order-preserving byte key from a subset of row columns,
// for use in indexes and hash tables. Integer keys sort correctly as bytes
// (big-endian with flipped sign bit); strings are terminated with 0x00 0x01
// escaping so that prefixes order correctly.
func EncodeKey(r Row, cols []int) string {
	var b strings.Builder
	for _, ci := range cols {
		v := r[ci]
		switch v.Kind {
		case TInt:
			var tmp [8]byte
			binary.BigEndian.PutUint64(tmp[:], uint64(v.I)^(1<<63))
			b.Write(tmp[:])
		case TString:
			for i := 0; i < len(v.S); i++ {
				c := v.S[i]
				if c == 0x00 {
					b.WriteByte(0x00)
					b.WriteByte(0xFF)
				} else {
					b.WriteByte(c)
				}
			}
			b.WriteByte(0x00)
			b.WriteByte(0x01)
		case TIntList:
			for _, x := range v.List {
				var tmp [8]byte
				binary.BigEndian.PutUint64(tmp[:], uint64(x)^(1<<63))
				b.Write(tmp[:])
			}
		}
	}
	return b.String()
}

// RowSize returns the number of bytes Encode would produce, used for page
// space accounting without allocating.
func RowSize(sch Schema, r Row) int {
	size := 0
	for i, c := range sch.Cols {
		switch c.Type {
		case TInt:
			size += 8
		case TString:
			size += 4 + len(r[i].S)
		case TIntList:
			size += 4 + 8*len(r[i].List)
		}
	}
	return size
}
