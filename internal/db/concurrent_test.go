package db

import (
	"fmt"
	"sync"
	"testing"

	"tuffy/internal/db/tuple"
)

// TestConcurrentQueries runs the same join query from many goroutines over a
// deliberately tiny buffer pool (run with -race): the parallel grounder's
// workload is exactly concurrent read-only SELECTs, and every run must see
// the same result set.
func TestConcurrentQueries(t *testing.T) {
	d := Open(Config{BufferPoolPages: 4})
	tab, err := d.CreateTable("edge", tuple.NewSchema(
		tuple.Col("src", tuple.TInt), tuple.Col("dst", tuple.TInt)))
	if err != nil {
		t.Fatal(err)
	}
	var rows []tuple.Row
	const n = 400
	for i := 0; i < n; i++ {
		rows = append(rows, tuple.Row{tuple.I64(int64(i)), tuple.I64(int64((i + 1) % n))})
	}
	if err := tab.InsertMany(rows); err != nil {
		t.Fatal(err)
	}

	const q = "SELECT a.src, b.dst FROM edge a, edge b WHERE a.dst = b.src"
	want, err := d.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Data) != n {
		t.Fatalf("baseline result has %d rows, want %d", len(want.Data), n)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				got, err := d.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if len(got.Data) != len(want.Data) {
					errs <- fmt.Errorf("concurrent query returned %d rows, want %d", len(got.Data), len(want.Data))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentCatalogAccess exercises table creation, lookup and querying
// from separate goroutines touching separate tables (run with -race).
func TestConcurrentCatalogAccess(t *testing.T) {
	d := Open(Config{BufferPoolPages: 8})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", w)
			tab, err := d.CreateTable(name, tuple.NewSchema(tuple.Col("v", tuple.TInt)))
			if err != nil {
				errs <- err
				return
			}
			var rows []tuple.Row
			for i := 0; i < 50; i++ {
				rows = append(rows, tuple.Row{tuple.I64(int64(i))})
			}
			if err := tab.InsertMany(rows); err != nil {
				errs <- err
				return
			}
			res, err := d.Query(fmt.Sprintf("SELECT v FROM %s WHERE v <> 7", name))
			if err != nil {
				errs <- err
				return
			}
			if len(res.Data) != 49 {
				errs <- fmt.Errorf("%s: got %d rows", name, len(res.Data))
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestInsertManyMatchesInsert checks the batched table-load path produces
// the same table state as row-at-a-time inserts.
func TestInsertManyMatchesInsert(t *testing.T) {
	mkRows := func() []tuple.Row {
		var rows []tuple.Row
		for i := 0; i < 300; i++ {
			rows = append(rows, tuple.Row{tuple.I64(int64(i)), tuple.I64(int64(i % 7))})
		}
		return rows
	}
	sch := tuple.NewSchema(tuple.Col("a", tuple.TInt), tuple.Col("b", tuple.TInt))

	d1 := Open(Config{})
	t1, err := d1.CreateTable("x", sch)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mkRows() {
		if err := t1.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	d2 := Open(Config{})
	t2, err := d2.CreateTable("x", sch)
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.InsertMany(mkRows()); err != nil {
		t.Fatal(err)
	}

	if t1.RowCount() != t2.RowCount() {
		t.Fatalf("row counts differ: %d vs %d", t1.RowCount(), t2.RowCount())
	}
	for col := 0; col < 2; col++ {
		if t1.DistinctCount(col) != t2.DistinctCount(col) {
			t.Fatalf("distinct counts differ on col %d: %d vs %d",
				col, t1.DistinctCount(col), t2.DistinctCount(col))
		}
	}
	r1, err := d1.Query("SELECT a, b FROM x")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.Query("SELECT a, b FROM x")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r1.Data) != fmt.Sprint(r2.Data) {
		t.Fatal("scan outputs differ between Insert and InsertMany")
	}
}
