package db

import (
	"fmt"
	"testing"

	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
)

func reclaimSchema() tuple.Schema {
	return tuple.NewSchema(tuple.Col("a", tuple.TInt), tuple.Col("b", tuple.TInt))
}

// fillTable inserts enough rows to span several pages.
func fillTable(t *testing.T, tab *Table, rows int) {
	t.Helper()
	batch := make([]tuple.Row, rows)
	for i := range batch {
		batch[i] = tuple.Row{tuple.I64(int64(i)), tuple.I64(int64(i * 7))}
	}
	if err := tab.InsertMany(batch); err != nil {
		t.Fatal(err)
	}
}

// DropTable must return the dropped table's pages to a free list: repeated
// create/fill/drop cycles hold the disk's page footprint at the high-water
// mark of one cycle instead of growing it linearly.
func TestDropTableReclaimsPages(t *testing.T) {
	disk := storage.NewMemDisk()
	d := Open(Config{Disk: disk, BufferPoolPages: 16})

	const rows = 4000 // several pages worth
	run := func(i int) {
		name := fmt.Sprintf("helper_%d", i)
		tab, err := d.CreateTable(name, reclaimSchema())
		if err != nil {
			t.Fatal(err)
		}
		fillTable(t, tab, rows)
		// Read everything back so pages are cached (and some dirtied frames
		// remain in the pool when the drop happens).
		n := 0
		if err := tab.ScanRows(func(storage.RecordID, tuple.Row) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != rows {
			t.Fatalf("cycle %d: scanned %d rows, want %d", i, n, rows)
		}
		if err := d.DropTable(name); err != nil {
			t.Fatal(err)
		}
	}

	run(0)
	baseline := disk.PageFootprint()
	if baseline == 0 {
		t.Fatal("no pages allocated")
	}
	for i := 1; i <= 5; i++ {
		run(i)
		if got := disk.PageFootprint(); got != baseline {
			t.Fatalf("cycle %d: page footprint %d != baseline %d (pages leaked)", i, got, baseline)
		}
	}
}

// A dropped table's file id is reused, and the recreated table starts
// empty even though the file id saw prior data.
func TestDropTableReusesFileIDs(t *testing.T) {
	d := Open(Config{})
	t1, err := d.CreateTable("one", reclaimSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillTable(t, t1, 100)
	file := t1.Heap().FileID()
	if err := d.DropTable("one"); err != nil {
		t.Fatal(err)
	}
	t2, err := d.CreateTable("two", reclaimSchema())
	if err != nil {
		t.Fatal(err)
	}
	if got := t2.Heap().FileID(); got != file {
		t.Fatalf("new table got file %d, want reused %d", got, file)
	}
	if n := t2.RowCount(); n != 0 {
		t.Fatalf("recreated table sees %d stale rows", n)
	}
	// The recycled file must serve fresh data correctly.
	fillTable(t, t2, 50)
	n := 0
	if err := t2.ScanRows(func(storage.RecordID, tuple.Row) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("scanned %d rows, want 50", n)
	}
}

// Dropping a missing table still errors.
func TestDropTableMissing(t *testing.T) {
	d := Open(Config{})
	if err := d.DropTable("nope"); err == nil {
		t.Fatal("drop of missing table accepted")
	}
}
