// Package db is the embedded relational engine ("minidb") that plays the
// role PostgreSQL plays in the Tuffy paper: it stores the predicate and
// clause tables, executes the grounding SQL produced by the bottom-up
// grounder, and hosts the in-database search variant (Tuffy-mm). It wires
// together the storage, index, exec, plan and sqlparse packages and exposes
// Exec/Query plus a direct bulk-load path.
package db

import (
	"fmt"
	"strings"
	"sync"

	"tuffy/internal/db/exec"
	"tuffy/internal/db/index"
	"tuffy/internal/db/plan"
	"tuffy/internal/db/sqlparse"
	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
)

// Config controls engine construction.
type Config struct {
	// BufferPoolPages caps the buffer pool (default 4096 pages = 32 MB).
	BufferPoolPages int
	// Plan holds the optimizer knobs (lesion-study switches).
	Plan plan.Options
	// Disk overrides the default in-memory disk (e.g. one with injected
	// latency for I/O-cost experiments).
	Disk storage.Disk
}

// DB is one engine instance. The catalog and each table's secondary
// structures are guarded by RWMutexes, and the storage layer uses pin counts
// under its own lock, so concurrent read-only queries (the parallel
// grounder's workload) are safe and run without serializing on a single
// lock. DML statements take the same locks; concurrent writers to one table
// additionally rely on the heap file's single-writer contract.
type DB struct {
	mu       sync.RWMutex
	disk     storage.Disk
	pool     *storage.BufferPool
	tables   map[string]*Table
	nextFile int32
	// freeFiles holds file ids whose tables were dropped and whose pages
	// were returned to the disk's free list; CreateTable reuses them before
	// minting new ids, so repeated create/drop cycles (per-query helper
	// tables) hold storage at its high-water mark.
	freeFiles []int32
	planOpts  plan.Options
}

// Open creates an engine.
func Open(cfg Config) *DB {
	if cfg.BufferPoolPages == 0 {
		cfg.BufferPoolPages = 4096
	}
	d := cfg.Disk
	if d == nil {
		d = storage.NewMemDisk()
	}
	return &DB{
		disk:     d,
		pool:     storage.NewBufferPool(d, cfg.BufferPoolPages),
		tables:   make(map[string]*Table),
		nextFile: 1,
		planOpts: cfg.Plan,
	}
}

// Disk exposes the underlying disk (for I/O stats in experiments).
func (db *DB) Disk() storage.Disk { return db.disk }

// Pool exposes the buffer pool (for hit/miss stats in experiments).
func (db *DB) Pool() *storage.BufferPool { return db.pool }

// SetPlanOptions swaps the optimizer knobs (lesion study).
func (db *DB) SetPlanOptions(o plan.Options) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.planOpts = o
}

// PlanOptions returns the current optimizer knobs.
func (db *DB) PlanOptions() plan.Options {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.planOpts
}

// Table is one base table: heap storage, schema, statistics and optional
// secondary indexes.
type Table struct {
	db   *DB
	name string
	sch  tuple.Schema
	heap *storage.HeapFile

	// mu guards the statistics and index maps below so the planner can read
	// them while another table loads concurrently.
	mu       sync.RWMutex
	distinct []map[string]struct{} // per-column distinct tracking
	hashIdx  map[string]*index.HashIndex
	btreeIdx map[string]*index.BTree
}

// CreateTable creates a table; it fails if the name exists.
func (db *DB) CreateTable(name string, sch tuple.Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := db.tables[key]; dup {
		return nil, fmt.Errorf("db: table %q already exists", name)
	}
	file := db.nextFile
	if n := len(db.freeFiles); n > 0 {
		file = db.freeFiles[n-1]
		db.freeFiles = db.freeFiles[:n-1]
	} else {
		db.nextFile++
	}
	t := &Table{
		db:       db,
		name:     name,
		sch:      sch,
		heap:     storage.NewHeapFile(db.pool, file),
		distinct: make([]map[string]struct{}, sch.Arity()),
		hashIdx:  make(map[string]*index.HashIndex),
		btreeIdx: make(map[string]*index.BTree),
	}
	for i := range t.distinct {
		t.distinct[i] = make(map[string]struct{})
	}
	db.tables[key] = t
	return t, nil
}

// DropTable removes a table from the catalog and returns its pages to the
// free list: the table's cached frames are discarded (without write-back),
// its file is truncated on disk, and the file id is queued for reuse by the
// next CreateTable. The caller must ensure no other user still reads the
// table; if a page is still pinned the table is dropped from the catalog
// but its storage is leaked rather than corrupted.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	key := strings.ToLower(name)
	t, ok := db.tables[key]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("db: no table %q", name)
	}
	delete(db.tables, key)
	db.mu.Unlock()

	file := t.heap.FileID()
	// Discard outside db.mu: DiscardFile may wait on an in-flight eviction
	// write-back, and holding the catalog lock across that wait would stall
	// unrelated queries.
	if err := db.pool.DiscardFile(file); err != nil {
		return nil // dropped from the catalog; storage intentionally leaked
	}
	db.disk.TruncateFile(file)
	db.mu.Lock()
	db.freeFiles = append(db.freeFiles, file)
	db.mu.Unlock()
	return nil
}

// Table looks up a table by name (case-insensitive).
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableMeta implements plan.Catalog.
func (db *DB) TableMeta(name string) (plan.TableMeta, bool) {
	t, ok := db.Table(name)
	if !ok {
		return nil, false
	}
	return t, true
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema implements plan.TableMeta.
func (t *Table) Schema() tuple.Schema { return t.sch }

// RowCount implements plan.TableMeta.
func (t *Table) RowCount() int64 { return t.heap.NumRecords() }

// DistinctCount implements plan.TableMeta.
func (t *Table) DistinctCount(col int) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= len(t.distinct) {
		return 0
	}
	return int64(len(t.distinct[col]))
}

// NewScan implements plan.TableMeta.
func (t *Table) NewScan() exec.Iterator { return exec.NewSeqScan(t.heap, t.sch) }

// Blocks implements plan.BlockMeta: the table's allocated page count, the
// B(t) the optimizer's cost nodes charge a sequential scan.
func (t *Table) Blocks() int64 { return int64(t.heap.NumPages()) }

// HasEqIndex implements plan.IndexMeta: reports whether a single-column
// hash index exists on the column position.
func (t *Table) HasEqIndex(col int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.hashIdx[colsKey([]int{col})]
	return ok
}

// NewIndexScan implements plan.IndexMeta: an iterator over the rows whose
// column equals val, via the hash index, emitted in heap order so the row
// order matches a filtered sequential scan.
func (t *Table) NewIndexScan(col int, val tuple.Value) exec.Iterator {
	t.mu.RLock()
	idx, ok := t.hashIdx[colsKey([]int{col})]
	t.mu.RUnlock()
	if !ok {
		// The index was dropped between planning and execution; degrade to
		// a full scan (correct, just slower).
		return t.NewScan()
	}
	rids := idx.Lookup(tuple.EncodeKey(tuple.Row{val}, []int{0}))
	return exec.NewRIDScan(t.heap, t.sch, rids)
}

// NewRangeScan implements plan.RangeMeta: a sequential scan restricted to
// the rows whose column hashes into residue rem modulo mod, with the
// restriction applied inside the heap-file scan callback.
func (t *Table) NewRangeScan(col int, mod, rem uint32) exec.Iterator {
	return exec.NewRangeScan(t.heap, t.sch, col, mod, rem)
}

// Heap exposes the underlying heap file (used by the in-database search).
func (t *Table) Heap() *storage.HeapFile { return t.heap }

// Insert appends one row.
func (t *Table) Insert(row tuple.Row) error {
	rec, err := tuple.Encode(t.sch, row)
	if err != nil {
		return fmt.Errorf("db: insert into %s: %w", t.name, err)
	}
	rid, err := t.heap.Insert(rec)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.noteRowLocked(row, rid)
	return nil
}

// noteRowLocked updates statistics and secondary indexes for a stored row.
func (t *Table) noteRowLocked(row tuple.Row, rid storage.RecordID) {
	for i := range t.sch.Cols {
		t.distinct[i][tuple.EncodeKey(row, []int{i})] = struct{}{}
	}
	for cols, idx := range t.hashIdx {
		idx.Insert(tuple.EncodeKey(row, parseColsKey(cols)), rid)
	}
	for cols, idx := range t.btreeIdx {
		idx.Insert(tuple.EncodeKey(row, parseColsKey(cols)), rid)
	}
}

// InsertMany bulk-loads rows through the heap file's batched insert path
// (one page pin per page rather than per row) and updates statistics and
// indexes under a single lock acquisition.
func (t *Table) InsertMany(rows []tuple.Row) error {
	if len(rows) == 0 {
		return nil
	}
	recs := make([][]byte, len(rows))
	for i, r := range rows {
		rec, err := tuple.Encode(t.sch, r)
		if err != nil {
			return fmt.Errorf("db: insert into %s: %w", t.name, err)
		}
		recs[i] = rec
	}
	// InsertBatch returns the ids of the records it managed to store even on
	// error; register that prefix so the heap, statistics and indexes stay
	// consistent with each other whatever happens.
	rids, err := t.heap.InsertBatch(recs)
	t.mu.Lock()
	for i := range rids {
		t.noteRowLocked(rows[i], rids[i])
	}
	t.mu.Unlock()
	return err
}

// colsKey canonicalizes an index column list.
func colsKey(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

func parseColsKey(s string) []int {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		fmt.Sscan(p, &out[i])
	}
	return out
}

// BuildHashIndex builds (or rebuilds) a hash index on the column positions.
func (t *Table) BuildHashIndex(cols []int) (*index.HashIndex, error) {
	idx := index.NewHashIndex()
	err := t.heap.Scan(func(rid storage.RecordID, rec []byte) error {
		row, err := tuple.Decode(t.sch, rec)
		if err != nil {
			return err
		}
		idx.Insert(tuple.EncodeKey(row, cols), rid)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.hashIdx[colsKey(cols)] = idx
	t.mu.Unlock()
	return idx, nil
}

// BuildBTreeIndex builds (or rebuilds) a B-tree index on the column
// positions.
func (t *Table) BuildBTreeIndex(cols []int) (*index.BTree, error) {
	idx := index.NewBTree()
	err := t.heap.Scan(func(rid storage.RecordID, rec []byte) error {
		row, err := tuple.Decode(t.sch, rec)
		if err != nil {
			return err
		}
		idx.Insert(tuple.EncodeKey(row, cols), rid)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.btreeIdx[colsKey(cols)] = idx
	t.mu.Unlock()
	return idx, nil
}

// DropHashIndex deregisters the hash index on the column positions,
// releasing its O(rows) in-memory footprint for future lookups. Holders of
// the index pointer (e.g. a search mid-flight) are unaffected.
func (t *Table) DropHashIndex(cols []int) {
	t.mu.Lock()
	delete(t.hashIdx, colsKey(cols))
	t.mu.Unlock()
}

// HashIndexOn returns the hash index on cols if built.
func (t *Table) HashIndexOn(cols []int) (*index.HashIndex, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.hashIdx[colsKey(cols)]
	return idx, ok
}

// Get decodes the row at rid; nil row if deleted.
func (t *Table) Get(rid storage.RecordID) (tuple.Row, error) {
	rec, err := t.heap.Get(rid)
	if err != nil || rec == nil {
		return nil, err
	}
	return tuple.Decode(t.sch, rec)
}

// UpdateAt overwrites the row at rid. The encoded size must match (true for
// fixed-width schemas, which all engine-internal tables use). Secondary
// indexes are kept consistent: the old row's keys are dropped and the new
// row's keys inserted.
func (t *Table) UpdateAt(rid storage.RecordID, row tuple.Row) error {
	return t.UpdateMany([]storage.RecordID{rid}, []tuple.Row{row})
}

// UpdateMany overwrites the rows at rids in one batched pass (rids and rows
// are aligned; each page is pinned once per run of consecutive same-page
// rids) and swaps the secondary-index entries of every touched row. This is
// the set-oriented update path the in-database search uses to reuse
// side-table slots in place.
func (t *Table) UpdateMany(rids []storage.RecordID, rows []tuple.Row) error {
	if len(rids) != len(rows) {
		return fmt.Errorf("db: UpdateMany on %s: %d rids != %d rows", t.name, len(rids), len(rows))
	}
	if len(rids) == 0 {
		return nil
	}
	recs := make([][]byte, len(rows))
	for i, r := range rows {
		rec, err := tuple.Encode(t.sch, r)
		if err != nil {
			return fmt.Errorf("db: update %s: %w", t.name, err)
		}
		recs[i] = rec
	}
	// Reindex the prefix that was stored even on error so the indexes stay
	// consistent with the heap whatever happens.
	old, err := t.heap.UpdateBatch(rids, recs)
	if ierr := t.reindexRows(old, rids, rows); ierr != nil && err == nil {
		err = ierr
	}
	return err
}

// ReviveMany rewrites previously deleted rows' slots with new rows (rids
// and rows aligned, one page pin per same-page run), registering the new
// rows in statistics and secondary indexes. Together with DeleteMany it
// forms a free-slot list: a caller that remembers the rids it deleted can
// hand them back here and the table reuses their space instead of
// appending, holding the heap at its high-water row count under churn —
// the in-database search's violated-clause side table is the user.
func (t *Table) ReviveMany(rids []storage.RecordID, rows []tuple.Row) error {
	if len(rids) != len(rows) {
		return fmt.Errorf("db: ReviveMany on %s: %d rids != %d rows", t.name, len(rids), len(rows))
	}
	if len(rids) == 0 {
		return nil
	}
	recs := make([][]byte, len(rows))
	for i, r := range rows {
		rec, err := tuple.Encode(t.sch, r)
		if err != nil {
			return fmt.Errorf("db: revive into %s: %w", t.name, err)
		}
		recs[i] = rec
	}
	// Register the stored prefix even on error so statistics and indexes
	// stay consistent with the heap whatever happens.
	n, err := t.heap.ReviveBatch(rids, recs)
	t.mu.Lock()
	for i := 0; i < n; i++ {
		t.noteRowLocked(rows[i], rids[i])
	}
	t.mu.Unlock()
	return err
}

// DeleteAt removes the row at rid, dropping its secondary-index entries.
func (t *Table) DeleteAt(rid storage.RecordID) error {
	return t.DeleteMany([]storage.RecordID{rid})
}

// DeleteMany removes the rows at rids in one batched pass (each page pinned
// once per run of consecutive same-page rids), dropping their secondary-
// index entries. Column-distinct statistics are upper-bound estimates and
// are not decremented.
func (t *Table) DeleteMany(rids []storage.RecordID) error {
	if len(rids) == 0 {
		return nil
	}
	old, err := t.heap.DeleteBatch(rids)
	if derr := t.deindexRecs(old, rids); derr != nil && err == nil {
		err = derr
	}
	return err
}

// reindexRows swaps index entries from the old record images to the new
// rows. old may be a prefix of rids/rows after a partial batch failure.
// Distinct statistics pick up the new values whether or not indexes exist,
// so planner estimates don't depend on index presence.
func (t *Table) reindexRows(old [][]byte, rids []storage.RecordID, rows []tuple.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	hasIdx := len(t.hashIdx) > 0 || len(t.btreeIdx) > 0
	for i := range old {
		if hasIdx {
			oldRow, err := tuple.Decode(t.sch, old[i])
			if err != nil {
				return err
			}
			t.dropRowLocked(oldRow, rids[i])
		}
		t.noteRowLocked(rows[i], rids[i])
	}
	return nil
}

// deindexRecs drops index entries for deleted record images. old may be a
// prefix of rids after a partial batch failure.
func (t *Table) deindexRecs(old [][]byte, rids []storage.RecordID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.hashIdx) == 0 && len(t.btreeIdx) == 0 {
		return nil
	}
	for i := range old {
		row, err := tuple.Decode(t.sch, old[i])
		if err != nil {
			return err
		}
		t.dropRowLocked(row, rids[i])
	}
	return nil
}

// dropRowLocked removes a stored row's entries from all secondary indexes.
func (t *Table) dropRowLocked(row tuple.Row, rid storage.RecordID) {
	for cols, idx := range t.hashIdx {
		idx.Delete(tuple.EncodeKey(row, parseColsKey(cols)), rid)
	}
	for cols, idx := range t.btreeIdx {
		idx.Remove(tuple.EncodeKey(row, parseColsKey(cols)), rid)
	}
}

// ScanRows calls fn for each row with its record id.
func (t *Table) ScanRows(fn func(rid storage.RecordID, row tuple.Row) error) error {
	return t.heap.Scan(func(rid storage.RecordID, rec []byte) error {
		row, err := tuple.Decode(t.sch, rec)
		if err != nil {
			return err
		}
		return fn(rid, row)
	})
}

// Rows is a materialized query result.
type Rows struct {
	Schema tuple.Schema
	Data   []tuple.Row
}

// Query parses, plans and executes a SELECT, materializing the result.
func (db *DB) Query(sql string) (*Rows, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*plan.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("db: Query expects SELECT")
	}
	return db.runSelect(sel)
}

func (db *DB) runSelect(sel *plan.SelectStmt) (*Rows, error) {
	p := plan.NewPlanner(db, db.PlanOptions())
	it, err := p.Plan(sel)
	if err != nil {
		return nil, err
	}
	rows, err := exec.Collect(it)
	if err != nil {
		return nil, err
	}
	return &Rows{Schema: it.Schema(), Data: rows}, nil
}

// QueryRanged parses, plans and executes a SELECT with hash-range scan
// restrictions attached to the named range variables (there is no SQL
// syntax for them). Running the same SQL once per residue 0..Mod-1 yields
// disjoint results whose union is exactly the unrestricted query — the
// partitioned-grounding contract.
func (db *DB) QueryRanged(sql string, ranges []plan.HashRange) (*Rows, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*plan.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("db: QueryRanged expects SELECT")
	}
	sel.Ranges = append(sel.Ranges, ranges...)
	return db.runSelect(sel)
}

// EstimateQuery runs the optimizer on a SELECT without executing it and
// returns its Explain: join order, access paths and root cost estimates.
func (db *DB) EstimateQuery(sql string) (*plan.Explain, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*plan.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("db: EstimateQuery expects SELECT")
	}
	p := plan.NewPlanner(db, db.PlanOptions())
	return p.EstimateSelect(sel)
}

// QueryIter plans a SELECT and returns the iterator without materializing;
// the caller Opens/Closes it.
func (db *DB) QueryIter(sql string) (exec.Iterator, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*plan.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("db: QueryIter expects SELECT")
	}
	p := plan.NewPlanner(db, db.PlanOptions())
	return p.Plan(sel)
}

// Exec runs a DDL/DML statement and returns the number of affected rows.
func (db *DB) Exec(sql string) (int64, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return 0, err
	}
	switch s := stmt.(type) {
	case *plan.CreateTableStmt:
		_, err := db.CreateTable(s.Table, s.Sch)
		return 0, err
	case *plan.InsertStmt:
		return db.execInsert(s)
	case *plan.UpdateStmt:
		return db.execUpdate(s)
	case *plan.DeleteStmt:
		return db.execDelete(s)
	case *plan.SelectStmt:
		rows, err := db.runSelect(s)
		if err != nil {
			return 0, err
		}
		return int64(len(rows.Data)), nil
	default:
		return 0, fmt.Errorf("db: unsupported statement %T", stmt)
	}
}

func (db *DB) execInsert(s *plan.InsertStmt) (int64, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("db: no table %q", s.Table)
	}
	if s.Select != nil {
		res, err := db.runSelect(s.Select)
		if err != nil {
			return 0, err
		}
		if res.Schema.Arity() != t.sch.Arity() {
			return 0, fmt.Errorf("db: INSERT SELECT arity %d != table arity %d", res.Schema.Arity(), t.sch.Arity())
		}
		for _, row := range res.Data {
			coerced, err := coerceRow(t.sch, row)
			if err != nil {
				return 0, err
			}
			if err := t.Insert(coerced); err != nil {
				return 0, err
			}
		}
		return int64(len(res.Data)), nil
	}
	var n int64
	for _, row := range s.Rows {
		coerced, err := coerceRow(t.sch, row)
		if err != nil {
			return 0, err
		}
		if err := t.Insert(coerced); err != nil {
			return 0, err
		}
		n++
	}
	return n, nil
}

// coerceRow checks kinds against the schema (no implicit conversions beyond
// identical kinds).
func coerceRow(sch tuple.Schema, row tuple.Row) (tuple.Row, error) {
	if len(row) != sch.Arity() {
		return nil, fmt.Errorf("db: row arity %d != %d", len(row), sch.Arity())
	}
	for i, c := range sch.Cols {
		if row[i].Kind != c.Type {
			return nil, fmt.Errorf("db: column %s expects %v, got %v", c.Name, c.Type, row[i].Kind)
		}
	}
	return row, nil
}

// wherePred compiles conjunctive conditions against a single table schema.
func wherePred(t *Table, where []plan.Cond) (exec.Expr, error) {
	if len(where) == 0 {
		return nil, nil
	}
	var preds []exec.Expr
	for _, c := range where {
		l, err := operandExpr(t, c.L)
		if err != nil {
			return nil, err
		}
		r, err := operandExpr(t, c.R)
		if err != nil {
			return nil, err
		}
		preds = append(preds, exec.Cmp{Op: c.Op, L: l, R: r})
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return exec.And{Kids: preds}, nil
}

func operandExpr(t *Table, o plan.Operand) (exec.Expr, error) {
	if !o.IsCol {
		return exec.Const{Val: o.Val}, nil
	}
	idx := t.sch.ColIndex(o.Col)
	if idx < 0 {
		return nil, fmt.Errorf("db: no column %q in %s", o.Col, t.name)
	}
	return exec.ColRef{Idx: idx, Name: o.Col}, nil
}

func (db *DB) execUpdate(s *plan.UpdateStmt) (int64, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("db: no table %q", s.Table)
	}
	col := t.sch.ColIndex(s.Col)
	if col < 0 {
		return 0, fmt.Errorf("db: no column %q in %s", s.Col, s.Table)
	}
	if t.sch.Cols[col].Type != s.Val.Kind {
		return 0, fmt.Errorf("db: SET type mismatch on %s", s.Col)
	}
	pred, err := wherePred(t, s.Where)
	if err != nil {
		return 0, err
	}
	type match struct {
		rid storage.RecordID
		row tuple.Row
	}
	var matches []match
	err = t.ScanRows(func(rid storage.RecordID, row tuple.Row) error {
		ok, err := exec.EvalPred(pred, row)
		if err != nil {
			return err
		}
		if ok {
			matches = append(matches, match{rid, row.Clone()})
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	rids := make([]storage.RecordID, len(matches))
	rows := make([]tuple.Row, len(matches))
	for i, m := range matches {
		m.row[col] = s.Val
		rids[i], rows[i] = m.rid, m.row
	}
	if err := t.UpdateMany(rids, rows); err != nil {
		return 0, err
	}
	return int64(len(matches)), nil
}

func (db *DB) execDelete(s *plan.DeleteStmt) (int64, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("db: no table %q", s.Table)
	}
	pred, err := wherePred(t, s.Where)
	if err != nil {
		return 0, err
	}
	var rids []storage.RecordID
	err = t.ScanRows(func(rid storage.RecordID, row tuple.Row) error {
		ok, err := exec.EvalPred(pred, row)
		if err != nil {
			return err
		}
		if ok {
			rids = append(rids, rid)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := t.DeleteMany(rids); err != nil {
		return 0, err
	}
	return int64(len(rids)), nil
}

// TableNames lists the catalog (sorted order not guaranteed).
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.name)
	}
	return out
}
