package exec

import (
	"fmt"
	"sort"

	"tuffy/internal/db/tuple"
)

// AggFunc enumerates the aggregate functions.
type AggFunc int

const (
	AggCount AggFunc = iota // COUNT(*)
	AggSum
	AggMin
	AggMax
	AggArray // ARRAY_AGG over an integer expression
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggArray:
		return "ARRAY_AGG"
	}
	return "?"
}

// AggSpec is one aggregate in the output list.
type AggSpec struct {
	Func AggFunc
	Arg  Expr // nil for COUNT(*)
	Name string
}

// HashAggregate groups the child's rows by GroupCols and computes Aggs per
// group. Output schema: group columns (in GroupCols order) followed by one
// column per aggregate. ARRAY_AGG output lists are sorted ascending for
// determinism (the grounding layer relies on this when it builds existential
// clauses).
type HashAggregate struct {
	Child     Iterator
	GroupCols []int
	Aggs      []AggSpec

	sch    tuple.Schema
	groups []tuple.Row
	idx    int
}

type aggState struct {
	count int64
	sum   int64
	min   tuple.Value
	max   tuple.Value
	has   bool
	list  []int64
}

// NewHashAggregate builds a grouped aggregation.
func NewHashAggregate(child Iterator, groupCols []int, aggs []AggSpec) *HashAggregate {
	childSch := child.Schema()
	var cols []tuple.Column
	for _, g := range groupCols {
		cols = append(cols, childSch.Cols[g])
	}
	for _, a := range aggs {
		t := tuple.TInt
		if a.Func == AggArray {
			t = tuple.TIntList
		}
		name := a.Name
		if name == "" {
			name = a.Func.String()
		}
		cols = append(cols, tuple.Column{Name: name, Type: t})
	}
	return &HashAggregate{Child: child, GroupCols: groupCols, Aggs: aggs,
		sch: tuple.Schema{Cols: cols}}
}

// Open implements Iterator: it consumes the child and materializes groups.
func (h *HashAggregate) Open() error {
	if err := h.Child.Open(); err != nil {
		return err
	}
	type group struct {
		key    tuple.Row
		states []aggState
	}
	table := make(map[string]*group)
	var order []string // deterministic output: first-seen order, then sorted
	for {
		row, ok, err := h.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := tuple.EncodeKey(row, h.GroupCols)
		g := table[k]
		if g == nil {
			keyRow := make(tuple.Row, len(h.GroupCols))
			for i, c := range h.GroupCols {
				keyRow[i] = row[c]
			}
			g = &group{key: keyRow, states: make([]aggState, len(h.Aggs))}
			table[k] = g
			order = append(order, k)
		}
		for i, spec := range h.Aggs {
			st := &g.states[i]
			st.count++
			if spec.Arg == nil {
				continue
			}
			v, err := spec.Arg.Eval(row)
			if err != nil {
				return err
			}
			switch spec.Func {
			case AggSum:
				if v.Kind != tuple.TInt {
					return fmt.Errorf("exec: SUM over non-integer")
				}
				st.sum += v.I
			case AggMin:
				if !st.has || v.Compare(st.min) < 0 {
					st.min = v
				}
			case AggMax:
				if !st.has || v.Compare(st.max) > 0 {
					st.max = v
				}
			case AggArray:
				if v.Kind != tuple.TInt {
					return fmt.Errorf("exec: ARRAY_AGG over non-integer")
				}
				st.list = append(st.list, v.I)
			}
			st.has = true
		}
	}
	if err := h.Child.Close(); err != nil {
		return err
	}
	sort.Strings(order)
	h.groups = h.groups[:0]
	for _, k := range order {
		g := table[k]
		out := make(tuple.Row, 0, len(g.key)+len(h.Aggs))
		out = append(out, g.key...)
		for i, spec := range h.Aggs {
			st := &g.states[i]
			switch spec.Func {
			case AggCount:
				out = append(out, tuple.I64(st.count))
			case AggSum:
				out = append(out, tuple.I64(st.sum))
			case AggMin:
				out = append(out, st.min)
			case AggMax:
				out = append(out, st.max)
			case AggArray:
				sort.Slice(st.list, func(a, b int) bool { return st.list[a] < st.list[b] })
				out = append(out, tuple.IntList(st.list))
			}
		}
		h.groups = append(h.groups, out)
	}
	h.idx = 0
	return nil
}

// Next implements Iterator.
func (h *HashAggregate) Next() (tuple.Row, bool, error) {
	if h.idx >= len(h.groups) {
		return nil, false, nil
	}
	r := h.groups[h.idx]
	h.idx++
	return r, true, nil
}

// Close implements Iterator.
func (h *HashAggregate) Close() error {
	h.groups = nil
	return nil
}

// Schema implements Iterator.
func (h *HashAggregate) Schema() tuple.Schema { return h.sch }
