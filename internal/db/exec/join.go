package exec

import (
	"tuffy/internal/db/tuple"
)

// The three join algorithms of the engine. The paper's lesion study
// (Table 6) shows that hash and sort-merge joins — not the optimizer's join
// ordering — account for Tuffy's grounding speed-up over Alchemy's nested
// loops, so all three are first-class and the planner can be pinned to any
// of them.

// NestedLoopJoin joins by re-scanning the inner (right) input per outer row.
// The right child must support repeated Open/Close cycles. On is an optional
// residual predicate over the concatenated row; nil means cross product.
type NestedLoopJoin struct {
	Left, Right Iterator
	On          Expr

	sch      tuple.Schema
	leftRow  tuple.Row
	haveLeft bool
	out      tuple.Row
}

// NewNestedLoopJoin builds a nested-loop join.
func NewNestedLoopJoin(left, right Iterator, on Expr) *NestedLoopJoin {
	return &NestedLoopJoin{Left: left, Right: right, On: on,
		sch: left.Schema().Concat(right.Schema())}
}

// Open implements Iterator.
func (j *NestedLoopJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.haveLeft = false
	j.out = make(tuple.Row, j.sch.Arity())
	return nil
}

// Next implements Iterator.
func (j *NestedLoopJoin) Next() (tuple.Row, bool, error) {
	for {
		if !j.haveLeft {
			lrow, ok, err := j.Left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.leftRow = lrow.Clone()
			j.haveLeft = true
			if err := j.Right.Open(); err != nil {
				return nil, false, err
			}
		}
		rrow, ok, err := j.Right.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if err := j.Right.Close(); err != nil {
				return nil, false, err
			}
			j.haveLeft = false
			continue
		}
		copy(j.out, j.leftRow)
		copy(j.out[len(j.leftRow):], rrow)
		pass, err := EvalPred(j.On, j.out)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return j.out, true, nil
		}
	}
}

// Close implements Iterator.
func (j *NestedLoopJoin) Close() error {
	if j.haveLeft {
		j.Right.Close()
		j.haveLeft = false
	}
	return j.Left.Close()
}

// Schema implements Iterator.
func (j *NestedLoopJoin) Schema() tuple.Schema { return j.sch }

// HashJoin is an equi-join: it builds a hash table on the right input keyed
// by RightKeys, then probes with LeftKeys. Residual is an optional extra
// predicate over the concatenated row.
type HashJoin struct {
	Left, Right Iterator
	LeftKeys    []int
	RightKeys   []int
	Residual    Expr

	sch     tuple.Schema
	table   map[string][]tuple.Row
	matches []tuple.Row
	midx    int
	leftRow tuple.Row
	out     tuple.Row
}

// NewHashJoin builds a hash join on the given key column positions.
func NewHashJoin(left, right Iterator, leftKeys, rightKeys []int, residual Expr) *HashJoin {
	return &HashJoin{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys,
		Residual: residual, sch: left.Schema().Concat(right.Schema())}
}

// Open implements Iterator; it materializes the build side.
func (j *HashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.table = make(map[string][]tuple.Row)
	for {
		row, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := tuple.EncodeKey(row, j.RightKeys)
		j.table[k] = append(j.table[k], row.Clone())
	}
	if err := j.Right.Close(); err != nil {
		return err
	}
	j.matches = nil
	j.midx = 0
	j.out = make(tuple.Row, j.sch.Arity())
	return nil
}

// Next implements Iterator.
func (j *HashJoin) Next() (tuple.Row, bool, error) {
	for {
		for j.midx < len(j.matches) {
			m := j.matches[j.midx]
			j.midx++
			copy(j.out, j.leftRow)
			copy(j.out[len(j.leftRow):], m)
			pass, err := EvalPred(j.Residual, j.out)
			if err != nil {
				return nil, false, err
			}
			if pass {
				return j.out, true, nil
			}
		}
		lrow, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.leftRow = lrow.Clone()
		j.matches = j.table[tuple.EncodeKey(lrow, j.LeftKeys)]
		j.midx = 0
	}
}

// Close implements Iterator.
func (j *HashJoin) Close() error {
	j.table = nil
	j.matches = nil
	return j.Left.Close()
}

// Schema implements Iterator.
func (j *HashJoin) Schema() tuple.Schema { return j.sch }

// BuildSize returns the number of buckets in the build table (after Open);
// used by tests.
func (j *HashJoin) BuildSize() int { return len(j.table) }

// MergeJoin is an equi-join over inputs sorted on the key columns. Both
// inputs must already be ordered by their key columns ascending (wrap in a
// Sort otherwise). Residual is an optional extra predicate.
type MergeJoin struct {
	Left, Right Iterator
	LeftKeys    []int
	RightKeys   []int
	Residual    Expr

	sch   tuple.Schema
	lrow  tuple.Row
	lok   bool
	group []tuple.Row // current right-side group with equal key
	gidx  int
	gkey  string
	rbuf  tuple.Row // lookahead right row
	rok   bool
	out   tuple.Row
	init  bool
}

// NewMergeJoin builds a sort-merge join; inputs must be key-sorted.
func NewMergeJoin(left, right Iterator, leftKeys, rightKeys []int, residual Expr) *MergeJoin {
	return &MergeJoin{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys,
		Residual: residual, sch: left.Schema().Concat(right.Schema())}
}

// Open implements Iterator.
func (j *MergeJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.out = make(tuple.Row, j.sch.Arity())
	j.group = nil
	j.gidx = 0
	j.init = false
	return nil
}

func (j *MergeJoin) advanceLeft() error {
	row, ok, err := j.Left.Next()
	if err != nil {
		return err
	}
	j.lok = ok
	if ok {
		j.lrow = row.Clone()
	}
	return nil
}

func (j *MergeJoin) advanceRight() error {
	row, ok, err := j.Right.Next()
	if err != nil {
		return err
	}
	j.rok = ok
	if ok {
		j.rbuf = row.Clone()
	}
	return nil
}

// loadGroup gathers all right rows whose key equals j.rbuf's key.
func (j *MergeJoin) loadGroup() error {
	j.group = j.group[:0]
	j.gkey = tuple.EncodeKey(j.rbuf, j.RightKeys)
	for j.rok && tuple.EncodeKey(j.rbuf, j.RightKeys) == j.gkey {
		j.group = append(j.group, j.rbuf)
		if err := j.advanceRight(); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Iterator.
func (j *MergeJoin) Next() (tuple.Row, bool, error) {
	if !j.init {
		j.init = true
		if err := j.advanceLeft(); err != nil {
			return nil, false, err
		}
		if err := j.advanceRight(); err != nil {
			return nil, false, err
		}
		if j.rok {
			if err := j.loadGroup(); err != nil {
				return nil, false, err
			}
		}
	}
	for {
		if !j.lok {
			return nil, false, nil
		}
		lkey := tuple.EncodeKey(j.lrow, j.LeftKeys)
		// Position the right group at or above the left key.
		for len(j.group) > 0 && j.gkey < lkey {
			if !j.rok {
				j.group = j.group[:0]
				break
			}
			if err := j.loadGroup(); err != nil {
				return nil, false, err
			}
		}
		if len(j.group) == 0 || j.gkey > lkey {
			// No match for this left row.
			if len(j.group) == 0 && !j.rok {
				return nil, false, nil
			}
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
			j.gidx = 0
			continue
		}
		// gkey == lkey: emit pairs.
		for j.gidx < len(j.group) {
			m := j.group[j.gidx]
			j.gidx++
			copy(j.out, j.lrow)
			copy(j.out[len(j.lrow):], m)
			pass, err := EvalPred(j.Residual, j.out)
			if err != nil {
				return nil, false, err
			}
			if pass {
				return j.out, true, nil
			}
		}
		j.gidx = 0
		if err := j.advanceLeft(); err != nil {
			return nil, false, err
		}
	}
}

// Close implements Iterator.
func (j *MergeJoin) Close() error {
	j.group = nil
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Iterator.
func (j *MergeJoin) Schema() tuple.Schema { return j.sch }
