// Package exec implements the Volcano-style executor of the relational
// engine: scans, filters, projections, three join algorithms (nested-loop,
// hash, sort-merge), sorting, duplicate elimination, grouped aggregation and
// limits. Operators consume and produce tuple.Row values via the Iterator
// interface; expressions evaluate over rows.
package exec

import (
	"fmt"

	"tuffy/internal/db/tuple"
)

// Expr is a scalar expression over a row. Boolean results are TInt 0/1.
type Expr interface {
	Eval(row tuple.Row) (tuple.Value, error)
	String() string
}

// ColRef references a column of the input row by position.
type ColRef struct {
	Idx  int
	Name string
}

// Eval implements Expr.
func (c ColRef) Eval(row tuple.Row) (tuple.Value, error) {
	if c.Idx < 0 || c.Idx >= len(row) {
		return tuple.Value{}, fmt.Errorf("exec: column %d out of range (row arity %d)", c.Idx, len(row))
	}
	return row[c.Idx], nil
}

func (c ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal value.
type Const struct {
	Val tuple.Value
}

// Eval implements Expr.
func (c Const) Eval(tuple.Row) (tuple.Value, error) { return c.Val, nil }

func (c Const) String() string { return c.Val.String() }

// CmpOp enumerates comparison operators.
type CmpOp int

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// Cmp compares two sub-expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c Cmp) Eval(row tuple.Row) (tuple.Value, error) {
	l, err := c.L.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	r, err := c.R.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	if l.Kind != r.Kind {
		return tuple.Value{}, fmt.Errorf("exec: comparing %v with %v", l.Kind, r.Kind)
	}
	cv := l.Compare(r)
	var ok bool
	switch c.Op {
	case CmpEq:
		ok = cv == 0
	case CmpNe:
		ok = cv != 0
	case CmpLt:
		ok = cv < 0
	case CmpLe:
		ok = cv <= 0
	case CmpGt:
		ok = cv > 0
	case CmpGe:
		ok = cv >= 0
	}
	return boolVal(ok), nil
}

func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// And is an n-ary conjunction.
type And struct {
	Kids []Expr
}

// Eval implements Expr.
func (a And) Eval(row tuple.Row) (tuple.Value, error) {
	for _, k := range a.Kids {
		v, err := k.Eval(row)
		if err != nil {
			return tuple.Value{}, err
		}
		if !truthy(v) {
			return boolVal(false), nil
		}
	}
	return boolVal(true), nil
}

func (a And) String() string {
	s := ""
	for i, k := range a.Kids {
		if i > 0 {
			s += " AND "
		}
		s += k.String()
	}
	return s
}

// Or is an n-ary disjunction.
type Or struct {
	Kids []Expr
}

// Eval implements Expr.
func (o Or) Eval(row tuple.Row) (tuple.Value, error) {
	for _, k := range o.Kids {
		v, err := k.Eval(row)
		if err != nil {
			return tuple.Value{}, err
		}
		if truthy(v) {
			return boolVal(true), nil
		}
	}
	return boolVal(false), nil
}

func (o Or) String() string {
	s := ""
	for i, k := range o.Kids {
		if i > 0 {
			s += " OR "
		}
		s += k.String()
	}
	return s
}

// Not negates a boolean sub-expression.
type Not struct {
	Kid Expr
}

// Eval implements Expr.
func (n Not) Eval(row tuple.Row) (tuple.Value, error) {
	v, err := n.Kid.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	return boolVal(!truthy(v)), nil
}

func (n Not) String() string { return "NOT " + n.Kid.String() }

func boolVal(b bool) tuple.Value {
	if b {
		return tuple.I64(1)
	}
	return tuple.I64(0)
}

func truthy(v tuple.Value) bool { return v.Kind == tuple.TInt && v.I != 0 }

// EvalPred evaluates e as a predicate over row.
func EvalPred(e Expr, row tuple.Row) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	return truthy(v), nil
}
