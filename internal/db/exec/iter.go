package exec

import (
	"fmt"
	"sort"

	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
)

// Iterator is the Volcano operator interface. Open must be called before
// Next; Next returns (row, true, nil) per tuple and (nil, false, nil) at end
// of stream; Close releases resources. Rows returned by Next may be reused
// by the operator on subsequent calls unless documented otherwise; callers
// that retain rows must Clone them.
type Iterator interface {
	Open() error
	Next() (tuple.Row, bool, error)
	Close() error
	Schema() tuple.Schema
}

// Collect drains it and returns all rows (cloned). It Opens and Closes the
// iterator.
func Collect(it Iterator) ([]tuple.Row, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []tuple.Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row.Clone())
	}
}

// SeqScan reads every live record of a heap file.
type SeqScan struct {
	Heap *storage.HeapFile
	Sch  tuple.Schema

	rows    []tuple.Row
	nextIdx int
	opened  bool
}

// NewSeqScan constructs a sequential scan.
func NewSeqScan(heap *storage.HeapFile, sch tuple.Schema) *SeqScan {
	return &SeqScan{Heap: heap, Sch: sch}
}

// Open implements Iterator. The scan materializes page-by-page through the
// buffer pool; decoding happens eagerly so that page pins are short-lived.
func (s *SeqScan) Open() error {
	s.rows = s.rows[:0]
	s.nextIdx = 0
	s.opened = true
	return s.Heap.Scan(func(_ storage.RecordID, rec []byte) error {
		row, err := tuple.Decode(s.Sch, rec)
		if err != nil {
			return err
		}
		s.rows = append(s.rows, row)
		return nil
	})
}

// Next implements Iterator.
func (s *SeqScan) Next() (tuple.Row, bool, error) {
	if !s.opened {
		return nil, false, fmt.Errorf("exec: SeqScan.Next before Open")
	}
	if s.nextIdx >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.nextIdx]
	s.nextIdx++
	return row, true, nil
}

// Close implements Iterator.
func (s *SeqScan) Close() error {
	s.rows = nil
	s.opened = false
	return nil
}

// Schema implements Iterator.
func (s *SeqScan) Schema() tuple.Schema { return s.Sch }

// Values streams a fixed in-memory row set (VALUES lists, tests).
type Values struct {
	Sch  tuple.Schema
	Rows []tuple.Row
	idx  int
}

// NewValues builds a Values iterator.
func NewValues(sch tuple.Schema, rows []tuple.Row) *Values {
	return &Values{Sch: sch, Rows: rows}
}

// Open implements Iterator.
func (v *Values) Open() error { v.idx = 0; return nil }

// Next implements Iterator.
func (v *Values) Next() (tuple.Row, bool, error) {
	if v.idx >= len(v.Rows) {
		return nil, false, nil
	}
	r := v.Rows[v.idx]
	v.idx++
	return r, true, nil
}

// Close implements Iterator.
func (v *Values) Close() error { return nil }

// Schema implements Iterator.
func (v *Values) Schema() tuple.Schema { return v.Sch }

// Filter passes through rows satisfying Pred.
type Filter struct {
	Child Iterator
	Pred  Expr
}

// NewFilter wraps child with a predicate.
func NewFilter(child Iterator, pred Expr) *Filter {
	return &Filter{Child: child, Pred: pred}
}

// Open implements Iterator.
func (f *Filter) Open() error { return f.Child.Open() }

// Next implements Iterator.
func (f *Filter) Next() (tuple.Row, bool, error) {
	for {
		row, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := EvalPred(f.Pred, row)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return row, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.Child.Close() }

// Schema implements Iterator.
func (f *Filter) Schema() tuple.Schema { return f.Child.Schema() }

// Project computes output expressions per row.
type Project struct {
	Child Iterator
	Exprs []Expr
	Sch   tuple.Schema
	out   tuple.Row
}

// NewProject builds a projection; names gives output column names.
func NewProject(child Iterator, exprs []Expr, names []string) (*Project, error) {
	if len(exprs) != len(names) {
		return nil, fmt.Errorf("exec: %d exprs, %d names", len(exprs), len(names))
	}
	// Output types are inferred by probing with a zero row at Open; store
	// schema lazily. For column refs we can compute now.
	cols := make([]tuple.Column, len(exprs))
	childSch := child.Schema()
	for i, e := range exprs {
		t := tuple.TInt
		switch ex := e.(type) {
		case ColRef:
			if ex.Idx >= 0 && ex.Idx < childSch.Arity() {
				t = childSch.Cols[ex.Idx].Type
			}
		case Const:
			t = ex.Val.Kind
		}
		cols[i] = tuple.Column{Name: names[i], Type: t}
	}
	return &Project{Child: child, Exprs: exprs, Sch: tuple.Schema{Cols: cols}}, nil
}

// Open implements Iterator.
func (p *Project) Open() error {
	p.out = make(tuple.Row, len(p.Exprs))
	return p.Child.Open()
}

// Next implements Iterator.
func (p *Project) Next() (tuple.Row, bool, error) {
	row, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for i, e := range p.Exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, false, err
		}
		p.out[i] = v
	}
	return p.out, true, nil
}

// Close implements Iterator.
func (p *Project) Close() error { return p.Child.Close() }

// Schema implements Iterator.
func (p *Project) Schema() tuple.Schema { return p.Sch }

// Sort materializes the child and emits rows ordered by the given columns
// (ascending).
type Sort struct {
	Child Iterator
	Cols  []int

	rows []tuple.Row
	idx  int
}

// NewSort builds an in-memory sort on the given column positions.
func NewSort(child Iterator, cols []int) *Sort {
	return &Sort{Child: child, Cols: cols}
}

// Open implements Iterator.
func (s *Sort) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	s.idx = 0
	for {
		row, ok, err := s.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, row.Clone())
	}
	sort.SliceStable(s.rows, func(i, j int) bool {
		return compareRows(s.rows[i], s.rows[j], s.Cols) < 0
	})
	return nil
}

func compareRows(a, b tuple.Row, cols []int) int {
	for _, c := range cols {
		if cv := a[c].Compare(b[c]); cv != 0 {
			return cv
		}
	}
	return 0
}

// Next implements Iterator.
func (s *Sort) Next() (tuple.Row, bool, error) {
	if s.idx >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.idx]
	s.idx++
	return r, true, nil
}

// Close implements Iterator.
func (s *Sort) Close() error {
	s.rows = nil
	return s.Child.Close()
}

// Schema implements Iterator.
func (s *Sort) Schema() tuple.Schema { return s.Child.Schema() }

// Distinct removes duplicate rows (hash-based, full-row key).
type Distinct struct {
	Child Iterator
	seen  map[string]struct{}
	cols  []int
}

// NewDistinct builds a duplicate-eliminating iterator.
func NewDistinct(child Iterator) *Distinct { return &Distinct{Child: child} }

// Open implements Iterator.
func (d *Distinct) Open() error {
	if err := d.Child.Open(); err != nil {
		return err
	}
	d.seen = make(map[string]struct{})
	n := d.Child.Schema().Arity()
	d.cols = make([]int, n)
	for i := range d.cols {
		d.cols[i] = i
	}
	return nil
}

// Next implements Iterator.
func (d *Distinct) Next() (tuple.Row, bool, error) {
	for {
		row, ok, err := d.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := tuple.EncodeKey(row, d.cols)
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return row, true, nil
	}
}

// Close implements Iterator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Child.Close()
}

// Schema implements Iterator.
func (d *Distinct) Schema() tuple.Schema { return d.Child.Schema() }

// Limit stops after N rows.
type Limit struct {
	Child Iterator
	N     int64
	seen  int64
}

// NewLimit caps the child's output at n rows.
func NewLimit(child Iterator, n int64) *Limit { return &Limit{Child: child, N: n} }

// Open implements Iterator.
func (l *Limit) Open() error { l.seen = 0; return l.Child.Open() }

// Next implements Iterator.
func (l *Limit) Next() (tuple.Row, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// Close implements Iterator.
func (l *Limit) Close() error { return l.Child.Close() }

// Schema implements Iterator.
func (l *Limit) Schema() tuple.Schema { return l.Child.Schema() }
