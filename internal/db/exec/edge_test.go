package exec

import (
	"testing"

	"tuffy/internal/db/tuple"
)

func TestSeqScanNextBeforeOpen(t *testing.T) {
	s := NewSeqScan(nil, intSchema("a"))
	if _, _, err := s.Next(); err == nil {
		t.Fatal("Next before Open accepted")
	}
}

func TestValuesReopenRewinds(t *testing.T) {
	v := NewValues(intSchema("a"), intRows([]int64{1}, []int64{2}))
	for pass := 0; pass < 3; pass++ {
		rows, err := Collect(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("pass %d: rows = %v", pass, rows)
		}
	}
}

func TestNestedLoopJoinReopensInner(t *testing.T) {
	// NLJ must re-Open the inner side per outer row; Values rewinds on
	// Open, so a 3x2 cross join sees the inner twice.
	l := NewValues(intSchema("a"), intRows([]int64{1}, []int64{2}, []int64{3}))
	r := NewValues(intSchema("b"), intRows([]int64{10}, []int64{20}))
	rows, err := Collect(NewNestedLoopJoin(l, r, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("cross join = %d rows, want 6", len(rows))
	}
}

func TestProjectArityMismatch(t *testing.T) {
	v := NewValues(intSchema("a"), nil)
	if _, err := NewProject(v, []Expr{ColRef{Idx: 0}}, []string{"x", "y"}); err == nil {
		t.Fatal("name/expr count mismatch accepted")
	}
}

func TestProjectColumnOutOfRange(t *testing.T) {
	v := NewValues(intSchema("a"), intRows([]int64{1}))
	p, err := NewProject(v, []Expr{ColRef{Idx: 5}}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Open(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Next(); err == nil {
		t.Fatal("out-of-range column access accepted")
	}
	p.Close()
}

func TestSortMultiColumn(t *testing.T) {
	v := NewValues(intSchema("a", "b"), intRows(
		[]int64{2, 1}, []int64{1, 2}, []int64{1, 1}, []int64{2, 0}))
	rows, err := Collect(NewSort(v, []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 1}, {1, 2}, {2, 0}, {2, 1}}
	for i, w := range want {
		if rows[i][0].I != w[0] || rows[i][1].I != w[1] {
			t.Fatalf("row %d = %v, want %v", i, rows[i], w)
		}
	}
}

func TestHashJoinEmptyBuildSide(t *testing.T) {
	l := NewValues(intSchema("a"), intRows([]int64{1}))
	r := NewValues(intSchema("b"), nil)
	rows, err := Collect(NewHashJoin(l, r, []int{0}, []int{0}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLimitZero(t *testing.T) {
	v := NewValues(intSchema("a"), intRows([]int64{1}))
	rows, err := Collect(NewLimit(v, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggMinMaxStrings(t *testing.T) {
	sch := tuple.NewSchema(tuple.Col("g", tuple.TInt), tuple.Col("s", tuple.TString))
	v := NewValues(sch, []tuple.Row{
		{tuple.I64(1), tuple.Str("banana")},
		{tuple.I64(1), tuple.Str("apple")},
		{tuple.I64(1), tuple.Str("cherry")},
	})
	agg := NewHashAggregate(v, []int{0}, []AggSpec{
		{Func: AggMin, Arg: ColRef{Idx: 1}, Name: "lo"},
		{Func: AggMax, Arg: ColRef{Idx: 1}, Name: "hi"},
	})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][1].S != "apple" || rows[0][2].S != "cherry" {
		t.Fatalf("min/max = %v", rows[0])
	}
}

func TestAggSumNonIntegerRejected(t *testing.T) {
	sch := tuple.NewSchema(tuple.Col("s", tuple.TString))
	v := NewValues(sch, []tuple.Row{{tuple.Str("x")}})
	agg := NewHashAggregate(v, nil, []AggSpec{{Func: AggSum, Arg: ColRef{Idx: 0}}})
	if err := agg.Open(); err == nil {
		t.Fatal("SUM over string accepted")
	}
}

func TestMergeJoinUnsortedInputsMissMatches(t *testing.T) {
	// MergeJoin documents the sorted-input requirement; this pins the
	// contract: unsorted inputs produce incomplete (not erroneous) output,
	// which is why the planner always wraps inputs in Sort.
	l := NewValues(intSchema("k"), intRows([]int64{2}, []int64{1}))
	r := NewValues(intSchema("k"), intRows([]int64{1}, []int64{2}))
	rows, err := Collect(NewMergeJoin(l, r, []int{0}, []int{0}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) > 2 {
		t.Fatalf("rows = %v", rows)
	}
}
