package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
)

func intSchema(names ...string) tuple.Schema {
	cols := make([]tuple.Column, len(names))
	for i, n := range names {
		cols[i] = tuple.Col(n, tuple.TInt)
	}
	return tuple.Schema{Cols: cols}
}

func intRows(vals ...[]int64) []tuple.Row {
	rows := make([]tuple.Row, len(vals))
	for i, v := range vals {
		r := make(tuple.Row, len(v))
		for j, x := range v {
			r[j] = tuple.I64(x)
		}
		rows[i] = r
	}
	return rows
}

func TestSeqScanRoundTrip(t *testing.T) {
	disk := storage.NewMemDisk()
	pool := storage.NewBufferPool(disk, 16)
	heap := storage.NewHeapFile(pool, 1)
	sch := tuple.NewSchema(tuple.Col("id", tuple.TInt), tuple.Col("name", tuple.TString))
	for i := 0; i < 1000; i++ {
		rec, err := tuple.Encode(sch, tuple.Row{tuple.I64(int64(i)), tuple.Str(fmt.Sprintf("n%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := heap.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := Collect(NewSeqScan(heap, sch))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1000 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[7][0].I != 7 || rows[7][1].S != "n7" {
		t.Fatalf("row 7 = %v", rows[7])
	}
}

func TestFilterAndProject(t *testing.T) {
	sch := intSchema("a", "b")
	vals := NewValues(sch, intRows([]int64{1, 10}, []int64{2, 20}, []int64{3, 30}))
	f := NewFilter(vals, Cmp{Op: CmpGt, L: ColRef{Idx: 0}, R: Const{tuple.I64(1)}})
	p, err := NewProject(f, []Expr{ColRef{Idx: 1, Name: "b"}}, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].I != 20 || rows[1][0].I != 30 {
		t.Fatalf("rows = %v", rows)
	}
	if p.Schema().Cols[0].Name != "b" {
		t.Fatalf("schema = %v", p.Schema())
	}
}

func TestExprBooleans(t *testing.T) {
	row := tuple.Row{tuple.I64(5), tuple.Str("x")}
	cases := []struct {
		e    Expr
		want bool
	}{
		{Cmp{CmpEq, ColRef{Idx: 0}, Const{tuple.I64(5)}}, true},
		{Cmp{CmpNe, ColRef{Idx: 0}, Const{tuple.I64(5)}}, false},
		{Cmp{CmpLt, ColRef{Idx: 0}, Const{tuple.I64(6)}}, true},
		{Cmp{CmpGe, ColRef{Idx: 0}, Const{tuple.I64(6)}}, false},
		{Cmp{CmpEq, ColRef{Idx: 1}, Const{tuple.Str("x")}}, true},
		{And{[]Expr{Cmp{CmpEq, ColRef{Idx: 0}, Const{tuple.I64(5)}}, Cmp{CmpEq, ColRef{Idx: 1}, Const{tuple.Str("x")}}}}, true},
		{And{[]Expr{Cmp{CmpEq, ColRef{Idx: 0}, Const{tuple.I64(5)}}, Cmp{CmpEq, ColRef{Idx: 1}, Const{tuple.Str("y")}}}}, false},
		{Or{[]Expr{Cmp{CmpEq, ColRef{Idx: 0}, Const{tuple.I64(4)}}, Cmp{CmpEq, ColRef{Idx: 1}, Const{tuple.Str("x")}}}}, true},
		{Not{Cmp{CmpEq, ColRef{Idx: 0}, Const{tuple.I64(5)}}}, false},
	}
	for i, c := range cases {
		got, err := EvalPred(c.e, row)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Fatalf("case %d (%s): got %v want %v", i, c.e, got, c.want)
		}
	}
}

func TestExprTypeMismatch(t *testing.T) {
	row := tuple.Row{tuple.I64(5)}
	_, err := Cmp{CmpEq, ColRef{Idx: 0}, Const{tuple.Str("5")}}.Eval(row)
	if err == nil {
		t.Fatal("comparing int with string should fail")
	}
}

func joinInputs() (*Values, *Values) {
	left := NewValues(intSchema("l1", "l2"), intRows(
		[]int64{1, 100}, []int64{2, 200}, []int64{2, 201}, []int64{3, 300}))
	right := NewValues(intSchema("r1", "r2"), intRows(
		[]int64{2, 9000}, []int64{3, 9001}, []int64{3, 9002}, []int64{4, 9003}))
	return left, right
}

// want: l1=r1 matches: (2,200,2,9000),(2,201,2,9000),(3,300,3,9001),(3,300,3,9002)
func checkJoinResult(t *testing.T, rows []tuple.Row) {
	t.Helper()
	if len(rows) != 4 {
		t.Fatalf("join produced %d rows: %v", len(rows), rows)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i][1].I != rows[j][1].I {
			return rows[i][1].I < rows[j][1].I
		}
		return rows[i][3].I < rows[j][3].I
	})
	want := [][4]int64{
		{2, 200, 2, 9000},
		{2, 201, 2, 9000},
		{3, 300, 3, 9001},
		{3, 300, 3, 9002},
	}
	for i, w := range want {
		for c := 0; c < 4; c++ {
			if rows[i][c].I != w[c] {
				t.Fatalf("row %d = %v, want %v", i, rows[i], w)
			}
		}
	}
}

func TestNestedLoopJoin(t *testing.T) {
	l, r := joinInputs()
	j := NewNestedLoopJoin(l, r, Cmp{CmpEq, ColRef{Idx: 0}, ColRef{Idx: 2}})
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	checkJoinResult(t, rows)
}

func TestHashJoin(t *testing.T) {
	l, r := joinInputs()
	j := NewHashJoin(l, r, []int{0}, []int{0}, nil)
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	checkJoinResult(t, rows)
}

func TestMergeJoin(t *testing.T) {
	l, r := joinInputs()
	j := NewMergeJoin(NewSort(l, []int{0}), NewSort(r, []int{0}), []int{0}, []int{0}, nil)
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	checkJoinResult(t, rows)
}

func TestJoinAlgorithmsAgreeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		nl, nr := r.Intn(30), r.Intn(30)
		lrows := make([]tuple.Row, nl)
		for i := range lrows {
			lrows[i] = tuple.Row{tuple.I64(int64(r.Intn(8))), tuple.I64(int64(i))}
		}
		rrows := make([]tuple.Row, nr)
		for i := range rrows {
			rrows[i] = tuple.Row{tuple.I64(int64(r.Intn(8))), tuple.I64(int64(1000 + i))}
		}
		mk := func() (Iterator, Iterator) {
			return NewValues(intSchema("lk", "lv"), lrows), NewValues(intSchema("rk", "rv"), rrows)
		}
		canon := func(rows []tuple.Row) []string {
			out := make([]string, len(rows))
			for i, row := range rows {
				out[i] = fmt.Sprint(row)
			}
			sort.Strings(out)
			return out
		}
		l1, r1 := mk()
		nlRows, err := Collect(NewNestedLoopJoin(l1, r1, Cmp{CmpEq, ColRef{Idx: 0}, ColRef{Idx: 2}}))
		if err != nil {
			t.Fatal(err)
		}
		l2, r2 := mk()
		hjRows, err := Collect(NewHashJoin(l2, r2, []int{0}, []int{0}, nil))
		if err != nil {
			t.Fatal(err)
		}
		l3, r3 := mk()
		mjRows, err := Collect(NewMergeJoin(NewSort(l3, []int{0}), NewSort(r3, []int{0}), []int{0}, []int{0}, nil))
		if err != nil {
			t.Fatal(err)
		}
		a, b, c := canon(nlRows), canon(hjRows), canon(mjRows)
		if fmt.Sprint(a) != fmt.Sprint(b) || fmt.Sprint(b) != fmt.Sprint(c) {
			t.Fatalf("trial %d: joins disagree:\nNL=%v\nHJ=%v\nMJ=%v", trial, a, b, c)
		}
	}
}

func TestSortStableAndOrdered(t *testing.T) {
	vals := NewValues(intSchema("k", "v"), intRows(
		[]int64{3, 1}, []int64{1, 2}, []int64{2, 3}, []int64{1, 4}))
	rows, err := Collect(NewSort(vals, []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{rows[0][0].I, rows[1][0].I, rows[2][0].I, rows[3][0].I}
	if fmt.Sprint(keys) != "[1 1 2 3]" {
		t.Fatalf("keys = %v", keys)
	}
	// stability: (1,2) before (1,4)
	if rows[0][1].I != 2 || rows[1][1].I != 4 {
		t.Fatalf("sort not stable: %v", rows)
	}
}

func TestDistinct(t *testing.T) {
	vals := NewValues(intSchema("a"), intRows([]int64{1}, []int64{2}, []int64{1}, []int64{3}, []int64{2}))
	rows, err := Collect(NewDistinct(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("distinct = %v", rows)
	}
}

func TestLimit(t *testing.T) {
	vals := NewValues(intSchema("a"), intRows([]int64{1}, []int64{2}, []int64{3}))
	rows, err := Collect(NewLimit(vals, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("limit = %v", rows)
	}
}

func TestHashAggregate(t *testing.T) {
	vals := NewValues(intSchema("g", "x"), intRows(
		[]int64{1, 10}, []int64{2, 5}, []int64{1, 20}, []int64{2, 7}, []int64{1, 30}))
	agg := NewHashAggregate(vals, []int{0}, []AggSpec{
		{Func: AggCount, Name: "cnt"},
		{Func: AggSum, Arg: ColRef{Idx: 1}, Name: "total"},
		{Func: AggMin, Arg: ColRef{Idx: 1}, Name: "lo"},
		{Func: AggMax, Arg: ColRef{Idx: 1}, Name: "hi"},
		{Func: AggArray, Arg: ColRef{Idx: 1}, Name: "all"},
	})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	// Groups come out key-sorted.
	g1 := rows[0]
	if g1[0].I != 1 || g1[1].I != 3 || g1[2].I != 60 || g1[3].I != 10 || g1[4].I != 30 {
		t.Fatalf("group 1 = %v", g1)
	}
	if fmt.Sprint(g1[5].List) != "[10 20 30]" {
		t.Fatalf("array_agg = %v", g1[5].List)
	}
	g2 := rows[1]
	if g2[0].I != 2 || g2[1].I != 2 || g2[2].I != 12 {
		t.Fatalf("group 2 = %v", g2)
	}
}

func TestHashAggregateNoGroups(t *testing.T) {
	vals := NewValues(intSchema("x"), intRows([]int64{1}, []int64{2}, []int64{3}))
	agg := NewHashAggregate(vals, nil, []AggSpec{{Func: AggCount, Name: "n"}})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("count(*) = %v", rows)
	}
}

func TestHashAggregateEmptyInput(t *testing.T) {
	vals := NewValues(intSchema("g", "x"), nil)
	agg := NewHashAggregate(vals, []int{0}, []AggSpec{{Func: AggCount}})
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMergeJoinDuplicateHeavy(t *testing.T) {
	// All-equal keys: output is the full cross product.
	l := NewValues(intSchema("k", "v"), intRows([]int64{7, 1}, []int64{7, 2}, []int64{7, 3}))
	r := NewValues(intSchema("k", "v"), intRows([]int64{7, 4}, []int64{7, 5}))
	rows, err := Collect(NewMergeJoin(l, r, []int{0}, []int{0}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("cross join size = %d, want 6", len(rows))
	}
}

func TestMergeJoinEmptySides(t *testing.T) {
	empty := func() Iterator { return NewValues(intSchema("k"), nil) }
	one := func() Iterator { return NewValues(intSchema("k"), intRows([]int64{1})) }
	for name, pair := range map[string][2]Iterator{
		"both-empty":  {empty(), empty()},
		"left-empty":  {empty(), one()},
		"right-empty": {one(), empty()},
	} {
		rows, err := Collect(NewMergeJoin(pair[0], pair[1], []int{0}, []int{0}, nil))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) != 0 {
			t.Fatalf("%s: rows = %v", name, rows)
		}
	}
}

func TestHashJoinResidualPredicate(t *testing.T) {
	l, r := joinInputs()
	// keep only pairs where r2 is even
	j := NewHashJoin(l, r, []int{0}, []int{0},
		Cmp{CmpEq, ColRef{Idx: 3}, Const{tuple.I64(9000)}})
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("residual filter rows = %v", rows)
	}
}
