package exec

import (
	"fmt"
	"sort"

	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
)

// HashValue hashes one column value for hash-range partitioning. The
// function is a fixed finalizer (splitmix64 for ints, FNV-1a folded through
// it for strings), so a (mod, rem) partition of a table is stable across
// processes and runs — which is what lets partitioned query results merge
// deterministically.
func HashValue(v tuple.Value) uint64 {
	switch v.Kind {
	case tuple.TInt:
		return mix64(uint64(v.I))
	case tuple.TString:
		var h uint64 = 14695981039346656037
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= 1099511628211
		}
		return mix64(h)
	default:
		var h uint64 = 14695981039346656037
		for _, x := range v.List {
			h ^= mix64(uint64(x))
			h *= 1099511628211
		}
		return mix64(h)
	}
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashInRange is the predicate form of a hash-range restriction, for
// iterators that cannot push the restriction into their storage scan.
type HashInRange struct {
	Idx      int // column position
	Mod, Rem uint32
}

// Eval implements Expr.
func (h HashInRange) Eval(row tuple.Row) (tuple.Value, error) {
	if h.Idx < 0 || h.Idx >= len(row) {
		return tuple.Value{}, fmt.Errorf("exec: hash-range column %d out of row", h.Idx)
	}
	in := h.Mod > 0 && uint32(HashValue(row[h.Idx])%uint64(h.Mod)) == h.Rem
	if in {
		return tuple.I64(1), nil
	}
	return tuple.I64(0), nil
}

// String implements Expr.
func (h HashInRange) String() string {
	return fmt.Sprintf("hash(col%d) %% %d = %d", h.Idx, h.Mod, h.Rem)
}

// RangeScan reads the live records of a heap file whose column hashes into
// residue Rem modulo Mod. The restriction is applied inside the storage
// scan callback, before rows are materialized, so a partitioned scan's
// transient footprint is 1/Mod of the table rather than all of it.
type RangeScan struct {
	Heap     *storage.HeapFile
	Sch      tuple.Schema
	Col      int
	Mod, Rem uint32

	rows    []tuple.Row
	nextIdx int
	opened  bool
}

// NewRangeScan constructs a hash-range-restricted sequential scan.
func NewRangeScan(heap *storage.HeapFile, sch tuple.Schema, col int, mod, rem uint32) *RangeScan {
	return &RangeScan{Heap: heap, Sch: sch, Col: col, Mod: mod, Rem: rem}
}

// Open implements Iterator.
func (s *RangeScan) Open() error {
	s.rows = s.rows[:0]
	s.nextIdx = 0
	s.opened = true
	if s.Mod == 0 || s.Col < 0 || s.Col >= s.Sch.Arity() {
		return fmt.Errorf("exec: RangeScan col %d mod %d invalid", s.Col, s.Mod)
	}
	return s.Heap.Scan(func(_ storage.RecordID, rec []byte) error {
		row, err := tuple.Decode(s.Sch, rec)
		if err != nil {
			return err
		}
		if uint32(HashValue(row[s.Col])%uint64(s.Mod)) != s.Rem {
			return nil
		}
		s.rows = append(s.rows, row)
		return nil
	})
}

// Next implements Iterator.
func (s *RangeScan) Next() (tuple.Row, bool, error) {
	if !s.opened {
		return nil, false, fmt.Errorf("exec: RangeScan.Next before Open")
	}
	if s.nextIdx >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.nextIdx]
	s.nextIdx++
	return row, true, nil
}

// Close implements Iterator.
func (s *RangeScan) Close() error {
	s.rows = nil
	s.opened = false
	return nil
}

// Schema implements Iterator.
func (s *RangeScan) Schema() tuple.Schema { return s.Sch }

// RIDScan fetches an explicit record-id set from a heap file — the
// executor side of an index point-lookup. Open sorts the ids into heap
// order (page, then slot), so the emitted row order matches what a filtered
// sequential scan would produce and plans stay deterministic whichever
// access path wins.
type RIDScan struct {
	Heap *storage.HeapFile
	Sch  tuple.Schema
	RIDs []storage.RecordID

	rows    []tuple.Row
	nextIdx int
	opened  bool
}

// NewRIDScan constructs a record-id fetch iterator.
func NewRIDScan(heap *storage.HeapFile, sch tuple.Schema, rids []storage.RecordID) *RIDScan {
	return &RIDScan{Heap: heap, Sch: sch, RIDs: rids}
}

// Open implements Iterator.
func (s *RIDScan) Open() error {
	s.rows = s.rows[:0]
	s.nextIdx = 0
	s.opened = true
	ordered := append([]storage.RecordID(nil), s.RIDs...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Page.Num != b.Page.Num {
			return a.Page.Num < b.Page.Num
		}
		return a.Slot < b.Slot
	})
	for _, rid := range ordered {
		rec, err := s.Heap.Get(rid)
		if err != nil {
			return err
		}
		if rec == nil {
			continue // deleted since the index entry was read
		}
		row, err := tuple.Decode(s.Sch, rec)
		if err != nil {
			return err
		}
		s.rows = append(s.rows, row)
	}
	return nil
}

// Next implements Iterator.
func (s *RIDScan) Next() (tuple.Row, bool, error) {
	if !s.opened {
		return nil, false, fmt.Errorf("exec: RIDScan.Next before Open")
	}
	if s.nextIdx >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.nextIdx]
	s.nextIdx++
	return row, true, nil
}

// Close implements Iterator.
func (s *RIDScan) Close() error {
	s.rows = nil
	s.opened = false
	return nil
}

// Schema implements Iterator.
func (s *RIDScan) Schema() tuple.Schema { return s.Sch }
