package partition

import (
	"reflect"
	"testing"

	"tuffy/internal/mrf"
)

// chainMRF builds k blocks of 3 atoms with internal clauses, bridged in a
// path; beta keeps blocks whole so bridges are cut.
func chainMRF(t *testing.T, k int) *Partitioning {
	t.Helper()
	m := mrf.New(3 * k)
	for b := 0; b < k; b++ {
		base := int32(3 * b)
		if err := m.AddClause(5, base+1, base+2); err != nil {
			t.Fatal(err)
		}
		if err := m.AddClause(5, base+2, base+3); err != nil {
			t.Fatal(err)
		}
		if b > 0 {
			if err := m.AddClause(0.5, base, base+1); err != nil {
				t.Fatal(err)
			}
		}
	}
	pt := Algorithm3(m, 12)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pt.Parts) != k || pt.NumCut() != k-1 {
		t.Fatalf("partitioning: %d parts, %d cut; want %d / %d", len(pt.Parts), pt.NumCut(), k, k-1)
	}
	return pt
}

func TestInteractionGraphChain(t *testing.T) {
	pt := chainMRF(t, 5)
	adj := pt.InteractionGraph()
	deg := 0
	for _, ns := range adj {
		deg += len(ns)
	}
	if deg != 2*(len(pt.Parts)-1) {
		t.Fatalf("chain interaction graph has %d directed edges, want %d", deg, 2*(len(pt.Parts)-1))
	}
	for i, ns := range adj {
		for _, n := range ns {
			found := false
			for _, back := range adj[n] {
				if back == int32(i) {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric", i, n)
			}
		}
	}
}

func TestColorPartsIsProper(t *testing.T) {
	pt := chainMRF(t, 7)
	c := pt.ColorParts()
	if c.NumColors() != 2 {
		t.Fatalf("path graph colored with %d colors, want 2", c.NumColors())
	}
	adj := pt.InteractionGraph()
	for i, ns := range adj {
		for _, n := range ns {
			if c.Color[i] == c.Color[n] {
				t.Fatalf("adjacent partitions %d and %d share color %d", i, n, c.Color[i])
			}
		}
	}
	// Every partition appears in exactly one class, classes ascending.
	seen := make([]int, len(pt.Parts))
	for ci, class := range c.Classes {
		for j, pi := range class {
			seen[pi]++
			if int(c.Color[pi]) != ci {
				t.Fatalf("partition %d in class %d but Color=%d", pi, ci, c.Color[pi])
			}
			if j > 0 && class[j-1] >= pi {
				t.Fatalf("class %d not ascending: %v", ci, class)
			}
		}
	}
	for pi, n := range seen {
		if n != 1 {
			t.Fatalf("partition %d appears in %d classes", pi, n)
		}
	}
}

func TestColorPartsDeterministic(t *testing.T) {
	a := chainMRF(t, 6).ColorParts()
	b := chainMRF(t, 6).ColorParts()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("coloring not deterministic: %v vs %v", a, b)
	}
}

func TestColorPartsNoCutSingleClass(t *testing.T) {
	// Disconnected components: no cut clauses, everything in color 0.
	m := mrf.New(6)
	for i := int32(1); i <= 5; i += 2 {
		if err := m.AddClause(1, i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	pt := Algorithm3(m, 0)
	c := pt.ColorParts()
	if c.NumColors() != 1 || len(c.Classes[0]) != len(pt.Parts) {
		t.Fatalf("component-only partitioning should color with one class, got %d", c.NumColors())
	}
}
