package partition

import (
	"math"

	"tuffy/internal/mrf"
)

// This file implements the partitioning-granularity tradeoff of Appendix
// B.8: fine partitions speed up per-partition search (Theorem 3.1) but
// enlarge the cut, which slows the Gauss-Seidel scheme. The paper's
// baseline estimate for the benefit (or detriment) of a partitioning is
//
//	W = 2^{N/3} - T * |#cut clauses| / |E|
//
// where N is the number of components with positive lowest cost, T the
// number of WalkSAT steps in one Gauss-Seidel round, and |E| the total
// number of clauses.

// TradeoffInput carries the quantities of the B.8 formula.
type TradeoffInput struct {
	// PositiveOptParts estimates N: partitions whose optimal cost is
	// positive (those are the ones monolithic WalkSAT keeps breaking).
	PositiveOptParts int
	// StepsPerRound is T.
	StepsPerRound int64
	// CutClauses and TotalClauses size the cut penalty.
	CutClauses   int
	TotalClauses int
}

// Tradeoff evaluates the paper's W formula. Positive values predict that
// partitioning helps; negative values predict pure overhead. The exponent
// is clamped to keep the result finite for large N (any N above ~200
// already means "astronomically beneficial").
func Tradeoff(in TradeoffInput) float64 {
	if in.TotalClauses == 0 {
		return 0
	}
	exp := float64(in.PositiveOptParts) / 3
	if exp > 200 {
		exp = 200
	}
	benefit := math.Exp2(exp) - 1 // N=0 -> no benefit
	penalty := float64(in.StepsPerRound) * float64(in.CutClauses) / float64(in.TotalClauses)
	return benefit - penalty
}

// EstimatePositiveOptParts counts partitions whose lowest cost is provably
// positive by a cheap certificate: a partition containing a negative-weight
// clause together with a positive-weight unit clause on one of its atoms
// (the Example 1 pattern), or any pair of directly conflicting clauses.
// Exhaustive minimization is used for tiny partitions (<= maxExact atoms).
func EstimatePositiveOptParts(pt *Partitioning, maxExact int) int {
	n := 0
	for _, p := range pt.Parts {
		if p.Local.NumAtoms <= maxExact {
			if exhaustiveMinCost(p.Local) > 0 {
				n++
			}
			continue
		}
		if hasConflict(p.Local) {
			n++
		}
	}
	return n
}

// exhaustiveMinCost minimizes cost over all assignments (small MRFs only).
func exhaustiveMinCost(m *mrf.MRF) float64 {
	best := math.Inf(1)
	state := m.NewState()
	for mask := 0; mask < 1<<m.NumAtoms; mask++ {
		for i := 1; i <= m.NumAtoms; i++ {
			state[i] = mask&(1<<(i-1)) != 0
		}
		if c := m.Cost(state); c < best {
			best = c
			if best == 0 {
				return 0
			}
		}
	}
	return best
}

// hasConflict detects the cheap positive-cost certificate: a positive unit
// clause (a) and a negative clause containing a positively — satisfying one
// violates the other.
func hasConflict(m *mrf.MRF) bool {
	posUnit := make(map[mrf.AtomID]bool)
	for _, c := range m.Clauses {
		if c.Weight > 0 && len(c.Lits) == 1 && mrf.Pos(c.Lits[0]) {
			posUnit[mrf.Atom(c.Lits[0])] = true
		}
	}
	if len(posUnit) == 0 {
		return false
	}
	for _, c := range m.Clauses {
		if c.Weight >= 0 {
			continue
		}
		for _, l := range c.Lits {
			if mrf.Pos(l) && posUnit[mrf.Atom(l)] {
				return true
			}
		}
	}
	return false
}

// ChooseBeta sweeps candidate partition bounds and returns the beta whose
// partitioning maximizes the B.8 tradeoff estimate. candidates are size
// bounds in Algorithm 3 units (0 = connected components only); stepsPerRound
// is the Gauss-Seidel budget T. Returns the chosen beta and its
// partitioning.
func ChooseBeta(m *mrf.MRF, candidates []int, stepsPerRound int64) (int, *Partitioning) {
	bestBeta := 0
	var bestPT *Partitioning
	bestW := math.Inf(-1)
	for _, beta := range candidates {
		pt := Algorithm3(m, beta)
		w := Tradeoff(TradeoffInput{
			PositiveOptParts: EstimatePositiveOptParts(pt, 10),
			StepsPerRound:    stepsPerRound,
			CutClauses:       pt.NumCut(),
			TotalClauses:     len(m.Clauses),
		})
		if w > bestW {
			bestW = w
			bestBeta = beta
			bestPT = pt
		}
	}
	return bestBeta, bestPT
}
