package partition

import (
	"math"
	"testing"

	"tuffy/internal/datagen"
	"tuffy/internal/mrf"
)

func TestTradeoffFormula(t *testing.T) {
	// No positive-opt components and no cut: W = 0.
	if w := Tradeoff(TradeoffInput{TotalClauses: 100}); w != 0 {
		t.Fatalf("W = %v", w)
	}
	// Many positive-opt components, no cut: strongly positive.
	w := Tradeoff(TradeoffInput{PositiveOptParts: 30, TotalClauses: 100, StepsPerRound: 1000})
	if w < 1000 {
		t.Fatalf("W = %v, want large benefit", w)
	}
	// Zero benefit, large cut: negative.
	w = Tradeoff(TradeoffInput{PositiveOptParts: 0, CutClauses: 90, TotalClauses: 100, StepsPerRound: 10_000})
	if w >= 0 {
		t.Fatalf("W = %v, want negative", w)
	}
	// Exponent clamp keeps result finite.
	w = Tradeoff(TradeoffInput{PositiveOptParts: 10_000, TotalClauses: 1})
	if math.IsInf(w, 0) || math.IsNaN(w) {
		t.Fatalf("W = %v, want finite", w)
	}
	// Empty MRF guard.
	if w := Tradeoff(TradeoffInput{}); w != 0 {
		t.Fatalf("W = %v", w)
	}
}

func TestEstimatePositiveOptPartsExample1(t *testing.T) {
	// Every Example 1 component has optimal cost 1 > 0.
	m := datagen.Example1(12)
	pt := Algorithm3(m, 0)
	if got := EstimatePositiveOptParts(pt, 10); got != 12 {
		t.Fatalf("positive-opt parts = %d, want 12", got)
	}
}

func TestEstimatePositiveOptPartsSatisfiable(t *testing.T) {
	// A satisfiable chain: optimal cost 0 everywhere.
	m := mrf.New(6)
	for i := 1; i < 6; i++ {
		_ = m.AddClause(1, mrf.AtomID(i), mrf.AtomID(i+1))
	}
	pt := Algorithm3(m, 0)
	if got := EstimatePositiveOptParts(pt, 10); got != 0 {
		t.Fatalf("positive-opt parts = %d, want 0", got)
	}
}

func TestEstimatePositiveOptPartsCertificate(t *testing.T) {
	// Large component (beyond exhaustive range) with the Example 1
	// conflict pattern: detected via the cheap certificate.
	m := mrf.New(30)
	for i := 1; i < 30; i++ {
		_ = m.AddClause(0.5, mrf.AtomID(i), mrf.AtomID(i+1))
	}
	_ = m.AddClause(1, 1)     // positive unit
	_ = m.AddClause(-1, 1, 2) // negative clause sharing atom 1
	pt := Algorithm3(m, 0)
	if got := EstimatePositiveOptParts(pt, 10); got != 1 {
		t.Fatalf("certificate missed: %d", got)
	}
}

func TestChooseBetaPrefersComponentsOnExample1(t *testing.T) {
	// On Example 1 the components are tiny and all have positive optimum:
	// any candidate including 0 (components) should win over a beta so
	// tiny it cuts clauses.
	m := datagen.Example1(20)
	beta, pt := ChooseBeta(m, []int{0, 2}, 10_000)
	if beta != 0 {
		t.Fatalf("beta = %d, want 0 (components)", beta)
	}
	if pt.NumCut() != 0 {
		t.Fatalf("cut = %d", pt.NumCut())
	}
}

func TestChooseBetaAvoidsHugeCut(t *testing.T) {
	// A dense satisfiable MRF: no positive-opt benefit, so the candidate
	// with the smaller cut must win.
	m := datagen.Example2(20)
	beta, _ := ChooseBeta(m, []int{0, 10}, 100_000)
	if beta != 0 {
		t.Fatalf("beta = %d; splitting a zero-benefit graph should lose", beta)
	}
}
