package partition

// This file derives the balanced (pipelined) schedule for Gauss-Seidel
// rounds from the coloring. The class-barrier schedule runs one color class
// at a time, so a class containing one huge partition bounds the class's
// wall-clock: every worker idles until the giant finishes. But the barrier
// is stronger than the data flow requires. A partition's conditioned
// sub-problem reads only its own atoms and the atoms of partitions it
// shares a cut clause with, so partition p of round t may start as soon as
//
//   - every neighbour with a smaller color has merged its round-t result
//     (Gauss-Seidel order within the round), and
//   - p itself and every neighbour with a larger color have merged their
//     round t-1 results (their atoms must hold the previous round's values
//     and must not change mid-run).
//
// Merging still happens in one canonical sequence — classes in ascending
// color order, ascending partition index within a class, rounds in order —
// exactly the class-barrier merge order. Every run therefore sees exactly
// the frozen inputs the sequential sweep would give it, and the merged
// trajectory (best state, best cost, tracker records, flip totals) is
// bit-identical to the barrier schedule at every worker count; only the
// wall-clock schedule of the runs changes. Dispatching ready partitions
// largest-first (LPT) lets an oversized partition start the moment its
// dependencies allow while smaller ready partitions fill the other workers.
type Schedule struct {
	*Coloring
	// Neighbors is the partition interaction graph: q is a neighbour of p
	// iff some cut clause spans both (see InteractionGraph).
	Neighbors [][]int32
	// Weight is each partition's size in Algorithm 3 units — the dispatch
	// priority: among ready partitions, heavier ones start first.
	Weight []int
	// Order is the canonical within-round merge order: classes ascending,
	// partition index ascending within a class. It is the exact order the
	// class-barrier schedule merges in.
	Order []int
}

// BuildSchedule computes the dependency structure for pipelined
// Gauss-Seidel rounds. It never mutates pt and the result is immutable, so
// one Schedule can serve concurrent searches of the same Partitioning.
func (pt *Partitioning) BuildSchedule() *Schedule {
	s := &Schedule{
		Coloring:  pt.ColorParts(),
		Neighbors: pt.InteractionGraph(),
		Weight:    make([]int, len(pt.Parts)),
	}
	for pi, p := range pt.Parts {
		s.Weight[pi] = p.SizeUnits
	}
	for _, class := range s.Classes {
		s.Order = append(s.Order, class...)
	}
	return s
}

// EarlierDeps returns how many of pi's neighbours carry a smaller color —
// the partitions whose same-round merges must land before pi may run. In
// the first round these are pi's only dependencies; in later rounds pi
// additionally waits for its own and every remaining neighbour's previous-
// round merge.
func (s *Schedule) EarlierDeps(pi int) int {
	n := 0
	for _, q := range s.Neighbors[pi] {
		if s.Color[q] < s.Color[pi] {
			n++
		}
	}
	return n
}
