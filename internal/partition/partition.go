// Package partition implements Section 3.3/3.4 of the Tuffy paper: the
// greedy MRF partitioning algorithm (Algorithm 3 in Appendix B.7), cut-size
// accounting, and the First Fit Decreasing batch loader that groups
// partitions under a memory budget (the bin-packing formulation of
// Section 3.3).
package partition

import (
	"fmt"
	"math"
	"sort"

	"tuffy/internal/mrf"
)

// Part is one partition: a component-like sub-MRF holding the clauses fully
// inside the partition, plus the atom mapping to the parent MRF.
type Part struct {
	// Local is the sub-MRF over the partition's atoms (internal clauses
	// only; cut clauses live in Partitioning.Cut).
	Local *mrf.MRF
	// GlobalAtom maps local atom id -> parent atom id (index 0 unused).
	GlobalAtom []mrf.AtomID
	// SizeUnits is the partition size in Algorithm 3's units (atoms +
	// literals of assigned clauses).
	SizeUnits int
}

// Bytes estimates the in-memory footprint of searching this partition.
func (p *Part) Bytes() int64 { return p.Local.ComputeStats().SearchBytes }

// NumAtoms returns the number of atoms in the partition.
func (p *Part) NumAtoms() int { return p.Local.NumAtoms }

// Partitioning is the output of Algorithm 3.
type Partitioning struct {
	Parts []*Part
	// PartOf maps parent atom id -> index into Parts (index 0 unused).
	PartOf []int32
	// Cut holds the clauses spanning two or more partitions, in parent
	// atom ids.
	Cut []mrf.Clause
	// CutWeight is the total |w| of cut clauses.
	CutWeight float64
	// Source is the parent MRF.
	Source *mrf.MRF
}

// NumCut returns the number of cut clauses.
func (pt *Partitioning) NumCut() int { return len(pt.Cut) }

// Algorithm3 greedily partitions the MRF with partition size bound beta
// (in size units: atoms + literals). Clauses are scanned in descending
// absolute weight; a clause's atoms are merged into one partition unless the
// merged size would exceed beta — high-weight clauses are thus kept inside
// partitions and the (heuristically minimized) weighted cut consists of
// lower-weight clauses. With beta = +Inf (or beta <= 0) the result is
// exactly the connected components of the MRF.
func Algorithm3(m *mrf.MRF, beta int) *Partitioning {
	n := m.NumAtoms
	uf := mrf.NewUnionFind(n)
	// size[root] = atoms + assigned literals in the merged set.
	size := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		size[i] = 1
	}
	bound := int64(beta)
	if beta <= 0 {
		bound = math.MaxInt64
	}

	order := make([]int, len(m.Clauses))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return math.Abs(m.Clauses[order[a]].Weight) > math.Abs(m.Clauses[order[b]].Weight)
	})

	for _, ci := range order {
		c := &m.Clauses[ci]
		// Compute the size of the union of all roots touched by the clause.
		roots := make(map[int32]struct{}, len(c.Lits))
		var total int64
		for _, l := range c.Lits {
			r := uf.Find(mrf.Atom(l))
			if _, seen := roots[r]; !seen {
				roots[r] = struct{}{}
				total += size[r]
			}
		}
		total += int64(len(c.Lits)) // the clause's literals count toward size
		if total > bound && len(roots) > 1 {
			continue // merging would exceed the bound; leave clause cut
		}
		if total > bound {
			// Single-root clause already over budget: the clause stays
			// internal (a partition can't be split below one component of
			// forced merges); still account its literals.
			for r := range roots {
				size[r] += int64(len(c.Lits))
			}
			continue
		}
		var first int32 = -1
		for r := range roots {
			if first < 0 {
				first = r
				continue
			}
			uf.Union(first, r)
		}
		root := uf.Find(mrf.Atom(c.Lits[0]))
		size[root] = total
	}

	// Build partitions from union-find roots.
	partIdx := make(map[int32]int32)
	partOf := make([]int32, n+1)
	var atomsPerPart [][]mrf.AtomID
	for a := int32(1); a <= int32(n); a++ {
		r := uf.Find(a)
		pi, ok := partIdx[r]
		if !ok {
			pi = int32(len(atomsPerPart))
			partIdx[r] = pi
			atomsPerPart = append(atomsPerPart, nil)
		}
		atomsPerPart[pi] = append(atomsPerPart[pi], a)
		partOf[a] = pi
	}

	pt := &Partitioning{PartOf: partOf, Source: m}
	localID := make([]mrf.AtomID, n+1)
	for _, atoms := range atomsPerPart {
		p := &Part{Local: mrf.New(len(atoms)), GlobalAtom: make([]mrf.AtomID, len(atoms)+1)}
		for i, a := range atoms {
			localID[a] = mrf.AtomID(i + 1)
			p.GlobalAtom[i+1] = a
		}
		p.SizeUnits = len(atoms)
		pt.Parts = append(pt.Parts, p)
	}
	// Assign clauses: internal when all atoms share a partition, else cut.
	for _, c := range m.Clauses {
		pi := partOf[mrf.Atom(c.Lits[0])]
		internal := true
		for _, l := range c.Lits[1:] {
			if partOf[mrf.Atom(l)] != pi {
				internal = false
				break
			}
		}
		if !internal {
			pt.Cut = append(pt.Cut, c)
			pt.CutWeight += math.Abs(c.Weight)
			continue
		}
		p := pt.Parts[pi]
		lits := make([]mrf.Lit, len(c.Lits))
		for i, l := range c.Lits {
			ll := localID[mrf.Atom(l)]
			if !mrf.Pos(l) {
				ll = -ll
			}
			lits[i] = ll
		}
		p.Local.Clauses = append(p.Local.Clauses, mrf.Clause{Weight: c.Weight, Lits: lits})
		p.SizeUnits += len(c.Lits)
	}
	return pt
}

// ExtractState copies the partition's atoms out of a global assignment.
func (p *Part) ExtractState(global []bool) []bool {
	local := p.Local.NewState()
	for i := 1; i <= p.Local.NumAtoms; i++ {
		local[i] = global[p.GlobalAtom[i]]
	}
	return local
}

// ProjectState writes the partition's local assignment into the global one.
func (p *Part) ProjectState(local, global []bool) {
	for i := 1; i <= p.Local.NumAtoms; i++ {
		global[p.GlobalAtom[i]] = local[i]
	}
}

// Batch is one group of partitions loaded together (Section 3.3's batch
// data loading); the sum of byte sizes fits the memory budget.
type Batch struct {
	PartIdx []int
	Bytes   int64
}

// FirstFitDecreasing packs partitions into the fewest batches such that no
// batch exceeds budgetBytes, using the classic FFD heuristic the paper
// cites [26]. Oversized single partitions get their own batch (the caller
// falls back to in-RDBMS search for those).
func FirstFitDecreasing(parts []*Part, budgetBytes int64) []Batch {
	type sized struct {
		idx   int
		bytes int64
	}
	items := make([]sized, len(parts))
	for i, p := range parts {
		items[i] = sized{idx: i, bytes: p.Bytes()}
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].bytes > items[b].bytes })
	var batches []Batch
	for _, it := range items {
		placed := false
		for bi := range batches {
			if batches[bi].Bytes+it.bytes <= budgetBytes {
				batches[bi].PartIdx = append(batches[bi].PartIdx, it.idx)
				batches[bi].Bytes += it.bytes
				placed = true
				break
			}
		}
		if !placed {
			batches = append(batches, Batch{PartIdx: []int{it.idx}, Bytes: it.bytes})
		}
	}
	return batches
}

// Validate checks partition invariants: every atom in exactly one part, and
// every clause either internal or in the cut. Used by tests.
func (pt *Partitioning) Validate() error {
	n := pt.Source.NumAtoms
	seen := make([]bool, n+1)
	for pi, p := range pt.Parts {
		for i := 1; i <= p.Local.NumAtoms; i++ {
			a := p.GlobalAtom[i]
			if a < 1 || int(a) > n {
				return fmt.Errorf("part %d: atom %d out of range", pi, a)
			}
			if seen[a] {
				return fmt.Errorf("atom %d in two partitions", a)
			}
			seen[a] = true
			if pt.PartOf[a] != int32(pi) {
				return fmt.Errorf("PartOf[%d] = %d, want %d", a, pt.PartOf[a], pi)
			}
		}
	}
	for a := 1; a <= n; a++ {
		if !seen[a] {
			return fmt.Errorf("atom %d in no partition", a)
		}
	}
	internal := 0
	for _, p := range pt.Parts {
		internal += len(p.Local.Clauses)
	}
	if internal+len(pt.Cut) != len(pt.Source.Clauses) {
		return fmt.Errorf("clause accounting: %d internal + %d cut != %d total",
			internal, len(pt.Cut), len(pt.Source.Clauses))
	}
	return nil
}
