package partition

import (
	"math"
	"math/rand"
	"testing"

	"tuffy/internal/datagen"
	"tuffy/internal/mrf"
)

func TestAlgorithm3UnboundedEqualsComponents(t *testing.T) {
	m := datagen.Example1(15)
	pt := Algorithm3(m, 0)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pt.Parts) != 15 {
		t.Fatalf("parts = %d, want 15 (one per component)", len(pt.Parts))
	}
	if pt.NumCut() != 0 {
		t.Fatalf("cut = %d, want 0", pt.NumCut())
	}
}

func TestAlgorithm3RespectsBound(t *testing.T) {
	// A chain of 40 atoms connected by 2-literal clauses; a small beta must
	// yield multiple partitions, and the bound must hold.
	m := mrf.New(40)
	for i := 1; i < 40; i++ {
		_ = m.AddClause(float64(i%5+1), mrf.AtomID(i), mrf.AtomID(i+1))
	}
	const beta = 20
	pt := Algorithm3(m, beta)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pt.Parts) < 2 {
		t.Fatalf("expected a split, got %d parts", len(pt.Parts))
	}
	for i, p := range pt.Parts {
		if p.SizeUnits > beta {
			t.Fatalf("part %d size %d exceeds beta %d", i, p.SizeUnits, beta)
		}
	}
	if pt.NumCut() == 0 {
		t.Fatal("chain split must cut some clauses")
	}
}

func TestAlgorithm3PrefersCuttingLightClauses(t *testing.T) {
	// Two triangles of heavy clauses joined by one light clause: with a
	// beta that fits one triangle but not both, the light clause is cut.
	m := mrf.New(6)
	heavy := 10.0
	_ = m.AddClause(heavy, 1, 2)
	_ = m.AddClause(heavy, 2, 3)
	_ = m.AddClause(heavy, 1, 3)
	_ = m.AddClause(heavy, 4, 5)
	_ = m.AddClause(heavy, 5, 6)
	_ = m.AddClause(heavy, 4, 6)
	_ = m.AddClause(0.1, 3, 4) // the light bridge
	pt := Algorithm3(m, 12)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if pt.NumCut() != 1 {
		t.Fatalf("cut = %d, want 1", pt.NumCut())
	}
	if math.Abs(pt.CutWeight-0.1) > 1e-9 {
		t.Fatalf("cut weight = %v, want 0.1 (the light clause)", pt.CutWeight)
	}
}

func TestAlgorithm3CostPreservation(t *testing.T) {
	// Internal clause costs + cut clause costs must equal the parent cost
	// for any state.
	rng := rand.New(rand.NewSource(5))
	m := datagen.Example2(10)
	pt := Algorithm3(m, 25)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		state := m.NewState()
		for i := 1; i <= m.NumAtoms; i++ {
			state[i] = rng.Intn(2) == 0
		}
		want := m.Cost(state)
		got := 0.0
		for _, p := range pt.Parts {
			got += p.Local.Cost(p.ExtractState(state))
		}
		for _, c := range pt.Cut {
			if c.ViolatedBy(state) {
				got += math.Abs(c.Weight)
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: partitioned cost %v != parent %v", trial, got, want)
		}
	}
}

func TestProjectExtractRoundTrip(t *testing.T) {
	m := datagen.Example1(4)
	pt := Algorithm3(m, 0)
	global := m.NewState()
	for i := 1; i <= m.NumAtoms; i += 2 {
		global[i] = true
	}
	for _, p := range pt.Parts {
		local := p.ExtractState(global)
		out := m.NewState()
		p.ProjectState(local, out)
		for i := 1; i <= p.Local.NumAtoms; i++ {
			g := p.GlobalAtom[i]
			if out[g] != global[g] {
				t.Fatalf("atom %d mismatch", g)
			}
		}
	}
}

func TestFirstFitDecreasing(t *testing.T) {
	m := datagen.Example1(20)
	pt := Algorithm3(m, 0)
	perPart := pt.Parts[0].Bytes()
	// Budget of 5 partitions per batch -> ceil(20/5) = 4 batches.
	batches := FirstFitDecreasing(pt.Parts, perPart*5)
	if len(batches) != 4 {
		t.Fatalf("batches = %d, want 4", len(batches))
	}
	seen := map[int]bool{}
	for _, b := range batches {
		if b.Bytes > perPart*5 {
			t.Fatalf("batch over budget: %d > %d", b.Bytes, perPart*5)
		}
		for _, pi := range b.PartIdx {
			if seen[pi] {
				t.Fatalf("partition %d in two batches", pi)
			}
			seen[pi] = true
		}
	}
	if len(seen) != len(pt.Parts) {
		t.Fatalf("only %d of %d partitions packed", len(seen), len(pt.Parts))
	}
}

func TestFirstFitDecreasingOversized(t *testing.T) {
	m := datagen.Example1(3)
	pt := Algorithm3(m, 0)
	// Budget smaller than any partition: one batch per partition.
	batches := FirstFitDecreasing(pt.Parts, 1)
	if len(batches) != len(pt.Parts) {
		t.Fatalf("batches = %d, want %d", len(batches), len(pt.Parts))
	}
}

func TestFFDBetterThanOnePerBatch(t *testing.T) {
	// FFD groups many small components per batch — the I/O saving of the
	// paper's batch loading (Table 7).
	m := datagen.Example1(100)
	pt := Algorithm3(m, 0)
	perPart := pt.Parts[0].Bytes()
	batches := FirstFitDecreasing(pt.Parts, perPart*10)
	if len(batches) >= 100 {
		t.Fatalf("FFD produced %d batches for 100 parts", len(batches))
	}
	if len(batches) != 10 {
		t.Fatalf("batches = %d, want 10", len(batches))
	}
}

func TestPartitionEightyTwentySplit(t *testing.T) {
	// Unequal component sizes pack tightly: 5 parts of 2 atoms and one of
	// 100 atoms (sizes differ), FFD puts the big one alone.
	big := mrf.New(102)
	for i := 1; i < 100; i++ {
		_ = big.AddClause(1, mrf.AtomID(i), mrf.AtomID(i+1))
	}
	_ = big.AddClause(1, 101, 102)
	pt := Algorithm3(big, 0)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pt.Parts) != 2 {
		t.Fatalf("parts = %d", len(pt.Parts))
	}
}
