package partition

import (
	"sort"

	"tuffy/internal/mrf"
)

// This file builds the partition interaction graph and colors it, the
// scheduling structure behind parallel Gauss-Seidel rounds: two partitions
// interact iff some cut clause has atoms in both, so partitions of the same
// color share no cut clause and their conditioned sub-problems are mutually
// independent under any frozen external assignment. Running one color class
// at a time (partitions within the class concurrently) therefore computes
// exactly the same projections as a sequential sweep — the follow-up
// task-decomposition work runs partitions as independent tasks for the same
// reason.

// Coloring groups partitions into conflict-free classes.
type Coloring struct {
	// Color maps partition index -> color (0-based).
	Color []int32
	// Classes lists, per color, the partition indexes of that color in
	// ascending order. Iterating Classes in order and merging each class's
	// results in ascending partition order is deterministic for any degree
	// of parallelism.
	Classes [][]int
}

// NumColors returns the number of color classes.
func (c *Coloring) NumColors() int { return len(c.Classes) }

// InteractionGraph returns adjacency lists over partitions: i and j are
// adjacent iff at least one cut clause spans both. Lists are sorted and
// deduplicated; the graph is symmetric.
func (pt *Partitioning) InteractionGraph() [][]int32 {
	adj := make([]map[int32]struct{}, len(pt.Parts))
	touch := func(a, b int32) {
		if adj[a] == nil {
			adj[a] = make(map[int32]struct{})
		}
		adj[a][b] = struct{}{}
	}
	var span []int32 // distinct partitions of the current clause
	for _, c := range pt.Cut {
		span = span[:0]
		for _, l := range c.Lits {
			pi := pt.PartOf[mrf.Atom(l)]
			dup := false
			for _, s := range span {
				if s == pi {
					dup = true
					break
				}
			}
			if !dup {
				span = append(span, pi)
			}
		}
		for i := 0; i < len(span); i++ {
			for j := i + 1; j < len(span); j++ {
				touch(span[i], span[j])
				touch(span[j], span[i])
			}
		}
	}
	out := make([][]int32, len(pt.Parts))
	for i, m := range adj {
		if len(m) == 0 {
			continue
		}
		ns := make([]int32, 0, len(m))
		for n := range m {
			ns = append(ns, n)
		}
		sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
		out[i] = ns
	}
	return out
}

// ColorParts greedily colors the interaction graph in Welsh-Powell order
// (descending degree, partition index as tie-break), assigning each
// partition the smallest color unused by its neighbours. The ordering is
// deterministic, so the same partitioning always yields the same classes.
// Partitions with no cut neighbours (pure components) all land in color 0.
func (pt *Partitioning) ColorParts() *Coloring {
	adj := pt.InteractionGraph()
	n := len(pt.Parts)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(adj[order[a]]) > len(adj[order[b]])
	})

	color := make([]int32, n)
	for i := range color {
		color[i] = -1
	}
	maxColor := int32(-1)
	used := []bool{}
	for _, pi := range order {
		for i := range used {
			used[i] = false
		}
		for _, nb := range adj[pi] {
			if c := color[nb]; c >= 0 {
				for int(c) >= len(used) {
					used = append(used, false)
				}
				used[c] = true
			}
		}
		c := int32(0)
		for int(c) < len(used) && used[c] {
			c++
		}
		color[pi] = c
		if c > maxColor {
			maxColor = c
		}
	}

	classes := make([][]int, maxColor+1)
	for pi := 0; pi < n; pi++ { // ascending partition order within a class
		classes[color[pi]] = append(classes[color[pi]], pi)
	}
	return &Coloring{Color: color, Classes: classes}
}
