package partition

import (
	"math"
	"sort"

	"tuffy/internal/mrf"
)

// Repair rebuilds an Algorithm-3 partitioning after an incremental re-ground,
// re-partitioning only the connected components the update touched and
// splicing the untouched components' parts through with remapped atom ids.
//
// Why this is sound: Algorithm 3 factorizes over connected components — every
// clause's atoms live in one component, so union-find merges, size accounting
// and the internal/cut decision for a component's clauses depend only on that
// component's clauses and their relative order in the |weight|-descending
// stable scan. For an untouched component (no atom flagged in touchedNew, see
// grounding.Reground) the clause multiset, the weights, and the relative
// clause order are all preserved, and the atom renumbering is monotone — so
// running Algorithm 3 on the whole new MRF would reproduce the old parts of
// that component exactly, up to the global renumbering. Repair therefore
// reuses those parts' (immutable) local MRFs, re-runs Algorithm 3 only on the
// induced sub-MRFs of touched components, and rebuilds the global part order,
// PartOf and Cut, which are cheap scans. The result is bit-identical to
// Algorithm3(cur, beta); tests assert that equivalence.
func Repair(old *Partitioning, cur *mrf.MRF, newToOld []mrf.AtomID, touchedNew []bool, beta int) (pt *Partitioning, reusedParts int) {
	n := cur.NumAtoms
	uf := mrf.NewUnionFind(n)
	for _, c := range cur.Clauses {
		first := mrf.Atom(c.Lits[0])
		for _, l := range c.Lits[1:] {
			uf.Union(first, mrf.Atom(l))
		}
	}
	groups := make(map[int32][]mrf.AtomID)
	for a := int32(1); a <= int32(n); a++ {
		groups[uf.Find(a)] = append(groups[uf.Find(a)], a)
	}

	// Collect parts (reused or rebuilt) with their global atom sets, then
	// order them exactly as Algorithm3 does: by smallest global atom id.
	type pendingPart struct {
		part  *Part
		atoms []mrf.AtomID // global (new) ids, ascending
	}
	var pending []pendingPart

	for _, atoms := range groups {
		if oldParts, ok := reusableParts(old, atoms, newToOld, touchedNew); ok {
			// Old id -> new id within this component; the component-level
			// check guarantees the image exists and is monotone.
			toNew := make(map[mrf.AtomID]mrf.AtomID, len(atoms))
			for _, a := range atoms {
				toNew[newToOld[a]] = a
			}
			for _, op := range oldParts {
				ga := make([]mrf.AtomID, op.Local.NumAtoms+1)
				gatoms := make([]mrf.AtomID, 0, op.Local.NumAtoms)
				for i := 1; i <= op.Local.NumAtoms; i++ {
					ga[i] = toNew[op.GlobalAtom[i]]
					gatoms = append(gatoms, ga[i])
				}
				pending = append(pending, pendingPart{
					part:  &Part{Local: op.Local, GlobalAtom: ga, SizeUnits: op.SizeUnits},
					atoms: gatoms,
				})
				reusedParts++
			}
			continue
		}
		// Rebuild: run Algorithm 3 on the induced sub-MRF of this component.
		sub := induceSub(cur, atoms)
		subPt := Algorithm3(sub, beta)
		for _, sp := range subPt.Parts {
			ga := make([]mrf.AtomID, sp.Local.NumAtoms+1)
			gatoms := make([]mrf.AtomID, 0, sp.Local.NumAtoms)
			for i := 1; i <= sp.Local.NumAtoms; i++ {
				ga[i] = atoms[sp.GlobalAtom[i]-1]
				gatoms = append(gatoms, ga[i])
			}
			pending = append(pending, pendingPart{
				part:  &Part{Local: sp.Local, GlobalAtom: ga, SizeUnits: sp.SizeUnits},
				atoms: gatoms,
			})
		}
	}

	sort.Slice(pending, func(a, b int) bool { return pending[a].atoms[0] < pending[b].atoms[0] })

	pt = &Partitioning{Source: cur, PartOf: make([]int32, n+1)}
	for pi, pp := range pending {
		pt.Parts = append(pt.Parts, pp.part)
		for _, a := range pp.atoms {
			pt.PartOf[a] = int32(pi)
		}
	}
	// Cut: exactly Algorithm3's final scan over the parent clause list.
	for _, c := range cur.Clauses {
		pi := pt.PartOf[mrf.Atom(c.Lits[0])]
		internal := true
		for _, l := range c.Lits[1:] {
			if pt.PartOf[mrf.Atom(l)] != pi {
				internal = false
				break
			}
		}
		if !internal {
			pt.Cut = append(pt.Cut, c)
			pt.CutWeight += math.Abs(c.Weight)
		}
	}
	return pt, reusedParts
}

// reusableParts decides whether the new component over atoms (ascending new
// ids) is an untouched, order-preserving image of a set of old parts that
// exactly tile it, returning those parts.
func reusableParts(old *Partitioning, atoms []mrf.AtomID, newToOld []mrf.AtomID, touchedNew []bool) ([]*Part, bool) {
	prev := mrf.AtomID(0)
	distinct := make(map[int32]bool)
	total := 0
	for _, a := range atoms {
		o := newToOld[a]
		if touchedNew[a] || o == 0 || o <= prev || int(o) >= len(old.PartOf) {
			return nil, false
		}
		prev = o
		pi := old.PartOf[o]
		if !distinct[pi] {
			distinct[pi] = true
			total += old.Parts[pi].NumAtoms()
		}
	}
	// The old parts touched by the image must tile it exactly: no old part
	// may reach outside the image (a vanished or split component otherwise).
	if total != len(atoms) {
		return nil, false
	}
	parts := make([]*Part, 0, len(distinct))
	for pi := range distinct {
		parts = append(parts, old.Parts[pi])
	}
	sort.Slice(parts, func(a, b int) bool { return parts[a].GlobalAtom[1] < parts[b].GlobalAtom[1] })
	return parts, true
}

// induceSub builds the sub-MRF over atoms (ascending): local ids are ranks,
// clauses are the parent clauses fully inside the atom set, in parent order.
func induceSub(m *mrf.MRF, atoms []mrf.AtomID) *mrf.MRF {
	localOf := make([]mrf.AtomID, m.NumAtoms+1)
	for i, a := range atoms {
		localOf[a] = mrf.AtomID(i + 1)
	}
	sub := mrf.New(len(atoms))
	for _, c := range m.Clauses {
		if localOf[mrf.Atom(c.Lits[0])] == 0 {
			continue
		}
		lits := make([]mrf.Lit, len(c.Lits))
		ok := true
		for i, l := range c.Lits {
			ll := localOf[mrf.Atom(l)]
			if ll == 0 {
				ok = false
				break
			}
			if !mrf.Pos(l) {
				ll = -ll
			}
			lits[i] = ll
		}
		if !ok {
			continue
		}
		sub.Clauses = append(sub.Clauses, mrf.Clause{Weight: c.Weight, Lits: lits})
	}
	return sub
}
