package mln

// Figure1Program is the paper-classification MLN of Figure 1 in the Tuffy
// paper, in the surface syntax accepted by ParseProgram. It is used by the
// quickstart example, the RC dataset generator, and many tests.
const Figure1Program = `
// Schema
paper(paperid, url)
wrote(author, paperid)
*refers(paperid, paperid)
cat(paperid, category)

// Rules (Figure 1)
5 cat(p, c1), cat(p, c2) => c1 = c2                       // F1: one category
1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)    // F2: same author => same category
2 cat(p1, c), refers(p1, p2) => cat(p2, c)                // F3: citation => same category
paper(p, u) => EXIST x wrote(x, p).                       // F4: every paper has an author (hard)
-1 cat(p, "Networking")                                   // F5: few papers are Networking
`

// Figure1Evidence is the small evidence set shown in Figure 1.
const Figure1Evidence = `
wrote(Joe, P1)
wrote(Joe, P2)
wrote(Jake, P3)
refers(P1, P3)
cat(P2, DB)
paper(P1, U1)
paper(P2, U2)
paper(P3, U3)
`
