package mln

import (
	"fmt"
	"sort"
	"strings"
)

// Truth is the three-valued truth attribute the paper stores in each
// predicate relation R_P(aid, args, truth): known true, known false, or not
// specified by the evidence.
type Truth int8

const (
	Unknown Truth = iota
	True
	False
)

func (t Truth) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// GroundAtom is a fully instantiated predicate, e.g. wrote(Joe, P1).
type GroundAtom struct {
	Pred *Predicate
	Args []int32
}

// Key packs the argument tuple into a compact map key. Keys are only
// comparable within a single predicate.
func (a GroundAtom) Key() string { return argKey(a.Args) }

func argKey(args []int32) string {
	var b strings.Builder
	b.Grow(len(args) * 5)
	for _, v := range args {
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
	}
	return b.String()
}

// Format renders the atom with the program's symbol table.
func (a GroundAtom) Format(syms *Symbols) string {
	parts := make([]string, len(a.Args))
	for i, c := range a.Args {
		parts[i] = quoteIfNeeded(syms.Name(c))
	}
	return fmt.Sprintf("%s(%s)", a.Pred.Name, strings.Join(parts, ", "))
}

// Evidence is the database of known ground atoms. Atoms of closed-world
// predicates not present are false; atoms of open predicates not present are
// unknown (query atoms). This matches the paper's Figure 1 "Evidence" box.
type Evidence struct {
	prog   *Program
	tables map[*Predicate]map[string]Truth
	counts map[*Predicate]int
	total  int
}

// NewEvidence returns an empty evidence database for prog.
func NewEvidence(prog *Program) *Evidence {
	return &Evidence{
		prog:   prog,
		tables: make(map[*Predicate]map[string]Truth),
		counts: make(map[*Predicate]int),
	}
}

// Program returns the program this evidence is for.
func (e *Evidence) Program() *Program { return e.prog }

// Assert records a ground atom as true (or false when neg is set). The
// constants are added to the domains of the predicate's argument types, so
// loading evidence also populates the typed domains.
func (e *Evidence) Assert(pred *Predicate, args []int32, neg bool) error {
	if len(args) != pred.Arity() {
		return fmt.Errorf("mln: evidence for %s has %d args, want %d", pred.Name, len(args), pred.Arity())
	}
	for i, c := range args {
		e.prog.Domain(pred.Args[i]).Add(c)
	}
	t := e.tables[pred]
	if t == nil {
		t = make(map[string]Truth)
		e.tables[pred] = t
	}
	k := argKey(args)
	if _, dup := t[k]; !dup {
		e.counts[pred]++
		e.total++
	}
	if neg {
		t[k] = False
	} else {
		t[k] = True
	}
	return nil
}

// AssertNames is Assert with constant names; it interns them first.
func (e *Evidence) AssertNames(predName string, names []string, neg bool) error {
	pred, ok := e.prog.Predicate(predName)
	if !ok {
		return fmt.Errorf("mln: evidence for undeclared predicate %q", predName)
	}
	args := make([]int32, len(names))
	for i, n := range names {
		if i >= pred.Arity() {
			break
		}
		args[i] = e.prog.Constant(pred.Args[i], n)
	}
	return e.Assert(pred, args, neg)
}

// TruthOf returns the three-valued truth of a ground atom under the evidence
// plus the closed-world assumption for closed predicates.
func (e *Evidence) TruthOf(pred *Predicate, args []int32) Truth {
	if t, ok := e.tables[pred]; ok {
		if v, ok := t[argKey(args)]; ok {
			return v
		}
	}
	if pred.Closed {
		return False
	}
	return Unknown
}

// Count returns the number of evidence tuples for pred.
func (e *Evidence) Count(pred *Predicate) int { return e.counts[pred] }

// Total returns the number of evidence tuples across all predicates.
func (e *Evidence) Total() int { return e.total }

// ForEach calls fn for every evidence tuple of pred, in a deterministic
// (packed-key) order, so consumers that assign ids in visit order — the
// grounder's atom registry — produce identical ids across runs and across
// independently built systems. fn receives the argument tuple and its truth.
func (e *Evidence) ForEach(pred *Predicate, fn func(args []int32, t Truth)) {
	table := e.tables[pred]
	if table == nil {
		return
	}
	keys := make([]string, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	n := pred.Arity()
	for _, k := range keys {
		args := make([]int32, n)
		for i := 0; i < n; i++ {
			off := i * 4
			args[i] = int32(uint32(k[off]) | uint32(k[off+1])<<8 | uint32(k[off+2])<<16 | uint32(k[off+3])<<24)
		}
		fn(args, table[k])
	}
}

// QueryDecl marks which predicates the user is querying. Open (non-closed)
// predicates not in any query default to query status as well, matching
// Tuffy's behaviour of inferring all missing data.
type QueryDecl struct {
	preds map[*Predicate]bool
}

// NewQueryDecl returns an empty query declaration.
func NewQueryDecl() *QueryDecl {
	return &QueryDecl{preds: make(map[*Predicate]bool)}
}

// Add marks pred as queried.
func (q *QueryDecl) Add(pred *Predicate) { q.preds[pred] = true }

// Contains reports whether pred was marked.
func (q *QueryDecl) Contains(pred *Predicate) bool { return q.preds[pred] }

// Empty reports whether no predicate was marked.
func (q *QueryDecl) Empty() bool { return len(q.preds) == 0 }
