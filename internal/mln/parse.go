package mln

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// This file implements the Alchemy-flavoured surface syntax Tuffy accepts:
//
//	// comment
//	category = {DB, AI, Networking}      domain declaration (optional)
//	paper(paper, url)                    predicate declaration
//	*refers(paper, paper)                closed-world predicate
//	5    cat(p,c1), cat(p,c2) => c1 = c2 soft rule (weight first)
//	-1   cat(p, "Networking")            negative-weight rule
//	paper(p,u) => EXIST x wrote(x,p).    hard rule (trailing period)
//
// Identifiers beginning with a lower-case letter are variables; identifiers
// beginning with an upper-case letter or digit, and quoted strings, are
// constants (Alchemy's convention). Implications are converted to clausal
// form: body literals are negated and disjoined with the head.

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokBang
	tokEq
	tokNeq
	tokImplies
	tokPeriod
	tokLBrace
	tokRBrace
	tokStar
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	line string
	pos  int
	toks []token
}

func lexLine(line string) ([]token, error) {
	lx := &lexer{line: line}
	for lx.pos < len(lx.line) {
		c := lx.line[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '(':
			lx.emit(tokLParen, "(")
		case c == ')':
			lx.emit(tokRParen, ")")
		case c == ',':
			lx.emit(tokComma, ",")
		case c == '{':
			lx.emit(tokLBrace, "{")
		case c == '}':
			lx.emit(tokRBrace, "}")
		case c == '*':
			lx.emit(tokStar, "*")
		case c == '!':
			if lx.peek(1) == '=' {
				lx.emit2(tokNeq, "!=")
			} else {
				lx.emit(tokBang, "!")
			}
		case c == '=':
			if lx.peek(1) == '>' {
				lx.emit2(tokImplies, "=>")
			} else {
				lx.emit(tokEq, "=")
			}
		case c == '"' || c == '\'':
			if err := lx.lexString(c); err != nil {
				return nil, err
			}
		case c == '.':
			// A period is a hard-rule marker only when not part of a number.
			lx.emit(tokPeriod, ".")
		case c == '-' || c == '+' || (c >= '0' && c <= '9'):
			lx.lexNumberOrIdent()
		default:
			if isIdentStart(rune(c)) {
				lx.lexIdent()
			} else {
				return nil, fmt.Errorf("unexpected character %q at col %d", c, lx.pos)
			}
		}
	}
	lx.toks = append(lx.toks, token{kind: tokEOF, pos: lx.pos})
	return lx.toks, nil
}

func (lx *lexer) peek(ahead int) byte {
	if lx.pos+ahead < len(lx.line) {
		return lx.line[lx.pos+ahead]
	}
	return 0
}

func (lx *lexer) emit(k tokKind, s string) {
	lx.toks = append(lx.toks, token{kind: k, text: s, pos: lx.pos})
	lx.pos++
}

func (lx *lexer) emit2(k tokKind, s string) {
	lx.toks = append(lx.toks, token{kind: k, text: s, pos: lx.pos})
	lx.pos += 2
}

func (lx *lexer) lexString(q byte) error {
	start := lx.pos
	lx.pos++
	var b strings.Builder
	for lx.pos < len(lx.line) {
		c := lx.line[lx.pos]
		if c == q {
			lx.pos++
			lx.toks = append(lx.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		lx.pos++
	}
	return fmt.Errorf("unterminated string starting at col %d", start)
}

func (lx *lexer) lexNumberOrIdent() {
	start := lx.pos
	if lx.line[lx.pos] == '-' || lx.line[lx.pos] == '+' {
		lx.pos++
	}
	digits := false
	for lx.pos < len(lx.line) {
		c := lx.line[lx.pos]
		if c >= '0' && c <= '9' {
			digits = true
			lx.pos++
			continue
		}
		if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') && digits {
			// Accept float syntax like 2.5, 1e-3. A '.' followed by
			// non-digit ends the number (hard-rule period).
			if c == '.' && !(lx.pos+1 < len(lx.line) && lx.line[lx.pos+1] >= '0' && lx.line[lx.pos+1] <= '9') {
				break
			}
			if (c == '-' || c == '+') && !(lx.line[lx.pos-1] == 'e' || lx.line[lx.pos-1] == 'E') {
				break
			}
			lx.pos++
			continue
		}
		break
	}
	text := lx.line[start:lx.pos]
	if !digits {
		// "-inf", "+inf" or a sign with no digits: try ident continuation.
		for lx.pos < len(lx.line) && isIdentPart(rune(lx.line[lx.pos])) {
			lx.pos++
		}
		text = lx.line[start:lx.pos]
		lx.toks = append(lx.toks, token{kind: tokNumber, text: text, pos: start})
		return
	}
	// Digits followed by identifier chars form a constant like 2010a.
	if lx.pos < len(lx.line) && isIdentPart(rune(lx.line[lx.pos])) {
		for lx.pos < len(lx.line) && isIdentPart(rune(lx.line[lx.pos])) {
			lx.pos++
		}
		lx.toks = append(lx.toks, token{kind: tokIdent, text: lx.line[start:lx.pos], pos: start})
		return
	}
	lx.toks = append(lx.toks, token{kind: tokNumber, text: text, pos: start})
}

func (lx *lexer) lexIdent() {
	start := lx.pos
	for lx.pos < len(lx.line) && isIdentPart(rune(lx.line[lx.pos])) {
		lx.pos++
	}
	lx.toks = append(lx.toks, token{kind: tokIdent, text: lx.line[start:lx.pos], pos: start})
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// ParseProgram reads an MLN program (declarations and rules) from r.
func ParseProgram(r io.Reader) (*Program, error) {
	prog := NewProgram()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := stripComment(sc.Text())
		if strings.TrimSpace(line) == "" {
			continue
		}
		if err := parseProgramLine(prog, line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseProgramString is ParseProgram over a string.
func ParseProgramString(s string) (*Program, error) {
	return ParseProgram(strings.NewReader(s))
}

func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

func parseProgramLine(prog *Program, line string) error {
	toks, err := lexLine(line)
	if err != nil {
		return err
	}
	p := &parser{prog: prog, toks: toks, src: strings.TrimSpace(line)}
	return p.parseTop()
}

type parser struct {
	prog *Program
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("expected %s at col %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) parseTop() error {
	switch p.cur().kind {
	case tokStar:
		p.next()
		return p.parsePredicateDecl(true)
	case tokNumber:
		w, err := parseWeight(p.next().text)
		if err != nil {
			return err
		}
		return p.parseRule(w, false)
	case tokIdent:
		// Either an "inf" weight, a domain declaration "name = {...}", a
		// predicate declaration "name(type,...)", or a weightless (hard) rule.
		if strings.EqualFold(p.cur().text, "inf") {
			p.next()
			return p.parseRule(math.Inf(1), false)
		}
		if p.toks[p.i+1].kind == tokEq && p.toks[p.i+2].kind == tokLBrace {
			return p.parseDomainDecl()
		}
		if p.isBareDeclaration() {
			return p.parsePredicateDecl(false)
		}
		return p.parseRule(math.Inf(1), true)
	case tokBang:
		return p.parseRule(math.Inf(1), true)
	default:
		return fmt.Errorf("unexpected token %q", p.cur().text)
	}
}

// isBareDeclaration distinguishes "pred(type1, type2)" from a rule. A
// declaration is a single ident(ident,...) with nothing after it, and all
// arguments starting lower-case (type names).
func (p *parser) isBareDeclaration() bool {
	j := p.i
	if p.toks[j].kind != tokIdent || p.toks[j+1].kind != tokLParen {
		return false
	}
	j += 2
	for {
		if p.toks[j].kind != tokIdent {
			return false
		}
		if r := rune(p.toks[j].text[0]); !unicode.IsLower(r) {
			return false
		}
		j++
		if p.toks[j].kind == tokComma {
			j++
			continue
		}
		break
	}
	if p.toks[j].kind != tokRParen {
		return false
	}
	return p.toks[j+1].kind == tokEOF
}

func (p *parser) parsePredicateDecl(closed bool) error {
	name, err := p.expect(tokIdent, "predicate name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return err
	}
	var args []string
	for {
		a, err := p.expect(tokIdent, "argument type")
		if err != nil {
			return err
		}
		args = append(args, a.text)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return err
	}
	_, err = p.prog.DeclarePredicate(name.text, args, closed)
	return err
}

func (p *parser) parseDomainDecl() error {
	name := p.next().text
	p.next() // =
	p.next() // {
	for {
		t := p.next()
		switch t.kind {
		case tokIdent, tokString, tokNumber:
			p.prog.Constant(name, t.text)
		default:
			return fmt.Errorf("bad domain member %q", t.text)
		}
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	_, err := p.expect(tokRBrace, "}")
	return err
}

func parseWeight(s string) (float64, error) {
	switch strings.ToLower(s) {
	case "inf", "+inf":
		return math.Inf(1), nil
	case "-inf":
		return math.Inf(-1), nil
	}
	w, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad weight %q", s)
	}
	return w, nil
}

// parseRule parses "body => head" or a disjunction, converts to clausal
// form, and adds the clause. hardByDefault is set for weightless rules,
// which require a trailing period.
func (p *parser) parseRule(weight float64, hardByDefault bool) error {
	body, sawImplies, err := p.parseLiteralList(tokImplies)
	if err != nil {
		return err
	}
	var c Clause
	c.Weight = weight
	c.Source = p.src
	if sawImplies {
		// Clausal form: negate each body literal, disjoin with head.
		for _, l := range body {
			l.Negated = !l.Negated
			c.Lits = append(c.Lits, l)
		}
		if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "EXIST") {
			p.next()
			for {
				v, err := p.expect(tokIdent, "existential variable")
				if err != nil {
					return err
				}
				c.Exist = append(c.Exist, v.text)
				if p.cur().kind == tokComma {
					p.next()
					continue
				}
				break
			}
		}
		head, _, err := p.parseLiteralList(tokEOF)
		if err != nil {
			return err
		}
		if len(head) == 0 {
			return fmt.Errorf("empty head")
		}
		c.Lits = append(c.Lits, head...)
	} else {
		c.Lits = body
	}
	// Trailing period marks a hard rule.
	hard := false
	if p.cur().kind == tokPeriod {
		p.next()
		hard = true
	}
	if hard {
		c.Weight = math.Inf(1)
	} else if hardByDefault {
		return fmt.Errorf("rule needs a weight or a trailing period: %s", p.src)
	}
	if p.cur().kind != tokEOF {
		return fmt.Errorf("trailing tokens at col %d: %q", p.cur().pos, p.cur().text)
	}
	return p.prog.AddClause(&c)
}

// parseLiteralList parses literals separated by commas (conjunction in rule
// bodies) or the ident "v" (disjunction). It stops at stopAt (if tokImplies,
// returns sawStop=true after consuming it), EOF, or a period.
func (p *parser) parseLiteralList(stopAt tokKind) (lits []Literal, sawStop bool, err error) {
	for {
		l, err := p.parseLiteral()
		if err != nil {
			return nil, false, err
		}
		lits = append(lits, l)
		switch {
		case p.cur().kind == tokComma:
			p.next()
		case p.cur().kind == tokIdent && p.cur().text == "v":
			p.next()
		case p.cur().kind == stopAt && stopAt == tokImplies:
			p.next()
			return lits, true, nil
		default:
			return lits, false, nil
		}
	}
}

func (p *parser) parseLiteral() (Literal, error) {
	var l Literal
	if p.cur().kind == tokBang {
		p.next()
		l.Negated = true
	}
	// Built-in equality: term (=|!=) term, where the first token is not a
	// predicate application.
	first := p.cur()
	if (first.kind == tokIdent || first.kind == tokString || first.kind == tokNumber) && p.toks[p.i+1].kind != tokLParen {
		lhs, err := p.parseTerm("")
		if err != nil {
			return l, err
		}
		op := p.next()
		neg := l.Negated
		switch op.kind {
		case tokEq:
		case tokNeq:
			neg = !neg
		default:
			return l, fmt.Errorf("expected = or != at col %d, got %q", op.pos, op.text)
		}
		rhs, err := p.parseTerm("")
		if err != nil {
			return l, err
		}
		return Literal{Negated: neg, Args: []Term{lhs, rhs}}, nil
	}
	name, err := p.expect(tokIdent, "predicate name")
	if err != nil {
		return l, err
	}
	pred, ok := p.prog.Predicate(name.text)
	if !ok {
		return l, fmt.Errorf("undeclared predicate %q", name.text)
	}
	l.Pred = pred
	if _, err := p.expect(tokLParen, "("); err != nil {
		return l, err
	}
	for i := 0; ; i++ {
		typ := ""
		if i < pred.Arity() {
			typ = pred.Args[i]
		}
		t, err := p.parseTerm(typ)
		if err != nil {
			return l, err
		}
		l.Args = append(l.Args, t)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return l, err
	}
	return l, nil
}

// parseTerm parses a term. Quoted strings and identifiers starting with an
// upper-case letter or digit are constants (interned into the domain typ
// when known); lower-case identifiers are variables.
func (p *parser) parseTerm(typ string) (Term, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		return C(p.internConst(typ, t.text)), nil
	case tokNumber:
		return C(p.internConst(typ, t.text)), nil
	case tokIdent:
		if unicode.IsLower(rune(t.text[0])) {
			return V(t.text), nil
		}
		return C(p.internConst(typ, t.text)), nil
	default:
		return Term{}, fmt.Errorf("expected term at col %d, got %q", t.pos, t.text)
	}
}

func (p *parser) internConst(typ, name string) int32 {
	if typ == "" {
		return p.prog.Syms.Intern(name)
	}
	return p.prog.Constant(typ, name)
}

// ParseEvidence reads ground literals ("wrote(Joe, P1)", "!cat(P5, DB)"),
// one per line, into a new Evidence database.
func ParseEvidence(prog *Program, r io.Reader) (*Evidence, error) {
	ev := NewEvidence(prog)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := stripComment(sc.Text())
		if strings.TrimSpace(line) == "" {
			continue
		}
		if err := parseEvidenceLine(ev, line); err != nil {
			return nil, fmt.Errorf("evidence line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ev, nil
}

// ParseEvidenceString is ParseEvidence over a string.
func ParseEvidenceString(prog *Program, s string) (*Evidence, error) {
	return ParseEvidence(prog, strings.NewReader(s))
}

func parseEvidenceLine(ev *Evidence, line string) error {
	toks, err := lexLine(line)
	if err != nil {
		return err
	}
	i := 0
	neg := false
	if toks[i].kind == tokBang {
		neg = true
		i++
	}
	if toks[i].kind != tokIdent {
		return fmt.Errorf("expected predicate, got %q", toks[i].text)
	}
	name := toks[i].text
	i++
	if toks[i].kind != tokLParen {
		return fmt.Errorf("expected ( after %s", name)
	}
	i++
	var args []string
	for {
		switch toks[i].kind {
		case tokIdent, tokString, tokNumber:
			args = append(args, toks[i].text)
			i++
		default:
			return fmt.Errorf("bad constant %q", toks[i].text)
		}
		if toks[i].kind == tokComma {
			i++
			continue
		}
		break
	}
	if toks[i].kind != tokRParen {
		return fmt.Errorf("expected ) in %s", line)
	}
	pred, ok := ev.prog.Predicate(name)
	if !ok {
		return fmt.Errorf("undeclared predicate %q", name)
	}
	if len(args) != pred.Arity() {
		return fmt.Errorf("%s has arity %d, got %d args", name, pred.Arity(), len(args))
	}
	return ev.AssertNames(name, args, neg)
}

// ParseQuery reads query atoms (one per line, e.g. "cat(p, c)") and returns
// the set of queried predicates.
func ParseQuery(prog *Program, r io.Reader) (*QueryDecl, error) {
	q := NewQueryDecl()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(stripComment(sc.Text()))
		if line == "" {
			continue
		}
		name := line
		if i := strings.IndexByte(line, '('); i >= 0 {
			name = strings.TrimSpace(line[:i])
		}
		pred, ok := prog.Predicate(name)
		if !ok {
			return nil, fmt.Errorf("query line %d: undeclared predicate %q", lineNo, name)
		}
		q.Add(pred)
	}
	return q, sc.Err()
}
