// Package mln defines the Markov Logic Network model used throughout the
// system: predicates, typed domains, first-order clauses with weights, and
// the evidence database. It mirrors the formalism of Section 2 of the Tuffy
// paper (Niu et al., VLDB 2011): an MLN is a set of weighted clauses in
// clausal form over a relational schema; together with an evidence database
// it defines a cost over possible worlds (Eq. 1 of the paper).
package mln

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Symbols interns constant names to dense int32 identifiers. All constants in
// a Program share one symbol table so that grounded atoms can be compared by
// integer id, exactly as the RDBMS layer stores them.
type Symbols struct {
	byName map[string]int32
	names  []string
}

// NewSymbols returns an empty symbol table.
func NewSymbols() *Symbols {
	return &Symbols{byName: make(map[string]int32)}
}

// Intern returns the id for name, assigning a fresh one if needed.
func (s *Symbols) Intern(name string) int32 {
	if id, ok := s.byName[name]; ok {
		return id
	}
	id := int32(len(s.names))
	s.byName[name] = id
	s.names = append(s.names, name)
	return id
}

// Lookup returns the id for name and whether it has been interned.
func (s *Symbols) Lookup(name string) (int32, bool) {
	id, ok := s.byName[name]
	return id, ok
}

// Name returns the string for an interned id.
func (s *Symbols) Name(id int32) string {
	if id < 0 || int(id) >= len(s.names) {
		return fmt.Sprintf("?sym%d", id)
	}
	return s.names[id]
}

// Len reports the number of interned symbols.
func (s *Symbols) Len() int { return len(s.names) }

// Domain is the set of constants of one declared type (e.g. "paper").
type Domain struct {
	Name   string
	Consts []int32
	set    map[int32]struct{}
}

// NewDomain returns an empty domain with the given type name.
func NewDomain(name string) *Domain {
	return &Domain{Name: name, set: make(map[int32]struct{})}
}

// Add inserts a constant id into the domain if not already present.
func (d *Domain) Add(c int32) {
	if _, ok := d.set[c]; ok {
		return
	}
	d.set[c] = struct{}{}
	d.Consts = append(d.Consts, c)
}

// Contains reports whether c is a member of the domain.
func (d *Domain) Contains(c int32) bool {
	_, ok := d.set[c]
	return ok
}

// Size returns the number of constants in the domain.
func (d *Domain) Size() int { return len(d.Consts) }

// Sorted returns the constants in ascending id order (stable iteration order
// for deterministic grounding).
func (d *Domain) Sorted() []int32 {
	out := make([]int32, len(d.Consts))
	copy(out, d.Consts)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Predicate declares a relation of the MLN schema, e.g. wrote(person, paper).
type Predicate struct {
	ID     int
	Name   string
	Args   []string // declared type name of each argument position
	Closed bool     // closed-world: truth fully determined by evidence
}

// Arity returns the number of arguments.
func (p *Predicate) Arity() int { return len(p.Args) }

func (p *Predicate) String() string {
	return fmt.Sprintf("%s(%s)", p.Name, strings.Join(p.Args, ", "))
}

// Term is either a variable (named placeholder) or an interned constant.
type Term struct {
	IsVar bool
	Var   string // variable name when IsVar
	Const int32  // interned constant id when !IsVar
}

// V returns a variable term.
func V(name string) Term { return Term{IsVar: true, Var: name} }

// C returns a constant term.
func C(id int32) Term { return Term{Const: id} }

func (t Term) key() string {
	if t.IsVar {
		return "?" + t.Var
	}
	return fmt.Sprintf("#%d", t.Const)
}

// Literal is a possibly negated atom P(t1,...,tk), or — when Pred is nil — a
// built-in (in)equality between two terms, which grounding resolves
// statically (the paper's rule F1 uses "c1 = c2" in the head).
type Literal struct {
	Pred    *Predicate
	Negated bool
	Args    []Term
}

// IsBuiltinEq reports whether the literal is a built-in term (in)equality.
func (l Literal) IsBuiltinEq() bool { return l.Pred == nil }

// Vars appends the variable names appearing in the literal to dst.
func (l Literal) Vars(dst []string) []string {
	for _, a := range l.Args {
		if a.IsVar {
			dst = append(dst, a.Var)
		}
	}
	return dst
}

// Format renders the literal with the given symbol table.
func (l Literal) Format(syms *Symbols) string {
	var b strings.Builder
	if l.Negated {
		b.WriteByte('!')
	}
	if l.IsBuiltinEq() {
		op := " = "
		if l.Negated {
			op = " != "
		}
		return termString(l.Args[0], syms) + op + termString(l.Args[1], syms)
	}
	b.WriteString(l.Pred.Name)
	b.WriteByte('(')
	for i, a := range l.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(termString(a, syms))
	}
	b.WriteByte(')')
	return b.String()
}

func termString(t Term, syms *Symbols) string {
	if t.IsVar {
		return t.Var
	}
	if syms == nil {
		return fmt.Sprintf("#%d", t.Const)
	}
	return quoteIfNeeded(syms.Name(t.Const))
}

func quoteIfNeeded(s string) string {
	for _, r := range s {
		if r == ' ' || r == ',' || r == '(' || r == ')' {
			return `"` + s + `"`
		}
	}
	return s
}

// Clause is a weighted first-order clause: a disjunction of literals, all
// variables universally quantified except those listed in Exist, which are
// existentially quantified (and must occur only in positive literals, like
// rule F4 of the paper). Weight is +Inf for hard rules; negative weights
// mean the clause is "violated" when satisfied (Section 2.2).
type Clause struct {
	ID     int
	Weight float64
	Lits   []Literal
	Exist  []string
	Source string // original rule text, for diagnostics
}

// IsHard reports whether the clause is a hard constraint (infinite weight).
func (c *Clause) IsHard() bool { return math.IsInf(c.Weight, 0) }

// Vars returns the distinct universally quantified variables, in first-use
// order. Existential variables are excluded.
func (c *Clause) Vars() []string {
	ex := make(map[string]bool, len(c.Exist))
	for _, v := range c.Exist {
		ex[v] = true
	}
	seen := make(map[string]bool)
	var out []string
	for _, l := range c.Lits {
		for _, a := range l.Args {
			if a.IsVar && !seen[a.Var] && !ex[a.Var] {
				seen[a.Var] = true
				out = append(out, a.Var)
			}
		}
	}
	return out
}

// HasExist reports whether the clause has existential quantifiers.
func (c *Clause) HasExist() bool { return len(c.Exist) > 0 }

// Format renders the clause, weight first, as in the paper's Figure 1.
func (c *Clause) Format(syms *Symbols) string {
	var b strings.Builder
	switch {
	case math.IsInf(c.Weight, 1):
		b.WriteString("inf ")
	case math.IsInf(c.Weight, -1):
		b.WriteString("-inf ")
	default:
		fmt.Fprintf(&b, "%g ", c.Weight)
	}
	if len(c.Exist) > 0 {
		fmt.Fprintf(&b, "EXIST %s ", strings.Join(c.Exist, ","))
	}
	for i, l := range c.Lits {
		if i > 0 {
			b.WriteString(" v ")
		}
		b.WriteString(l.Format(syms))
	}
	return b.String()
}

// Program is a full MLN: schema, weighted clauses, typed domains and the
// shared symbol table. Programs are built by the parser or programmatically
// via the builder methods.
type Program struct {
	Syms    *Symbols
	Preds   []*Predicate
	Clauses []*Clause
	Domains map[string]*Domain

	predByName map[string]*Predicate
}

// NewProgram returns an empty program with a fresh symbol table.
func NewProgram() *Program {
	return &Program{
		Syms:       NewSymbols(),
		Domains:    make(map[string]*Domain),
		predByName: make(map[string]*Predicate),
	}
}

// DeclarePredicate adds a predicate to the schema. Argument type domains are
// created on first use. It returns an error if the name is already taken.
func (p *Program) DeclarePredicate(name string, argTypes []string, closed bool) (*Predicate, error) {
	if _, dup := p.predByName[name]; dup {
		return nil, fmt.Errorf("mln: predicate %q declared twice", name)
	}
	pred := &Predicate{ID: len(p.Preds), Name: name, Args: append([]string(nil), argTypes...), Closed: closed}
	p.Preds = append(p.Preds, pred)
	p.predByName[name] = pred
	for _, t := range argTypes {
		if p.Domains[t] == nil {
			p.Domains[t] = NewDomain(t)
		}
	}
	return pred, nil
}

// Predicate looks a predicate up by name.
func (p *Program) Predicate(name string) (*Predicate, bool) {
	pred, ok := p.predByName[name]
	return pred, ok
}

// MustPredicate is Predicate but panics on unknown names; for tests and
// generators where the schema is static.
func (p *Program) MustPredicate(name string) *Predicate {
	pred, ok := p.predByName[name]
	if !ok {
		panic(fmt.Sprintf("mln: unknown predicate %q", name))
	}
	return pred
}

// AddClause validates and appends a clause, assigning its ID. Validation
// checks: arity, existential vars appear only in positive non-builtin
// literals, and every existential var is used.
func (p *Program) AddClause(c *Clause) error {
	for _, l := range c.Lits {
		if l.IsBuiltinEq() {
			if len(l.Args) != 2 {
				return fmt.Errorf("mln: builtin equality needs 2 terms, got %d", len(l.Args))
			}
			continue
		}
		if len(l.Args) != l.Pred.Arity() {
			return fmt.Errorf("mln: %s used with %d args, declared %d", l.Pred.Name, len(l.Args), l.Pred.Arity())
		}
	}
	if len(c.Exist) > 0 {
		used := make(map[string]bool)
		for _, l := range c.Lits {
			for _, a := range l.Args {
				if !a.IsVar {
					continue
				}
				for _, ev := range c.Exist {
					if a.Var == ev {
						if l.IsBuiltinEq() {
							return fmt.Errorf("mln: existential var %s in builtin equality", ev)
						}
						if l.Negated {
							return fmt.Errorf("mln: existential var %s in negated literal (unsupported)", ev)
						}
						used[ev] = true
					}
				}
			}
		}
		for _, ev := range c.Exist {
			if !used[ev] {
				return fmt.Errorf("mln: existential var %s unused", ev)
			}
		}
	}
	c.ID = len(p.Clauses)
	p.Clauses = append(p.Clauses, c)
	return nil
}

// Constant interns a constant name and records it in the domain of the given
// type (creating the domain if needed).
func (p *Program) Constant(typeName, name string) int32 {
	id := p.Syms.Intern(name)
	d := p.Domains[typeName]
	if d == nil {
		d = NewDomain(typeName)
		p.Domains[typeName] = d
	}
	d.Add(id)
	return id
}

// Domain returns the domain for a type name, creating it if absent.
func (p *Program) Domain(typeName string) *Domain {
	d := p.Domains[typeName]
	if d == nil {
		d = NewDomain(typeName)
		p.Domains[typeName] = d
	}
	return d
}

// Validate performs whole-program checks: every clause references declared
// predicates and every domain referenced by a clause variable position is
// non-empty once evidence is loaded. It is advisory: grounding re-checks.
func (p *Program) Validate() error {
	for _, c := range p.Clauses {
		if len(c.Lits) == 0 {
			return fmt.Errorf("mln: clause %d is empty", c.ID)
		}
		if c.Weight == 0 {
			return fmt.Errorf("mln: clause %d has zero weight", c.ID)
		}
		// Variables must have a consistent type across uses.
		types := make(map[string]string)
		for _, l := range c.Lits {
			if l.IsBuiltinEq() {
				continue
			}
			for i, a := range l.Args {
				if !a.IsVar {
					continue
				}
				want := l.Pred.Args[i]
				if got, ok := types[a.Var]; ok && got != want {
					return fmt.Errorf("mln: clause %d: variable %s used as both %s and %s", c.ID, a.Var, got, want)
				}
				types[a.Var] = want
			}
		}
		// Builtin equality vars must be bound by some predicate literal.
		for _, l := range c.Lits {
			if !l.IsBuiltinEq() {
				continue
			}
			for _, a := range l.Args {
				if a.IsVar {
					if _, ok := types[a.Var]; !ok {
						return fmt.Errorf("mln: clause %d: equality var %s unbound", c.ID, a.Var)
					}
				}
			}
		}
	}
	return nil
}

// VarTypes returns, for each universally or existentially quantified variable
// of c, the domain type it ranges over (taken from the first predicate
// position that binds it).
func (p *Program) VarTypes(c *Clause) map[string]string {
	types := make(map[string]string)
	for _, l := range c.Lits {
		if l.IsBuiltinEq() {
			continue
		}
		for i, a := range l.Args {
			if a.IsVar {
				if _, ok := types[a.Var]; !ok {
					types[a.Var] = l.Pred.Args[i]
				}
			}
		}
	}
	return types
}
