package mln

import (
	"errors"
	"reflect"
	"testing"
)

func deltaFixture(t *testing.T) (*Program, *Predicate, *Evidence) {
	t.Helper()
	prog := NewProgram()
	wrote, err := prog.DeclarePredicate("wrote", []string{"person", "paper"}, true)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvidence(prog)
	for _, pair := range [][2]string{{"Joe", "P1"}, {"Ann", "P1"}, {"Joe", "P2"}} {
		if err := ev.AssertNames("wrote", []string{pair[0], pair[1]}, false); err != nil {
			t.Fatal(err)
		}
	}
	return prog, wrote, ev
}

func forEachTuples(ev *Evidence, pred *Predicate) [][]int32 {
	var out [][]int32
	ev.ForEach(pred, func(args []int32, _ Truth) {
		out = append(out, append([]int32(nil), args...))
	})
	return out
}

func TestEvidenceRemove(t *testing.T) {
	prog, wrote, ev := deltaFixture(t)
	joe, _ := prog.Syms.Lookup("Joe")
	p2, _ := prog.Syms.Lookup("P2")

	before := forEachTuples(ev, wrote)
	if !ev.Remove(wrote, []int32{joe, p2}) {
		t.Fatal("Remove of present tuple returned false")
	}
	if ev.Remove(wrote, []int32{joe, p2}) {
		t.Fatal("Remove of absent tuple returned true")
	}
	if ev.Count(wrote) != 2 || ev.Total() != 2 {
		t.Fatalf("counts after remove: %d/%d, want 2/2", ev.Count(wrote), ev.Total())
	}
	if ev.TruthOf(wrote, []int32{joe, p2}) != False {
		t.Fatal("removed closed-world tuple should be false")
	}

	// ForEach order of the survivors must be the order they had before the
	// deletion (with the deleted tuple cut out).
	var want [][]int32
	for _, args := range before {
		if args[0] == joe && args[1] == p2 {
			continue
		}
		want = append(want, args)
	}
	if got := forEachTuples(ev, wrote); !reflect.DeepEqual(got, want) {
		t.Fatalf("ForEach order changed after deletion:\n got %v\nwant %v", got, want)
	}
}

func TestEvidenceUpsert(t *testing.T) {
	prog, wrote, ev := deltaFixture(t)
	joe, _ := prog.Syms.Lookup("Joe")
	p1, _ := prog.Syms.Lookup("P1")
	p2, _ := prog.Syms.Lookup("P2")

	prev, existed := ev.Upsert(wrote, []int32{joe, p1}, False)
	if !existed || prev != True {
		t.Fatalf("Upsert flip: prev=%v existed=%v, want True/true", prev, existed)
	}
	if ev.TruthOf(wrote, []int32{joe, p1}) != False || ev.Total() != 3 {
		t.Fatal("flip should not change cardinality")
	}

	prev, existed = ev.Upsert(wrote, []int32{joe, p2}, Unknown)
	if !existed || prev != True {
		t.Fatalf("Upsert retract: prev=%v existed=%v", prev, existed)
	}
	if _, ok := ev.Get(wrote, []int32{joe, p2}); ok || ev.Total() != 2 {
		t.Fatal("Upsert(Unknown) should retract the tuple")
	}

	if _, existed = ev.Upsert(wrote, []int32{joe, p2}, True); existed {
		t.Fatal("re-insert reported existed")
	}
	if ev.Total() != 3 {
		t.Fatalf("Total after re-insert = %d, want 3", ev.Total())
	}
	// Upsert must not grow domains.
	if got := prog.Domain("person").Size(); got != 2 {
		t.Fatalf("person domain grew to %d", got)
	}
}

func TestDeltaApplyAndInverse(t *testing.T) {
	prog, wrote, ev := deltaFixture(t)
	joe, _ := prog.Syms.Lookup("Joe")
	ann, _ := prog.Syms.Lookup("Ann")
	p1, _ := prog.Syms.Lookup("P1")
	p2, _ := prog.Syms.Lookup("P2")

	ref := ev.Clone()

	var d Delta
	d.Remove(wrote, []int32{joe, p1})
	d.Upsert(wrote, []int32{ann, p2}, True)
	d.Upsert(wrote, []int32{ann, p1}, False)
	// Two ops on the same tuple: the later one must win, and the inverse
	// must still restore the original state.
	d.Upsert(wrote, []int32{ann, p2}, False)

	inv, err := ev.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TruthOf(wrote, []int32{joe, p1}) != False { // closed-world after retract
		t.Fatal("Remove op not applied")
	}
	if got, _ := ev.Get(wrote, []int32{ann, p2}); got != False {
		t.Fatalf("later op on same tuple should win, got %v", got)
	}

	if _, err := ev.Apply(inv); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forEachTuples(ev, wrote), forEachTuples(ref, wrote)) {
		t.Fatal("inverse delta did not restore original evidence")
	}
	if ev.Total() != ref.Total() || ev.Count(wrote) != ref.Count(wrote) {
		t.Fatal("inverse delta did not restore counts")
	}
	got := map[string]Truth{}
	ev.ForEach(wrote, func(args []int32, tr Truth) { got[argKey(args)] = tr })
	ref.ForEach(wrote, func(args []int32, tr Truth) {
		if got[argKey(args)] != tr {
			t.Fatalf("truth mismatch after inverse at %v", args)
		}
	})
}

func TestDeltaApplyRejectsUnknownConstant(t *testing.T) {
	prog, wrote, ev := deltaFixture(t)
	joe, _ := prog.Syms.Lookup("Joe")
	stranger := prog.Syms.Intern("Zoe") // interned but in no domain

	var d Delta
	d.Upsert(wrote, []int32{joe, stranger}, True)
	if _, err := ev.Apply(d); !errors.Is(err, ErrConstantNotInDomain) {
		t.Fatalf("err = %v, want ErrConstantNotInDomain", err)
	}
	if ev.Total() != 3 {
		t.Fatal("failed Apply mutated evidence")
	}

	var bad Delta
	bad.Ops = append(bad.Ops, DeltaOp{Pred: wrote, Args: []int32{joe}, Truth: True})
	if _, err := ev.Apply(bad); err == nil {
		t.Fatal("arity mismatch not rejected")
	}
}

func TestDeltaPreds(t *testing.T) {
	_, wrote, ev := deltaFixture(t)
	var d Delta
	d.Remove(wrote, []int32{0, 0})
	d.Upsert(wrote, []int32{1, 1}, True)
	preds := d.Preds()
	if len(preds) != 1 || !preds[wrote] {
		t.Fatalf("Preds = %v", preds)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	_ = ev
}
