package mln

import (
	"math"
	"strings"
	"testing"
)

func TestParseFigure1Program(t *testing.T) {
	prog, err := ParseProgramString(Figure1Program)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Preds) != 4 {
		t.Fatalf("got %d predicates, want 4", len(prog.Preds))
	}
	refers := prog.MustPredicate("refers")
	if !refers.Closed {
		t.Fatal("refers should be closed-world")
	}
	if prog.MustPredicate("cat").Closed {
		t.Fatal("cat should be open")
	}
	if len(prog.Clauses) != 5 {
		t.Fatalf("got %d clauses, want 5", len(prog.Clauses))
	}
	// F1: 5 cat(p,c1), cat(p,c2) => c1 = c2
	f1 := prog.Clauses[0]
	if f1.Weight != 5 {
		t.Fatalf("F1 weight = %v", f1.Weight)
	}
	if len(f1.Lits) != 3 {
		t.Fatalf("F1 has %d literals, want 3", len(f1.Lits))
	}
	if !f1.Lits[0].Negated || !f1.Lits[1].Negated {
		t.Fatal("F1 body literals should be negated in clausal form")
	}
	if !f1.Lits[2].IsBuiltinEq() || f1.Lits[2].Negated {
		t.Fatal("F1 head should be positive builtin equality")
	}
	// F4: hard rule with existential.
	f4 := prog.Clauses[3]
	if !f4.IsHard() {
		t.Fatalf("F4 weight = %v, want +inf", f4.Weight)
	}
	if len(f4.Exist) != 1 || f4.Exist[0] != "x" {
		t.Fatalf("F4 Exist = %v", f4.Exist)
	}
	// F5: negative weight single positive literal.
	f5 := prog.Clauses[4]
	if f5.Weight != -1 {
		t.Fatalf("F5 weight = %v", f5.Weight)
	}
	if len(f5.Lits) != 1 || f5.Lits[0].Negated {
		t.Fatal("F5 should be a single positive literal")
	}
	if f5.Lits[0].Args[1].IsVar {
		t.Fatal("F5 second arg should be the constant Networking")
	}
	if prog.Syms.Name(f5.Lits[0].Args[1].Const) != "Networking" {
		t.Fatalf("F5 constant = %q", prog.Syms.Name(f5.Lits[0].Args[1].Const))
	}
}

func TestParseFigure1Evidence(t *testing.T) {
	prog, err := ParseProgramString(Figure1Program)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ParseEvidenceString(prog, Figure1Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total() != 8 {
		t.Fatalf("Total = %d, want 8", ev.Total())
	}
	wrote := prog.MustPredicate("wrote")
	joe, _ := prog.Syms.Lookup("Joe")
	p1, _ := prog.Syms.Lookup("P1")
	if got := ev.TruthOf(wrote, []int32{joe, p1}); got != True {
		t.Fatalf("wrote(Joe,P1) = %v", got)
	}
	// Domains populated from evidence.
	if prog.Domain("paperid").Size() < 3 {
		t.Fatalf("paperid domain size = %d, want >= 3", prog.Domain("paperid").Size())
	}
	if prog.Domain("author").Size() != 2 {
		t.Fatalf("author domain size = %d, want 2", prog.Domain("author").Size())
	}
}

func TestParseDomainDecl(t *testing.T) {
	prog, err := ParseProgramString(`
category = {DB, AI, Networking}
cat(paper, category)
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Domain("category").Size() != 3 {
		t.Fatalf("category size = %d, want 3", prog.Domain("category").Size())
	}
}

func TestParseDisjunction(t *testing.T) {
	prog, err := ParseProgramString(`
p(t)
q(t)
1.5 !p(x) v q(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Clauses[0]
	if c.Weight != 1.5 {
		t.Fatalf("weight = %v", c.Weight)
	}
	if len(c.Lits) != 2 || !c.Lits[0].Negated || c.Lits[1].Negated {
		t.Fatalf("clause parsed wrong: %s", c.Format(prog.Syms))
	}
}

func TestParseHardRuleTrailingPeriod(t *testing.T) {
	prog, err := ParseProgramString(`
p(t)
q(t)
p(x) => q(x).
`)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Clauses[0].IsHard() {
		t.Fatal("trailing-period rule should be hard")
	}
}

func TestParseWeightlessRuleRejected(t *testing.T) {
	_, err := ParseProgramString(`
p(t)
q(t)
p(x) => q(x)
`)
	if err == nil {
		t.Fatal("weightless soft rule should be rejected")
	}
}

func TestParseInfWeights(t *testing.T) {
	prog, err := ParseProgramString(`
p(t)
inf p(x)
-inf p(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(prog.Clauses[0].Weight, 1) {
		t.Fatalf("weight = %v", prog.Clauses[0].Weight)
	}
	if !math.IsInf(prog.Clauses[1].Weight, -1) {
		t.Fatalf("weight = %v", prog.Clauses[1].Weight)
	}
}

func TestParseNegativeAndFloatWeights(t *testing.T) {
	prog, err := ParseProgramString(`
p(t)
-2.25 p(x)
1e-3 p(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Clauses[0].Weight != -2.25 {
		t.Fatalf("weight = %v", prog.Clauses[0].Weight)
	}
	if prog.Clauses[1].Weight != 1e-3 {
		t.Fatalf("weight = %v", prog.Clauses[1].Weight)
	}
}

func TestParseQuotedConstants(t *testing.T) {
	prog, err := ParseProgramString(`
cat(paper, category)
-1 cat(p, "Networking Systems")
`)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Clauses[0]
	if prog.Syms.Name(c.Lits[0].Args[1].Const) != "Networking Systems" {
		t.Fatalf("quoted constant = %q", prog.Syms.Name(c.Lits[0].Args[1].Const))
	}
}

func TestParseInequalityLiteral(t *testing.T) {
	prog, err := ParseProgramString(`
p(t)
2 p(x), p(y) => x != y
`)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Clauses[0]
	eq := c.Lits[2]
	if !eq.IsBuiltinEq() || !eq.Negated {
		t.Fatalf("x != y should parse as negated equality, got %s", c.Format(prog.Syms))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"p(t)\n1 q(x)",            // undeclared predicate in rule
		"p(t)\np(t)",              // duplicate declaration
		"p(t)\n1 p(x, y)",         // arity mismatch via validate? (arity checked in AddClause)
		"p(t)\n1 p(x",             // unbalanced paren
		`p(t)` + "\n" + `1 p("x`,  // unterminated string
		"p(t)\nbogus q(x)",        // bad weight token leads to undeclared pred error
		"p(t)\n1 p(x) v",          // dangling operator
		"p(t)\n1 p(x) extra(y)",   // trailing garbage
		"p(t)\n1 p(x) => EXIST q", // existential with no head literal
	}
	for _, src := range cases {
		if _, err := ParseProgramString(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseEvidenceErrors(t *testing.T) {
	prog, _ := ParseProgramString("p(t)\nq(t, t)")
	cases := []string{
		"r(A)",    // undeclared
		"p(A, B)", // arity
		"p(",      // syntax
		"!q(A)",   // arity
	}
	for _, src := range cases {
		if _, err := ParseEvidenceString(prog, src); err == nil {
			t.Errorf("no error for evidence %q", src)
		}
	}
}

func TestParseQueryFile(t *testing.T) {
	prog, _ := ParseProgramString(Figure1Program)
	q, err := ParseQuery(prog, strings.NewReader("cat(p, c)\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !q.Contains(prog.MustPredicate("cat")) {
		t.Fatal("cat not marked as query")
	}
	if _, err := ParseQuery(prog, strings.NewReader("nope(x)\n")); err == nil {
		t.Fatal("undeclared query predicate accepted")
	}
}

func TestClauseFormatRoundTrip(t *testing.T) {
	prog, err := ParseProgramString(Figure1Program)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range prog.Clauses {
		s := c.Format(prog.Syms)
		if s == "" {
			t.Fatalf("empty format for clause %d", c.ID)
		}
		if c.HasExist() && !strings.Contains(s, "EXIST") {
			t.Fatalf("existential clause formatted without EXIST: %s", s)
		}
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	prog, err := ParseProgramString(`
// leading comment

p(t)   // trailing comment
1 p(x) // rule comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Clauses) != 1 {
		t.Fatalf("clauses = %d, want 1", len(prog.Clauses))
	}
}

func TestParseConjunctionOnlyRule(t *testing.T) {
	// A comma in a non-implication rule is a conjunction, which in clausal
	// form is invalid (we require disjunctions); the parser treats commas
	// uniformly as separators, so "1 p(x), q(x)" is the clause p(x) v q(x).
	// This matches Alchemy's CNF-input convention where "," only appears in
	// implication bodies; we document the behaviour here.
	prog, err := ParseProgramString(`
p(t)
q(t)
1 p(x), q(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Clauses[0].Lits) != 2 {
		t.Fatalf("lits = %d", len(prog.Clauses[0].Lits))
	}
}
