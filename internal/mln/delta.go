package mln

import (
	"errors"
	"fmt"
)

// ErrConstantNotInDomain is returned (wrapped) by Evidence.Apply when a delta
// tuple mentions a constant that is not already a member of the domain of the
// corresponding argument type. Deltas may flip or retract truth values over
// the existing grounding universe, but growing a typed domain changes the set
// of candidate ground atoms for every open predicate sharing the type — that
// requires a full Ground, not an incremental update.
var ErrConstantNotInDomain = errors.New("mln: delta constant not in domain")

// DeltaOp is one evidence mutation: set the truth of a ground atom (True or
// False), or retract it entirely (Truth == Unknown). Retracting a tuple of a
// closed predicate makes the atom false under the closed-world assumption;
// retracting from an open predicate returns the atom to query status.
type DeltaOp struct {
	Pred  *Predicate
	Args  []int32
	Truth Truth
}

// Delta is an ordered batch of evidence mutations, the unit of work for
// Engine.UpdateEvidence. Ops apply in order; a later op on the same tuple
// wins.
type Delta struct {
	Ops []DeltaOp
}

// Upsert appends an op setting the truth of pred(args...).
func (d *Delta) Upsert(pred *Predicate, args []int32, t Truth) {
	d.Ops = append(d.Ops, DeltaOp{Pred: pred, Args: append([]int32(nil), args...), Truth: t})
}

// Remove appends an op retracting pred(args...) from the evidence.
func (d *Delta) Remove(pred *Predicate, args []int32) {
	d.Ops = append(d.Ops, DeltaOp{Pred: pred, Args: append([]int32(nil), args...), Truth: Unknown})
}

// Len returns the number of ops in the delta.
func (d *Delta) Len() int { return len(d.Ops) }

// Preds returns the set of predicates the delta touches.
func (d *Delta) Preds() map[*Predicate]bool {
	out := make(map[*Predicate]bool)
	for _, op := range d.Ops {
		out[op.Pred] = true
	}
	return out
}

// Get returns the truth recorded for pred(args...) in the evidence table
// itself, without the closed-world default (TruthOf applies it). ok is false
// when the tuple is absent.
func (e *Evidence) Get(pred *Predicate, args []int32) (Truth, bool) {
	t, ok := e.tables[pred]
	if !ok {
		return Unknown, false
	}
	v, ok := t[argKey(args)]
	return v, ok
}

// Remove retracts pred(args...) from the evidence, reporting whether the
// tuple was present. The deterministic ForEach order of the remaining tuples
// is unchanged: ForEach sorts the packed keys on every call, so deletions
// leave the relative order of survivors intact.
func (e *Evidence) Remove(pred *Predicate, args []int32) bool {
	t, ok := e.tables[pred]
	if !ok {
		return false
	}
	k := argKey(args)
	if _, ok := t[k]; !ok {
		return false
	}
	delete(t, k)
	e.counts[pred]--
	e.total--
	return true
}

// Upsert sets the truth of pred(args...) to t, creating the tuple if absent
// and retracting it when t is Unknown. Unlike Assert it does not grow the
// typed domains — callers mutating a live Engine must stay inside the
// existing grounding universe (see ErrConstantNotInDomain). It returns the
// previous recorded truth (Unknown, false when the tuple was absent).
func (e *Evidence) Upsert(pred *Predicate, args []int32, t Truth) (prev Truth, existed bool) {
	prev, existed = e.Get(pred, args)
	if t == Unknown {
		e.Remove(pred, args)
		return prev, existed
	}
	tbl := e.tables[pred]
	if tbl == nil {
		tbl = make(map[string]Truth)
		e.tables[pred] = tbl
	}
	k := argKey(args)
	if !existed {
		e.counts[pred]++
		e.total++
	}
	tbl[k] = t
	return prev, existed
}

// Apply validates and applies a delta, returning the inverse delta that
// restores the prior state when re-applied. Validation happens before any
// mutation: every op must match its predicate's arity and mention only
// constants already in the corresponding typed domains, otherwise the
// evidence is left untouched and the error wraps ErrConstantNotInDomain.
func (e *Evidence) Apply(d Delta) (inverse Delta, err error) {
	for _, op := range d.Ops {
		if op.Pred == nil {
			return Delta{}, fmt.Errorf("mln: delta op with nil predicate")
		}
		if len(op.Args) != op.Pred.Arity() {
			return Delta{}, fmt.Errorf("mln: delta op for %s has %d args, want %d",
				op.Pred.Name, len(op.Args), op.Pred.Arity())
		}
		for i, c := range op.Args {
			dom := e.prog.Domains[op.Pred.Args[i]]
			if dom == nil || !dom.Contains(c) {
				return Delta{}, fmt.Errorf("%w: %s arg %d (%s)",
					ErrConstantNotInDomain, op.Pred.Name, i, e.prog.Syms.Name(c))
			}
		}
	}
	for _, op := range d.Ops {
		prev, existed := e.Upsert(op.Pred, op.Args, op.Truth)
		if !existed {
			prev = Unknown
		}
		inverse.Ops = append(inverse.Ops, DeltaOp{Pred: op.Pred, Args: append([]int32(nil), op.Args...), Truth: prev})
	}
	// The inverse must undo ops in reverse order so that multiple ops on the
	// same tuple unwind correctly.
	for i, j := 0, len(inverse.Ops)-1; i < j; i, j = i+1, j-1 {
		inverse.Ops[i], inverse.Ops[j] = inverse.Ops[j], inverse.Ops[i]
	}
	return inverse, nil
}

// Clone returns a deep copy of the evidence tables (sharing the program).
// Used to build the "merged evidence" reference that incremental updates are
// checked against.
func (e *Evidence) Clone() *Evidence {
	out := NewEvidence(e.prog)
	for pred, t := range e.tables {
		nt := make(map[string]Truth, len(t))
		for k, v := range t {
			nt[k] = v
		}
		out.tables[pred] = nt
		out.counts[pred] = e.counts[pred]
	}
	out.total = e.total
	return out
}
