package mln

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSymbolsInternStable(t *testing.T) {
	s := NewSymbols()
	a := s.Intern("alpha")
	b := s.Intern("beta")
	if a == b {
		t.Fatalf("distinct names got same id %d", a)
	}
	if got := s.Intern("alpha"); got != a {
		t.Fatalf("re-intern of alpha = %d, want %d", got, a)
	}
	if s.Name(a) != "alpha" || s.Name(b) != "beta" {
		t.Fatalf("name round trip failed: %q %q", s.Name(a), s.Name(b))
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestSymbolsInternProperty(t *testing.T) {
	s := NewSymbols()
	f := func(name string) bool {
		id := s.Intern(name)
		id2 := s.Intern(name)
		return id == id2 && s.Name(id) == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolsLookupMissing(t *testing.T) {
	s := NewSymbols()
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("Lookup of missing symbol returned ok")
	}
	if got := s.Name(99); got != "?sym99" {
		t.Fatalf("Name of bogus id = %q", got)
	}
}

func TestDomainAddDedup(t *testing.T) {
	d := NewDomain("paper")
	d.Add(3)
	d.Add(1)
	d.Add(3)
	if d.Size() != 2 {
		t.Fatalf("Size = %d, want 2", d.Size())
	}
	if !d.Contains(1) || !d.Contains(3) || d.Contains(2) {
		t.Fatal("Contains wrong")
	}
	sorted := d.Sorted()
	if sorted[0] != 1 || sorted[1] != 3 {
		t.Fatalf("Sorted = %v", sorted)
	}
}

func TestDeclarePredicate(t *testing.T) {
	p := NewProgram()
	pred, err := p.DeclarePredicate("wrote", []string{"person", "paper"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Arity() != 2 {
		t.Fatalf("arity = %d", pred.Arity())
	}
	if _, err := p.DeclarePredicate("wrote", []string{"a"}, false); err == nil {
		t.Fatal("duplicate declaration not rejected")
	}
	if _, ok := p.Predicate("wrote"); !ok {
		t.Fatal("lookup failed")
	}
	if p.Domains["person"] == nil || p.Domains["paper"] == nil {
		t.Fatal("argument domains not created")
	}
}

func TestAddClauseArityCheck(t *testing.T) {
	p := NewProgram()
	pred, _ := p.DeclarePredicate("q", []string{"t"}, false)
	err := p.AddClause(&Clause{Weight: 1, Lits: []Literal{{Pred: pred, Args: []Term{V("x"), V("y")}}}})
	if err == nil {
		t.Fatal("arity mismatch not rejected")
	}
}

func TestAddClauseExistChecks(t *testing.T) {
	p := NewProgram()
	wrote, _ := p.DeclarePredicate("wrote", []string{"person", "paper"}, false)
	ok := &Clause{Weight: 1, Exist: []string{"x"},
		Lits: []Literal{{Pred: wrote, Args: []Term{V("x"), V("p")}}}}
	if err := p.AddClause(ok); err != nil {
		t.Fatalf("valid existential rejected: %v", err)
	}
	negated := &Clause{Weight: 1, Exist: []string{"x"},
		Lits: []Literal{{Pred: wrote, Negated: true, Args: []Term{V("x"), V("p")}}}}
	if err := p.AddClause(negated); err == nil {
		t.Fatal("existential in negated literal not rejected")
	}
	unused := &Clause{Weight: 1, Exist: []string{"z"},
		Lits: []Literal{{Pred: wrote, Args: []Term{V("x"), V("p")}}}}
	if err := p.AddClause(unused); err == nil {
		t.Fatal("unused existential var not rejected")
	}
}

func TestClauseVarsExcludesExist(t *testing.T) {
	p := NewProgram()
	wrote, _ := p.DeclarePredicate("wrote", []string{"person", "paper"}, false)
	paper, _ := p.DeclarePredicate("paper", []string{"paper", "url"}, false)
	c := &Clause{Weight: 1, Exist: []string{"x"}, Lits: []Literal{
		{Pred: paper, Negated: true, Args: []Term{V("p"), V("u")}},
		{Pred: wrote, Args: []Term{V("x"), V("p")}},
	}}
	vars := c.Vars()
	if len(vars) != 2 || vars[0] != "p" || vars[1] != "u" {
		t.Fatalf("Vars = %v, want [p u]", vars)
	}
}

func TestClauseIsHard(t *testing.T) {
	if (&Clause{Weight: 5}).IsHard() {
		t.Fatal("soft clause reported hard")
	}
	if !(&Clause{Weight: math.Inf(1)}).IsHard() {
		t.Fatal("+inf not hard")
	}
	if !(&Clause{Weight: math.Inf(-1)}).IsHard() {
		t.Fatal("-inf not hard")
	}
}

func TestVarTypes(t *testing.T) {
	p := NewProgram()
	cat, _ := p.DeclarePredicate("cat", []string{"paper", "category"}, false)
	c := &Clause{Weight: 5, Lits: []Literal{
		{Pred: cat, Negated: true, Args: []Term{V("p"), V("c1")}},
		{Pred: cat, Negated: true, Args: []Term{V("p"), V("c2")}},
		{Args: []Term{V("c1"), V("c2")}}, // builtin eq
	}}
	types := p.VarTypes(c)
	if types["p"] != "paper" || types["c1"] != "category" || types["c2"] != "category" {
		t.Fatalf("VarTypes = %v", types)
	}
}

func TestValidateCatchesInconsistentTypes(t *testing.T) {
	p := NewProgram()
	a, _ := p.DeclarePredicate("a", []string{"t1"}, false)
	b, _ := p.DeclarePredicate("b", []string{"t2"}, false)
	c := &Clause{Weight: 1, Lits: []Literal{
		{Pred: a, Args: []Term{V("x")}},
		{Pred: b, Args: []Term{V("x")}},
	}}
	if err := p.AddClause(c); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil {
		t.Fatal("inconsistent variable types not caught")
	}
}

func TestValidateCatchesUnboundEqVar(t *testing.T) {
	p := NewProgram()
	a, _ := p.DeclarePredicate("a", []string{"t1"}, false)
	c := &Clause{Weight: 1, Lits: []Literal{
		{Pred: a, Args: []Term{V("x")}},
		{Args: []Term{V("x"), V("zzz")}},
	}}
	if err := p.AddClause(c); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil {
		t.Fatal("unbound equality var not caught")
	}
}

func TestEvidenceTruthAndCWA(t *testing.T) {
	p := NewProgram()
	refers, _ := p.DeclarePredicate("refers", []string{"paper", "paper"}, true) // closed
	cat, _ := p.DeclarePredicate("cat", []string{"paper", "category"}, false)   // open
	ev := NewEvidence(p)
	p1 := p.Constant("paper", "P1")
	p2 := p.Constant("paper", "P2")
	db := p.Constant("category", "DB")
	if err := ev.Assert(refers, []int32{p1, p2}, false); err != nil {
		t.Fatal(err)
	}
	if err := ev.Assert(cat, []int32{p2, db}, false); err != nil {
		t.Fatal(err)
	}
	if got := ev.TruthOf(refers, []int32{p1, p2}); got != True {
		t.Fatalf("refers(P1,P2) = %v, want true", got)
	}
	if got := ev.TruthOf(refers, []int32{p2, p1}); got != False {
		t.Fatalf("closed-world refers(P2,P1) = %v, want false", got)
	}
	if got := ev.TruthOf(cat, []int32{p1, db}); got != Unknown {
		t.Fatalf("open cat(P1,DB) = %v, want unknown", got)
	}
	if got := ev.TruthOf(cat, []int32{p2, db}); got != True {
		t.Fatalf("cat(P2,DB) = %v, want true", got)
	}
}

func TestEvidenceNegativeAssert(t *testing.T) {
	p := NewProgram()
	cat, _ := p.DeclarePredicate("cat", []string{"paper", "category"}, false)
	ev := NewEvidence(p)
	p1 := p.Constant("paper", "P1")
	ai := p.Constant("category", "AI")
	if err := ev.Assert(cat, []int32{p1, ai}, true); err != nil {
		t.Fatal(err)
	}
	if got := ev.TruthOf(cat, []int32{p1, ai}); got != False {
		t.Fatalf("negated evidence = %v, want false", got)
	}
}

func TestEvidenceForEachRoundTrip(t *testing.T) {
	p := NewProgram()
	wrote, _ := p.DeclarePredicate("wrote", []string{"person", "paper"}, true)
	ev := NewEvidence(p)
	want := map[[2]int32]bool{}
	for i := int32(0); i < 50; i++ {
		a := p.Constant("person", "A")
		b := p.Syms.Intern("B" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		p.Domain("paper").Add(b)
		if err := ev.Assert(wrote, []int32{a, b}, false); err != nil {
			t.Fatal(err)
		}
		want[[2]int32{a, b}] = true
	}
	got := map[[2]int32]bool{}
	ev.ForEach(wrote, func(args []int32, tr Truth) {
		if tr != True {
			t.Fatalf("truth = %v", tr)
		}
		got[[2]int32{args[0], args[1]}] = true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach returned %d tuples, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing tuple %v", k)
		}
	}
}

func TestEvidenceArgKeyRoundTripProperty(t *testing.T) {
	f := func(a, b, c int32) bool {
		k := argKey([]int32{a, b, c})
		if len(k) != 12 {
			return false
		}
		// Decode as ForEach does.
		dec := func(off int) int32 {
			return int32(uint32(k[off]) | uint32(k[off+1])<<8 | uint32(k[off+2])<<16 | uint32(k[off+3])<<24)
		}
		return dec(0) == a && dec(4) == b && dec(8) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroundAtomFormat(t *testing.T) {
	p := NewProgram()
	wrote, _ := p.DeclarePredicate("wrote", []string{"person", "paper"}, false)
	joe := p.Constant("person", "Joe")
	p1 := p.Constant("paper", "P1")
	a := GroundAtom{Pred: wrote, Args: []int32{joe, p1}}
	if got := a.Format(p.Syms); got != "wrote(Joe, P1)" {
		t.Fatalf("Format = %q", got)
	}
}

func TestQueryDecl(t *testing.T) {
	p := NewProgram()
	cat, _ := p.DeclarePredicate("cat", []string{"paper", "category"}, false)
	q := NewQueryDecl()
	if !q.Empty() {
		t.Fatal("new QueryDecl not empty")
	}
	q.Add(cat)
	if q.Empty() || !q.Contains(cat) {
		t.Fatal("Add/Contains broken")
	}
}
