package mln

import (
	"encoding/binary"
	"fmt"
)

// EncodeDelta frames one evidence delta as a compact positional record:
// predicates by program index, constants as interned ids, three-valued
// truth — the format the durability WAL logs and the distributed tier
// fans out to workers. It is valid only between readers that share the
// exact program (the fingerprint handshake of both layers enforces that).
// predIdx maps each predicate to its index in the program's Preds slice.
func EncodeDelta(predIdx map[*Predicate]int32, d Delta) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(d.Ops)))
	for _, op := range d.Ops {
		b = binary.LittleEndian.AppendUint32(b, uint32(predIdx[op.Pred]))
		b = append(b, byte(op.Truth))
		for _, a := range op.Args {
			b = binary.LittleEndian.AppendUint32(b, uint32(a))
		}
	}
	return b
}

// PredIndex builds the predicate-to-index map EncodeDelta keys on.
func PredIndex(prog *Program) map[*Predicate]int32 {
	idx := make(map[*Predicate]int32, len(prog.Preds))
	for i, p := range prog.Preds {
		idx[p] = int32(i)
	}
	return idx
}

// DecodeDelta is EncodeDelta's inverse against the serving program.
func DecodeDelta(prog *Program, payload []byte) (Delta, error) {
	var d Delta
	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(payload[off:])
		off += 4
		return v, true
	}
	n32, ok := u32()
	if !ok {
		return d, fmt.Errorf("delta record truncated: short buffer")
	}
	n := int(n32)
	for i := 0; i < n; i++ {
		pi32, ok := u32()
		if !ok {
			return d, fmt.Errorf("delta record truncated: short buffer")
		}
		pi := int(pi32)
		if pi < 0 || pi >= len(prog.Preds) {
			return d, fmt.Errorf("delta op %d references predicate %d of %d", i, pi, len(prog.Preds))
		}
		pred := prog.Preds[pi]
		if off >= len(payload) {
			return d, fmt.Errorf("delta record truncated: short buffer")
		}
		truth := Truth(payload[off])
		off++
		args := make([]int32, pred.Arity())
		for j := range args {
			a, ok := u32()
			if !ok {
				return d, fmt.Errorf("delta record truncated: short buffer")
			}
			args[j] = int32(a)
		}
		d.Ops = append(d.Ops, DeltaOp{Pred: pred, Args: args, Truth: truth})
	}
	if off != len(payload) {
		return d, fmt.Errorf("delta record has %d trailing bytes", len(payload)-off)
	}
	return d, nil
}
