package datagen

import (
	"fmt"
	"math/rand"

	"tuffy/internal/mln"
)

// RandomDelta builds a deterministic evidence delta of n ops against the
// named predicate of ds: a mix of retractions of existing tuples and
// insertions (closed predicates) or truth flips (open predicates) over
// tuples drawn from the predicate's existing typed domains. It never
// introduces new constants, so the delta is always admissible for
// Engine.UpdateEvidence (see mln.ErrConstantNotInDomain).
//
// The result depends only on the dataset's content and the seed. The
// generators intern symbols in a fixed order, so regenerating a dataset with
// the same config yields identical int32 constant ids — a RandomDelta built
// against one instance applies tuple-for-tuple to another.
func RandomDelta(ds *Dataset, predName string, n int, seed int64) mln.Delta {
	rng := rand.New(rand.NewSource(seed))
	pred, ok := ds.Prog.Predicate(predName)
	if !ok {
		panic(fmt.Sprintf("datagen: unknown predicate %q", predName))
	}

	type tuple struct {
		args []int32
	}
	var existing []tuple
	present := make(map[string]bool)
	key := func(args []int32) string {
		b := make([]byte, 0, 4*len(args))
		for _, a := range args {
			b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
		}
		return string(b)
	}
	ds.Ev.ForEach(pred, func(args []int32, _ mln.Truth) {
		cp := append([]int32(nil), args...)
		existing = append(existing, tuple{args: cp})
		present[key(cp)] = true
	})
	doms := make([][]int32, pred.Arity())
	for i, tn := range pred.Args {
		doms[i] = ds.Prog.Domain(tn).Sorted()
	}

	var d mln.Delta
	for len(d.Ops) < n {
		if rng.Intn(2) == 0 && len(existing) > 0 {
			i := rng.Intn(len(existing))
			t := existing[i]
			existing[i] = existing[len(existing)-1]
			existing = existing[:len(existing)-1]
			delete(present, key(t.args))
			d.Remove(pred, t.args)
			continue
		}
		// Fresh tuple from the existing domains; a few retries to avoid
		// colliding with current evidence (collisions would be no-ops for
		// closed predicates).
		var args []int32
		found := false
		for try := 0; try < 32; try++ {
			args = make([]int32, pred.Arity())
			for j, dom := range doms {
				args[j] = dom[rng.Intn(len(dom))]
			}
			if !present[key(args)] {
				found = true
				break
			}
		}
		if !found {
			if len(existing) == 0 {
				break // predicate space saturated and nothing left to remove
			}
			continue
		}
		truth := mln.True
		if !pred.Closed && rng.Intn(2) == 1 {
			truth = mln.False
		}
		present[key(args)] = true
		existing = append(existing, tuple{args: args})
		d.Upsert(pred, args, truth)
	}
	return d
}
