package datagen

import (
	"context"
	"testing"

	"tuffy/internal/db"
	"tuffy/internal/grounding"
)

func ground(t *testing.T, ds *Dataset) *grounding.Result {
	t.Helper()
	d := db.Open(db.Config{})
	ts, err := grounding.BuildTables(d, ds.Prog, ds.Ev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := grounding.GroundBottomUp(context.Background(), ts, grounding.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExample1Shape(t *testing.T) {
	m := Example1(7)
	if m.NumAtoms != 14 || len(m.Clauses) != 21 {
		t.Fatalf("atoms=%d clauses=%d", m.NumAtoms, len(m.Clauses))
	}
	comps := m.Components(false)
	if len(comps) != 7 {
		t.Fatalf("components = %d", len(comps))
	}
	// The optimum of each component is X=Y=true with cost 1.
	s := m.NewState()
	for i := 1; i <= m.NumAtoms; i++ {
		s[i] = true
	}
	if got := m.Cost(s); got != 7 {
		t.Fatalf("all-true cost = %v, want 7", got)
	}
}

func TestExample2SingleComponentWithBridge(t *testing.T) {
	m := Example2(6)
	comps := m.Components(false)
	if len(comps) != 1 {
		t.Fatalf("Example2 should be one weakly connected component, got %d", len(comps))
	}
	if m.NumAtoms != 12 {
		t.Fatalf("atoms = %d", m.NumAtoms)
	}
}

func TestRCShape(t *testing.T) {
	ds := RC(RCConfig{Papers: 200, Authors: 100, Categories: 4, Clusters: 40, Seed: 1})
	st := ds.Table1Stats()
	if st.Relations != 4 {
		t.Fatalf("relations = %d", st.Relations)
	}
	if st.Rules != 5 {
		t.Fatalf("rules = %d", st.Rules)
	}
	if st.EvidenceTuples == 0 {
		t.Fatal("no evidence")
	}
	res := ground(t, ds)
	comps := res.MRF.Components(false)
	// The defining property of RC: many components (paper: 489).
	if len(comps) < 10 {
		t.Fatalf("RC should have many components, got %d", len(comps))
	}
	if res.MRF.NumAtoms == 0 || len(res.MRF.Clauses) == 0 {
		t.Fatal("empty MRF")
	}
}

func TestIEShape(t *testing.T) {
	ds := IE(IEConfig{Chains: 300, Seed: 2})
	res := ground(t, ds)
	comps := res.MRF.Components(false)
	// Thousands of tiny components in the paper; here one per chain (minus
	// chains whose clauses were fully pruned).
	if len(comps) < 150 {
		t.Fatalf("IE should shatter into many small components, got %d", len(comps))
	}
	// Components are tiny cliques.
	for _, c := range comps {
		if c.Size() > 20 {
			t.Fatalf("IE component of size %d; should be tiny", c.Size())
		}
	}
}

func TestLPShape(t *testing.T) {
	ds := LP(LPConfig{Seed: 3})
	res := ground(t, ds)
	comps := res.MRF.Components(false)
	// LP is a single (or near-single) component per the paper's Table 1.
	if len(comps) > 3 {
		t.Fatalf("LP components = %d, want ~1", len(comps))
	}
	big := 0
	for _, c := range comps {
		if c.Size() > big {
			big = c.Size()
		}
	}
	if big < res.MRF.NumAtoms/2 {
		t.Fatalf("LP largest component %d of %d atoms", big, res.MRF.NumAtoms)
	}
}

func TestERShape(t *testing.T) {
	ds := ER(ERConfig{Records: 30, Groups: 8, Seed: 4})
	res := ground(t, ds)
	comps := res.MRF.Components(false)
	if len(comps) != 1 {
		t.Fatalf("ER components = %d, want 1 (dense)", len(comps))
	}
	// Transitivity makes clauses superlinear in atoms.
	if len(res.MRF.Clauses) < res.MRF.NumAtoms {
		t.Fatalf("ER not dense: %d clauses for %d atoms", len(res.MRF.Clauses), res.MRF.NumAtoms)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RC(RCConfig{Papers: 50, Authors: 20, Clusters: 10, Seed: 9})
	b := RC(RCConfig{Papers: 50, Authors: 20, Clusters: 10, Seed: 9})
	if a.Ev.Total() != b.Ev.Total() {
		t.Fatalf("same seed, different evidence: %d vs %d", a.Ev.Total(), b.Ev.Total())
	}
	c := RC(RCConfig{Papers: 50, Authors: 20, Clusters: 10, Seed: 10})
	if a.Ev.Total() == c.Ev.Total() {
		// Counts could coincide; compare grounded clause counts too.
		ra := ground(t, a)
		rc := ground(t, c)
		if ra.Stats.NumClauses == rc.Stats.NumClauses && ra.Stats.NumUsedAtoms == rc.Stats.NumUsedAtoms {
			t.Log("different seeds produced identical shapes (unlikely but possible)")
		}
	}
}

func TestTable1StatsAllDatasets(t *testing.T) {
	for _, ds := range []*Dataset{
		LP(LPConfig{Seed: 1}),
		IE(IEConfig{Chains: 100, Seed: 1}),
		RC(RCConfig{Papers: 100, Clusters: 20, Seed: 1}),
		ER(ERConfig{Records: 20, Seed: 1}),
	} {
		st := ds.Table1Stats()
		if st.Relations == 0 || st.Rules == 0 || st.Entities == 0 || st.EvidenceTuples == 0 {
			t.Fatalf("%s stats incomplete: %+v", ds.Name, st)
		}
		if ds.Query.Empty() {
			t.Fatalf("%s has no query", ds.Name)
		}
	}
}
