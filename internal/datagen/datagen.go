// Package datagen generates the synthetic workloads the benchmark harness
// uses in place of the paper's datasets (LP, IE, RC, ER are not
// redistributable; see docs/BENCHMARKS.md). Each generator matches
// the structural statistics the paper's phenomena depend on: RC is sparse
// with hundreds of connected components, IE is thousands of tiny cliques,
// ER is one dense component with a cubic transitivity rule, LP is one
// medium component. Example1 and Example2 are the paper's analytical
// examples (Section 3.3/3.4).
package datagen

import (
	"fmt"
	"math/rand"

	"tuffy/internal/mln"
	"tuffy/internal/mrf"
)

// Dataset bundles a generated MLN instance.
type Dataset struct {
	Name  string
	Prog  *mln.Program
	Ev    *mln.Evidence
	Query *mln.QueryDecl
}

// Stats summarizes a dataset for the paper's Table 1.
type Stats struct {
	Relations      int
	Rules          int
	Entities       int
	EvidenceTuples int
}

// Table1Stats computes the dataset-statistics row.
func (d *Dataset) Table1Stats() Stats {
	ents := map[int32]struct{}{}
	for _, dom := range d.Prog.Domains {
		for _, c := range dom.Consts {
			ents[c] = struct{}{}
		}
	}
	return Stats{
		Relations:      len(d.Prog.Preds),
		Rules:          len(d.Prog.Clauses),
		Entities:       len(ents),
		EvidenceTuples: d.Ev.Total(),
	}
}

// Example1 builds the MRF of the paper's Example 1: n independent
// components, each with atoms {X_i, Y_i} and clauses
// {(X_i, 1), (Y_i, 1), (X_i ∨ Y_i, -1)}. The optimum sets every atom true
// (cost n); monolithic WalkSAT needs exponentially many steps in n to reach
// it, component-aware search needs O(n) (Theorem 3.1 / Appendix B.5).
func Example1(n int) *mrf.MRF {
	m := mrf.New(2 * n)
	for i := 0; i < n; i++ {
		x := mrf.AtomID(2*i + 1)
		y := mrf.AtomID(2*i + 2)
		must(m.AddClause(1, x))
		must(m.AddClause(1, y))
		must(m.AddClause(-1, x, y))
	}
	return m
}

// Example2 builds the paper's Example 2 shape: two chain subgraphs of the
// given size joined by a single bridge clause — a weakly connected MRF
// where splitting at the bridge costs one cut clause but halves the search
// space (Section 3.4).
func Example2(sideSize int) *mrf.MRF {
	m := mrf.New(2 * sideSize)
	chain := func(base int) {
		for i := 0; i < sideSize; i++ {
			a := mrf.AtomID(base + i)
			must(m.AddClause(1, a))
			if i > 0 {
				// prefer equal neighbours
				prev := mrf.AtomID(base + i - 1)
				must(m.AddClause(2, -prev, a))
				must(m.AddClause(2, prev, -a))
			}
		}
	}
	chain(1)
	chain(1 + sideSize)
	// the bridge edge e = (a, b)
	must(m.AddClause(0.5, mrf.AtomID(sideSize), mrf.AtomID(sideSize+1)))
	return m
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// RCConfig sizes the Relational Classification generator.
type RCConfig struct {
	Papers     int // default 600
	Authors    int // default 250
	Categories int // default 6
	Clusters   int // default 120: target number of components
	LabelFrac  float64
	Seed       int64
}

func (c RCConfig) withDefaults() RCConfig {
	if c.Papers == 0 {
		c.Papers = 600
	}
	if c.Authors == 0 {
		c.Authors = 250
	}
	if c.Categories == 0 {
		c.Categories = 6
	}
	if c.Clusters == 0 {
		c.Clusters = 120
	}
	if c.LabelFrac == 0 {
		c.LabelFrac = 0.3
	}
	return c
}

// RC generates the Relational Classification dataset: the paper-Figure-1
// program over a citation graph clustered into many weakly interacting
// groups, giving an MRF with hundreds of components (paper: 489 on Cora).
func RC(cfg RCConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	prog := mln.NewProgram()
	paper, _ := prog.DeclarePredicate("paper", []string{"paperid", "url"}, true)
	wrote, _ := prog.DeclarePredicate("wrote", []string{"author", "paperid"}, true)
	refers, _ := prog.DeclarePredicate("refers", []string{"paperid", "paperid"}, true)
	cat, _ := prog.DeclarePredicate("cat", []string{"paperid", "category"}, false)

	cats := make([]int32, cfg.Categories)
	for i := range cats {
		cats[i] = prog.Constant("category", fmt.Sprintf("Cat%d", i))
	}
	net := cats[len(cats)-1] // plays "Networking" in F5

	// Rules F1..F5 of Figure 1.
	addRC := func(c *mln.Clause) {
		if err := prog.AddClause(c); err != nil {
			panic(err)
		}
	}
	addRC(&mln.Clause{Weight: 5, Lits: []mln.Literal{
		{Pred: cat, Negated: true, Args: []mln.Term{mln.V("p"), mln.V("c1")}},
		{Pred: cat, Negated: true, Args: []mln.Term{mln.V("p"), mln.V("c2")}},
		{Args: []mln.Term{mln.V("c1"), mln.V("c2")}},
	}, Source: "F1"})
	addRC(&mln.Clause{Weight: 1, Lits: []mln.Literal{
		{Pred: wrote, Negated: true, Args: []mln.Term{mln.V("x"), mln.V("p1")}},
		{Pred: wrote, Negated: true, Args: []mln.Term{mln.V("x"), mln.V("p2")}},
		{Pred: cat, Negated: true, Args: []mln.Term{mln.V("p1"), mln.V("c")}},
		{Pred: cat, Args: []mln.Term{mln.V("p2"), mln.V("c")}},
	}, Source: "F2"})
	addRC(&mln.Clause{Weight: 2, Lits: []mln.Literal{
		{Pred: cat, Negated: true, Args: []mln.Term{mln.V("p1"), mln.V("c")}},
		{Pred: refers, Negated: true, Args: []mln.Term{mln.V("p1"), mln.V("p2")}},
		{Pred: cat, Args: []mln.Term{mln.V("p2"), mln.V("c")}},
	}, Source: "F3"})
	addRC(&mln.Clause{Weight: 1, Exist: []string{"x"}, Lits: []mln.Literal{
		{Pred: paper, Negated: true, Args: []mln.Term{mln.V("p"), mln.V("u")}},
		{Pred: wrote, Args: []mln.Term{mln.V("x"), mln.V("p")}},
	}, Source: "F4"})
	addRC(&mln.Clause{Weight: -0.5, Lits: []mln.Literal{
		{Pred: cat, Args: []mln.Term{mln.V("p"), mln.C(net)}},
	}, Source: "F5"})

	ev := mln.NewEvidence(prog)
	paperIDs := make([]int32, cfg.Papers)
	for i := range paperIDs {
		paperIDs[i] = prog.Constant("paperid", fmt.Sprintf("P%d", i))
		u := prog.Constant("url", fmt.Sprintf("u%d", i))
		must(ev.Assert(paper, []int32{paperIDs[i], u}, false))
	}
	authorIDs := make([]int32, cfg.Authors)
	for i := range authorIDs {
		authorIDs[i] = prog.Constant("author", fmt.Sprintf("A%d", i))
	}

	// Cluster structure: papers and authors are confined to clusters so the
	// cat-MRF decomposes into ~Clusters components.
	clusterOf := make([]int, cfg.Papers)
	for i := range clusterOf {
		clusterOf[i] = i % cfg.Clusters
	}
	authorCluster := make([]int, cfg.Authors)
	for i := range authorCluster {
		authorCluster[i] = i % cfg.Clusters
	}
	authorsInCluster := make([][]int32, cfg.Clusters)
	for i, a := range authorIDs {
		c := authorCluster[i]
		authorsInCluster[c] = append(authorsInCluster[c], a)
	}
	papersInCluster := make([][]int32, cfg.Clusters)
	for i, p := range paperIDs {
		c := clusterOf[i]
		papersInCluster[c] = append(papersInCluster[c], p)
	}

	for i, p := range paperIDs {
		c := clusterOf[i]
		as := authorsInCluster[c]
		if len(as) == 0 {
			as = authorIDs
		}
		// 1-2 authors from the paper's cluster.
		na := 1 + rng.Intn(2)
		for k := 0; k < na; k++ {
			must(ev.Assert(wrote, []int32{as[rng.Intn(len(as))], p}, false))
		}
		// citations within the cluster
		peers := papersInCluster[c]
		if len(peers) > 1 && rng.Float64() < 0.8 {
			q := peers[rng.Intn(len(peers))]
			if q != p {
				must(ev.Assert(refers, []int32{p, q}, false))
			}
		}
	}
	// Labels on a fraction of papers.
	for i, p := range paperIDs {
		if rng.Float64() < cfg.LabelFrac {
			must(ev.Assert(cat, []int32{p, cats[(i+clusterOf[i])%len(cats)]}, false))
		}
	}

	q := mln.NewQueryDecl()
	q.Add(cat)
	return &Dataset{Name: "RC", Prog: prog, Ev: ev, Query: q}
}

// IEConfig sizes the Information Extraction generator.
type IEConfig struct {
	Chains   int // default 1500 tiny candidate chains
	MaxChain int // default 3 tokens
	Fields   int // default 4 field types
	Seed     int64
}

func (c IEConfig) withDefaults() IEConfig {
	if c.Chains == 0 {
		c.Chains = 1500
	}
	if c.MaxChain == 0 {
		c.MaxChain = 3
	}
	if c.Fields == 0 {
		c.Fields = 4
	}
	return c
}

// IE generates the Information Extraction dataset: segmentation of
// citation-like token chains into fields. Each chain is independent, so
// the MRF consists of thousands of 2- and 3-cliques (paper: 5341
// components on the Citeseer task).
func IE(cfg IEConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	prog := mln.NewProgram()
	next, _ := prog.DeclarePredicate("next", []string{"token", "token"}, true)
	hint, _ := prog.DeclarePredicate("hint", []string{"token", "field"}, true)
	field, _ := prog.DeclarePredicate("field", []string{"token", "field"}, false)

	add := func(c *mln.Clause) {
		if err := prog.AddClause(c); err != nil {
			panic(err)
		}
	}
	// A token has at most one field.
	add(&mln.Clause{Weight: 4, Lits: []mln.Literal{
		{Pred: field, Negated: true, Args: []mln.Term{mln.V("t"), mln.V("f1")}},
		{Pred: field, Negated: true, Args: []mln.Term{mln.V("t"), mln.V("f2")}},
		{Args: []mln.Term{mln.V("f1"), mln.V("f2")}},
	}, Source: "one-field"})
	// Adjacent tokens tend to share a field.
	add(&mln.Clause{Weight: 1, Lits: []mln.Literal{
		{Pred: next, Negated: true, Args: []mln.Term{mln.V("t1"), mln.V("t2")}},
		{Pred: field, Negated: true, Args: []mln.Term{mln.V("t1"), mln.V("f")}},
		{Pred: field, Args: []mln.Term{mln.V("t2"), mln.V("f")}},
	}, Source: "continuity"})
	// Lexicon hints suggest fields.
	add(&mln.Clause{Weight: 2, Lits: []mln.Literal{
		{Pred: hint, Negated: true, Args: []mln.Term{mln.V("t"), mln.V("f")}},
		{Pred: field, Args: []mln.Term{mln.V("t"), mln.V("f")}},
	}, Source: "hint"})
	// Weak prior against labelling: most candidate tokens are spurious.
	// This gives every component a positive-cost optimum, which is what
	// makes monolithic WalkSAT wander (the r(H) > 0 condition of
	// Theorem 3.1; the paper reports r(H)=0.5 with |H|=1196 on IE).
	add(&mln.Clause{Weight: -0.3, Lits: []mln.Literal{
		{Pred: field, Args: []mln.Term{mln.V("t"), mln.V("f")}},
	}, Source: "prior"})

	ev := mln.NewEvidence(prog)
	fields := make([]int32, cfg.Fields)
	for i := range fields {
		fields[i] = prog.Constant("field", fmt.Sprintf("F%d", i))
	}
	tok := 0
	for c := 0; c < cfg.Chains; c++ {
		n := 2 + rng.Intn(cfg.MaxChain-1)
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = prog.Constant("token", fmt.Sprintf("T%d", tok))
			tok++
		}
		for i := 0; i+1 < n; i++ {
			must(ev.Assert(next, []int32{ids[i], ids[i+1]}, false))
		}
		// one hint per chain
		must(ev.Assert(hint, []int32{ids[rng.Intn(n)], fields[rng.Intn(len(fields))]}, false))
	}

	q := mln.NewQueryDecl()
	q.Add(field)
	return &Dataset{Name: "IE", Prog: prog, Ev: ev, Query: q}
}

// LPConfig sizes the Link Prediction generator.
type LPConfig struct {
	Profs    int // default 12
	Students int // default 60
	Courses  int // default 30
	Seed     int64
}

func (c LPConfig) withDefaults() LPConfig {
	if c.Profs == 0 {
		c.Profs = 12
	}
	if c.Students == 0 {
		c.Students = 60
	}
	if c.Courses == 0 {
		c.Courses = 30
	}
	return c
}

// LP generates the Link Prediction dataset: predict student-adviser pairs
// from a departmental database. Shared courses connect everything, so the
// MRF is a single component (paper: 1 component, 4.6K query atoms).
func LP(cfg LPConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	prog := mln.NewProgram()
	taught, _ := prog.DeclarePredicate("taught", []string{"prof", "course"}, true)
	ta, _ := prog.DeclarePredicate("ta", []string{"course", "student"}, true)
	pub, _ := prog.DeclarePredicate("publishedWith", []string{"prof", "student"}, true)
	sameGroup, _ := prog.DeclarePredicate("sameGroup", []string{"student", "student"}, true)
	advisedBy, _ := prog.DeclarePredicate("advisedBy", []string{"student", "prof"}, false)

	add := func(c *mln.Clause) {
		if err := prog.AddClause(c); err != nil {
			panic(err)
		}
	}
	// TAing a professor's course suggests advising.
	add(&mln.Clause{Weight: 1.5, Lits: []mln.Literal{
		{Pred: taught, Negated: true, Args: []mln.Term{mln.V("p"), mln.V("c")}},
		{Pred: ta, Negated: true, Args: []mln.Term{mln.V("c"), mln.V("s")}},
		{Pred: advisedBy, Args: []mln.Term{mln.V("s"), mln.V("p")}},
	}, Source: "ta-advise"})
	// Co-publication strongly suggests advising.
	add(&mln.Clause{Weight: 3, Lits: []mln.Literal{
		{Pred: pub, Negated: true, Args: []mln.Term{mln.V("p"), mln.V("s")}},
		{Pred: advisedBy, Args: []mln.Term{mln.V("s"), mln.V("p")}},
	}, Source: "pub-advise"})
	// A student has at most one adviser.
	add(&mln.Clause{Weight: 6, Lits: []mln.Literal{
		{Pred: advisedBy, Negated: true, Args: []mln.Term{mln.V("s"), mln.V("p1")}},
		{Pred: advisedBy, Negated: true, Args: []mln.Term{mln.V("s"), mln.V("p2")}},
		{Args: []mln.Term{mln.V("p1"), mln.V("p2")}},
	}, Source: "one-adviser"})
	// Lab mates tend to share an adviser — the rule that welds the MRF
	// into one component (the paper's LP is a single component).
	add(&mln.Clause{Weight: 0.8, Lits: []mln.Literal{
		{Pred: sameGroup, Negated: true, Args: []mln.Term{mln.V("s1"), mln.V("s2")}},
		{Pred: advisedBy, Negated: true, Args: []mln.Term{mln.V("s1"), mln.V("p")}},
		{Pred: advisedBy, Args: []mln.Term{mln.V("s2"), mln.V("p")}},
	}, Source: "labmates"})
	// Few students are advised by nobody... modelled as a weak prior
	// against advising (keeps most pairs false).
	add(&mln.Clause{Weight: -0.2, Lits: []mln.Literal{
		{Pred: advisedBy, Args: []mln.Term{mln.V("s"), mln.V("p")}},
	}, Source: "prior"})

	ev := mln.NewEvidence(prog)
	profs := make([]int32, cfg.Profs)
	for i := range profs {
		profs[i] = prog.Constant("prof", fmt.Sprintf("Prof%d", i))
	}
	students := make([]int32, cfg.Students)
	for i := range students {
		students[i] = prog.Constant("student", fmt.Sprintf("S%d", i))
	}
	for i := 0; i < cfg.Courses; i++ {
		c := prog.Constant("course", fmt.Sprintf("C%d", i))
		must(ev.Assert(taught, []int32{profs[rng.Intn(len(profs))], c}, false))
		// 1-3 TAs per course
		for k := 0; k < 1+rng.Intn(3); k++ {
			must(ev.Assert(ta, []int32{c, students[rng.Intn(len(students))]}, false))
		}
	}
	for i := range students {
		if rng.Float64() < 0.4 {
			must(ev.Assert(pub, []int32{profs[rng.Intn(len(profs))], students[i]}, false))
		}
	}
	// A chain of lab-mate pairs connects all students into one component.
	for i := 0; i+1 < len(students); i++ {
		must(ev.Assert(sameGroup, []int32{students[i], students[i+1]}, false))
	}

	q := mln.NewQueryDecl()
	q.Add(advisedBy)
	return &Dataset{Name: "LP", Prog: prog, Ev: ev, Query: q}
}

// ERConfig sizes the Entity Resolution generator.
type ERConfig struct {
	Records int // default 70
	Groups  int // default 20 true entities
	Seed    int64
}

func (c ERConfig) withDefaults() ERConfig {
	if c.Records == 0 {
		c.Records = 70
	}
	if c.Groups == 0 {
		c.Groups = 20
	}
	return c
}

// ER generates the Entity Resolution dataset: deduplicate citation records.
// The transitivity rule over sameBib makes the MRF one dense component
// whose clause count is cubic in the records (paper: ER is a single
// component and even a 2-way partition cuts most clauses — Figure 6).
func ER(cfg ERConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	prog := mln.NewProgram()
	sim, _ := prog.DeclarePredicate("simHigh", []string{"rec", "rec"}, true)
	same, _ := prog.DeclarePredicate("sameBib", []string{"rec", "rec"}, false)

	add := func(c *mln.Clause) {
		if err := prog.AddClause(c); err != nil {
			panic(err)
		}
	}
	// High similarity suggests identity.
	add(&mln.Clause{Weight: 4, Lits: []mln.Literal{
		{Pred: sim, Negated: true, Args: []mln.Term{mln.V("r1"), mln.V("r2")}},
		{Pred: same, Args: []mln.Term{mln.V("r1"), mln.V("r2")}},
	}, Source: "sim-same"})
	// Symmetry.
	add(&mln.Clause{Weight: 8, Lits: []mln.Literal{
		{Pred: same, Negated: true, Args: []mln.Term{mln.V("r1"), mln.V("r2")}},
		{Pred: same, Args: []mln.Term{mln.V("r2"), mln.V("r1")}},
	}, Source: "symmetry"})
	// Transitivity: the cubic rule that densifies the MRF.
	add(&mln.Clause{Weight: 5, Lits: []mln.Literal{
		{Pred: same, Negated: true, Args: []mln.Term{mln.V("r1"), mln.V("r2")}},
		{Pred: same, Negated: true, Args: []mln.Term{mln.V("r2"), mln.V("r3")}},
		{Pred: same, Args: []mln.Term{mln.V("r1"), mln.V("r3")}},
	}, Source: "transitivity"})
	// Prior against merging.
	add(&mln.Clause{Weight: -1, Lits: []mln.Literal{
		{Pred: same, Args: []mln.Term{mln.V("r1"), mln.V("r2")}},
	}, Source: "prior"})

	ev := mln.NewEvidence(prog)
	recs := make([]int32, cfg.Records)
	group := make([]int, cfg.Records)
	for i := range recs {
		recs[i] = prog.Constant("rec", fmt.Sprintf("R%d", i))
		group[i] = rng.Intn(cfg.Groups)
	}
	// Similarity evidence: mostly within true groups, some noise.
	for i := 0; i < cfg.Records; i++ {
		for j := 0; j < cfg.Records; j++ {
			if i == j {
				continue
			}
			p := 0.02
			if group[i] == group[j] {
				p = 0.7
			}
			if rng.Float64() < p {
				must(ev.Assert(sim, []int32{recs[i], recs[j]}, false))
			}
		}
	}

	q := mln.NewQueryDecl()
	q.Add(same)
	return &Dataset{Name: "ER", Prog: prog, Ev: ev, Query: q}
}
