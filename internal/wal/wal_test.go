package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, path string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	var lsns []uint64
	for i := 0; i < 5; i++ {
		lsn, err := l.Append(TypeDelta, []byte(fmt.Sprintf("delta-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 5 {
		t.Fatalf("reopened log has %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.LSN != lsns[i] || r.Type != TypeDelta || string(r.Payload) != fmt.Sprintf("delta-%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if l2.NextLSN() != lsns[4]+1 {
		t.Fatalf("NextLSN = %d, want %d", l2.NextLSN(), lsns[4]+1)
	}
}

func TestLogUnsyncedRecordsAreLost(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	if _, err := l.Append(TypeDelta, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeDelta, []byte("buffered only")); err != nil {
		t.Fatal(err)
	}
	// Crash: drop the handle without Sync/Close.
	_, recs := openT(t, path)
	if len(recs) != 1 || string(recs[0].Payload) != "durable" {
		t.Fatalf("recovered %d records, want just the synced one", len(recs))
	}
}

// Every torn-tail shape — partial frame, flipped payload byte, flipped CRC,
// trailing garbage — must be detected and truncated, keeping the intact
// prefix.
func TestLogTornTailTruncation(t *testing.T) {
	write := func(t *testing.T, path string) int64 {
		l, _ := openT(t, path)
		for i := 0; i < 3; i++ {
			if _, err := l.Append(TypeDelta, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		st, _ := os.Stat(path)
		return st.Size()
	}
	cases := []struct {
		name string
		mut  func(t *testing.T, path string, size int64)
		want int // surviving records
	}{
		{"partial last frame", func(t *testing.T, path string, size int64) {
			if err := os.Truncate(path, size-30); err != nil {
				t.Fatal(err)
			}
		}, 2},
		{"corrupt last payload", func(t *testing.T, path string, size int64) {
			flipByteAt(t, path, size-1)
		}, 2},
		{"corrupt middle frame", func(t *testing.T, path string, size int64) {
			flipByteAt(t, path, size-150) // inside the second frame
		}, 1},
		{"trailing garbage", func(t *testing.T, path string, size int64) {
			f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			f.Write([]byte("garbage after the last frame"))
			f.Close()
		}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			size := write(t, path)
			tc.mut(t, path, size)
			l, recs := openT(t, path)
			if len(recs) != tc.want {
				t.Fatalf("recovered %d records, want %d", len(recs), tc.want)
			}
			// The truncated log must accept appends and reopen cleanly.
			if _, err := l.Append(TypeDelta, []byte("after recovery")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, recs2 := openT(t, path)
			if len(recs2) != tc.want+1 {
				t.Fatalf("after append: %d records, want %d", len(recs2), tc.want+1)
			}
		})
	}
}

func flipByteAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func TestLogResetKeepsLSNsMonotone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	for i := 0; i < 4; i++ {
		if _, err := l.Append(TypeDelta, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	next := l.NextLSN()
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Resets() != 1 {
		t.Fatalf("Resets = %d", l.Resets())
	}
	lsn, err := l.Append(TypeDelta, []byte("post-checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != next {
		t.Fatalf("post-reset LSN = %d, want %d (monotone across reset)", lsn, next)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openT(t, path)
	if len(recs) != 1 || recs[0].LSN != next {
		t.Fatalf("reopened: %d records, first LSN %d; want 1 record at %d", len(recs), recs[0].LSN, next)
	}
}

// Concurrent committers must coalesce onto shared fsyncs: with N
// goroutines each appending+syncing, the fsync count lands well under N.
func TestGroupCommitCoalesces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	defer l.Close()
	const n = 64
	lsns := make([]uint64, n)
	for i := 0; i < n; i++ {
		lsn, err := l.Append(TypeDelta, bytes.Repeat([]byte{byte(i)}, 64))
		if err != nil {
			t.Fatal(err)
		}
		lsns[i] = lsn
	}
	// n committers racing to durability: the first leader's fsync covers
	// every already-appended LSN, so the rest must piggyback on it.
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(lsn uint64) {
			defer wg.Done()
			errs <- l.SyncTo(lsn)
		}(lsns[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Syncs(); got != 1 {
		t.Fatalf("%d fsyncs for %d commits — want one shared group commit", got, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openT(t, path)
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
}
