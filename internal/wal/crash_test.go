package wal

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"tuffy/internal/db/storage"
)

// The storage-tier crash matrix: pages are overwritten through a
// LoggedDisk whose inner FileDisk dies mid-write (torn data page) at every
// possible write index. After redo-on-reopen each page must be
// bit-identical to its pre- or post-operation image — a torn page may hit
// the platter, but the logged image always repairs it.
func TestCrashMatrixTornDataWrites(t *testing.T) {
	const numPages = 4
	pre := func(i int) []byte { return bytes.Repeat([]byte{byte(0x10 + i)}, storage.PageSize) }
	post := func(i int) []byte { return bytes.Repeat([]byte{byte(0xa0 + i)}, storage.PageSize) }

	for fail := 0; fail <= numPages; fail++ {
		t.Run(fmt.Sprintf("die-at-write-%d", fail), func(t *testing.T) {
			dir := t.TempDir()
			fdisk, err := storage.OpenFileDisk(filepath.Join(dir, "pages"))
			if err != nil {
				t.Fatal(err)
			}
			log, _, err := Open(filepath.Join(dir, "wal.log"))
			if err != nil {
				t.Fatal(err)
			}
			fault := storage.NewFaultDisk(fdisk)
			disk := WrapDisk(fault, log)

			// Checkpointed base state: every page holds its pre image.
			var ids []storage.PageID
			for i := 0; i < numPages; i++ {
				id, err := disk.AllocatePage(1)
				if err != nil {
					t.Fatal(err)
				}
				if err := disk.WritePage(id, pre(i)); err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			if err := log.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := fdisk.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := log.Reset(); err != nil {
				t.Fatal(err)
			}

			// The operation: overwrite every page, dying (torn) at write
			// `fail`. Pages logged before the crash are synced — the
			// commit the client was acknowledged for.
			fault.SetTornWrite(true)
			fault.FailWritesAfter(fail)
			wrote := 0
			for i, id := range ids {
				if err := disk.WritePage(id, post(i)); err != nil {
					break
				}
				wrote++
			}
			if wrote != fail && fail < numPages {
				t.Fatalf("wrote %d pages before the fault, want %d", wrote, fail)
			}
			if err := log.Sync(); err != nil {
				t.Fatal(err)
			}
			// Crash: no fdisk.Sync, handles dropped.
			log.Close()
			fdisk.Close()

			// Recovery: reopen, redo the page images.
			fdisk2, err := storage.OpenFileDisk(filepath.Join(dir, "pages"))
			if err != nil {
				t.Fatal(err)
			}
			defer fdisk2.Close()
			log2, recs, err := Open(filepath.Join(dir, "wal.log"))
			if err != nil {
				t.Fatal(err)
			}
			defer log2.Close()
			if _, err := Recover(recs, fdisk2); err != nil {
				t.Fatal(err)
			}

			buf := make([]byte, storage.PageSize)
			for i, id := range ids {
				if err := fdisk2.ReadPage(id, buf); err != nil {
					t.Fatal(err)
				}
				switch {
				case bytes.Equal(buf, post(i)):
					// The write at the crash index is logged before the
					// torn data write, so redo repairs it to post; writes
					// past it never ran and were never logged.
					if i > fail {
						t.Fatalf("page %d is post-image but its write never ran", i)
					}
				case bytes.Equal(buf, pre(i)):
					if i < fail {
						t.Fatalf("page %d is pre-image but its logged write was acknowledged", i)
					}
					if i == fail && fail < numPages {
						t.Fatalf("page %d is pre-image but its image was logged and synced", i)
					}
				default:
					t.Fatalf("page %d is torn after recovery", i)
				}
			}
		})
	}
}

// Redo is idempotent: recovering the same log twice (crash during
// recovery, then recovery again) converges on the same pages.
func TestRecoverIdempotent(t *testing.T) {
	dir := t.TempDir()
	fdisk, err := storage.OpenFileDisk(filepath.Join(dir, "pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer fdisk.Close()
	log, _, err := Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	disk := WrapDisk(fdisk, log)
	img := bytes.Repeat([]byte{7}, storage.PageSize)
	id, err := disk.AllocatePage(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := disk.WritePage(id, img); err != nil {
		t.Fatal(err)
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	log.Close()

	_, recs, err := Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		if n, err := Recover(recs, fdisk); err != nil || n != 1 {
			t.Fatalf("pass %d: n=%d err=%v", pass, n, err)
		}
	}
	buf := make([]byte, storage.PageSize)
	if err := fdisk.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, img) {
		t.Fatal("page diverged across redo passes")
	}
}
