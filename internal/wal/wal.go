// Package wal implements the durability tier's append-only write-ahead
// log: CRC32C-framed, LSN-stamped records with group-commit fsync
// batching, redo-on-open that detects and truncates a torn tail, and
// checkpoint-based truncation. Two record kinds flow through it — full
// page images logged by LoggedDisk before buffer-pool write-back
// (WAL-before-data), and engine-level evidence deltas that let a warm
// start replay to the latest epoch.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
)

// Record types.
const (
	// TypePage frames a full page image: file int32, num int32, PageSize
	// bytes (appended by LoggedDisk before every write-back).
	TypePage byte = 1
	// TypeDelta frames an engine-level evidence delta (payload owned by
	// the engine's persistence layer).
	TypeDelta byte = 2
)

const (
	logMagic   = "TFYWAL01"
	headerSize = len(logMagic) + 8 + 4 // magic, startLSN, crc
	frameHdr   = 4 + 4 + 8 + 1         // crc, payload len, lsn, type
	// maxPayload bounds a frame so a corrupt length field cannot make the
	// scanner allocate wild amounts (largest real payload is a page image).
	maxPayload = 1 << 24
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded log frame.
type Record struct {
	LSN     uint64
	Type    byte
	Payload []byte
}

// Log is an append-only record log on one file. Append buffers frames in
// memory and assigns LSNs; Sync/SyncTo write and fsync them with
// group-commit batching (concurrent committers coalesce onto one fsync).
// Reset truncates the log at a checkpoint, keeping LSNs monotone across
// the truncation.
type Log struct {
	path string

	mu      sync.Mutex // append state: buf, nextLSN, f's write offset
	f       *os.File
	buf     []byte
	nextLSN uint64

	syncMu    sync.Mutex // serializes the write+fsync step
	syncedLSN atomic.Uint64

	size     atomic.Int64 // bytes in the file (written, not necessarily synced)
	appended atomic.Int64 // lifetime bytes appended (survives Reset)
	syncs    atomic.Int64
	resets   atomic.Int64
}

// Open opens (creating if needed) the log at path, scans it, truncates any
// torn tail, and returns the intact records in order. A missing or
// corrupt header starts a fresh log. The returned records alias one
// buffer read at open; callers consume them before appending.
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &Log{path: path, f: f}

	startLSN := uint64(1)
	records := []Record(nil)
	keep := 0 // prefix of raw that is intact
	if hdrLSN, ok := parseHeader(raw); ok {
		startLSN = hdrLSN
		keep = headerSize
		records, keep = scanFrames(raw, headerSize, startLSN)
	}
	if keep == 0 {
		// No (intact) header: write a fresh one.
		if err := l.writeHeader(startLSN); err != nil {
			f.Close()
			return nil, nil, err
		}
		keep = headerSize
	} else if keep < len(raw) {
		// Torn tail: drop the partial or corrupt suffix.
		if err := f.Truncate(int64(keep)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	l.nextLSN = startLSN + uint64(len(records))
	l.syncedLSN.Store(l.nextLSN - 1)
	l.size.Store(int64(keep))
	return l, records, nil
}

func parseHeader(raw []byte) (startLSN uint64, ok bool) {
	if len(raw) < headerSize || string(raw[:len(logMagic)]) != logMagic {
		return 0, false
	}
	body := raw[:headerSize-4]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(raw[headerSize-4:]) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(raw[len(logMagic):]), true
}

// scanFrames walks frames from off, returning the intact records and the
// offset of the first byte that is not part of an intact frame.
func scanFrames(raw []byte, off int, startLSN uint64) ([]Record, int) {
	var out []Record
	want := startLSN
	for {
		if len(raw)-off < frameHdr {
			return out, off
		}
		h := raw[off:]
		crc := binary.LittleEndian.Uint32(h)
		plen := int(binary.LittleEndian.Uint32(h[4:]))
		if plen > maxPayload || len(raw)-off < frameHdr+plen {
			return out, off
		}
		if crc32.Checksum(h[4:frameHdr+plen], crcTable) != crc {
			return out, off
		}
		lsn := binary.LittleEndian.Uint64(h[8:])
		if lsn != want {
			return out, off
		}
		out = append(out, Record{LSN: lsn, Type: h[16], Payload: h[frameHdr : frameHdr+plen]})
		off += frameHdr + plen
		want++
	}
}

func (l *Log) writeHeader(startLSN uint64) error {
	buf := make([]byte, 0, headerSize)
	buf = append(buf, logMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, startLSN)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.WriteAt(buf, 0); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size.Store(int64(headerSize))
	return nil
}

// Append frames the record in the in-memory buffer and returns its LSN.
// The record is durable only after a Sync/SyncTo covering that LSN.
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds frame limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.nextLSN
	l.nextLSN++
	hdr := make([]byte, 0, frameHdr)
	hdr = binary.LittleEndian.AppendUint32(hdr, 0) // crc placeholder
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	hdr = binary.LittleEndian.AppendUint64(hdr, lsn)
	hdr = append(hdr, typ)
	at := len(l.buf)
	l.buf = append(l.buf, hdr...)
	l.buf = append(l.buf, payload...)
	crc := crc32.Checksum(l.buf[at+4:], crcTable)
	binary.LittleEndian.PutUint32(l.buf[at:], crc)
	l.appended.Add(int64(frameHdr + len(payload)))
	return lsn, nil
}

// Sync makes every appended record durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.nextLSN - 1
	l.mu.Unlock()
	return l.SyncTo(target)
}

// SyncTo makes records up to lsn durable. Group commit: a committer that
// finds its LSN already synced returns immediately; the one holding the
// sync lock flushes everything buffered so far, so concurrent committers
// share one write+fsync.
func (l *Log) SyncTo(lsn uint64) error {
	if l.syncedLSN.Load() >= lsn {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncedLSN.Load() >= lsn {
		return nil // a concurrent leader covered us
	}
	l.mu.Lock()
	buf := l.buf
	l.buf = nil
	target := l.nextLSN - 1
	l.mu.Unlock()
	if len(buf) > 0 {
		if _, err := l.f.WriteAt(buf, l.size.Load()); err != nil {
			return err
		}
		l.size.Add(int64(len(buf)))
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.syncs.Add(1)
	l.syncedLSN.Store(target)
	return nil
}

// Reset truncates the log back to an empty one whose LSNs continue from
// the current position — the checkpoint step after the state the log
// protected has been persisted elsewhere. Buffered unsynced records are
// dropped too (they are covered by the same checkpoint).
func (l *Log) Reset() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = nil
	if err := l.writeHeader(l.nextLSN); err != nil {
		return err
	}
	l.syncedLSN.Store(l.nextLSN - 1)
	l.resets.Add(1)
	return nil
}

// NextLSN returns the LSN the next Append will get.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Size reports the log file's current size plus buffered bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	buffered := int64(len(l.buf))
	l.mu.Unlock()
	return l.size.Load() + buffered
}

// AppendedBytes reports lifetime appended bytes (monotone across Resets).
func (l *Log) AppendedBytes() int64 { return l.appended.Load() }

// Syncs reports how many fsync batches have run.
func (l *Log) Syncs() int64 { return l.syncs.Load() }

// Resets reports how many checkpoint truncations have run.
func (l *Log) Resets() int64 { return l.resets.Load() }

// Close syncs and closes the log file.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
