package wal

import (
	"encoding/binary"
	"fmt"

	"tuffy/internal/db/storage"
)

// LoggedDisk wraps a Disk with WAL-before-data page logging: every
// WritePage first appends a full page image to the log, then writes
// through. The buffer pool sits on top unchanged — its write-backs are
// what flow through here. Appends are buffered; the durability point is
// Log.Sync (group commit), which callers invoke at their commit points
// (the engine: on every evidence-delta commit and at checkpoints), after
// which Recover can redo every acknowledged page onto a reopened disk.
type LoggedDisk struct {
	inner storage.Disk
	log   *Log
}

// WrapDisk layers page logging over inner.
func WrapDisk(inner storage.Disk, log *Log) *LoggedDisk {
	return &LoggedDisk{inner: inner, log: log}
}

// Inner returns the wrapped disk.
func (d *LoggedDisk) Inner() storage.Disk { return d.inner }

// pagePayload frames a page image: file, num, PageSize bytes.
func pagePayload(id storage.PageID, buf []byte) []byte {
	p := make([]byte, 0, 8+storage.PageSize)
	p = binary.LittleEndian.AppendUint32(p, uint32(id.File))
	p = binary.LittleEndian.AppendUint32(p, uint32(id.Num))
	return append(p, buf[:storage.PageSize]...)
}

// ReadPage implements Disk.
func (d *LoggedDisk) ReadPage(id storage.PageID, buf []byte) error {
	return d.inner.ReadPage(id, buf)
}

// WritePage implements Disk: the page image is logged before the data
// write (WAL-before-data), so a crash can never leave a torn data page
// that the log cannot repair.
func (d *LoggedDisk) WritePage(id storage.PageID, buf []byte) error {
	if _, err := d.log.Append(TypePage, pagePayload(id, buf)); err != nil {
		return err
	}
	return d.inner.WritePage(id, buf)
}

// AllocatePage implements Disk.
func (d *LoggedDisk) AllocatePage(file int32) (storage.PageID, error) {
	return d.inner.AllocatePage(file)
}

// NumPages implements Disk.
func (d *LoggedDisk) NumPages(file int32) int32 { return d.inner.NumPages(file) }

// TruncateFile implements Disk.
func (d *LoggedDisk) TruncateFile(file int32) { d.inner.TruncateFile(file) }

// Stats implements Disk.
func (d *LoggedDisk) Stats() storage.DiskStats { return d.inner.Stats() }

// PageDisk is the redo target: a Disk that can re-extend files to hold a
// replayed page (FileDisk implements it).
type PageDisk interface {
	storage.Disk
	Ensure(file, n int32) error
}

// DecodePage splits a TypePage payload back into its id and image.
func DecodePage(payload []byte) (storage.PageID, []byte, error) {
	if len(payload) != 8+storage.PageSize {
		return storage.PageID{}, nil, fmt.Errorf("wal: page record of %d bytes", len(payload))
	}
	id := storage.PageID{
		File: int32(binary.LittleEndian.Uint32(payload)),
		Num:  int32(binary.LittleEndian.Uint32(payload[4:])),
	}
	return id, payload[8:], nil
}

// Recover redoes every page-image record onto d in log order, extending
// files as needed, and returns how many pages were replayed. Non-page
// records are skipped (the caller interprets them). Redo is idempotent:
// replaying the same log twice converges on the same pages.
func Recover(records []Record, d PageDisk) (int, error) {
	n := 0
	for _, r := range records {
		if r.Type != TypePage {
			continue
		}
		id, img, err := DecodePage(r.Payload)
		if err != nil {
			return n, err
		}
		if err := d.Ensure(id.File, id.Num+1); err != nil {
			return n, err
		}
		if err := d.WritePage(id, img); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
