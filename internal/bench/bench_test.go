package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"tuffy/internal/datagen"
)

// tinyScale keeps every driver under a second for unit testing.
func tinyScale() Scale {
	return Scale{
		RC:          datagen.RCConfig{Papers: 60, Authors: 30, Categories: 3, Clusters: 12, Seed: 1},
		IE:          datagen.IEConfig{Chains: 40, Seed: 2},
		LP:          datagen.LPConfig{Profs: 4, Students: 10, Courses: 6, Seed: 3},
		ER:          datagen.ERConfig{Records: 12, Groups: 4, Seed: 4},
		Flips:       5_000,
		MMFlips:     5,
		DiskLatency: 0,
		Example1N:   20,
	}
}

func checkTable(t *testing.T, tab *Table, wantRows int) {
	t.Helper()
	if tab.Title == "" || len(tab.Header) == 0 {
		t.Fatal("table missing title/header")
	}
	if len(tab.Rows) < wantRows {
		t.Fatalf("table %q has %d rows, want >= %d", tab.Title, len(tab.Rows), wantRows)
	}
	for _, r := range tab.Rows {
		if len(r) != len(tab.Header) {
			t.Fatalf("row width %d != header width %d in %q", len(r), len(tab.Header), tab.Title)
		}
	}
	var sb strings.Builder
	tab.Render(&sb)
	if !strings.Contains(sb.String(), tab.Title) {
		t.Fatal("Render dropped the title")
	}
}

func TestAllDriversAtTinyScale(t *testing.T) {
	s := tinyScale()
	drivers := []struct {
		name string
		rows int
		run  func(context.Context, Scale) (*Table, error)
	}{
		{"table1", 6, Table1},
		{"table2", 3, Table2},
		{"table3", 3, Table3},
		{"table4", 4, Table4},
		{"table5", 5, Table5},
		{"table6", 3, Table6},
		{"table7", 3, Table7},
		{"figure3", 8, Figure3},
		{"figure4", 6, Figure4},
		{"figure5", 4, Figure5},
		{"figure6", 9, Figure6},
		{"figure8", 2, Figure8},
		{"theorem31", 5, Theorem31},
		{"erplus", 3, ERPlus},
		{"closure", 4, ClosureAblation},
		{"flipbatch", 3, FlipBatch},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			tab, err := d.run(context.Background(), s)
			if err != nil {
				t.Fatalf("%s: %v", d.name, err)
			}
			checkTable(t, tab, d.rows)
		})
	}
}

func TestScalesDiffer(t *testing.T) {
	if DefaultScale().Flips >= FullScale().Flips {
		t.Fatal("full scale should be larger")
	}
	if len(DefaultScale().Datasets()) != 4 {
		t.Fatal("want 4 datasets")
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := fmtBytes(512); got != "512B" {
		t.Fatalf("fmtBytes = %q", got)
	}
	if got := fmtBytes(2 << 10); got != "2.0KB" {
		t.Fatalf("fmtBytes = %q", got)
	}
	if got := fmtBytes(3 << 20); got != "3.0MB" {
		t.Fatalf("fmtBytes = %q", got)
	}
	if got := fmtDur(1500 * time.Microsecond); got != "1.5ms" {
		t.Fatalf("fmtDur = %q", got)
	}
	if got := fmtRate(2_500_000); got != "2.5M" {
		t.Fatalf("fmtRate = %q", got)
	}
	if got := fmtRate(4200); got != "4.2K" {
		t.Fatalf("fmtRate = %q", got)
	}
	if got := fmtCost(0); got != "0.0" {
		t.Fatalf("fmtCost = %q", got)
	}
}
