package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tuffy"
	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/mln"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
	"tuffy/internal/search"
)

// SearchThru measures the three raw-search-throughput fixes as one
// experiment, each leg against its lesion baseline, with the improvements
// enforced as CI invariants:
//
//   - scan-mix: concurrent sequential scans plus point readers through one
//     small buffer pool. Declared (scan-resistant) scans must deliver at
//     least 2x the plain-LRU mix throughput, and the pool's hit/miss
//     accounting must add up to exactly one count per fetch even while the
//     scans evict each other.
//   - schedule: pipelined (balanced) Gauss-Seidel against the class-barrier
//     schedule on a partition workload with one oversized partition,
//     I/O-bound like PartParallel. Results must be bit-identical between
//     both schedules at every worker count; the worker-scaling wall-clock
//     curve is reported.
//   - serve-batch: identical tracker-free queries stacked behind a busy
//     execution slot must collapse into one search pass (Metrics.Batched
//     counts the absorbed queries) with every answer bit-identical to a
//     direct Engine call.
func SearchThru(ctx context.Context, s Scale) (*Table, error) {
	tab := &Table{
		Title:  "Raw search throughput: scan resistance, balanced schedule, server batching",
		Header: []string{"leg", "config", "result", "detail"},
	}
	if err := scanMixLeg(tab, s); err != nil {
		return nil, err
	}
	if err := scheduleLeg(ctx, tab, s); err != nil {
		return nil, err
	}
	if err := serveBatchLeg(ctx, tab); err != nil {
		return nil, err
	}
	return tab, nil
}

// scanMixLeg runs a fixed scan + point-read mix through an 8-frame pool on
// a latency-injected disk, with scans declared (scan-resistant placement)
// and undeclared (the pre-fix plain-LRU behaviour), and enforces the >=2x
// mix throughput as well as exactly-once fetch accounting.
//
// The shape matters: three scanners stream their own files continuously
// for the whole measured window (no scanner ever re-reads a page another
// scanner still holds, so no false graduations; three pins plus the
// reader's leave the 4-page hot set evictable only by policy, never by
// pin pressure), while one point reader cycles a 4-page hot set starting
// cold. The measured quantity is the reader's get throughput under that
// scan pressure: under plain LRU the scanners turn the 8-frame pool over
// between the reader's revisits, so every point get pays a disk read for
// the whole run; the scan-resistant pool keeps the probationary scan
// pages away from the hot set, and after four cold misses the reader runs
// at memory speed. Scanners loop until the reader finishes, so the churn
// cannot run out mid-window, and the throughput ratio does not depend on
// sleep granularity or core count.
func scanMixLeg(tab *Table, s Scale) error {
	const (
		poolFrames = 8
		bigPages   = 48
		hotPages   = 4
		scanners   = 3
		gets       = 1000
	)
	run := func(declared bool) (time.Duration, error) {
		disk := storage.NewMemDisk()
		pool := storage.NewBufferPool(disk, poolFrames)
		rec := make([]byte, 700)
		fill := func(file int32, pages int) (*storage.HeapFile, error) {
			h := storage.NewHeapFile(pool, file)
			for h.NumPages() < int32(pages) {
				if _, err := h.Insert(rec); err != nil {
					return nil, err
				}
			}
			return h, nil
		}
		bigs := make([]*storage.HeapFile, scanners)
		for i := range bigs {
			var err error
			if bigs[i], err = fill(int32(i+1), bigPages); err != nil {
				return 0, err
			}
		}
		hot := storage.NewHeapFile(pool, scanners+1)
		var rids []storage.RecordID // one record per hot page
		for hot.NumPages() < hotPages {
			before := hot.NumPages()
			rid, err := hot.Insert(rec)
			if err != nil {
				return 0, err
			}
			if hot.NumPages() > before {
				rids = append(rids, rid)
			}
		}
		if err := pool.FlushAll(); err != nil {
			return 0, err
		}
		// Flush the hot pages out of the pool so both variants start the
		// measured mix with a cold hot set: one untracked flood pass.
		err := bigs[0].ScanWith(nil, func(storage.RecordID, []byte) error { return nil })
		if err != nil {
			return 0, err
		}
		pool.ResetStats()
		disk.SetLatency(s.DiskLatency)

		var stop atomic.Bool
		var scanned atomic.Int64
		var wg sync.WaitGroup
		errs := make(chan error, scanners)
		for i := 0; i < scanners; i++ {
			wg.Add(1)
			go func(h *storage.HeapFile) {
				defer wg.Done()
				for !stop.Load() {
					var err error
					if declared {
						err = h.Scan(func(storage.RecordID, []byte) error { return nil })
					} else {
						err = h.ScanWith(nil, func(storage.RecordID, []byte) error { return nil })
					}
					if err != nil {
						errs <- err
						return
					}
					scanned.Add(bigPages)
				}
			}(bigs[i])
		}
		// Let the scanners flood the pool before the reader's window opens.
		for scanned.Load() < 3*poolFrames {
			time.Sleep(time.Millisecond)
		}
		start := time.Now()
		var readErr error
		for i := 0; i < gets; i++ {
			if _, readErr = hot.Get(rids[i%len(rids)]); readErr != nil {
				break
			}
		}
		elapsed := time.Since(start)
		stop.Store(true)
		wg.Wait()
		close(errs)
		if readErr != nil {
			return 0, readErr
		}
		for err := range errs {
			return 0, err
		}
		// Exactly-once accounting even under scan-induced eviction: every
		// fetch of the mix is one hit or one miss, never both or neither
		// (scan-cursor fetches count in the same totals, classified into
		// the ScanHits/ScanMisses subsets).
		fetches := scanned.Load() + gets
		st := pool.Stats()
		if st.Hits+st.Misses != fetches {
			return 0, fmt.Errorf("searchthru: pool counted %d fetches, want %d (hits %d + misses %d)",
				st.Hits+st.Misses, fetches, st.Hits, st.Misses)
		}
		return elapsed, nil
	}

	baseDur, err := run(false)
	if err != nil {
		return err
	}
	resDur, err := run(true)
	if err != nil {
		return err
	}
	baseRate := float64(gets) / baseDur.Seconds()
	resRate := float64(gets) / resDur.Seconds()
	speedup := resRate / baseRate
	if speedup < 2 {
		return fmt.Errorf("searchthru: scan-resistant point throughput only %.2fx plain LRU (want >= 2x): %v vs %v",
			speedup, resDur, baseDur)
	}
	mix := fmt.Sprintf("%d-frame pool, %d streaming scanners + %d point gets", poolFrames, scanners, gets)
	tab.Rows = append(tab.Rows,
		[]string{"scan-mix", "plain LRU (lesion)", fmtDur(baseDur), fmtRate(baseRate) + " gets/s"},
		[]string{"scan-mix", "scan-resistant", fmtDur(resDur), fmtRate(resRate) + " gets/s"},
		[]string{"scan-mix", mix, fmt.Sprintf("%.0fx", speedup), ">=2x enforced"},
	)
	return nil
}

// chainBlocksUnevenMRF is chainBlocksMRF with per-block sizes, so one
// oversized block yields the one-giant-partition shape whose class barrier
// the balanced schedule removes. beta is sized to the largest block.
func chainBlocksUnevenMRF(sizes []int) (*mrf.MRF, int) {
	total := 0
	for _, n := range sizes {
		total += n
	}
	m := mrf.New(total)
	add := func(w float64, lits ...mrf.Lit) {
		if err := m.AddClause(w, lits...); err != nil {
			panic(err)
		}
	}
	base, beta := 0, 0
	for b, n := range sizes {
		for i := 0; i < n; i++ {
			a := mrf.AtomID(base + i + 1)
			add(1, a)
			if i > 0 {
				prev := mrf.AtomID(base + i)
				add(2, -prev, a)
				add(2, prev, -a)
			}
		}
		if b > 0 {
			add(0.5, mrf.AtomID(base), mrf.AtomID(base+1))
		}
		if units := n + n + 4*(n-1) + 4; units > beta {
			beta = units
		}
		base += n
	}
	return m, beta
}

// scheduleLeg compares the balanced pipelined Gauss-Seidel schedule with
// the class-barrier lesion on an uneven partition workload, disk-resident
// clauses, enforcing bit-identity and reporting the worker curve.
func scheduleLeg(ctx context.Context, tab *Table, s Scale) error {
	sizes := []int{320, 80, 80, 80, 80, 80, 80, 80, 80}
	m, beta := chainBlocksUnevenMRF(sizes)
	pt := partition.Algorithm3(m, beta)
	if err := pt.Validate(); err != nil {
		return err
	}
	if pt.NumCut() == 0 || len(pt.Parts) < 3 {
		return fmt.Errorf("searchthru: uneven workload did not partition (%d parts, %d cut)", len(pt.Parts), pt.NumCut())
	}

	type key struct {
		cost  float64
		flips int64
	}
	var want key
	var wantState []bool
	first := true
	workerCounts := []int{1, 2, 4, 8}
	for _, barrier := range []bool{true, false} {
		name := "balanced"
		if barrier {
			name = "barrier (lesion)"
		}
		row := []string{"schedule", name}
		for _, w := range workerCounts {
			disk := storage.NewMemDisk()
			d := db.Open(db.Config{Disk: disk, BufferPoolPages: 8})
			store, err := search.StorePartitions(d, pt, "thru")
			if err != nil {
				return err
			}
			if err := d.Pool().FlushAll(); err != nil {
				return err
			}
			disk.SetLatency(20 * s.DiskLatency)
			start := time.Now()
			res, err := search.GaussSeidel(ctx, pt, search.GaussSeidelOptions{
				Base:         search.Options{MaxFlips: 2000, Seed: 7},
				Rounds:       3,
				Parallelism:  w,
				Clauses:      store,
				ClassBarrier: barrier,
			})
			if err != nil {
				return err
			}
			dur := time.Since(start)
			got := key{res.BestCost, res.Flips}
			if first {
				want, wantState, first = got, res.Best, false
			} else if got != want || !boolsEqual(res.Best, wantState) {
				return fmt.Errorf("searchthru: %s @%d workers diverges (cost %v flips %d, want %v/%d)",
					name, w, got.cost, got.flips, want.cost, want.flips)
			}
			row = append(row, fmtDur(dur))
		}
		tab.Rows = append(tab.Rows, append(row[:2:2],
			fmt.Sprintf("1w %s / 2w %s / 4w %s / 8w %s", row[2], row[3], row[4], row[5]),
			"bit-identical enforced"))
	}
	return nil
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// serveBatchLeg stacks identical queries behind an occupied execution slot
// and requires the server to answer all but one of them by absorbing the
// single leader run, every answer bit-identical to the direct Engine call.
func serveBatchLeg(ctx context.Context, tab *Table) error {
	// A contradictory program keeps the violated set non-empty, so the
	// blocker query reliably spins through its whole flip budget while the
	// identical followers stack up in the queue.
	prog, err := tuffy.LoadProgramString(`
thing = {A, B, C, D, E, F, G, H}
p(thing)
1 p(x)
1 !p(x)
`)
	if err != nil {
		return err
	}
	eng, err := tuffy.Open(prog, mln.NewEvidence(prog), tuffy.EngineConfig{MemoEntries: -1})
	if err != nil {
		return err
	}
	if err := eng.Ground(ctx); err != nil {
		return err
	}
	req := tuffy.Request{Options: tuffy.InferOptions{MaxFlips: 500, Seed: 6}}
	want, err := eng.InferMAP(ctx, req.Options)
	if err != nil {
		return err
	}

	const followers = 6
	srv, err := tuffy.Serve(tuffy.ServerConfig{MaxInFlight: 1, MaxQueue: 64, CacheEntries: -1}, eng)
	if err != nil {
		return err
	}
	defer srv.Close()
	blockerDone := make(chan error, 1)
	go func() {
		_, err := srv.InferMAP(ctx, tuffy.Request{Options: tuffy.InferOptions{MaxFlips: 500_000, Seed: 1}})
		blockerDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().InFlight == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	errs := make(chan error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := srv.InferMAP(ctx, req)
			if err != nil {
				errs <- fmt.Errorf("searchthru: batched query %d: %w", i, err)
				return
			}
			if res.Cost != want.Cost || res.Flips != want.Flips || !boolsEqual(res.State, want.State) {
				errs <- fmt.Errorf("searchthru: batched query %d diverges from direct engine call", i)
			}
		}(i)
	}
	for srv.Metrics().Queued < followers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if q := srv.Metrics().Queued; q != followers {
		return fmt.Errorf("searchthru: staging failed, %d queued of %d", q, followers)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	if err := <-blockerDone; err != nil {
		return err
	}
	m := srv.Metrics()
	if m.Batched != followers-1 {
		return fmt.Errorf("searchthru: Batched = %d, want %d (one leader run for %d identical queries)",
			m.Batched, followers-1, followers)
	}
	tab.Rows = append(tab.Rows, []string{
		"serve-batch",
		fmt.Sprintf("%d identical queued, 1 slot", followers),
		fmt.Sprintf("1 run + %d absorbed", m.Batched),
		"bit-identical enforced",
	})
	return nil
}
