package bench

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"tuffy"
	"tuffy/internal/datagen"
)

// Recovery measures crash-safe warm start (EngineConfig.DataDir) against a
// cold Ground on the IE and RC workloads, through both recovery paths:
//
//   - clean: the engine grounds, commits one update, checkpoints, and is
//     abandoned (crash). The reopen publishes the snapshot's serialized
//     network directly — no table rebuild, no replay. Enforced invariants
//     of the CI bench-smoke job: the warm engine's MAP answer is
//     bit-identical to the pre-crash one, its epoch matches, and the warm
//     open is >= 5x faster than the cold Ground it replaces.
//
//   - replay: the warm engine takes one more committed update (which also
//     exercises lazy table materialization) and is abandoned with that
//     delta still in the WAL. The reopen rebuilds the tables and replays
//     it. Bit-identity and the replay count are enforced; the 5x floor is
//     not — replay pays for the logical rebuild by design.
func Recovery(ctx context.Context, s Scale) (*Table, error) {
	cases := []struct {
		ds   *datagen.Dataset
		pred string
	}{
		{datagen.IE(s.IE), "hint"},
		{datagen.RC(s.RC), "refers"},
	}
	q := tuffy.InferOptions{MaxFlips: 20_000, Seed: 7}

	tab := &Table{
		Title:  "Crash recovery: warm start vs cold ground (bit-identity enforced; >=5x enforced on the clean path)",
		Header: []string{"scenario", "cold ground", "warm open", "speedup", "replayed", "snapshot", "wal", "identical"},
	}

	for _, tc := range cases {
		dir, err := os.MkdirTemp("", "tuffy-recovery-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		eng, err := tuffy.Open(tc.ds.Prog, tc.ds.Ev.Clone(), tuffy.EngineConfig{DataDir: dir})
		if err != nil {
			return nil, fmt.Errorf("recovery: open %s: %w", tc.ds.Name, err)
		}
		runtime.GC()
		coldStart := time.Now()
		if err := eng.Ground(ctx); err != nil {
			return nil, fmt.Errorf("recovery: ground %s: %w", tc.ds.Name, err)
		}
		coldDur := time.Since(coldStart)

		// One committed update, then an explicit checkpoint: the snapshot
		// now covers the exact serving state and the WAL is empty, which is
		// what a graceful shutdown — or any checkpoint cadence boundary —
		// leaves behind.
		delta := datagen.RandomDelta(tc.ds, tc.pred, 8, 77)
		ur, err := eng.UpdateEvidence(ctx, delta)
		if err != nil {
			return nil, fmt.Errorf("recovery: %s update: %w", tc.ds.Name, err)
		}
		if err := eng.Checkpoint(); err != nil {
			return nil, fmt.Errorf("recovery: %s checkpoint: %w", tc.ds.Name, err)
		}
		want, err := eng.InferMAP(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("recovery: %s pre-crash query: %w", tc.ds.Name, err)
		}
		// Crash: abandon the engine without Close — the DataDir is exactly
		// what a killed process leaves behind.

		runtime.GC()
		warmStart := time.Now()
		warm, err := tuffy.Open(tc.ds.Prog, tc.ds.Ev.Clone(), tuffy.EngineConfig{DataDir: dir})
		if err != nil {
			return nil, fmt.Errorf("recovery: reopen %s: %w", tc.ds.Name, err)
		}
		warmDur := time.Since(warmStart)

		st := warm.DurabilityStats()
		if !st.WarmStart {
			return nil, fmt.Errorf("recovery: %s reopen did not warm-start", tc.ds.Name)
		}
		if st.ReplayedDeltas != 0 || warm.Generation() != ur.Epoch {
			return nil, fmt.Errorf("recovery: %s recovered to epoch %d with %d replayed deltas, want epoch %d with 0",
				tc.ds.Name, warm.Generation(), st.ReplayedDeltas, ur.Epoch)
		}
		got, err := warm.InferMAP(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("recovery: %s post-recovery query: %w", tc.ds.Name, err)
		}
		if got.Cost != want.Cost || got.Flips != want.Flips || !sameState(got.State, want.State) {
			return nil, fmt.Errorf("recovery: %s recovered answer diverges from pre-crash (cost %v vs %v, flips %d vs %d)",
				tc.ds.Name, got.Cost, want.Cost, got.Flips, want.Flips)
		}
		speedup := float64(coldDur) / float64(warmDur)
		if speedup < 5 {
			return nil, fmt.Errorf("recovery: %s warm open %v vs cold ground %v (%.1fx < 5x)",
				tc.ds.Name, warmDur, coldDur, speedup)
		}
		tab.Rows = append(tab.Rows, []string{
			tc.ds.Name + " clean", fmtDur(coldDur), fmtDur(warmDur), fmt.Sprintf("%.0fx", speedup),
			"0", fmtBytes(st.SnapshotBytes), fmtBytes(st.WALSizeBytes), "yes",
		})

		// Replay path: a second update materializes the lazily deferred
		// tables on the warm engine and stays in the WAL when the engine is
		// abandoned again.
		delta2 := datagen.RandomDelta(tc.ds, tc.pred, 8, 177)
		ur2, err := warm.UpdateEvidence(ctx, delta2)
		if err != nil {
			return nil, fmt.Errorf("recovery: %s update on warm engine: %w", tc.ds.Name, err)
		}
		want2, err := warm.InferMAP(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("recovery: %s post-update query: %w", tc.ds.Name, err)
		}

		runtime.GC()
		replayStart := time.Now()
		warm2, err := tuffy.Open(tc.ds.Prog, tc.ds.Ev.Clone(), tuffy.EngineConfig{DataDir: dir})
		if err != nil {
			return nil, fmt.Errorf("recovery: second reopen %s: %w", tc.ds.Name, err)
		}
		replayDur := time.Since(replayStart)

		st2 := warm2.DurabilityStats()
		if !st2.WarmStart || st2.ReplayedDeltas != 1 || warm2.Generation() != ur2.Epoch {
			return nil, fmt.Errorf("recovery: %s replay reopen landed at epoch %d with %d replayed deltas, want epoch %d with 1",
				tc.ds.Name, warm2.Generation(), st2.ReplayedDeltas, ur2.Epoch)
		}
		got2, err := warm2.InferMAP(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("recovery: %s post-replay query: %w", tc.ds.Name, err)
		}
		if got2.Cost != want2.Cost || got2.Flips != want2.Flips || !sameState(got2.State, want2.State) {
			return nil, fmt.Errorf("recovery: %s replayed answer diverges from pre-crash (cost %v vs %v, flips %d vs %d)",
				tc.ds.Name, got2.Cost, want2.Cost, got2.Flips, want2.Flips)
		}
		if err := warm2.Close(); err != nil {
			return nil, fmt.Errorf("recovery: %s close: %w", tc.ds.Name, err)
		}
		tab.Rows = append(tab.Rows, []string{
			tc.ds.Name + " +1 delta", fmtDur(coldDur), fmtDur(replayDur), fmt.Sprintf("%.1fx", float64(coldDur)/float64(replayDur)),
			"1", fmtBytes(st2.SnapshotBytes), fmtBytes(st2.WALSizeBytes), "yes",
		})
	}
	return tab, nil
}
