package bench

import (
	"fmt"
	"time"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/grounding"
)

// GroundParallel reports bottom-up grounding wall-clock at 1, 2, 4 and 8
// workers on the datagen workloads. The engine runs with a latency-injected
// disk and a buffer pool smaller than the hot set, so grounding is I/O-bound
// the way it is against a real RDBMS — which is exactly the regime where the
// parallel grounding pipeline overlaps per-clause query I/O. ER is omitted:
// its cubic transitivity rule is one query that dominates the whole phase,
// so per-clause parallelism cannot help it (Amdahl).
//
// The MRF is verified to be identical at every worker count.
func GroundParallel(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Grounding parallelism: wall-clock vs workers (I/O-bound engine)",
		Header: []string{"dataset", "1 worker", "2 workers", "4 workers", "8 workers", "speedup@4"},
	}
	workerCounts := []int{1, 2, 4, 8}
	// IE and RC, as in the paper's own parallelism experiment (Table 7). RC
	// is doubled so its largest relation exceeds the buffer pool and the
	// 1-worker baseline pays real I/O too — the comparison stays apples to
	// apples across worker counts.
	rc := s.RC
	rc.Papers *= 2
	rc.Authors *= 2
	gens := []func() *datagen.Dataset{
		func() *datagen.Dataset { return datagen.IE(s.IE) },
		func() *datagen.Dataset { return datagen.RC(rc) },
	}
	for _, gen := range gens {
		var durs []time.Duration
		var name string
		baseClauses, baseAtoms := -1, -1
		for _, w := range workerCounts {
			ds := gen()
			name = ds.Name
			disk := storage.NewMemDisk()
			disk.SetLatency(4 * s.DiskLatency)
			d := db.Open(db.Config{Disk: disk, BufferPoolPages: 8})
			// BuildTables flushes the pool after loading, so grounding-time
			// evictions are clean page drops, not latency-charged write-backs.
			ts, err := grounding.BuildTables(d, ds.Prog, ds.Ev)
			if err != nil {
				return nil, fmt.Errorf("%s tables: %w", ds.Name, err)
			}
			start := time.Now()
			res, err := grounding.GroundBottomUp(ts, grounding.Options{Workers: w})
			if err != nil {
				return nil, fmt.Errorf("%s grounding (%d workers): %w", ds.Name, w, err)
			}
			durs = append(durs, time.Since(start))
			if baseClauses < 0 {
				baseClauses, baseAtoms = res.Stats.NumClauses, res.Stats.NumUsedAtoms
			} else if res.Stats.NumClauses != baseClauses || res.Stats.NumUsedAtoms != baseAtoms {
				return nil, fmt.Errorf("%s: %d-worker grounding differs (%d/%d clauses, %d/%d atoms)",
					ds.Name, w, res.Stats.NumClauses, baseClauses, res.Stats.NumUsedAtoms, baseAtoms)
			}
		}
		row := []string{name}
		for _, dur := range durs {
			row = append(row, fmtDur(dur))
		}
		row = append(row, fmt.Sprintf("%.1fx", float64(durs[0])/float64(durs[2])))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
