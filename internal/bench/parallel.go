package bench

import (
	"context"
	"fmt"
	"time"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/grounding"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
	"tuffy/internal/search"
)

// GroundParallel reports bottom-up grounding wall-clock at 1, 2, 4 and 8
// workers on the datagen workloads. The engine runs with a latency-injected
// disk and a buffer pool smaller than the hot set, so grounding is I/O-bound
// the way it is against a real RDBMS — which is exactly the regime where the
// parallel grounding pipeline overlaps per-clause query I/O. ER is omitted:
// its cubic transitivity rule is one query that dominates the whole phase,
// so per-clause parallelism cannot help it (Amdahl).
//
// The MRF is verified to be identical at every worker count.
func GroundParallel(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Grounding parallelism: wall-clock vs workers (I/O-bound engine)",
		Header: []string{"dataset", "1 worker", "2 workers", "4 workers", "8 workers", "speedup@4"},
	}
	workerCounts := []int{1, 2, 4, 8}
	// IE and RC, as in the paper's own parallelism experiment (Table 7). RC
	// is doubled so its largest relation exceeds the buffer pool and the
	// 1-worker baseline pays real I/O too — the comparison stays apples to
	// apples across worker counts.
	rc := s.RC
	rc.Papers *= 2
	rc.Authors *= 2
	gens := []func() *datagen.Dataset{
		func() *datagen.Dataset { return datagen.IE(s.IE) },
		func() *datagen.Dataset { return datagen.RC(rc) },
	}
	for _, gen := range gens {
		var durs []time.Duration
		var name string
		baseClauses, baseAtoms := -1, -1
		for _, w := range workerCounts {
			ds := gen()
			name = ds.Name
			disk := storage.NewMemDisk()
			disk.SetLatency(4 * s.DiskLatency)
			d := db.Open(db.Config{Disk: disk, BufferPoolPages: 8})
			// BuildTables flushes the pool after loading, so grounding-time
			// evictions are clean page drops, not latency-charged write-backs.
			ts, err := grounding.BuildTables(d, ds.Prog, ds.Ev)
			if err != nil {
				return nil, fmt.Errorf("%s tables: %w", ds.Name, err)
			}
			start := time.Now()
			res, err := grounding.GroundBottomUp(ctx, ts, grounding.Options{Workers: w})
			if err != nil {
				return nil, fmt.Errorf("%s grounding (%d workers): %w", ds.Name, w, err)
			}
			durs = append(durs, time.Since(start))
			if baseClauses < 0 {
				baseClauses, baseAtoms = res.Stats.NumClauses, res.Stats.NumUsedAtoms
			} else if res.Stats.NumClauses != baseClauses || res.Stats.NumUsedAtoms != baseAtoms {
				return nil, fmt.Errorf("%s: %d-worker grounding differs (%d/%d clauses, %d/%d atoms)",
					ds.Name, w, res.Stats.NumClauses, baseClauses, res.Stats.NumUsedAtoms, baseAtoms)
			}
		}
		row := []string{name}
		for _, dur := range durs {
			row = append(row, fmtDur(dur))
		}
		row = append(row, fmt.Sprintf("%.1fx", float64(durs[0])/float64(durs[2])))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// chainBlocksMRF builds a multi-partition workload: `blocks` dense blocks of
// `atomsPer` atoms each (unit clauses plus a weight-2 equality chain), with
// consecutive blocks joined by one low-weight bridge clause. Algorithm 3
// with beta just above one block's size keeps every block whole and cuts
// exactly the bridges, yielding a path-shaped interaction graph that colors
// with two classes — the shape the paper's partition-aware scheme targets.
func chainBlocksMRF(blocks, atomsPer int) (*mrf.MRF, int) {
	m := mrf.New(blocks * atomsPer)
	add := func(w float64, lits ...mrf.Lit) {
		if err := m.AddClause(w, lits...); err != nil {
			panic(err)
		}
	}
	for b := 0; b < blocks; b++ {
		base := b * atomsPer
		for i := 0; i < atomsPer; i++ {
			a := mrf.AtomID(base + i + 1)
			add(1, a)
			if i > 0 {
				prev := mrf.AtomID(base + i)
				add(2, -prev, a)
				add(2, prev, -a)
			}
		}
		if b > 0 {
			add(0.5, mrf.AtomID(base), mrf.AtomID(base+1)) // bridge to prior block
		}
	}
	// One block's size units: atoms + unit-clause lits + chain lits.
	beta := atomsPer + atomsPer + 4*(atomsPer-1) + 4
	return m, beta
}

// PartParallel reports partition-aware Gauss-Seidel wall-clock at 1, 2, 4
// and 8 workers on a multi-partition workload whose partition clause data is
// disk-resident (Section 3.4's batch regime): every partition visit re-reads
// its clause table through a latency-injected buffer pool smaller than the
// hot set, so rounds are I/O-bound the way out-of-RAM search is against a
// real RDBMS. Partitions within one color class overlap their page I/O;
// conflicting partitions never run together, so the best cost (and the full
// search trajectory) is bit-identical at every worker count — verified here.
func PartParallel(ctx context.Context, s Scale) (*Table, error) {
	const blocks, atomsPer = 8, 100
	m, beta := chainBlocksMRF(blocks, atomsPer)
	pt := partition.Algorithm3(m, beta)
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	coloring := pt.ColorParts()
	t := &Table{
		Title: fmt.Sprintf("Partition search parallelism: %d partitions, %d cut, %d colors (I/O-bound engine)",
			len(pt.Parts), pt.NumCut(), coloring.NumColors()),
		Header: []string{"workload", "1 worker", "2 workers", "4 workers", "8 workers", "speedup@4"},
	}
	workerCounts := []int{1, 2, 4, 8}
	var durs []time.Duration
	baseCost := 0.0
	baseFlips := int64(0)
	for i, w := range workerCounts {
		disk := storage.NewMemDisk()
		d := db.Open(db.Config{Disk: disk, BufferPoolPages: 8})
		store, err := search.StorePartitions(d, pt, "part")
		if err != nil {
			return nil, err
		}
		if err := d.Pool().FlushAll(); err != nil {
			return nil, err
		}
		disk.SetLatency(20 * s.DiskLatency)
		start := time.Now()
		res, err := search.GaussSeidel(ctx, pt, search.GaussSeidelOptions{
			Base:        search.Options{MaxFlips: 2000, Seed: 7},
			Rounds:      3,
			Parallelism: w,
			Clauses:     store,
		})
		if err != nil {
			return nil, err
		}
		durs = append(durs, time.Since(start))
		if i == 0 {
			baseCost, baseFlips = res.BestCost, res.Flips
		} else if res.BestCost != baseCost || res.Flips != baseFlips {
			return nil, fmt.Errorf("partpar: %d-worker result differs (cost %v vs %v, flips %d vs %d)",
				w, res.BestCost, baseCost, res.Flips, baseFlips)
		}
	}
	row := []string{fmt.Sprintf("chain-%dx%d", blocks, atomsPer)}
	for _, dur := range durs {
		row = append(row, fmtDur(dur))
	}
	row = append(row, fmt.Sprintf("%.1fx", float64(durs[0])/float64(durs[2])))
	t.Rows = append(t.Rows, row)
	return t, nil
}
