package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/grounding"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
	"tuffy/internal/search"
)

// mrfFingerprint hashes the grounded MRF — clause weights and literal
// sequences in order, fixed cost, atom count — so two grounding runs can be
// compared for bit-identity without holding both MRFs.
func mrfFingerprint(m *mrf.MRF) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(m.NumAtoms))
	mix(math.Float64bits(m.FixedCost))
	for _, c := range m.Clauses {
		mix(math.Float64bits(c.Weight))
		for _, l := range c.Lits {
			mix(uint64(int64(l)))
		}
		mix(^uint64(0)) // clause separator
	}
	return h
}

// groundOnce builds fresh tables for ds on its own engine and grounds it,
// returning wall-clock and the MRF fingerprint. With ioBound the engine runs
// a latency-injected disk behind a buffer pool smaller than the hot set;
// otherwise it is a plain in-memory engine and grounding is CPU-bound.
func groundOnce(ctx context.Context, s Scale, ds *datagen.Dataset, ioBound bool, opts grounding.Options) (time.Duration, uint64, error) {
	cfg := db.Config{}
	if ioBound {
		disk := storage.NewMemDisk()
		disk.SetLatency(4 * s.DiskLatency)
		cfg = db.Config{Disk: disk, BufferPoolPages: 8}
	}
	d := db.Open(cfg)
	// BuildTables flushes the pool after loading, so grounding-time
	// evictions are clean page drops, not latency-charged write-backs.
	ts, err := grounding.BuildTables(d, ds.Prog, ds.Ev)
	if err != nil {
		return 0, 0, fmt.Errorf("%s tables: %w", ds.Name, err)
	}
	start := time.Now()
	res, err := grounding.GroundBottomUp(ctx, ts, opts)
	if err != nil {
		return 0, 0, fmt.Errorf("%s grounding (%d workers): %w", ds.Name, opts.Workers, err)
	}
	return time.Since(start), mrfFingerprint(res.MRF), nil
}

// GroundParallel reports bottom-up grounding wall-clock at 1, 2, 4 and 8
// workers on the datagen workloads, and the hash-range planner lesion at 4
// workers (grounding.Options.ClauseLevelOnly: whole-clause tasks only).
//
// IE and RC run with a latency-injected disk and a buffer pool smaller than
// the hot set, so grounding is I/O-bound the way it is against a real RDBMS
// — the regime where clause-level parallelism overlaps per-clause query
// I/O. ER runs CPU-bound (no injected latency): its cubic transitivity rule
// compiles to ONE query that dominates the whole phase, so whole-clause
// scheduling cannot speed it up (Amdahl) — the "vs lesion@4" column shows
// what intra-clause hash-range splitting buys on exactly that workload.
//
// The MRF fingerprint is verified identical at every worker count and with
// the lesion on.
func GroundParallel(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Grounding parallelism: wall-clock vs workers (IE/RC I/O-bound, ER CPU-bound)",
		Header: []string{"dataset", "1 worker", "2 workers", "4 workers", "8 workers", "lesion@4", "speedup@4", "vs lesion@4"},
	}
	workerCounts := []int{1, 2, 4, 8}
	// IE and RC, as in the paper's own parallelism experiment (Table 7). RC
	// is doubled so its largest relation exceeds the buffer pool and the
	// 1-worker baseline pays real I/O too — the comparison stays apples to
	// apples across worker counts. ER is doubled so the transitivity join is
	// deep enough that per-range work dwarfs scheduling overhead.
	rc := s.RC
	rc.Papers *= 2
	rc.Authors *= 2
	er := s.ER
	er.Records *= 2
	er.Groups *= 2
	specs := []struct {
		gen     func() *datagen.Dataset
		ioBound bool
	}{
		{func() *datagen.Dataset { return datagen.IE(s.IE) }, true},
		{func() *datagen.Dataset { return datagen.RC(rc) }, true},
		{func() *datagen.Dataset { return datagen.ER(er) }, false},
	}
	for _, spec := range specs {
		var durs []time.Duration
		var name string
		var baseFP uint64
		haveFP := false
		check := func(fp uint64, what string) error {
			if !haveFP {
				baseFP, haveFP = fp, true
			} else if fp != baseFP {
				return fmt.Errorf("%s: %s grounding differs (fingerprint %x vs %x)", name, what, fp, baseFP)
			}
			return nil
		}
		for _, w := range workerCounts {
			ds := spec.gen()
			name = ds.Name
			dur, fp, err := groundOnce(ctx, s, ds, spec.ioBound, grounding.Options{Workers: w})
			if err != nil {
				return nil, err
			}
			durs = append(durs, dur)
			if err := check(fp, fmt.Sprintf("%d-worker", w)); err != nil {
				return nil, err
			}
		}
		lesionDur, fp, err := groundOnce(ctx, s, spec.gen(), spec.ioBound,
			grounding.Options{Workers: 4, ClauseLevelOnly: true})
		if err != nil {
			return nil, err
		}
		if err := check(fp, "lesioned"); err != nil {
			return nil, err
		}
		row := []string{name}
		for _, dur := range durs {
			row = append(row, fmtDur(dur))
		}
		row = append(row, fmtDur(lesionDur))
		row = append(row, fmt.Sprintf("%.1fx", float64(durs[0])/float64(durs[2])))
		row = append(row, fmt.Sprintf("%.1fx", float64(lesionDur)/float64(durs[2])))
		t.Rows = append(t.Rows, row)
		// Invariant (CI bench-smoke): on ER — one cubic clause dominating the
		// phase — the hash-range planner must beat the clause-level lesion by
		// ≥1.3x at 4 workers. Splitting can only pay where ranges actually run
		// concurrently, so the check is gated on hosts with ≥4 CPUs.
		if !spec.ioBound && runtime.NumCPU() >= 4 && float64(lesionDur) < 1.3*float64(durs[2]) {
			return nil, fmt.Errorf("groundpar invariant: %s hash-range planner only %.2fx vs clause-level lesion at 4 workers (want >=1.3x)",
				name, float64(lesionDur)/float64(durs[2]))
		}
	}
	return t, nil
}

// chainBlocksMRF builds a multi-partition workload: `blocks` dense blocks of
// `atomsPer` atoms each (unit clauses plus a weight-2 equality chain), with
// consecutive blocks joined by one low-weight bridge clause. Algorithm 3
// with beta just above one block's size keeps every block whole and cuts
// exactly the bridges, yielding a path-shaped interaction graph that colors
// with two classes — the shape the paper's partition-aware scheme targets.
func chainBlocksMRF(blocks, atomsPer int) (*mrf.MRF, int) {
	m := mrf.New(blocks * atomsPer)
	add := func(w float64, lits ...mrf.Lit) {
		if err := m.AddClause(w, lits...); err != nil {
			panic(err)
		}
	}
	for b := 0; b < blocks; b++ {
		base := b * atomsPer
		for i := 0; i < atomsPer; i++ {
			a := mrf.AtomID(base + i + 1)
			add(1, a)
			if i > 0 {
				prev := mrf.AtomID(base + i)
				add(2, -prev, a)
				add(2, prev, -a)
			}
		}
		if b > 0 {
			add(0.5, mrf.AtomID(base), mrf.AtomID(base+1)) // bridge to prior block
		}
	}
	// One block's size units: atoms + unit-clause lits + chain lits.
	beta := atomsPer + atomsPer + 4*(atomsPer-1) + 4
	return m, beta
}

// PartParallel reports partition-aware Gauss-Seidel wall-clock at 1, 2, 4
// and 8 workers on a multi-partition workload whose partition clause data is
// disk-resident (Section 3.4's batch regime): every partition visit re-reads
// its clause table through a latency-injected buffer pool smaller than the
// hot set, so rounds are I/O-bound the way out-of-RAM search is against a
// real RDBMS. Partitions within one color class overlap their page I/O;
// conflicting partitions never run together, so the best cost (and the full
// search trajectory) is bit-identical at every worker count — verified here.
func PartParallel(ctx context.Context, s Scale) (*Table, error) {
	const blocks, atomsPer = 8, 100
	m, beta := chainBlocksMRF(blocks, atomsPer)
	pt := partition.Algorithm3(m, beta)
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	coloring := pt.ColorParts()
	t := &Table{
		Title: fmt.Sprintf("Partition search parallelism: %d partitions, %d cut, %d colors (I/O-bound engine)",
			len(pt.Parts), pt.NumCut(), coloring.NumColors()),
		Header: []string{"workload", "1 worker", "2 workers", "4 workers", "8 workers", "speedup@4"},
	}
	workerCounts := []int{1, 2, 4, 8}
	var durs []time.Duration
	baseCost := 0.0
	baseFlips := int64(0)
	for i, w := range workerCounts {
		disk := storage.NewMemDisk()
		d := db.Open(db.Config{Disk: disk, BufferPoolPages: 8})
		store, err := search.StorePartitions(d, pt, "part")
		if err != nil {
			return nil, err
		}
		if err := d.Pool().FlushAll(); err != nil {
			return nil, err
		}
		disk.SetLatency(20 * s.DiskLatency)
		start := time.Now()
		res, err := search.GaussSeidel(ctx, pt, search.GaussSeidelOptions{
			Base:        search.Options{MaxFlips: 2000, Seed: 7},
			Rounds:      3,
			Parallelism: w,
			Clauses:     store,
		})
		if err != nil {
			return nil, err
		}
		durs = append(durs, time.Since(start))
		if i == 0 {
			baseCost, baseFlips = res.BestCost, res.Flips
		} else if res.BestCost != baseCost || res.Flips != baseFlips {
			return nil, fmt.Errorf("partpar: %d-worker result differs (cost %v vs %v, flips %d vs %d)",
				w, res.BestCost, baseCost, res.Flips, baseFlips)
		}
	}
	row := []string{fmt.Sprintf("chain-%dx%d", blocks, atomsPer)}
	for _, dur := range durs {
		row = append(row, fmtDur(dur))
	}
	row = append(row, fmt.Sprintf("%.1fx", float64(durs[0])/float64(durs[2])))
	t.Rows = append(t.Rows, row)
	return t, nil
}
