package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tuffy"
	"tuffy/internal/datagen"
)

// Serve measures the admission-controlled serving layer (tuffy.Serve) in
// front of one grounded Engine: sustained throughput and mean latency at
// 1, 4, 16 and 64 concurrent clients, with the result cache off and on.
// Every answer the server produces — scheduled cold or served from cache —
// is verified bit-identical to a direct Engine call with the same options;
// the driver fails on any divergence, rejection, or a cache-on run that
// produced no hits. This is the enforced invariant of the CI bench-smoke
// job: the scheduler must sustain >= 4 concurrent clients with cache-hit
// answers indistinguishable from cold runs.
func Serve(ctx context.Context, s Scale) (*Table, error) {
	ds := datagen.LP(s.LP)
	eng, err := tuffy.Open(ds.Prog, ds.Ev, tuffy.EngineConfig{})
	if err != nil {
		return nil, fmt.Errorf("serve: open %s: %w", ds.Name, err)
	}
	if err := eng.Ground(ctx); err != nil {
		return nil, fmt.Errorf("serve: ground %s: %w", ds.Name, err)
	}

	// The working set: distinct seeds across the three priority lanes.
	// Clients re-issue these round-robin, so with caching on the second
	// pass onward should hit.
	const flips = 4000
	reqs := make([]tuffy.Request, 8)
	for i := range reqs {
		reqs[i] = tuffy.Request{
			Options:  tuffy.InferOptions{Seed: int64(i + 1), MaxFlips: flips},
			Priority: i % 3,
		}
	}

	// Reference answers: the direct Engine calls the served results must
	// reproduce bit for bit.
	type answer struct {
		cost  float64
		flips int64
	}
	key := func(r *tuffy.MAPResult) answer { return answer{r.Cost, r.Flips} }
	want := make([]answer, len(reqs))
	wantStates := make([][]bool, len(reqs))
	for i, r := range reqs {
		res, err := eng.InferMAP(ctx, r.Options)
		if err != nil {
			return nil, fmt.Errorf("serve: reference query %d: %w", i, err)
		}
		want[i] = key(res)
		wantStates[i] = res.State
	}
	sameState := func(a, b []bool) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	tab := &Table{
		Title: fmt.Sprintf("Admission-controlled serving: %s, %d-query working set, %d flips/query, 4 slots",
			ds.Name, len(reqs), flips),
		Header: []string{"clients", "cache", "queries", "wall", "qps", "avg lat", "hits", "identical"},
	}

	const perClient = 6
	for _, cached := range []bool{false, true} {
		for _, clients := range []int{1, 4, 16, 64} {
			cacheEntries := -1
			label := "off"
			if cached {
				cacheEntries = 0 // default-sized cache
				label = "on"
			}
			srv, err := tuffy.Serve(tuffy.ServerConfig{
				MaxInFlight:  4,
				MaxQueue:     4 * 64, // admit every client of the largest fleet
				CacheEntries: cacheEntries,
			}, eng)
			if err != nil {
				return nil, err
			}

			var wg sync.WaitGroup
			errs := make([]error, clients)
			var latNanos atomic.Int64 // client-observed (queue + run + cache)
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for q := 0; q < perClient; q++ {
						i := (c + q) % len(reqs)
						qStart := time.Now()
						res, err := srv.InferMAP(ctx, reqs[i])
						latNanos.Add(time.Since(qStart).Nanoseconds())
						if err != nil {
							errs[c] = fmt.Errorf("client %d query %d: %w", c, i, err)
							return
						}
						if key(res) != want[i] || !sameState(res.State, wantStates[i]) {
							errs[c] = fmt.Errorf("client %d query %d: served answer diverges from direct engine call", c, i)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			m := srv.Metrics()
			srv.Close()
			for _, err := range errs {
				if err != nil {
					return nil, fmt.Errorf("serve (%d clients, cache %s): %w", clients, label, err)
				}
			}
			total := clients * perClient
			if m.Completed+m.Batched+m.CacheHits != int64(total) {
				return nil, fmt.Errorf("serve (%d clients, cache %s): %d completed + %d batched + %d hits != %d issued",
					clients, label, m.Completed, m.Batched, m.CacheHits, total)
			}
			if cached && clients >= 4 && m.CacheHits == 0 {
				return nil, fmt.Errorf("serve (%d clients): cache on but no hits over %d repeat queries", clients, total)
			}
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprint(clients), label, fmt.Sprint(total), fmtDur(elapsed),
				fmtRate(float64(total) / elapsed.Seconds()),
				fmtDur(time.Duration(latNanos.Load() / int64(total))),
				fmt.Sprint(m.CacheHits), "yes",
			})
		}
	}
	return tab, nil
}
