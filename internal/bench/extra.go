package bench

import (
	"context"
	"fmt"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/grounding"
)

// ERPlus reproduces the Section 4.3 scalability claim: on "ER+", twice the
// size of ER, Alchemy exhausts RAM and crashes while Tuffy runs normally.
// We model the paper's 4 GB machine with a proportional cap: the cap is set
// between Alchemy's ER peak and its ER+ peak, so ER fits and ER+ "crashes",
// while Tuffy's search-only footprint stays under the cap on both.
func ERPlus(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Section 4.3: ER+ scalability (simulated RAM cap)",
		Header: []string{"dataset", "Alchemy peak", "Alchemy status", "Tuffy search RAM", "Tuffy status"},
	}
	er := s.ER
	erPlus := er
	erPlus.Records = er.Records * 2

	type row struct {
		name    string
		alchemy int64
		tuffy   int64
	}
	var rows []row
	for _, c := range []struct {
		name string
		cfg  datagen.ERConfig
	}{{"ER", er}, {"ER+", erPlus}} {
		ds := datagen.ER(c.cfg)
		// Ground bottom-up (fast) and compute the Alchemy peak account
		// analytically — running the nested-loop grounder at ER+ scale is
		// exactly what the paper shows to be infeasible.
		bu, err := groundWith(ctx, ds, "bottomup", db.Config{}, grounding.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{
			name:    c.name,
			alchemy: grounding.EstimateTopDownPeak(bu.tables, bu.res),
			tuffy:   bu.res.MRF.ComputeStats().SearchBytes,
		})
	}
	// Cap between Alchemy's ER and ER+ peaks (the paper's 4 GB plays this
	// role for their sizes).
	cap := (rows[0].alchemy + rows[1].alchemy) / 2
	status := func(peak int64) string {
		if peak > cap {
			return "CRASH (exceeds cap)"
		}
		return "ok"
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.name, fmtBytes(r.alchemy), status(r.alchemy),
			fmtBytes(r.tuffy), status(r.tuffy),
		})
	}
	t.Rows = append(t.Rows, []string{"(RAM cap)", fmtBytes(cap), "", "", ""})
	return t, nil
}

// ClosureAblation measures the effect of the lazy-inference active closure
// (Appendix A.3) on grounding output size.
func ClosureAblation(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation: active closure (Appendix A.3)",
		Header: []string{"dataset", "clauses (full)", "clauses (closure)", "kept", "atoms (full)", "atoms (closure)"},
	}
	for _, ds := range s.Datasets() {
		full, err := groundWith(ctx, ds, "bottomup", db.Config{}, grounding.Options{})
		if err != nil {
			return nil, err
		}
		closed, err := groundWith(ctx, ds, "bottomup", db.Config{}, grounding.Options{UseClosure: true})
		if err != nil {
			return nil, err
		}
		keep := float64(closed.res.Stats.NumClauses) / float64(full.res.Stats.NumClauses+1)
		t.Rows = append(t.Rows, []string{
			ds.Name,
			fmt.Sprint(full.res.Stats.NumClauses),
			fmt.Sprint(closed.res.Stats.NumClauses),
			fmt.Sprintf("%.0f%%", keep*100),
			fmt.Sprint(full.res.Stats.NumUsedAtoms),
			fmt.Sprint(closed.res.Stats.NumUsedAtoms),
		})
	}
	return t, nil
}
