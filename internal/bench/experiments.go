package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/db/plan"
	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
	"tuffy/internal/grounding"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
	"tuffy/internal/search"
)

// Table1 reproduces the dataset-statistics table.
func Table1(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Table 1: Dataset statistics",
		Header: []string{"", "LP", "IE", "RC", "ER"},
	}
	dss := s.Datasets()
	rows := map[string][]string{
		"#relations": {}, "#rules": {}, "#entities": {}, "#evidence tuples": {},
		"#query atoms": {}, "#components": {},
	}
	order := []string{"#relations", "#rules", "#entities", "#evidence tuples", "#query atoms", "#components"}
	for _, ds := range dss {
		st := ds.Table1Stats()
		g, err := groundWith(ctx, ds, "bottomup", db.Config{}, grounding.Options{})
		if err != nil {
			return nil, err
		}
		comps := g.res.MRF.Components(false)
		rows["#relations"] = append(rows["#relations"], fmt.Sprint(st.Relations))
		rows["#rules"] = append(rows["#rules"], fmt.Sprint(st.Rules))
		rows["#entities"] = append(rows["#entities"], fmt.Sprint(st.Entities))
		rows["#evidence tuples"] = append(rows["#evidence tuples"], fmt.Sprint(st.EvidenceTuples))
		rows["#query atoms"] = append(rows["#query atoms"], fmt.Sprint(g.res.Stats.NumUsedAtoms))
		rows["#components"] = append(rows["#components"], fmt.Sprint(len(comps)))
	}
	for _, name := range order {
		t.Rows = append(t.Rows, append([]string{name}, rows[name]...))
	}
	return t, nil
}

// Table2 reproduces the grounding-time comparison: Alchemy's top-down
// strategy vs Tuffy's bottom-up RDBMS grounding (paper: Tuffy wins by up to
// 225x on ER).
func Table2(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Table 2: Grounding time",
		Header: []string{"", "LP", "IE", "RC", "ER"},
	}
	alchemy := []string{"Alchemy (top-down)"}
	tuffy := []string{"Tuffy (bottom-up)"}
	speedup := []string{"speedup"}
	for _, ds := range s.Datasets() {
		td, err := groundWith(ctx, ds, "topdown", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		bu, err := groundWith(ctx, ds, "bottomup", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		if err := sameMRFShape(td.res, bu.res); err != nil {
			return nil, fmt.Errorf("%s: grounders disagree: %w", ds.Name, err)
		}
		alchemy = append(alchemy, fmtDur(td.dur))
		tuffy = append(tuffy, fmtDur(bu.dur))
		speedup = append(speedup, fmt.Sprintf("%.1fx", float64(td.dur)/float64(bu.dur)))
	}
	t.Rows = [][]string{alchemy, tuffy, speedup}
	return t, nil
}

func groundOpts() grounding.Options { return grounding.Options{} }

func sameMRFShape(a, b *grounding.Result) error {
	if a.Stats.NumClauses != b.Stats.NumClauses {
		return fmt.Errorf("clause counts %d vs %d", a.Stats.NumClauses, b.Stats.NumClauses)
	}
	if a.Stats.NumUsedAtoms != b.Stats.NumUsedAtoms {
		return fmt.Errorf("atom counts %d vs %d", a.Stats.NumUsedAtoms, b.Stats.NumUsedAtoms)
	}
	return nil
}

// Figure3 reproduces the headline time-cost plots: Alchemy (top-down
// grounding + monolithic WalkSAT) vs Tuffy (bottom-up grounding +
// component-aware search) on all four datasets. Curves are reported as
// sampled best-cost@time points; grounding time is the curve offset as in
// the paper ("each curve begins only when grounding is completed").
func Figure3(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 3: time-cost, Alchemy vs Tuffy",
		Header: []string{"dataset", "system", "ground", "final cost", "curve (cost@t)"},
	}
	for _, ds := range s.Datasets() {
		// Alchemy: top-down + monolithic.
		td, err := groundWith(ctx, ds, "topdown", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		trA := search.NewTracker()
		trA.Offset = td.dur
		if _, err := search.Monolithic(ctx, td.res.MRF, search.Options{MaxFlips: s.Flips, Seed: 1, Tracker: trA}); err != nil {
			return nil, err
		}

		// Tuffy: bottom-up + component-aware.
		bu, err := groundWith(ctx, ds, "bottomup", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		trT := search.NewTracker()
		trT.Offset = bu.dur
		comps := bu.res.MRF.Components(true)
		res, err := search.ComponentAware(ctx, bu.res.MRF, comps, search.ComponentOptions{
			Base: search.Options{MaxFlips: s.Flips, Seed: 1, Tracker: trT},
		})
		if err != nil {
			return nil, err
		}
		finalA := trA.Final()
		t.Rows = append(t.Rows,
			[]string{ds.Name, "Alchemy", fmtDur(td.dur), fmtCost(finalA), fmt.Sprint(curvePoints(trA, 4))},
			[]string{ds.Name, "Tuffy", fmtDur(bu.dur), fmtCost(res.BestCost), fmt.Sprint(curvePoints(trT, 4))},
		)
	}
	return t, nil
}

// Figure4 compares Alchemy vs Tuffy-p (hybrid, no partitioning) vs Tuffy-mm
// (in-database search) on LP and RC.
func Figure4(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 4: Alchemy vs Tuffy-p vs Tuffy-mm",
		Header: []string{"dataset", "system", "ground", "flips", "final cost", "flips/sec"},
	}
	for _, ds := range []*datagen.Dataset{datagen.LP(s.LP), datagen.RC(s.RC)} {
		td, err := groundWith(ctx, ds, "topdown", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		ra, err := search.Monolithic(ctx, td.res.MRF, search.Options{MaxFlips: s.Flips, Seed: 2})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{ds.Name, "Alchemy", fmtDur(td.dur),
			fmt.Sprint(ra.Flips), fmtCost(ra.BestCost), fmtRate(float64(ra.Flips) / ra.Elapsed.Seconds())})

		bu, err := groundWith(ctx, ds, "bottomup", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		rp, err := search.Monolithic(ctx, bu.res.MRF, search.Options{MaxFlips: s.Flips, Seed: 2})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{ds.Name, "Tuffy-p", fmtDur(bu.dur),
			fmt.Sprint(rp.Flips), fmtCost(rp.BestCost), fmtRate(float64(rp.Flips) / rp.Elapsed.Seconds())})

		// Tuffy-mm: same grounding, search in the database with injected
		// disk latency. This is deliberately the scan-based lesion variant —
		// the paper's naive in-DB search; the set-oriented side-table
		// variant is measured against it by the flipbatch experiment.
		disk := storage.NewMemDisk()
		disk.SetLatency(s.DiskLatency)
		dmm := db.Open(db.Config{Disk: disk, BufferPoolPages: 64})
		if err := mrf.Store(bu.res.MRF, dmm, "clauses"); err != nil {
			return nil, err
		}
		rmm, err := search.RDBMSWalkSATScan(ctx, dmm, "clauses", bu.res.MRF.NumAtoms,
			search.Options{MaxFlips: s.MMFlips, Seed: 2})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{ds.Name, "Tuffy-mm", fmtDur(bu.dur),
			fmt.Sprint(rmm.Flips), fmtCost(rmm.BestCost), fmtRate(float64(rmm.Flips) / rmm.Elapsed.Seconds())})
	}
	return t, nil
}

// Table3 reproduces the flipping-rate comparison (paper: Tuffy-p ~1e5/s,
// Tuffy-mm ~1/s — three to five orders of magnitude).
func Table3(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Table 3: Flipping rates (flips/sec)",
		Header: []string{"", "LP", "IE", "RC", "ER"},
	}
	alchemy := []string{"Alchemy (in-mem)"}
	mm := []string{"Tuffy-mm (in-DB)"}
	tp := []string{"Tuffy-p (in-mem)"}
	for _, ds := range s.Datasets() {
		bu, err := groundWith(ctx, ds, "bottomup", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		m := bu.res.MRF
		// Alchemy and Tuffy-p share the in-memory WalkSAT engine; their
		// measured rates differ only by noise (the paper's point is the
		// contrast with Tuffy-mm).
		r1 := search.WalkSAT(ctx, m, search.Options{MaxFlips: s.Flips / 2, Seed: 3})
		alchemy = append(alchemy, fmtRate(r1.FlipRate()))
		r2 := search.WalkSAT(ctx, m, search.Options{MaxFlips: s.Flips / 2, Seed: 4})
		tp = append(tp, fmtRate(r2.FlipRate()))

		disk := storage.NewMemDisk()
		disk.SetLatency(s.DiskLatency)
		dmm := db.Open(db.Config{Disk: disk, BufferPoolPages: 64})
		if err := mrf.Store(m, dmm, "clauses"); err != nil {
			return nil, err
		}
		r3, err := search.RDBMSWalkSATScan(ctx, dmm, "clauses", m.NumAtoms, search.Options{MaxFlips: s.MMFlips, Seed: 3})
		if err != nil {
			return nil, err
		}
		mm = append(mm, fmtRate(r3.FlipRate()))
	}
	t.Rows = [][]string{alchemy, mm, tp}
	return t, nil
}

// Table4 reproduces the space-efficiency comparison: clause table size vs
// the grounder's peak footprint (Alchemy holds everything in RAM; Tuffy
// only needs the search structures).
func Table4(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Table 4: Space efficiency",
		Header: []string{"", "LP", "IE", "RC", "ER"},
	}
	clauseTable := []string{"clause table"}
	alchemyRAM := []string{"Alchemy RAM (peak)"}
	tuffyRAM := []string{"Tuffy-p RAM (search)"}
	ratio := []string{"Alchemy/Tuffy"}
	for _, ds := range s.Datasets() {
		td, err := groundWith(ctx, ds, "topdown", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		bu, err := groundWith(ctx, ds, "bottomup", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		st := bu.res.MRF.ComputeStats()
		clauseTable = append(clauseTable, fmtBytes(st.ClauseBytes))
		alchemyRAM = append(alchemyRAM, fmtBytes(td.res.Stats.PeakBytes))
		tuffyRAM = append(tuffyRAM, fmtBytes(st.SearchBytes))
		ratio = append(ratio, fmt.Sprintf("%.1fx", float64(td.res.Stats.PeakBytes)/float64(st.SearchBytes)))
	}
	t.Rows = [][]string{clauseTable, alchemyRAM, tuffyRAM, ratio}
	return t, nil
}

// Table5 reproduces the partitioning-quality comparison: Tuffy (component-
// aware) vs Tuffy-p (monolithic) at an equal flip budget, with the RAM of
// the largest loaded unit.
func Table5(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Table 5: Tuffy vs Tuffy-p (equal flip budget)",
		Header: []string{"", "LP", "IE", "RC", "ER"},
	}
	comps := []string{"#components"}
	ramP := []string{"Tuffy-p RAM"}
	ramT := []string{"Tuffy RAM"}
	costP := []string{"Tuffy-p cost"}
	costT := []string{"Tuffy cost"}
	for _, ds := range s.Datasets() {
		bu, err := groundWith(ctx, ds, "bottomup", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		m := bu.res.MRF
		cs := m.Components(true)
		comps = append(comps, fmt.Sprint(len(cs)))
		st := m.ComputeStats()
		ramP = append(ramP, fmtBytes(st.SearchBytes))
		// Tuffy loads one component (batch) at a time: peak = largest.
		var maxComp int64
		for _, c := range cs {
			if b := c.MRF.ComputeStats().SearchBytes; b > maxComp {
				maxComp = b
			}
		}
		ramT = append(ramT, fmtBytes(maxComp))

		rp, err := search.Monolithic(ctx, m, search.Options{MaxFlips: s.Flips, Seed: 5})
		if err != nil {
			return nil, err
		}
		costP = append(costP, fmtCost(rp.BestCost))
		rt, err := search.ComponentAware(ctx, m, cs, search.ComponentOptions{
			Base: search.Options{MaxFlips: s.Flips, Seed: 5},
		})
		if err != nil {
			return nil, err
		}
		costT = append(costT, fmtCost(rt.BestCost))
	}
	t.Rows = [][]string{comps, ramP, ramT, costP, costT}
	return t, nil
}

// Figure5 reproduces the component-aware time-cost comparison on IE and RC.
func Figure5(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 5: time-cost, Tuffy vs Tuffy-p (IE, RC)",
		Header: []string{"dataset", "system", "final cost", "curve (cost@t)"},
	}
	for _, ds := range []*datagen.Dataset{datagen.IE(s.IE), datagen.RC(s.RC)} {
		bu, err := groundWith(ctx, ds, "bottomup", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		m := bu.res.MRF
		trP := search.NewTracker()
		rp, err := search.Monolithic(ctx, m, search.Options{MaxFlips: s.Flips, Seed: 6, Tracker: trP})
		if err != nil {
			return nil, err
		}
		trT := search.NewTracker()
		rt, err := search.ComponentAware(ctx, m, m.Components(true), search.ComponentOptions{
			Base: search.Options{MaxFlips: s.Flips, Seed: 6, Tracker: trT},
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows,
			[]string{ds.Name, "Tuffy-p", fmtCost(rp.BestCost), fmt.Sprint(curvePoints(trP, 4))},
			[]string{ds.Name, "Tuffy", fmtCost(rt.BestCost), fmt.Sprint(curvePoints(trT, 4))},
		)
	}
	return t, nil
}

// Figure6 reproduces the memory-budget sweep: Gauss-Seidel search quality
// under three partition size bounds per dataset. The β bounds are chosen as
// fractions of the MRF's total size units (atoms + literals); "RAM" is the
// measured footprint of the largest partition — the peak a batch loader
// must hold, which is what the paper's MB labels denote. The paper's
// shapes: sparse RC keeps improving as β shrinks; LP tolerates a coarse
// split but degrades when cut grows; dense ER pays for any real split.
func Figure6(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 6: memory budgets (Algorithm 3 beta sweep + Gauss-Seidel)",
		Header: []string{"dataset", "beta", "parts", "max part RAM", "cut clauses", "cut frac", "final cost"},
	}
	type dcase struct {
		ds    *datagen.Dataset
		fracs []float64 // of total size units
	}
	cases := []dcase{
		{datagen.RC(s.RC), []float64{1.0, 0.05, 0.01}},
		{datagen.LP(s.LP), []float64{1.0, 0.2, 0.02}},
		{datagen.ER(s.ER), []float64{1.0, 0.02, 0.005}},
	}
	for _, c := range cases {
		bu, err := groundWith(ctx, c.ds, "bottomup", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		m := bu.res.MRF
		st := m.ComputeStats()
		totalUnits := st.NumAtoms + st.NumLiterals
		for _, frac := range c.fracs {
			beta := int(float64(totalUnits) * frac)
			if frac >= 1.0 {
				beta = 0 // unbounded: connected components
			}
			pt := partition.Algorithm3(m, beta)
			var maxPart int64
			for _, p := range pt.Parts {
				if b := p.Bytes(); b > maxPart {
					maxPart = b
				}
			}
			var res *search.ComponentResult
			if pt.NumCut() > 0 {
				res, err = search.GaussSeidel(ctx, pt, search.GaussSeidelOptions{
					Base:   search.Options{MaxFlips: s.Flips / int64(3*len(pt.Parts)+1), Seed: 7},
					Rounds: 3,
				})
			} else {
				comps := partsAsComponents(pt)
				res, err = search.ComponentAware(ctx, m, comps, search.ComponentOptions{
					Base: search.Options{MaxFlips: s.Flips, Seed: 7},
				})
			}
			if err != nil {
				return nil, err
			}
			cutFrac := float64(pt.NumCut()) / float64(len(m.Clauses)+1)
			t.Rows = append(t.Rows, []string{
				c.ds.Name, fmt.Sprint(beta), fmt.Sprint(len(pt.Parts)), fmtBytes(maxPart),
				fmt.Sprint(pt.NumCut()), fmt.Sprintf("%.2f", cutFrac), fmtCost(res.BestCost)})
		}
	}
	return t, nil
}

func partsAsComponents(pt *partition.Partitioning) []*mrf.Component {
	comps := make([]*mrf.Component, len(pt.Parts))
	for i, p := range pt.Parts {
		comps[i] = &mrf.Component{MRF: p.Local, GlobalAtom: p.GlobalAtom}
	}
	return comps
}

// Figure8 reproduces the Example 1 experiment (Appendix B.5): Tuffy's
// component-aware search reaches the optimum of N independent two-atom
// components almost immediately; monolithic search (Alchemy / Tuffy-p)
// stalls above it.
func Figure8(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 8: Example 1 (N independent components)",
		Header: []string{"system", "N", "flips", "final cost", "optimum"},
	}
	n := s.Example1N
	m := datagen.Example1(n)
	opt := float64(n)

	mono, err := search.Monolithic(ctx, m, search.Options{MaxFlips: s.Flips, Seed: 8})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"Tuffy-p/Alchemy", fmt.Sprint(n),
		fmt.Sprint(mono.Flips), fmtCost(mono.BestCost), fmtCost(opt)})

	comp, err := search.ComponentAware(ctx, m, m.Components(false), search.ComponentOptions{
		Base: search.Options{MaxFlips: s.Flips, Seed: 8},
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"Tuffy", fmt.Sprint(n),
		fmt.Sprint(comp.Flips), fmtCost(comp.BestCost), fmtCost(opt)})
	return t, nil
}

// Theorem31 measures hitting times on Example 1 for a sweep of N,
// demonstrating the exponential gap of Theorem 3.1.
func Theorem31(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Theorem 3.1: expected hitting time to optimum, Example 1",
		Header: []string{"N", "component-aware", "monolithic", "gap"},
	}
	for _, n := range []int{2, 4, 6, 8, 10} {
		m := datagen.Example1(n)
		comps := m.Components(false)
		ct := search.ComponentHittingTime(comps, func(int) float64 { return 1 }, 10, 5_000, 9)
		mt := search.HittingTime(m, float64(n), 10, 300_000, 9)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprintf("%.1f", ct), fmt.Sprintf("%.1f", mt),
			fmt.Sprintf("%.1fx", mt/math.Max(ct, 1))})
	}
	return t, nil
}

// Table6 reproduces the grounding lesion study: full optimizer vs fixed
// join order vs nested-loop-only joins (paper: join algorithms, not join
// order, are the key).
func Table6(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Table 6: grounding lesion study (time)",
		Header: []string{"", "LP", "IE", "RC", "ER"},
	}
	full := []string{"full optimizer"}
	fixedOrder := []string{"fixed join order"}
	nlOnly := []string{"fixed join algorithm (NLJ)"}
	for _, ds := range s.Datasets() {
		g1, err := groundWith(ctx, ds, "bottomup", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		full = append(full, fmtDur(g1.dur))
		g2, err := groundWith(ctx, ds, "bottomup", db.Config{Plan: plan.Options{ForceJoinOrder: true}}, groundOpts())
		if err != nil {
			return nil, err
		}
		fixedOrder = append(fixedOrder, fmtDur(g2.dur))
		g3, err := groundWith(ctx, ds, "bottomup", db.Config{Plan: plan.Options{Algorithm: plan.JoinNestedLoopOnly}}, groundOpts())
		if err != nil {
			return nil, err
		}
		nlOnly = append(nlOnly, fmtDur(g3.dur))
		if err := sameMRFShape(g1.res, g3.res); err != nil {
			return nil, fmt.Errorf("%s lesion changed semantics: %w", ds.Name, err)
		}
	}
	t.Rows = [][]string{full, fixedOrder, nlOnly}
	return t, nil
}

// Table7 reproduces the loading + parallelism comparison: per-component
// loading vs FFD batch loading vs batch loading + parallel search, on IE
// and RC. Loading cost is physical: clauses are read back from the RDBMS
// clause table through a latency-injected disk.
func Table7(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:  "Table 7: data loading and parallelism (execution time)",
		Header: []string{"", "IE", "RC"},
	}
	batchRow := []string{"Tuffy-batch (one component at a time)"}
	tuffyRow := []string{"Tuffy (FFD batch loading)"}
	parRow := []string{fmt.Sprintf("Tuffy + parallelism (%d workers)", runtime.NumCPU())}

	for _, ds := range []*datagen.Dataset{datagen.IE(s.IE), datagen.RC(s.RC)} {
		bu, err := groundWith(ctx, ds, "bottomup", db.Config{}, groundOpts())
		if err != nil {
			return nil, err
		}
		m := bu.res.MRF

		// Store clauses with their component id for selective re-loading.
		disk := storage.NewMemDisk()
		disk.SetLatency(s.DiskLatency / 8)
		dl := db.Open(db.Config{Disk: disk, BufferPoolPages: 16})
		comps := m.Components(true)
		if err := storeByComponent(dl, m, comps); err != nil {
			return nil, err
		}
		perCompFlips := int64(2000)

		// Tuffy-batch: load + solve components one by one (one scan each).
		start := time.Now()
		for ci := range comps {
			cm, err := loadComponent(dl, ci)
			if err != nil {
				return nil, err
			}
			search.WalkSAT(ctx, cm, search.Options{MaxFlips: perCompFlips, Seed: 10})
		}
		batchRow = append(batchRow, fmtDur(time.Since(start)))

		// Tuffy: FFD batches, one scan per batch.
		pt := partition.Algorithm3(m, 0)
		batches := partition.FirstFitDecreasing(pt.Parts, totalBytes(pt)/4+1)
		start = time.Now()
		for range batches {
			// One scan of the clause table per batch models sequential I/O.
			if _, err := loadAll(dl); err != nil {
				return nil, err
			}
		}
		for _, c := range comps {
			search.WalkSAT(ctx, c.MRF, search.Options{MaxFlips: perCompFlips, Seed: 10})
		}
		tuffyRow = append(tuffyRow, fmtDur(time.Since(start)))

		// Tuffy + parallelism: batch loading + worker pool.
		start = time.Now()
		for range batches {
			if _, err := loadAll(dl); err != nil {
				return nil, err
			}
		}
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < runtime.NumCPU(); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range work {
					search.WalkSAT(ctx, comps[ci].MRF, search.Options{MaxFlips: perCompFlips, Seed: 10})
				}
			}()
		}
		for ci := range comps {
			work <- ci
		}
		close(work)
		wg.Wait()
		parRow = append(parRow, fmtDur(time.Since(start)))
	}
	t.Rows = [][]string{batchRow, tuffyRow, parRow}
	return t, nil
}

func totalBytes(pt *partition.Partitioning) int64 {
	var total int64
	for _, p := range pt.Parts {
		total += p.Bytes()
	}
	return total
}

// storeByComponent writes clauses tagged with component ids.
func storeByComponent(d *db.DB, m *mrf.MRF, comps []*mrf.Component) error {
	t, err := d.CreateTable("comp_clauses", tuple.NewSchema(
		tuple.Col("comp", tuple.TInt),
		tuple.Col("weight", tuple.TInt),
		tuple.Col("lits", tuple.TIntList),
	))
	if err != nil {
		return err
	}
	for ci, comp := range comps {
		for _, c := range comp.MRF.Clauses {
			lits := make([]int64, len(c.Lits))
			for i, l := range c.Lits {
				lits[i] = int64(l)
			}
			row := tuple.Row{
				tuple.I64(int64(ci)),
				tuple.I64(int64(math.Float64bits(c.Weight))),
				tuple.IntList(lits),
			}
			if err := t.Insert(row); err != nil {
				return err
			}
		}
	}
	return d.Pool().FlushAll()
}

// loadComponent reads one component's clauses back (a full scan with a
// filter — the per-component I/O cost the FFD batching avoids).
func loadComponent(d *db.DB, comp int) (*mrf.MRF, error) {
	rows, err := d.Query(fmt.Sprintf("SELECT weight, lits FROM comp_clauses WHERE comp = %d", comp))
	if err != nil {
		return nil, err
	}
	return rowsToMRF(rows)
}

// loadAll reads the whole clause table once (one batch's sequential scan).
func loadAll(d *db.DB) (*mrf.MRF, error) {
	rows, err := d.Query("SELECT weight, lits FROM comp_clauses")
	if err != nil {
		return nil, err
	}
	return rowsToMRF(rows)
}

func rowsToMRF(rows *db.Rows) (*mrf.MRF, error) {
	maxAtom := int32(0)
	var clauses []mrf.Clause
	for _, row := range rows.Data {
		lits := make([]mrf.Lit, len(row[1].List))
		for i, l := range row[1].List {
			lits[i] = mrf.Lit(l)
			if a := mrf.Atom(mrf.Lit(l)); a > maxAtom {
				maxAtom = a
			}
		}
		clauses = append(clauses, mrf.Clause{
			Weight: math.Float64frombits(uint64(row[0].I)),
			Lits:   lits,
		})
	}
	m := mrf.New(int(maxAtom))
	m.Clauses = clauses
	return m, nil
}
