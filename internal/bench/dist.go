package bench

// The distributed-tier experiment: a coordinator sharding MAP and
// marginal queries over real worker subprocesses (each a re-exec of the
// tuffybench binary speaking the wire protocol on localhost), measuring
// the throughput curve at 0/1/2/4 workers and enforcing the tier's two
// invariants — every sharded answer is bit-identical to the local
// single-engine run at every worker count, and killing a worker mid-run
// fails zero queries. The >=1.5x 4-worker-vs-1-worker MAP throughput
// bound is enforced only on machines with >=4 CPUs: worker processes
// need their own cores for sharding to buy wall-clock time at all.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"tuffy"
	"tuffy/internal/datagen"
	"tuffy/internal/remote"
)

// distWorkerEnv carries the IE dataset spec ("chains,maxchain,fields,seed")
// to a worker subprocess; its presence switches the re-exec'd binary into
// worker mode before flag parsing.
const distWorkerEnv = "TUFFYBENCH_DIST_WORKER"

// distAddrPrefix prefixes the single line a worker subprocess prints once
// it is grounded and listening.
const distAddrPrefix = "TUFFYBENCH_DIST_ADDR "

// MaybeDistWorker turns this process into a dist-experiment worker when
// distWorkerEnv is set: ground the dataset the spec names, serve the wire
// protocol on an ephemeral localhost port, print the address, and run
// until stdin closes (the parent's handle) or the process is killed.
// Returns true if it ran (the caller should exit); false in a normal
// tuffybench invocation.
func MaybeDistWorker() bool {
	spec := os.Getenv(distWorkerEnv)
	if spec == "" {
		return false
	}
	var cfg datagen.IEConfig
	if _, err := fmt.Sscanf(spec, "%d,%d,%d,%d", &cfg.Chains, &cfg.MaxChain, &cfg.Fields, &cfg.Seed); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: bad spec %q: %v\n", spec, err)
		os.Exit(1)
	}
	ds := datagen.IE(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng, err := tuffy.Open(ds.Prog, ds.Ev, tuffy.EngineConfig{MemoEntries: -1})
	if err == nil {
		err = eng.Ground(ctx)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(distAddrPrefix + ln.Addr().String())
	// The parent holds our stdin; EOF means it is done with us (or died) —
	// either way, shut the accept loop down and exit cleanly.
	go func() {
		io.Copy(io.Discard, os.Stdin)
		cancel()
	}()
	if err := remote.NewWorker(eng).Serve(ctx, ln); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: %v\n", err)
		os.Exit(1)
	}
	return true
}

// distWorker is one spawned worker subprocess.
type distWorker struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	addr  string
}

// kill terminates the worker abruptly — the crash the fault-injection
// phase wants, not a graceful shutdown.
func (w *distWorker) kill() {
	w.cmd.Process.Kill()
	w.cmd.Wait()
	w.stdin.Close()
}

func (w *distWorker) stop() {
	w.stdin.Close() // EOF → graceful shutdown
	done := make(chan struct{})
	go func() { w.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		w.cmd.Process.Kill()
		<-done
	}
}

// spawnDistWorker re-execs this binary as a worker and waits for its
// address line.
func spawnDistWorker(ctx context.Context, spec string) (*distWorker, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.CommandContext(ctx, exe)
	cmd.Env = append(os.Environ(), distWorkerEnv+"="+spec)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &distWorker{cmd: cmd, stdin: stdin}
	lines := bufio.NewScanner(stdout)
	deadline := time.AfterFunc(2*time.Minute, func() { cmd.Process.Kill() })
	defer deadline.Stop()
	for lines.Scan() {
		if s, ok := strings.CutPrefix(lines.Text(), distAddrPrefix); ok {
			w.addr = s
			return w, nil
		}
	}
	w.kill()
	return nil, fmt.Errorf("worker subprocess exited before reporting its address")
}

// Dist runs the distributed-tier experiment. See the package comment at
// the top of this file for what it measures and enforces.
func Dist(ctx context.Context, s Scale) (*Table, error) {
	ds := datagen.IE(s.IE)
	// Zero fields ride along; the worker's datagen.IE applies the same
	// defaults this side's did.
	spec := fmt.Sprintf("%d,%d,%d,%d", s.IE.Chains, s.IE.MaxChain, s.IE.Fields, s.IE.Seed)

	// The memo would let repeated seeds answer from cache on whichever side
	// warmed up first, turning the throughput rows into memo-hit noise;
	// every engine in this experiment runs without one (the handshake's
	// config fingerprint requires coordinator and workers to agree).
	eng, err := tuffy.Open(ds.Prog, ds.Ev, tuffy.EngineConfig{MemoEntries: -1})
	if err != nil {
		return nil, fmt.Errorf("dist: open %s: %w", ds.Name, err)
	}
	if err := eng.Ground(ctx); err != nil {
		return nil, fmt.Errorf("dist: ground %s: %w", ds.Name, err)
	}

	// The workload: distinct-seed MAP queries plus one marginal, so every
	// run exercises both shard kinds. Cache stays off throughout — each
	// query must run for real for throughput (and identity) to mean
	// anything.
	// Flip budget sized so per-query search time dominates the wire
	// overhead of a shard dispatch by orders of magnitude — the scaling
	// rows measure search distribution, not codec throughput.
	const queries = 6
	const flips = 2_000_000
	mapOpts := make([]tuffy.InferOptions, queries)
	for i := range mapOpts {
		mapOpts[i] = tuffy.InferOptions{MaxFlips: flips, Seed: int64(i + 1)}
	}
	margOpts := tuffy.InferOptions{Samples: 30, Seed: 5}

	wantMAP := make([]*tuffy.MAPResult, queries)
	start := time.Now()
	for i, o := range mapOpts {
		r, err := eng.InferMAP(ctx, o)
		if err != nil {
			return nil, fmt.Errorf("dist: reference query %d: %w", i, err)
		}
		if r.Partitions < 2 {
			return nil, fmt.Errorf("dist: IE workload should decompose, got %d partitions", r.Partitions)
		}
		wantMAP[i] = r
	}
	localWall := time.Since(start)
	wantMarg, err := eng.InferMarginal(ctx, margOpts)
	if err != nil {
		return nil, fmt.Errorf("dist: reference marginal: %w", err)
	}

	sameMAP := func(a, b *tuffy.MAPResult) bool {
		if a.Cost != b.Cost || a.Flips != b.Flips || len(a.State) != len(b.State) {
			return false
		}
		for i := range a.State {
			if a.State[i] != b.State[i] {
				return false
			}
		}
		return true
	}
	sameMarg := func(a, b *tuffy.MarginalResult) bool {
		if len(a.Probs) != len(b.Probs) {
			return false
		}
		for i := range a.Probs {
			if a.Probs[i].P != b.Probs[i].P {
				return false
			}
		}
		return true
	}

	// Spawn the full worker fleet once; each worker-count run serves with a
	// prefix of the fleet.
	const fleet = 4
	var pool []*distWorker
	defer func() {
		for _, w := range pool {
			w.stop()
		}
	}()
	for i := 0; i < fleet; i++ {
		w, err := spawnDistWorker(ctx, spec)
		if err != nil {
			return nil, fmt.Errorf("dist: spawn worker %d: %w", i, err)
		}
		pool = append(pool, w)
	}

	tab := &Table{
		Title: fmt.Sprintf("Distributed sharding: %s, %d MAP queries x %d flips + 1 marginal, worker subprocesses on localhost",
			ds.Name, queries, flips),
		Header: []string{"workers", "wall", "qps", "speedup vs local", "identical", "killed mid-run", "failures"},
	}
	tab.Rows = append(tab.Rows, []string{
		"0 (local)", fmtDur(localWall), fmtRate(float64(queries) / localWall.Seconds()), "1.00x", "yes", "-", "0",
	})

	serveWith := func(n int) (*tuffy.Server, error) {
		addrs := make([]string, 0, n)
		for _, w := range pool[:n] {
			addrs = append(addrs, w.addr)
		}
		srv, err := tuffy.Serve(tuffy.ServerConfig{
			CacheEntries:     -1,
			Workers:          addrs,
			WorkerProbeEvery: 50 * time.Millisecond,
		}, eng)
		if err != nil {
			return nil, err
		}
		// Wait for every worker to enter membership, so the measured run
		// shards from the first query.
		deadline := time.Now().Add(30 * time.Second)
		for {
			healthy := 0
			for _, ws := range srv.Workers() {
				if ws.Healthy {
					healthy++
				}
			}
			if healthy == n {
				return srv, nil
			}
			if time.Now().After(deadline) {
				srv.Close()
				return nil, fmt.Errorf("only %d/%d workers joined", healthy, n)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	walls := map[int]time.Duration{}
	for _, n := range []int{1, 2, 4} {
		srv, err := serveWith(n)
		if err != nil {
			return nil, fmt.Errorf("dist (%d workers): %w", n, err)
		}
		start := time.Now()
		for i, o := range mapOpts {
			r, err := srv.InferMAP(ctx, tuffy.Request{Options: o})
			if err != nil {
				srv.Close()
				return nil, fmt.Errorf("dist (%d workers): query %d: %w", n, i, err)
			}
			if !sameMAP(r, wantMAP[i]) {
				srv.Close()
				return nil, fmt.Errorf("dist (%d workers): query %d diverges from the local run", n, i)
			}
		}
		wall := time.Since(start)
		walls[n] = wall
		marg, err := srv.InferMarginal(ctx, tuffy.Request{Options: margOpts})
		if err != nil {
			srv.Close()
			return nil, fmt.Errorf("dist (%d workers): marginal: %w", n, err)
		}
		if !sameMarg(marg, wantMarg) {
			srv.Close()
			return nil, fmt.Errorf("dist (%d workers): marginal diverges from the local run", n)
		}
		srv.Close()
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(n), fmtDur(wall), fmtRate(float64(queries) / wall.Seconds()),
			fmt.Sprintf("%.2fx", localWall.Seconds()/wall.Seconds()), "yes", "-", "0",
		})
	}

	// Fault-injection phase: all four workers serving, one killed (SIGKILL,
	// not a graceful stop) while queries flow. Zero failures allowed; every
	// answer still bit-identical.
	srv, err := serveWith(fleet)
	if err != nil {
		return nil, fmt.Errorf("dist (kill phase): %w", err)
	}
	failures := 0
	killed := false
	killStart := time.Now()
	for round := 0; round < 2; round++ {
		for i, o := range mapOpts {
			if round == 0 && i == 1 {
				pool[0].kill()
				killed = true
			}
			r, err := srv.InferMAP(ctx, tuffy.Request{Options: o})
			if err != nil {
				failures++
				continue
			}
			if !sameMAP(r, wantMAP[i]) {
				srv.Close()
				return nil, fmt.Errorf("dist (kill phase): query %d diverges after worker kill", i)
			}
		}
	}
	killWall := time.Since(killStart)
	srv.Close()
	pool = pool[1:] // the killed worker needs no stop()
	if !killed {
		return nil, fmt.Errorf("dist: kill phase never killed a worker")
	}
	if failures > 0 {
		return nil, fmt.Errorf("dist: %d queries failed after a worker was killed mid-run; want 0", failures)
	}
	tab.Rows = append(tab.Rows, []string{
		"4 -> 3", fmtDur(killWall), fmtRate(float64(2*queries) / killWall.Seconds()), "-", "yes", "yes", "0",
	})

	// The scaling bound needs real cores: worker subprocesses pinned to a
	// single CPU time-share with the coordinator and cannot buy wall-clock.
	if runtime.NumCPU() >= 4 {
		if sp := walls[1].Seconds() / walls[4].Seconds(); sp < 1.5 {
			return nil, fmt.Errorf("dist: 4-worker MAP throughput only %.2fx the 1-worker run; want >= 1.5x", sp)
		}
	}
	return tab, nil
}
