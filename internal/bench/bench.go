// Package bench contains the experiment drivers that regenerate every table
// and figure of the Tuffy paper's evaluation (Section 4 and appendices).
// Each driver is used both by cmd/tuffybench (human-readable output) and by
// the root bench_test.go (go test -bench). docs/BENCHMARKS.md maps each
// experiment to what it measures and the invariants it enforces.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/grounding"
	"tuffy/internal/search"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render pretty-prints the table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// Scale controls experiment sizes so the suite finishes in seconds by
// default. Full scale (cmd/tuffybench -full) is ~10x larger.
type Scale struct {
	RC datagen.RCConfig
	IE datagen.IEConfig
	LP datagen.LPConfig
	ER datagen.ERConfig
	// Flips is the total search budget for time-cost experiments.
	Flips int64
	// MMFlips is the (much smaller) budget for in-database search.
	MMFlips int64
	// DiskLatency injected per page access for I/O-sensitive experiments.
	DiskLatency time.Duration
	// Example1N is the component count for Figure 8 / Theorem 3.1.
	Example1N int
}

// DefaultScale keeps every experiment under a few seconds.
func DefaultScale() Scale {
	return Scale{
		RC:          datagen.RCConfig{Papers: 300, Authors: 120, Categories: 5, Clusters: 60, Seed: 11},
		IE:          datagen.IEConfig{Chains: 500, Seed: 12},
		LP:          datagen.LPConfig{Profs: 10, Students: 40, Courses: 24, Seed: 13},
		ER:          datagen.ERConfig{Records: 45, Groups: 12, Seed: 14},
		Flips:       200_000,
		MMFlips:     30,
		DiskLatency: 50 * time.Microsecond,
		Example1N:   400,
	}
}

// FullScale is closer to the paper's sizes (minutes, not hours).
func FullScale() Scale {
	return Scale{
		RC:          datagen.RCConfig{Papers: 1200, Authors: 500, Categories: 8, Clusters: 200, Seed: 11},
		IE:          datagen.IEConfig{Chains: 3000, Seed: 12},
		LP:          datagen.LPConfig{Profs: 15, Students: 90, Courses: 60, Seed: 13},
		ER:          datagen.ERConfig{Records: 90, Groups: 25, Seed: 14},
		Flips:       2_000_000,
		MMFlips:     100,
		DiskLatency: 100 * time.Microsecond,
		Example1N:   1000,
	}
}

// Datasets instantiates the four benchmark datasets at this scale.
func (s Scale) Datasets() []*datagen.Dataset {
	return []*datagen.Dataset{
		datagen.LP(s.LP),
		datagen.IE(s.IE),
		datagen.RC(s.RC),
		datagen.ER(s.ER),
	}
}

// grounded holds one dataset grounded by one strategy.
type grounded struct {
	ds     *datagen.Dataset
	db     *db.DB
	tables *grounding.TableSet
	res    *grounding.Result
	dur    time.Duration
}

// groundWith builds tables and grounds with the given strategy ("bottomup"
// or "topdown"), timing the whole grounding phase.
func groundWith(ctx context.Context, ds *datagen.Dataset, strategy string, dbCfg db.Config, opts grounding.Options) (*grounded, error) {
	d := db.Open(dbCfg)
	start := time.Now()
	ts, err := grounding.BuildTables(d, ds.Prog, ds.Ev)
	if err != nil {
		return nil, fmt.Errorf("%s tables: %w", ds.Name, err)
	}
	var res *grounding.Result
	if strategy == "topdown" {
		res, err = grounding.GroundTopDown(ctx, ts, opts)
	} else {
		res, err = grounding.GroundBottomUp(ctx, ts, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("%s %s grounding: %w", ds.Name, strategy, err)
	}
	return &grounded{ds: ds, db: d, tables: ts, res: res, dur: time.Since(start)}, nil
}

// fmtDur renders a duration in ms with 1 decimal.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fmtCost(c float64) string {
	if c == 0 {
		c = 0 // normalize -0.0
	}
	return fmt.Sprintf("%.1f", c)
}

func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2gM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.3gK", r/1e3)
	default:
		return fmt.Sprintf("%.3g", r)
	}
}

// curvePoints samples a tracker at fractions of its span for compact
// "figure" rows.
func curvePoints(tr *search.Tracker, samples int) []string {
	pts := tr.Points()
	if len(pts) == 0 {
		return []string{"(no points)"}
	}
	maxT := pts[len(pts)-1].Elapsed
	out := make([]string, 0, samples)
	for i := 1; i <= samples; i++ {
		at := time.Duration(int64(maxT) * int64(i) / int64(samples))
		out = append(out, fmt.Sprintf("%s@%s", fmtCost(tr.CostAt(at)), fmtDur(at)))
	}
	return out
}
