package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"tuffy"
	"tuffy/internal/datagen"
	"tuffy/internal/mln"
)

// IncGround measures incremental re-grounding (Engine.UpdateEvidence)
// against a full Ground over the merged evidence, sweeping delta sizes of
// 0.1%, 1% and 10% of the mutated predicate's evidence on the IE and RC
// workloads. For every point the driver verifies the updated engine's MAP
// answer bit-identical to a freshly grounded engine's, and that applying
// the update's Inverse returns the engine to its baseline answer. Enforced
// invariants of the CI bench-smoke job: bit-identity at every delta size,
// >= 5x wall-clock advantage over a full re-ground at deltas <= 1%, and
// component-memo survival (the post-update query must serve untouched
// components as memo hits, not re-search them).
func IncGround(ctx context.Context, s Scale) (*Table, error) {
	cases := []struct {
		ds   *datagen.Dataset
		pred string
	}{
		{datagen.IE(s.IE), "hint"},
		{datagen.RC(s.RC), "refers"},
	}
	q := tuffy.InferOptions{MaxFlips: 20_000, Seed: 7}

	tab := &Table{
		Title:  "Incremental grounding vs full re-ground (UpdateEvidence, bit-identity enforced)",
		Header: []string{"dataset", "delta", "ops", "rerun", "full ground", "update", "speedup", "parts kept", "memo hits", "identical"},
	}

	for _, tc := range cases {
		eng, err := tuffy.Open(tc.ds.Prog, tc.ds.Ev.Clone(), tuffy.EngineConfig{})
		if err != nil {
			return nil, fmt.Errorf("incground: open %s: %w", tc.ds.Name, err)
		}
		if err := eng.Ground(ctx); err != nil {
			return nil, fmt.Errorf("incground: ground %s: %w", tc.ds.Name, err)
		}
		base, err := eng.InferMAP(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("incground: %s baseline query: %w", tc.ds.Name, err)
		}

		pred, ok := tc.ds.Prog.Predicate(tc.pred)
		if !ok {
			return nil, fmt.Errorf("incground: %s has no predicate %s", tc.ds.Name, tc.pred)
		}
		predRows := 0
		tc.ds.Ev.ForEach(pred, func([]int32, mln.Truth) { predRows++ })

		for pi, pct := range []float64{0.001, 0.01, 0.10} {
			n := int(pct * float64(predRows))
			if n < 1 {
				n = 1
			}
			delta := datagen.RandomDelta(tc.ds, tc.pred, n, int64(1000+pi))

			// Full-re-ground baseline: a fresh engine over the merged evidence,
			// timing only its Ground (the work UpdateEvidence avoids).
			merged := tc.ds.Ev.Clone()
			if _, err := merged.Apply(delta); err != nil {
				return nil, fmt.Errorf("incground: %s merge: %w", tc.ds.Name, err)
			}
			fresh, err := tuffy.Open(tc.ds.Prog, merged, tuffy.EngineConfig{})
			if err != nil {
				return nil, fmt.Errorf("incground: open %s: %w", tc.ds.Name, err)
			}
			runtime.GC() // fence: don't charge leftover garbage to the timed ground
			fullStart := time.Now()
			if err := fresh.Ground(ctx); err != nil {
				return nil, fmt.Errorf("incground: %s fresh ground: %w", tc.ds.Name, err)
			}
			fullDur := time.Since(fullStart)

			h0 := eng.MemoStats().Hits
			// Same fence before the timed update: grounding the baseline engine
			// just allocated heavily, and GC assists would otherwise charge that
			// debt to the first allocations of the update we are measuring.
			runtime.GC()
			ur, err := eng.UpdateEvidence(ctx, delta)
			if err != nil {
				return nil, fmt.Errorf("incground: %s %.1f%% update: %w", tc.ds.Name, 100*pct, err)
			}

			got, err := eng.InferMAP(ctx, q)
			if err != nil {
				return nil, err
			}
			want, err := fresh.InferMAP(ctx, q)
			if err != nil {
				return nil, err
			}
			if got.Cost != want.Cost || got.Flips != want.Flips || !sameState(got.State, want.State) {
				return nil, fmt.Errorf("incground: %s %.1f%% delta: updated answer diverges from fresh ground (cost %v vs %v, flips %d vs %d)",
					tc.ds.Name, 100*pct, got.Cost, want.Cost, got.Flips, want.Flips)
			}
			hits := eng.MemoStats().Hits - h0
			if !ur.Identical && hits == 0 {
				return nil, fmt.Errorf("incground: %s %.1f%% delta: no memo hits on the post-update query (memo did not survive the epoch swap)",
					tc.ds.Name, 100*pct)
			}

			speedup := float64(fullDur) / float64(ur.UpdateTime)
			if pct <= 0.01 && !ur.Identical && speedup < 5 {
				return nil, fmt.Errorf("incground: %s %.1f%% delta: update %v vs full ground %v (%.1fx < 5x)",
					tc.ds.Name, 100*pct, ur.UpdateTime, fullDur, speedup)
			}

			// Undo and verify the engine is back at its baseline answer, so
			// the next delta size starts from the same evidence.
			if _, err := eng.UpdateEvidence(ctx, ur.Inverse); err != nil {
				return nil, fmt.Errorf("incground: %s inverse: %w", tc.ds.Name, err)
			}
			back, err := eng.InferMAP(ctx, q)
			if err != nil {
				return nil, err
			}
			if back.Cost != base.Cost || back.Flips != base.Flips || !sameState(back.State, base.State) {
				return nil, fmt.Errorf("incground: %s %.1f%% delta: inverse did not restore the baseline answer", tc.ds.Name, 100*pct)
			}

			tab.Rows = append(tab.Rows, []string{
				tc.ds.Name, fmt.Sprintf("%.1f%%", 100*pct), fmt.Sprint(delta.Len()),
				fmt.Sprintf("%d/%d", ur.ClausesRerun, ur.ClausesTotal),
				fmtDur(fullDur), fmtDur(ur.UpdateTime), fmt.Sprintf("%.0fx", speedup),
				fmt.Sprint(ur.PartsReused), fmt.Sprint(hits), "yes",
			})
		}
	}
	return tab, nil
}

func sameState(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
