package bench

import (
	"context"
	"fmt"
	"time"

	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/mrf"
	"tuffy/internal/search"
)

// FlipBatch measures the set-oriented in-database search (inverted-index +
// violated-clause side table, maintained incrementally per flip) against
// the scan-based Tuffy-mm variant it replaces, on a latency-injected disk
// with a buffer pool sized to hold the search's hot set but not the clause
// table — the regime of the paper's Table 3 / Figure 4 collapse. Both
// variants run the identical flip budget and must report the identical
// best cost (they are bit-identical searches); the driver fails if they
// diverge or if the side-table flip loop does not cut physical page reads
// per flip by at least 5x.
func FlipBatch(ctx context.Context, s Scale) (*Table, error) {
	const blocks, atomsPer = 8, 400
	m, _ := chainBlocksMRF(blocks, atomsPer)

	type run struct {
		variant   string
		setup     time.Duration
		res       *search.Result
		loopReads int64
	}

	newEngine := func() (*db.DB, *storage.MemDisk, error) {
		disk := storage.NewMemDisk()
		d := db.Open(db.Config{Disk: disk, BufferPoolPages: 32})
		if err := mrf.Store(m, d, "clauses"); err != nil {
			return nil, nil, err
		}
		if err := d.Pool().FlushAll(); err != nil {
			return nil, nil, err
		}
		disk.SetLatency(s.DiskLatency)
		return d, disk, nil
	}
	opts := search.Options{MaxFlips: s.MMFlips, Seed: 9}

	// Scan-based variant: every flip rescans the clause table.
	dScan, diskScan, err := newEngine()
	if err != nil {
		return nil, err
	}
	diskScan.ResetStats()
	scanRes, err := search.RDBMSWalkSATScan(ctx, dScan, "clauses", m.NumAtoms, opts)
	if err != nil {
		return nil, err
	}
	scan := run{variant: "scan (per-flip rescan)", res: scanRes, loopReads: diskScan.Stats().Reads}

	// Side-table variant: staged so the flip loop meters on its own.
	dSide, diskSide, err := newEngine()
	if err != nil {
		return nil, err
	}
	setupStart := time.Now()
	w, err := search.NewSideWalkSAT(ctx, dSide, "clauses", m.NumAtoms, opts)
	if err != nil {
		return nil, err
	}
	setupDur := time.Since(setupStart)
	diskSide.ResetStats()
	sideRes, err := w.Run(ctx)
	if err != nil {
		return nil, err
	}
	side := run{variant: "side table (incremental)", setup: setupDur, res: sideRes, loopReads: diskSide.Stats().Reads}

	if side.res.BestCost != scan.res.BestCost || side.res.Flips != scan.res.Flips {
		return nil, fmt.Errorf("flipbatch: variants diverge (cost %v vs %v, flips %d vs %d)",
			side.res.BestCost, scan.res.BestCost, side.res.Flips, scan.res.Flips)
	}
	if side.loopReads*5 > scan.loopReads {
		return nil, fmt.Errorf("flipbatch: side-table loop read %d pages vs scan %d — less than the required 5x reduction",
			side.loopReads, scan.loopReads)
	}

	tab := &Table{
		Title: fmt.Sprintf("Set-oriented in-db search: flip batching (chain-%dx%d, %d flips, %v/page)",
			blocks, atomsPer, s.MMFlips, s.DiskLatency),
		Header: []string{"variant", "setup", "flip loop", "flips/sec", "pages/flip", "best cost"},
	}
	perFlip := func(r run) string {
		if r.res.Flips == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", float64(r.loopReads)/float64(r.res.Flips))
	}
	setupCell := func(r run) string {
		if r.setup == 0 {
			return "-"
		}
		return fmtDur(r.setup)
	}
	for _, r := range []run{scan, side} {
		tab.Rows = append(tab.Rows, []string{
			r.variant, setupCell(r), fmtDur(r.res.Elapsed), fmtRate(r.res.FlipRate()),
			perFlip(r), fmtCost(r.res.BestCost),
		})
	}
	tab.Rows = append(tab.Rows, []string{
		"speedup (side vs scan)", "",
		fmt.Sprintf("%.1fx", float64(scan.res.Elapsed)/float64(side.res.Elapsed+1)),
		fmt.Sprintf("%.1fx", side.res.FlipRate()/(scan.res.FlipRate()+1e-12)),
		fmt.Sprintf("%.1fx fewer", float64(scan.loopReads)/float64(side.loopReads+1)),
		"identical",
	})
	return tab, nil
}
