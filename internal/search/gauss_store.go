package search

import (
	"fmt"

	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
)

// PartitionClauseDB keeps every partition's internal clauses in
// per-partition RDBMS tables and serves them back through the buffer pool —
// the disk-resident side of Section 3.4's batch scheme: when the grounded
// MRF exceeds RAM, only the atom assignment and the cut structure stay
// memory-resident while each partition's clause data is re-read from the
// database on every Gauss-Seidel visit. Because the heap scan returns rows
// in insertion order and weights round-trip as IEEE-754 bit patterns, a
// search over loaded clauses is bit-identical to one over the RAM copies.
//
// Concurrent LoadClauses calls from one color class overlap their page I/O
// in the shared buffer pool (the pool reads outside its lock on
// pin-protected frames), which is what lets parallel rounds beat the
// sequential sweep even when the workload is I/O-bound.
type PartitionClauseDB struct {
	tables []*db.Table
}

// StorePartitions writes each partition's internal clauses (in local atom
// ids) into tables named prefix_<i>, replacing previous contents.
func StorePartitions(d *db.DB, pt *partition.Partitioning, prefix string) (*PartitionClauseDB, error) {
	s := &PartitionClauseDB{tables: make([]*db.Table, len(pt.Parts))}
	for pi, p := range pt.Parts {
		name := fmt.Sprintf("%s_%d", prefix, pi)
		if err := mrf.Store(p.Local, d, name); err != nil {
			return nil, fmt.Errorf("search: store partition %d: %w", pi, err)
		}
		t, ok := d.Table(name)
		if !ok {
			return nil, fmt.Errorf("search: partition table %s vanished", name)
		}
		s.tables[pi] = t
	}
	return s, nil
}

// LoadClauses scans partition pi's table back into dst.
func (s *PartitionClauseDB) LoadClauses(pi int, dst []mrf.Clause) ([]mrf.Clause, error) {
	if pi < 0 || pi >= len(s.tables) {
		return dst, fmt.Errorf("search: no partition table %d", pi)
	}
	err := s.tables[pi].ScanRows(func(_ storage.RecordID, row tuple.Row) error {
		c, cerr := mrf.RowClause(row)
		if cerr != nil {
			return cerr
		}
		dst = append(dst, c)
		return nil
	})
	return dst, err
}
