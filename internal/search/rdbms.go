package search

import (
	"context"
	"math"
	"math/rand"
	"time"

	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
	"tuffy/internal/mrf"
)

// RDBMSWalkSAT is the in-database WalkSAT variant (the paper's Tuffy-mm
// setting, Appendix B.2) in its set-oriented form: atom truth values are
// cached as in-memory arrays while clause data stays on disk, but instead
// of rescanning the clause table every flip the search maintains an
// atom→clause inverted-index table and a violated-clause side table inside
// the engine (see sidetable.go). Scans per flip drop from O(|clauses|) to
// O(affected), and the flip sequence, best state and best cost are bit-
// identical to RDBMSWalkSATScan's. Like the engine's other secondary
// indexes, the point indexes backing the lookups live in RAM for the
// duration of the search (O(|clauses|) for the cid index, released when
// the search returns); the clause data, inverted-index chunks and side
// table rows stay disk-resident behind the buffer pool.
//
// A canceled context stops the flip loop promptly; the helper tables are
// dropped as on a normal return and the best-so-far result accompanies
// ErrCanceled.
func RDBMSWalkSAT(ctx context.Context, d *db.DB, clauseTable string, numAtoms int, opts Options) (*Result, error) {
	start := time.Now()
	w, err := NewSideWalkSAT(ctx, d, clauseTable, numAtoms, opts)
	if err != nil {
		return nil, err
	}
	res, err := w.Run(ctx)
	if res != nil {
		res.Elapsed = time.Since(start) // include the setup scans
	}
	return res, err
}

// RDBMSWalkSATScan is the naive in-RDBMS WalkSAT the paper lesions
// (Appendix B.2): every flip pays at least one full scan of the clause
// table through the buffer pool, and a greedy move a second pass scoring
// all candidate atoms. The flipping-rate collapse this causes is the
// paper's Table 3 / Figure 4 observation; injecting per-page latency on the
// engine's disk reproduces the wall-clock gap, and the flipbatch experiment
// measures it against the set-oriented RDBMSWalkSAT.
func RDBMSWalkSATScan(ctx context.Context, d *db.DB, clauseTable string, numAtoms int, opts Options) (*Result, error) {
	return rdbmsWalkSATScan(ctx, d, clauseTable, numAtoms, opts, nil)
}

// rdbmsWalkSATScan is RDBMSWalkSATScan with a test hook observing every
// flip (the equivalence tests compare flip sequences across variants).
func rdbmsWalkSATScan(ctx context.Context, d *db.DB, clauseTable string, numAtoms int, opts Options, onFlip func(flip int64, atom mrf.AtomID) error) (*Result, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	t, ok := d.Table(clauseTable)
	if !ok {
		return nil, errNoTable(clauseTable)
	}

	// Atom states cached in memory (paper: "atoms are cached as in-memory
	// arrays").
	state := make([]bool, numAtoms+1)
	for a := 1; a <= numAtoms; a++ {
		state[a] = rng.Intn(2) == 0
	}
	best := append([]bool(nil), state...)
	bestCost := math.Inf(1)

	res := &Result{HitFlips: -1, BestCost: bestCost}
	start := time.Now()

	scanPick := func() (picked mrf.Clause, have bool, cost float64, hard int, err error) {
		seen := 0
		err = t.ScanRows(func(_ storage.RecordID, row tuple.Row) error {
			c, cerr := mrf.RowClause(row)
			if cerr != nil {
				return cerr
			}
			if !c.ViolatedBy(state) {
				return nil
			}
			if c.IsHard() {
				hard++
				cost += opts.HardWeight
			} else {
				cost += math.Abs(c.Weight)
			}
			seen++
			// Reservoir sampling: uniform choice among violated clauses.
			if rng.Intn(seen) == 0 {
				picked = c
				have = true
			}
			return nil
		})
		return picked, have, cost, hard, err
	}

	for flip := int64(0); flip < opts.MaxFlips; flip++ {
		if ctx.Err() != nil {
			// Every flip here costs a full table scan, so poll each
			// iteration; the best-so-far state accompanies the error.
			res.Best = best
			res.BestCost = bestCost
			res.Elapsed = time.Since(start)
			return res, Canceled(ctx)
		}
		picked, have, cost, hard, err := scanPick()
		if err != nil {
			return nil, err
		}
		reported := cost
		if hard > 0 {
			reported = math.Inf(1)
		}
		if reported < bestCost {
			bestCost = reported
			copy(best, state)
			if opts.Tracker != nil {
				opts.Tracker.Record(bestCost)
			}
		}
		if !have {
			break // no violated clause: optimum reached
		}
		var atom mrf.AtomID
		if rng.Float64() <= opts.NoisyP {
			atom = mrf.Atom(picked.Lits[rng.Intn(len(picked.Lits))])
		} else {
			// Greedy move: score every candidate atom of the picked clause
			// in ONE scan of the clause table, accumulating each
			// candidate's cost delta per row — a clause only changes a
			// candidate's delta if it contains that atom, so one pass
			// replaces the per-candidate full scans (|lits|+1 scans -> 1),
			// the first step of set-oriented in-database search.
			deltas := make([]float64, len(picked.Lits))
			serr := t.ScanRows(func(_ storage.RecordID, row tuple.Row) error {
				c, cerr := mrf.RowClause(row)
				if cerr != nil {
					return cerr
				}
				var w float64
				if c.IsHard() {
					w = opts.HardWeight
				} else {
					w = math.Abs(c.Weight)
				}
				violNow := c.ViolatedBy(state)
				for k, cl := range picked.Lits {
					cand := mrf.Atom(cl)
					if !clauseHasAtom(c, cand) {
						continue
					}
					if violFlip := violatedIfFlipped(c, state, cand); violFlip != violNow {
						if violFlip {
							deltas[k] += w
						} else {
							deltas[k] -= w
						}
					}
				}
				return nil
			})
			if serr != nil {
				return nil, serr
			}
			bestDelta := math.Inf(1)
			atom = mrf.Atom(picked.Lits[0])
			for k, cl := range picked.Lits {
				if deltas[k] < bestDelta {
					bestDelta = deltas[k]
					atom = mrf.Atom(cl)
				}
			}
		}
		state[atom] = !state[atom]
		res.Flips++
		if onFlip != nil {
			if err := onFlip(flip, atom); err != nil {
				return nil, err
			}
		}
	}
	// Final cost check (one more full scan — the set-oriented variant's
	// maintained cost makes this redundant there).
	_, _, cost, hard, err := scanPick()
	if err != nil {
		return nil, err
	}
	reported := cost
	if hard > 0 {
		reported = math.Inf(1)
	}
	if reported < bestCost {
		bestCost = reported
		copy(best, state)
	}

	res.Best = best
	res.BestCost = bestCost
	res.Elapsed = time.Since(start)
	return res, nil
}

// clauseHasAtom reports whether the clause mentions the atom.
func clauseHasAtom(c mrf.Clause, a mrf.AtomID) bool {
	for _, l := range c.Lits {
		if mrf.Atom(l) == a {
			return true
		}
	}
	return false
}

// violatedIfFlipped evaluates the clause's violation status in the state
// with atom a toggled, without mutating the state.
func violatedIfFlipped(c mrf.Clause, state []bool, a mrf.AtomID) bool {
	sat := false
	for _, l := range c.Lits {
		v := state[mrf.Atom(l)]
		if mrf.Atom(l) == a {
			v = !v
		}
		if v == mrf.Pos(l) {
			sat = true
			break
		}
	}
	if c.Weight >= 0 {
		return !sat
	}
	return sat
}

type errNoTable string

func (e errNoTable) Error() string { return "search: no clause table " + string(e) }
