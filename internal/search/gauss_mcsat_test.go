package search

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
)

func TestGaussSeidelReachesExample1Optimum(t *testing.T) {
	m := datagen.Example1(20)
	pt := partition.Algorithm3(m, 0) // components
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := GaussSeidel(context.Background(), pt, GaussSeidelOptions{
		Base:   Options{MaxFlips: 2000, Seed: 37},
		Rounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != 20 {
		t.Fatalf("cost = %v, want 20", res.BestCost)
	}
	if got := m.Cost(res.Best); got != 20 {
		t.Fatalf("returned state cost = %v", got)
	}
}

func TestGaussSeidelWithCutClauses(t *testing.T) {
	// Example 2: two chains with a bridge; split with a small beta so the
	// bridge is cut, then verify Gauss-Seidel still reaches the optimum
	// found by exhaustive search.
	m := datagen.Example2(5) // 10 atoms: exhaustive feasible
	want := OptimalCost(m)
	pt := partition.Algorithm3(m, 40)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := GaussSeidel(context.Background(), pt, GaussSeidelOptions{
		Base:   Options{MaxFlips: 5000, Seed: 41},
		Rounds: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BestCost-want) > 1e-9 {
		t.Fatalf("Gauss-Seidel cost = %v, optimal = %v (cut=%d)", res.BestCost, want, pt.NumCut())
	}
}

func TestGaussSeidelNeverWorseThanInit(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 5; trial++ {
		m := datagen.Example2(4 + rng.Intn(4))
		pt := partition.Algorithm3(m, 30)
		res, err := GaussSeidel(context.Background(), pt, GaussSeidelOptions{
			Base:   Options{MaxFlips: 500, Seed: int64(trial)},
			Rounds: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		initCost := m.Cost(m.NewState())
		if res.BestCost > initCost {
			t.Fatalf("trial %d: Gauss-Seidel %v worse than all-false init %v", trial, res.BestCost, initCost)
		}
	}
}

func TestMCSATSingleAtomMarginal(t *testing.T) {
	// One atom, one clause (a) with weight w: Pr[a] = 1/(1+e^{-w}).
	m := mrf.New(1)
	_ = m.AddClause(1, 1)
	probs, err := MCSAT(context.Background(), m, MCSATOptions{Samples: 4000, BurnIn: 200, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / (1.0 + math.Exp(-1))
	if math.Abs(probs[1]-want) > 0.06 {
		t.Fatalf("Pr[a] = %v, want ~%v", probs[1], want)
	}
}

func TestMCSATHardClauseForcesAtom(t *testing.T) {
	m := mrf.New(2)
	_ = m.AddClause(math.Inf(1), 1) // a must be true
	_ = m.AddClause(1, 2)
	probs, err := MCSAT(context.Background(), m, MCSATOptions{Samples: 600, BurnIn: 50, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	if probs[1] < 0.99 {
		t.Fatalf("hard-constrained atom Pr = %v", probs[1])
	}
	if probs[2] < 0.5 || probs[2] > 0.95 {
		t.Fatalf("soft atom Pr = %v, want in (0.5, 0.95)", probs[2])
	}
}

func TestMCSATNegativeWeightSuppresses(t *testing.T) {
	// (a, -1): worlds with a true cost 1 => Pr[a] = e^{-1}/(1+e^{-1}) ≈ 0.269.
	m := mrf.New(1)
	_ = m.AddClause(-1, 1)
	probs, err := MCSAT(context.Background(), m, MCSATOptions{Samples: 4000, BurnIn: 200, Seed: 59})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-1) / (1 + math.Exp(-1))
	if math.Abs(probs[1]-want) > 0.07 {
		t.Fatalf("Pr[a] = %v, want ~%v", probs[1], want)
	}
}

func TestSampleSATSatisfiesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := mrf.New(6)
	_ = m.AddClause(1, 1, 2)
	_ = m.AddClause(1, -2, 3)
	_ = m.AddClause(1, -3, -4)
	_ = m.AddClause(1, 5, 6)
	init := m.NewState()
	state, ok := SampleSAT(context.Background(), m, init, MCSATOptions{}, rng)
	if !ok {
		t.Fatal("SampleSAT failed on satisfiable set")
	}
	for ci, c := range m.Clauses {
		if !c.SatisfiedBy(state) {
			t.Fatalf("clause %d unsatisfied", ci)
		}
	}
}

func TestRDBMSWalkSATMatchesInMemoryOptimum(t *testing.T) {
	m := datagen.Example1(3)
	d := db.Open(db.Config{})
	if err := mrf.Store(m, d, "clauses"); err != nil {
		t.Fatal(err)
	}
	res, err := RDBMSWalkSAT(context.Background(), d, "clauses", m.NumAtoms, Options{MaxFlips: 400, Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != 3 {
		t.Fatalf("Tuffy-mm cost = %v, want 3", res.BestCost)
	}
	if got := m.Cost(res.Best); got != 3 {
		t.Fatalf("returned state cost = %v", got)
	}
}

func TestRDBMSWalkSATCausesIO(t *testing.T) {
	// Enough clauses that the clause table spans many pages; a 2-page
	// buffer pool must then hit the disk on every per-flip table scan.
	m := datagen.Example1(2000)
	d := db.Open(db.Config{BufferPoolPages: 2})
	if err := mrf.Store(m, d, "clauses"); err != nil {
		t.Fatal(err)
	}
	d.Disk().(interface{ ResetStats() }).ResetStats()
	_, err := RDBMSWalkSAT(context.Background(), d, "clauses", m.NumAtoms, Options{MaxFlips: 3, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	if d.Disk().Stats().Reads == 0 {
		t.Fatal("in-database search performed no physical reads with a tiny buffer pool")
	}
}

func TestRDBMSWalkSATMissingTable(t *testing.T) {
	d := db.Open(db.Config{})
	if _, err := RDBMSWalkSAT(context.Background(), d, "nope", 1, Options{MaxFlips: 1}); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestHittingTimeExample1Small(t *testing.T) {
	// For N=1 the paper says the expected hitting time is <= 4.
	m := datagen.Example1(1)
	h := HittingTime(m, 1, 200, 1000, 73)
	if h > 10 {
		t.Fatalf("N=1 hitting time = %v, paper bound ~4", h)
	}
}
