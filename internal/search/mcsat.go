package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"tuffy/internal/mrf"
)

// MCSATOptions configures marginal inference (Appendix A.5).
type MCSATOptions struct {
	// Samples is the number of MC-SAT sampling rounds.
	Samples int
	// BurnIn rounds are discarded before counting.
	BurnIn int
	// SampleSATFlips bounds each SampleSAT call.
	SampleSATFlips int64
	// SAProb is SampleSAT's probability of a simulated-annealing move (vs.
	// a WalkSAT move); Wei et al. use 0.5.
	SAProb float64
	// SATemp is the annealing temperature.
	SATemp float64
	Seed   int64
}

func (o MCSATOptions) withDefaults() MCSATOptions {
	if o.Samples == 0 {
		o.Samples = 100
	}
	if o.SampleSATFlips == 0 {
		o.SampleSATFlips = 10_000
	}
	if o.SAProb == 0 {
		o.SAProb = 0.5
	}
	if o.SATemp == 0 {
		o.SATemp = 0.5
	}
	return o
}

// MCSAT estimates the marginal probability of each atom being true using
// the MC-SAT algorithm [Poon & Domingos 2006]: starting from a state
// satisfying the hard clauses, each round samples a subset M of the clauses
// currently satisfied (each with probability 1 - e^{-|w|}; hard clauses
// always) and draws a near-uniform satisfying assignment of M with
// SampleSAT. Negative-weight clauses participate through their negation
// semantics: a round keeps them *unsatisfied*.
//
// A canceled context stops sampling at the next round boundary and returns
// ErrCanceled together with the marginals estimated from the samples
// collected so far (all-zero if no post-burn-in sample completed).
func MCSAT(ctx context.Context, m *mrf.MRF, opts MCSATOptions) ([]float64, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Initial state: satisfy hard clauses via WalkSAT.
	init := WalkSAT(ctx, m, Options{MaxFlips: opts.SampleSATFlips, MaxTries: 3, Seed: opts.Seed})
	if ctx.Err() != nil {
		return make([]float64, m.NumAtoms+1), Canceled(ctx)
	}
	if math.IsInf(init.BestCost, 1) && hasHard(m) {
		return nil, fmt.Errorf("search: MC-SAT could not satisfy hard clauses")
	}
	state := append([]bool(nil), init.Best...)

	counts := make([]float64, m.NumAtoms+1)
	total := 0

	for round := 0; round < opts.Samples+opts.BurnIn && ctx.Err() == nil; round++ {
		// Select clause subset M. For a positive clause satisfied by the
		// current state, include it with p = 1 - exp(-w): the next state
		// must keep it satisfied. For a negative clause FALSIFIED by the
		// current state, include its requirement to stay falsified with
		// p = 1 - exp(-|w|); staying falsified means every literal's
		// negation holds, so we add each negated literal as a unit clause.
		var sel []mrf.Clause
		for _, c := range m.Clauses {
			w := c.Weight
			sat := c.SatisfiedBy(state)
			switch {
			case c.IsHard():
				if w > 0 {
					sel = append(sel, mrf.Clause{Weight: 1, Lits: c.Lits})
				}
			case w > 0 && sat:
				if rng.Float64() < 1-math.Exp(-w) {
					sel = append(sel, mrf.Clause{Weight: 1, Lits: c.Lits})
				}
			case w < 0 && !sat:
				if rng.Float64() < 1-math.Exp(w) {
					for _, l := range c.Lits {
						sel = append(sel, mrf.Clause{Weight: 1, Lits: []mrf.Lit{-l}})
					}
				}
			}
		}
		sub := mrf.New(m.NumAtoms)
		sub.Clauses = sel
		next, ok := SampleSAT(ctx, sub, state, opts, rng)
		if ok {
			state = next
		}
		if round >= opts.BurnIn {
			total++
			for a := 1; a <= m.NumAtoms; a++ {
				if state[a] {
					counts[a]++
				}
			}
		}
	}
	probs := make([]float64, m.NumAtoms+1)
	if total > 0 {
		for a := 1; a <= m.NumAtoms; a++ {
			probs[a] = counts[a] / float64(total)
		}
	}
	if ctx.Err() != nil {
		return probs, Canceled(ctx)
	}
	return probs, nil
}

// MCSATComponents runs MC-SAT independently on each connected component and
// merges the marginals. Because the joint distribution factorizes exactly
// over components (cost additivity, Section 3.3), this is not an
// approximation — and each chain mixes over an exponentially smaller state
// space, the marginal-inference analogue of Theorem 3.1. Components are
// sampled in parallel by up to parallelism workers.
//
// A canceled context returns ErrCanceled with the marginals of the
// components that finished sampling (unfinished components report zeros).
func MCSATComponents(ctx context.Context, parent *mrf.MRF, comps []*mrf.Component, opts MCSATOptions, parallelism int) ([]float64, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	probs := make([]float64, parent.NumAtoms+1)
	var mu sync.Mutex
	var firstErr error
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				if ctx.Err() != nil {
					continue // drain; cancellation is reported below
				}
				comp := comps[idx]
				local, err := RunComponentMCSAT(ctx, comp, idx, opts)
				mu.Lock()
				if err != nil && !errors.Is(err, ErrCanceled) && firstErr == nil {
					firstErr = err
				}
				if local != nil {
					for i := 1; i <= comp.MRF.NumAtoms; i++ {
						probs[comp.GlobalAtom[i]] = local[i]
					}
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for i := range comps {
		select {
		case work <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if ctx.Err() != nil {
		return probs, Canceled(ctx)
	}
	return probs, nil
}

// RunComponentMCSAT samples one component of a component-factorized
// marginal query, deriving the component's chain seed from the parent
// seed and the component's canonical index. Like search.RunComponent it
// is the distribution contract: MCSATComponents and the remote worker's
// marginal shard execution call exactly this function, so the sampled
// chain for a component is identical wherever it runs. The returned
// slice is the component-local 1-based marginal vector.
func RunComponentMCSAT(ctx context.Context, comp *mrf.Component, idx int, opts MCSATOptions) ([]float64, error) {
	o := opts
	o.Seed = opts.Seed + int64(idx)*6151
	return MCSAT(ctx, comp.MRF, o)
}

func hasHard(m *mrf.MRF) bool {
	for _, c := range m.Clauses {
		if c.IsHard() {
			return true
		}
	}
	return false
}

// SampleSAT draws a near-uniform satisfying assignment of the clause set
// (all clauses treated as mandatory) by mixing WalkSAT moves with simulated
// annealing moves [Wei, Erenrich, Selman 2004]. It starts from init and
// returns (state, true) when all clauses are satisfied within the flip
// budget, or (init, false) otherwise — including when the context cancels
// the walk early.
func SampleSAT(ctx context.Context, m *mrf.MRF, init []bool, opts MCSATOptions, rng *rand.Rand) ([]bool, bool) {
	opts = opts.withDefaults()
	e := newEngine(m, 1)
	start := make([]bool, m.NumAtoms+1)
	for a := 1; a <= m.NumAtoms; a++ {
		start[a] = rng.Intn(2) == 0
	}
	e.reset(start)
	if m.NumAtoms == 0 {
		return init, true
	}
	for flip := int64(0); flip < opts.SampleSATFlips; flip++ {
		if flip&ctxCheckMask == 0 && ctx.Err() != nil {
			return init, false
		}
		if len(e.viol) == 0 {
			out := make([]bool, len(e.state))
			copy(out, e.state)
			return out, true
		}
		if rng.Float64() < opts.SAProb {
			// Simulated annealing move on a random atom.
			a := mrf.AtomID(1 + rng.Intn(m.NumAtoms))
			delta := e.deltaCost(a)
			if delta <= 0 || rng.Float64() < math.Exp(-delta/opts.SATemp) {
				e.flip(a)
			}
			continue
		}
		// WalkSAT move.
		ci := e.viol[rng.Intn(len(e.viol))]
		lits := e.m.Clauses[ci].Lits
		var a mrf.AtomID
		if rng.Float64() <= 0.5 {
			a = mrf.Atom(lits[rng.Intn(len(lits))])
		} else {
			bestDelta := math.Inf(1)
			for _, l := range lits {
				cand := mrf.Atom(l)
				if d := e.deltaCost(cand); d < bestDelta {
					bestDelta = d
					a = cand
				}
			}
		}
		e.flip(a)
	}
	return init, false
}
