package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
	"tuffy/internal/mrf"
)

// --- workload builders -------------------------------------------------

// softMRF is Example1 plus a few wider soft clauses: all-soft weights.
func softMRF() *mrf.MRF {
	m := datagen.Example1(12)
	for a := 1; a+3 <= m.NumAtoms; a += 3 {
		_ = m.AddClause(1.5, mrf.Lit(a), -mrf.Lit(a+1), mrf.Lit(a+2))
	}
	return m
}

// hardMRF mixes hard constraints with soft clauses.
func hardMRF() *mrf.MRF {
	m := mrf.New(10)
	for a := 1; a <= 10; a++ {
		_ = m.AddClause(1, mrf.Lit(a))
	}
	for a := 1; a < 10; a += 2 {
		_ = m.AddClause(math.Inf(1), -mrf.Lit(a), mrf.Lit(a+1))
	}
	_ = m.AddClause(2, -1, -4)
	_ = m.AddClause(3, 3, -6, 9)
	return m
}

// negMRF includes negative-weight clauses (violated when satisfied) and
// non-dyadic weights whose float sums are order-sensitive — this is what
// pins the side-table variant to the full scan's exact summation order.
func negMRF() *mrf.MRF {
	m := mrf.New(9)
	for a := 1; a <= 9; a++ {
		_ = m.AddClause(0.1*float64(a), mrf.Lit(a))
	}
	_ = m.AddClause(-0.7, 1, 2)
	_ = m.AddClause(-1.3, -3, 4, -5)
	_ = m.AddClause(0.3, 6, -7)
	_ = m.AddClause(-0.2, 8, 9)
	return m
}

func storeMRF(t *testing.T, m *mrf.MRF, cfg db.Config) *db.DB {
	t.Helper()
	d := db.Open(cfg)
	if err := mrf.Store(m, d, "clauses"); err != nil {
		t.Fatal(err)
	}
	return d
}

// --- bit-identical equivalence -----------------------------------------

// The side-table RDBMSWalkSAT must reproduce the full-scan variant's flip
// sequence, best state and best cost exactly, across seeds, noise levels
// and hard/soft/negative-weight workloads.
func TestSideWalkSATBitIdenticalToScan(t *testing.T) {
	workloads := []struct {
		name string
		mk   func() *mrf.MRF
	}{
		{"soft", softMRF},
		{"hard", hardMRF},
		{"neg", negMRF},
	}
	for _, wl := range workloads {
		for _, seed := range []int64{1, 7, 1234} {
			for _, noisy := range []float64{0.1, 0.5, 0.9} {
				name := fmt.Sprintf("%s/seed=%d/p=%v", wl.name, seed, noisy)
				t.Run(name, func(t *testing.T) {
					m := wl.mk()
					opts := Options{MaxFlips: 300, Seed: seed, NoisyP: noisy}

					var scanFlips []mrf.AtomID
					dScan := storeMRF(t, m, db.Config{})
					rScan, err := rdbmsWalkSATScan(context.Background(), dScan, "clauses", m.NumAtoms, opts,
						func(_ int64, a mrf.AtomID) error { scanFlips = append(scanFlips, a); return nil })
					if err != nil {
						t.Fatal(err)
					}

					var sideFlips []mrf.AtomID
					dSide := storeMRF(t, m, db.Config{})
					w, err := NewSideWalkSAT(context.Background(), dSide, "clauses", m.NumAtoms, opts)
					if err != nil {
						t.Fatal(err)
					}
					rSide, err := w.run(context.Background(), func(_ int64, a mrf.AtomID) error { sideFlips = append(sideFlips, a); return nil })
					if err != nil {
						t.Fatal(err)
					}

					if rSide.Flips != rScan.Flips {
						t.Fatalf("flips %d != %d", rSide.Flips, rScan.Flips)
					}
					if len(sideFlips) != len(scanFlips) {
						t.Fatalf("flip log %d != %d", len(sideFlips), len(scanFlips))
					}
					for i := range scanFlips {
						if sideFlips[i] != scanFlips[i] {
							t.Fatalf("flip %d: atom %d != %d", i, sideFlips[i], scanFlips[i])
						}
					}
					if rSide.BestCost != rScan.BestCost {
						t.Fatalf("best cost %v != %v", rSide.BestCost, rScan.BestCost)
					}
					if len(rSide.Best) != len(rScan.Best) {
						t.Fatalf("best len %d != %d", len(rSide.Best), len(rScan.Best))
					}
					for i := range rScan.Best {
						if rSide.Best[i] != rScan.Best[i] {
							t.Fatalf("best state differs at atom %d", i)
						}
					}
				})
			}
		}
	}
}

// The public entry point must behave exactly like the staged API.
func TestRDBMSWalkSATWrapperMatchesStaged(t *testing.T) {
	m := softMRF()
	opts := Options{MaxFlips: 120, Seed: 5}
	r1, err := RDBMSWalkSAT(context.Background(), storeMRF(t, m, db.Config{}), "clauses", m.NumAtoms, opts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewSideWalkSAT(context.Background(), storeMRF(t, m, db.Config{}), "clauses", m.NumAtoms, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestCost != r2.BestCost || r1.Flips != r2.Flips {
		t.Fatalf("wrapper diverges: %v/%d vs %v/%d", r1.BestCost, r1.Flips, r2.BestCost, r2.Flips)
	}
	if _, err := w.Run(context.Background()); err == nil {
		t.Fatal("second Run accepted")
	}
}

// --- invariant / consistency harness -----------------------------------

// recomputeViolated scans the clause table from scratch and returns the
// violated set keyed by cid, plus the exact ascending-cid cost sum the
// search's pick pass should report.
func recomputeViolated(t *testing.T, tab *db.Table, state []bool, hardW float64) (map[int64]mrf.Clause, float64, int) {
	t.Helper()
	viol := make(map[int64]mrf.Clause)
	cost := 0.0
	hard := 0
	err := tab.ScanRows(func(_ storage.RecordID, row tuple.Row) error {
		c, err := mrf.RowClause(row)
		if err != nil {
			return err
		}
		if !c.ViolatedBy(state) {
			return nil
		}
		viol[row[0].I] = c
		if c.IsHard() {
			hard++
			cost += hardW
		} else {
			cost += math.Abs(c.Weight)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return viol, cost, hard
}

// sideSnapshot reads the current side table into a cid-keyed map.
func sideSnapshot(t *testing.T, s *sideTables) map[int64]violEntry {
	t.Helper()
	got := make(map[int64]violEntry)
	err := s.viol.ScanRows(func(_ storage.RecordID, row tuple.Row) error {
		cid, w, hard, err := mrf.RowViol(row)
		if err != nil {
			return err
		}
		if _, dup := got[cid]; dup {
			return fmt.Errorf("duplicate side-table row for clause %d", cid)
		}
		got[cid] = violEntry{cid: cid, w: w, hard: hard}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// checkSideConsistency compares the maintained side table and running
// aggregates against a from-scratch recomputation. The ascending-cid cost
// sum must match exactly (bit for bit); the incremental soft-cost
// accumulator may differ from the ordered sum only by float reassociation.
func checkSideConsistency(t *testing.T, s *sideTables, state []bool) {
	t.Helper()
	want, wantCost, wantHard := recomputeViolated(t, s.clauses, state, s.hardW)
	got := sideSnapshot(t, s)
	if len(got) != len(want) {
		t.Fatalf("side table has %d rows, want %d", len(got), len(want))
	}
	for cid, c := range want {
		e, ok := got[cid]
		if !ok {
			t.Fatalf("violated clause %d missing from side table", cid)
		}
		if e.hard != c.IsHard() || (!e.hard && e.w != c.Weight) {
			t.Fatalf("side row for clause %d is (%v,%v), clause is (%v,%v)", cid, e.w, e.hard, c.Weight, c.IsHard())
		}
	}
	// The cost the search actually uses: ascending-cid sum over the side
	// table, exactly as pickViolated computes it.
	cids := make([]int64, 0, len(got))
	for cid := range got {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	cost := 0.0
	hard := 0
	for _, cid := range cids {
		if e := got[cid]; e.hard {
			hard++
			cost += s.hardW
		} else {
			cost += math.Abs(e.w)
		}
	}
	if cost != wantCost {
		t.Fatalf("side-table cost %v != recomputed %v (must match exactly)", cost, wantCost)
	}
	if hard != wantHard || s.hardViol != wantHard {
		t.Fatalf("hard violations side=%d incr=%d want %d", hard, s.hardViol, wantHard)
	}
	// Incremental accumulator: same value up to reassociation rounding.
	incrWant := 0.0
	for _, cid := range cids {
		if e := got[cid]; !e.hard {
			incrWant += math.Abs(e.w)
		}
	}
	if math.Abs(s.softCost-incrWant) > 1e-9*(1+math.Abs(incrWant)) {
		t.Fatalf("incremental soft cost %v drifted from %v", s.softCost, incrWant)
	}
}

// After every flip the side table and running cost must equal a
// from-scratch recomputation — including on negative-weight clauses, whose
// violatedIfFlipped semantics (w<0: violated when satisfied) the RDBMS
// path exercises here.
func TestSideTableInvariantEveryKFlips(t *testing.T) {
	workloads := []struct {
		name string
		mk   func() *mrf.MRF
	}{
		{"soft", softMRF},
		{"hard", hardMRF},
		{"neg", negMRF},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			m := wl.mk()
			d := storeMRF(t, m, db.Config{})
			w, err := NewSideWalkSAT(context.Background(), d, "clauses", m.NumAtoms, Options{MaxFlips: 250, Seed: 99, NoisyP: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			checkSideConsistency(t, w.side, w.state) // initial build
			checks := 0
			_, err = w.run(context.Background(), func(flip int64, _ mrf.AtomID) error {
				// The hook fires after the side table absorbed the flip, so
				// checking every flip covers the final maintained state too;
				// once run returns the helper tables are dropped and their
				// pages reclaimed, so no post-run check is possible. (The
				// tables are tiny — the per-flip recompute is cheap.)
				checkSideConsistency(t, w.side, w.state)
				checks++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if checks == 0 {
				t.Fatal("harness never ran")
			}
		})
	}
}

// --- free-slot list / heap bound ----------------------------------------

// Long-run churn must not grow the side-table heap: delete-surplus flips
// put their tombstoned slots on a free list and insert-surplus flips
// revive them before appending, so after every flip live rows + free slots
// equals the running high-water mark of |violated|, and the heap's page
// count only moves when that high-water mark itself rises. Without the
// free list a search this long accumulates a tombstone per delete-surplus
// flip and the pick scan slows with it.
func TestSideTableHeapBoundedAtHighWaterMark(t *testing.T) {
	// A churny workload: per-atom soft contradictions keep the violated
	// set large and oscillating, and high noise keeps the walk moving.
	m := mrf.New(60)
	for a := 1; a <= 60; a++ {
		if err := m.AddClause(1, mrf.Lit(a)); err != nil {
			t.Fatal(err)
		}
		if err := m.AddClause(1, -mrf.Lit(a)); err != nil {
			t.Fatal(err)
		}
	}
	for a := 1; a+1 <= 60; a++ {
		if err := m.AddClause(0.5, mrf.Lit(a), -mrf.Lit(a+1)); err != nil {
			t.Fatal(err)
		}
	}
	d := storeMRF(t, m, db.Config{})
	w, err := NewSideWalkSAT(context.Background(), d, "clauses", m.NumAtoms,
		Options{MaxFlips: 4000, Seed: 21, NoisyP: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	heap := w.side.viol.Heap()
	hw := heap.NumRecords()
	pagesAtHW := heap.NumPages()
	if hw == 0 {
		t.Fatal("no violated clauses at start")
	}
	surplusFlips := 0
	res, err := w.run(context.Background(), func(flip int64, _ mrf.AtomID) error {
		live := heap.NumRecords()
		if live > hw {
			hw = live
			pagesAtHW = heap.NumPages()
		}
		if total := live + int64(len(w.side.free)); total != hw {
			return fmt.Errorf("flip %d: live %d + free %d = %d != high-water %d (slots leaked or lost)",
				flip, live, len(w.side.free), total, hw)
		}
		if got := heap.NumPages(); got != pagesAtHW {
			return fmt.Errorf("flip %d: heap grew to %d pages with no new |violated| high-water mark (%d pages at hw %d)",
				flip, got, pagesAtHW, hw)
		}
		if len(w.side.free) > 0 {
			surplusFlips++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips < 1000 {
		t.Fatalf("workload settled after %d flips; churn harness needs a longer run", res.Flips)
	}
	if surplusFlips == 0 {
		t.Fatal("free list never used: the workload produced no delete-surplus flips")
	}
}

// --- zero full scans / page reads --------------------------------------

// The flip loop must never rescan the clause table: its heap-scan counter
// stays frozen across the whole loop, and the physical page reads stay far
// below what even a single per-flip scan regime would cost.
func TestSideWalkSATFlipLoopNeverScansClauseTable(t *testing.T) {
	// 26 pages of clauses against a 16-frame pool: the pool holds the hot
	// set (side table + touched index chunks) but can never cache the
	// clause table, so any full scan would show up as ~26 misses.
	m := datagen.Example1(2000)
	d := storeMRF(t, m, db.Config{BufferPoolPages: 16})
	tab, _ := d.Table("clauses")
	tablePages := int64(tab.Heap().NumPages())
	if tablePages < 20 {
		t.Fatalf("workload too small: %d pages", tablePages)
	}

	w, err := NewSideWalkSAT(context.Background(), d, "clauses", m.NumAtoms, Options{MaxFlips: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scansBefore := tab.Heap().NumScans()
	readsBefore := d.Disk().Stats().Reads
	res, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips == 0 {
		t.Fatal("no flips performed")
	}
	if got := tab.Heap().NumScans(); got != scansBefore {
		t.Fatalf("flip loop scanned the clause table %d times", got-scansBefore)
	}
	loopReads := d.Disk().Stats().Reads - readsBefore
	// One scan-based flip costs ~tablePages reads through this tiny pool;
	// the set-oriented loop must be far under one scan per flip.
	budget := res.Flips * tablePages / 4
	if loopReads >= budget {
		t.Fatalf("flip loop read %d pages over %d flips (budget %d, table %d pages)",
			loopReads, res.Flips, budget, tablePages)
	}
}

// And head-to-head: on the same workload, same flips, the side-table flip
// loop must do a small fraction of the scan variant's physical reads while
// producing the identical result.
func TestSideWalkSATReadsFractionOfScan(t *testing.T) {
	m := datagen.Example1(2000)
	opts := Options{MaxFlips: 25, Seed: 11}

	dScan := storeMRF(t, m, db.Config{BufferPoolPages: 16})
	readsBefore := dScan.Disk().Stats().Reads
	rScan, err := RDBMSWalkSATScan(context.Background(), dScan, "clauses", m.NumAtoms, opts)
	if err != nil {
		t.Fatal(err)
	}
	scanReads := dScan.Disk().Stats().Reads - readsBefore

	dSide := storeMRF(t, m, db.Config{BufferPoolPages: 16})
	w, err := NewSideWalkSAT(context.Background(), dSide, "clauses", m.NumAtoms, opts)
	if err != nil {
		t.Fatal(err)
	}
	readsBefore = dSide.Disk().Stats().Reads
	rSide, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sideReads := dSide.Disk().Stats().Reads - readsBefore

	if rSide.BestCost != rScan.BestCost || rSide.Flips != rScan.Flips {
		t.Fatalf("variants diverge: %v/%d vs %v/%d", rSide.BestCost, rSide.Flips, rScan.BestCost, rScan.Flips)
	}
	if sideReads*4 >= scanReads {
		t.Fatalf("side flip loop read %d pages vs scan %d — expected <1/4", sideReads, scanReads)
	}
}

// --- fault injection ----------------------------------------------------

// Side-table maintenance must surface disk errors instead of silently
// diverging: a read fault mid-loop aborts the search with the injected
// error.
func TestSideWalkSATSurfacesReadFaults(t *testing.T) {
	fd := storage.NewFaultDisk(storage.NewMemDisk())
	m := datagen.Example1(1500)
	d := storeMRF(t, m, db.Config{Disk: fd, BufferPoolPages: 4})
	w, err := NewSideWalkSAT(context.Background(), d, "clauses", m.NumAtoms, Options{MaxFlips: 50, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	fd.FailReadsAfter(3) // loop's point lookups miss the tiny pool and then fail
	if _, err := w.Run(context.Background()); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

// A write-back fault on a dirty side-table page must surface too.
func TestSideWalkSATSurfacesWriteFaults(t *testing.T) {
	fd := storage.NewFaultDisk(storage.NewMemDisk())
	m := datagen.Example1(1500)
	d := storeMRF(t, m, db.Config{Disk: fd, BufferPoolPages: 4})
	w, err := NewSideWalkSAT(context.Background(), d, "clauses", m.NumAtoms, Options{MaxFlips: 50, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// The loop dirties side-table pages; with a 4-frame pool the clause
	// point reads evict them, forcing latency-free write-backs that now
	// fail.
	fd.FailWritesAfter(0)
	if _, err := w.Run(context.Background()); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

// --- concurrency --------------------------------------------------------

// Concurrent set-oriented searches over separate clause tables in one
// engine (the hybrid path's oversized components) must be race-free and
// per-table deterministic. Run under -race in CI.
func TestSideWalkSATConcurrentSearches(t *testing.T) {
	const n = 4
	d := db.Open(db.Config{BufferPoolPages: 32})
	mrfs := make([]*mrf.MRF, n)
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		mrfs[i] = datagen.Example1(40 + 10*i)
		name := fmt.Sprintf("clauses_%d", i)
		if err := mrf.Store(mrfs[i], d, name); err != nil {
			t.Fatal(err)
		}
		r, err := RDBMSWalkSAT(context.Background(), d, name, mrfs[i].NumAtoms, Options{MaxFlips: 150, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.BestCost
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	got := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("clauses_%d", i)
			r, err := RDBMSWalkSAT(context.Background(), d, name, mrfs[i].NumAtoms, Options{MaxFlips: 150, Seed: int64(i)})
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = r.BestCost
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("search %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Fatalf("search %d: concurrent cost %v != sequential %v", i, got[i], want[i])
		}
	}
}

// --- lifecycle ----------------------------------------------------------

// A finished search must leave no helper tables in the catalog and must
// deregister the clause table's point index; a setup that fails partway
// must clean up whatever it had created.
func TestSideWalkSATCleansUpHelperState(t *testing.T) {
	m := softMRF()
	d := storeMRF(t, m, db.Config{})
	if _, err := RDBMSWalkSAT(context.Background(), d, "clauses", m.NumAtoms, Options{MaxFlips: 50, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	for _, name := range d.TableNames() {
		if name != "clauses" {
			t.Fatalf("helper table %q left in catalog", name)
		}
	}
	tab, _ := d.Table("clauses")
	if _, ok := tab.HashIndexOn([]int{0}); ok {
		t.Fatal("cid point index left registered after search")
	}
}

func TestSideWalkSATSetupFailureLeavesNoOrphans(t *testing.T) {
	fd := storage.NewFaultDisk(storage.NewMemDisk())
	m := datagen.Example1(1500)
	d := storeMRF(t, m, db.Config{Disk: fd, BufferPoolPages: 4})
	if err := d.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Setup needs a couple of full scans plus helper-table writes; let a
	// few reads through so failure lands mid-setup, after table creation.
	tab, _ := d.Table("clauses")
	checkClean := func(when string) {
		t.Helper()
		for _, name := range d.TableNames() {
			if name != "clauses" {
				t.Fatalf("%s: orphaned helper table %q after failed setup", when, name)
			}
		}
		if _, ok := tab.HashIndexOn([]int{0}); ok {
			t.Fatalf("%s: cid point index left registered after failed setup", when)
		}
	}
	for _, budget := range []int{1, 5, 20, 60} {
		fd.FailReadsAfter(budget)
		w, err := NewSideWalkSAT(context.Background(), d, "clauses", m.NumAtoms, Options{MaxFlips: 5, Seed: 4})
		fd.FailReadsAfter(-1)
		if err == nil {
			// Setup got through on this budget; earlier ones failed. Run
			// the search so it releases its (legitimate) helper tables
			// before the orphan checks below.
			if _, err := w.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			break
		}
		checkClean(fmt.Sprintf("read budget %d", budget))
	}
	// An early validation failure (atom id beyond numAtoms, caught while
	// building the occurrence lists) must clean up the already-registered
	// cid index too.
	if _, err := NewSideWalkSAT(context.Background(), d, "clauses", m.NumAtoms/2, Options{MaxFlips: 5, Seed: 4}); err == nil {
		t.Fatal("undersized numAtoms accepted")
	}
	checkClean("undersized numAtoms")
}
