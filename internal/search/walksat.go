// Package search implements the inference algorithms of the Tuffy paper:
// WalkSAT (Algorithm 1 of Appendix A.4) over an indexed in-memory MRF,
// component-aware search with per-component best states (Section 3.3), the
// Gauss-Seidel partition-aware scheme (Section 3.4), SampleSAT/MC-SAT
// marginal inference (Appendix A.5), and the in-database WalkSAT variant
// Tuffy-mm (Appendix B.2).
package search

import (
	"context"
	"math"
	"math/rand"
	"time"

	"tuffy/internal/mrf"
)

// Options controls WalkSAT.
type Options struct {
	// MaxFlips per try (default 100_000).
	MaxFlips int64
	// MaxTries restarts with fresh random states (default 1).
	MaxTries int
	// NoisyP is the probability of a random (vs. greedy) flip; the paper's
	// Algorithm 1 uses 0.5.
	NoisyP float64
	// Seed for the deterministic RNG.
	Seed int64
	// HardWeight is the finite surrogate weight guiding moves on hard
	// clauses (reported costs still treat violated hard clauses as +Inf).
	HardWeight float64
	// InitState seeds the first try with an assignment instead of a random
	// one (1-based; used by Gauss-Seidel rounds).
	InitState []bool
	// TargetCost stops the search as soon as the best cost reaches this
	// value; NaN disables (used for hitting-time experiments).
	TargetCost float64
	// Tracker receives best-cost-over-time points; may be nil.
	Tracker *Tracker
}

func (o Options) withDefaults() Options {
	if o.MaxFlips == 0 {
		o.MaxFlips = 100_000
	}
	if o.MaxTries == 0 {
		o.MaxTries = 1
	}
	if o.NoisyP == 0 {
		o.NoisyP = 0.5
	}
	if o.HardWeight == 0 {
		o.HardWeight = 1e7
	}
	if o.TargetCost == 0 {
		o.TargetCost = math.NaN()
	}
	return o
}

// ClampFlips bounds a flip budget to [1, cap] (cap <= 0 means no upper
// bound). The floor keeps tiny derived budgets searchable — the hybrid
// fallback hands oversized components 1% of the total budget, which must
// not round down to zero — and the ceiling is what an admission layer's
// per-query flip cap applies to defaulted budgets.
func ClampFlips(flips, cap int64) int64 {
	if cap > 0 && flips > cap {
		flips = cap
	}
	if flips < 1 {
		flips = 1
	}
	return flips
}

// Result reports a search outcome.
type Result struct {
	Best     []bool
	BestCost float64 // +Inf if a hard clause is violated in Best
	Flips    int64
	Restarts int
	Elapsed  time.Duration
	// HitFlips is the flip count when TargetCost was first reached
	// (-1 when never reached or no target set).
	HitFlips int64
}

// FlipRate returns flips per second.
func (r *Result) FlipRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Flips) / r.Elapsed.Seconds()
}

// engine is the indexed WalkSAT state: satisfied-literal counts per clause
// and an O(1)-sample set of violated clauses, with incremental updates per
// flip — the in-memory data structures whose absence makes the in-database
// variant slow (Section 3.2).
type engine struct {
	m          *mrf.MRF
	hardW      float64
	state      []bool
	satCount   []int32
	posOccur   [][]int32 // atom -> clauses where it appears positively
	negOccur   [][]int32
	viol       []int32 // violated clause ids (positions tracked below)
	violPos    []int32 // clause -> index in viol, -1 if absent
	cost       float64 // guided cost (hard clauses at hardW)
	hardViol   int
	softCost   float64
	fixedExtra float64 // from MRF.FixedCost
}

func newEngine(m *mrf.MRF, hardW float64) *engine {
	e := &engine{
		m:          m,
		hardW:      hardW,
		state:      m.NewState(),
		satCount:   make([]int32, len(m.Clauses)),
		posOccur:   make([][]int32, m.NumAtoms+1),
		negOccur:   make([][]int32, m.NumAtoms+1),
		violPos:    make([]int32, len(m.Clauses)),
		fixedExtra: m.FixedCost,
	}
	for ci := range m.Clauses {
		e.violPos[ci] = -1
		for _, l := range m.Clauses[ci].Lits {
			a := mrf.Atom(l)
			if mrf.Pos(l) {
				e.posOccur[a] = append(e.posOccur[a], int32(ci))
			} else {
				e.negOccur[a] = append(e.negOccur[a], int32(ci))
			}
		}
	}
	return e
}

// weightOf returns the guided |weight| of a clause.
func (e *engine) weightOf(ci int32) float64 {
	w := e.m.Clauses[ci].Weight
	if math.IsInf(w, 0) {
		return e.hardW
	}
	return math.Abs(w)
}

// isViolated evaluates the violation status from the satisfied count.
func (e *engine) isViolated(ci int32) bool {
	if e.m.Clauses[ci].Weight >= 0 {
		return e.satCount[ci] == 0
	}
	return e.satCount[ci] > 0
}

func (e *engine) addViol(ci int32) {
	if e.violPos[ci] >= 0 {
		return
	}
	e.violPos[ci] = int32(len(e.viol))
	e.viol = append(e.viol, ci)
	e.cost += e.weightOf(ci)
	if e.m.Clauses[ci].IsHard() {
		e.hardViol++
	} else {
		e.softCost += math.Abs(e.m.Clauses[ci].Weight)
	}
}

func (e *engine) removeViol(ci int32) {
	pos := e.violPos[ci]
	if pos < 0 {
		return
	}
	last := e.viol[len(e.viol)-1]
	e.viol[pos] = last
	e.violPos[last] = pos
	e.viol = e.viol[:len(e.viol)-1]
	e.violPos[ci] = -1
	e.cost -= e.weightOf(ci)
	if e.m.Clauses[ci].IsHard() {
		e.hardViol--
	} else {
		e.softCost -= math.Abs(e.m.Clauses[ci].Weight)
	}
}

// reset installs a state and rebuilds all counters.
func (e *engine) reset(state []bool) {
	copy(e.state, state)
	e.viol = e.viol[:0]
	e.cost = 0
	e.softCost = 0
	e.hardViol = 0
	for ci := range e.m.Clauses {
		e.violPos[ci] = -1
		cnt := int32(0)
		for _, l := range e.m.Clauses[ci].Lits {
			if e.state[mrf.Atom(l)] == mrf.Pos(l) {
				cnt++
			}
		}
		e.satCount[ci] = cnt
	}
	for ci := range e.m.Clauses {
		if e.isViolated(int32(ci)) {
			e.addViol(int32(ci))
		}
	}
}

// randomState fills a fresh random assignment.
func randomState(n int, rng *rand.Rand) []bool {
	s := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		s[i] = rng.Intn(2) == 0
	}
	return s
}

// flip toggles an atom and updates all clause counters incrementally.
func (e *engine) flip(a mrf.AtomID) {
	toTrue := !e.state[a]
	e.state[a] = toTrue
	gain, lose := e.posOccur[a], e.negOccur[a]
	if !toTrue {
		gain, lose = lose, gain
	}
	for _, ci := range gain {
		e.satCount[ci]++
		if e.isViolated(ci) {
			e.addViol(ci)
		} else {
			e.removeViol(ci)
		}
	}
	for _, ci := range lose {
		e.satCount[ci]--
		if e.isViolated(ci) {
			e.addViol(ci)
		} else {
			e.removeViol(ci)
		}
	}
}

// deltaCost returns the guided-cost change of flipping atom a, without
// performing the flip.
func (e *engine) deltaCost(a mrf.AtomID) float64 {
	toTrue := !e.state[a]
	gain, lose := e.posOccur[a], e.negOccur[a]
	if !toTrue {
		gain, lose = lose, gain
	}
	delta := 0.0
	for _, ci := range gain {
		c := &e.m.Clauses[ci]
		if c.Weight >= 0 {
			if e.satCount[ci] == 0 {
				delta -= e.weightOf(ci) // becomes satisfied
			}
		} else if e.satCount[ci] == 0 {
			delta += e.weightOf(ci) // becomes satisfied => violated
		}
	}
	for _, ci := range lose {
		c := &e.m.Clauses[ci]
		if c.Weight >= 0 {
			if e.satCount[ci] == 1 {
				delta += e.weightOf(ci) // becomes unsatisfied
			}
		} else if e.satCount[ci] == 1 {
			delta -= e.weightOf(ci) // becomes unsatisfied => not violated
		}
	}
	return delta
}

// reportedCost is the true cost of the current state (hard violations are
// +Inf), including the MRF's fixed evidence cost.
func (e *engine) reportedCost() float64 {
	if e.hardViol > 0 {
		return math.Inf(1)
	}
	return e.softCost + e.fixedExtra
}

// WalkSAT runs Algorithm 1 on the MRF. A canceled context stops the search
// early (polled every few hundred flips); the returned Result then holds the
// best state found so far — callers that need the typed error wrap the stop
// with Canceled(ctx) themselves.
func WalkSAT(ctx context.Context, m *mrf.MRF, opts Options) *Result {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	e := newEngine(m, opts.HardWeight)

	res := &Result{HitFlips: -1, BestCost: math.Inf(1)}
	start := time.Now()
	var best []bool

	for try := 0; try < opts.MaxTries && ctx.Err() == nil; try++ {
		var init []bool
		if try == 0 && opts.InitState != nil {
			init = opts.InitState
		} else {
			init = randomState(m.NumAtoms, rng)
		}
		e.reset(init)
		res.Restarts = try

		if c := e.reportedCost(); c < res.BestCost {
			res.BestCost = c
			best = append(best[:0], e.state...)
			if opts.Tracker != nil {
				opts.Tracker.Record(res.BestCost)
			}
		}
		if !math.IsNaN(opts.TargetCost) && res.BestCost <= opts.TargetCost && res.HitFlips < 0 {
			res.HitFlips = res.Flips
		}
		if res.HitFlips >= 0 && !math.IsNaN(opts.TargetCost) {
			break
		}

		for flip := int64(0); flip < opts.MaxFlips; flip++ {
			if flip&ctxCheckMask == 0 && ctx.Err() != nil {
				break
			}
			if len(e.viol) == 0 {
				break // zero-cost world (w.r.t. guided cost): optimal
			}
			ci := e.viol[rng.Intn(len(e.viol))]
			lits := e.m.Clauses[ci].Lits
			var a mrf.AtomID
			if rng.Float64() <= opts.NoisyP {
				a = mrf.Atom(lits[rng.Intn(len(lits))])
			} else {
				bestDelta := math.Inf(1)
				for _, l := range lits {
					cand := mrf.Atom(l)
					if d := e.deltaCost(cand); d < bestDelta {
						bestDelta = d
						a = cand
					}
				}
			}
			e.flip(a)
			res.Flips++
			if c := e.reportedCost(); c < res.BestCost {
				res.BestCost = c
				best = append(best[:0], e.state...)
				if opts.Tracker != nil {
					opts.Tracker.Record(res.BestCost)
				}
			}
			if !math.IsNaN(opts.TargetCost) && res.BestCost <= opts.TargetCost {
				if res.HitFlips < 0 {
					res.HitFlips = res.Flips
				}
				break
			}
		}
		if res.HitFlips >= 0 && !math.IsNaN(opts.TargetCost) {
			break
		}
	}
	res.Best = best
	res.Elapsed = time.Since(start)
	return res
}
