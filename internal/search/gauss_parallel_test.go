package search

import (
	"context"
	"math"
	"reflect"
	"testing"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
)

// gsRun runs GaussSeidel on Example2 with the bridge cut, returning the
// result and the tracker cost trajectory.
func gsRun(t *testing.T, parallelism int, src ClauseSource) (*ComponentResult, []float64) {
	t.Helper()
	m := datagen.Example2(6)
	pt := partition.Algorithm3(m, 50)
	if pt.NumCut() == 0 {
		t.Fatal("workload has no cut clauses")
	}
	tr := NewTracker()
	res, err := GaussSeidel(context.Background(), pt, GaussSeidelOptions{
		Base:        Options{MaxFlips: 3000, Seed: 11, Tracker: tr},
		Rounds:      3,
		Parallelism: parallelism,
		Clauses:     src,
	})
	if err != nil {
		t.Fatal(err)
	}
	var costs []float64
	for _, p := range tr.Points() {
		costs = append(costs, p.Cost)
	}
	return res, costs
}

func TestGaussSeidelParallelDeterminism(t *testing.T) {
	base, baseCosts := gsRun(t, 1, nil)
	for _, p := range []int{2, 4, 8} {
		res, costs := gsRun(t, p, nil)
		if res.BestCost != base.BestCost {
			t.Fatalf("parallelism %d: cost %v, want %v", p, res.BestCost, base.BestCost)
		}
		if res.Flips != base.Flips {
			t.Fatalf("parallelism %d: flips %d, want %d", p, res.Flips, base.Flips)
		}
		if !reflect.DeepEqual(res.Best, base.Best) {
			t.Fatalf("parallelism %d: final state differs", p)
		}
		if !reflect.DeepEqual(costs, baseCosts) {
			t.Fatalf("parallelism %d: tracker trajectory differs: %v vs %v", p, costs, baseCosts)
		}
	}
}

// TestGaussSeidelBalancedMatchesBarrier pins the balanced pipelined
// schedule to the legacy class-barrier schedule: identical best state,
// cost, flip count, and tracker trajectory at every worker count. The
// barrier path is the lesion baseline — only wall-clock may differ.
func TestGaussSeidelBalancedMatchesBarrier(t *testing.T) {
	m := datagen.Example2(6)
	pt := partition.Algorithm3(m, 50)
	if pt.NumCut() == 0 {
		t.Fatal("workload has no cut clauses")
	}
	run := func(barrier bool, parallelism int) (*ComponentResult, []float64) {
		tr := NewTracker()
		res, err := GaussSeidel(context.Background(), pt, GaussSeidelOptions{
			Base:         Options{MaxFlips: 3000, Seed: 11, Tracker: tr},
			Rounds:       3,
			Parallelism:  parallelism,
			ClassBarrier: barrier,
		})
		if err != nil {
			t.Fatal(err)
		}
		var costs []float64
		for _, p := range tr.Points() {
			costs = append(costs, p.Cost)
		}
		return res, costs
	}
	base, baseCosts := run(true, 1)
	for _, p := range []int{1, 2, 4, 8} {
		res, costs := run(false, p)
		if res.BestCost != base.BestCost || res.Flips != base.Flips {
			t.Fatalf("balanced @%d workers: cost %v flips %d, barrier %v/%d",
				p, res.BestCost, res.Flips, base.BestCost, base.Flips)
		}
		if !reflect.DeepEqual(res.Best, base.Best) {
			t.Fatalf("balanced @%d workers: final state differs from barrier", p)
		}
		if !reflect.DeepEqual(costs, baseCosts) {
			t.Fatalf("balanced @%d workers: trajectory differs: %v vs %v", p, costs, baseCosts)
		}
	}
}

func TestGaussSeidelParallelReachesOptimum(t *testing.T) {
	m := datagen.Example2(5)
	want := OptimalCost(m)
	pt := partition.Algorithm3(m, 40)
	res, err := GaussSeidel(context.Background(), pt, GaussSeidelOptions{
		Base:        Options{MaxFlips: 5000, Seed: 41},
		Rounds:      4,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BestCost-want) > 1e-9 {
		t.Fatalf("parallel Gauss-Seidel cost = %v, optimal = %v", res.BestCost, want)
	}
	if got := m.Cost(res.Best); math.Abs(got-want) > 1e-9 {
		t.Fatalf("returned state cost = %v, want %v", got, want)
	}
}

func TestGaussSeidelDBClauseSourceMatchesRAM(t *testing.T) {
	m := datagen.Example2(6)
	pt := partition.Algorithm3(m, 50)
	d := db.Open(db.Config{BufferPoolPages: 2})
	store, err := StorePartitions(d, pt, "gs")
	if err != nil {
		t.Fatal(err)
	}
	ram, ramCosts := gsRun(t, 2, nil)
	dbr, dbCosts := gsRun(t, 2, store)
	if ram.BestCost != dbr.BestCost || !reflect.DeepEqual(ram.Best, dbr.Best) || ram.Flips != dbr.Flips {
		t.Fatalf("disk-resident clauses changed the search: cost %v vs %v, flips %d vs %d",
			dbr.BestCost, ram.BestCost, dbr.Flips, ram.Flips)
	}
	if !reflect.DeepEqual(ramCosts, dbCosts) {
		t.Fatalf("disk-resident trajectory differs: %v vs %v", dbCosts, ramCosts)
	}
}

// TestGaussSeidelParallelRace exercises concurrent partitions sharing the
// global state and the shared buffer pool under the race detector: a long
// chain of blocks (many partitions per color class) searched with 8 workers
// and disk-resident clauses through a pool smaller than the table set.
func TestGaussSeidelParallelRace(t *testing.T) {
	m := mrf.New(40)
	for b := 0; b < 10; b++ {
		base := int32(4 * b)
		for i := int32(1); i < 4; i++ {
			if err := m.AddClause(3, base+i, base+i+1); err != nil {
				t.Fatal(err)
			}
		}
		if b > 0 {
			if err := m.AddClause(0.5, base, base+1); err != nil {
				t.Fatal(err)
			}
		}
	}
	pt := partition.Algorithm3(m, 18)
	if len(pt.Parts) < 5 || pt.NumCut() == 0 {
		t.Fatalf("want many partitions with cuts, got %d parts %d cut", len(pt.Parts), pt.NumCut())
	}
	d := db.Open(db.Config{BufferPoolPages: 8})
	store, err := StorePartitions(d, pt, "race")
	if err != nil {
		t.Fatal(err)
	}
	var baseRes *ComponentResult
	for _, src := range []ClauseSource{nil, store} {
		res, err := GaussSeidel(context.Background(), pt, GaussSeidelOptions{
			Base:        Options{MaxFlips: 500, Seed: 3},
			Rounds:      3,
			Parallelism: 8,
			Clauses:     src,
		})
		if err != nil {
			t.Fatal(err)
		}
		if baseRes == nil {
			baseRes = res
		} else if res.BestCost != baseRes.BestCost {
			t.Fatalf("cost differs between RAM and DB sources: %v vs %v", res.BestCost, baseRes.BestCost)
		}
	}
}

// exhaustiveMarginals computes exact marginals of a small MRF by
// enumerating all worlds (soft clauses only).
func exhaustiveMarginals(m *mrf.MRF) []float64 {
	n := m.NumAtoms
	state := m.NewState()
	z := 0.0
	probs := make([]float64, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 1; i <= n; i++ {
			state[i] = mask&(1<<(i-1)) != 0
		}
		w := math.Exp(-m.Cost(state))
		z += w
		for i := 1; i <= n; i++ {
			if state[i] {
				probs[i] += w
			}
		}
	}
	for i := 1; i <= n; i++ {
		probs[i] /= z
	}
	return probs
}

func TestGaussMCSATMatchesExhaustive(t *testing.T) {
	// Two 4-atom blocks with a weak bridge, partitioned so the bridge is
	// cut: partitioned MC-SAT marginals must track the exact ones.
	m := mrf.New(8)
	addc := func(w float64, lits ...mrf.Lit) {
		if err := m.AddClause(w, lits...); err != nil {
			t.Fatal(err)
		}
	}
	for _, base := range []int32{0, 4} {
		addc(1, base+1)
		addc(1.5, -(base + 1), base+2)
		addc(1.5, -(base + 2), base+3)
		addc(1, base+3, base+4)
	}
	addc(0.3, 4, 5)
	pt := partition.Algorithm3(m, 16)
	if pt.NumCut() != 1 || len(pt.Parts) != 2 {
		t.Fatalf("want 2 parts 1 cut, got %d parts %d cut", len(pt.Parts), pt.NumCut())
	}
	want := exhaustiveMarginals(m)
	got, err := GaussMCSAT(context.Background(), pt, MCSATOptions{Samples: 4000, BurnIn: 300, Seed: 29}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a <= m.NumAtoms; a++ {
		if math.Abs(got[a]-want[a]) > 0.08 {
			t.Fatalf("atom %d: Pr = %v, exact = %v", a, got[a], want[a])
		}
	}
}

func TestGaussMCSATDeterministicAcrossParallelism(t *testing.T) {
	m := datagen.Example2(4)
	pt := partition.Algorithm3(m, 35)
	if pt.NumCut() == 0 {
		t.Fatal("workload has no cut clauses")
	}
	base, err := GaussMCSAT(context.Background(), pt, MCSATOptions{Samples: 200, BurnIn: 20, Seed: 31}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4} {
		got, err := GaussMCSAT(context.Background(), pt, MCSATOptions{Samples: 200, BurnIn: 20, Seed: 31}, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("parallelism %d: marginals differ", p)
		}
	}
}

func TestGaussMCSATHardClauses(t *testing.T) {
	// Hard unit clause inside one partition must survive partitioned
	// sampling.
	m := mrf.New(4)
	if err := m.AddClause(math.Inf(1), 1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddClause(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddClause(1, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.AddClause(0.2, 2, 3); err != nil {
		t.Fatal(err)
	}
	pt := partition.Algorithm3(m, 9)
	if pt.NumCut() == 0 {
		t.Fatalf("want a cut clause, got %d parts", len(pt.Parts))
	}
	probs, err := GaussMCSAT(context.Background(), pt, MCSATOptions{Samples: 400, BurnIn: 40, Seed: 37}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if probs[1] < 0.99 {
		t.Fatalf("hard-constrained atom Pr = %v", probs[1])
	}
}
