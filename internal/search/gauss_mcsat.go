package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"tuffy/internal/mrf"
	"tuffy/internal/partition"
)

// GaussMCSAT estimates marginals on a partitioned MRF — the
// marginal-inference analogue of the Gauss-Seidel MAP scheme. Each MC-SAT
// round selects the clause subset M globally (the same policy as MCSAT) and
// then resamples the state partition by partition: color classes of the
// partition interaction graph run in sequence, partitions within a class
// concurrently, and each partition's share of M is projected onto it under
// the frozen assignment of the other partitions. When no selected clause is
// cut the round factorizes exactly over partitions (the distribution's cost
// additivity, Section 3.3); when cut clauses are selected the conditioning
// is the same approximation the MAP scheme makes. Results are bit-identical
// for every parallelism value: per-partition RNGs are seeded by (round,
// partition) and class results merge in ascending partition order. A
// canceled context stops at the next round boundary and returns ErrCanceled
// with the marginals of the samples collected so far. GaussMCSAT never
// mutates pt, so one Partitioning can serve concurrent queries.
func GaussMCSAT(ctx context.Context, pt *partition.Partitioning, opts MCSATOptions, parallelism int) ([]float64, error) {
	opts = opts.withDefaults()
	if parallelism < 1 {
		parallelism = 1
	}
	m := pt.Source

	// Initial state: satisfy hard clauses via WalkSAT, as in MCSAT.
	init := WalkSAT(ctx, m, Options{MaxFlips: opts.SampleSATFlips, MaxTries: 3, Seed: opts.Seed})
	if ctx.Err() != nil {
		return make([]float64, m.NumAtoms+1), Canceled(ctx)
	}
	if math.IsInf(init.BestCost, 1) && hasHard(m) {
		return nil, fmt.Errorf("search: MC-SAT could not satisfy hard clauses")
	}
	state := append([]bool(nil), init.Best...)

	coloring := pt.ColorParts()
	selRng := rand.New(rand.NewSource(opts.Seed + 104729))

	// Hoisted setup: one global->local id map works for every partition at
	// once because partitions are disjoint; per-partition buffers are pooled
	// across rounds.
	localOf := make([]mrf.AtomID, m.NumAtoms+1)
	for _, p := range pt.Parts {
		for i := 1; i <= p.Local.NumAtoms; i++ {
			localOf[p.GlobalAtom[i]] = mrf.AtomID(i)
		}
	}
	type mcPart struct {
		internal []mrf.Clause // selected clauses fully inside, local ids
		cut      []mrf.Clause // selected clauses spanning out, global ids
		sub      *mrf.MRF
		buf      []mrf.Clause
		next     []bool
		ok       bool
	}
	parts := make([]*mcPart, len(pt.Parts))
	for pi, p := range pt.Parts {
		parts[pi] = &mcPart{sub: mrf.New(p.Local.NumAtoms)}
	}

	// route adds one selected (mandatory) clause in global ids to the
	// partitions it touches.
	route := func(lits []mrf.Lit) {
		first := pt.PartOf[mrf.Atom(lits[0])]
		spansOut := false
		for _, l := range lits[1:] {
			if pt.PartOf[mrf.Atom(l)] != first {
				spansOut = true
				break
			}
		}
		if !spansOut {
			local := make([]mrf.Lit, len(lits))
			for i, l := range lits {
				ll := localOf[mrf.Atom(l)]
				if !mrf.Pos(l) {
					ll = -ll
				}
				local[i] = ll
			}
			parts[first].internal = append(parts[first].internal, mrf.Clause{Weight: 1, Lits: local})
			return
		}
		seen := map[int32]bool{}
		for _, l := range lits {
			pi := pt.PartOf[mrf.Atom(l)]
			if !seen[pi] {
				seen[pi] = true
				parts[pi].cut = append(parts[pi].cut, mrf.Clause{Weight: 1, Lits: lits})
			}
		}
	}

	// runPart projects partition pi's selected clauses under the frozen
	// external state and draws a near-uniform satisfying assignment.
	runPart := func(round, pi int) {
		g := parts[pi]
		p := pt.Parts[pi]
		buf := append(g.buf[:0], g.internal...)
		for _, c := range g.cut {
			satisfiedOutside := false
			var local []mrf.Lit
			for _, l := range c.Lits {
				a := mrf.Atom(l)
				if pt.PartOf[a] == int32(pi) {
					ll := localOf[a]
					if !mrf.Pos(l) {
						ll = -ll
					}
					local = append(local, ll)
					continue
				}
				if state[a] == mrf.Pos(l) {
					satisfiedOutside = true
					break
				}
			}
			if satisfiedOutside || len(local) == 0 {
				// Satisfied by the frozen exterior, or unsatisfiable within
				// this partition alone — either way no local constraint.
				continue
			}
			buf = append(buf, mrf.Clause{Weight: 1, Lits: local})
		}
		g.buf = buf[:0]
		g.sub.Clauses = buf
		rng := rand.New(rand.NewSource(opts.Seed + int64(round)*99991 + int64(pi)*6151))
		localState := p.ExtractState(state)
		g.next, g.ok = SampleSAT(ctx, g.sub, localState, opts, rng)
	}

	counts := make([]float64, m.NumAtoms+1)
	total := 0
	for round := 0; round < opts.Samples+opts.BurnIn && ctx.Err() == nil; round++ {
		for _, g := range parts {
			g.internal = g.internal[:0]
			g.cut = g.cut[:0]
		}
		// Global clause selection, exactly MCSAT's policy.
		for _, c := range m.Clauses {
			w := c.Weight
			sat := c.SatisfiedBy(state)
			switch {
			case c.IsHard():
				if w > 0 {
					route(c.Lits)
				}
			case w > 0 && sat:
				if selRng.Float64() < 1-math.Exp(-w) {
					route(c.Lits)
				}
			case w < 0 && !sat:
				if selRng.Float64() < 1-math.Exp(w) {
					for _, l := range c.Lits {
						route([]mrf.Lit{-l})
					}
				}
			}
		}

		for _, class := range coloring.Classes {
			round := round
			runClass(class, parallelism, func(pi int) { runPart(round, pi) })
			for _, pi := range class {
				if g := parts[pi]; g.ok {
					pt.Parts[pi].ProjectState(g.next, state)
				}
			}
		}

		if round >= opts.BurnIn {
			total++
			for a := 1; a <= m.NumAtoms; a++ {
				if state[a] {
					counts[a]++
				}
			}
		}
	}
	probs := make([]float64, m.NumAtoms+1)
	if total > 0 {
		for a := 1; a <= m.NumAtoms; a++ {
			probs[a] = counts[a] / float64(total)
		}
	}
	if ctx.Err() != nil {
		return probs, Canceled(ctx)
	}
	return probs, nil
}
