package search

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"tuffy/internal/datagen"
	"tuffy/internal/db"
	"tuffy/internal/mrf"
	"tuffy/internal/partition"
)

// cancelAfter returns a context that cancels itself after d.
func cancelAfter(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// unsatisfiableMRF keeps WalkSAT busy forever: contradictory unit clauses
// on every atom mean the violated set never empties.
func unsatisfiableMRF(n int) *mrf.MRF {
	m := mrf.New(n)
	for a := 1; a <= n; a++ {
		_ = m.AddClause(1, mrf.Lit(a))
		_ = m.AddClause(1, -mrf.Lit(a))
	}
	return m
}

func TestWalkSATStopsOnCanceledContext(t *testing.T) {
	m := unsatisfiableMRF(50)
	ctx := cancelAfter(t, 30*time.Millisecond)
	start := time.Now()
	r := WalkSAT(ctx, m, Options{MaxFlips: math.MaxInt64 / 2, Seed: 1})
	if el := time.Since(start); el > time.Second {
		t.Fatalf("WalkSAT ran %v after cancel, want < 1s", el)
	}
	if r.Best == nil {
		t.Fatal("no best-so-far state")
	}
	if r.BestCost != m.Cost(r.Best) {
		t.Fatalf("best-so-far cost %v inconsistent with state (%v)", r.BestCost, m.Cost(r.Best))
	}
}

func TestMonolithicReturnsTypedCancelError(t *testing.T) {
	m := unsatisfiableMRF(50)
	ctx := cancelAfter(t, 20*time.Millisecond)
	res, err := Monolithic(ctx, m, Options{MaxFlips: math.MaxInt64 / 2, Seed: 2})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v should unwrap to the context cause", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CanceledError", err)
	}
	if res == nil || res.Best == nil {
		t.Fatal("canceled result must carry the best-so-far state")
	}
}

func TestComponentAwareCancelKeepsValidState(t *testing.T) {
	m := datagen.Example1(40)
	comps := m.Components(false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any component runs
	res, err := ComponentAware(ctx, m, comps, ComponentOptions{Base: Options{MaxFlips: 1000, Seed: 3}})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || res.Best == nil {
		t.Fatal("no best-so-far state")
	}
	// Unstarted components stand at the all-false baseline; the reported
	// cost must match the stitched state exactly.
	if got := m.Cost(res.Best); got != res.BestCost {
		t.Fatalf("state cost %v != reported %v", got, res.BestCost)
	}
}

func TestGaussSeidelCancelReturnsBestSoFar(t *testing.T) {
	m, beta := gsTestMRF()
	pt := partition.Algorithm3(m, beta)
	if pt.NumCut() == 0 {
		t.Fatal("workload must cut clauses")
	}
	ctx := cancelAfter(t, 20*time.Millisecond)
	start := time.Now()
	res, err := GaussSeidel(ctx, pt, GaussSeidelOptions{
		Base:   Options{MaxFlips: math.MaxInt64 / 4, Seed: 5},
		Rounds: 1000,
	})
	if el := time.Since(start); el > time.Second {
		t.Fatalf("GaussSeidel ran %v after cancel", el)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || res.Best == nil {
		t.Fatal("no best-so-far state")
	}
	if len(res.Best) != m.NumAtoms+1 {
		t.Fatalf("best state has %d slots, want %d", len(res.Best), m.NumAtoms+1)
	}
}

// gsTestMRF builds two internally-chained blocks joined by one low-weight
// bridge, with contradictory unit clauses so partition searches never
// converge (the cancel has something to stop). Beta admits one block but
// not both, so the bridge is cut.
func gsTestMRF() (*mrf.MRF, int) {
	const atomsPer = 20
	m := mrf.New(2 * atomsPer)
	for b := 0; b < 2; b++ {
		base := b * atomsPer
		for i := 0; i < atomsPer; i++ {
			a := mrf.AtomID(base + i + 1)
			_ = m.AddClause(1, a)
			_ = m.AddClause(1, -a)
			if i > 0 {
				_ = m.AddClause(2, -mrf.Lit(base+i), a) // equality chain
				_ = m.AddClause(2, mrf.Lit(base+i), -a)
			}
		}
	}
	_ = m.AddClause(0.5, mrf.AtomID(atomsPer), mrf.AtomID(atomsPer+1)) // bridge
	// One block: atoms + unit lits + chain lits, plus slack for the bridge.
	return m, atomsPer + 2*atomsPer + 4*(atomsPer-1) + 4
}

func TestRDBMSWalkSATCancelDropsHelperTables(t *testing.T) {
	m := unsatisfiableMRF(300)
	d := storeMRF(t, m, db.Config{})
	before := len(d.TableNames())
	ctx := cancelAfter(t, 20*time.Millisecond)
	start := time.Now()
	res, err := RDBMSWalkSAT(ctx, d, "clauses", m.NumAtoms, Options{MaxFlips: math.MaxInt64 / 4, Seed: 7})
	if el := time.Since(start); el > time.Second {
		t.Fatalf("RDBMSWalkSAT ran %v after cancel", el)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || res.Best == nil {
		t.Fatal("no best-so-far state")
	}
	if after := len(d.TableNames()); after != before {
		t.Fatalf("catalog grew from %d to %d tables: helper tables leaked", before, after)
	}
}

func TestRDBMSWalkSATScanCancel(t *testing.T) {
	m := unsatisfiableMRF(300)
	d := storeMRF(t, m, db.Config{})
	ctx := cancelAfter(t, 20*time.Millisecond)
	res, err := RDBMSWalkSATScan(ctx, d, "clauses", m.NumAtoms, Options{MaxFlips: math.MaxInt64 / 4, Seed: 8})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || res.Best == nil {
		t.Fatal("no best-so-far state")
	}
}

func TestMCSATCancelReportsPartialMarginals(t *testing.T) {
	m := datagen.Example1(20)
	ctx := cancelAfter(t, 30*time.Millisecond)
	probs, err := MCSAT(ctx, m, MCSATOptions{Samples: math.MaxInt32, BurnIn: 0, Seed: 9})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(probs) != m.NumAtoms+1 {
		t.Fatalf("probs len %d, want %d", len(probs), m.NumAtoms+1)
	}
	for a, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("prob[%d] = %v out of range", a, p)
		}
	}
}

func TestGaussMCSATCancel(t *testing.T) {
	m, beta := gsTestMRF()
	pt := partition.Algorithm3(m, beta)
	ctx := cancelAfter(t, 30*time.Millisecond)
	probs, err := GaussMCSAT(ctx, pt, MCSATOptions{Samples: math.MaxInt32, BurnIn: 0, Seed: 10}, 2)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(probs) != m.NumAtoms+1 {
		t.Fatalf("probs len %d, want %d", len(probs), m.NumAtoms+1)
	}
}

func TestMCSATComponentsCancel(t *testing.T) {
	m := datagen.Example1(20)
	comps := m.Components(false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	probs, err := MCSATComponents(ctx, m, comps, MCSATOptions{Samples: 10, Seed: 11}, 2)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(probs) != m.NumAtoms+1 {
		t.Fatalf("probs len %d, want %d", len(probs), m.NumAtoms+1)
	}
}
