package search

import (
	"context"
	"errors"
)

// ErrCanceled is matched (via errors.Is) by the error every search entry
// point returns when its context is canceled or its deadline expires. The
// accompanying result is still valid: it holds the best state found before
// the cancellation, so a caller can serve a partial answer.
var ErrCanceled = errors.New("search: canceled")

// CanceledError is the typed cancellation error. It wraps the context's
// cancellation cause, so errors.Is also matches context.Canceled /
// context.DeadlineExceeded as appropriate.
type CanceledError struct {
	// Cause is context.Cause(ctx) at the time the search stopped.
	Cause error
}

func (e *CanceledError) Error() string {
	if e.Cause == nil {
		return "search: canceled"
	}
	return "search: canceled: " + e.Cause.Error()
}

// Unwrap exposes the context cause to errors.Is/As chains.
func (e *CanceledError) Unwrap() error { return e.Cause }

// Is makes every CanceledError match the ErrCanceled sentinel.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// Canceled builds the typed cancellation error for a done context.
func Canceled(ctx context.Context) error {
	return &CanceledError{Cause: context.Cause(ctx)}
}

// ctxCheckMask throttles per-flip context polls: flip loops test the context
// once every ctxCheckMask+1 iterations, bounding the cancellation latency of
// even a >1e6 flips/sec in-memory search to well under a millisecond of
// extra work while keeping the hot loop branch-cheap.
const ctxCheckMask = 0x3FF
