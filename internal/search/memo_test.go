package search

import (
	"context"
	"testing"

	"tuffy/internal/mrf"
)

// Fingerprints must depend on content only: two structurally identical MRFs
// share one fingerprint (that is what lets memo entries survive epoch
// swaps), different clause structure changes it, and the per-pointer cache
// returns the same string for a repeated MRF.
func TestMemoFingerprintContentAddressed(t *testing.T) {
	cm := NewComponentMemo(0) // 0 picks the default capacity
	build := func(w float64) *mrf.MRF {
		m := mrf.New(2)
		_ = m.AddClause(w, 1, -2)
		return m
	}
	a, b := build(1.5), build(1.5)
	if cm.Fingerprint(a) != cm.Fingerprint(b) {
		t.Fatal("identical local MRFs fingerprint differently")
	}
	if cm.Fingerprint(a) != cm.Fingerprint(a) {
		t.Fatal("cached fingerprint differs from first computation")
	}
	if cm.Fingerprint(a) == cm.Fingerprint(build(2.5)) {
		t.Fatal("different weights share a fingerprint")
	}
}

// lookup/store must round-trip an outcome, count hits and misses, keep the
// first value on duplicate stores, and evict FIFO at capacity.
func TestMemoLookupStoreEvict(t *testing.T) {
	cm := NewComponentMemo(2)
	o := Options{Seed: 3, MaxFlips: 100}
	r := &Result{Best: []bool{false, true}, BestCost: 1.5, Flips: 7}
	if _, ok := cm.lookup("fp1", o); ok {
		t.Fatal("empty memo hit")
	}
	cm.store("fp1", o, r)
	e, ok := cm.lookup("fp1", o)
	if !ok || e.bestCost != 1.5 || e.flips != 7 || !e.best[1] {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	// The stored state is a copy: mutating the producer's slice afterwards
	// must not corrupt the memo.
	r.Best[1] = false
	if e2, _ := cm.lookup("fp1", o); !e2.best[1] {
		t.Fatal("memo shares the producer's state slice")
	}
	// Different effective options are a different key.
	if _, ok := cm.lookup("fp1", Options{Seed: 4, MaxFlips: 100}); ok {
		t.Fatal("hit across different options")
	}
	cm.store("fp1", o, &Result{Best: []bool{true, true}})
	if e3, _ := cm.lookup("fp1", o); e3.bestCost != 1.5 {
		t.Fatal("duplicate store replaced the first outcome")
	}
	cm.store("fp2", o, r)
	cm.store("fp3", o, r) // capacity 2: evicts fp1, the oldest
	if _, ok := cm.lookup("fp1", o); ok {
		t.Fatal("oldest entry survived eviction")
	}
	s := cm.Stats()
	if s.Entries != 2 {
		t.Fatalf("entries = %d, want 2", s.Entries)
	}
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("stats = %+v, want both hits and misses counted", s)
	}
}

// Key-derivation helpers must be deterministic and pow2Ceil must round up.
func TestMemoKeyHelpers(t *testing.T) {
	for n, want := range map[int64]int64{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048} {
		if got := pow2Ceil(n); got != want {
			t.Fatalf("pow2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
	if seedOffset("abc") != seedOffset("abc") {
		t.Fatal("seedOffset not deterministic")
	}
	if seedOffset("abc") == seedOffset("abd") {
		t.Fatal("seedOffset ignores the fingerprint")
	}
	if memoKey("fp", Options{Seed: 1}) == memoKey("fp", Options{Seed: 2}) {
		t.Fatal("memoKey ignores the seed")
	}
}

// A memoized ComponentAware re-run must serve every component from the memo
// and reproduce the first run bit-identically — the engine-level property
// (cache survives evidence updates for untouched components) reduces to
// exactly this once repairs share local-MRF pointers.
func TestMemoComponentAwareBitIdenticalReplay(t *testing.T) {
	m := mrf.New(6)
	_ = m.AddClause(1, 1, 2)
	_ = m.AddClause(0.5, -2)
	_ = m.AddClause(2, 3, -4)
	_ = m.AddClause(1.5, 5)
	_ = m.AddClause(0.25, -5, 6)
	comps := m.Components(false)
	if len(comps) < 2 {
		t.Fatalf("want a multi-component network, got %d", len(comps))
	}
	cm := NewComponentMemo(0)
	opts := ComponentOptions{Base: Options{MaxFlips: 2000, Seed: 11}, Memo: cm}
	first, err := ComponentAware(context.Background(), m, comps, opts)
	if err != nil {
		t.Fatal(err)
	}
	h0 := cm.Stats().Hits
	second, err := ComponentAware(context.Background(), m, comps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hits := cm.Stats().Hits - h0; hits != int64(len(comps)) {
		t.Fatalf("replay hits = %d, want %d", hits, len(comps))
	}
	if first.BestCost != second.BestCost || first.Flips != second.Flips {
		t.Fatalf("replay diverged: cost %v vs %v, flips %d vs %d",
			first.BestCost, second.BestCost, first.Flips, second.Flips)
	}
	for i := range first.Best {
		if first.Best[i] != second.Best[i] {
			t.Fatalf("replay state differs at atom %d", i)
		}
	}
}
