package search

import (
	"math"
	"sync"
	"time"
)

// Tracker records best-cost-so-far over wall-clock time — the data behind
// the paper's time-cost plots (Figures 3, 4, 5, 6, 8). A fixed Offset can
// model time spent before search began (grounding), since the paper's
// curves start when grounding completes.
type Tracker struct {
	mu     sync.Mutex
	start  time.Time
	Offset time.Duration
	points []TracePoint
}

// TracePoint is one (elapsed, cost) sample.
type TracePoint struct {
	Elapsed time.Duration
	Cost    float64
}

// NewTracker starts the clock.
func NewTracker() *Tracker { return &Tracker{start: time.Now()} }

// Record appends a sample at the current elapsed time.
func (t *Tracker) Record(cost float64) {
	t.mu.Lock()
	t.points = append(t.points, TracePoint{Elapsed: t.Offset + time.Since(t.start), Cost: cost})
	t.mu.Unlock()
}

// Points returns a copy of the samples.
func (t *Tracker) Points() []TracePoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TracePoint, len(t.points))
	copy(out, t.points)
	return out
}

// CostAt returns the best cost recorded at or before the elapsed time (the
// last sample wins; +Inf if none).
func (t *Tracker) CostAt(elapsed time.Duration) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	best := inf()
	for _, p := range t.points {
		if p.Elapsed <= elapsed && p.Cost < best {
			best = p.Cost
		}
	}
	return best
}

// Final returns the last (lowest) recorded cost, +Inf if none.
func (t *Tracker) Final() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	best := inf()
	for _, p := range t.points {
		if p.Cost < best {
			best = p.Cost
		}
	}
	return best
}

func inf() float64 { return math.Inf(1) }
