package search

import (
	"context"
	"math"
	"sync"
	"time"

	"tuffy/internal/mrf"
)

// ComponentOptions configures component-aware search (Section 3.3).
type ComponentOptions struct {
	// Base WalkSAT options; MaxFlips is the TOTAL budget split across
	// components by weighted round-robin (|Gi|/|G| of the budget each,
	// exactly the scheduling of Section 4.4).
	Base Options
	// Parallelism is the number of worker goroutines (1 = sequential).
	Parallelism int
	// Memo, when set, caches per-component outcomes by content. It also
	// switches the per-component budget and seed derivation to a stable
	// scheme (size over the power-of-two ceiling of the total, content-hash
	// seeds) so that a component untouched by an evidence update keeps the
	// exact same effective options across epochs — the precondition for its
	// entry to be reusable bit-identically. Queries carrying a Tracker run
	// for real (no memo reads or writes) but use the same scheme, keeping
	// tracked and untracked results of one query identical.
	Memo *ComponentMemo
}

// ComponentResult is the global outcome of per-component search.
type ComponentResult struct {
	// Best is the global assignment stitched from each component's best.
	Best []bool
	// BestCost is the sum of per-component best costs plus fixed cost.
	BestCost float64
	Flips    int64
	Elapsed  time.Duration
	// PerComponent holds each component's final best cost.
	PerComponent []float64
}

// ComponentAware runs WalkSAT independently on each connected component,
// keeping the lowest-cost state per component — the behaviour Theorem 3.1
// proves exponentially better than monolithic WalkSAT on multi-component
// MRFs. Components are scheduled round-robin over a worker pool.
//
// A canceled context stops the search promptly and returns ErrCanceled with
// a valid best-so-far result: components already searched keep their best
// state, unstarted components stay at the all-false baseline.
func ComponentAware(ctx context.Context, parent *mrf.MRF, comps []*mrf.Component, opts ComponentOptions) (*ComponentResult, error) {
	opts.Base = opts.Base.withDefaults()
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	totalAtoms := 0
	for _, c := range comps {
		totalAtoms += c.Size()
	}
	start := time.Now()

	global := parent.NewState()
	res := &ComponentResult{PerComponent: make([]float64, len(comps))}
	var mu sync.Mutex

	// Per-component all-false baseline costs: they seed the time-cost
	// tracking below, and they are what an unstarted component contributes
	// when a cancellation stops the sweep early (its slice of the global
	// state is still all-false).
	baseline := make([]float64, len(comps))
	for i, c := range comps {
		baseline[i] = c.MRF.Cost(c.MRF.NewState())
		res.PerComponent[i] = baseline[i]
	}

	// Time-cost tracking: the global state starts all-false; as each
	// component's search completes its best is stitched in, and the global
	// cost is the sum of finished bests plus the all-false baseline of
	// unfinished components — the quantity the paper's time-cost curves
	// plot for Tuffy.
	var trackedCost float64
	if opts.Base.Tracker != nil {
		trackedCost = parent.FixedCost
		for i := range comps {
			trackedCost += baseline[i]
		}
		opts.Base.Tracker.Record(trackedCost)
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Parallelism; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range work {
				if ctx.Err() != nil {
					continue // drain the queue; baseline stands
				}
				comp := comps[idx]
				r := RunComponent(ctx, comp, idx, int64(totalAtoms), opts.Base, opts.Memo)
				if r.Best == nil {
					continue // canceled before the first state was recorded
				}
				mu.Lock()
				res.Flips += r.Flips
				res.PerComponent[idx] = r.BestCost
				comp.ProjectState(r.Best, global)
				if opts.Base.Tracker != nil {
					trackedCost += r.BestCost - baseline[idx]
					opts.Base.Tracker.Record(trackedCost)
				}
				mu.Unlock()
			}
		}(w)
	}
dispatch:
	for i := range comps {
		select {
		case work <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	res.Best = global
	res.BestCost = parent.FixedCost
	for _, c := range res.PerComponent {
		res.BestCost += c
	}
	// Per-component costs already include each sub-MRF's own FixedCost
	// (components carry none), so no double counting occurs.
	res.Elapsed = time.Since(start)
	if ctx.Err() != nil {
		return res, Canceled(ctx)
	}
	return res, nil
}

// RunComponent runs one component of a component-aware search: it derives
// the component's effective options from the parent-level base options —
// the weighted-round-robin flip budget (proportional to component size;
// with a memo the denominator is the power-of-two ceiling of totalAtoms,
// still within 2x of the proportional share but insensitive to the small
// atom-count drift evidence updates cause, so untouched components keep
// their budgets and memo entries across epochs) and the per-component
// seed (content-hash offset with a memo, index-based without) — then
// consults the memo and runs WalkSAT on a miss.
//
// This derivation is the contract of bit-identical distribution: the
// outcome is a pure function of (component content, idx, totalAtoms,
// defaulted base options, memo-enabledness), with no dependence on
// parallelism, scheduling, or which process runs it. ComponentAware's
// worker loop and the remote worker's shard execution both call exactly
// this function, so sharding components across processes cannot change
// any answer. base must already be defaulted (Options.withDefaults);
// totalAtoms is the component-atom total of the parent decomposition.
//
// A memo hit returns the stored outcome without a run; the returned Best
// is shared with the memo and must not be mutated. A base.Tracker, when
// set, disables memo reads and writes (tracked queries run for real) but
// leaves the derivation untouched. A nil Best reports a run canceled
// before its first state was recorded.
func RunComponent(ctx context.Context, comp *mrf.Component, idx int, totalAtoms int64, base Options, memo *ComponentMemo) *Result {
	denom := totalAtoms
	if memo != nil {
		denom = pow2Ceil(denom)
	}
	o := base
	o.MaxFlips = 0
	if denom != 0 {
		o.MaxFlips = base.MaxFlips * int64(comp.Size()) / denom
		if o.MaxFlips < 1 {
			o.MaxFlips = 1
		}
	}
	o.Tracker = nil // per-component costs are not global costs
	var fp string
	if memo != nil {
		// Content-hash seed: stable across epochs for untouched components
		// (and shared by isomorphic ones), unlike the index-based stream,
		// which shifts when earlier components appear or vanish.
		fp = memo.Fingerprint(comp.MRF)
		o.Seed = base.Seed + seedOffset(fp)
		if base.Tracker == nil {
			if e, ok := memo.lookup(fp, o); ok {
				return &Result{Best: e.best, BestCost: e.bestCost, Flips: e.flips, HitFlips: -1}
			}
		}
	} else {
		o.Seed = base.Seed + int64(idx)*7919
	}
	r := WalkSAT(ctx, comp.MRF, o)
	if r.Best != nil && memo != nil && base.Tracker == nil && ctx.Err() == nil {
		memo.store(fp, o, r)
	}
	return r
}

// DefaultedOptions exposes Options.withDefaults for callers outside the
// package that must reproduce the exact effective options of a query —
// the remote worker derives per-shard options from the same canonical
// form the coordinator used.
func DefaultedOptions(o Options) Options { return o.withDefaults() }

// Monolithic runs plain WalkSAT on the whole MRF (the Tuffy-p / Alchemy
// behaviour) and returns a ComponentResult for uniform comparison. On
// cancellation it returns the best-so-far result alongside ErrCanceled.
func Monolithic(ctx context.Context, parent *mrf.MRF, opts Options) (*ComponentResult, error) {
	r := WalkSAT(ctx, parent, opts)
	res := &ComponentResult{
		Best:     r.Best,
		BestCost: r.BestCost,
		Flips:    r.Flips,
		Elapsed:  r.Elapsed,
	}
	if ctx.Err() != nil {
		return res, Canceled(ctx)
	}
	return res, nil
}

// HittingTime measures the expected number of flips WalkSAT needs to first
// reach targetCost, averaged over trials — the quantity Theorem 3.1 bounds.
// maxFlips caps each trial; trials that never hit count as maxFlips (a
// lower-bound estimate).
func HittingTime(m *mrf.MRF, targetCost float64, trials int, maxFlips int64, seed int64) float64 {
	total := 0.0
	for t := 0; t < trials; t++ {
		o := Options{
			MaxFlips:   maxFlips,
			MaxTries:   1,
			Seed:       seed + int64(t)*104729,
			TargetCost: targetCost,
		}
		r := WalkSAT(context.Background(), m, o)
		if r.HitFlips >= 0 {
			total += float64(r.HitFlips)
		} else {
			total += float64(maxFlips)
		}
	}
	return total / float64(trials)
}

// ComponentHittingTime is HittingTime under component-aware search: each
// component is solved to its own optimum; the hitting time is the sum of
// per-component hitting times (the "4N" side of Example 1).
func ComponentHittingTime(comps []*mrf.Component, perCompTarget func(i int) float64, trials int, maxFlips int64, seed int64) float64 {
	total := 0.0
	for t := 0; t < trials; t++ {
		sum := 0.0
		for i, c := range comps {
			o := Options{
				MaxFlips:   maxFlips,
				MaxTries:   1,
				Seed:       seed + int64(t)*104729 + int64(i)*7919,
				TargetCost: perCompTarget(i),
			}
			r := WalkSAT(context.Background(), c.MRF, o)
			if r.HitFlips >= 0 {
				sum += float64(r.HitFlips)
			} else {
				sum += float64(maxFlips)
			}
		}
		total += sum
	}
	return total / float64(trials)
}

// OptimalCost exhaustively minimizes the cost of a small MRF (≤ ~20 atoms),
// used by tests and hitting-time experiments to find target costs.
func OptimalCost(m *mrf.MRF) float64 {
	n := m.NumAtoms
	if n > 24 {
		panic("search: OptimalCost limited to 24 atoms")
	}
	best := math.Inf(1)
	state := m.NewState()
	for mask := 0; mask < 1<<n; mask++ {
		for i := 1; i <= n; i++ {
			state[i] = mask&(1<<(i-1)) != 0
		}
		if c := m.Cost(state); c < best {
			best = c
		}
	}
	return best
}
