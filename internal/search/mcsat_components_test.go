package search

import (
	"context"
	"math"
	"testing"

	"tuffy/internal/mrf"
)

// Two independent single-atom networks: component-factorized MC-SAT must
// reproduce each closed-form marginal.
func TestMCSATComponentsMatchesClosedForm(t *testing.T) {
	m := mrf.New(2)
	_ = m.AddClause(1, 1)  // Pr[a1] = 1/(1+e^-1)
	_ = m.AddClause(-1, 2) // Pr[a2] = e^-1/(1+e^-1)
	comps := m.Components(false)
	if len(comps) != 2 {
		t.Fatalf("components = %d", len(comps))
	}
	probs, err := MCSATComponents(context.Background(), m, comps, MCSATOptions{Samples: 4000, BurnIn: 200, Seed: 77}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want1 := 1 / (1 + math.Exp(-1))
	want2 := math.Exp(-1) / (1 + math.Exp(-1))
	if math.Abs(probs[1]-want1) > 0.06 {
		t.Fatalf("Pr[a1] = %v, want ~%v", probs[1], want1)
	}
	if math.Abs(probs[2]-want2) > 0.06 {
		t.Fatalf("Pr[a2] = %v, want ~%v", probs[2], want2)
	}
}

// Factorized and monolithic MC-SAT must agree on a multi-component network
// (they sample the same distribution).
func TestMCSATComponentsAgreesWithMonolithic(t *testing.T) {
	m := mrf.New(4)
	_ = m.AddClause(1.5, 1, 2)
	_ = m.AddClause(1, -1)
	_ = m.AddClause(2, 3)
	_ = m.AddClause(0.5, -3, 4)
	comps := m.Components(false)
	if len(comps) != 2 {
		t.Fatalf("components = %d", len(comps))
	}
	mono, err := MCSAT(context.Background(), m, MCSATOptions{Samples: 6000, BurnIn: 300, Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	fact, err := MCSATComponents(context.Background(), m, comps, MCSATOptions{Samples: 6000, BurnIn: 300, Seed: 79}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a <= 4; a++ {
		if math.Abs(mono[a]-fact[a]) > 0.08 {
			t.Fatalf("atom %d: monolithic %v vs factorized %v", a, mono[a], fact[a])
		}
	}
}

func TestMCSATComponentsParallelDeterministicPerComponent(t *testing.T) {
	m := mrf.New(6)
	for i := 1; i <= 6; i++ {
		_ = m.AddClause(1, mrf.AtomID(i))
	}
	comps := m.Components(false)
	a, err := MCSATComponents(context.Background(), m, comps, MCSATOptions{Samples: 500, BurnIn: 50, Seed: 81}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MCSATComponents(context.Background(), m, comps, MCSATOptions{Samples: 500, BurnIn: 50, Seed: 81}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if a[i] != b[i] {
			t.Fatalf("atom %d: %v != %v across parallelism", i, a[i], b[i])
		}
	}
}
