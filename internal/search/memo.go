package search

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"tuffy/internal/mrf"
)

// ComponentMemo is the component-granular result cache of the epoch Engine:
// it maps (component content, effective WalkSAT options) to the component's
// finished best state. The key is a fingerprint of the component's local
// MRF — not its identity within one epoch — so entries stay valid across
// evidence updates for every component the update did not touch, and two
// isomorphic components inside one epoch share a single entry. A hit is
// bit-identical to the run that produced it: the key captures everything the
// deterministic per-component search depends on, so no invalidation is ever
// needed for correctness; eviction is FIFO for capacity only.
type ComponentMemo struct {
	mu      sync.Mutex
	max     int
	entries map[string]memoEntry
	order   []string

	// fps caches each immutable local MRF's fingerprint by pointer, so the
	// linear hash is paid once per component per epoch (repairs share the
	// untouched components' MRF pointers across epochs).
	fps sync.Map // *mrf.MRF -> string

	hits   atomic.Int64
	misses atomic.Int64
}

type memoEntry struct {
	best     []bool
	bestCost float64
	flips    int64
}

// MemoStats is a point-in-time snapshot of a ComponentMemo.
type MemoStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// NewComponentMemo creates a memo holding at most max entries (max <= 0
// picks the default 8192).
func NewComponentMemo(max int) *ComponentMemo {
	if max <= 0 {
		max = 8192
	}
	return &ComponentMemo{max: max, entries: make(map[string]memoEntry)}
}

// Stats snapshots the memo's counters.
func (cm *ComponentMemo) Stats() MemoStats {
	cm.mu.Lock()
	n := len(cm.entries)
	cm.mu.Unlock()
	return MemoStats{Hits: cm.hits.Load(), Misses: cm.misses.Load(), Entries: n}
}

// Fingerprint returns a content hash of the local MRF: atom count, fixed
// cost, and every clause's weight and literals. Atom descriptors are
// excluded on purpose — search outcomes depend only on the clause structure.
func (cm *ComponentMemo) Fingerprint(m *mrf.MRF) string {
	if v, ok := cm.fps.Load(m); ok {
		return v.(string)
	}
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(uint64(m.NumAtoms))
	w(math.Float64bits(m.FixedCost))
	for _, c := range m.Clauses {
		w(math.Float64bits(c.Weight))
		w(uint64(len(c.Lits)))
		for _, l := range c.Lits {
			w(uint64(uint32(l)))
		}
	}
	fp := fmt.Sprintf("%016x", h.Sum64())
	cm.fps.Store(m, fp)
	return fp
}

// pow2Ceil rounds n up to the next power of two (minimum 1).
func pow2Ceil(n int64) int64 {
	p := int64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// seedOffset derives a deterministic per-component seed offset from the
// component's content fingerprint.
func seedOffset(fp string) int64 {
	h := fnv.New32a()
	h.Write([]byte(fp))
	return int64(h.Sum32())
}

func memoKey(fp string, o Options) string {
	return fmt.Sprintf("%s|%d|%d|%d|%g|%g", fp, o.Seed, o.MaxFlips, o.MaxTries, o.NoisyP, o.HardWeight)
}

// lookup returns the memoized outcome for a component under the effective
// options, if present. The returned state is shared and must not be
// mutated; ComponentAware only projects it into the global state.
func (cm *ComponentMemo) lookup(fp string, o Options) (memoEntry, bool) {
	k := memoKey(fp, o)
	cm.mu.Lock()
	e, ok := cm.entries[k]
	cm.mu.Unlock()
	if ok {
		cm.hits.Add(1)
	} else {
		cm.misses.Add(1)
	}
	return e, ok
}

// store records a completed (never canceled) per-component search outcome.
func (cm *ComponentMemo) store(fp string, o Options, r *Result) {
	k := memoKey(fp, o)
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if _, dup := cm.entries[k]; dup {
		return
	}
	for len(cm.entries) >= cm.max && len(cm.order) > 0 {
		delete(cm.entries, cm.order[0])
		cm.order = cm.order[1:]
	}
	cm.entries[k] = memoEntry{
		best:     append([]bool(nil), r.Best...),
		bestCost: r.BestCost,
		flips:    r.Flips,
	}
	cm.order = append(cm.order, k)
}
