package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"tuffy/internal/db"
	"tuffy/internal/db/index"
	"tuffy/internal/db/storage"
	"tuffy/internal/db/tuple"
	"tuffy/internal/mrf"
)

// This file makes the in-database WalkSAT variant fully set-oriented
// (closing the Tuffy-mm gap the paper measures in Table 3 / Figure 4): at
// search start it materializes an atom→clause inverted-index table and a
// violated-clause side table inside the engine, then maintains both
// incrementally per flip. After flipping atom a only the clauses the index
// maps to a are re-evaluated, and their membership transitions are applied
// to the side table as batched UPDATE/DELETE/INSERT sets, so the flip loop
// performs zero full clause-table scans: clause picking is a reservoir
// sample over the (small) side table and greedy scoring touches only
// index-mapped rows. Every arithmetic operation happens in ascending-cid
// order — the clause table's scan order — so the search replays the
// full-scan variant's flip sequence, best state and best cost bit for bit.

// sideSeq uniquifies the helper-table names so concurrent searches over the
// same clause table (or repeated searches in one engine) never collide in
// the catalog.
var sideSeq atomic.Int64

// violEntry is one decoded side-table row.
type violEntry struct {
	cid  int64
	w    float64
	hard bool
}

// atomChunk caps the clause ids stored per inverted-index row so one row
// always fits a page; high-degree atoms span several rows.
const atomChunk = 512

// sideTables is the set-oriented in-database search state: the read-only
// clause table plus the two maintained helper tables and their hash
// indexes. The incremental aggregates mirror what the side table implies;
// the invariant test harness cross-checks them against from-scratch
// recomputation.
type sideTables struct {
	hardW     float64
	clauses   *db.Table
	clauseIdx *index.HashIndex // cid -> clause-table rid
	atomTab   *db.Table        // (aid, cids) chunks, read-only after build
	atomIdx   *index.HashIndex // aid -> atomTab chunk rids (in chunk order)
	viol      *db.Table        // (cid, weight, is_hard): violated clauses only
	violIdx   *index.HashIndex // cid -> side-table rid, maintained per flip

	// Incrementally-maintained aggregates of the side table, updated from
	// per-flip deltas alone. The cost the search reports is the exact
	// ascending-cid sum pickViolated takes over the side table (bit-equal
	// to the full-scan variant's, which float reassociation in an
	// accumulator could not guarantee); these accumulators are the
	// redundant bookkeeping the invariant test harness cross-checks the
	// side table against after every K flips.
	softCost float64 // Σ|w| over violated soft clauses
	hardViol int     // violated hard clauses

	// Amortized per-flip scratch buffers.
	entries  []violEntry
	delRIDs  []storage.RecordID
	insRows  []tuple.Row
	moveSeen map[int64]mrf.Clause // per-greedy-move decode cache

	// free lists the side-table slots tombstoned by delete-surplus flips;
	// insert-surplus flips revive them (LIFO, for page locality) before
	// appending, so the side-table heap stays bounded at the high-water
	// mark of |violated| over the whole search instead of growing with
	// churn.
	free []storage.RecordID
}

// intKey encodes a single BIGINT as a hash-index key, matching what
// Table.BuildHashIndex computes for column 0.
func intKey(v int64) string {
	return tuple.EncodeKey(tuple.Row{tuple.I64(v)}, []int{0})
}

// newSideTables builds the inverted-index table and the initial violated
// side table for the given start state. These setup passes are the only
// full scans of the clause table the search ever performs.
func newSideTables(d *db.DB, clauseTable string, numAtoms int, state []bool, hardW float64) (*sideTables, error) {
	t, ok := d.Table(clauseTable)
	if !ok {
		return nil, errNoTable(clauseTable)
	}
	s := &sideTables{hardW: hardW, clauses: t}

	// cid -> rid point-lookup index on the (read-only) clause table.
	cidx, err := t.BuildHashIndex([]int{0})
	if err != nil {
		return nil, err
	}
	s.clauseIdx = cidx
	// Every failure from here on must undo whatever registered state the
	// setup created so far (the cid index above, helper tables below) — a
	// retried search must not accumulate orphans in the catalog.
	fail := func(err error) (*sideTables, error) {
		s.drop(d)
		return nil, err
	}

	// One scan builds the atom occurrence lists and the initial violated
	// set. The search's ordering guarantees assume rows are stored in
	// ascending-cid order (mrf.Store's layout), which also makes duplicate
	// atoms within one clause adjacent appends — verified as we go.
	occ := make([][]int64, numAtoms+1)
	var violRows []tuple.Row
	lastCid := int64(-1)
	err = t.ScanRows(func(_ storage.RecordID, row tuple.Row) error {
		c, cerr := mrf.RowClause(row)
		if cerr != nil {
			return cerr
		}
		cid := row[0].I
		if cid <= lastCid {
			return fmt.Errorf("search: clause table %s not in ascending cid order (%d after %d)", clauseTable, cid, lastCid)
		}
		lastCid = cid
		for _, l := range c.Lits {
			a := int(mrf.Atom(l))
			if a >= len(occ) {
				return fmt.Errorf("search: clause %d mentions atom %d beyond numAtoms %d", cid, a, numAtoms)
			}
			if list := occ[a]; len(list) > 0 && list[len(list)-1] == cid {
				continue // duplicate literal of one clause
			}
			occ[a] = append(occ[a], cid)
		}
		if c.ViolatedBy(state) {
			violRows = append(violRows, mrf.ViolRow(cid, c))
			if c.IsHard() {
				s.hardViol++
			} else {
				s.softCost += math.Abs(c.Weight)
			}
		}
		return nil
	})
	if err != nil {
		return fail(err)
	}

	seq := sideSeq.Add(1)
	s.atomTab, err = d.CreateTable(fmt.Sprintf("%s_aidx_%d", clauseTable, seq), mrf.AtomIndexSchema())
	if err != nil {
		return fail(err)
	}
	var atomRows []tuple.Row
	for a, cids := range occ {
		for len(cids) > 0 {
			n := min(len(cids), atomChunk)
			atomRows = append(atomRows, mrf.AtomIndexRow(int64(a), cids[:n]))
			cids = cids[n:]
		}
	}
	if err := s.atomTab.InsertMany(atomRows); err != nil {
		return fail(err)
	}
	if s.atomIdx, err = s.atomTab.BuildHashIndex([]int{0}); err != nil {
		return fail(err)
	}

	s.viol, err = d.CreateTable(fmt.Sprintf("%s_viol_%d", clauseTable, seq), mrf.ViolTableSchema())
	if err != nil {
		return fail(err)
	}
	if err := s.viol.InsertMany(violRows); err != nil {
		return fail(err)
	}
	if s.violIdx, err = s.viol.BuildHashIndex([]int{0}); err != nil {
		return fail(err)
	}
	return s, nil
}

// drop removes the helper tables from the catalog and deregisters the
// clause table's cid point index, releasing its O(|clauses|) in-memory
// footprint (a concurrent search on the same table keeps working off its
// own pointer and re-registers on its next build).
func (s *sideTables) drop(d *db.DB) {
	if s.atomTab != nil {
		_ = d.DropTable(s.atomTab.Name())
	}
	if s.viol != nil {
		_ = d.DropTable(s.viol.Name())
	}
	if s.clauseIdx != nil {
		s.clauses.DropHashIndex([]int{0})
	}
}

// clause fetches one clause row by id through the point index — the page
// reads a flip actually pays, in place of full scans.
func (s *sideTables) clause(cid int64) (mrf.Clause, error) {
	rids := s.clauseIdx.Lookup(intKey(cid))
	if len(rids) != 1 {
		return mrf.Clause{}, fmt.Errorf("search: clause id %d has %d index entries", cid, len(rids))
	}
	row, err := s.clauses.Get(rids[0])
	if err != nil {
		return mrf.Clause{}, err
	}
	if row == nil {
		return mrf.Clause{}, fmt.Errorf("search: clause id %d deleted mid-search", cid)
	}
	return mrf.RowClause(row)
}

// atomClauses returns the ids of every clause mentioning the atom, in
// ascending order, by reading the atom's inverted-index chunk rows.
func (s *sideTables) atomClauses(a mrf.AtomID) ([]int64, error) {
	rids := s.atomIdx.Lookup(intKey(int64(a)))
	if len(rids) == 0 {
		return nil, nil
	}
	var cids []int64
	for _, rid := range rids {
		row, err := s.atomTab.Get(rid)
		if err != nil {
			return nil, err
		}
		if row == nil {
			return nil, fmt.Errorf("search: atom-index row for atom %d deleted", a)
		}
		_, chunk, err := mrf.RowAtomIndex(row)
		if err != nil {
			return nil, err
		}
		cids = append(cids, chunk...)
	}
	return cids, nil
}

// pickViolated mirrors the full-scan variant's scanPick restricted to the
// side table: one pass over the (small) violated set in ascending-cid
// order, accumulating the identical cost sum and consuming the identical
// reservoir-sampling RNG draws, then a single point read for the picked
// clause. The clause table itself is never scanned.
func (s *sideTables) pickViolated(rng *rand.Rand) (picked mrf.Clause, have bool, cost float64, hard int, err error) {
	entries := s.entries[:0]
	err = s.viol.ScanRows(func(_ storage.RecordID, row tuple.Row) error {
		cid, w, isHard, rerr := mrf.RowViol(row)
		if rerr != nil {
			return rerr
		}
		entries = append(entries, violEntry{cid: cid, w: w, hard: isHard})
		return nil
	})
	s.entries = entries
	if err != nil {
		return picked, false, 0, 0, err
	}
	// Slot reuse and tombstoning perturb heap order; cid order restores the
	// clause table's scan order, which the cost sum and RNG stream replay.
	sort.Slice(entries, func(i, j int) bool { return entries[i].cid < entries[j].cid })
	seen := 0
	pickedCid := int64(-1)
	for _, e := range entries {
		if e.hard {
			hard++
			cost += s.hardW
		} else {
			cost += math.Abs(e.w)
		}
		seen++
		if rng.Intn(seen) == 0 {
			pickedCid = e.cid
			have = true
		}
	}
	if have {
		picked, err = s.clause(pickedCid)
	}
	return picked, have, cost, hard, err
}

// greedyAtom mirrors the full-scan variant's one-scan greedy scoring with
// index-mapped rows only: each candidate's cost delta accumulates over
// exactly the clauses containing that atom, in ascending-cid order — the
// same additions in the same order as the full scan produces, so the chosen
// atom is bit-identical at O(occurrences) page reads.
func (s *sideTables) greedyAtom(picked mrf.Clause, state []bool) (mrf.AtomID, error) {
	// Candidates of one clause share many clauses (the picked clause at
	// minimum); cache decodes for the duration of this move so a shared
	// clause is fetched once, not once per candidate. State is frozen
	// within a move, so the cache cannot go stale.
	if s.moveSeen == nil {
		s.moveSeen = make(map[int64]mrf.Clause)
	} else {
		clear(s.moveSeen)
	}
	bestDelta := math.Inf(1)
	atom := mrf.Atom(picked.Lits[0])
	for _, cl := range picked.Lits {
		cand := mrf.Atom(cl)
		cids, err := s.atomClauses(cand)
		if err != nil {
			return 0, err
		}
		delta := 0.0
		for _, cid := range cids {
			c, ok := s.moveSeen[cid]
			if !ok {
				var err error
				if c, err = s.clause(cid); err != nil {
					return 0, err
				}
				s.moveSeen[cid] = c
			}
			var w float64
			if c.IsHard() {
				w = s.hardW
			} else {
				w = math.Abs(c.Weight)
			}
			violNow := c.ViolatedBy(state)
			if violFlip := violatedIfFlipped(c, state, cand); violFlip != violNow {
				if violFlip {
					delta += w
				} else {
					delta -= w
				}
			}
		}
		if delta < bestDelta {
			bestDelta = delta
			atom = cand
		}
	}
	return atom, nil
}

// applyFlip re-evaluates exactly the clauses containing the flipped atom
// (state must already reflect the flip) and applies their membership
// transitions to the side table set-oriented: paired leave/enter
// transitions reuse slots in place through one batched UpdateMany — the
// side table never grows tombstones under churn — and the remainder goes
// through one DeleteMany / InsertMany each. The running aggregates update
// from these deltas alone.
func (s *sideTables) applyFlip(a mrf.AtomID, state []bool) error {
	cids, err := s.atomClauses(a)
	if err != nil {
		return err
	}
	dels := s.delRIDs[:0]
	ins := s.insRows[:0]
	for _, cid := range cids {
		c, err := s.clause(cid)
		if err != nil {
			return err
		}
		sideRIDs := s.violIdx.Lookup(intKey(cid))
		was := len(sideRIDs) > 0
		now := c.ViolatedBy(state)
		if now == was {
			continue
		}
		if now {
			ins = append(ins, mrf.ViolRow(cid, c))
			if c.IsHard() {
				s.hardViol++
			} else {
				s.softCost += math.Abs(c.Weight)
			}
		} else {
			dels = append(dels, sideRIDs[0])
			if c.IsHard() {
				s.hardViol--
			} else {
				s.softCost -= math.Abs(c.Weight)
			}
		}
	}
	s.delRIDs, s.insRows = dels, ins
	n := min(len(dels), len(ins))
	if n > 0 {
		if err := s.viol.UpdateMany(dels[:n], ins[:n]); err != nil {
			return err
		}
	}
	// Delete surplus: tombstone the rows but remember their slots on the
	// free list for a later insert-surplus flip to revive.
	if err := s.viol.DeleteMany(dels[n:]); err != nil {
		return err
	}
	s.free = append(s.free, dels[n:]...)
	// Insert surplus: revive freed slots first (LIFO), append only what
	// the free list cannot absorb — which can only happen when |violated|
	// reaches a new high-water mark.
	ins = ins[n:]
	if k := min(len(s.free), len(ins)); k > 0 {
		reuse := s.free[len(s.free)-k:]
		if err := s.viol.ReviveMany(reuse, ins[:k]); err != nil {
			return err
		}
		s.free = s.free[:len(s.free)-k]
		ins = ins[k:]
	}
	return s.viol.InsertMany(ins)
}

// SideWalkSAT is the staged form of the set-oriented RDBMSWalkSAT:
// NewSideWalkSAT pays the setup scans (point index, inverted-index table,
// initial side table), Run executes the flip loop with zero full
// clause-table scans. The stages are separate so benchmarks and tests can
// meter the flip loop's I/O on its own.
type SideWalkSAT struct {
	d     *db.DB
	opts  Options
	rng   *rand.Rand
	state []bool
	side  *sideTables
	ran   bool
}

// NewSideWalkSAT draws the initial atom state (same RNG stream as the
// full-scan variant) and builds the set-oriented search state for it. A
// context canceled before the setup scans complete aborts the build with
// Canceled(ctx) and leaves no helper tables behind.
func NewSideWalkSAT(ctx context.Context, d *db.DB, clauseTable string, numAtoms int, opts Options) (*SideWalkSAT, error) {
	if ctx.Err() != nil {
		return nil, Canceled(ctx)
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	state := make([]bool, numAtoms+1)
	for a := 1; a <= numAtoms; a++ {
		state[a] = rng.Intn(2) == 0
	}
	side, err := newSideTables(d, clauseTable, numAtoms, state, opts.HardWeight)
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		side.drop(d)
		return nil, Canceled(ctx)
	}
	return &SideWalkSAT{d: d, opts: opts, rng: rng, state: state, side: side}, nil
}

// Run executes the flip loop. It may be called once; the helper tables are
// dropped from the catalog when it returns — including when the context
// cancels the loop, in which case the best-so-far result accompanies
// ErrCanceled.
func (w *SideWalkSAT) Run(ctx context.Context) (*Result, error) { return w.run(ctx, nil) }

// run is Run with a test hook observing every flip after the side table has
// absorbed it.
func (w *SideWalkSAT) run(ctx context.Context, onFlip func(flip int64, atom mrf.AtomID) error) (*Result, error) {
	if w.ran {
		return nil, fmt.Errorf("search: SideWalkSAT.Run called twice")
	}
	w.ran = true
	defer w.side.drop(w.d)

	opts, rng, state := w.opts, w.rng, w.state
	best := append([]bool(nil), state...)
	bestCost := math.Inf(1)
	res := &Result{HitFlips: -1, BestCost: bestCost}
	start := time.Now()

	for flip := int64(0); ; flip++ {
		if ctx.Err() != nil {
			// Each flip pays page I/O, so poll every iteration.
			res.Best = best
			res.BestCost = bestCost
			res.Elapsed = time.Since(start)
			return res, Canceled(ctx)
		}
		picked, have, cost, hard, err := w.side.pickViolated(rng)
		if err != nil {
			return nil, err
		}
		reported := cost
		if hard > 0 {
			reported = math.Inf(1)
		}
		// The incrementally-maintained cost is exact, so the last flip's
		// improvement is caught right here on the final iteration — no
		// closing full-table scanPick, and the Tracker sees it like any
		// in-loop improvement.
		if reported < bestCost {
			bestCost = reported
			copy(best, state)
			if opts.Tracker != nil {
				opts.Tracker.Record(bestCost)
			}
		}
		if !have || flip >= opts.MaxFlips {
			break
		}
		var atom mrf.AtomID
		if rng.Float64() <= opts.NoisyP {
			atom = mrf.Atom(picked.Lits[rng.Intn(len(picked.Lits))])
		} else {
			if atom, err = w.side.greedyAtom(picked, state); err != nil {
				return nil, err
			}
		}
		state[atom] = !state[atom]
		if err := w.side.applyFlip(atom, state); err != nil {
			return nil, err
		}
		res.Flips++
		if onFlip != nil {
			if err := onFlip(flip, atom); err != nil {
				return nil, err
			}
		}
	}
	res.Best = best
	res.BestCost = bestCost
	res.Elapsed = time.Since(start)
	return res, nil
}
