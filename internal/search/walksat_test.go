package search

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"tuffy/internal/datagen"
	"tuffy/internal/mrf"
)

func TestWalkSATSolvesTinySAT(t *testing.T) {
	// (x1 v x2) & (!x1 v x2) & (x1 v !x2): optimum x1=x2=true, cost 0.
	m := mrf.New(2)
	_ = m.AddClause(1, 1, 2)
	_ = m.AddClause(1, -1, 2)
	_ = m.AddClause(1, 1, -2)
	r := WalkSAT(context.Background(), m, Options{MaxFlips: 10_000, Seed: 1})
	if r.BestCost != 0 {
		t.Fatalf("cost = %v", r.BestCost)
	}
	if !r.Best[1] || !r.Best[2] {
		t.Fatalf("best = %v", r.Best)
	}
}

func TestWalkSATExample1SingleComponent(t *testing.T) {
	m := datagen.Example1(1)
	r := WalkSAT(context.Background(), m, Options{MaxFlips: 1000, Seed: 2})
	if r.BestCost != 1 {
		t.Fatalf("Example1 N=1 optimum cost = %v, want 1", r.BestCost)
	}
}

func TestWalkSATRespectsHardClauses(t *testing.T) {
	// hard: x1 must be true; soft: x1 false (weight 3). Optimum: x1 true,
	// cost 3 (soft violated), not +Inf.
	m := mrf.New(1)
	_ = m.AddClause(math.Inf(1), 1)
	_ = m.AddClause(3, -1)
	r := WalkSAT(context.Background(), m, Options{MaxFlips: 1000, Seed: 3})
	if r.BestCost != 3 {
		t.Fatalf("cost = %v, want 3", r.BestCost)
	}
	if !r.Best[1] {
		t.Fatal("hard clause violated in best state")
	}
}

func TestWalkSATNegativeWeights(t *testing.T) {
	// (x1, -2): violated when true. Optimum: x1 false, cost 0.
	m := mrf.New(1)
	_ = m.AddClause(-2, 1)
	r := WalkSAT(context.Background(), m, Options{MaxFlips: 1000, Seed: 4})
	if r.BestCost != 0 {
		t.Fatalf("cost = %v", r.BestCost)
	}
	if r.Best[1] {
		t.Fatal("best should set x1 false")
	}
}

func TestWalkSATFixedCostIncluded(t *testing.T) {
	m := mrf.New(1)
	m.FixedCost = 2.5
	_ = m.AddClause(1, 1)
	r := WalkSAT(context.Background(), m, Options{MaxFlips: 100, Seed: 5})
	if r.BestCost != 2.5 {
		t.Fatalf("cost = %v, want 2.5 (fixed)", r.BestCost)
	}
}

func TestWalkSATInitState(t *testing.T) {
	// With a huge MRF and 0 flips allowed, the result is the init state.
	m := datagen.Example1(10)
	init := m.NewState()
	for i := 1; i <= m.NumAtoms; i++ {
		init[i] = true // the optimal state
	}
	r := WalkSAT(context.Background(), m, Options{MaxFlips: 1, Seed: 6, InitState: init})
	if r.BestCost != 10 {
		t.Fatalf("cost from optimal init = %v, want 10", r.BestCost)
	}
}

func TestWalkSATTargetCostStopsEarly(t *testing.T) {
	m := datagen.Example1(3)
	r := WalkSAT(context.Background(), m, Options{MaxFlips: 1_000_000, Seed: 7, TargetCost: 3})
	if r.HitFlips < 0 {
		t.Fatal("target never hit")
	}
	if r.Flips > 100_000 {
		t.Fatalf("did not stop early: %d flips", r.Flips)
	}
}

func TestWalkSATDeterministicWithSeed(t *testing.T) {
	m := datagen.Example1(5)
	r1 := WalkSAT(context.Background(), m, Options{MaxFlips: 500, Seed: 42})
	r2 := WalkSAT(context.Background(), m, Options{MaxFlips: 500, Seed: 42})
	if r1.BestCost != r2.BestCost || r1.Flips != r2.Flips {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", r1.BestCost, r1.Flips, r2.BestCost, r2.Flips)
	}
}

// The engine's incremental cost must match the from-scratch MRF cost after
// arbitrary flip sequences.
func TestEngineIncrementalCostProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		m := mrf.New(n)
		nc := 1 + rng.Intn(25)
		for i := 0; i < nc; i++ {
			maxWidth := 3
			if n < maxWidth {
				maxWidth = n
			}
			width := 1 + rng.Intn(maxWidth)
			seen := map[mrf.AtomID]bool{}
			var lits []mrf.Lit
			for len(lits) < width {
				a := mrf.AtomID(1 + rng.Intn(n))
				if seen[a] {
					continue
				}
				seen[a] = true
				l := a
				if rng.Intn(2) == 0 {
					l = -a
				}
				lits = append(lits, l)
			}
			w := float64(1 + rng.Intn(4))
			if rng.Intn(3) == 0 {
				w = -w
			}
			_ = m.AddClause(w, lits...)
		}
		e := newEngine(m, 1e7)
		e.reset(randomState(n, rng))
		for step := 0; step < 50; step++ {
			a := mrf.AtomID(1 + rng.Intn(n))
			predicted := e.deltaCost(a)
			before := e.cost
			e.flip(a)
			if math.Abs(e.cost-(before+predicted)) > 1e-9 {
				t.Fatalf("trial %d: deltaCost %v but cost moved %v", trial, predicted, e.cost-before)
			}
			if math.Abs(e.reportedCost()-m.Cost(e.state)) > 1e-9 {
				t.Fatalf("trial %d: incremental cost %v != recomputed %v", trial, e.reportedCost(), m.Cost(e.state))
			}
		}
	}
}

func TestEngineViolSetConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := datagen.Example1(6)
	e := newEngine(m, 1e7)
	e.reset(randomState(m.NumAtoms, rng))
	for step := 0; step < 200; step++ {
		e.flip(mrf.AtomID(1 + rng.Intn(m.NumAtoms)))
		want := 0
		for ci := range m.Clauses {
			if e.isViolated(int32(ci)) {
				want++
				if e.violPos[ci] < 0 {
					t.Fatalf("violated clause %d missing from viol set", ci)
				}
			} else if e.violPos[ci] >= 0 {
				t.Fatalf("satisfied clause %d in viol set", ci)
			}
		}
		if len(e.viol) != want {
			t.Fatalf("viol set size %d, want %d", len(e.viol), want)
		}
	}
}

func TestOptimalCostExample1(t *testing.T) {
	m := datagen.Example1(4)
	if got := OptimalCost(m); got != 4 {
		t.Fatalf("optimal cost = %v, want 4", got)
	}
}

func TestComponentAwareFindsOptimum(t *testing.T) {
	const n = 50
	m := datagen.Example1(n)
	comps := m.Components(false)
	if len(comps) != n {
		t.Fatalf("components = %d", len(comps))
	}
	res, err := ComponentAware(context.Background(), m, comps, ComponentOptions{
		Base: Options{MaxFlips: int64(400 * n), Seed: 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != n {
		t.Fatalf("component-aware cost = %v, want %d", res.BestCost, n)
	}
	// Verify stitched global state really has that cost.
	if got := m.Cost(res.Best); got != float64(n) {
		t.Fatalf("stitched state cost = %v", got)
	}
}

func TestComponentAwareParallelMatches(t *testing.T) {
	m := datagen.Example1(30)
	comps := m.Components(false)
	seq, err := ComponentAware(context.Background(), m, comps, ComponentOptions{Base: Options{MaxFlips: 12000, Seed: 19}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ComponentAware(context.Background(), m, comps, ComponentOptions{Base: Options{MaxFlips: 12000, Seed: 19}, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.BestCost != par.BestCost {
		t.Fatalf("parallel cost %v != sequential %v", par.BestCost, seq.BestCost)
	}
}

// Theorem 3.1's empirical content: monolithic WalkSAT needs far more flips
// than component-aware search to reach the optimum of Example 1.
func TestTheorem31HittingTimeGap(t *testing.T) {
	const n = 12
	m := datagen.Example1(n)
	comps := m.Components(false)

	compTime := ComponentHittingTime(comps, func(int) float64 { return 1 }, 5, 10_000, 23)
	monoTime := HittingTime(m, n, 5, 200_000, 23)

	if compTime <= 0 {
		t.Fatalf("component hitting time = %v", compTime)
	}
	if monoTime < 4*compTime {
		t.Fatalf("expected large gap: monolithic %v vs component %v flips", monoTime, compTime)
	}
}

func TestMonolithicWrapper(t *testing.T) {
	m := datagen.Example1(2)
	res, err := Monolithic(context.Background(), m, Options{MaxFlips: 5000, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost < 2 {
		t.Fatalf("impossible cost %v", res.BestCost)
	}
	if res.Best == nil {
		t.Fatal("no best state")
	}
}

func TestTrackerRecordsMonotoneReadings(t *testing.T) {
	m := datagen.Example1(5)
	tr := NewTracker()
	WalkSAT(context.Background(), m, Options{MaxFlips: 2000, Seed: 31, Tracker: tr})
	pts := tr.Points()
	if len(pts) == 0 {
		t.Fatal("no trace points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Cost > pts[i-1].Cost {
			t.Fatalf("best-cost trace increased: %v -> %v", pts[i-1].Cost, pts[i].Cost)
		}
		if pts[i].Elapsed < pts[i-1].Elapsed {
			t.Fatalf("time went backwards")
		}
	}
	if tr.Final() > pts[0].Cost {
		t.Fatal("Final() inconsistent")
	}
}
