package search

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tuffy/internal/mrf"
	"tuffy/internal/partition"
)

// ClauseSource supplies a partition's internal clauses each time the
// partition is visited. It models Section 3.4's disk-resident partitions:
// when the grounded MRF exceeds RAM, partition clause data stays in the
// RDBMS and is re-read through the buffer pool on every visit (only the
// atom assignment and the cut structure are memory-resident). A nil source
// keeps all partitions in RAM. Implementations must return the same
// clauses in the same order on every call for a given partition; clauses
// are appended to dst and the extended slice returned, so callers can pool
// the buffer across rounds.
type ClauseSource interface {
	LoadClauses(pi int, dst []mrf.Clause) ([]mrf.Clause, error)
}

// GaussSeidelOptions configures partition-aware search (Section 3.4).
type GaussSeidelOptions struct {
	// Base WalkSAT options; MaxFlips is the per-partition budget per round.
	Base Options
	// Rounds is T in the paper's scheme: how many sweeps over the
	// partitions to run.
	Rounds int
	// Parallelism is the number of concurrent partition searches (1 =
	// sequential). Partitions that share a cut clause are never run
	// together, and results merge in one canonical order, so the result is
	// bit-identical for every value.
	Parallelism int
	// Clauses optionally serves internal clauses per visit (disk-resident
	// partitions); nil searches the in-RAM copies.
	Clauses ClauseSource
	// ClassBarrier forces the legacy lock-step schedule: one color class at
	// a time with a full barrier between classes. The default (false) is
	// the balanced pipelined schedule, which starts a partition as soon as
	// its cut neighbours' merges allow and dispatches ready partitions
	// largest-first, so one oversized partition no longer serializes its
	// whole class. Both schedules produce bit-identical results; the
	// barrier is kept as the lesion baseline for benchmarks.
	ClassBarrier bool
}

// gsCut is one cut clause as seen from one partition: the literals over the
// partition's local atom ids plus the external literals that are evaluated
// against the frozen global assignment. Precomputed once, used every round.
type gsCut struct {
	ci     int // index into Partitioning.Cut
	weight float64
	local  []mrf.Lit
	ext    []mrf.Lit // global-id literals outside the partition
}

// gsPart is the per-partition state hoisted out of the round loop: the cut
// projection templates, the pooled sub-MRF and clause buffer, and the slots
// the class workers write their results into.
type gsPart struct {
	part      *partition.Part
	nInternal int
	cuts      []gsCut
	sub       *mrf.MRF
	clauseBuf []mrf.Clause
	initBuf   []bool // local state extracted from global before the run
	best      []bool // WalkSAT result (local ids)
	flips     int64
	err       error
}

// runClass executes fn(pi) for every partition index in class on up to
// workers goroutines, returning after all complete. fn must write only its
// own partition's state (it may read shared frozen state), which is what
// color classes guarantee. Shared by the MAP and MC-SAT partition sweeps.
func runClass(class []int, workers int, fn func(pi int)) {
	if workers > len(class) {
		workers = len(class)
	}
	if workers <= 1 {
		for _, pi := range class {
			fn(pi)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pi := range work {
				fn(pi)
			}
		}()
	}
	for _, pi := range class {
		work <- pi
	}
	close(work)
	wg.Wait()
}

// GaussSeidel runs the paper's partition-aware search: for t = 1..T, for
// each partition i, run WalkSAT on partition i conditioned on the current
// values of all other partitions (cut clauses are projected onto the
// partition under the frozen external assignment) — an instance of the
// Gauss-Seidel method from nonlinear optimization [Bertsekas & Tsitsiklis].
//
// Rounds are scheduled over the colored partition interaction graph:
// partitions sharing a cut clause never run together, and every partition
// starts only once the merges its frozen inputs depend on have landed
// (Jacobi within a color, Gauss-Seidel across colors — see
// partition.BuildSchedule for the exact dependency rule). Results merge
// into the global state in one canonical order — classes ascending,
// partition index ascending within a class, rounds in order — and the
// global cost is updated incrementally from only the touched clauses, so
// the best state, best cost and tracker trajectory are identical for every
// Parallelism value and for both schedules (balanced and ClassBarrier).
// The balanced default pipelines across class and round boundaries with
// largest-first dispatch, so a class's one huge partition overlaps the
// rest of the sweep instead of serializing it.
//
// A canceled context stops dispatching partition runs (partitions mid-run
// stop early themselves and their best-so-far is merged), returning
// ErrCanceled with the best global state found before the stop. GaussSeidel
// never mutates pt, so one Partitioning can serve concurrent searches.
func GaussSeidel(ctx context.Context, pt *partition.Partitioning, opts GaussSeidelOptions) (*ComponentResult, error) {
	opts.Base = opts.Base.withDefaults()
	if opts.Rounds == 0 {
		opts.Rounds = 3
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	start := time.Now()
	m := pt.Source
	global := m.NewState()

	// Index cut clauses by partition for projection.
	cutByPart := make([][]int, len(pt.Parts))
	for ci, c := range pt.Cut {
		seen := map[int32]bool{}
		for _, l := range c.Lits {
			pi := pt.PartOf[mrf.Atom(l)]
			if !seen[pi] {
				seen[pi] = true
				cutByPart[pi] = append(cutByPart[pi], ci)
			}
		}
	}

	// Hoisted per-partition setup: local-id translation of every adjacent
	// cut clause, pooled clause buffers and state buffers. localOf is a
	// scratch array reused (and re-zeroed) per partition.
	parts := make([]*gsPart, len(pt.Parts))
	localOf := make([]mrf.AtomID, m.NumAtoms+1)
	for pi, part := range pt.Parts {
		g := &gsPart{part: part, nInternal: len(part.Local.Clauses)}
		for i := 1; i <= part.Local.NumAtoms; i++ {
			localOf[part.GlobalAtom[i]] = mrf.AtomID(i)
		}
		for _, ci := range cutByPart[pi] {
			c := pt.Cut[ci]
			cc := gsCut{ci: ci, weight: c.Weight}
			for _, l := range c.Lits {
				a := mrf.Atom(l)
				if ll := localOf[a]; ll != 0 {
					if !mrf.Pos(l) {
						ll = -ll
					}
					cc.local = append(cc.local, ll)
				} else {
					cc.ext = append(cc.ext, l)
				}
			}
			g.cuts = append(g.cuts, cc)
		}
		for i := 1; i <= part.Local.NumAtoms; i++ {
			localOf[part.GlobalAtom[i]] = 0
		}
		g.sub = mrf.New(part.Local.NumAtoms)
		g.clauseBuf = make([]mrf.Clause, 0, g.nInternal+len(g.cuts))
		if opts.Clauses == nil {
			g.clauseBuf = append(g.clauseBuf, part.Local.Clauses...)
		}
		g.initBuf = make([]bool, part.Local.NumAtoms+1)
		parts[pi] = g
	}

	sched := pt.BuildSchedule()

	// Incremental global cost: violated-hard count plus soft cost, seeded
	// with one full scan of the initial state and updated per merge from
	// only the merged partition's internal and adjacent cut clauses.
	hardViol := 0
	softCost := 0.0
	for _, c := range m.Clauses {
		if c.ViolatedBy(global) {
			if c.IsHard() {
				hardViol++
			} else {
				softCost += math.Abs(c.Weight)
			}
		}
	}
	currentCost := func() float64 {
		if hardViol > 0 {
			return math.Inf(1)
		}
		return softCost + m.FixedCost
	}

	var flips int64
	best := m.NewState()
	bestCost := math.Inf(1)
	record := func() {
		if c := currentCost(); c < bestCost {
			bestCost = c
			copy(best, global)
			if opts.Base.Tracker != nil {
				opts.Base.Tracker.Record(bestCost)
			}
		}
	}
	record()

	// runPart searches one partition under the frozen global assignment,
	// writing results only into its own gsPart slots — safe to run
	// concurrently with any other partition of the same color class.
	runPart := func(round, pi int) {
		g := parts[pi]
		if ctx.Err() != nil {
			return // skip the clause load; g.best stays nil and merge skips
		}
		buf := g.clauseBuf[:g.nInternal]
		if opts.Clauses != nil {
			var err error
			buf, err = opts.Clauses.LoadClauses(pi, buf[:0])
			if err != nil {
				g.err = err
				return
			}
		}
		fixed := 0.0
		for _, cc := range g.cuts {
			satisfiedOutside := false
			for _, l := range cc.ext {
				if global[mrf.Atom(l)] == mrf.Pos(l) {
					satisfiedOutside = true
					break
				}
			}
			if satisfiedOutside {
				if cc.weight < 0 {
					fixed += -cc.weight // satisfied negative clause: constant cost
				}
				continue
			}
			if len(cc.local) == 0 {
				if cc.weight > 0 && !math.IsInf(cc.weight, 1) {
					fixed += cc.weight
				}
				continue
			}
			buf = append(buf, mrf.Clause{Weight: cc.weight, Lits: cc.local})
		}
		g.clauseBuf = buf[:0]
		g.sub.Clauses = buf
		g.sub.FixedCost = fixed

		for i := 1; i <= g.part.Local.NumAtoms; i++ {
			g.initBuf[i] = global[g.part.GlobalAtom[i]]
		}
		o := opts.Base
		o.Seed = opts.Base.Seed + int64(round)*31337 + int64(pi)*7919
		o.InitState = g.initBuf
		o.MaxTries = 1
		o.Tracker = nil // per-partition costs are not global costs
		r := WalkSAT(ctx, g.sub, o)
		g.best = r.Best // nil if canceled before the init state was recorded
		g.flips = r.Flips
	}

	// merge folds one partition's result into the global state and updates
	// the cost from the touched clauses only. Called in ascending partition
	// order after a class's barrier, so it is single-threaded.
	merge := func(pi int) {
		g := parts[pi]
		if g.best == nil {
			return // partition never ran (canceled); global state unchanged
		}
		account := func(violated bool, hard bool, w float64, sign int) {
			if !violated {
				return
			}
			if hard {
				hardViol += sign
			} else {
				softCost += float64(sign) * math.Abs(w)
			}
		}
		for _, c := range g.part.Local.Clauses {
			account(c.ViolatedBy(g.initBuf), c.IsHard(), c.Weight, -1)
			account(c.ViolatedBy(g.best), c.IsHard(), c.Weight, +1)
		}
		for _, cc := range g.cuts {
			c := pt.Cut[cc.ci]
			account(c.ViolatedBy(global), c.IsHard(), c.Weight, -1)
		}
		g.part.ProjectState(g.best, global)
		for _, cc := range g.cuts {
			c := pt.Cut[cc.ci]
			account(c.ViolatedBy(global), c.IsHard(), c.Weight, +1)
		}
		flips += g.flips
		record()
	}

	result := func() *ComponentResult {
		return &ComponentResult{
			Best:     best,
			BestCost: bestCost,
			Flips:    flips,
			Elapsed:  time.Since(start),
		}
	}
	if opts.ClassBarrier {
		for round := 0; round < opts.Rounds; round++ {
			for _, class := range sched.Classes {
				round := round
				runClass(class, opts.Parallelism, func(pi int) { runPart(round, pi) })
				for _, pi := range class {
					if err := parts[pi].err; err != nil {
						return nil, err
					}
					merge(pi)
					parts[pi].best = nil // consumed; do not re-merge next round
				}
				if ctx.Err() != nil {
					return result(), Canceled(ctx)
				}
			}
		}
		return result(), nil
	}

	if err := runPipelined(ctx, sched, opts.Rounds, opts.Parallelism, runPart, func(pi int) error {
		if err := parts[pi].err; err != nil {
			return err
		}
		merge(pi)
		parts[pi].best = nil // consumed; do not re-merge next round
		return nil
	}); err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return result(), Canceled(ctx)
	}
	return result(), nil
}

// runPipelined executes rounds*P partition runs on up to workers goroutines
// under the balanced schedule: job (round, pi) is dispatched once the
// merges its frozen inputs depend on have landed, ready jobs go out
// largest-first (LPT), and mergeFn is invoked in the canonical sequence —
// Schedule.Order within a round, rounds in order — on the caller's
// goroutine only. The dependency rule (see partition.BuildSchedule)
// guarantees each run reads exactly the global state the sequential sweep
// would give it while non-neighbouring merges proceed concurrently, so
// results are bit-identical to the class-barrier schedule for every worker
// count. A mergeFn error aborts the pipeline after in-flight runs drain
// (runs not yet started are skipped).
func runPipelined(ctx context.Context, sched *partition.Schedule, rounds, workers int, runFn func(round, pi int), mergeFn func(pi int) error) error {
	p := len(sched.Order)
	if workers > p {
		workers = p
	}
	if workers < 1 {
		workers = 1
	}
	total := rounds * p

	// Merges of round t only release runs of rounds t and t+1, and merges
	// land strictly in round order at the canonical head, so the live
	// dependency state never spans more than two adjacent rounds. A rolling
	// two-round window (indexed by round parity) keeps memory and channel
	// buffers O(p) however many rounds the sweep runs.
	//
	// deps[t%2][pi] = merges that must land before run (t, pi) may start:
	// first round, the smaller-colored neighbours' same-round merges; later
	// rounds, additionally the partition's own and every remaining
	// neighbour's previous-round merge.
	var deps [2][]int
	runFlag := [2][]bool{make([]bool, p), make([]bool, p)}
	deps[0] = make([]int, p)
	deps[1] = make([]int, p)
	initRound := func(t int) {
		w := t % 2
		for pi := 0; pi < p; pi++ {
			if t == 0 {
				deps[w][pi] = sched.EarlierDeps(pi)
			} else {
				deps[w][pi] = 1 + len(sched.Neighbors[pi])
			}
			runFlag[w][pi] = false
		}
	}
	initRound(0)
	if rounds > 1 {
		initRound(1)
	}

	// At most the two window rounds' jobs are ever dispatched and
	// unmerged, so 2p-buffered channels never block either side.
	work := make(chan int, 2*p)
	done := make(chan int, 2*p)
	var abort atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				if !abort.Load() {
					runFn(j/p, j%p)
				}
				done <- j
			}
		}()
	}
	defer func() {
		close(work)
		wg.Wait()
	}()

	// dispatch releases a batch of ready jobs, heaviest partition first so
	// an oversized partition starts the moment its dependencies clear
	// (ties break on job order for determinism of the dispatch sequence;
	// results do not depend on it).
	dispatch := func(ready []int) {
		sort.Slice(ready, func(a, b int) bool {
			wa, wb := sched.Weight[ready[a]%p], sched.Weight[ready[b]%p]
			if wa != wb {
				return wa > wb
			}
			return ready[a] < ready[b]
		})
		for _, j := range ready {
			work <- j
		}
	}
	initial := make([]int, 0, p)
	for pi := 0; pi < p; pi++ {
		if deps[0][pi] == 0 {
			initial = append(initial, pi)
		}
	}
	dispatch(initial)

	merged, head := 0, 0 // head indexes the canonical merge sequence
	for merged < total {
		j := <-done
		if ctx.Err() != nil {
			// Cancellation stops dispatching: in-flight runs observe ctx
			// themselves and return promptly; queued ones are skipped via
			// abort. The caller reports the globals merged so far.
			abort.Store(true)
			return nil
		}
		runFlag[(j/p)%2][j%p] = true
		var released []int
		for head < total {
			t := head / p
			pi := sched.Order[head%p]
			if !runFlag[t%2][pi] {
				break
			}
			if err := mergeFn(pi); err != nil {
				abort.Store(true)
				return err
			}
			merged++
			head++
			// The landed merge satisfies one dependency of each job that
			// waits on it.
			release := func(dj int) {
				w := (dj / p) % 2
				deps[w][dj%p]--
				if deps[w][dj%p] == 0 {
					released = append(released, dj)
				}
			}
			for _, q := range sched.Neighbors[pi] {
				if sched.Color[q] > sched.Color[pi] {
					release(t*p + int(q))
				} else if t+1 < rounds {
					release((t+1)*p + int(q))
				}
			}
			if t+1 < rounds {
				release((t+1)*p + pi)
			}
			if head%p == 0 && t+2 < rounds {
				// Round t is fully merged; recycle its window slot for
				// round t+2, whose first releases come from round t+1's
				// merges (all still ahead of the head).
				initRound(t + 2)
			}
		}
		dispatch(released)
	}
	return nil
}
