package search

import (
	"math"
	"time"

	"tuffy/internal/mrf"
	"tuffy/internal/partition"
)

// GaussSeidelOptions configures partition-aware search (Section 3.4).
type GaussSeidelOptions struct {
	// Base WalkSAT options; MaxFlips is the per-partition budget per round.
	Base Options
	// Rounds is T in the paper's scheme: how many sweeps over the
	// partitions to run.
	Rounds int
}

// GaussSeidel runs the paper's partition-aware search: for t = 1..T, for
// each partition i, run WalkSAT on partition i conditioned on the current
// values of all other partitions (cut clauses are projected onto the
// partition under the frozen external assignment) — an instance of the
// Gauss-Seidel method from nonlinear optimization [Bertsekas & Tsitsiklis].
func GaussSeidel(pt *partition.Partitioning, opts GaussSeidelOptions) *ComponentResult {
	opts.Base = opts.Base.withDefaults()
	if opts.Rounds == 0 {
		opts.Rounds = 3
	}
	start := time.Now()
	m := pt.Source
	global := m.NewState()

	// Index cut clauses by partition for projection.
	cutByPart := make([][]int, len(pt.Parts))
	for ci, c := range pt.Cut {
		seen := map[int32]bool{}
		for _, l := range c.Lits {
			pi := pt.PartOf[mrf.Atom(l)]
			if !seen[pi] {
				seen[pi] = true
				cutByPart[pi] = append(cutByPart[pi], ci)
			}
		}
	}

	var flips int64
	best := m.NewState()
	bestCost := math.Inf(1)

	record := func() {
		c := m.Cost(global)
		if c < bestCost {
			bestCost = c
			copy(best, global)
			if opts.Base.Tracker != nil {
				opts.Base.Tracker.Record(bestCost)
			}
		}
	}
	record()

	for round := 0; round < opts.Rounds; round++ {
		for pi, part := range pt.Parts {
			// Build the conditioned sub-MRF: internal clauses plus cut
			// clauses projected under the frozen external assignment.
			sub := mrf.New(part.Local.NumAtoms)
			sub.Clauses = append(sub.Clauses, part.Local.Clauses...)
			// local ids of parent atoms in this partition
			localOf := make(map[mrf.AtomID]mrf.AtomID, part.Local.NumAtoms)
			for i := 1; i <= part.Local.NumAtoms; i++ {
				localOf[part.GlobalAtom[i]] = mrf.AtomID(i)
			}
			for _, ci := range cutByPart[pi] {
				c := pt.Cut[ci]
				satisfiedOutside := false
				var lits []mrf.Lit
				for _, l := range c.Lits {
					a := mrf.Atom(l)
					if ll, in := localOf[a]; in {
						if !mrf.Pos(l) {
							ll = -ll
						}
						lits = append(lits, ll)
						continue
					}
					if global[a] == mrf.Pos(l) {
						satisfiedOutside = true
						break
					}
					// external literal false: drops out
				}
				if satisfiedOutside {
					if c.Weight < 0 {
						sub.FixedCost += -c.Weight // satisfied negative clause: constant cost
					}
					continue
				}
				if len(lits) == 0 {
					if c.Weight > 0 && !c.IsHard() {
						sub.FixedCost += c.Weight
					}
					continue
				}
				sub.Clauses = append(sub.Clauses, mrf.Clause{Weight: c.Weight, Lits: lits})
			}

			o := opts.Base
			o.Seed = opts.Base.Seed + int64(round)*31337 + int64(pi)*7919
			o.InitState = part.ExtractState(global)
			o.MaxTries = 1
			r := WalkSAT(sub, o)
			flips += r.Flips
			part.ProjectState(r.Best, global)
			record()
		}
	}

	return &ComponentResult{
		Best:     best,
		BestCost: bestCost,
		Flips:    flips,
		Elapsed:  time.Since(start),
	}
}
