package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// gate blocks the scheduler's single worker until released, so tests can
// stage the queue deterministically.
type gate struct {
	entered chan struct{}
	release chan struct{}
}

func newGate() *gate {
	return &gate{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gate) run() {
	close(g.entered)
	<-g.release
}

// waitQueued polls until n tasks wait in the queue.
func waitQueued(t *testing.T, c *Counters, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Queued.Load() == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d tasks (at %d)", n, c.Queued.Load())
}

// Queued tasks must run most-urgent lane first, FIFO within a lane,
// regardless of submission order.
func TestSchedulerPriorityOrdering(t *testing.T) {
	m := &Counters{}
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 16, Lanes: 3}, m)
	defer s.Close()

	g := newGate()
	go s.Submit(context.Background(), 0, g.run)
	<-g.entered

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	submit := func(pri int, tag string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Submit(context.Background(), pri, func() {
				mu.Lock()
				order = append(order, tag)
				mu.Unlock()
			}); err != nil {
				t.Errorf("submit %s: %v", tag, err)
			}
		}()
		waitQueued(t, m, int64(len(tag))) // tags are "a","bb","ccc"... unique lengths encode the count
	}

	// Worst-case order: lowest priority first; two in lane 0 check FIFO.
	submit(2, "a")
	submit(1, "bb")
	submit(0, "ccc")
	submit(0, "cccc")
	close(g.release)
	wg.Wait()

	want := []string{"ccc", "cccc", "bb", "a"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v", order, want)
	}
}

// A full admission queue must reject instantly with ErrQueueFull, and a
// freed slot must admit again.
func TestSchedulerRejectsWhenQueueFull(t *testing.T) {
	m := &Counters{}
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 2, Lanes: 1}, m)
	defer s.Close()

	g := newGate()
	go s.Submit(context.Background(), 0, g.run)
	<-g.entered

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Submit(context.Background(), 0, func() {})
		}()
	}
	waitQueued(t, m, 2)

	start := time.Now()
	err := s.Submit(context.Background(), 0, func() { t.Error("rejected task ran") })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("rejection took %v; admission control must not block", time.Since(start))
	}
	if got := m.RejectedQueue.Load(); got != 1 {
		t.Fatalf("RejectedQueue = %d, want 1", got)
	}

	close(g.release)
	wg.Wait()
	// The drained queue must admit again.
	if err := s.Submit(context.Background(), 0, func() {}); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// A context done while the task still waits must abandon it: the task
// never runs, the error is typed, and the freed capacity readmits.
func TestSchedulerDeadlineExpiryInQueue(t *testing.T) {
	m := &Counters{}
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 1, Lanes: 1}, m)
	defer s.Close()

	g := newGate()
	go s.Submit(context.Background(), 0, g.run)
	<-g.entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ran := false
	err := s.Submit(ctx, 0, func() { ran = true })
	var qe *QueueExpiredError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %T %v, want *QueueExpiredError", err, err)
	}
	if !errors.Is(err, ErrExpiredInQueue) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v must match ErrExpiredInQueue and DeadlineExceeded", err)
	}
	if qe.Waited <= 0 {
		t.Fatalf("expired error records no wait: %+v", qe)
	}
	if ran {
		t.Fatal("expired task ran")
	}
	if got := m.Expired.Load(); got != 1 {
		t.Fatalf("Expired = %d, want 1", got)
	}
	// The abandoned task must leave the lane immediately — under
	// saturation expired tasks must not pile up waiting for a free worker
	// to sweep them.
	s.mu.Lock()
	laneLen := len(s.lanes[0])
	s.mu.Unlock()
	if laneLen != 0 {
		t.Fatalf("lane holds %d entries after expiry, want 0", laneLen)
	}

	// The abandoned slot must be free for a fresh admission while the
	// worker is still busy.
	admitted := make(chan error, 1)
	go func() { admitted <- s.Submit(context.Background(), 0, func() {}) }()
	waitQueued(t, m, 1)
	close(g.release)
	if err := <-admitted; err != nil {
		t.Fatalf("admission after expiry: %v", err)
	}
	// The worker must discard the abandoned task without running it.
	if ran {
		t.Fatal("abandoned task ran after release")
	}
}

// Close must stop admission, drain already-queued tasks, and be
// idempotent.
func TestSchedulerCloseDrains(t *testing.T) {
	m := &Counters{}
	s := NewScheduler(SchedulerConfig{Workers: 2, MaxQueue: 8, Lanes: 2}, m)

	var mu sync.Mutex
	n := 0
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Submit(context.Background(), i%2, func() {
				time.Sleep(5 * time.Millisecond)
				mu.Lock()
				n++
				mu.Unlock()
			})
		}()
	}
	// Wait until every task has been admitted, then close mid-flight.
	deadline := time.Now().Add(5 * time.Second)
	for m.Admitted.Load() < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	wg.Wait()
	mu.Lock()
	got := n
	mu.Unlock()
	if got != 6 {
		t.Fatalf("Close drained %d of 6 tasks", got)
	}
	if err := s.Submit(context.Background(), 0, func() {}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-Close submit: %v, want ErrServerClosed", err)
	}
	s.Close() // idempotent
}

// Wait metrics must accumulate: a task held in queue records its wait.
func TestSchedulerQueueWaitMetric(t *testing.T) {
	m := &Counters{}
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 4, Lanes: 1}, m)
	defer s.Close()

	g := newGate()
	go s.Submit(context.Background(), 0, g.run)
	<-g.entered

	done := make(chan error, 1)
	go func() { done <- s.Submit(context.Background(), 0, func() {}) }()
	waitQueued(t, m, 1)
	time.Sleep(15 * time.Millisecond)
	close(g.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.QueueWait < 10*time.Millisecond {
		t.Fatalf("queue wait %v, want >= 10ms", snap.QueueWait)
	}
	if snap.Completed != 2 || snap.Admitted != 2 {
		t.Fatalf("completed/admitted = %d/%d, want 2/2", snap.Completed, snap.Admitted)
	}
	if snap.AvgQueueWait() <= 0 || snap.AvgLatency() < 0 {
		t.Fatalf("derived metrics broken: %+v", snap)
	}
}

// A finished SubmitShared task must complete every queued same-key task
// with its published result — across lanes — while differently-keyed,
// unkeyed, and unpublished tasks all execute themselves.
func TestSchedulerBatchAbsorption(t *testing.T) {
	m := &Counters{}
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 16, Lanes: 2}, m)
	defer s.Close()

	g := newGate()
	go s.Submit(context.Background(), 0, g.run) // hold the only worker
	<-g.entered

	var mu sync.Mutex
	executed := map[string]int{}
	absorbed := map[string][]any{}
	var wg sync.WaitGroup
	shared := func(pri int, tag, key string, v any, publish bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := s.SubmitShared(context.Background(), pri, key, func() (any, bool) {
				mu.Lock()
				executed[tag]++
				mu.Unlock()
				return v, publish
			}, func(got any) {
				mu.Lock()
				absorbed[tag] = append(absorbed[tag], got)
				mu.Unlock()
			})
			if err != nil {
				t.Errorf("submit %s: %v", tag, err)
			}
		}()
	}
	// FIFO order in lane 0: leader first, then a follower; a third
	// follower waits in lane 1 (absorption must reach every lane). One
	// different key and one non-publishing pair must each run themselves.
	shared(0, "leader", "k", 42, true)
	waitQueued(t, m, 1)
	shared(0, "f1", "k", -1, true)
	waitQueued(t, m, 2)
	shared(1, "f2", "k", -1, true)
	waitQueued(t, m, 3)
	shared(0, "other", "x", 7, true)
	waitQueued(t, m, 4)
	shared(0, "noPub1", "np", 1, false)
	waitQueued(t, m, 5)
	shared(1, "noPub2", "np", 2, false)
	waitQueued(t, m, 6)

	close(g.release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if executed["leader"] != 1 || executed["f1"] != 0 || executed["f2"] != 0 {
		t.Fatalf("executions: %v — exactly the leader must run for key k", executed)
	}
	if executed["other"] != 1 || executed["noPub1"] != 1 || executed["noPub2"] != 1 {
		t.Fatalf("executions: %v — unmatched and unpublished tasks must run themselves", executed)
	}
	for _, tag := range []string{"f1", "f2"} {
		if len(absorbed[tag]) != 1 || absorbed[tag][0] != 42 {
			t.Fatalf("follower %s absorbed %v, want [42]", tag, absorbed[tag])
		}
	}
	if len(absorbed["noPub2"]) != 0 {
		t.Fatalf("unpublished result leaked to a same-key task: %v", absorbed["noPub2"])
	}
	snap := m.Snapshot()
	if snap.Batched != 2 {
		t.Fatalf("Batched = %d, want 2", snap.Batched)
	}
	if snap.Completed != 5 { // gate + leader + other + noPub1 + noPub2
		t.Fatalf("Completed = %d, want 5", snap.Completed)
	}
	if snap.AvgQueueWait() <= 0 {
		t.Fatalf("AvgQueueWait must count batched waits: %+v", snap)
	}
}

// Abandonment and absorption race through the same claim CAS: a follower
// whose context expires in the queue is expired, never absorbed, and a
// later same-key leader must not touch it.
func TestSchedulerBatchAbandonedNotAbsorbed(t *testing.T) {
	m := &Counters{}
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 16, Lanes: 1}, m)
	defer s.Close()

	g := newGate()
	go s.Submit(context.Background(), 0, g.run)
	<-g.entered

	ctx, cancel := context.WithCancel(context.Background())
	expired := make(chan error, 1)
	go func() {
		expired <- s.SubmitShared(ctx, 0, "k", func() (any, bool) {
			t.Error("abandoned task executed")
			return nil, false
		}, func(any) {
			t.Error("abandoned task absorbed a result")
		})
	}()
	waitQueued(t, m, 1)
	cancel()
	if err := <-expired; !errors.Is(err, ErrExpiredInQueue) {
		t.Fatalf("expired follower returned %v, want ErrExpiredInQueue", err)
	}

	done := make(chan error, 1)
	go func() {
		done <- s.SubmitShared(context.Background(), 0, "k", func() (any, bool) { return 1, true }, func(any) {})
	}()
	waitQueued(t, m, 1)
	close(g.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Batched != 0 || snap.Expired != 1 {
		t.Fatalf("batched/expired = %d/%d, want 0/1", snap.Batched, snap.Expired)
	}
}
