package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// The cache must hit on stored keys, miss on absent ones, count both, and
// evict oldest-first at capacity — never invalidating a live entry.
func TestCacheHitMissEvict(t *testing.T) {
	m := &Counters{}
	c := NewCache(2, m)
	if !c.Enabled() {
		t.Fatal("cache with capacity reports disabled")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// Capacity eviction drops the oldest entry (a), keeps b.
	c.Put("c", 3)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if v, ok := c.Get("b"); !ok || v.(int) != 2 {
		t.Fatalf("Get(b) = %v, %v", v, ok)
	}
	// Duplicate Put keeps the first value (both are interchangeable).
	c.Put("b", 99)
	if v, _ := c.Get("b"); v.(int) != 2 {
		t.Fatalf("duplicate Put replaced value: %v", v)
	}
	snap := m.Snapshot()
	if snap.CacheHits != 3 || snap.CacheMisses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 3/2", snap.CacheHits, snap.CacheMisses)
	}
}

// A disabled cache always misses, drops Puts, and still counts misses.
func TestCacheDisabled(t *testing.T) {
	m := &Counters{}
	c := NewCache(-1, m)
	if c.Enabled() {
		t.Fatal("disabled cache reports enabled")
	}
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
	if m.CacheMisses.Load() != 1 {
		t.Fatalf("misses = %d, want 1", m.CacheMisses.Load())
	}
}

// Concurrent readers and writers must be race-free (run under -race in
// CI) and never lose a stored key to anything but capacity.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(1024, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%64)
				c.Put(key, i)
				if _, ok := c.Get(key); !ok {
					t.Errorf("key %s lost", key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 64 {
		t.Fatalf("Len = %d, want 64 distinct keys", c.Len())
	}
}

// Sweep must drop exactly the entries the keep predicate rejects, keep the
// survivors readable in insertion order, and be a no-op on a disabled cache.
func TestCacheSweep(t *testing.T) {
	c := NewCache(8, nil)
	c.Put("e0|a", 1)
	c.Put("e1|b", 2)
	c.Put("e0|c", 3)
	c.Put("e1|d", 4)
	inv, ret := c.Sweep(func(k string) bool { return strings.HasPrefix(k, "e1|") })
	if inv != 2 || ret != 2 {
		t.Fatalf("Sweep = %d invalidated, %d retained; want 2, 2", inv, ret)
	}
	if _, ok := c.Get("e0|a"); ok {
		t.Fatal("swept entry still readable")
	}
	if v, ok := c.Get("e1|b"); !ok || v.(int) != 2 {
		t.Fatal("surviving entry lost")
	}
	// Survivors keep their FIFO position: filling to capacity must evict
	// e1|b (now the oldest) first.
	for i := 0; i < 7; i++ {
		c.Put(fmt.Sprintf("e1|x%d", i), i)
	}
	if _, ok := c.Get("e1|b"); ok {
		t.Fatal("post-sweep eviction did not start from the oldest survivor")
	}
	if _, ok := c.Get("e1|d"); !ok {
		t.Fatal("newer survivor evicted before older one")
	}
	d := NewCache(0, nil)
	if inv, ret := d.Sweep(func(string) bool { return false }); inv != 0 || ret != 0 {
		t.Fatalf("disabled Sweep = %d, %d", inv, ret)
	}
}

// Typed errors must render their diagnostics and match their sentinels.
func TestTypedErrorStrings(t *testing.T) {
	be := &BudgetError{Resource: "flips", Requested: 100, Limit: 10}
	if !errors.Is(be, ErrBudgetExceeded) {
		t.Fatal("BudgetError does not match sentinel")
	}
	if s := be.Error(); s == "" {
		t.Fatal("empty budget error string")
	}
	qe := &QueueExpiredError{Waited: 1, Cause: errors.New("boom")}
	if !errors.Is(qe, ErrExpiredInQueue) {
		t.Fatal("QueueExpiredError does not match sentinel")
	}
	if s := qe.Error(); s == "" {
		t.Fatal("empty expiry error string")
	}
	var zero Metrics
	if zero.AvgQueueWait() != 0 || zero.AvgLatency() != 0 {
		t.Fatal("zero metrics produce nonzero averages")
	}
}

// The scheduler's defaulted configuration must be visible to callers.
func TestSchedulerConfigDefaults(t *testing.T) {
	s := NewScheduler(SchedulerConfig{}, nil)
	defer s.Close()
	cfg := s.Config()
	if cfg.Workers != 4 || cfg.MaxQueue != 64 || cfg.Lanes != 3 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
