package server

import (
	"sync/atomic"
	"time"
)

// Counters is the scheduler's live instrumentation: lock-free atomics
// bumped on the query path, snapshotted on demand. The scheduler owns the
// admission/queue/latency counters; the serving layer on top bumps the
// budget and cache counters.
type Counters struct {
	Admitted       atomic.Int64 // queries accepted into the queue
	RejectedQueue  atomic.Int64 // rejected: admission queue full
	RejectedBudget atomic.Int64 // rejected: per-query budget exceeded
	Expired        atomic.Int64 // abandoned in queue (ctx done before a slot freed)
	Completed      atomic.Int64 // queries that ran to completion (incl. canceled runs)
	Batched        atomic.Int64 // queries completed by absorbing a same-key leader's result
	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64

	Queued   atomic.Int64 // gauge: admitted, waiting for a slot
	InFlight atomic.Int64 // gauge: currently executing

	QueueWaitNanos atomic.Int64 // total admission-to-claim wait
	LatencyNanos   atomic.Int64 // total execution time

	Epoch            atomic.Uint64 // gauge: epoch currently served
	UpdatesApplied   atomic.Int64  // evidence updates committed on all backends
	CacheInvalidated atomic.Int64  // cache entries swept by evidence updates
	CacheRetained    atomic.Int64  // cache entries surviving update sweeps
}

// Metrics is a point-in-time snapshot of the Counters, the programmatic
// metrics surface (cmd/tuffyd serializes it as JSON).
type Metrics struct {
	Admitted       int64 `json:"admitted"`
	RejectedQueue  int64 `json:"rejectedQueueFull"`
	RejectedBudget int64 `json:"rejectedBudget"`
	Expired        int64 `json:"expiredInQueue"`
	Completed      int64 `json:"completed"`
	Batched        int64 `json:"batched"`
	CacheHits      int64 `json:"cacheHits"`
	CacheMisses    int64 `json:"cacheMisses"`

	Queued   int64 `json:"queued"`
	InFlight int64 `json:"inFlight"`

	QueueWait time.Duration `json:"queueWaitTotalNs"`
	Latency   time.Duration `json:"latencyTotalNs"`

	Epoch            uint64 `json:"epoch"`
	UpdatesApplied   int64  `json:"updatesApplied"`
	CacheInvalidated int64  `json:"cacheInvalidated"`
	CacheRetained    int64  `json:"cacheRetained"`
}

// Snapshot reads every counter. The fields are read individually (not as
// one atomic unit), which is all a monitoring surface needs.
func (c *Counters) Snapshot() Metrics {
	return Metrics{
		Admitted:       c.Admitted.Load(),
		RejectedQueue:  c.RejectedQueue.Load(),
		RejectedBudget: c.RejectedBudget.Load(),
		Expired:        c.Expired.Load(),
		Completed:      c.Completed.Load(),
		Batched:        c.Batched.Load(),
		CacheHits:      c.CacheHits.Load(),
		CacheMisses:    c.CacheMisses.Load(),
		Queued:         c.Queued.Load(),
		InFlight:       c.InFlight.Load(),
		QueueWait:      time.Duration(c.QueueWaitNanos.Load()),
		Latency:        time.Duration(c.LatencyNanos.Load()),

		Epoch:            c.Epoch.Load(),
		UpdatesApplied:   c.UpdatesApplied.Load(),
		CacheInvalidated: c.CacheInvalidated.Load(),
		CacheRetained:    c.CacheRetained.Load(),
	}
}

// AvgQueueWait is the mean admission-to-completion wait per query that
// left the queue with an answer — executed or batch-absorbed.
func (m Metrics) AvgQueueWait() time.Duration {
	if n := m.Completed + m.Batched; n > 0 {
		return m.QueueWait / time.Duration(n)
	}
	return 0
}

// AvgLatency is the mean execution time per executed query. Batch-absorbed
// queries and cache hits never consume an execution slot and are excluded,
// so the average keeps estimating the cost of a real inference run (the
// Retry-After heuristic in cmd/tuffyd depends on that).
func (m Metrics) AvgLatency() time.Duration {
	if m.Completed == 0 {
		return 0
	}
	return m.Latency / time.Duration(m.Completed)
}
