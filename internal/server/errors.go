package server

import (
	"errors"
	"fmt"
	"time"
)

// ErrQueueFull rejects a Submit when the admission queue is at capacity.
// Admission control sheds the query immediately instead of blocking, so a
// client can retry, downgrade priority, or back off.
var ErrQueueFull = errors.New("server: admission queue full")

// ErrServerClosed rejects a Submit after Close.
var ErrServerClosed = errors.New("server: closed")

// ErrBudgetExceeded is matched (via errors.Is) by every *BudgetError.
var ErrBudgetExceeded = errors.New("server: query budget exceeded")

// ErrExpiredInQueue is matched (via errors.Is) by every
// *QueueExpiredError.
var ErrExpiredInQueue = errors.New("server: query expired in queue")

// BudgetError reports an admission-time rejection: the query asked for
// more of one resource than the server allows per query.
type BudgetError struct {
	// Resource names the capped dimension: "flips", "samples", "memory".
	Resource string
	// Requested is what the (canonicalized) query asked for.
	Requested int64
	// Limit is the configured per-query cap.
	Limit int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("server: query %s budget %d exceeds per-query limit %d", e.Resource, e.Requested, e.Limit)
}

// Is makes every BudgetError match the ErrBudgetExceeded sentinel.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// QueueExpiredError reports that a query's context was done while it was
// still waiting in the admission queue — it never started executing.
type QueueExpiredError struct {
	// Waited is how long the query sat in the queue before expiring.
	Waited time.Duration
	// Cause is context.Cause(ctx) at expiry.
	Cause error
}

func (e *QueueExpiredError) Error() string {
	return fmt.Sprintf("server: query expired after %v in queue: %v", e.Waited, e.Cause)
}

// Is makes every QueueExpiredError match the ErrExpiredInQueue sentinel.
func (e *QueueExpiredError) Is(target error) bool { return target == ErrExpiredInQueue }

// Unwrap exposes the context cause (context.Canceled or
// context.DeadlineExceeded) to errors.Is chains.
func (e *QueueExpiredError) Unwrap() error { return e.Cause }
