// Package server is the query admission and scheduling layer that fronts
// one or more grounded Engines (the heavy-traffic layer the ROADMAP names
// on top of the paper's ground-then-query architecture): a bounded
// admission queue with per-priority FIFO lanes, a fixed cap on in-flight
// queries, per-query budget enforcement with typed rejection errors, an
// epoch-keyed result cache (entries are tagged with the Engine epoch that
// produced them and swept when an evidence update publishes a new epoch),
// and counters for every stage of a query's life. The package is
// engine-agnostic: it schedules opaque closures, and the public
// tuffy.Serve API layers Engine dispatch, budget derivation, cache keys
// and update-time cache sweeps on top.
package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// taskState tracks who owns a queued task: exactly one of the claiming
// worker or the abandoning submitter wins the CAS from taskQueued.
const (
	taskQueued int32 = iota
	taskClaimed
	taskAbandoned
)

// task is one admitted query waiting for (or holding) an execution slot.
// A task submitted through SubmitShared additionally carries a batch key
// and an absorb callback: when another task with the same key finishes
// first and publishes its result, the queued task is completed with that
// result instead of ever executing.
type task struct {
	run      func()
	pri      int // lane index, for removal on abandon
	state    atomic.Int32
	enqueued time.Time
	finished chan struct{}

	key       string             // batch key ("" = never batched)
	runShared func() (any, bool) // leader role: result + publish flag
	absorb    func(any)          // follower role: receive a leader's result
}

// SchedulerConfig bounds the scheduler.
type SchedulerConfig struct {
	// Workers is the maximum number of queries running at once (the
	// in-flight cap). Default 4.
	Workers int
	// MaxQueue bounds the number of admitted-but-waiting queries across all
	// lanes; a Submit beyond it is rejected with ErrQueueFull. Default 64.
	MaxQueue int
	// Lanes is the number of priority levels (0 = most urgent). Default 3.
	Lanes int
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.Lanes <= 0 {
		c.Lanes = 3
	}
	return c
}

// Scheduler runs submitted closures through a fixed worker pool, admitting
// them through a bounded queue with strict priority between lanes and FIFO
// order within one lane. All methods are safe for concurrent use.
type Scheduler struct {
	cfg     SchedulerConfig
	metrics *Counters

	mu     sync.Mutex
	cond   *sync.Cond
	lanes  [][]*task
	queued int // live (non-abandoned) tasks across lanes
	closed bool
	wg     sync.WaitGroup
}

// NewScheduler starts the worker pool.
func NewScheduler(cfg SchedulerConfig, m *Counters) *Scheduler {
	cfg = cfg.withDefaults()
	if m == nil {
		m = &Counters{}
	}
	s := &Scheduler{cfg: cfg, metrics: m, lanes: make([][]*task, cfg.Lanes)}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Config returns the scheduler's effective (defaulted) configuration.
func (s *Scheduler) Config() SchedulerConfig { return s.cfg }

// Submit admits run into the given priority lane (clamped to the
// configured range) and blocks until it has executed or ctx is done.
//
//   - A full queue rejects immediately with ErrQueueFull — admission
//     control sheds load instead of applying unbounded backpressure.
//   - A context done while the task is still queued abandons it (it never
//     runs) and returns a *QueueExpiredError recording the wait.
//   - Once a worker claims the task, Submit waits for it to finish even if
//     ctx fires — run is expected to honor the same ctx and return
//     promptly with its own cancellation error.
//
// A nil return means run was executed; run communicates its own outcome
// through captured variables.
func (s *Scheduler) Submit(ctx context.Context, priority int, run func()) error {
	return s.submit(ctx, &task{run: run, pri: priority})
}

// SubmitShared is Submit for queries whose answers are interchangeable
// when they carry the same non-empty batch key (same canonical options,
// same epoch): if a worker finishes a same-key task while this one is
// still queued, the queued task never executes — absorb is invoked with
// the finished task's result and Submit returns as if it had run. The
// task's own run returns its result plus a publish flag; only a published
// result (complete, current-epoch) is handed to queued followers. Absorbed
// tasks count toward the Batched counter, not Completed, so AvgLatency
// keeps measuring real executions only.
func (s *Scheduler) SubmitShared(ctx context.Context, priority int, key string, run func() (any, bool), absorb func(any)) error {
	return s.submit(ctx, &task{runShared: run, key: key, absorb: absorb, pri: priority})
}

func (s *Scheduler) submit(ctx context.Context, t *task) error {
	if t.pri < 0 {
		t.pri = 0
	}
	if t.pri >= s.cfg.Lanes {
		t.pri = s.cfg.Lanes - 1
	}
	priority := t.pri
	t.enqueued = time.Now()
	t.finished = make(chan struct{})

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if s.queued >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.metrics.RejectedQueue.Add(1)
		return ErrQueueFull
	}
	s.lanes[priority] = append(s.lanes[priority], t)
	s.queued++
	s.metrics.Admitted.Add(1)
	s.metrics.Queued.Add(1)
	s.cond.Signal()
	s.mu.Unlock()

	select {
	case <-t.finished:
		return nil
	case <-ctx.Done():
		if t.state.CompareAndSwap(taskQueued, taskAbandoned) {
			// The task never ran. Remove it from its lane right away —
			// under saturation (all workers busy for a long time) expired
			// tasks would otherwise pile up in the lane slices with
			// nothing draining them — and account the live-queue decrement
			// so queue-full admission reflects only tasks that can still
			// run.
			s.mu.Lock()
			s.queued--
			lane := s.lanes[t.pri]
			for i, q := range lane {
				if q == t {
					copy(lane[i:], lane[i+1:])
					lane[len(lane)-1] = nil
					s.lanes[t.pri] = lane[:len(lane)-1]
					break
				}
			}
			s.mu.Unlock()
			s.metrics.Queued.Add(-1)
			s.metrics.Expired.Add(1)
			return &QueueExpiredError{Waited: time.Since(t.enqueued), Cause: context.Cause(ctx)}
		}
		// A worker claimed it first: the run sees the canceled ctx itself.
		<-t.finished
		return nil
	}
}

// claimNext pops tasks in lane-priority order (FIFO within a lane) until
// it claims one, discarding abandoned tasks (their submitter already
// accounted for them). Caller holds s.mu; the claim CAS runs under the
// lock so exactly one of worker and abandoning submitter decrements the
// queued count for any task.
func (s *Scheduler) claimNext() *task {
	for pri := range s.lanes {
		for len(s.lanes[pri]) > 0 {
			t := s.lanes[pri][0]
			s.lanes[pri][0] = nil
			s.lanes[pri] = s.lanes[pri][1:]
			if t.state.CompareAndSwap(taskQueued, taskClaimed) {
				return t
			}
		}
	}
	return nil
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var t *task
		for {
			if t = s.claimNext(); t != nil || s.closed {
				break
			}
			s.cond.Wait()
		}
		if t == nil {
			// Closed and drained.
			s.mu.Unlock()
			return
		}
		s.queued--
		s.mu.Unlock()

		s.metrics.Queued.Add(-1)
		s.metrics.QueueWaitNanos.Add(time.Since(t.enqueued).Nanoseconds())
		s.metrics.InFlight.Add(1)
		start := time.Now()
		var shared any
		var publish bool
		if t.runShared != nil {
			shared, publish = t.runShared()
		} else {
			t.run()
		}
		s.metrics.LatencyNanos.Add(time.Since(start).Nanoseconds())
		s.metrics.InFlight.Add(-1)
		s.metrics.Completed.Add(1)
		close(t.finished)
		if publish && t.key != "" {
			s.absorbKey(t.key, shared)
		}
	}
}

// absorbKey completes every still-queued task carrying the given batch key
// with the leader's published result: each is claimed (the same CAS that
// arbitrates against abandonment), removed from its lane, handed the value
// through its absorb callback, and counted as Batched — it waited like any
// admitted query but never consumed an execution slot.
func (s *Scheduler) absorbKey(key string, v any) {
	var followers []*task
	s.mu.Lock()
	for pri, lane := range s.lanes {
		kept := lane[:0]
		for _, q := range lane {
			if q.key == key && q.absorb != nil && q.state.CompareAndSwap(taskQueued, taskClaimed) {
				followers = append(followers, q)
				s.queued--
			} else {
				kept = append(kept, q)
			}
		}
		for i := len(kept); i < len(lane); i++ {
			lane[i] = nil
		}
		s.lanes[pri] = kept
	}
	s.mu.Unlock()
	for _, q := range followers {
		s.metrics.Queued.Add(-1)
		s.metrics.QueueWaitNanos.Add(time.Since(q.enqueued).Nanoseconds())
		s.metrics.Batched.Add(1)
		q.absorb(v)
		close(q.finished)
	}
}

// Close stops admission, lets the workers drain every task already queued
// (their submitters are still waiting on them), and returns once the pool
// has exited. Close is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
