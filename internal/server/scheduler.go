// Package server is the query admission and scheduling layer that fronts
// one or more grounded Engines (the heavy-traffic layer the ROADMAP names
// on top of the paper's ground-then-query architecture): a bounded
// admission queue with per-priority FIFO lanes, a fixed cap on in-flight
// queries, per-query budget enforcement with typed rejection errors, an
// epoch-keyed result cache (entries are tagged with the Engine epoch that
// produced them and swept when an evidence update publishes a new epoch),
// and counters for every stage of a query's life. The package is
// engine-agnostic: it schedules opaque closures, and the public
// tuffy.Serve API layers Engine dispatch, budget derivation, cache keys
// and update-time cache sweeps on top.
package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// taskState tracks who owns a queued task: exactly one of the claiming
// worker or the abandoning submitter wins the CAS from taskQueued.
const (
	taskQueued int32 = iota
	taskClaimed
	taskAbandoned
)

// task is one admitted query waiting for (or holding) an execution slot.
type task struct {
	run      func()
	pri      int // lane index, for removal on abandon
	state    atomic.Int32
	enqueued time.Time
	finished chan struct{}
}

// SchedulerConfig bounds the scheduler.
type SchedulerConfig struct {
	// Workers is the maximum number of queries running at once (the
	// in-flight cap). Default 4.
	Workers int
	// MaxQueue bounds the number of admitted-but-waiting queries across all
	// lanes; a Submit beyond it is rejected with ErrQueueFull. Default 64.
	MaxQueue int
	// Lanes is the number of priority levels (0 = most urgent). Default 3.
	Lanes int
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.Lanes <= 0 {
		c.Lanes = 3
	}
	return c
}

// Scheduler runs submitted closures through a fixed worker pool, admitting
// them through a bounded queue with strict priority between lanes and FIFO
// order within one lane. All methods are safe for concurrent use.
type Scheduler struct {
	cfg     SchedulerConfig
	metrics *Counters

	mu     sync.Mutex
	cond   *sync.Cond
	lanes  [][]*task
	queued int // live (non-abandoned) tasks across lanes
	closed bool
	wg     sync.WaitGroup
}

// NewScheduler starts the worker pool.
func NewScheduler(cfg SchedulerConfig, m *Counters) *Scheduler {
	cfg = cfg.withDefaults()
	if m == nil {
		m = &Counters{}
	}
	s := &Scheduler{cfg: cfg, metrics: m, lanes: make([][]*task, cfg.Lanes)}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Config returns the scheduler's effective (defaulted) configuration.
func (s *Scheduler) Config() SchedulerConfig { return s.cfg }

// Submit admits run into the given priority lane (clamped to the
// configured range) and blocks until it has executed or ctx is done.
//
//   - A full queue rejects immediately with ErrQueueFull — admission
//     control sheds load instead of applying unbounded backpressure.
//   - A context done while the task is still queued abandons it (it never
//     runs) and returns a *QueueExpiredError recording the wait.
//   - Once a worker claims the task, Submit waits for it to finish even if
//     ctx fires — run is expected to honor the same ctx and return
//     promptly with its own cancellation error.
//
// A nil return means run was executed; run communicates its own outcome
// through captured variables.
func (s *Scheduler) Submit(ctx context.Context, priority int, run func()) error {
	if priority < 0 {
		priority = 0
	}
	if priority >= s.cfg.Lanes {
		priority = s.cfg.Lanes - 1
	}
	t := &task{run: run, pri: priority, enqueued: time.Now(), finished: make(chan struct{})}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if s.queued >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.metrics.RejectedQueue.Add(1)
		return ErrQueueFull
	}
	s.lanes[priority] = append(s.lanes[priority], t)
	s.queued++
	s.metrics.Admitted.Add(1)
	s.metrics.Queued.Add(1)
	s.cond.Signal()
	s.mu.Unlock()

	select {
	case <-t.finished:
		return nil
	case <-ctx.Done():
		if t.state.CompareAndSwap(taskQueued, taskAbandoned) {
			// The task never ran. Remove it from its lane right away —
			// under saturation (all workers busy for a long time) expired
			// tasks would otherwise pile up in the lane slices with
			// nothing draining them — and account the live-queue decrement
			// so queue-full admission reflects only tasks that can still
			// run.
			s.mu.Lock()
			s.queued--
			lane := s.lanes[t.pri]
			for i, q := range lane {
				if q == t {
					copy(lane[i:], lane[i+1:])
					lane[len(lane)-1] = nil
					s.lanes[t.pri] = lane[:len(lane)-1]
					break
				}
			}
			s.mu.Unlock()
			s.metrics.Queued.Add(-1)
			s.metrics.Expired.Add(1)
			return &QueueExpiredError{Waited: time.Since(t.enqueued), Cause: context.Cause(ctx)}
		}
		// A worker claimed it first: the run sees the canceled ctx itself.
		<-t.finished
		return nil
	}
}

// claimNext pops tasks in lane-priority order (FIFO within a lane) until
// it claims one, discarding abandoned tasks (their submitter already
// accounted for them). Caller holds s.mu; the claim CAS runs under the
// lock so exactly one of worker and abandoning submitter decrements the
// queued count for any task.
func (s *Scheduler) claimNext() *task {
	for pri := range s.lanes {
		for len(s.lanes[pri]) > 0 {
			t := s.lanes[pri][0]
			s.lanes[pri][0] = nil
			s.lanes[pri] = s.lanes[pri][1:]
			if t.state.CompareAndSwap(taskQueued, taskClaimed) {
				return t
			}
		}
	}
	return nil
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var t *task
		for {
			if t = s.claimNext(); t != nil || s.closed {
				break
			}
			s.cond.Wait()
		}
		if t == nil {
			// Closed and drained.
			s.mu.Unlock()
			return
		}
		s.queued--
		s.mu.Unlock()

		s.metrics.Queued.Add(-1)
		s.metrics.QueueWaitNanos.Add(time.Since(t.enqueued).Nanoseconds())
		s.metrics.InFlight.Add(1)
		start := time.Now()
		t.run()
		s.metrics.LatencyNanos.Add(time.Since(start).Nanoseconds())
		s.metrics.InFlight.Add(-1)
		s.metrics.Completed.Add(1)
		close(t.finished)
	}
}

// Close stops admission, lets the workers drain every task already queued
// (their submitters are still waiting on them), and returns once the pool
// has exited. Close is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
