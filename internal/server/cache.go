package server

import "sync"

// Cache is the result cache: canonicalized query options map to the
// finished answer. Within one Engine epoch a stored answer can never go
// stale, so a hit is bit-identical to the run that produced it; across
// epochs the serving layer tags keys with the producing epoch and calls
// Sweep after an evidence update to drop the entries whose epoch is no
// longer served (lookups use the current epoch's keys, so superseded
// entries are unreachable even before the sweep collects them).
//
// Eviction is FIFO by insertion order: the serving workload this layer
// targets is many clients re-issuing a working set of identical queries,
// where any reasonable policy keeps the hot keys; FIFO needs no per-hit
// bookkeeping on the (lock-shared) read path.
type Cache struct {
	mu      sync.RWMutex
	max     int
	entries map[string]any
	order   []string // insertion order, for FIFO capacity eviction
	metrics *Counters
}

// NewCache creates a cache holding at most max entries (max <= 0 disables
// caching: Get always misses and Put drops).
func NewCache(max int, m *Counters) *Cache {
	if m == nil {
		m = &Counters{}
	}
	c := &Cache{max: max, metrics: m}
	if max > 0 {
		c.entries = make(map[string]any, max)
	}
	return c
}

// Enabled reports whether the cache stores anything at all.
func (c *Cache) Enabled() bool { return c.max > 0 }

// Get returns the cached value for key, counting the hit or miss.
func (c *Cache) Get(key string) (any, bool) {
	if c.max <= 0 {
		c.metrics.CacheMisses.Add(1)
		return nil, false
	}
	c.mu.RLock()
	v, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.metrics.CacheHits.Add(1)
	} else {
		c.metrics.CacheMisses.Add(1)
	}
	return v, ok
}

// Put stores a value, evicting the oldest entries when over capacity. A
// concurrent duplicate Put of the same key keeps the first value — both
// were computed from the same canonical options, so they are
// interchangeable, and keeping the first preserves "a hit returns exactly
// what some completed run returned".
func (c *Cache) Put(key string, v any) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = v
	c.order = append(c.order, key)
}

// Sweep drops every entry whose key fails keep, preserving the insertion
// order of the survivors, and reports how many entries were invalidated
// and how many were retained. The serving layer calls it after an evidence
// update with a keep predicate matching the new current epoch's key prefix.
func (c *Cache) Sweep(keep func(key string) bool) (invalidated, retained int) {
	if c.max <= 0 {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.order[:0]
	for _, k := range c.order {
		if keep(k) {
			kept = append(kept, k)
			continue
		}
		delete(c.entries, k)
		invalidated++
	}
	c.order = kept
	return invalidated, len(c.order)
}

// ForEach visits every cached entry in insertion order under the read
// lock. fn must not call back into the cache. The serving layer uses it
// to persist the cache across restarts.
func (c *Cache) ForEach(fn func(key string, v any)) {
	if c.max <= 0 {
		return
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, k := range c.order {
		fn(k, c.entries[k])
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
