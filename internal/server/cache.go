package server

import "sync"

// Cache is the result cache: canonicalized query options map to the
// finished answer. Because an Engine is immutable after Ground, a stored
// answer can never go stale — entries are evicted only for capacity, never
// invalidated, and a hit is bit-identical to the run that produced it.
//
// Eviction is FIFO by insertion order: the serving workload this layer
// targets is many clients re-issuing a working set of identical queries,
// where any reasonable policy keeps the hot keys; FIFO needs no per-hit
// bookkeeping on the (lock-shared) read path.
type Cache struct {
	mu      sync.RWMutex
	max     int
	entries map[string]any
	order   []string // insertion order, for FIFO capacity eviction
	metrics *Counters
}

// NewCache creates a cache holding at most max entries (max <= 0 disables
// caching: Get always misses and Put drops).
func NewCache(max int, m *Counters) *Cache {
	if m == nil {
		m = &Counters{}
	}
	c := &Cache{max: max, metrics: m}
	if max > 0 {
		c.entries = make(map[string]any, max)
	}
	return c
}

// Enabled reports whether the cache stores anything at all.
func (c *Cache) Enabled() bool { return c.max > 0 }

// Get returns the cached value for key, counting the hit or miss.
func (c *Cache) Get(key string) (any, bool) {
	if c.max <= 0 {
		c.metrics.CacheMisses.Add(1)
		return nil, false
	}
	c.mu.RLock()
	v, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.metrics.CacheHits.Add(1)
	} else {
		c.metrics.CacheMisses.Add(1)
	}
	return v, ok
}

// Put stores a value, evicting the oldest entries when over capacity. A
// concurrent duplicate Put of the same key keeps the first value — both
// were computed from the same canonical options, so they are
// interchangeable, and keeping the first preserves "a hit returns exactly
// what some completed run returned".
func (c *Cache) Put(key string, v any) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = v
	c.order = append(c.order, key)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
