// Package remote is the process topology of the distributed inference
// tier: a Worker hosts a grounded engine behind the wire protocol
// (cmd/tuffyd -worker), and a coordinator-side Pool of Replicas dials
// workers, health-gates membership, fans evidence updates out, and keeps
// lagging workers caught up from a journal of applied deltas. The package
// is engine-agnostic — it moves wire messages between processes; the
// Backend interface (implemented by the tuffy Engine) supplies identity,
// shard execution and delta application.
package remote

import (
	"context"
	"net"
	"sync/atomic"

	"tuffy/internal/wire"
)

// Backend is the engine-side surface a Worker hosts and a coordinator
// shards over. tuffy.Engine implements it via its shard entry points.
type Backend interface {
	// Identity reports the program/evidence/config fingerprints and the
	// current epoch, the handshake both sides validate.
	Identity() wire.Hello
	// InferShard runs the requested component group on the requested
	// epoch, or fails with a typed wire error (epoch/plan mismatch).
	InferShard(ctx context.Context, req wire.ShardRequest) (wire.ShardResult, error)
	// ApplyDelta applies one encoded evidence delta (mln.EncodeDelta
	// format). Deltas set absolute truth values, so re-applying one is a
	// no-op — the property the pool's catch-up replay relies on.
	ApplyDelta(ctx context.Context, delta []byte) (wire.UpdateAck, error)
	// UpdatesApplied counts successfully applied deltas.
	UpdatesApplied() uint64
}

// Worker serves one Backend over the wire protocol.
type Worker struct {
	b        Backend
	inFlight atomic.Int64
	served   atomic.Int64
}

// NewWorker wraps a backend.
func NewWorker(b Backend) *Worker { return &Worker{b: b} }

// Serve runs the accept loop until ctx is done (cmd/tuffyd wires SIGINT/
// SIGTERM into the ctx).
func (w *Worker) Serve(ctx context.Context, ln net.Listener) error {
	return wire.Serve(ctx, ln, w)
}

// Handshake validates the coordinator's identity against the backend's.
func (w *Worker) Handshake(peer wire.Hello) (wire.Hello, error) {
	us := w.b.Identity()
	if err := us.Check(peer); err != nil {
		return wire.Hello{}, err
	}
	return us, nil
}

// Infer runs one shard request.
func (w *Worker) Infer(ctx context.Context, req wire.ShardRequest) (wire.ShardResult, error) {
	w.inFlight.Add(1)
	defer w.inFlight.Add(-1)
	res, err := w.b.InferShard(ctx, req)
	if err == nil {
		w.served.Add(1)
	}
	return res, err
}

// Update applies one evidence delta.
func (w *Worker) Update(ctx context.Context, req wire.UpdateRequest) (wire.UpdateAck, error) {
	return w.b.ApplyDelta(ctx, req.Delta)
}

// Stats answers a health probe.
func (w *Worker) Stats() wire.StatsReply {
	return wire.StatsReply{
		Epoch:          w.b.Identity().Epoch,
		UpdatesApplied: w.b.UpdatesApplied(),
		InFlight:       w.inFlight.Load(),
		Served:         w.served.Load(),
	}
}
