package remote

import (
	"context"
	"errors"
	"sync"
	"time"

	"tuffy/internal/wire"
)

// Replica is the coordinator's view of one worker: a small pool of reused
// connections plus health state. Calls retry transient dial/IO failures
// with backoff on a fresh connection; typed worker-side errors (epoch or
// plan mismatch, remote cancellation) are returned as-is — the request
// reached the worker, so retrying the same bytes cannot help.
type Replica struct {
	addr     string
	identity func() wire.Hello
	timeout  time.Duration

	mu        sync.Mutex
	idle      []*wire.Conn
	connected bool
	healthy   bool
	epoch     uint64 // worker's last observed generation
	inFlight  int64
	lastErr   error

	// opMu serializes evidence operations (live fan-out and catch-up
	// replay) so deltas always reach the worker in journal order.
	opMu sync.Mutex
}

// callAttempts bounds transient-failure retries per call; backoff doubles
// from callBackoff between attempts.
const (
	callAttempts = 3
	callBackoff  = 15 * time.Millisecond
	maxIdleConns = 4
)

// Addr returns the worker address.
func (r *Replica) Addr() string { return r.addr }

// Healthy reports whether the replica served its last probe or call.
func (r *Replica) Healthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy
}

// Epoch returns the worker's last observed generation.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// transient reports whether err is a dial/IO-level failure worth retrying
// on a fresh connection, as opposed to a typed answer from the worker.
func transient(err error) bool {
	if err == nil {
		return false
	}
	var em *wire.EpochMismatchError
	var pm *wire.PlanMismatchError
	var re *wire.RemoteError
	switch {
	case errors.As(err, &em), errors.As(err, &pm), errors.As(err, &re),
		errors.Is(err, wire.ErrRemoteCanceled),
		errors.Is(err, wire.ErrIdentityMismatch),
		errors.Is(err, wire.ErrVersionMismatch),
		errors.Is(err, wire.ErrBadPayload),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// getConn pops an idle connection or dials a new one (with handshake).
func (r *Replica) getConn(ctx context.Context) (*wire.Conn, error) {
	r.mu.Lock()
	if n := len(r.idle); n > 0 {
		c := r.idle[n-1]
		r.idle = r.idle[:n-1]
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	c, err := wire.Dial(ctx, r.addr, r.identity())
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.connected = true
	r.mu.Unlock()
	return c, nil
}

func (r *Replica) putConn(c *wire.Conn) {
	r.mu.Lock()
	if len(r.idle) < maxIdleConns {
		r.idle = append(r.idle, c)
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	c.Close()
}

// call performs one request/response exchange, retrying transient
// failures on fresh connections with backoff. Health state is updated on
// the way out: a final transient failure marks the replica unhealthy; a
// successful exchange marks it healthy.
func (r *Replica) call(ctx context.Context, typ byte, payload []byte, want byte) ([]byte, error) {
	if r.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}
	r.mu.Lock()
	r.inFlight++
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.inFlight--
		r.mu.Unlock()
	}()

	var err error
	for attempt := 0; attempt < callAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			case <-time.After(callBackoff << (attempt - 1)):
			}
		}
		var c *wire.Conn
		c, err = r.getConn(ctx)
		if err != nil {
			if transient(err) {
				continue
			}
			r.fail(err)
			return nil, err
		}
		var reply []byte
		reply, err = c.Roundtrip(ctx, typ, payload, want)
		if err == nil {
			r.putConn(c)
			r.ok()
			return reply, nil
		}
		// Any error poisons the connection: even for typed worker errors
		// the session itself is fine, but after a deadline-driven failure
		// the stream may hold a late reply, so only a clean exchange
		// returns a connection to the pool.
		c.Close()
		if !transient(err) {
			// The worker answered; it is alive. Epoch mismatches update our
			// view of its generation.
			var em *wire.EpochMismatchError
			if errors.As(err, &em) {
				r.mu.Lock()
				r.epoch = em.Have
				r.mu.Unlock()
			}
			r.ok()
			return nil, err
		}
	}
	r.fail(err)
	return nil, err
}

func (r *Replica) ok() {
	r.mu.Lock()
	r.healthy = true
	r.lastErr = nil
	r.mu.Unlock()
}

func (r *Replica) fail(err error) {
	r.mu.Lock()
	r.healthy = false
	r.connected = false
	r.lastErr = err
	idle := r.idle
	r.idle = nil
	r.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// Infer runs one shard request on this worker.
func (r *Replica) Infer(ctx context.Context, req wire.ShardRequest) (wire.ShardResult, error) {
	reply, err := r.call(ctx, wire.TypeInfer, req.Encode(), wire.TypeInferReply)
	if err != nil {
		return wire.ShardResult{}, err
	}
	res, err := wire.DecodeShardResult(reply)
	if err != nil {
		return wire.ShardResult{}, err
	}
	r.mu.Lock()
	r.epoch = res.Epoch
	r.mu.Unlock()
	return res, nil
}

// Update applies one encoded delta on this worker.
func (r *Replica) Update(ctx context.Context, delta []byte, deadline uint32) (wire.UpdateAck, error) {
	req := wire.UpdateRequest{DeadlineMillis: deadline, Delta: delta}
	reply, err := r.call(ctx, wire.TypeUpdate, req.Encode(), wire.TypeUpdateAck)
	if err != nil {
		return wire.UpdateAck{}, err
	}
	ack, err := wire.DecodeUpdateAck(reply)
	if err != nil {
		return wire.UpdateAck{}, err
	}
	r.mu.Lock()
	r.epoch = ack.Epoch
	r.mu.Unlock()
	return ack, nil
}

// Ping probes the worker and refreshes its observed epoch.
func (r *Replica) Ping(ctx context.Context) (wire.StatsReply, error) {
	reply, err := r.call(ctx, wire.TypePing, nil, wire.TypePong)
	if err != nil {
		return wire.StatsReply{}, err
	}
	st, err := wire.DecodeStatsReply(reply)
	if err != nil {
		return wire.StatsReply{}, err
	}
	r.mu.Lock()
	r.epoch = st.Epoch
	r.mu.Unlock()
	return st, nil
}

// close drops all idle connections.
func (r *Replica) close() {
	r.mu.Lock()
	idle := r.idle
	r.idle = nil
	r.connected = false
	r.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}
