package remote

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tuffy/internal/wire"
)

// fakeBackend models the engine contract the pool relies on: epochs
// advance once per effective delta, and re-applying a delta is a no-op
// (deltas carry a sequence number; the absolute-truth semantics of real
// deltas give the same idempotence).
type fakeBackend struct {
	fp wire.Hello // fingerprints only; epoch tracked below

	mu         sync.Mutex
	appliedSeq uint64
	epoch      uint64
	updates    uint64
}

func fingerprints() wire.Hello {
	return wire.Hello{Version: wire.Version, ProgFP: 11, EvFP: 22, CfgFP: 33}
}

func seqDelta(seq uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, seq)
}

func (b *fakeBackend) Identity() wire.Hello {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.fp
	h.Epoch = b.epoch
	return h
}

func (b *fakeBackend) InferShard(ctx context.Context, req wire.ShardRequest) (wire.ShardResult, error) {
	b.mu.Lock()
	cur := b.epoch
	b.mu.Unlock()
	if req.Epoch != cur {
		return wire.ShardResult{}, &wire.EpochMismatchError{Have: cur, Want: req.Epoch}
	}
	res := wire.ShardResult{Epoch: cur, Marginal: req.Marginal}
	for _, idx := range req.Indices {
		c := wire.ShardComp{Index: idx}
		if req.Marginal {
			c.Probs = []float64{0, float64(idx) / 10}
		} else {
			c.Cost = float64(idx)
			c.State = []bool{false, idx%2 == 0}
		}
		res.Comps = append(res.Comps, c)
	}
	return res, nil
}

func (b *fakeBackend) ApplyDelta(ctx context.Context, delta []byte) (wire.UpdateAck, error) {
	if len(delta) != 8 {
		return wire.UpdateAck{}, fmt.Errorf("bad delta")
	}
	seq := binary.LittleEndian.Uint64(delta)
	b.mu.Lock()
	defer b.mu.Unlock()
	identical := seq <= b.appliedSeq
	if !identical {
		b.appliedSeq = seq
		b.epoch++
	}
	b.updates++
	return wire.UpdateAck{Epoch: b.epoch, Identical: identical, UpdatesApplied: b.updates}, nil
}

func (b *fakeBackend) UpdatesApplied() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.updates
}

// startWorker serves a backend on an ephemeral port; the returned stop
// func shuts the accept loop down and waits for it.
func startWorker(t *testing.T, b Backend) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return serveWorker(t, b, ln)
}

func serveWorker(t *testing.T, b Backend, ln net.Listener) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- NewWorker(b).Serve(ctx, ln) }()
	var once sync.Once
	return ln.Addr().String(), func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("worker serve: %v", err)
			}
		})
	}
}

// coordinator is the pool's view of the local engine in these tests.
type coordinator struct{ epoch atomic.Uint64 }

func (c *coordinator) identity() wire.Hello {
	h := fingerprints()
	h.Epoch = c.epoch.Load()
	return h
}

func newTestPool(t *testing.T, co *coordinator, addrs ...string) *Pool {
	t.Helper()
	p := NewPool(PoolConfig{
		Addrs:       addrs,
		Identity:    co.identity,
		CallTimeout: 5 * time.Second,
		ProbeEvery:  50 * time.Millisecond,
	})
	t.Cleanup(p.Close)
	return p
}

func TestPoolInferAndStatus(t *testing.T) {
	b1, b2 := &fakeBackend{fp: fingerprints()}, &fakeBackend{fp: fingerprints()}
	a1, stop1 := startWorker(t, b1)
	defer stop1()
	a2, stop2 := startWorker(t, b2)
	defer stop2()

	co := &coordinator{}
	p := newTestPool(t, co, a1, a2)
	p.ProbeNow(context.Background())

	cands := p.Candidates(0)
	if len(cands) != 2 {
		t.Fatalf("candidates at epoch 0: %d, want 2", len(cands))
	}
	res, err := cands[0].Infer(context.Background(), wire.ShardRequest{Epoch: 0, Indices: []uint32{1, 4}})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if len(res.Comps) != 2 || res.Comps[0].Cost != 1 || res.Comps[1].State[1] != true {
		t.Fatalf("shard result: %+v", res)
	}

	for _, st := range p.Status() {
		if !st.Healthy || !st.Connected || st.Epoch != 0 || st.LastErr != "" {
			t.Fatalf("status row: %+v", st)
		}
	}
}

func TestPoolRejectsForeignWorker(t *testing.T) {
	foreign := &fakeBackend{fp: wire.Hello{Version: wire.Version, ProgFP: 99, EvFP: 22, CfgFP: 33}}
	addr, stop := startWorker(t, foreign)
	defer stop()

	co := &coordinator{}
	p := newTestPool(t, co, addr)
	p.ProbeNow(context.Background())

	if n := len(p.Candidates(0)); n != 0 {
		t.Fatalf("foreign worker admitted: %d candidates", n)
	}
	st := p.Status()[0]
	if st.Healthy || st.LastErr == "" {
		t.Fatalf("status row: %+v", st)
	}
}

func TestEpochMismatchIsTypedAndKeepsHealth(t *testing.T) {
	b := &fakeBackend{fp: fingerprints()}
	addr, stop := startWorker(t, b)
	defer stop()
	co := &coordinator{}
	p := newTestPool(t, co, addr)
	p.ProbeNow(context.Background())
	r := p.Replicas()[0]

	_, err := r.Infer(context.Background(), wire.ShardRequest{Epoch: 7, Indices: []uint32{0}})
	var em *wire.EpochMismatchError
	if !errors.As(err, &em) || em.Want != 7 || em.Have != 0 {
		t.Fatalf("want typed epoch mismatch, got %v", err)
	}
	if !r.Healthy() {
		t.Fatal("worker demoted by a typed answer")
	}
}

func TestUpdateFanOutAndRestartCatchUp(t *testing.T) {
	b1 := &fakeBackend{fp: fingerprints()}
	a1, stop1 := startWorker(t, b1)
	defer stop1()

	// Second worker is down from the start: its address is reserved but
	// nothing listens yet.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a2 := ln2.Addr().String()
	ln2.Close()

	co := &coordinator{}
	p := newTestPool(t, co, a1, a2)
	p.ProbeNow(context.Background())

	// Three updates: the live worker follows along, the dead one misses all.
	for seq := uint64(1); seq <= 3; seq++ {
		co.epoch.Add(1)
		p.Update(context.Background(), seqDelta(seq))
	}
	if got := p.Replicas()[0].Epoch(); got != 3 {
		t.Fatalf("live worker epoch %d, want 3", got)
	}
	if got := len(p.Candidates(3)); got != 1 {
		t.Fatalf("candidates at epoch 3: %d, want 1", got)
	}

	// The dead worker comes up fresh (epoch 0) on the same address; the
	// probe replays the journal and it rejoins at the current epoch.
	b2 := &fakeBackend{fp: fingerprints()}
	ln2b, err := net.Listen("tcp", a2)
	if err != nil {
		t.Fatal(err)
	}
	_, stop2 := serveWorker(t, b2, ln2b)
	defer stop2()
	p.ProbeNow(context.Background())
	if got := b2.Identity().Epoch; got != 3 {
		t.Fatalf("restarted worker epoch %d after catch-up, want 3", got)
	}
	if got := len(p.Candidates(3)); got != 2 {
		t.Fatalf("candidates after catch-up: %d, want 2", got)
	}
	// Replay was idempotent on the live worker's side too: re-probing does
	// not disturb it.
	p.ProbeNow(context.Background())
	if got := b1.UpdatesApplied(); got != 3 {
		t.Fatalf("live worker applied %d updates, want 3", got)
	}
}

func TestDeadWorkerDegradesAndRevives(t *testing.T) {
	b := &fakeBackend{fp: fingerprints()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := serveWorker(t, b, ln)
	co := &coordinator{}
	p := newTestPool(t, co, addr)
	p.ProbeNow(context.Background())
	r := p.Replicas()[0]
	if !r.Healthy() {
		t.Fatal("worker not healthy after probe")
	}

	stop() // kill the worker: in-flight and future calls must fail typed, not hang
	_, err = r.Infer(context.Background(), wire.ShardRequest{Epoch: 0, Indices: []uint32{0}})
	if err == nil {
		t.Fatal("Infer succeeded against a dead worker")
	}
	if r.Healthy() {
		t.Fatal("dead worker still marked healthy")
	}
	if n := len(p.Candidates(0)); n != 0 {
		t.Fatalf("dead worker still a candidate: %d", n)
	}

	// Revive on the same address; the probe loop brings it back.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	_, stop2 := serveWorker(t, b, ln2)
	defer stop2()
	deadline := time.Now().Add(10 * time.Second)
	for len(p.Candidates(0)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("revived worker never rejoined")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPoolRace exercises the client pool's concurrency: parallel shards,
// pings, status reads and updates against live workers (run under -race).
func TestPoolRace(t *testing.T) {
	b1, b2 := &fakeBackend{fp: fingerprints()}, &fakeBackend{fp: fingerprints()}
	a1, stop1 := startWorker(t, b1)
	defer stop1()
	a2, stop2 := startWorker(t, b2)
	defer stop2()
	co := &coordinator{}
	p := newTestPool(t, co, a1, a2)
	p.ProbeNow(context.Background())

	var wg sync.WaitGroup
	var updMu sync.Mutex
	seq := uint64(0)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				switch i % 4 {
				case 0:
					r := p.Replicas()[j%2]
					epoch := r.Epoch()
					if _, err := r.Infer(context.Background(), wire.ShardRequest{Epoch: epoch, Indices: []uint32{uint32(j)}}); err != nil {
						var em *wire.EpochMismatchError
						if !errors.As(err, &em) {
							t.Errorf("Infer: %v", err)
						}
					}
				case 1:
					p.Replicas()[j%2].Ping(context.Background())
				case 2:
					p.Status()
					p.Candidates(co.epoch.Load())
				case 3:
					// Updates are single-writer in the serving layer; model that.
					updMu.Lock()
					seq++
					co.epoch.Add(1)
					p.Update(context.Background(), seqDelta(seq))
					updMu.Unlock()
				}
			}
		}(i)
	}
	wg.Wait()
	p.ProbeNow(context.Background())
	want := co.epoch.Load()
	for _, r := range p.Replicas() {
		if !r.Healthy() || r.Epoch() != want {
			t.Fatalf("replica %s: healthy=%v epoch=%d want %d", r.Addr(), r.Healthy(), r.Epoch(), want)
		}
	}
}
