package remote

import (
	"context"
	"fmt"
	"sync"
	"time"

	"tuffy/internal/wire"
)

// PoolConfig configures the coordinator-side worker pool.
type PoolConfig struct {
	// Addrs are the worker addresses (host:port).
	Addrs []string
	// Identity supplies the coordinator's handshake (fingerprints + current
	// epoch) — a func because the epoch advances with evidence updates.
	Identity func() wire.Hello
	// CallTimeout caps each remote call (default 30s).
	CallTimeout time.Duration
	// ProbeEvery is the health-probe cadence (default 250ms).
	ProbeEvery time.Duration
	// JournalCap bounds the delta catch-up journal (default 1024 entries);
	// a worker lagging past the cap can no longer be caught up and stays
	// out of membership until restarted in sync.
	JournalCap int
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.CallTimeout <= 0 {
		c.CallTimeout = 30 * time.Second
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 250 * time.Millisecond
	}
	if c.JournalCap <= 0 {
		c.JournalCap = 1024
	}
	return c
}

// WorkerStatus is one worker's row in /healthz and /metrics.
type WorkerStatus struct {
	Addr      string `json:"addr"`
	Connected bool   `json:"connected"`
	Healthy   bool   `json:"healthy"`
	Epoch     uint64 `json:"epoch"`
	InFlight  int64  `json:"inFlight"`
	LastErr   string `json:"lastErr,omitempty"`
}

// Pool manages the coordinator's worker membership: it probes workers on
// a cadence, gates shard dispatch on health and epoch agreement, fans
// evidence deltas out, and replays its journal to catch lagging or
// restarted workers up. A dead worker degrades capacity — the sharder
// falls back to surviving workers or the local engine — and rejoins
// automatically once probes see it healthy and current again.
type Pool struct {
	cfg      PoolConfig
	replicas []*Replica

	mu       sync.Mutex
	journal  [][]byte // encoded deltas in application order
	dropped  int      // journal entries discarded by the cap
	truncErr error

	stop   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once
}

// NewPool creates the pool and starts its probe loop. Workers are dialed
// lazily; call ProbeNow for a synchronous first probe round.
func NewPool(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, stop: make(chan struct{})}
	for _, addr := range cfg.Addrs {
		p.replicas = append(p.replicas, &Replica{
			addr:     addr,
			identity: cfg.Identity,
			timeout:  cfg.CallTimeout,
		})
	}
	p.wg.Add(1)
	go p.probeLoop()
	return p
}

// Replicas returns all configured replicas.
func (p *Pool) Replicas() []*Replica { return p.replicas }

// Candidates returns the replicas eligible for shard dispatch at the
// given epoch: healthy and last observed at exactly that generation. The
// worker-side epoch guard is the authoritative check; this gate just
// avoids dispatching work that is known to bounce.
func (p *Pool) Candidates(epoch uint64) []*Replica {
	var out []*Replica
	for _, r := range p.replicas {
		r.mu.Lock()
		ok := r.healthy && r.epoch == epoch
		r.mu.Unlock()
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// Status snapshots every worker's row.
func (p *Pool) Status() []WorkerStatus {
	out := make([]WorkerStatus, 0, len(p.replicas))
	for _, r := range p.replicas {
		r.mu.Lock()
		st := WorkerStatus{
			Addr:      r.addr,
			Connected: r.connected,
			Healthy:   r.healthy,
			Epoch:     r.epoch,
			InFlight:  r.inFlight,
		}
		if r.lastErr != nil {
			st.LastErr = r.lastErr.Error()
		}
		r.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// Update journals one applied delta and fans it out to every replica in
// parallel. Worker failures never fail the update — the local engine has
// already committed it; a worker that misses the delta is demoted and
// caught up by the probe loop. The caller (the serving layer's update
// path) is single-writer, so journal order is application order.
func (p *Pool) Update(ctx context.Context, delta []byte) {
	p.mu.Lock()
	p.journal = append(p.journal, delta)
	if len(p.journal) > p.cfg.JournalCap {
		n := len(p.journal) - p.cfg.JournalCap
		p.journal = append([][]byte(nil), p.journal[n:]...)
		p.dropped += n
		p.truncErr = fmt.Errorf("remote: catch-up journal truncated (%d deltas dropped)", p.dropped)
	}
	p.mu.Unlock()

	var wg sync.WaitGroup
	for _, r := range p.replicas {
		if !r.Healthy() {
			continue // probe loop owns catch-up for demoted workers
		}
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			r.opMu.Lock()
			defer r.opMu.Unlock()
			if _, err := r.Update(ctx, delta, deadlineMillis(ctx)); err != nil {
				r.fail(fmt.Errorf("remote: update fan-out: %w", err))
			}
		}(r)
	}
	wg.Wait()
}

// ProbeNow runs one synchronous probe round: ping every replica in
// parallel, and replay the journal to any worker observed behind the
// coordinator's current epoch.
func (p *Pool) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, r := range p.replicas {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			p.probeOne(ctx, r)
		}(r)
	}
	wg.Wait()
}

func (p *Pool) probeOne(ctx context.Context, r *Replica) {
	if _, err := r.Ping(ctx); err != nil {
		return // fail() already recorded it
	}
	want := p.cfg.Identity().Epoch
	if r.Epoch() == want {
		return
	}
	// The worker answered but serves another generation: replay the full
	// journal in order. Deltas set absolute truth values, so entries the
	// worker already applied replay as no-ops — replaying from the start
	// needs no per-worker bookkeeping and is correct for restarted workers
	// too. The journal snapshot is taken under opMu, so a concurrent live
	// fan-out cannot interleave out of order.
	r.opMu.Lock()
	defer r.opMu.Unlock()
	p.mu.Lock()
	entries := p.journal
	truncated := p.truncErr
	p.mu.Unlock()
	for _, delta := range entries {
		if _, err := r.Update(ctx, delta, deadlineMillis(ctx)); err != nil {
			r.fail(fmt.Errorf("remote: catch-up replay: %w", err))
			return
		}
	}
	want = p.cfg.Identity().Epoch
	if got := r.Epoch(); got != want {
		// The full journal was not enough (entries were dropped by the cap,
		// or the worker diverged). Keep it out of membership.
		err := fmt.Errorf("remote: worker at epoch %d after catch-up, coordinator at %d", got, want)
		if truncated != nil {
			err = fmt.Errorf("%v (%v)", err, truncated)
		}
		r.fail(err)
	}
}

func (p *Pool) probeLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), p.cfg.CallTimeout)
			p.ProbeNow(ctx)
			cancel()
		}
	}
}

// Close stops the probe loop and drops all connections.
func (p *Pool) Close() {
	p.closed.Do(func() { close(p.stop) })
	p.wg.Wait()
	for _, r := range p.replicas {
		r.close()
	}
}

// deadlineMillis converts a context deadline to the wire's millisecond
// field (0 = none), clamped to at least 1ms when a deadline exists.
func deadlineMillis(ctx context.Context) uint32 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	if ms > int64(^uint32(0)) {
		return 0
	}
	return uint32(ms)
}
