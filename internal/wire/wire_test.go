package wire

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestFrameRoundtrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 4096)}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, TypeInfer, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if typ != TypeInfer || !bytes.Equal(got, p) {
			t.Fatalf("roundtrip mismatch: type %d payload %v want %v", typ, got, p)
		}
	}
	if _, _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("drained stream: got %v, want io.EOF", err)
	}
}

func TestFrameErrors(t *testing.T) {
	frame, err := AppendFrame(nil, TypePing, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), frame...)
		b[0] ^= 0xFF
		if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("checksum", func(t *testing.T) {
		b := append([]byte(nil), frame...)
		b[len(b)-1] ^= 0xFF
		if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, _, err := ReadFrame(bytes.NewReader(frame[:5])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if _, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("oversized declared", func(t *testing.T) {
		b := append([]byte(nil), frame...)
		le32(b[4:8], MaxFrame+1)
		if _, _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("got %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("oversized write", func(t *testing.T) {
		if _, err := AppendFrame(nil, TypePing, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("got %v, want ErrFrameTooLarge", err)
		}
	})
}

func TestMessageRoundtrips(t *testing.T) {
	hello := Hello{Version: Version, ProgFP: 0xDEADBEEF01, EvFP: 0xFEED02, CfgFP: 0xC0FFEE, Epoch: 7}
	if got, err := DecodeHello(hello.Encode()); err != nil || got != hello {
		t.Fatalf("hello: got %+v err %v", got, err)
	}

	req := ShardRequest{
		Marginal: false, Epoch: 3, NumAtoms: 120, NumComps: 9,
		Seed: -42, MaxFlips: 1e6, MaxTries: 2, Samples: 0,
		DeadlineMillis: 1500, Indices: []uint32{0, 3, 8},
	}
	if got, err := DecodeShardRequest(req.Encode()); err != nil || !reflect.DeepEqual(got, req) {
		t.Fatalf("shard request: got %+v err %v", got, err)
	}

	mapRes := ShardResult{Epoch: 3, Comps: []ShardComp{
		{Index: 0, Cost: 1.5, Flips: 120, State: []bool{false, true, false, true}},
		{Index: 3, Cost: 0, Flips: 0, State: []bool{false}},
		{Index: 8, Cost: math.Inf(1), Flips: 9, State: []bool{false, true, true, true, true, true, true, true, true, false}},
	}}
	got, err := DecodeShardResult(mapRes.Encode())
	if err != nil || !reflect.DeepEqual(got, mapRes) {
		t.Fatalf("map shard result: got %+v err %v", got, err)
	}

	margRes := ShardResult{Epoch: 9, Marginal: true, Comps: []ShardComp{
		{Index: 1, Probs: []float64{0, 0.25, 1, 0.005}},
	}}
	got, err = DecodeShardResult(margRes.Encode())
	if err != nil || !reflect.DeepEqual(got, margRes) {
		t.Fatalf("marginal shard result: got %+v err %v", got, err)
	}

	upd := UpdateRequest{DeadlineMillis: 900, Delta: []byte{1, 2, 3}}
	if got, err := DecodeUpdateRequest(upd.Encode()); err != nil || !reflect.DeepEqual(got, upd) {
		t.Fatalf("update request: got %+v err %v", got, err)
	}

	ack := UpdateAck{Epoch: 4, Identical: true, UpdatesApplied: 17}
	if got, err := DecodeUpdateAck(ack.Encode()); err != nil || got != ack {
		t.Fatalf("update ack: got %+v err %v", got, err)
	}

	stats := StatsReply{Epoch: 2, UpdatesApplied: 5, InFlight: 1, Served: 99}
	if got, err := DecodeStatsReply(stats.Encode()); err != nil || got != stats {
		t.Fatalf("stats: got %+v err %v", got, err)
	}
}

func TestMessageTrailingBytesRejected(t *testing.T) {
	b := append(Hello{Version: Version}.Encode(), 0xFF)
	if _, err := DecodeHello(b); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("trailing bytes: got %v, want ErrBadPayload", err)
	}
	if _, err := DecodeShardRequest([]byte{1, 2}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short payload: got %v, want ErrBadPayload", err)
	}
}

func TestErrorCodec(t *testing.T) {
	em := &EpochMismatchError{Have: 9, Want: 4}
	var gotEM *EpochMismatchError
	if err := DecodeRemoteError(EncodeError(em)); !errors.As(err, &gotEM) || *gotEM != *em {
		t.Fatalf("epoch mismatch roundtrip: %v", err)
	}

	pm := &PlanMismatchError{Detail: "comps 4 != 5"}
	var gotPM *PlanMismatchError
	if err := DecodeRemoteError(EncodeError(pm)); !errors.As(err, &gotPM) || gotPM.Detail != pm.Detail {
		t.Fatalf("plan mismatch roundtrip: %v", err)
	}

	if err := DecodeRemoteError(EncodeError(context.DeadlineExceeded)); err == nil {
		t.Fatal("nil error from encoded deadline error")
	}
	if err := DecodeRemoteError(EncodeError(mapCancel(context.DeadlineExceeded))); !errors.Is(err, ErrRemoteCanceled) {
		t.Fatalf("cancel roundtrip: %v", err)
	}

	var re *RemoteError
	if err := DecodeRemoteError(EncodeError(errors.New("boom"))); !errors.As(err, &re) || re.Detail != "boom" {
		t.Fatalf("generic roundtrip: %v", err)
	}

	if err := DecodeRemoteError([]byte{1}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("malformed error payload: got %v, want ErrBadPayload", err)
	}
}

func TestHelloCheck(t *testing.T) {
	us := Hello{Version: Version, ProgFP: 1, EvFP: 2, CfgFP: 3}
	if err := us.Check(Hello{Version: Version, ProgFP: 1, EvFP: 2, CfgFP: 3, Epoch: 42}); err != nil {
		t.Fatalf("matching identity rejected: %v", err)
	}
	if err := us.Check(Hello{Version: Version + 1, ProgFP: 1, EvFP: 2, CfgFP: 3}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("version skew: got %v", err)
	}
	for _, peer := range []Hello{
		{Version: Version, ProgFP: 9, EvFP: 2, CfgFP: 3},
		{Version: Version, ProgFP: 1, EvFP: 9, CfgFP: 3},
		{Version: Version, ProgFP: 1, EvFP: 2, CfgFP: 9},
	} {
		if err := us.Check(peer); !errors.Is(err, ErrIdentityMismatch) {
			t.Fatalf("fingerprint skew %+v: got %v", peer, err)
		}
	}
}

// testHandler is a loopback Handler for session tests.
type testHandler struct {
	identity Hello
	infer    func(ctx context.Context, req ShardRequest) (ShardResult, error)
	served   atomic.Int64
}

func (h *testHandler) Handshake(peer Hello) (Hello, error) {
	if err := h.identity.Check(peer); err != nil {
		return Hello{}, err
	}
	return h.identity, nil
}

func (h *testHandler) Infer(ctx context.Context, req ShardRequest) (ShardResult, error) {
	h.served.Add(1)
	if h.infer != nil {
		return h.infer(ctx, req)
	}
	res := ShardResult{Epoch: req.Epoch, Marginal: req.Marginal}
	for _, idx := range req.Indices {
		res.Comps = append(res.Comps, ShardComp{Index: idx, Cost: float64(idx), State: []bool{false, true}})
	}
	return res, nil
}

func (h *testHandler) Update(ctx context.Context, req UpdateRequest) (UpdateAck, error) {
	return UpdateAck{Epoch: 1, UpdatesApplied: uint64(len(req.Delta))}, nil
}

func (h *testHandler) Stats() StatsReply {
	return StatsReply{Epoch: 1, Served: h.served.Load()}
}

// startServer runs Serve on an ephemeral port and returns its address and
// a shutdown func that waits for the accept loop to exit.
func startServer(t *testing.T, h Handler) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, h) }()
	return ln.Addr().String(), func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

func TestSessionRoundtrip(t *testing.T) {
	h := &testHandler{identity: Hello{Version: Version, ProgFP: 1, EvFP: 2, CfgFP: 3, Epoch: 1}}
	addr, shutdown := startServer(t, h)
	defer shutdown()

	c, err := Dial(context.Background(), addr, h.identity)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	req := ShardRequest{Epoch: 1, Indices: []uint32{2, 5}}
	reply, err := c.Roundtrip(context.Background(), TypeInfer, req.Encode(), TypeInferReply)
	if err != nil {
		t.Fatalf("Roundtrip: %v", err)
	}
	res, err := DecodeShardResult(reply)
	if err != nil || len(res.Comps) != 2 || res.Comps[1].Index != 5 {
		t.Fatalf("shard result: %+v err %v", res, err)
	}

	// Same connection serves multiple requests.
	if _, err := c.Roundtrip(context.Background(), TypePing, nil, TypePong); err != nil {
		t.Fatalf("ping: %v", err)
	}
	ackB, err := c.Roundtrip(context.Background(), TypeUpdate, UpdateRequest{Delta: []byte{1, 2}}.Encode(), TypeUpdateAck)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if ack, err := DecodeUpdateAck(ackB); err != nil || ack.UpdatesApplied != 2 {
		t.Fatalf("update ack: %+v err %v", ack, err)
	}
}

func TestSessionTypedErrors(t *testing.T) {
	h := &testHandler{
		identity: Hello{Version: Version, ProgFP: 1, EvFP: 2, CfgFP: 3},
		infer: func(ctx context.Context, req ShardRequest) (ShardResult, error) {
			return ShardResult{}, &EpochMismatchError{Have: 8, Want: req.Epoch}
		},
	}
	addr, shutdown := startServer(t, h)
	defer shutdown()

	c, err := Dial(context.Background(), addr, h.identity)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Roundtrip(context.Background(), TypeInfer, ShardRequest{Epoch: 5}.Encode(), TypeInferReply)
	var em *EpochMismatchError
	if !errors.As(err, &em) || em.Have != 8 || em.Want != 5 {
		t.Fatalf("typed error across the wire: %v", err)
	}

	// The session survives a request-level error.
	if _, err := c.Roundtrip(context.Background(), TypePing, nil, TypePong); err != nil {
		t.Fatalf("ping after error: %v", err)
	}

	// A malformed request payload yields a typed bad-payload error.
	if _, err := c.Roundtrip(context.Background(), TypeInfer, []byte{1, 2, 3}, TypeInferReply); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("malformed request: %v", err)
	}
	// An unknown frame type likewise.
	if _, err := c.Roundtrip(context.Background(), 200, nil, TypePong); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("unknown type: %v", err)
	}
}

func TestDialRejectsIdentityMismatch(t *testing.T) {
	h := &testHandler{identity: Hello{Version: Version, ProgFP: 1, EvFP: 2, CfgFP: 3}}
	addr, shutdown := startServer(t, h)
	defer shutdown()

	_, err := Dial(context.Background(), addr, Hello{Version: Version, ProgFP: 99, EvFP: 2, CfgFP: 3})
	if !errors.Is(err, ErrIdentityMismatch) {
		t.Fatalf("got %v, want ErrIdentityMismatch", err)
	}
	_, err = Dial(context.Background(), addr, Hello{Version: Version + 1, ProgFP: 1, EvFP: 2, CfgFP: 3})
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("got %v, want ErrVersionMismatch", err)
	}
}

func TestServeShutdownCutsSessions(t *testing.T) {
	h := &testHandler{identity: Hello{Version: Version, ProgFP: 1, EvFP: 2, CfgFP: 3}}
	block := make(chan struct{})
	h.infer = func(ctx context.Context, req ShardRequest) (ShardResult, error) {
		close(block)
		<-ctx.Done()
		return ShardResult{}, ctx.Err()
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, h) }()

	c, err := Dial(context.Background(), ln.Addr().String(), h.identity)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	callErr := make(chan error, 1)
	go func() {
		_, err := c.Roundtrip(context.Background(), TypeInfer, ShardRequest{}.Encode(), TypeInferReply)
		callErr <- err
	}()
	<-block
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve after shutdown: %v", err)
	}
	select {
	case err := <-callErr:
		if err == nil {
			t.Fatal("in-flight call survived server shutdown without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call not released by shutdown")
	}
}

func TestInferDeadlinePropagates(t *testing.T) {
	h := &testHandler{identity: Hello{Version: Version, ProgFP: 1, EvFP: 2, CfgFP: 3}}
	h.infer = func(ctx context.Context, req ShardRequest) (ShardResult, error) {
		<-ctx.Done()
		return ShardResult{}, ctx.Err()
	}
	addr, shutdown := startServer(t, h)
	defer shutdown()

	c, err := Dial(context.Background(), addr, h.identity)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Roundtrip(context.Background(), TypeInfer, ShardRequest{DeadlineMillis: 30}.Encode(), TypeInferReply)
	if !errors.Is(err, ErrRemoteCanceled) {
		t.Fatalf("got %v, want ErrRemoteCanceled", err)
	}
}
