// Package wire is the framed binary protocol of the distributed inference
// tier: the coordinator (tuffy.Serve with ServerConfig.Workers) speaks it
// to worker processes (tuffyd -worker) that host grounded Engine replicas
// behind TCP. The layer below the messages is deliberately small and
// paranoid — every frame is length-prefixed, CRC-checked and size-bounded,
// and every way a frame can be malformed maps to a typed error, never a
// panic or an unbounded allocation (FuzzFrame holds that line).
//
// Framing: a 12-byte header | 2-byte magic | type | flags | 4-byte payload
// length | 4-byte CRC32-C of the payload | followed by the payload. Frames
// carry one message each; requests and responses alternate on a
// connection, so a session needs no request ids — the client side gets its
// concurrency from a pool of connections instead.
//
// A session starts with a versioned handshake (Hello/HelloAck) carrying
// the program, base-evidence and config fingerprints plus the current
// epoch of each side: a worker grounded from different inputs is rejected
// at dial time, never discovered via diverging answers.
package wire

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the protocol version carried in the handshake; both sides
// must match exactly (the protocol has no negotiation — coordinator and
// workers ship from one build).
const Version = 1

// magic marks every frame; anything else on the stream is a foreign
// client (or a corrupted stream) and kills the connection.
const magic = 0x54F1

// headerLen is the fixed frame header size.
const headerLen = 12

// MaxFrame bounds one frame's payload. Shard results carry per-component
// bitsets and marginal vectors, which stay far below this even for
// networks of hundreds of millions of atoms.
const MaxFrame = 64 << 20

// Frame types. Requests flow coordinator -> worker; every request is
// answered by its response type or TypeError.
const (
	TypeHello      = byte(1) // handshake request (Hello)
	TypeHelloAck   = byte(2) // handshake response (Hello, the worker's identity)
	TypeInfer      = byte(3) // infer-component request (ShardRequest)
	TypeInferReply = byte(4) // infer-component response (ShardResult)
	TypeUpdate     = byte(5) // update-evidence request (UpdateRequest)
	TypeUpdateAck  = byte(6) // update-evidence response (UpdateAck)
	TypePing       = byte(7) // health probe, empty payload
	TypePong       = byte(8) // health response (StatsReply)
	TypeError      = byte(9) // error response (encoded typed error)
)

// Typed framing errors. Decoders wrap these with context; match with
// errors.Is.
var (
	// ErrBadMagic reports a frame that does not start with the protocol
	// magic — a foreign client or a corrupted stream.
	ErrBadMagic = errors.New("wire: bad frame magic")
	// ErrFrameTooLarge reports a frame whose declared payload exceeds the
	// size limit; the frame is rejected before any allocation.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrChecksum reports a payload whose CRC32-C does not match the header.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
	// ErrTruncated reports a stream that ended inside a frame.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadPayload reports a syntactically valid frame whose payload does
	// not decode as its message type.
	ErrBadPayload = errors.New("wire: malformed payload")
	// ErrVersionMismatch rejects a handshake from a different protocol
	// version.
	ErrVersionMismatch = errors.New("wire: protocol version mismatch")
	// ErrIdentityMismatch rejects a handshake whose program, evidence or
	// config fingerprints differ — the peers were not built from the same
	// inputs, so their answers would not be interchangeable.
	ErrIdentityMismatch = errors.New("wire: program/evidence/config fingerprint mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one framed message to dst and returns the extended
// slice. It fails only when the payload exceeds MaxFrame.
func AppendFrame(dst []byte, typ byte, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [headerLen]byte
	hdr[0] = byte(magic >> 8)
	hdr[1] = byte(magic & 0xFF)
	hdr[2] = typ
	hdr[3] = 0 // flags, reserved
	le32(hdr[4:8], uint32(len(payload)))
	le32(hdr[8:12], crc32.Checksum(payload, castagnoli))
	return append(append(dst, hdr[:]...), payload...), nil
}

// WriteFrame writes one framed message.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	buf, err := AppendFrame(make([]byte, 0, headerLen+len(payload)), typ, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one framed message, enforcing the magic, the size bound
// and the checksum. Truncation anywhere inside the frame returns
// ErrTruncated; a clean EOF before the first header byte returns io.EOF
// (the peer closed between messages, which is how sessions end).
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if uint16(hdr[0])<<8|uint16(hdr[1]) != magic {
		return 0, nil, ErrBadMagic
	}
	typ = hdr[2]
	n := de32(hdr[4:8])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes declared", ErrFrameTooLarge, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	if crc32.Checksum(payload, castagnoli) != de32(hdr[8:12]) {
		return 0, nil, ErrChecksum
	}
	return typ, payload, nil
}

func le32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func de32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
