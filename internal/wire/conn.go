package wire

import (
	"bufio"
	"net"
	"time"
)

// Conn wraps one TCP connection with buffered framed I/O. It is not safe
// for concurrent use — the protocol is strictly request/response per
// connection, and the client pool hands each connection to one call at a
// time.
type Conn struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

// NewConn wraps a net.Conn.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, r: bufio.NewReaderSize(nc, 32<<10), w: bufio.NewWriterSize(nc, 32<<10)}
}

// Write frames and flushes one message.
func (c *Conn) Write(typ byte, payload []byte) error {
	if err := WriteFrame(c.w, typ, payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// Read reads the next frame.
func (c *Conn) Read() (byte, []byte, error) {
	return ReadFrame(c.r)
}

// SetDeadline bounds the next I/O operations; zero clears it.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }
