package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Handler is the worker-side service behind a listener: the remote package
// implements it over a grounded Engine.
type Handler interface {
	// Handshake validates the client's identity and returns this side's own
	// Hello for the ack. A non-nil error rejects the session (the error is
	// sent as a TypeError frame and the connection closed).
	Handshake(peer Hello) (Hello, error)
	// Infer runs a shard request. ctx carries the propagated deadline and
	// is canceled when the server shuts down.
	Infer(ctx context.Context, req ShardRequest) (ShardResult, error)
	// Update applies an evidence delta.
	Update(ctx context.Context, req UpdateRequest) (UpdateAck, error)
	// Stats answers a ping.
	Stats() StatsReply
}

// Serve runs the accept loop on ln until ctx is done, handling each
// connection as a strict request/response session that must open with a
// valid handshake. Active sessions are closed (not drained) on shutdown —
// the coordinator treats a dropped connection as a retryable failure, so
// cutting sessions is safe and keeps shutdown prompt for signal handlers.
// Serve returns nil after a ctx-driven shutdown.
func Serve(ctx context.Context, ln net.Listener, h Handler) error {
	var (
		mu    sync.Mutex
		conns = map[*Conn]struct{}{}
	)
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-sctx.Done():
		case <-stop:
		}
		ln.Close()
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
	}()

	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if sctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		c := NewConn(nc)
		mu.Lock()
		conns[c] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveConn(sctx, c, h)
			mu.Lock()
			delete(conns, c)
			mu.Unlock()
			c.Close()
		}()
	}
}

// handshakeTimeout bounds how long a fresh connection may sit before
// completing its handshake.
const handshakeTimeout = 10 * time.Second

func serveConn(ctx context.Context, c *Conn, h Handler) {
	c.SetDeadline(time.Now().Add(handshakeTimeout))
	typ, payload, err := c.Read()
	if err != nil || typ != TypeHello {
		return
	}
	peer, err := DecodeHello(payload)
	if err != nil {
		c.Write(TypeError, EncodeError(err))
		return
	}
	ack, err := h.Handshake(peer)
	if err != nil {
		c.Write(TypeError, EncodeError(err))
		return
	}
	if err := c.Write(TypeHelloAck, ack.Encode()); err != nil {
		return
	}
	c.SetDeadline(time.Time{})

	for {
		typ, payload, err := c.Read()
		if err != nil {
			return // EOF between requests is the normal session end
		}
		rtyp, reply := dispatch(ctx, h, typ, payload)
		if err := c.Write(rtyp, reply); err != nil {
			return
		}
	}
}

// dispatch runs one request and encodes its reply frame.
func dispatch(ctx context.Context, h Handler, typ byte, payload []byte) (byte, []byte) {
	fail := func(err error) (byte, []byte) { return TypeError, EncodeError(err) }
	switch typ {
	case TypeInfer:
		req, err := DecodeShardRequest(payload)
		if err != nil {
			return fail(err)
		}
		rctx, cancel := withDeadline(ctx, req.DeadlineMillis)
		res, err := h.Infer(rctx, req)
		cancel()
		if err != nil {
			return fail(mapCancel(err))
		}
		return TypeInferReply, res.Encode()
	case TypeUpdate:
		req, err := DecodeUpdateRequest(payload)
		if err != nil {
			return fail(err)
		}
		rctx, cancel := withDeadline(ctx, req.DeadlineMillis)
		ack, err := h.Update(rctx, req)
		cancel()
		if err != nil {
			return fail(mapCancel(err))
		}
		return TypeUpdateAck, ack.Encode()
	case TypePing:
		return TypePong, h.Stats().Encode()
	default:
		return fail(fmt.Errorf("%w: unexpected frame type %d", ErrBadPayload, typ))
	}
}

func withDeadline(ctx context.Context, millis uint32) (context.Context, context.CancelFunc) {
	if millis == 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, time.Duration(millis)*time.Millisecond)
}

// mapCancel folds context cancellation into the wire-typed cancel error so
// the client can tell "worker gave up under its deadline" from "worker
// broke".
func mapCancel(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %v", ErrRemoteCanceled, err)
	}
	return err
}

// ---- client side of one session ----

// Dial connects, performs the handshake with our identity, and validates
// the worker's ack against it. The returned error distinguishes transient
// dial/IO failures (retryable by the pool) from identity mismatches
// (permanent for this worker).
func Dial(ctx context.Context, addr string, us Hello) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewConn(nc)
	if dl, ok := ctx.Deadline(); ok {
		c.SetDeadline(dl)
	} else {
		c.SetDeadline(time.Now().Add(handshakeTimeout))
	}
	if err := c.Write(TypeHello, us.Encode()); err != nil {
		c.Close()
		return nil, err
	}
	typ, payload, err := c.Read()
	if err != nil {
		c.Close()
		return nil, err
	}
	if typ == TypeError {
		c.Close()
		return nil, DecodeRemoteError(payload)
	}
	if typ != TypeHelloAck {
		c.Close()
		return nil, fmt.Errorf("%w: unexpected frame type %d in handshake", ErrBadPayload, typ)
	}
	ack, err := DecodeHello(payload)
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := us.Check(ack); err != nil {
		c.Close()
		return nil, err
	}
	c.SetDeadline(time.Time{})
	return c, nil
}

// Roundtrip sends one request frame and reads its reply, translating
// TypeError frames into their typed errors. A wantType mismatch or any
// I/O failure poisons the connection (the caller must discard it).
func (c *Conn) Roundtrip(ctx context.Context, typ byte, payload []byte, wantType byte) ([]byte, error) {
	if dl, ok := ctx.Deadline(); ok {
		c.SetDeadline(dl)
		defer c.SetDeadline(time.Time{})
	}
	if err := c.Write(typ, payload); err != nil {
		return nil, err
	}
	rtyp, reply, err := c.Read()
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = fmt.Errorf("%w: connection closed awaiting reply", ErrTruncated)
		}
		return nil, err
	}
	if rtyp == TypeError {
		return nil, DecodeRemoteError(reply)
	}
	if rtyp != wantType {
		return nil, fmt.Errorf("%w: unexpected frame type %d (want %d)", ErrBadPayload, rtyp, wantType)
	}
	return reply, nil
}
