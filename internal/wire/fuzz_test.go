package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzFrame holds the protocol's core robustness line: arbitrary bytes fed
// to the frame reader and every message decoder must never panic and never
// return anything but a typed error. Seed corpus covers valid frames of
// each message type plus classic corruptions.
func FuzzFrame(f *testing.F) {
	seed := func(typ byte, payload []byte) {
		frame, err := AppendFrame(nil, typ, payload)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	seed(TypeHello, Hello{Version: Version, ProgFP: 1, EvFP: 2, CfgFP: 3, Epoch: 4}.Encode())
	seed(TypeInfer, ShardRequest{Epoch: 1, NumAtoms: 10, NumComps: 3, Seed: 7, MaxFlips: 100, Indices: []uint32{0, 2}}.Encode())
	seed(TypeInferReply, ShardResult{Epoch: 1, Comps: []ShardComp{{Index: 0, Cost: 1, Flips: 3, State: []bool{false, true, false}}}}.Encode())
	seed(TypeInferReply, ShardResult{Epoch: 1, Marginal: true, Comps: []ShardComp{{Index: 0, Probs: []float64{0, 0.5}}}}.Encode())
	seed(TypeUpdate, UpdateRequest{DeadlineMillis: 10, Delta: []byte{9, 9}}.Encode())
	seed(TypeUpdateAck, UpdateAck{Epoch: 2, Identical: true, UpdatesApplied: 3}.Encode())
	seed(TypePong, StatsReply{Epoch: 1, InFlight: 2, Served: 3}.Encode())
	seed(TypeError, EncodeError(&EpochMismatchError{Have: 1, Want: 2}))
	seed(TypeError, EncodeError(&PlanMismatchError{Detail: "x"}))
	f.Add([]byte{})
	f.Add([]byte{0x54})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// Declared length far beyond the actual bytes.
	f.Add([]byte{0x54, 0xF1, 3, 0, 0xFF, 0xFF, 0xFF, 0x00, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := ReadFrame(r)
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, ErrBadMagic) ||
					errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrChecksum) ||
					errors.Is(err, ErrTruncated) {
					return
				}
				t.Fatalf("untyped frame error: %v", err)
			}
			// A structurally valid frame: its payload must decode cleanly or
			// with the typed payload error, for every decoder.
			check := func(e error) {
				if e != nil && !errors.Is(e, ErrBadPayload) {
					t.Fatalf("untyped payload error for type %d: %v", typ, e)
				}
			}
			_, e := DecodeHello(payload)
			check(e)
			_, e = DecodeShardRequest(payload)
			check(e)
			_, e = DecodeShardResult(payload)
			check(e)
			_, e = DecodeUpdateRequest(payload)
			check(e)
			_, e = DecodeUpdateAck(payload)
			check(e)
			_, e = DecodeStatsReply(payload)
			check(e)
			if err := DecodeRemoteError(payload); err == nil {
				t.Fatal("DecodeRemoteError returned nil")
			}
		}
	})
}
