package wire

import (
	"errors"
	"fmt"
)

// Hello is the handshake message both sides exchange before any request:
// the client sends its identity, the worker validates it against its own
// and answers with the same structure (TypeHelloAck). The fingerprints pin
// the inputs the grounded state is a pure function of: a worker that was
// started from a different program, base evidence or sharding-relevant
// config must never serve shards of this coordinator's queries.
type Hello struct {
	Version uint16
	// ProgFP / EvFP fingerprint the MLN program (plus grounder config) and
	// the base evidence, exactly as the durability layer fingerprints a
	// DataDir.
	ProgFP uint64
	EvFP   uint64
	// CfgFP fingerprints the config knobs that shape the component
	// decomposition and per-component option derivation (memory budget,
	// memo enablement) — the ones bit-identical sharding depends on beyond
	// the program itself.
	CfgFP uint64
	// Epoch is the sender's current engine generation, informational: epoch
	// agreement is enforced per request, not per connection.
	Epoch uint64
}

// Encode serializes the handshake.
func (h Hello) Encode() []byte {
	var e enc
	e.u16(h.Version)
	e.u64(h.ProgFP)
	e.u64(h.EvFP)
	e.u64(h.CfgFP)
	e.u64(h.Epoch)
	return e.b
}

// DecodeHello parses a handshake payload.
func DecodeHello(payload []byte) (Hello, error) {
	d := dec{b: payload}
	h := Hello{
		Version: d.u16(),
		ProgFP:  d.u64(),
		EvFP:    d.u64(),
		CfgFP:   d.u64(),
		Epoch:   d.u64(),
	}
	return h, d.finish()
}

// Check validates a peer's handshake against this side's identity,
// returning the typed mismatch error the session is rejected with.
func (h Hello) Check(peer Hello) error {
	if peer.Version != h.Version {
		return fmt.Errorf("%w: local %d, peer %d", ErrVersionMismatch, h.Version, peer.Version)
	}
	if peer.ProgFP != h.ProgFP || peer.EvFP != h.EvFP || peer.CfgFP != h.CfgFP {
		return fmt.Errorf("%w: local prog=%016x ev=%016x cfg=%016x, peer prog=%016x ev=%016x cfg=%016x",
			ErrIdentityMismatch, h.ProgFP, h.EvFP, h.CfgFP, peer.ProgFP, peer.EvFP, peer.CfgFP)
	}
	return nil
}

// ShardRequest asks a worker to run a group of independent components of
// one query — the unit the coordinator's sharder dispatches. The worker
// reconstructs the identical component decomposition from its own grounded
// epoch, so the request carries only the canonical per-query options, the
// epoch the answer must be computed on, and the component indices; the
// guard fields let the worker prove the decompositions agree before it
// runs anything.
type ShardRequest struct {
	// Marginal selects MC-SAT marginal sampling over the component list;
	// false runs MAP WalkSAT over the partition parts.
	Marginal bool
	// Epoch the shard must execute on; a worker on any other generation
	// answers with EpochMismatchError instead of a result.
	Epoch uint64
	// NumAtoms / NumComps guard the decomposition: the parent network's
	// atom count and the canonical component count the coordinator sharded
	// over. A disagreeing worker answers with PlanMismatchError.
	NumAtoms uint32
	NumComps uint32
	// Canonical query options (the same canonical form the result cache
	// keys): seed and budgets. Parallelism is absent by design — results
	// are identical for every worker count, locally and remotely.
	Seed     int64
	MaxFlips int64
	MaxTries uint32
	Samples  uint32
	// DeadlineMillis propagates the remaining per-query deadline (0 =
	// none); the worker enforces it with its own timer so a query never
	// outlives its budget just because it ran remotely.
	DeadlineMillis uint32
	// Indices are the canonical component indices to run, ascending.
	Indices []uint32
}

// Encode serializes the request.
func (r ShardRequest) Encode() []byte {
	var e enc
	e.bool(r.Marginal)
	e.u64(r.Epoch)
	e.u32(r.NumAtoms)
	e.u32(r.NumComps)
	e.i64(r.Seed)
	e.i64(r.MaxFlips)
	e.u32(r.MaxTries)
	e.u32(r.Samples)
	e.u32(r.DeadlineMillis)
	e.u32(uint32(len(r.Indices)))
	for _, idx := range r.Indices {
		e.u32(idx)
	}
	return e.b
}

// DecodeShardRequest parses a shard request.
func DecodeShardRequest(payload []byte) (ShardRequest, error) {
	d := dec{b: payload}
	r := ShardRequest{
		Marginal:       d.bool(),
		Epoch:          d.u64(),
		NumAtoms:       d.u32(),
		NumComps:       d.u32(),
		Seed:           d.i64(),
		MaxFlips:       d.i64(),
		MaxTries:       d.u32(),
		Samples:        d.u32(),
		DeadlineMillis: d.u32(),
	}
	n := int(d.u32())
	if d.err == nil && d.off+4*n > len(d.b) {
		d.fail("index list of %d entries overruns payload", n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		r.Indices = append(r.Indices, d.u32())
	}
	return r, d.finish()
}

// ShardComp is one component's finished outcome inside a ShardResult.
// MAP shards carry Cost/Flips/State; marginal shards carry Probs.
type ShardComp struct {
	Index uint32
	Cost  float64
	Flips int64
	// State is the component's best local assignment, 1-based (index 0
	// unused), nil for marginal shards.
	State []bool
	// Probs is the component's local marginal vector, 1-based, nil for MAP
	// shards.
	Probs []float64
}

// ShardResult answers a ShardRequest: the epoch the shard actually ran on
// (always the requested one — mismatches are errors, never results) and
// one entry per requested index, in request order.
type ShardResult struct {
	Epoch    uint64
	Marginal bool
	Comps    []ShardComp
}

// Encode serializes the result.
func (r ShardResult) Encode() []byte {
	var e enc
	e.u64(r.Epoch)
	e.bool(r.Marginal)
	e.u32(uint32(len(r.Comps)))
	for _, c := range r.Comps {
		e.u32(c.Index)
		if r.Marginal {
			e.floats(c.Probs)
		} else {
			e.f64(c.Cost)
			e.i64(c.Flips)
			e.bits(c.State)
		}
	}
	return e.b
}

// DecodeShardResult parses a shard result.
func DecodeShardResult(payload []byte) (ShardResult, error) {
	d := dec{b: payload}
	r := ShardResult{Epoch: d.u64(), Marginal: d.bool()}
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		c := ShardComp{Index: d.u32()}
		if r.Marginal {
			c.Probs = d.floats()
		} else {
			c.Cost = d.f64()
			c.Flips = d.i64()
			c.State = d.bits()
		}
		r.Comps = append(r.Comps, c)
	}
	return r, d.finish()
}

// UpdateRequest fans one evidence delta out to a worker. The delta is the
// mln positional encoding (mln.EncodeDelta) — valid only between peers
// whose handshake proved they serve the same program.
type UpdateRequest struct {
	DeadlineMillis uint32
	Delta          []byte
}

// Encode serializes the request.
func (r UpdateRequest) Encode() []byte {
	var e enc
	e.u32(r.DeadlineMillis)
	e.bytes(r.Delta)
	return e.b
}

// DecodeUpdateRequest parses an update request.
func DecodeUpdateRequest(payload []byte) (UpdateRequest, error) {
	d := dec{b: payload}
	r := UpdateRequest{DeadlineMillis: d.u32(), Delta: d.bytes()}
	return r, d.finish()
}

// UpdateAck acknowledges an applied delta with the worker's resulting
// state, which the coordinator uses to track replica staleness.
type UpdateAck struct {
	Epoch          uint64
	Identical      bool
	UpdatesApplied uint64
}

// Encode serializes the ack.
func (a UpdateAck) Encode() []byte {
	var e enc
	e.u64(a.Epoch)
	e.bool(a.Identical)
	e.u64(a.UpdatesApplied)
	return e.b
}

// DecodeUpdateAck parses an update ack.
func DecodeUpdateAck(payload []byte) (UpdateAck, error) {
	d := dec{b: payload}
	a := UpdateAck{Epoch: d.u64(), Identical: d.bool(), UpdatesApplied: d.u64()}
	return a, d.finish()
}

// StatsReply answers a ping with the worker's live state — the fields the
// coordinator surfaces as per-worker /healthz and /metrics rows.
type StatsReply struct {
	Epoch          uint64
	UpdatesApplied uint64
	InFlight       int64
	Served         int64
}

// Encode serializes the reply.
func (s StatsReply) Encode() []byte {
	var e enc
	e.u64(s.Epoch)
	e.u64(s.UpdatesApplied)
	e.i64(s.InFlight)
	e.i64(s.Served)
	return e.b
}

// DecodeStatsReply parses a ping response.
func DecodeStatsReply(payload []byte) (StatsReply, error) {
	d := dec{b: payload}
	s := StatsReply{
		Epoch:          d.u64(),
		UpdatesApplied: d.u64(),
		InFlight:       d.i64(),
		Served:         d.i64(),
	}
	return s, d.finish()
}

// ---- typed cross-process errors ----

// Error codes carried by TypeError frames. DecodeRemoteError maps them
// back to the typed errors the engine raised on the worker, so errors.Is /
// errors.As work identically across the process boundary.
const (
	codeInternal      = uint16(1)
	codeEpochMismatch = uint16(2)
	codePlanMismatch  = uint16(3)
	codeBadRequest    = uint16(4)
	codeCanceled      = uint16(5)
	codeIdentity      = uint16(6)
	codeVersion       = uint16(7)
)

// EpochMismatchError reports a shard or update that named an epoch the
// worker is not serving — the worker saw an evidence update the
// coordinator's query pre-dates (or vice versa). It is retryable by
// construction: re-admitting the query on the current epoch (or running it
// on the coordinator's own pinned epoch) yields a consistent answer; a
// mixed-epoch merge is never an option.
type EpochMismatchError struct {
	Have uint64 // the worker's current generation
	Want uint64 // the generation the request named
}

func (e *EpochMismatchError) Error() string {
	return fmt.Sprintf("wire: epoch mismatch: worker serves %d, request wants %d", e.Have, e.Want)
}

// PlanMismatchError reports a worker whose component decomposition
// disagrees with the coordinator's shard plan — same fingerprints but
// diverging derived state, which indicates a version or config skew that
// the handshake could not see. It is not retryable on the same worker.
type PlanMismatchError struct {
	Detail string
}

func (e *PlanMismatchError) Error() string {
	return "wire: shard plan mismatch: " + e.Detail
}

// ErrRemoteCanceled reports a shard whose execution was canceled on the
// worker (its deadline expired there, or the worker is shutting down).
var ErrRemoteCanceled = errors.New("wire: remote execution canceled")

// RemoteError carries a worker-side failure that has no more specific
// type.
type RemoteError struct {
	Code   uint16
	Detail string
}

func (e *RemoteError) Error() string {
	return "wire: remote error: " + e.Detail
}

// EncodeError serializes any error as a TypeError payload, preserving the
// typed identity of the mismatch errors.
func EncodeError(err error) []byte {
	var e enc
	var em *EpochMismatchError
	var pm *PlanMismatchError
	switch {
	case errors.As(err, &em):
		e.u16(codeEpochMismatch)
		e.str(err.Error())
		e.u64(em.Have)
		e.u64(em.Want)
	case errors.As(err, &pm):
		e.u16(codePlanMismatch)
		e.str(pm.Detail)
	case errors.Is(err, ErrIdentityMismatch):
		e.u16(codeIdentity)
		e.str(err.Error())
	case errors.Is(err, ErrVersionMismatch):
		e.u16(codeVersion)
		e.str(err.Error())
	case errors.Is(err, ErrBadPayload):
		e.u16(codeBadRequest)
		e.str(err.Error())
	case errors.Is(err, ErrRemoteCanceled):
		e.u16(codeCanceled)
		e.str(err.Error())
	default:
		e.u16(codeInternal)
		e.str(err.Error())
	}
	return e.b
}

// DecodeRemoteError parses a TypeError payload back into the typed error
// it was encoded from. A payload that itself fails to decode reports
// ErrBadPayload.
func DecodeRemoteError(payload []byte) error {
	d := dec{b: payload}
	code := d.u16()
	detail := d.str()
	switch code {
	case codeEpochMismatch:
		have, want := d.u64(), d.u64()
		if err := d.finish(); err != nil {
			return err
		}
		return &EpochMismatchError{Have: have, Want: want}
	case codePlanMismatch:
		if err := d.finish(); err != nil {
			return err
		}
		return &PlanMismatchError{Detail: detail}
	case codeCanceled:
		if err := d.finish(); err != nil {
			return err
		}
		return fmt.Errorf("%w: %s", ErrRemoteCanceled, detail)
	case codeIdentity:
		if err := d.finish(); err != nil {
			return err
		}
		return fmt.Errorf("%w (remote): %s", ErrIdentityMismatch, detail)
	case codeVersion:
		if err := d.finish(); err != nil {
			return err
		}
		return fmt.Errorf("%w (remote): %s", ErrVersionMismatch, detail)
	case codeBadRequest:
		if err := d.finish(); err != nil {
			return err
		}
		return fmt.Errorf("%w (remote): %s", ErrBadPayload, detail)
	default:
		if err := d.finish(); err != nil {
			return err
		}
		return &RemoteError{Code: code, Detail: detail}
	}
}
