package wire

import (
	"fmt"
	"math"
)

// enc is a little-endian payload builder. Messages are flat field
// sequences; no reflection, no framing inside the payload.
type enc struct{ b []byte }

func (e *enc) u8(v byte) { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) {
	e.b = append(e.b, byte(v), byte(v>>8))
}
func (e *enc) u32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *enc) u64(v uint64) {
	e.u32(uint32(v))
	e.u32(uint32(v >> 32))
}
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// bytes writes a length-prefixed byte string.
func (e *enc) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}

func (e *enc) str(v string) { e.bytes([]byte(v)) }

// bits writes a 1-based bool slice (index 0 unused) as a count plus a
// packed bitset — the encoding of a component's best state.
func (e *enc) bits(v []bool) {
	n := 0
	if len(v) > 0 {
		n = len(v) - 1
	}
	e.u32(uint32(n))
	var cur byte
	for i := 1; i <= n; i++ {
		if v[i] {
			cur |= 1 << ((i - 1) % 8)
		}
		if (i-1)%8 == 7 || i == n {
			e.b = append(e.b, cur)
			cur = 0
		}
	}
}

// floats writes a 1-based float64 slice (index 0 unused) — a component's
// marginal vector.
func (e *enc) floats(v []float64) {
	n := 0
	if len(v) > 0 {
		n = len(v) - 1
	}
	e.u32(uint32(n))
	for i := 1; i <= n; i++ {
		e.f64(v[i])
	}
}

// dec is the matching reader. The first failed read latches err; callers
// check it once at the end, so decoders read straight through without
// per-field error plumbing. Every length is validated against the
// remaining payload before allocation.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrBadPayload, fmt.Sprintf(format, args...))
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *dec) u8() byte {
	if v := d.take(1); v != nil {
		return v[0]
	}
	return 0
}

func (d *dec) u16() uint16 {
	if v := d.take(2); v != nil {
		return uint16(v[0]) | uint16(v[1])<<8
	}
	return 0
}

func (d *dec) u32() uint32 {
	if v := d.take(4); v != nil {
		return de32(v)
	}
	return 0
}

func (d *dec) u64() uint64 {
	lo := d.u32()
	hi := d.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) bool() bool   { return d.u8() != 0 }

func (d *dec) bytes() []byte {
	n := int(d.u32())
	v := d.take(n)
	if v == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}

func (d *dec) str() string { return string(d.bytes()) }

func (d *dec) bits() []bool {
	n := int(d.u32())
	packed := d.take((n + 7) / 8)
	if packed == nil && n > 0 {
		return nil
	}
	out := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		out[i] = packed[(i-1)/8]&(1<<((i-1)%8)) != 0
	}
	return out
}

func (d *dec) floats() []float64 {
	n := int(d.u32())
	if d.err != nil || d.off+8*n > len(d.b) {
		d.fail("float vector of %d entries overruns payload", n)
		return nil
	}
	out := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		out[i] = d.f64()
	}
	return out
}

// finish reports the latched error, also rejecting trailing garbage.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(d.b)-d.off)
	}
	return nil
}
