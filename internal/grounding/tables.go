// Package grounding implements both grounding strategies the paper
// compares: Tuffy's bottom-up grounder, which compiles each MLN clause to a
// SQL query over per-predicate relations and lets the RDBMS optimizer
// execute it (Section 3.1, Appendix B.1), and the Alchemy-style top-down
// grounder that enumerates variable bindings with nested loops. Both apply
// the same evidence-pruning rules (Appendix A.3) and produce identical
// MRFs, so Table 2 / Figure 3 comparisons measure strategy, not semantics.
//
// The bottom-up grounder parallelizes with Options.Workers: clauses ground
// concurrently, and a clause whose optimizer-estimated cost dominates the
// workload is further split into hash ranges of a join variable so one
// heavy clause cannot serialize the phase (Options.ClauseLevelOnly is the
// lesion that turns the splitting off). Every schedule merges task outputs
// in clause-then-range order and canonicalizes once per clause, so the MRF
// is bit-identical across worker counts and split decisions. The
// Incremental wrapper reuses the same machinery to re-ground only the
// clauses an evidence delta touches.
package grounding

import (
	"fmt"
	"sort"
	"strings"

	"tuffy/internal/db"
	"tuffy/internal/db/tuple"
	"tuffy/internal/mln"
	"tuffy/internal/mrf"
)

// Truth encoding in predicate tables (column "truth").
const (
	TruthUnknown int64 = 0
	TruthTrue    int64 = 1
	TruthFalse   int64 = 2
)

// TableName returns the relation name for a predicate, e.g. r_cat.
func TableName(p *mln.Predicate) string { return "r_" + strings.ToLower(p.Name) }

// TableSet is the relational encoding of an MLN instance: one table
// R_P(aid, a0..ak-1, truth) per predicate (Section 3.1), plus the atom
// registry mapping aids back to ground atoms.
type TableSet struct {
	DB   *db.DB
	Prog *mln.Program
	Ev   *mln.Evidence

	tables map[*mln.Predicate]*db.Table
	// atoms[aid] describes the ground atom with that id (index 0 unused).
	atoms []mln.GroundAtom
	// truths[aid] is the evidence truth of the atom.
	truths []int64
	// aidOf finds an atom id from (predicate, packed args).
	aidOf map[*mln.Predicate]map[string]int64
}

// predTableSchema builds the schema for a predicate's relation.
func predTableSchema(p *mln.Predicate) tuple.Schema {
	cols := make([]tuple.Column, 0, p.Arity()+2)
	cols = append(cols, tuple.Col("aid", tuple.TInt))
	for i := range p.Args {
		cols = append(cols, tuple.Col(fmt.Sprintf("a%d", i), tuple.TInt))
	}
	cols = append(cols, tuple.Col("truth", tuple.TInt))
	return tuple.Schema{Cols: cols}
}

// BuildTables bulk-loads the predicate relations into d:
//
//   - closed-world predicates hold their evidence tuples only (absent rows
//     are false under the CWA);
//   - open predicates hold every type-consistent grounding (the candidate
//     query atoms), with evidence truth where known, unknown otherwise.
//
// Atom ids are assigned densely in insertion order, giving the aids the
// ground-clause table refers to.
func BuildTables(d *db.DB, prog *mln.Program, ev *mln.Evidence) (*TableSet, error) {
	ts := &TableSet{
		DB:     d,
		Prog:   prog,
		Ev:     ev,
		tables: make(map[*mln.Predicate]*db.Table),
		aidOf:  make(map[*mln.Predicate]map[string]int64),
		atoms:  make([]mln.GroundAtom, 1), // index 0 unused
		truths: make([]int64, 1),
	}
	// A failure partway leaves half-built predicate tables; drop whatever
	// was created so the caller can retry the build against a clean
	// catalog instead of latching the engine unusable.
	fail := func(err error) (*TableSet, error) {
		ts.Drop()
		return nil, err
	}
	for _, pred := range prog.Preds {
		t, err := d.CreateTable(TableName(pred), predTableSchema(pred))
		if err != nil {
			return fail(err)
		}
		ts.tables[pred] = t
		ts.aidOf[pred] = make(map[string]int64)
		if pred.Closed {
			if err := ts.loadClosed(pred, t); err != nil {
				return fail(err)
			}
		} else {
			if err := ts.loadOpen(pred, t); err != nil {
				return fail(err)
			}
		}
	}
	// Index the argument columns that clause literals bind to constants
	// (e.g. cat(p, "net")): the compiled grounding queries filter on them
	// with equality, and the optimizer's access-path choice (plan.IndexMeta)
	// can then take a hash-index point lookup over a full scan when the
	// cost model says it wins.
	constCols := make(map[*mln.Predicate]map[int]bool)
	for _, c := range prog.Clauses {
		for _, l := range c.Lits {
			if l.IsBuiltinEq() {
				continue
			}
			for i, a := range l.Args {
				if a.IsVar {
					continue
				}
				if constCols[l.Pred] == nil {
					constCols[l.Pred] = make(map[int]bool)
				}
				constCols[l.Pred][i] = true
			}
		}
	}
	for pred, cols := range constCols {
		t := ts.tables[pred]
		if t == nil {
			continue
		}
		for argIdx := range cols {
			if _, err := t.BuildHashIndex([]int{argIdx + 1}); err != nil {
				return fail(err)
			}
		}
	}
	// Checkpoint the load: grounding only reads, so flushing here turns
	// buffer-pool evictions during (possibly parallel) grounding into clean
	// page drops instead of write-backs held under the pool lock.
	if err := d.Pool().FlushAll(); err != nil {
		return fail(err)
	}
	return ts, nil
}

// Drop removes every predicate table of the set from the catalog,
// returning their pages to the engine's free lists. It is how a failed or
// canceled grounding phase tears itself down so the Engine can be
// re-Grounded in place. The TableSet must not be used afterwards.
func (ts *TableSet) Drop() {
	for pred, t := range ts.tables {
		_ = ts.DB.DropTable(t.Name())
		delete(ts.tables, pred)
	}
}

// loadChunk is how many staged rows trigger a bulk insert during table
// loading, bounding transient memory while keeping page-batched writes.
const loadChunk = 65536

func (ts *TableSet) loadClosed(pred *mln.Predicate, t *db.Table) error {
	// Batch loading (paper §3.2): rows are staged and bulk-inserted in
	// chunks instead of one page round-trip per evidence tuple.
	var rows []tuple.Row
	var loadErr error
	ts.Ev.ForEach(pred, func(args []int32, truth mln.Truth) {
		if loadErr != nil || truth != mln.True {
			// Explicit negative evidence on a closed predicate is redundant
			// under the CWA; skip the row.
			return
		}
		rows = append(rows, ts.stageAtom(pred, args, TruthTrue))
		if len(rows) >= loadChunk {
			loadErr = t.InsertMany(rows)
			rows = rows[:0]
		}
	})
	if loadErr != nil {
		return loadErr
	}
	return t.InsertMany(rows)
}

func (ts *TableSet) loadOpen(pred *mln.Predicate, t *db.Table) error {
	domains := make([][]int32, pred.Arity())
	total := 1
	for i, typ := range pred.Args {
		domains[i] = ts.Prog.Domain(typ).Sorted()
		total *= len(domains[i])
		if total > 50_000_000 {
			return fmt.Errorf("grounding: open predicate %s would materialize >5e7 atoms; close it or shrink domains", pred.Name)
		}
	}
	if total == 0 {
		return nil // some domain empty: no atoms
	}
	rows := make([]tuple.Row, 0, min(total, loadChunk))
	args := make([]int32, pred.Arity())
	var rec func(pos int) error
	rec = func(pos int) error {
		if pos == len(domains) {
			truth := TruthUnknown
			switch ts.Ev.TruthOf(pred, args) {
			case mln.True:
				truth = TruthTrue
			case mln.False:
				truth = TruthFalse
			}
			cp := make([]int32, len(args))
			copy(cp, args)
			rows = append(rows, ts.stageAtom(pred, cp, truth))
			if len(rows) >= loadChunk {
				err := t.InsertMany(rows)
				rows = rows[:0]
				return err
			}
			return nil
		}
		for _, c := range domains[pos] {
			args[pos] = c
			if err := rec(pos + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return err
	}
	return t.InsertMany(rows)
}

// stageAtom assigns the next dense aid, records the atom in the registry and
// returns its table row for batch insertion. args must not be reused by the
// caller.
func (ts *TableSet) stageAtom(pred *mln.Predicate, args []int32, truth int64) tuple.Row {
	aid := int64(len(ts.atoms))
	row := make(tuple.Row, 0, pred.Arity()+2)
	row = append(row, tuple.I64(aid))
	for _, a := range args {
		row = append(row, tuple.I64(int64(a)))
	}
	row = append(row, tuple.I64(truth))
	ts.atoms = append(ts.atoms, mln.GroundAtom{Pred: pred, Args: args})
	ts.truths = append(ts.truths, truth)
	ts.aidOf[pred][mln.GroundAtom{Pred: pred, Args: args}.Key()] = aid
	return row
}

// NumAtoms returns the number of materialized atoms (all predicates).
func (ts *TableSet) NumAtoms() int { return len(ts.atoms) - 1 }

// Atom returns the ground atom for an aid.
func (ts *TableSet) Atom(aid int64) mln.GroundAtom { return ts.atoms[aid] }

// TruthOf returns the evidence truth recorded for an aid.
func (ts *TableSet) TruthOf(aid int64) int64 { return ts.truths[aid] }

// AidOf finds the atom id of a ground atom, if materialized.
func (ts *TableSet) AidOf(pred *mln.Predicate, args []int32) (int64, bool) {
	aid, ok := ts.aidOf[pred][mln.GroundAtom{Pred: pred, Args: args}.Key()]
	return aid, ok
}

// Table returns the relation backing a predicate.
func (ts *TableSet) Table(pred *mln.Predicate) *db.Table { return ts.tables[pred] }

// Result is the output of grounding: the in-memory MRF (atoms renumbered
// densely 1..N over the atoms that appear in some ground clause), the
// mapping from MRF atom ids to table aids, and statistics.
type Result struct {
	MRF *mrf.MRF
	// TableAid maps MRF atom id -> predicate-table aid (index 0 unused).
	TableAid []int64
	// AtomID finds the MRF atom for a table aid (0 when the atom appears in
	// no ground clause).
	AtomID map[int64]mrf.AtomID
	Stats  Stats
}

// Stats describes grounding effort and output size.
type Stats struct {
	NumAtoms        int   // materialized candidate atoms
	NumUsedAtoms    int   // atoms appearing in ground clauses
	NumGroundedRaw  int   // ground clauses before dedup/closure
	NumClauses      int   // final ground clauses
	FixedCostCount  int   // clauses fully decided by evidence
	JoinRowsVisited int64 // tuples the grounding queries touched (effort proxy)
	PeakBytes       int64 // peak transient memory the grounder held (account)
}

// clauseAccumulator dedups ground clauses by canonical literal set, summing
// weights of duplicates (standard MLN semantics), and assigns dense MRF atom
// ids on first use.
type clauseAccumulator struct {
	ts       *TableSet
	atomID   map[int64]mrf.AtomID
	tableAid []int64
	clauses  map[string]*mrf.Clause
	order    []string
	fixed    float64
	fixedN   int
	raw      int
}

func newClauseAccumulator(ts *TableSet) *clauseAccumulator {
	return &clauseAccumulator{
		ts:       ts,
		atomID:   make(map[int64]mrf.AtomID),
		tableAid: []int64{0},
		clauses:  make(map[string]*mrf.Clause),
	}
}

func (ca *clauseAccumulator) mrfAtom(aid int64) mrf.AtomID {
	if id, ok := ca.atomID[aid]; ok {
		return id
	}
	id := mrf.AtomID(len(ca.tableAid))
	ca.atomID[aid] = id
	ca.tableAid = append(ca.tableAid, aid)
	return id
}

// add registers a ground clause given as (aid, positive) literal pairs.
// Empty lits means the clause is already decided by evidence: a positive
// weight contributes |w| of fixed cost, a negative weight contributes
// nothing. Duplicate clauses have their weights summed.
func (ca *clauseAccumulator) add(weight float64, aids []int64, pos []bool) {
	ca.raw++
	if len(aids) == 0 {
		if weight > 0 {
			ca.fixed += weight
			ca.fixedN++
		}
		return
	}
	lits := make([]mrf.Lit, len(aids))
	for i, aid := range aids {
		l := ca.mrfAtom(aid)
		if !pos[i] {
			l = -l
		}
		lits[i] = l
	}
	sortLits(lits)
	// Drop duplicate literals; a clause with both l and !l is a tautology.
	lits = dedupLits(lits)
	if lits == nil {
		return // tautology: satisfied in every world
	}
	key := litsKey(lits)
	if c, ok := ca.clauses[key]; ok {
		c.Weight += weight
		return
	}
	ca.clauses[key] = &mrf.Clause{Weight: weight, Lits: lits}
	ca.order = append(ca.order, key)
}

func sortLits(lits []mrf.Lit) {
	for i := 1; i < len(lits); i++ {
		for j := i; j > 0 && litLess(lits[j], lits[j-1]); j-- {
			lits[j], lits[j-1] = lits[j-1], lits[j]
		}
	}
}

func litLess(a, b mrf.Lit) bool {
	aa, ab := mrf.Atom(a), mrf.Atom(b)
	if aa != ab {
		return aa < ab
	}
	return a < b
}

// dedupLits removes duplicates; returns nil for tautologies (l and !l).
func dedupLits(lits []mrf.Lit) []mrf.Lit {
	out := lits[:0]
	for i, l := range lits {
		if i > 0 && l == lits[i-1] {
			continue
		}
		if i > 0 && mrf.Atom(l) == mrf.Atom(lits[i-1]) && l != lits[i-1] {
			return nil // x v !x
		}
		out = append(out, l)
	}
	return out
}

func litsKey(lits []mrf.Lit) string {
	var b strings.Builder
	b.Grow(len(lits) * 5)
	for _, l := range lits {
		v := uint32(l)
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
	}
	return b.String()
}

// finish builds the Result in descriptor-canonical form: atom ids are
// assigned by sorting atoms on their aid-independent descriptors (predicate
// id, argument constants — see canon.go) and clauses are sorted by their
// renumbered literal sequences. The output is therefore a pure function of
// the logical ground clauses, independent of aid numbering, raw order and
// accumulation order — which is what lets the incremental assembler
// (assemble.go) maintain the same Result under small raw diffs and stay
// bit-identical to a full re-ground. Clauses whose summed weight cancelled
// to zero are dropped.
func (ca *clauseAccumulator) finish(stats Stats) *Result {
	n := len(ca.tableAid) - 1
	descs := make([]string, n+1)
	for i := 1; i <= n; i++ {
		descs[i] = atomDescKey(ca.ts, ca.tableAid[i])
	}
	order := make([]mrf.AtomID, n)
	for i := range order {
		order[i] = mrf.AtomID(i + 1)
	}
	sort.Slice(order, func(x, y int) bool { return descs[order[x]] < descs[order[y]] })
	remap := make([]mrf.AtomID, n+1)
	tableAid := make([]int64, n+1)
	atomID := make(map[int64]mrf.AtomID, n)
	for idx, old := range order {
		id := mrf.AtomID(idx + 1)
		remap[old] = id
		tableAid[id] = ca.tableAid[old]
		atomID[ca.tableAid[old]] = id
	}

	m := mrf.New(n)
	m.FixedCost = ca.fixed
	m.Atoms = make([]mln.GroundAtom, n+1)
	for i := 1; i <= n; i++ {
		m.Atoms[i] = ca.ts.Atom(tableAid[i])
	}
	clauses := make([]mrf.Clause, 0, len(ca.order))
	for _, key := range ca.order {
		c := ca.clauses[key]
		if c.Weight == 0 {
			continue
		}
		lits := make([]mrf.Lit, len(c.Lits))
		for j, l := range c.Lits {
			id := remap[mrf.Atom(l)]
			if !mrf.Pos(l) {
				id = -id
			}
			lits[j] = id
		}
		sortLits(lits)
		clauses = append(clauses, mrf.Clause{Weight: c.Weight, Lits: lits})
	}
	sort.Slice(clauses, func(x, y int) bool { return litsLess(clauses[x].Lits, clauses[y].Lits) })
	m.Clauses = clauses
	stats.NumAtoms = ca.ts.NumAtoms()
	stats.NumUsedAtoms = n
	stats.NumGroundedRaw = ca.raw
	stats.NumClauses = len(m.Clauses)
	stats.FixedCostCount = ca.fixedN
	return &Result{MRF: m, TableAid: tableAid, AtomID: atomID, Stats: stats}
}

// litsLess orders two canonical literal sequences element-wise by
// (atom id, sign), shorter-prefix first. Because canonical atom ids are
// themselves descriptor-sorted, this order — and with it the whole clause
// list — is independent of aid numbering.
func litsLess(a, b []mrf.Lit) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return litLess(a[i], b[i])
		}
	}
	return len(a) < len(b)
}
