package grounding

import (
	"sort"

	"tuffy/internal/mln"
	"tuffy/internal/mrf"
)

// Incremental assembly of the grounded MRF.
//
// assembleResult re-folds every cached raw grounding on each call — O(total
// raws) even when a Reground changed a handful of them. Because finish()
// emits the descriptor-canonical form (atoms sorted by aid-independent
// descriptor, clauses sorted by renumbered literal sequence, duplicate
// clauses weight-summed in first-order-clause order), the assembled Result
// is a pure function of the multiset of raw groundings. incAssembler
// maintains exactly that function under raw-level diffs: per-clause-key
// contribution counts, per-atom occurrence counts, and the two sorted
// orders, so one update costs O(diff) bookkeeping plus an O(output) array
// rebuild — no maps on the hot path — while staying bit-identical to a
// fresh finish() over the same raws.
//
// Weight exactness: all raws of one first-order clause carry the same
// weight, and finish() sums duplicate ground clauses in first-order-clause
// order. recalc reproduces that exact floating-point order from the counts,
// so maintained weights equal freshly accumulated ones bit for bit (and
// likewise the evidence-decided fixed cost).

// accEntry is one canonical ground clause with its contribution counts.
type accEntry struct {
	key    string  // concatenated literal descriptors: identity and sort key
	aids   []int64 // canonical literals (descriptor order, deduplicated)
	pos    []bool
	counts []int32 // contributing raws per first-order clause index
	total  int32
	weight float64
	lits   []mrf.Lit // translation under the current atom numbering
}

type incAssembler struct {
	ts   *TableSet
	wPer []float64 // raw weight observed per first-order clause

	fixedCounts []int32 // positive evidence-decided raws per clause
	fixedN      int
	raw         int // total raws (NumGroundedRaw)

	atomCount  map[int64]int32
	descOf     map[int64]string // atom descriptor cache
	atomKeys   []string         // sorted atom descriptors
	atomAids   []int64          // aids aligned with atomKeys
	atomsDirty bool

	entries map[string]*accEntry
	keys    []string // sorted entry keys
	live    bool     // sorted orders maintained eagerly (post-build)

	// Epoch-shared caches, replaced (never mutated) when the atom set
	// changes so previously returned Results stay frozen.
	aidToID  map[int64]mrf.AtomID
	tableAid []int64
	atoms    []mln.GroundAtom
}

func newIncAssembler(ts *TableSet, nClauses int) *incAssembler {
	return &incAssembler{
		ts:          ts,
		wPer:        make([]float64, nClauses),
		fixedCounts: make([]int32, nClauses),
		atomCount:   make(map[int64]int32),
		descOf:      make(map[int64]string),
		entries:     make(map[string]*accEntry),
	}
}

func (a *incAssembler) desc(aid int64) string {
	if d, ok := a.descOf[aid]; ok {
		return d
	}
	d := atomDescKey(a.ts, aid)
	a.descOf[aid] = d
	return d
}

// build ingests every cached raw grounding, then establishes the sorted
// orders. Used once at NewIncremental; later diffs go through apply.
func (a *incAssembler) build(perClause [][]rawClause) {
	for i, raws := range perClause {
		for _, r := range raws {
			a.addRaw(i, r, nil)
		}
	}
	a.atomKeys = make([]string, 0, len(a.atomCount))
	for aid := range a.atomCount {
		a.atomKeys = append(a.atomKeys, a.desc(aid))
	}
	sort.Strings(a.atomKeys)
	a.atomAids = make([]int64, len(a.atomKeys))
	byDesc := make(map[string]int64, len(a.atomCount))
	for aid := range a.atomCount {
		byDesc[a.desc(aid)] = aid
	}
	for i, k := range a.atomKeys {
		a.atomAids[i] = byDesc[k]
	}
	a.keys = make([]string, 0, len(a.entries))
	for k := range a.entries {
		a.keys = append(a.keys, k)
	}
	sort.Strings(a.keys)
	for _, e := range a.entries {
		a.recalc(e)
	}
	a.atomsDirty = true
	a.live = true
}

// apply folds one clause's raw-level diff into the maintained state.
func (a *incAssembler) apply(clauseIdx int, added, removed []rawClause) {
	dirty := make(map[string]*accEntry)
	for _, r := range removed {
		a.removeRaw(clauseIdx, r, dirty)
	}
	for _, r := range added {
		a.addRaw(clauseIdx, r, dirty)
	}
	for _, e := range dirty {
		a.recalc(e)
	}
}

// canonLits sorts one raw's literals into descriptor order and
// deduplicates, mirroring sortLits+dedupLits. ok=false means tautology.
func (a *incAssembler) canonLits(r rawClause) (aids []int64, pos []bool, key string, ok bool) {
	n := len(r.aids)
	litKeys := make([]string, n)
	aids = append([]int64(nil), r.aids...)
	pos = append([]bool(nil), r.pos...)
	for i := range aids {
		s := byte(0)
		if pos[i] {
			s = 1
		}
		litKeys[i] = a.desc(aids[i]) + string([]byte{s})
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && litKeys[j] < litKeys[j-1]; j-- {
			litKeys[j], litKeys[j-1] = litKeys[j-1], litKeys[j]
			aids[j], aids[j-1] = aids[j-1], aids[j]
			pos[j], pos[j-1] = pos[j-1], pos[j]
		}
	}
	w := 0
	for i := 0; i < n; i++ {
		if w > 0 && aids[i] == aids[w-1] {
			if pos[i] == pos[w-1] {
				continue // duplicate literal
			}
			return nil, nil, "", false // x v !x: tautology
		}
		aids[w], pos[w], litKeys[w] = aids[i], pos[i], litKeys[i]
		w++
	}
	aids, pos, litKeys = aids[:w], pos[:w], litKeys[:w]
	total := 0
	for _, k := range litKeys {
		total += len(k)
	}
	b := make([]byte, 0, total)
	for _, k := range litKeys {
		b = append(b, k...)
	}
	return aids, pos, string(b), true
}

func (a *incAssembler) addRaw(clauseIdx int, r rawClause, dirty map[string]*accEntry) {
	a.raw++
	a.wPer[clauseIdx] = r.weight
	if len(r.aids) == 0 {
		if r.weight > 0 {
			a.fixedCounts[clauseIdx]++
			a.fixedN++
		}
		return
	}
	for _, aid := range r.aids {
		a.atomCount[aid]++
		if a.atomCount[aid] == 1 && a.live {
			a.insertAtom(aid)
		}
	}
	aids, pos, key, ok := a.canonLits(r)
	if !ok {
		return
	}
	e := a.entries[key]
	if e == nil {
		e = &accEntry{key: key, aids: aids, pos: pos, counts: make([]int32, len(a.wPer))}
		a.entries[key] = e
		if a.live {
			i := sort.SearchStrings(a.keys, key)
			a.keys = append(a.keys, "")
			copy(a.keys[i+1:], a.keys[i:])
			a.keys[i] = key
			if !a.atomsDirty {
				e.lits = a.translate(e)
			}
		}
	}
	e.counts[clauseIdx]++
	e.total++
	if dirty != nil {
		dirty[key] = e
	}
}

func (a *incAssembler) removeRaw(clauseIdx int, r rawClause, dirty map[string]*accEntry) {
	a.raw--
	if len(r.aids) == 0 {
		if r.weight > 0 {
			a.fixedCounts[clauseIdx]--
			a.fixedN--
		}
		return
	}
	for _, aid := range r.aids {
		a.atomCount[aid]--
		if a.atomCount[aid] == 0 {
			delete(a.atomCount, aid)
			a.removeAtom(aid)
		}
	}
	aids, _, key, ok := a.canonLits(r)
	_ = aids
	if !ok {
		return
	}
	e := a.entries[key]
	e.counts[clauseIdx]--
	e.total--
	if e.total == 0 {
		delete(a.entries, key)
		delete(dirty, key)
		i := sort.SearchStrings(a.keys, key)
		a.keys = append(a.keys[:i], a.keys[i+1:]...)
		return
	}
	dirty[key] = e
}

func (a *incAssembler) insertAtom(aid int64) {
	k := a.desc(aid)
	i := sort.SearchStrings(a.atomKeys, k)
	a.atomKeys = append(a.atomKeys, "")
	copy(a.atomKeys[i+1:], a.atomKeys[i:])
	a.atomKeys[i] = k
	a.atomAids = append(a.atomAids, 0)
	copy(a.atomAids[i+1:], a.atomAids[i:])
	a.atomAids[i] = aid
	a.atomsDirty = true
}

func (a *incAssembler) removeAtom(aid int64) {
	k := a.desc(aid)
	i := sort.SearchStrings(a.atomKeys, k)
	a.atomKeys = append(a.atomKeys[:i], a.atomKeys[i+1:]...)
	a.atomAids = append(a.atomAids[:i], a.atomAids[i+1:]...)
	a.atomsDirty = true
}

// recalc recomputes the entry's weight in the exact floating-point order a
// fresh accumulation would use: contributions grouped by ascending
// first-order clause index, one add per raw.
func (a *incAssembler) recalc(e *accEntry) {
	w := 0.0
	for i, c := range e.counts {
		for k := int32(0); k < c; k++ {
			w += a.wPer[i]
		}
	}
	e.weight = w
}

// translate renders an entry's literals under the current atom numbering.
// Descriptor order equals id order, so no re-sort is needed. Always
// allocates: previously returned Results share the old slices.
func (a *incAssembler) translate(e *accEntry) []mrf.Lit {
	lits := make([]mrf.Lit, len(e.aids))
	for i, aid := range e.aids {
		id := a.aidToID[aid]
		if !e.pos[i] {
			id = -id
		}
		lits[i] = id
	}
	return lits
}

// result materializes the canonical Result. Atom-numbering caches are
// rebuilt (replaced, not mutated) only when the atom set changed.
func (a *incAssembler) result(perStats []Stats) *Result {
	if a.atomsDirty {
		n := len(a.atomAids)
		aidToID := make(map[int64]mrf.AtomID, n)
		tableAid := make([]int64, n+1)
		atoms := make([]mln.GroundAtom, n+1)
		for i, aid := range a.atomAids {
			id := mrf.AtomID(i + 1)
			aidToID[aid] = id
			tableAid[id] = aid
			atoms[id] = a.ts.Atom(aid)
		}
		a.aidToID, a.tableAid, a.atoms = aidToID, tableAid, atoms
		for _, e := range a.entries {
			e.lits = a.translate(e)
		}
		a.atomsDirty = false
	}
	m := mrf.New(len(a.atomAids))
	m.Atoms = a.atoms
	fixed := 0.0
	for i, c := range a.fixedCounts {
		for k := int32(0); k < c; k++ {
			fixed += a.wPer[i]
		}
	}
	m.FixedCost = fixed
	clauses := make([]mrf.Clause, 0, len(a.keys))
	for _, k := range a.keys {
		e := a.entries[k]
		if e.weight == 0 {
			continue
		}
		clauses = append(clauses, mrf.Clause{Weight: e.weight, Lits: e.lits})
	}
	m.Clauses = clauses
	stats := Stats{
		NumAtoms:       a.ts.NumAtoms(),
		NumUsedAtoms:   len(a.atomAids),
		NumGroundedRaw: a.raw,
		NumClauses:     len(clauses),
		FixedCostCount: a.fixedN,
	}
	for i := range perStats {
		stats.JoinRowsVisited += perStats[i].JoinRowsVisited
		if perStats[i].PeakBytes > stats.PeakBytes {
			stats.PeakBytes = perStats[i].PeakBytes
		}
	}
	return &Result{MRF: m, TableAid: a.tableAid, AtomID: a.aidToID, Stats: stats}
}
