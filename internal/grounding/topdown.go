package grounding

import (
	"context"
	"fmt"

	"tuffy/internal/mln"
)

// GroundTopDown is the Alchemy-style baseline: Prolog-like nested-loop
// enumeration of variable bindings, literal by literal in clause order, with
// the same evidence pruning as the bottom-up grounder. It performs no join
// reordering, builds no hash tables and uses no indexes — each literal scans
// its predicate's full atom list — matching the "fixed join algorithm"
// behaviour the paper's lesion study attributes to Alchemy (Table 6,
// Appendix C.2). It holds all predicate tables and intermediate bindings in
// memory, which is why its peak-memory account dwarfs the clause output
// (the paper's Table 4 observation). The context is polled between clauses;
// cancellation aborts with the context's cause.
func GroundTopDown(ctx context.Context, ts *TableSet, opts Options) (*Result, error) {
	// Materialize predicate tables in memory, as Alchemy does.
	type atomRow struct {
		aid   int64
		args  []int32
		truth int64
	}
	mem := make(map[*mln.Predicate][]atomRow)
	var atomBytes int64
	for _, pred := range ts.Prog.Preds {
		t := ts.Table(pred)
		if t == nil {
			continue
		}
		rows := make([]atomRow, 0, t.RowCount())
		it := t.NewScan()
		if err := it.Open(); err != nil {
			return nil, err
		}
		for {
			row, ok, err := it.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			args := make([]int32, pred.Arity())
			for i := 0; i < pred.Arity(); i++ {
				args[i] = int32(row[1+i].I)
			}
			rows = append(rows, atomRow{aid: row[0].I, args: args, truth: row[pred.Arity()+1].I})
		}
		it.Close()
		mem[pred] = rows
		// In-memory object representation overhead (pointers, boxing) — the
		// 4x factor models Alchemy's per-atom object cost.
		atomBytes += int64(len(rows)) * int64(16+4*pred.Arity()) * 4
	}

	stats := Stats{PeakBytes: atomBytes}
	var raws []rawClause

	for _, clause := range ts.Prog.Clauses {
		if err := context.Cause(ctx); ctx.Err() != nil {
			return nil, err
		}
		segStart := len(raws)
		if err := validateExistSafety(clause); err != nil {
			return nil, fmt.Errorf("grounding clause %d: %w", clause.ID, err)
		}
		exist := make(map[string]bool, len(clause.Exist))
		for _, v := range clause.Exist {
			exist[v] = true
		}
		var uLits, eLits, closedPos []mln.Literal
		var builtins []mln.Literal
		for _, l := range clause.Lits {
			switch {
			case l.IsBuiltinEq():
				builtins = append(builtins, l)
			case hasExistVar(l, exist):
				eLits = append(eLits, l)
			case !l.Negated && l.Pred.Closed:
				closedPos = append(closedPos, l)
			default:
				uLits = append(uLits, l)
			}
		}
		if len(uLits)+len(eLits) == 0 {
			return nil, fmt.Errorf("grounding clause %d: no groundable literals", clause.ID)
		}

		bind := make(map[string]int32)
		var rec func(depth int) error
		rec = func(depth int) error {
			if depth == len(uLits) {
				// Builtins: a statically-true builtin literal satisfies the
				// clause (prune); a false one is dropped.
				for _, b := range builtins {
					lv, lok := termVal(b.Args[0], bind)
					rv, rok := termVal(b.Args[1], bind)
					if !lok || !rok {
						return fmt.Errorf("equality variable unbound in clause %d", clause.ID)
					}
					if (lv == rv) != b.Negated {
						return nil // literal true => clause satisfied
					}
				}
				for _, cp := range closedPos {
					args, ok := litArgs(cp, bind)
					if !ok {
						return fmt.Errorf("closed positive literal %s has unbound variable", cp.Format(ts.Prog.Syms))
					}
					if ts.Ev.TruthOf(cp.Pred, args) == mln.True {
						return nil // satisfied by evidence
					}
				}
				// Universal literal ids, dropping evidence-decided ones.
				var aids []int64
				var pos []bool
				for _, l := range uLits {
					args, _ := litArgs(l, bind)
					aid, ok := ts.AidOf(l.Pred, args)
					if !ok {
						// Closed-world negated literal over an atom with no
						// row: the atom is false, the negated literal true,
						// clause satisfied. (Unreached for rows enumerated
						// from tables; defensive.)
						return nil
					}
					truth := ts.TruthOf(aid)
					if truth != TruthUnknown {
						continue
					}
					aids = append(aids, aid)
					pos = append(pos, !l.Negated)
				}
				// Existential literals: collect witnesses.
				satisfied := false
				for _, el := range eLits {
					for _, r := range mem[el.Pred] {
						stats.JoinRowsVisited++
						if !rowMatches(el, r.args, bind) {
							continue
						}
						switch r.truth {
						case TruthTrue:
							satisfied = true
						case TruthFalse:
						default:
							aids = append(aids, r.aid)
							pos = append(pos, true)
						}
					}
					if satisfied {
						break
					}
				}
				if satisfied {
					return nil
				}
				raws = append(raws, rawClause{weight: clause.Weight, aids: aids, pos: pos})
				return nil
			}
			l := uLits[depth]
			for _, r := range mem[l.Pred] {
				stats.JoinRowsVisited++
				// Evidence pruning by truth.
				if l.Negated {
					if r.truth == TruthFalse {
						continue
					}
				} else if r.truth == TruthTrue {
					continue
				}
				if !rowMatches(l, r.args, bind) {
					continue
				}
				// Extend bindings, remembering which vars this row bound.
				var bound []string
				okRow := true
				for i, a := range l.Args {
					if !a.IsVar {
						continue
					}
					if _, exists := bind[a.Var]; !exists {
						bind[a.Var] = r.args[i]
						bound = append(bound, a.Var)
					}
				}
				if okRow {
					if err := rec(depth + 1); err != nil {
						return err
					}
				}
				for _, v := range bound {
					delete(bind, v)
				}
			}
			return nil
		}
		if err := rec(0); err != nil {
			return nil, err
		}
		// Same per-clause canonical order as the bottom-up grounder (see
		// canon.go), keeping the two strategies' MRFs bit-identical.
		canon := canonRaws(ts, raws[segStart:])
		copy(raws[segStart:], canon)
	}

	if opts.UseClosure {
		raws = activeClosure(raws)
	}
	// Alchemy-style grounder also keeps the raw clause expansion in memory.
	var clauseBytes int64
	for _, r := range raws {
		clauseBytes += int64(48 + 16*len(r.aids))
	}
	if atomBytes+clauseBytes*3 > stats.PeakBytes {
		stats.PeakBytes = atomBytes + clauseBytes*3
	}

	ca := newClauseAccumulator(ts)
	for _, r := range raws {
		ca.add(r.weight, r.aids, r.pos)
	}
	return ca.finish(stats), nil
}

// EstimateTopDownPeak computes the peak-memory account GroundTopDown would
// report for an instance already grounded by any strategy, without paying
// for the nested-loop enumeration. Used by scalability experiments (the
// paper's ER+ claim) where actually running the top-down grounder at 2x
// scale is the very thing being shown infeasible.
func EstimateTopDownPeak(ts *TableSet, res *Result) int64 {
	var atomBytes int64
	for _, pred := range ts.Prog.Preds {
		t := ts.Table(pred)
		if t == nil {
			continue
		}
		atomBytes += t.RowCount() * int64(16+4*pred.Arity()) * 4
	}
	var clauseBytes int64
	for _, c := range res.MRF.Clauses {
		clauseBytes += int64(48 + 16*len(c.Lits))
	}
	peak := atomBytes + clauseBytes*3
	if atomBytes > peak {
		peak = atomBytes
	}
	return peak
}

func hasExistVar(l mln.Literal, exist map[string]bool) bool {
	for _, a := range l.Args {
		if a.IsVar && exist[a.Var] {
			return true
		}
	}
	return false
}

func termVal(t mln.Term, bind map[string]int32) (int32, bool) {
	if !t.IsVar {
		return t.Const, true
	}
	v, ok := bind[t.Var]
	return v, ok
}

// litArgs resolves a literal's argument tuple under the bindings.
func litArgs(l mln.Literal, bind map[string]int32) ([]int32, bool) {
	args := make([]int32, len(l.Args))
	for i, a := range l.Args {
		v, ok := termVal(a, bind)
		if !ok {
			return nil, false
		}
		args[i] = v
	}
	return args, true
}

// rowMatches checks a table row against a literal's constants and
// already-bound variables (unbound variables match anything).
func rowMatches(l mln.Literal, args []int32, bind map[string]int32) bool {
	seen := make(map[string]int32, 2)
	for i, a := range l.Args {
		if !a.IsVar {
			if args[i] != a.Const {
				return false
			}
			continue
		}
		if v, ok := bind[a.Var]; ok {
			if args[i] != v {
				return false
			}
			continue
		}
		// Repeated unbound variable within the literal must self-match.
		if v, ok := seen[a.Var]; ok {
			if args[i] != v {
				return false
			}
		} else {
			seen[a.Var] = args[i]
		}
	}
	return true
}
